#include "exastp/perf/peak.h"

#include <chrono>

#include "exastp/common/aligned.h"
#include "exastp/common/check.h"
#include "exastp/perf/peak_impl.h"

namespace exastp {
namespace {

double run_kernel(Isa isa, std::int64_t iters, double* acc) {
  switch (isa) {
    case Isa::kScalar:
      return detail::peak_kernel_baseline(iters, 0.999999, 1e-7, acc);
    case Isa::kAvx2:
      return detail::peak_kernel_avx2(iters, 0.999999, 1e-7, acc);
    case Isa::kAvx512:
      return detail::peak_kernel_avx512(iters, 0.999999, 1e-7, acc);
  }
  return 0.0;
}

}  // namespace

double measure_peak_gflops(Isa isa, double seconds) {
  EXASTP_CHECK_MSG(host_supports(isa), "host lacks requested ISA");
  AlignedVector acc(128, 1.0);
  // Warm up and estimate the iteration rate.
  using clock = std::chrono::steady_clock;
  std::int64_t iters = 1 << 14;
  double best = 0.0;
  volatile double sink = 0.0;
  for (int rep = 0; rep < 6; ++rep) {
    const auto t0 = clock::now();
    sink = sink + run_kernel(isa, iters, acc.data());
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    const double gflops = 2.0 * 128.0 * static_cast<double>(iters) / dt / 1e9;
    best = std::max(best, gflops);
    // Scale the iteration count toward the requested measurement window.
    if (dt < seconds / 3.0) iters *= 2;
  }
  return best;
}

double available_peak_gflops() {
  static const double peak = measure_peak_gflops(host_best_isa());
  return peak;
}

}  // namespace exastp
