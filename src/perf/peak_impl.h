// Register-blocked FMA throughput kernel, instantiated once per ISA TU.
// 16 independent accumulator vectors of 8 doubles give enough ILP to
// saturate two FMA pipes; the compiler maps the inner loop to packed FMAs
// at the TU's target width.
#pragma once

#include <cstdint>

#define EXASTP_DEFINE_PEAK_KERNEL(SUFFIX)                              \
  double peak_kernel_##SUFFIX(std::int64_t iters, double x, double y, \
                              double* acc) {                          \
    for (std::int64_t it = 0; it < iters; ++it) {                     \
      _Pragma("omp simd")                                             \
      for (int j = 0; j < 128; ++j) acc[j] = acc[j] * x + y;          \
    }                                                                 \
    double sum = 0.0;                                                 \
    for (int j = 0; j < 128; ++j) sum += acc[j];                      \
    return sum;                                                       \
  }

namespace exastp::detail {

double peak_kernel_baseline(std::int64_t iters, double x, double y,
                            double* acc);
double peak_kernel_avx2(std::int64_t iters, double x, double y, double* acc);
double peak_kernel_avx512(std::int64_t iters, double x, double y,
                          double* acc);

}  // namespace exastp::detail
