// Bench report helpers: aligned console tables + CSV sidecar files, so each
// bench binary prints the rows of its paper figure and leaves a
// machine-readable copy next to it.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace exastp {

class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Prints an aligned table to stdout with a title line.
  void print(const std::string& title) const;
  /// Writes the table as CSV.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Terminal line chart so each figure bench can render the paper's curves
/// directly in the console (one symbol per series, shared y-axis).
class AsciiChart {
 public:
  AsciiChart(std::string y_label, int width = 60, int height = 14);

  /// Adds a series; x values are shared category positions (e.g. orders).
  void add_series(const std::string& name, const std::vector<double>& x,
                  const std::vector<double>& y);

  void print(const std::string& title) const;

 private:
  std::string y_label_;
  int width_, height_;
  struct Series {
    std::string name;
    char symbol;
    std::vector<double> x, y;
  };
  std::vector<Series> series_;
};

}  // namespace exastp
