// Instruction-mix reporting (paper Fig. 9).
//
// The dynamic FLOP counters classify every executed floating-point operation
// by the packing width of the loop that performed it (see flop_count.h).
// This header turns a counter delta into the percentage mix the paper plots:
// Scalar / 128-bit / 256-bit / 512-bit.
#pragma once

#include <array>
#include <string>

#include "exastp/perf/flop_count.h"

namespace exastp {

struct InstrMix {
  /// Percentages (0..100), indexed like WidthClass; sums to ~100.
  std::array<double, kNumWidthClasses> percent{};

  double scalar() const { return percent[0]; }
  double p128() const { return percent[1]; }
  double p256() const { return percent[2]; }
  double p512() const { return percent[3]; }
  /// Fraction executed with any SIMD packing.
  double packed() const { return 100.0 - percent[0]; }
};

InstrMix instruction_mix(const FlopCounter& counter);

/// "scalar 12.3% | 128 4.5% | 256 0.0% | 512 83.2%"
std::string format_mix(const InstrMix& mix);

}  // namespace exastp
