// Set-associative LRU cache hierarchy simulator.
//
// Replaces the VTune memory-stall measurements of Figs. 4, 6, 10: the trace
// twins (trace_model.h) replay each kernel variant's memory-access pattern
// through a hierarchy configured like one Skylake-SP core (32 KiB 8-way L1D,
// 1 MiB 16-way private L2 — the capacity whose overflow Sec. IV-A analyses —
// and a 1.375 MiB 11-way L3 slice), and a latency model converts the
// per-level misses into the fraction of pipeline slots stalled on memory.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace exastp {

struct CacheConfig {
  std::size_t size_bytes = 0;
  int associativity = 1;
  int line_bytes = 64;
};

/// One inclusive-behaviour LRU level.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Accesses one line address (already >> line_bits); returns true on hit
  /// and installs the line on miss.
  bool access_line(std::uint64_t line);

  void reset();
  const CacheConfig& config() const { return config_; }

 private:
  CacheConfig config_;
  int num_sets_;
  std::uint64_t tick_ = 0;
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
  };
  std::vector<Way> ways_;  // num_sets * associativity
};

struct CacheStats {
  std::uint64_t accesses = 0;       ///< line-granular accesses issued
  std::array<std::uint64_t, 3> misses{};  ///< per level; misses[2] go to DRAM
  /// Subset of `misses` issued by strided/pointer-chasing access patterns
  /// that hardware prefetchers cannot hide; these pay latency, not fill
  /// bandwidth, in the stall model.
  std::array<std::uint64_t, 3> demand_misses{};

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    for (int i = 0; i < 3; ++i) {
      misses[i] += o.misses[i];
      demand_misses[i] += o.demand_misses[i];
    }
    return *this;
  }
};

/// Three-level hierarchy; every access walks L1 -> L2 -> L3.
class CacheSim {
 public:
  CacheSim(const CacheConfig& l1, const CacheConfig& l2,
           const CacheConfig& l3);

  /// Skylake-SP-per-core configuration used for all paper reproductions.
  static CacheSim skylake_sp();

  /// Touches `bytes` bytes starting at byte address `addr` (sequential
  /// lines; prefetcher-friendly). Reads and writes are not distinguished
  /// (write-allocate).
  void access(std::uint64_t addr, std::size_t bytes);

  /// Touches `rows` rows of `row_bytes` starting at `addr` with a stride of
  /// `stride_bytes` — the strided slice pattern of naive tensor
  /// contractions. Misses count as demand (latency-bound) misses.
  void access_strided(std::uint64_t addr, int rows, std::size_t row_bytes,
                      std::size_t stride_bytes);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Drops all cached lines and the stats (cold start).
  void reset();

  int line_bytes() const { return line_bytes_; }

 private:
  void access_impl(std::uint64_t addr, std::size_t bytes, bool demand);

  int line_bytes_;
  std::vector<CacheLevel> levels_;
  CacheStats stats_;
  // Stream-prefetcher model: tails of recently observed sequential streams.
  // An access() continuing one of them is prefetched; a fresh stream's first
  // line pays demand latency on a miss.
  static constexpr int kStreamTrackers = 16;
  std::array<std::uint64_t, kStreamTrackers> stream_tails_{};
  int next_tracker_ = 0;
};

/// Bandwidth-style stall model: fraction (0..1) of pipeline slots stalled
/// on memory for a workload with the given cache behaviour and compute
/// volume.
///
/// The kernels stream long sequential ranges, which hardware prefetchers
/// pipeline: the appropriate per-miss cost is the *fill bandwidth* of the
/// providing level, not its load-to-use latency. Per-line fill costs
/// (cycles/64B) approximate Skylake-SP: L2 fills ~1 cycle/line, L3 fills
/// ~3, DRAM ~8 (about 16 GB/s per core at 2 GHz). Compute cycles assume the
/// dual-FMA pipe at the packing mix's throughput: 2/4/8/16 flops per cycle
/// for scalar/128/256/512-bit code. The constants are fixed here, not
/// fitted per experiment.
struct StallModel {
  // Sequential (prefetched) traffic pays fill bandwidth per line:
  double l2_fill_cycles = 1.5;   ///< per line missing L1, served by L2
  double l3_fill_cycles = 4.0;   ///< per line missing L2, served by L3
  double dram_fill_cycles = 9.0; ///< per line missing L3, served by DRAM
  // Demand (strided) misses pay load-to-use latency, partially overlapped:
  double l2_latency_cycles = 14.0;
  double l3_latency_cycles = 44.0;
  double dram_latency_cycles = 180.0;
  double mlp = 5.0;  ///< average overlapped demand misses

  /// flops_by_width indexed like WidthClass: scalar/128/256/512.
  double stall_fraction(const CacheStats& stats,
                        const std::array<std::uint64_t, 4>& flops_by_width)
      const;
};

}  // namespace exastp
