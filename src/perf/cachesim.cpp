#include "exastp/perf/cachesim.h"

#include "exastp/common/check.h"

namespace exastp {

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  EXASTP_CHECK(config.size_bytes > 0 && config.associativity > 0);
  EXASTP_CHECK(config.line_bytes > 0 &&
               (config.line_bytes & (config.line_bytes - 1)) == 0);
  num_sets_ = static_cast<int>(config.size_bytes /
                               (config.line_bytes * config.associativity));
  EXASTP_CHECK_MSG(num_sets_ > 0, "cache smaller than one set");
  ways_.assign(static_cast<std::size_t>(num_sets_) * config.associativity,
               Way{});
}

bool CacheLevel::access_line(std::uint64_t line) {
  const int set = static_cast<int>(line % static_cast<std::uint64_t>(num_sets_));
  Way* base = ways_.data() + static_cast<std::size_t>(set) *
                                 config_.associativity;
  ++tick_;
  Way* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    if (base[w].tag == line) {
      base[w].last_use = tick_;
      return true;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  victim->tag = line;
  victim->last_use = tick_;
  return false;
}

void CacheLevel::reset() {
  ways_.assign(ways_.size(), Way{});
  tick_ = 0;
}

CacheSim::CacheSim(const CacheConfig& l1, const CacheConfig& l2,
                   const CacheConfig& l3)
    : line_bytes_(l1.line_bytes) {
  EXASTP_CHECK_MSG(l1.line_bytes == l2.line_bytes &&
                       l2.line_bytes == l3.line_bytes,
                   "levels must share the line size");
  levels_.emplace_back(l1);
  levels_.emplace_back(l2);
  levels_.emplace_back(l3);
}

CacheSim CacheSim::skylake_sp() {
  return CacheSim({32 * 1024, 8, 64},          // L1D
                  {1024 * 1024, 16, 64},       // private L2 (Sec. IV-A)
                  {1408 * 1024, 11, 64});      // 1.375 MiB L3 slice
}

void CacheSim::access(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  // Prefetcher stream matching: if this access continues a tracked stream
  // (starts at or just after its tail), the whole range is prefetched;
  // otherwise the head line is a demand access and the rest trains a new
  // stream.
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
  bool continues = false;
  for (int t = 0; t < kStreamTrackers; ++t) {
    if (first == stream_tails_[t] || first == stream_tails_[t] + 1) {
      stream_tails_[t] = last;
      continues = true;
      break;
    }
  }
  if (!continues) {
    stream_tails_[next_tracker_] = last;
    next_tracker_ = (next_tracker_ + 1) % kStreamTrackers;
    access_impl(addr, std::min<std::size_t>(bytes, line_bytes_),
                /*demand=*/true);
    const std::size_t head = line_bytes_ - (addr % line_bytes_);
    if (bytes > head) access_impl(addr + head, bytes - head, false);
    return;
  }
  access_impl(addr, bytes, /*demand=*/false);
}

void CacheSim::access_strided(std::uint64_t addr, int rows,
                              std::size_t row_bytes,
                              std::size_t stride_bytes) {
  for (int r = 0; r < rows; ++r)
    access_impl(addr + static_cast<std::uint64_t>(r) * stride_bytes,
                row_bytes, /*demand=*/true);
}

void CacheSim::access_impl(std::uint64_t addr, std::size_t bytes,
                           bool demand) {
  if (bytes == 0) return;
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    ++stats_.accesses;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      if (levels_[lvl].access_line(line)) break;
      ++stats_.misses[lvl];
      if (demand) ++stats_.demand_misses[lvl];
    }
  }
}

void CacheSim::reset() {
  for (auto& level : levels_) level.reset();
  stream_tails_.fill(0);
  next_tracker_ = 0;
  reset_stats();
}

double StallModel::stall_fraction(
    const CacheStats& stats,
    const std::array<std::uint64_t, 4>& flops_by_width) const {
  // misses[i] counts lines that missed level i; a line missing L1 and L2
  // appears in both, so the increments are the *extra* cost of going one
  // level further out. Demand (strided) misses additionally pay the
  // latency difference over the prefetched fill cost.
  const auto seq = [&](int lvl) {
    return static_cast<double>(stats.misses[lvl] - stats.demand_misses[lvl]);
  };
  const auto dem = [&](int lvl) {
    return static_cast<double>(stats.demand_misses[lvl]);
  };
  const double mem_cycles =
      seq(0) * l2_fill_cycles + dem(0) * l2_latency_cycles / mlp +
      seq(1) * (l3_fill_cycles - l2_fill_cycles) +
      dem(1) * (l3_latency_cycles - l2_latency_cycles) / mlp +
      seq(2) * (dram_fill_cycles - l3_fill_cycles) +
      dem(2) * (dram_latency_cycles - l3_latency_cycles) / mlp;
  // Dual-FMA throughput per packing class (flops/cycle): scalar 2, 128-bit
  // 4, 256-bit 8, 512-bit 16.
  static constexpr double kRate[4] = {2.0, 4.0, 8.0, 16.0};
  double compute_cycles = 0.0;
  for (int c = 0; c < 4; ++c)
    compute_cycles += static_cast<double>(flops_by_width[c]) / kRate[c];
  if (mem_cycles + compute_cycles <= 0.0) return 0.0;
  return mem_cycles / (mem_cycles + compute_cycles);
}

}  // namespace exastp
