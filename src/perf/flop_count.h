// Dynamic floating-point-operation accounting.
//
// Substitutes for the VTune FLOP / instruction-mix counters used in the
// paper's Figs. 4, 6, 9, 10. Every compute path (mini-GEMM, element-wise
// kernel loops, PDE user functions) reports the FLOPs it executed, classified
// by the SIMD packing width of the loop that performed them:
//
//   kScalar — genuinely scalar code (pointwise user functions, runtime-dim
//             generic loops the compiler cannot vectorize),
//   k128    — baseline-ISA auto-vectorization (the build uses no -march, so
//             GCC's default x86-64 SSE2 packs 2 doubles; this is the "128
//             bits" class of Fig. 9),
//   k256    — AVX2 code paths (4 doubles),
//   k512    — AVX-512 code paths (8 doubles).
//
// Counts include the zero-padding work, exactly as a hardware counter would.
// Worker threads of the parallel steppers report concurrently: add() uses
// relaxed atomic increments (integer adds commute, so totals stay exact and
// deterministic for any thread count), while reset()/total() are meant for
// the quiescent phases between parallel regions — the benches measure
// single-core kernel runs exactly as before.
//
// Scoping: instance() returns the process-global counter unless the calling
// thread has a per-run counter installed (thread_instance(), set by
// telemetry/telemetry.h TelemetryScope). Kernels and benches keep calling
// instance() as always; inside a scoped Simulation the FLOPs land in that
// run's own TelemetryRegistry, so concurrent ensemble jobs no longer
// double-count each other's work in one shared accumulator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "exastp/common/simd.h"

namespace exastp {

enum class WidthClass : int { kScalar = 0, k128 = 1, k256 = 2, k512 = 3 };

inline constexpr int kNumWidthClasses = 4;

struct FlopCounter {
  std::array<std::uint64_t, kNumWidthClasses> flops{};

  void add(WidthClass w, std::uint64_t count) {
    std::atomic_ref<std::uint64_t>(flops[static_cast<int>(w)])
        .fetch_add(count, std::memory_order_relaxed);
  }
  void reset() { flops = {}; }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto f : flops) t += f;
    return t;
  }
  /// Fraction of FLOPs in the given class (0 if nothing was counted).
  double fraction(WidthClass w) const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(flops[static_cast<int>(w)]) /
                        static_cast<double>(t);
  }

  FlopCounter& operator+=(const FlopCounter& other) {
    for (int i = 0; i < kNumWidthClasses; ++i) flops[i] += other.flops[i];
    return *this;
  }

  static FlopCounter& instance() {
    FlopCounter* scoped = thread_instance();
    return scoped != nullptr ? *scoped : process_instance();
  }

  /// The process-global counter, bypassing any per-thread routing.
  static FlopCounter& process_instance() {
    static FlopCounter counter;
    return counter;
  }

  /// The calling thread's routing slot: null (the default) sends
  /// instance() to process_instance(); a telemetry scope points it at a
  /// per-run counter for the scope's lifetime.
  static FlopCounter*& thread_instance() {
    static thread_local FlopCounter* scoped = nullptr;
    return scoped;
  }
};

/// Packing class produced by a loop compiled for (and dispatched to) `isa`.
/// The baseline build carries no -m flags, so its auto-vectorized loops pack
/// at 128 bits (SSE2) — the Fig. 9 "128 bits" class.
constexpr WidthClass packed_width_class(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return WidthClass::k128;
    case Isa::kAvx2: return WidthClass::k256;
    case Isa::kAvx512: return WidthClass::k512;
  }
  return WidthClass::kScalar;
}

/// Accounts for a vectorized sweep of `lanes` elements at `flops_per_lane`;
/// the remainder that does not fill a vector register counts as scalar.
inline void count_packed_flops(Isa isa, long lanes,
                               std::uint64_t flops_per_lane) {
  const int w = vector_width(isa);
  const long packed = lanes / w * w;
  FlopCounter::instance().add(packed_width_class(isa),
                              flops_per_lane * packed);
  FlopCounter::instance().add(WidthClass::kScalar,
                              flops_per_lane * (lanes - packed));
}

/// RAII helper: snapshots the global counter and returns the delta.
class FlopSection {
 public:
  FlopSection() : start_(FlopCounter::instance()) {}
  FlopCounter delta() const {
    FlopCounter d = FlopCounter::instance();
    for (int i = 0; i < kNumWidthClasses; ++i)
      d.flops[i] -= start_.flops[i];
    return d;
  }

 private:
  FlopCounter start_;
};

}  // namespace exastp
