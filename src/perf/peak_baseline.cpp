#include "exastp/perf/peak_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_PEAK_KERNEL(baseline)

}  // namespace exastp::detail
