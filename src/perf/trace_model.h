// Trace twins: memory-access replicas of the four STP kernel variants.
//
// VTune substitute, part 2 (see DESIGN.md): each twin walks the exact loop
// nest of its kernel variant and issues the corresponding memory accesses
// (at cache-line granularity) into a CacheSim, while reporting FLOPs through
// the *same* accounting helpers the real kernels use. Two validation hooks
// keep the twins honest:
//   * their FLOP totals must equal a real kernel run's FlopCounter delta
//     (tests/test_trace_model.cpp),
//   * their workspace footprint must equal StpKernel::workspace_bytes().
//
// The twins exist because instrumenting the hot kernels with per-access
// callbacks would destroy the very code the paper measures; replaying the
// address pattern offline costs nothing at run time and reproduces the
// L2-capacity behaviour that drives Figs. 4, 6 and 10.
#pragma once

#include <array>
#include <cstdint>

#include "exastp/kernels/stp_common.h"
#include "exastp/pde/pde_base.h"
#include "exastp/perf/cachesim.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

/// Runtime description of the PDE for the twin (no user code is executed).
/// flux_cover/ncp_zero carry the PDE's declared sparsity (pde_base.h
/// traits): the SplitCK twins must mask/skip exactly like the real fused
/// kernels or the FLOP ledgers drift apart.
struct TwinPde {
  int quants = 0;
  int vars = 0;
  std::uint64_t flux_flops = 0;
  std::uint64_t ncp_flops = 0;
  /// Per direction: past-the-end possibly-nonzero flux row
  /// (pde_flux_rows_end). Defaults to vars via twin_pde().
  std::array<int, 3> flux_cover{};
  /// True when the NCP stage is skipped entirely (kNcpIsZero).
  bool ncp_zero = false;
};

template <class Pde>
TwinPde twin_pde() {
  TwinPde t{Pde::kQuants, Pde::kVars, Pde::kFluxFlops, Pde::kNcpFlops,
            {pde_flux_rows_end<Pde>(0), pde_flux_rows_end<Pde>(1),
             pde_flux_rows_end<Pde>(2)},
            pde_ncp_is_zero<Pde>()};
  return t;
}

struct TwinResult {
  CacheStats cache;          ///< measured repetitions only (after warmup)
  FlopCounter flops;         ///< per measured repetition set
  std::size_t workspace_bytes = 0;
  int measured_reps = 0;
};

/// Replays `warmup + reps` kernel invocations (each on a fresh input cell,
/// reusing the same workspace — the mesh-traversal pattern) and returns the
/// cache statistics and FLOP counts of the measured repetitions.
///
/// With `include_corrector` each repetition is a full ADER-DG step: after
/// the predictor, the per-cell corrector pattern (face projections, Riemann
/// solve, surface lift, volume update) is replayed too. The paper's
/// benchmarks measure the end-to-end application (Sec. VI), where the
/// corrector's memory-heavy O(N^2..N^3) share shrinks relative to the
/// O(N^4) predictor as the order grows.
TwinResult trace_stp(StpVariant variant, int order, const TwinPde& pde,
                     Isa isa, CacheSim& sim, int warmup = 1, int reps = 1,
                     bool include_corrector = false);

}  // namespace exastp
