// Peak floating-point throughput measurement.
//
// Replaces the paper's "available performance" baseline (Sec. VI: 60.8 DP
// GFlops/s per Skylake core = 1.9 GHz x 2 FMA units x 2 ops x 8 lanes).
// On unknown container hardware we *measure* the sustainable FMA rate per
// ISA with a register-blocked multiply-add loop; the benches then report
// kernel GFlops as a percentage of the measured AVX-512 peak, exactly like
// the paper's "Available Perf (%)" axis.
//
// Note the measurement also captures the AVX-512 frequency reduction the
// paper discusses — the wide-vector peak is measured while running
// wide-vector code.
#pragma once

#include "exastp/common/simd.h"

namespace exastp {

/// Sustained multiply-add GFlop/s for code compiled for `isa`, measured
/// over roughly `seconds` of wall time. Throws if the host lacks the ISA.
double measure_peak_gflops(Isa isa, double seconds = 0.15);

/// Cached peak of the best ISA the host supports (measured once).
double available_peak_gflops();

}  // namespace exastp
