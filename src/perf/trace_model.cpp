#include "exastp/perf/trace_model.h"

#include <vector>

#include "exastp/common/aligned.h"
#include "exastp/common/check.h"
#include "exastp/tensor/layout.h"

namespace exastp {
namespace {

constexpr std::uint64_t kWord = sizeof(double);

/// Bump allocator for virtual array addresses (64-byte aligned, padded so
/// distinct arrays never share a line).
class VirtualArena {
 public:
  std::uint64_t alloc(std::size_t doubles) {
    const std::uint64_t addr = next_;
    next_ += pad_to(static_cast<int>(doubles), 8) * kWord;
    next_ = (next_ + 63) / 64 * 64;
    logical_ += doubles * kWord;
    return addr;
  }
  /// Exact bytes of the allocated arrays (matches the real kernels'
  /// workspace_bytes accounting, which sums vector sizes).
  std::size_t bytes() const { return logical_; }

 private:
  std::uint64_t next_ = 4096;
  std::size_t logical_ = 0;
};

/// Mirrors the mini-GEMM inner loops: C rows and A rows stream once per i,
/// B rows restream per (i, l). FLOPs via the same helper gemm uses.
void trace_gemm(CacheSim& sim, Isa isa, int m, int n, int k, std::uint64_t a,
                int lda, std::uint64_t b, int ldb, std::uint64_t c, int ldc) {
  for (int i = 0; i < m; ++i) {
    sim.access(c + static_cast<std::uint64_t>(i) * ldc * kWord, n * kWord);
    sim.access(a + static_cast<std::uint64_t>(i) * lda * kWord, k * kWord);
    for (int l = 0; l < k; ++l)
      sim.access(b + static_cast<std::uint64_t>(l) * ldb * kWord, n * kWord);
  }
  count_packed_flops(isa, n, 2ull * m * k);
}

/// Mirrors aos_derivative_slab's batching and masking (derivative_ops.h):
/// `cover` is the past-the-end possibly-nonzero source row; the masked GEMM
/// width is the cover padded up to the vector width (so lanes stay packed),
/// clamped to the full padded row. cover == mp reproduces the unmasked
/// full-cell wrapper; cover <= 0 is a no-op, exactly like the kernels.
/// Fusion blocking is NOT modeled: blocked slabs split the fused calls at
/// multiples of the padded leading dimension, which changes neither the
/// per-width-class FLOP totals nor the set of touched lines.
void trace_aos_derivative(CacheSim& sim, Isa isa, int n, int mp, int cover,
                          std::uint64_t diff, std::uint64_t src,
                          std::uint64_t dst, int dir) {
  if (cover <= 0) return;
  const int padded = pad_to(cover, vector_width(isa));
  const int ncols = padded < mp ? padded : mp;
  const bool masked = ncols < mp;
  const std::uint64_t row = static_cast<std::uint64_t>(mp) * kWord;
  const std::uint64_t slab = static_cast<std::uint64_t>(n) * row;
  switch (dir) {
    case 0:
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2) {
          const std::uint64_t off = (static_cast<std::uint64_t>(k3) * n + k2) * slab;
          trace_gemm(sim, isa, n, ncols, n, diff, n, src + off, mp, dst + off,
                     mp);
        }
      break;
    case 1:
      if (masked) {
        for (int k3 = 0; k3 < n; ++k3)
          for (int k1 = 0; k1 < n; ++k1) {
            const std::uint64_t off =
                static_cast<std::uint64_t>(k3) * n * slab + k1 * row;
            trace_gemm(sim, isa, n, ncols, n, diff, n, src + off, n * mp,
                       dst + off, n * mp);
          }
      } else {
        for (int k3 = 0; k3 < n; ++k3) {
          const std::uint64_t off = static_cast<std::uint64_t>(k3) * n * slab;
          trace_gemm(sim, isa, n, n * mp, n, diff, n, src + off, n * mp,
                     dst + off, n * mp);
        }
      }
      break;
    default:
      if (masked) {
        for (int k2 = 0; k2 < n; ++k2)
          for (int k1 = 0; k1 < n; ++k1) {
            const std::uint64_t off =
                (static_cast<std::uint64_t>(k2) * n + k1) * row;
            trace_gemm(sim, isa, n, ncols, n, diff, n, src + off, n * n * mp,
                       dst + off, n * n * mp);
          }
      } else {
        trace_gemm(sim, isa, n, n * n * mp, n, diff, n, src, n * n * mp, dst,
                   n * n * mp);
      }
  }
}

/// Mirrors aosoa_derivative_slab's batching and masking. In the AoSoA
/// layout the quantity index is the slow (row) dimension, so the cover maps
/// to a row prefix (dir 0) or a contiguous column prefix of whole lanes
/// (dirs 1/2) — no padding needed. cover == m is the unmasked wrapper.
void trace_aosoa_derivative(CacheSim& sim, Isa isa, int n, int m, int np,
                            int cover, std::uint64_t diff,
                            std::uint64_t diff_t, std::uint64_t src,
                            std::uint64_t dst, int dir) {
  if (cover <= 0) return;
  const bool masked = cover < m;
  const std::uint64_t line = static_cast<std::uint64_t>(m) * np * kWord;
  switch (dir) {
    case 0: {
      const int nrows = masked ? cover : m;
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2) {
          const std::uint64_t off =
              (static_cast<std::uint64_t>(k3) * n + k2) * line;
          trace_gemm(sim, isa, nrows, np, n, src + off, np, diff_t, np,
                     dst + off, np);
        }
      break;
    }
    case 1: {
      const int ncols = (masked ? cover : m) * np;
      for (int k3 = 0; k3 < n; ++k3) {
        const std::uint64_t off = static_cast<std::uint64_t>(k3) * n * line;
        trace_gemm(sim, isa, n, ncols, n, diff, n, src + off, m * np,
                   dst + off, m * np);
      }
      break;
    }
    default:
      if (masked) {
        for (int k2 = 0; k2 < n; ++k2) {
          const std::uint64_t off = static_cast<std::uint64_t>(k2) * line;
          trace_gemm(sim, isa, n, cover * np, n, diff, n, src + off,
                     n * m * np, dst + off, n * m * np);
        }
      } else {
        trace_gemm(sim, isa, n, n * m * np, n, diff, n, src, n * m * np, dst,
                   n * m * np);
      }
  }
}

/// Pointwise user-function sweep over a cell: stream src, stream dst.
void trace_pointwise(CacheSim& sim, std::uint64_t src, std::uint64_t dst,
                     std::size_t cell_bytes, std::uint64_t nodes,
                     std::uint64_t flops_per_node) {
  sim.access(src, cell_bytes);
  sim.access(dst, cell_bytes);
  FlopCounter::instance().add(WidthClass::kScalar, nodes * flops_per_node);
}

/// Element-wise vecop over a full tensor.
void trace_vecop(CacheSim& sim, Isa isa, std::uint64_t src, std::uint64_t dst,
                 std::size_t elems, std::uint64_t flops_per_elem) {
  sim.access(src, elems * kWord);
  sim.access(dst, elems * kWord);
  if (flops_per_elem > 0)
    count_packed_flops(isa, static_cast<long>(elems), flops_per_elem);
}

/// Per-cell corrector pattern (mirrors solver/ader_dg_solver.cpp and
/// kernels/face.h): volume update, then per direction one owned face with
/// two projections, two normal-flux evaluations, one Riemann solve and two
/// surface lifts.
void trace_corrector_cell(CacheSim& sim, int n, int mp, const TwinPde& pde,
                          std::uint64_t q, std::uint64_t qavg,
                          const std::vector<std::uint64_t>& favg,
                          VirtualArena& arena) {
  const std::size_t cell = static_cast<std::size_t>(n) * n * n * mp;
  const std::size_t cell_bytes = cell * kWord;
  const std::size_t face = static_cast<std::size_t>(n) * n * mp;
  const std::size_t face_bytes = face * kWord;
  const std::uint64_t nn = static_cast<std::uint64_t>(n) * n;
  FlopCounter& fc = FlopCounter::instance();

  const std::uint64_t qnew = arena.alloc(cell);
  const std::uint64_t qavg_nb = arena.alloc(cell);
  const std::uint64_t face_own = arena.alloc(face);
  const std::uint64_t face_nb = arena.alloc(face);
  const std::uint64_t fl = arena.alloc(face);
  const std::uint64_t fr = arena.alloc(face);
  const std::uint64_t fstar = arena.alloc(face);

  // Volume update qnew = q + dt * sum_d favg[d].
  sim.access(q, cell_bytes);
  sim.access(qnew, cell_bytes);
  for (std::uint64_t f : favg) sim.access(f, cell_bytes);
  fc.add(WidthClass::k128, 6ull * cell);

  for (int d = 0; d < 3; ++d) {
    // Projections of both sides' averaged states onto the shared face.
    sim.access(qavg, cell_bytes);
    sim.access(face_own, face_bytes);
    fc.add(WidthClass::k128, 2ull * n * nn * mp);
    sim.access(qavg_nb, cell_bytes);
    sim.access(face_nb, face_bytes);
    fc.add(WidthClass::k128, 2ull * n * nn * mp);
    // Normal fluxes of both traces.
    sim.access(face_own, face_bytes);
    sim.access(fl, face_bytes);
    fc.add(WidthClass::kScalar,
           nn * (pde.flux_flops + pde.ncp_flops + pde.quants));
    sim.access(face_nb, face_bytes);
    sim.access(fr, face_bytes);
    fc.add(WidthClass::kScalar,
           nn * (pde.flux_flops + pde.ncp_flops + pde.quants));
    // Rusanov solve.
    for (std::uint64_t a : {face_own, face_nb, fl, fr, fstar})
      sim.access(a, face_bytes);
    fc.add(WidthClass::kScalar, nn * (5ull * pde.vars + 1));
    // Surface lifts into both adjacent cells' updates.
    for (std::uint64_t own : {fl, fr}) {
      sim.access(fstar, face_bytes);
      sim.access(own, face_bytes);
      sim.access(qnew, cell_bytes);
      fc.add(WidthClass::k128, 3ull * n * nn * mp);
    }
  }
}

// ---------------------------------------------------------------------------
// Generic twin (mirrors generic_stp.cpp).

TwinResult trace_generic(int order, const TwinPde& pde, CacheSim& sim,
                         int warmup, int reps, bool corrector) {
  const int n = order, m = pde.quants;
  const std::size_t cell = static_cast<std::size_t>(n) * n * n * m;
  const std::size_t cell_bytes = cell * kWord;
  const std::uint64_t nodes = static_cast<std::uint64_t>(n) * n * n;

  VirtualArena arena;
  std::uint64_t p = arena.alloc((n + 1) * cell);
  std::uint64_t flux = arena.alloc(3ull * n * cell);
  std::uint64_t df = arena.alloc(3ull * n * cell);
  std::uint64_t gradq = arena.alloc(3ull * n * cell);
  const std::size_t workspace = arena.bytes();
  std::uint64_t qavg = arena.alloc(cell);
  std::vector<std::uint64_t> favg = {arena.alloc(cell), arena.alloc(cell),
                                     arena.alloc(cell)};

  auto p_at = [&](int o) { return p + static_cast<std::uint64_t>(o) * cell_bytes; };
  auto od_at = [&](std::uint64_t base, int o, int d) {
    return base + (static_cast<std::uint64_t>(o) * 3 + d) * cell_bytes;
  };

  TwinResult result;
  result.workspace_bytes = workspace;
  for (int rep = 0; rep < warmup + reps; ++rep) {
    if (rep == warmup) {
      sim.reset_stats();
      FlopCounter::instance().reset();
    }
    // Fresh input cell per repetition (mesh traversal).
    std::uint64_t q = arena.alloc(cell);
    trace_vecop(sim, Isa::kScalar, q, p_at(0), cell, 0);  // memcpy

    const int node_bytes = m * static_cast<int>(kWord);
    for (int o = 0; o < n; ++o) {
      for (int d = 0; d < 3; ++d)
        trace_pointwise(sim, p_at(o), od_at(flux, o, d), cell_bytes, nodes,
                        pde.flux_flops);
      // Naive derivative: per output node, one strided read sweep.
      for (int d = 0; d < 3; ++d) {
        const std::uint64_t stride =
            (d == 0 ? static_cast<std::uint64_t>(m)
                    : d == 1 ? static_cast<std::uint64_t>(m) * n
                             : static_cast<std::uint64_t>(m) * n * n) * kWord;
        for (std::uint64_t k = 0; k < nodes; ++k) {
          const std::uint64_t out = k * m * kWord;
          sim.access(od_at(df, o, d) + out, node_bytes);
          sim.access(od_at(gradq, o, d) + out, node_bytes);
          // Line base along the derivative dimension.
          const int kd = d == 0 ? static_cast<int>(k % n)
                       : d == 1 ? static_cast<int>((k / n) % n)
                                : static_cast<int>(k / (static_cast<std::uint64_t>(n) * n));
          const std::uint64_t line0 = out - kd * stride;
          sim.access_strided(od_at(flux, o, d) + line0, n, node_bytes,
                             stride);
          sim.access_strided(p_at(o) + line0, n, node_bytes, stride);
        }
        FlopCounter::instance().add(WidthClass::kScalar,
                                    nodes * m * (4ull * n + 2));
      }
      for (int d = 0; d < 3; ++d) {
        trace_pointwise(sim, p_at(o), od_at(df, o, d), cell_bytes, nodes,
                        pde.ncp_flops + m);
        sim.access(od_at(gradq, o, d), cell_bytes);
      }
      // p[o+1] = sum_d dF.
      sim.access(p_at(o + 1), cell_bytes);
      for (int d = 0; d < 3; ++d) sim.access(od_at(df, o, d), cell_bytes);
      FlopCounter::instance().add(WidthClass::k128, 3 * cell);
    }
    // Taylor accumulation.
    sim.access(qavg, cell_bytes);
    for (auto f : favg) sim.access(f, cell_bytes);
    for (int o = 0; o < n; ++o) {
      sim.access(p_at(o), cell_bytes);
      sim.access(qavg, cell_bytes);
      for (int d = 0; d < 3; ++d) {
        sim.access(od_at(df, o, d), cell_bytes);
        sim.access(favg[d], cell_bytes);
      }
    }
    FlopCounter::instance().add(WidthClass::k128, 8ull * n * cell);
    if (corrector)
      trace_corrector_cell(sim, n, m, pde, q, qavg, favg, arena);
  }
  result.cache = sim.stats();
  result.flops = FlopCounter::instance();
  result.measured_reps = reps;
  return result;
}

// ---------------------------------------------------------------------------
// LoG twin (mirrors log_stp.h).

TwinResult trace_log(int order, const TwinPde& pde, Isa isa, CacheSim& sim,
                     int warmup, int reps, bool corrector) {
  const int n = order;
  const int mp = pad_to(pde.quants, vector_width(isa));
  const std::size_t cell = static_cast<std::size_t>(n) * n * n * mp;
  const std::size_t cell_bytes = cell * kWord;
  const std::uint64_t nodes = static_cast<std::uint64_t>(n) * n * n;

  VirtualArena arena;
  std::uint64_t p = arena.alloc((n + 1) * cell);
  std::uint64_t flux = arena.alloc(3ull * n * cell);
  std::uint64_t df = arena.alloc(3ull * n * cell);
  std::uint64_t gradq = arena.alloc(3ull * n * cell);
  const std::size_t workspace = arena.bytes();
  std::uint64_t diff = arena.alloc(static_cast<std::size_t>(n) * n);
  std::uint64_t qavg = arena.alloc(cell);
  std::vector<std::uint64_t> favg = {arena.alloc(cell), arena.alloc(cell),
                                     arena.alloc(cell)};

  auto p_at = [&](int o) { return p + static_cast<std::uint64_t>(o) * cell_bytes; };
  auto od_at = [&](std::uint64_t base, int o, int d) {
    return base + (static_cast<std::uint64_t>(o) * 3 + d) * cell_bytes;
  };

  TwinResult result;
  result.workspace_bytes = workspace;
  for (int rep = 0; rep < warmup + reps; ++rep) {
    if (rep == warmup) {
      sim.reset_stats();
      FlopCounter::instance().reset();
    }
    std::uint64_t q = arena.alloc(cell);
    trace_vecop(sim, isa, q, p_at(0), cell, 0);

    for (int o = 0; o < n; ++o) {
      for (int d = 0; d < 3; ++d)
        trace_pointwise(sim, p_at(o), od_at(flux, o, d), cell_bytes, nodes,
                        pde.flux_flops);
      for (int d = 0; d < 3; ++d) {
        trace_aos_derivative(sim, isa, n, mp, mp, diff, od_at(flux, o, d),
                             od_at(df, o, d), d);
        trace_aos_derivative(sim, isa, n, mp, mp, diff, p_at(o),
                             od_at(gradq, o, d), d);
      }
      for (int d = 0; d < 3; ++d) {
        trace_pointwise(sim, p_at(o), od_at(df, o, d), cell_bytes, nodes,
                        pde.ncp_flops + pde.quants);
        sim.access(od_at(gradq, o, d), cell_bytes);
      }
      sim.access(p_at(o + 1), cell_bytes);
      for (int d = 0; d < 3; ++d)
        trace_vecop(sim, isa, od_at(df, o, d), p_at(o + 1), cell, 1);
      sim.access(q, cell_bytes);  // parameter-row refresh reads q
    }
    sim.access(qavg, cell_bytes);
    for (auto f : favg) sim.access(f, cell_bytes);
    for (int o = 0; o < n; ++o) {
      trace_vecop(sim, isa, p_at(o), qavg, cell, 2);
      for (int d = 0; d < 3; ++d)
        trace_vecop(sim, isa, od_at(df, o, d), favg[d], cell, 2);
    }
    sim.access(q, cell_bytes);
    if (corrector)
      trace_corrector_cell(sim, n, mp, pde, q, qavg, favg, arena);
  }
  result.cache = sim.stats();
  result.flops = FlopCounter::instance();
  result.measured_reps = reps;
  return result;
}

// ---------------------------------------------------------------------------
// SplitCK twin (mirrors splitck_stp.h).

TwinResult trace_splitck(int order, const TwinPde& pde, Isa isa,
                         CacheSim& sim, int warmup, int reps, bool corrector) {
  const int n = order;
  const int mp = pad_to(pde.quants, vector_width(isa));
  const std::size_t cell = static_cast<std::size_t>(n) * n * n * mp;
  const std::size_t cell_bytes = cell * kWord;
  const std::uint64_t nodes = static_cast<std::uint64_t>(n) * n * n;

  VirtualArena arena;
  std::uint64_t p = arena.alloc(cell);
  std::uint64_t ptemp = arena.alloc(cell);
  std::uint64_t flux = arena.alloc(cell);
  std::uint64_t gradq = arena.alloc(cell);
  const std::size_t workspace = arena.bytes();
  std::uint64_t diff = arena.alloc(static_cast<std::size_t>(n) * n);
  std::uint64_t qavg = arena.alloc(cell);
  std::vector<std::uint64_t> favg = {arena.alloc(cell), arena.alloc(cell),
                                     arena.alloc(cell)};

  // Mirrors SplitCkStpT::apply_volume_dimension: the flux stage runs only
  // over declared-nonzero flux rows (skipped entirely at cover 0) and the
  // gradient/NCP stage vanishes for conservative PDEs.
  auto volume_dim = [&](int d, std::uint64_t src, std::uint64_t dst) {
    const int cover = pde.flux_cover[d];
    if (cover > 0) {
      trace_pointwise(sim, src, flux, cell_bytes, nodes, pde.flux_flops);
      trace_aos_derivative(sim, isa, n, mp, cover, diff, flux, dst, d);
    }
    if (!pde.ncp_zero) {
      trace_aos_derivative(sim, isa, n, mp, mp, diff, src, gradq, d);
      trace_pointwise(sim, src, dst, cell_bytes, nodes,
                      pde.ncp_flops + pde.quants);
      sim.access(gradq, cell_bytes);
    }
  };

  TwinResult result;
  result.workspace_bytes = workspace;
  for (int rep = 0; rep < warmup + reps; ++rep) {
    if (rep == warmup) {
      sim.reset_stats();
      FlopCounter::instance().reset();
    }
    std::uint64_t q = arena.alloc(cell);
    trace_vecop(sim, isa, q, p, cell, 0);         // copy
    trace_vecop(sim, isa, q, qavg, cell, 1);      // scale
    for (int o = 0; o + 1 < n; ++o) {
      sim.access(ptemp, cell_bytes);              // zero
      for (int d = 0; d < 3; ++d) volume_dim(d, p, ptemp);
      trace_vecop(sim, isa, ptemp, qavg, cell, 2);
      std::swap(p, ptemp);
      sim.access(q, cell_bytes);                  // param refresh
      sim.access(p, cell_bytes);
    }
    sim.access(q, cell_bytes);
    sim.access(qavg, cell_bytes);
    for (int d = 0; d < 3; ++d) {
      sim.access(favg[d], cell_bytes);            // zero
      volume_dim(d, qavg, favg[d]);
    }
    if (corrector)
      trace_corrector_cell(sim, n, mp, pde, q, qavg, favg, arena);
  }
  result.cache = sim.stats();
  result.flops = FlopCounter::instance();
  result.measured_reps = reps;
  return result;
}

// ---------------------------------------------------------------------------
// AoSoA twin (mirrors aosoa_stp.h).

TwinResult trace_aosoa(int order, const TwinPde& pde, Isa isa, CacheSim& sim,
                       int warmup, int reps, bool corrector) {
  const int n = order;
  const int m = pde.quants;
  const int np = pad_to(n, vector_width(isa));
  const std::size_t cell = static_cast<std::size_t>(n) * n * m * np;
  const std::size_t cell_bytes = cell * kWord;
  const std::size_t line = static_cast<std::size_t>(m) * np;
  const std::size_t line_bytes = line * kWord;

  VirtualArena arena;
  std::uint64_t q_a = arena.alloc(cell);
  std::uint64_t p = arena.alloc(cell);
  std::uint64_t ptemp = arena.alloc(cell);
  std::uint64_t flux = arena.alloc(cell);
  std::uint64_t gradq = arena.alloc(cell);
  std::uint64_t qavg_a = arena.alloc(cell);
  std::vector<std::uint64_t> favg_a = {arena.alloc(cell), arena.alloc(cell),
                                       arena.alloc(cell)};
  std::uint64_t line_buf = arena.alloc(line);
  const std::size_t workspace = arena.bytes();
  std::uint64_t diff = arena.alloc(static_cast<std::size_t>(n) * n);
  std::uint64_t diff_t = arena.alloc(static_cast<std::size_t>(n) * np);
  const std::size_t aos_cell =
      static_cast<std::size_t>(n) * n * n * pad_to(m, vector_width(isa));
  std::uint64_t qavg_out = arena.alloc(aos_cell);
  std::vector<std::uint64_t> favg_out = {
      arena.alloc(aos_cell), arena.alloc(aos_cell), arena.alloc(aos_cell)};

  // Mirrors AosoaStpT::apply_volume_dimension (same gating as the SplitCK
  // twin: flux stage under cover > 0, gradient/NCP stage under !ncp_zero).
  auto volume_dim = [&](int d, std::uint64_t src, std::uint64_t dst) {
    const int cover = pde.flux_cover[d];
    if (cover > 0) {
      for (int l = 0; l < n * n; ++l) {
        const std::uint64_t off = static_cast<std::uint64_t>(l) * line_bytes;
        sim.access(src + off, line_bytes);
        sim.access(flux + off, line_bytes);
        count_packed_flops(isa, np, pde.flux_flops);
      }
      trace_aosoa_derivative(sim, isa, n, m, np, cover, diff, diff_t, flux,
                             dst, d);
    }
    if (!pde.ncp_zero) {
      trace_aosoa_derivative(sim, isa, n, m, np, m, diff, diff_t, src, gradq,
                             d);
      for (int l = 0; l < n * n; ++l) {
        const std::uint64_t off = static_cast<std::uint64_t>(l) * line_bytes;
        sim.access(src + off, line_bytes);
        sim.access(gradq + off, line_bytes);
        sim.access(line_buf, line_bytes);
        count_packed_flops(isa, np, pde.ncp_flops);
        trace_vecop(sim, isa, line_buf, dst + off, line, 1);
      }
    }
  };

  TwinResult result;
  result.workspace_bytes = workspace;
  for (int rep = 0; rep < warmup + reps; ++rep) {
    if (rep == warmup) {
      sim.reset_stats();
      FlopCounter::instance().reset();
    }
    std::uint64_t q = arena.alloc(aos_cell);
    trace_vecop(sim, Isa::kScalar, q, q_a, aos_cell, 0);  // AoS -> AoSoA
    trace_vecop(sim, isa, q_a, p, cell, 0);
    trace_vecop(sim, isa, q_a, qavg_a, cell, 1);
    for (int o = 0; o + 1 < n; ++o) {
      sim.access(ptemp, cell_bytes);
      for (int d = 0; d < 3; ++d) volume_dim(d, p, ptemp);
      trace_vecop(sim, isa, ptemp, qavg_a, cell, 2);
      std::swap(p, ptemp);
      sim.access(q_a, cell_bytes);
      sim.access(p, cell_bytes);
    }
    sim.access(q_a, cell_bytes);
    sim.access(qavg_a, cell_bytes);
    trace_vecop(sim, Isa::kScalar, qavg_a, qavg_out, cell, 0);  // transpose
    for (int d = 0; d < 3; ++d) {
      sim.access(favg_a[d], cell_bytes);
      volume_dim(d, qavg_a, favg_a[d]);
      trace_vecop(sim, Isa::kScalar, favg_a[d], favg_out[d], cell, 0);
    }
    if (corrector)
      trace_corrector_cell(sim, n, pad_to(m, vector_width(isa)), pde, q,
                           qavg_out, favg_out, arena);
  }
  result.cache = sim.stats();
  result.flops = FlopCounter::instance();
  result.measured_reps = reps;
  return result;
}

}  // namespace

TwinResult trace_stp(StpVariant variant, int order, const TwinPde& pde,
                     Isa isa, CacheSim& sim, int warmup, int reps,
                     bool include_corrector) {
  EXASTP_CHECK(order >= 2 && pde.quants > 0 && reps >= 1);
  // Validate before touching global state: the exceptional path must not
  // clobber the caller's FLOP counter.
  EXASTP_CHECK_MSG(variant != StpVariant::kSoaUfSplitCk,
                   "no trace twin for the rejected SoA-UF ablation variant; "
                   "measure it directly");
  // The twin borrows the global FlopCounter; preserve the caller's counts.
  const FlopCounter saved = FlopCounter::instance();
  FlopCounter::instance().reset();
  TwinResult result;
  switch (variant) {
    case StpVariant::kGeneric:
      result = trace_generic(order, pde, sim, warmup, reps, include_corrector);
      break;
    case StpVariant::kLog:
      result = trace_log(order, pde, isa, sim, warmup, reps, include_corrector);
      break;
    case StpVariant::kSplitCk:
      result = trace_splitck(order, pde, isa, sim, warmup, reps, include_corrector);
      break;
    case StpVariant::kAosoaSplitCk:
      result = trace_aosoa(order, pde, isa, sim, warmup, reps, include_corrector);
      break;
    case StpVariant::kSoaUfSplitCk:
      EXASTP_CHECK_MSG(false,
                       "no trace twin for the rejected SoA-UF ablation "
                       "variant; measure it directly");
      break;
  }
  FlopCounter::instance() = saved;
  return result;
}

}  // namespace exastp
