#include "exastp/perf/report.h"

#include <cstdio>
#include <iostream>

#include "exastp/common/check.h"

namespace exastp {

ReportTable::ReportTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ReportTable::add_row(std::vector<std::string> cells) {
  EXASTP_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void ReportTable::print(const std::string& title) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << (c == 0 ? "" : "  ");
      std::cout.width(static_cast<std::streamsize>(width[c]));
      std::cout << row[c];
    }
    std::cout << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

AsciiChart::AsciiChart(std::string y_label, int width, int height)
    : y_label_(std::move(y_label)), width_(width), height_(height) {
  EXASTP_CHECK(width >= 10 && height >= 4);
}

void AsciiChart::add_series(const std::string& name,
                            const std::vector<double>& x,
                            const std::vector<double>& y) {
  EXASTP_CHECK(x.size() == y.size() && !x.empty());
  static constexpr char kSymbols[] = "*o+x#@%&";
  Series s;
  s.name = name;
  s.symbol = kSymbols[series_.size() % (sizeof(kSymbols) - 1)];
  s.x = x;
  s.y = y;
  series_.push_back(std::move(s));
}

void AsciiChart::print(const std::string& title) const {
  if (series_.empty()) return;
  double xmin = series_[0].x[0], xmax = xmin, ymin = 0.0, ymax = 1e-300;
  for (const auto& s : series_)
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  ymax *= 1.05;
  const double xspan = std::max(xmax - xmin, 1e-12);
  const double yspan = std::max(ymax - ymin, 1e-12);

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  for (const auto& s : series_)
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = static_cast<int>((s.x[i] - xmin) / xspan * (width_ - 1));
      const int row = height_ - 1 -
                      static_cast<int>((s.y[i] - ymin) / yspan * (height_ - 1));
      canvas[row][col] = s.symbol;
    }

  std::cout << "\n-- " << title << " --\n";
  for (int r = 0; r < height_; ++r) {
    const double yvalue = ymin + (height_ - 1 - r) * yspan / (height_ - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%7.1f |", yvalue);
    std::cout << label << canvas[r] << "\n";
  }
  std::cout << "        +" << std::string(width_, '-') << "\n";
  char xl[160];
  std::snprintf(xl, sizeof(xl), "        %-4g%*s%4g\n", xmin,
                width_ - 8, "", xmax);
  std::cout << xl << "        " << y_label_ << "; series:";
  for (const auto& s : series_)
    std::cout << "  [" << s.symbol << "] " << s.name;
  std::cout << "\n";
  std::cout.flush();
}

void ReportTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  EXASTP_CHECK_MSG(out.good(), "cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c == 0 ? "" : ",") << row[c];
    out << "\n";
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace exastp
