#include "exastp/perf/instr_mix.h"

#include <cstdio>

namespace exastp {

InstrMix instruction_mix(const FlopCounter& counter) {
  InstrMix mix;
  const double total = static_cast<double>(counter.total());
  if (total <= 0.0) return mix;
  for (int c = 0; c < kNumWidthClasses; ++c)
    mix.percent[c] = 100.0 * static_cast<double>(counter.flops[c]) / total;
  return mix;
}

std::string format_mix(const InstrMix& mix) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "scalar %5.1f%% | 128 %5.1f%% | 256 %5.1f%% | 512 %5.1f%%",
                mix.percent[0], mix.percent[1], mix.percent[2],
                mix.percent[3]);
  return buf;
}

}  // namespace exastp
