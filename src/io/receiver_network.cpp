#include "exastp/io/receiver_network.h"

#include <utility>

#include "exastp/basis/lagrange.h"
#include "exastp/common/check.h"

namespace exastp {

void ReceiverNetwork::add_receiver(const std::array<double, 3>& position) {
  EXASTP_CHECK_MSG(!bound_ready_,
                   "receivers must be registered before the network binds");
  positions_.push_back(position);
}

void ReceiverNetwork::add_receivers(
    const std::vector<std::array<double, 3>>& positions) {
  for (const auto& position : positions) add_receiver(position);
}

void ReceiverNetwork::add_sink(std::unique_ptr<ReceiverSink> sink) {
  EXASTP_CHECK(sink != nullptr);
  EXASTP_CHECK_MSG(!bound_ready_,
                   "sinks must be attached before the network binds");
  sinks_.push_back(std::move(sink));
}

namespace {
bool same_grid(const GridSpec& a, const GridSpec& b) {
  return a.cells == b.cells && a.origin == b.origin && a.extent == b.extent &&
         a.boundary == b.boundary;
}
}  // namespace

std::vector<std::string> default_quantity_names(
    const std::vector<int>& quantities) {
  std::vector<std::string> names;
  names.reserve(quantities.size());
  for (int s : quantities) {
    // "q" + to_string trips a GCC 12 -Wrestrict false positive here.
    std::string name = "q";
    name += std::to_string(s);
    names.push_back(std::move(name));
  }
  return names;
}

void ReceiverNetwork::bind(const SolverBase& solver) {
  const BasisTables& tables = solver.basis();
  const int n = solver.layout().n;
  // Validate against *this* solver even on a cache hit: a different-PDE
  // solver can share basis and grid while storing fewer quantities.
  if (quantities_.empty())
    for (int s = 0; s < solver.evolved_quantities(); ++s)
      quantities_.push_back(s);
  for (int s : quantities_)
    EXASTP_CHECK_MSG(s >= 0 && s < solver.layout().m,
                     "receiver quantity " + std::to_string(s) +
                         " is not stored by this solver");

  // The cached cells/weights depend only on the basis and the grid
  // geometry, so any solver matching both (including the same one)
  // reuses them.
  if (bound_ready_ && bound_basis_ == &tables &&
      same_grid(bound_grid_, solver.grid().spec()))
    return;

  const bool first_bind = !bound_ready_;
  bound_.assign(positions_.size(), BoundReceiver{});
  // Locating cells and evaluating n^3 basis products is independent per
  // receiver; each slot is written by exactly one index, so the cache is
  // deterministic on any thread count.
  solver.parallel().for_each(
      static_cast<long>(positions_.size()), [&](int, long r) {
        BoundReceiver& b = bound_[static_cast<std::size_t>(r)];
        std::array<double, 3> xi{};
        b.cell = solver.grid().locate(positions_[static_cast<std::size_t>(r)],
                                      &xi);
        b.weights.assign(static_cast<std::size_t>(n) * n * n, 0.0);
        for (int k3 = 0; k3 < n; ++k3) {
          const double p3 = lagrange_value(tables.nodes, k3, xi[2]);
          for (int k2 = 0; k2 < n; ++k2) {
            const double p23 = p3 * lagrange_value(tables.nodes, k2, xi[1]);
            for (int k1 = 0; k1 < n; ++k1)
              b.weights[(static_cast<std::size_t>(k3) * n + k2) * n + k1] =
                  p23 * lagrange_value(tables.nodes, k1, xi[0]);
          }
        }
      });
  bound_ready_ = true;
  bound_basis_ = &tables;
  bound_grid_ = solver.grid().spec();
  row_.assign(row_size(), 0.0);
  if (first_bind)
    for (auto& sink : sinks_) sink->open(*this);
}

void ReceiverNetwork::sample_now(const SolverBase& solver) {
  bind(solver);
  if (positions_.empty()) return;
  const AosLayout& aos = solver.layout();
  const int n = aos.n;
  const std::size_t nq = quantities_.size();
  // Receiver-parallel on the solver's team: receiver r writes only
  // row_[r*nq .. r*nq+nq), so the row is identical for any thread count.
  solver.parallel().for_each(
      static_cast<long>(positions_.size()), [&](int, long r) {
        const BoundReceiver& b = bound_[static_cast<std::size_t>(r)];
        const double* qc = solver.cell_dofs(b.cell);
        double* out = row_.data() + static_cast<std::size_t>(r) * nq;
        for (std::size_t q = 0; q < nq; ++q) {
          const int s = quantities_[q];
          double value = 0.0;
          std::size_t k = 0;
          for (int k3 = 0; k3 < n; ++k3)
            for (int k2 = 0; k2 < n; ++k2)
              for (int k1 = 0; k1 < n; ++k1, ++k)
                value += b.weights[k] * qc[aos.idx(k3, k2, k1, s)];
          out[q] = value;
        }
      });
  times_.push_back(solver.time());
  if (keep_traces_) data_.insert(data_.end(), row_.begin(), row_.end());
  for (auto& sink : sinks_)
    sink->append(times_.back(), row_.data(), row_.size());
}

void ReceiverNetwork::on_start(const SolverBase& solver) {
  sample_now(solver);  // binds + records the initial state
}

void ReceiverNetwork::on_step(const SolverBase& solver, int /*step*/) {
  sample_now(solver);
}

void ReceiverNetwork::on_finish(const SolverBase& /*solver*/) {
  for (auto& sink : sinks_) sink->finish();
}

double ReceiverNetwork::value(std::size_t sample, std::size_t receiver,
                              std::size_t q) const {
  EXASTP_CHECK_MSG(keep_traces_, "trace retention is off for this network");
  EXASTP_CHECK(sample < times_.size() && receiver < positions_.size() &&
               q < quantities_.size());
  return data_[sample * row_size() + receiver * quantities_.size() + q];
}

std::vector<double> ReceiverNetwork::trace(std::size_t receiver,
                                           std::size_t q) const {
  std::vector<double> out;
  out.reserve(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i)
    out.push_back(value(i, receiver, q));
  return out;
}

}  // namespace exastp
