// Batched receiver (seismogram) network: many probe points registered at
// once, sampled incrementally from the time loop.
//
// The old SeismogramRecorder re-located its containing cell and re-evaluated
// all n^3 Lagrange basis products on *every* sample. ReceiverNetwork does
// that work once per receiver at bind time (cell index + tensor-product
// basis weights against the solver's layout) and every subsequent sample is
// a dense dot product per quantity — cheap enough to run after every step
// with dozens of receivers attached (< 5% overhead on the threaded
// planewave workload; tests/test_io.cpp guards this).
//
// Sampling fans out over the solver's own thread team (ParallelFor): each
// receiver writes only its slot of the preallocated row, so the traces are
// deterministic and bitwise-identical for any thread count. Attached
// ReceiverSinks stream each sampled row out incrementally (appending CSV,
// binary record stream — receiver_sinks.h) while the in-memory traces stay
// available for analysis.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exastp/io/observer.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class ReceiverNetwork;

/// "q<index>" labels for a list of quantity indices — the default naming
/// shared by receiver CSV headers, VTK series fields and the post-hoc VTK
/// dump.
std::vector<std::string> default_quantity_names(
    const std::vector<int>& quantities);

/// Incremental consumer of sampled receiver rows. open() is called once at
/// bind time (headers), append() once per sample with the row laid out as
/// [receiver-major][quantity-minor], finish() when the run ends (flush;
/// idempotent, may be called more than once).
class ReceiverSink {
 public:
  virtual ~ReceiverSink() = default;
  virtual void open(const ReceiverNetwork& network) = 0;
  virtual void append(double time, const double* row, std::size_t n) = 0;
  virtual void finish() = 0;
};

class ReceiverNetwork final : public Observer {
 public:
  /// `quantities` are the sampled quantity indices; empty means "all
  /// evolved quantities" (resolved against the solver at bind time — the
  /// same default the receivers= config key gets, material parameters
  /// excluded).
  explicit ReceiverNetwork(std::vector<int> quantities = {})
      : quantities_(std::move(quantities)) {}

  /// Registers one probe point; only valid before bind().
  void add_receiver(const std::array<double, 3>& position);
  void add_receivers(const std::vector<std::array<double, 3>>& positions);

  /// Takes ownership of a streaming sink (CSV, binary, ...).
  void add_sink(std::unique_ptr<ReceiverSink> sink);

  /// Whether sampled rows are also kept in memory for value()/trace()
  /// (default true). Turn off for unbounded runs that only stream to
  /// sinks: memory then stays constant per step (times_ still grows by
  /// one double per sample for num_samples bookkeeping).
  void set_keep_traces(bool keep) { keep_traces_ = keep; }

  /// Locates each receiver's containing cell and precomputes its n^3
  /// tensor-product basis weights (thread-parallel over receivers, on the
  /// solver's team). Called automatically from on_start; call it directly
  /// when driving the network by hand. Throws if a receiver lies outside
  /// the domain. Binding to a solver with another basis or grid geometry
  /// re-derives the cache.
  void bind(const SolverBase& solver);

  /// Samples every receiver at the solver's current time and appends one
  /// row to the traces and every sink. Binds first if needed.
  void sample_now(const SolverBase& solver);

  // Observer hooks: bind + initial sample, per-step sample, sink flush.
  void on_start(const SolverBase& solver) override;
  void on_step(const SolverBase& solver, int step) override;
  void on_finish(const SolverBase& solver) override;

  std::size_t num_receivers() const { return positions_.size(); }
  std::size_t num_samples() const { return times_.size(); }
  const std::vector<int>& quantities() const { return quantities_; }
  const std::vector<std::array<double, 3>>& positions() const {
    return positions_;
  }
  const std::vector<double>& times() const { return times_; }

  /// Sampled value: row `sample`, receiver `receiver`, quantity slot `q`
  /// (an index into quantities(), not a quantity id). Throws when trace
  /// retention is off.
  double value(std::size_t sample, std::size_t receiver, std::size_t q) const;
  /// Full time series of one receiver/quantity-slot pair.
  std::vector<double> trace(std::size_t receiver, std::size_t q) const;

 private:
  std::size_t row_size() const { return positions_.size() * quantities_.size(); }

  std::vector<int> quantities_;
  std::vector<std::array<double, 3>> positions_;
  std::vector<std::unique_ptr<ReceiverSink>> sinks_;

  // Bind-time cache, one entry per receiver.
  struct BoundReceiver {
    int cell = -1;
    std::vector<double> weights;  ///< n^3 tensor-product basis values
  };
  std::vector<BoundReceiver> bound_;
  /// Bind cache key: everything the cells and weights are derived from.
  /// Basis tables are process-wide statics per (order, family), so the
  /// pointer is a stable identity — unlike a solver address, which a new
  /// solver can reuse after the old one is destroyed.
  bool bound_ready_ = false;
  const BasisTables* bound_basis_ = nullptr;
  GridSpec bound_grid_;

  bool keep_traces_ = true;
  std::vector<double> times_;
  std::vector<double> data_;  ///< num_samples x row_size when kept, row-major
  std::vector<double> row_;   ///< scratch row reused between samples
};

}  // namespace exastp
