#include "exastp/io/vtk_series.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "exastp/common/check.h"
#include "exastp/solver/output.h"

namespace exastp {

VtkSeriesWriter::VtkSeriesWriter(std::string base, std::vector<int> quantities,
                                 std::vector<std::string> names,
                                 double interval)
    : base_(std::move(base)),
      quantities_(std::move(quantities)),
      names_(std::move(names)),
      interval_(interval) {
  EXASTP_CHECK_MSG(!base_.empty(), "VTK series needs a base path");
  EXASTP_CHECK(quantities_.size() == names_.size());
}

void VtkSeriesWriter::on_start(const SolverBase& solver) {
  emit(solver);
  next_emit_time_ = solver.time() + interval_;
}

void VtkSeriesWriter::on_step(const SolverBase& solver, int /*step*/) {
  constexpr double kEps = 1e-12;
  if (interval_ <= 0.0) {
    emit(solver);
    return;
  }
  if (solver.time() < next_emit_time_ - kEps) return;
  emit(solver);
  // Advance along the fixed grid, skipping thresholds a large step jumped
  // over, so the spacing stays the configured interval on average instead
  // of accumulating per-step overshoot.
  while (next_emit_time_ <= solver.time() + kEps) next_emit_time_ += interval_;
}

void VtkSeriesWriter::on_finish(const SolverBase& solver) {
  // Capture the end state if the last step landed between emit points.
  // snapshots_ (not the index entries, which only rank 0 keeps) decides,
  // so every rank of a distributed run takes the same branch.
  if (snapshots_ == 0 || solver.time() > last_emit_time_ + 1e-12)
    emit(solver);
  else if (solver.rank() == 0)
    write_index();
}

void VtkSeriesWriter::emit(const SolverBase& solver) {
  // Monolithic runs keep the flat <base>_NNNN.vtk names; sharded runs emit
  // one piece per shard, each written over the shard's own grid view so
  // the pieces tile the domain. On a distributed run every rank writes
  // only its resident pieces, while rank 0 — which observes the same
  // lockstep times and knows the shared naming scheme — indexes all of
  // them, so the merged .pvd lists the whole decomposition exactly like a
  // local sharded run's.
  const int shards = solver.num_shards();
  for (int p = 0; p < shards; ++p) {
    char suffix[24];
    if (shards == 1) {
      std::snprintf(suffix, sizeof(suffix), "_%04d.vtk", snapshots_);
    } else {
      std::snprintf(suffix, sizeof(suffix), "_%04d_p%02d.vtk", snapshots_, p);
    }
    const std::string path = base_ + suffix;
    if (solver.shard_is_local(p))
      write_vtk_cell_averages(solver.shard(p), quantities_, names_, path);
    // The index references snapshots relative to its own directory.
    const auto slash = path.find_last_of('/');
    if (solver.rank() == 0)
      entries_.push_back(
          {solver.time(), p,
           slash == std::string::npos ? path : path.substr(slash + 1)});
  }
  ++snapshots_;
  last_emit_time_ = solver.time();
  if (solver.rank() == 0) write_index();
}

void VtkSeriesWriter::write_index() const {
  std::ofstream out(index_path());
  EXASTP_CHECK_MSG(out.good(), "cannot open " + index_path());
  out << "<?xml version=\"1.0\"?>\n"
      << "<VTKFile type=\"Collection\" version=\"0.1\">\n"
      << "  <Collection>\n";
  for (const Entry& entry : entries_)
    out << "    <DataSet timestep=\"" << entry.time << "\" part=\""
        << entry.part << "\" file=\"" << entry.file << "\"/>\n";
  out << "  </Collection>\n</VTKFile>\n";
  out.flush();
  EXASTP_CHECK_MSG(out.good(), "write failed: " + index_path());
}

}  // namespace exastp
