// Incremental receiver-row sinks: appending CSV and a compact binary
// record stream.
//
// Both sinks stream one row per sample as it is produced — the file on disk
// is valid after every append (flush per row), so long runs can be tailed,
// post-processed or shipped while the solver is still stepping; nothing is
// buffered until the end of the run.
//
// Binary record-stream format (native endianness, for downstream tooling):
//   8 bytes   magic "EXSTPRC1"
//   uint32    num_receivers
//   uint32    num_quantities
//   int32  x num_quantities           sampled quantity indices
//   double x 3 x num_receivers        receiver positions (x, y, z)
//   records, until EOF:
//     double                          time
//     double x num_receivers x num_quantities   row, receiver-major
// read_receiver_records() re-reads the stream (round-trip tested).
#pragma once

#include <array>
#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "exastp/io/receiver_network.h"

namespace exastp {

/// Appends "t,r0_q0,r0_q1,...,rN_qM" rows to a CSV file, header first.
class CsvReceiverSink final : public ReceiverSink {
 public:
  /// `names` labels the sampled quantities in the header; empty falls back
  /// to "q<index>". Throws on open/size-mismatch errors at open() time.
  explicit CsvReceiverSink(std::string path,
                           std::vector<std::string> names = {});

  void open(const ReceiverNetwork& network) override;
  void append(double time, const double* row, std::size_t n) override;
  void finish() override;

 private:
  std::string path_;
  std::vector<std::string> names_;
  std::ofstream out_;
};

/// Streams the binary record format documented above.
class BinaryReceiverSink final : public ReceiverSink {
 public:
  explicit BinaryReceiverSink(std::string path) : path_(std::move(path)) {}

  void open(const ReceiverNetwork& network) override;
  void append(double time, const double* row, std::size_t n) override;
  void finish() override;

 private:
  std::string path_;
  std::ofstream out_;
};

/// A re-read binary record stream.
struct ReceiverRecords {
  std::vector<std::array<double, 3>> positions;
  std::vector<int> quantities;
  std::vector<double> times;
  /// times.size() rows of positions.size() * quantities.size() values,
  /// receiver-major.
  std::vector<double> data;

  std::size_t row_size() const {
    return positions.size() * quantities.size();
  }
  double value(std::size_t sample, std::size_t receiver,
               std::size_t q) const {
    return data[sample * row_size() + receiver * quantities.size() + q];
  }
};

/// Reads a BinaryReceiverSink stream back; throws on bad magic or a
/// truncated header. A trailing partial record (e.g. from a killed run) is
/// ignored, matching the "valid after every append" contract.
ReceiverRecords read_receiver_records(const std::string& path);

/// Writes records in the BinaryReceiverSink stream format.
void write_receiver_records(const ReceiverRecords& records,
                            const std::string& path);
/// Writes records in the CsvReceiverSink format (same header and row
/// layout a local run streams).
void write_receiver_csv(const ReceiverRecords& records,
                        const std::string& path);

/// Rank-0 merge of a distributed run's per-rank receiver streams into the
/// artifacts of a local run (see README "Distributed execution (MPI)").
/// Under backend=mpi every rank streams its locally-owned receivers to
/// `<part_base>.r<rank>.part`; this reads every rank's part (ranks that
/// own no receiver write none — missing parts are skipped), reorders the
/// rows to the full network's `positions` order (positions are copied
/// verbatim from the config, so rows match their global slot by exact
/// position equality), writes the merged binary stream to `bin_path`
/// and/or a CSV to `csv_path` (empty = skip), and returns the merged
/// records. The parts stay on disk — a raised-t_end rerun keeps appending
/// to them, and a re-merge then covers the longer streams. Sample times
/// must agree across parts (the lockstep time loop guarantees it);
/// mismatches throw.
ReceiverRecords merge_receiver_records(
    const std::string& part_base, int ranks,
    const std::vector<std::array<double, 3>>& positions,
    const std::string& bin_path, const std::string& csv_path);

}  // namespace exastp
