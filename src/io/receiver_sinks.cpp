#include "exastp/io/receiver_sinks.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>

#include "exastp/common/check.h"

namespace exastp {
namespace {

constexpr char kMagic[8] = {'E', 'X', 'S', 'T', 'P', 'R', 'C', '1'};

template <class T>
void write_raw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
bool read_raw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

}  // namespace

CsvReceiverSink::CsvReceiverSink(std::string path,
                                 std::vector<std::string> names)
    : path_(std::move(path)), names_(std::move(names)) {}

void CsvReceiverSink::open(const ReceiverNetwork& network) {
  const std::vector<int>& quantities = network.quantities();
  if (names_.empty()) names_ = default_quantity_names(quantities);
  EXASTP_CHECK_MSG(names_.size() == quantities.size(),
                   "receiver CSV needs one name per sampled quantity");
  out_.open(path_);
  EXASTP_CHECK_MSG(out_.good(), "cannot open " + path_);
  // Full round-trippable precision: the CSV is primary seismogram output,
  // and 6 significant digits cannot distinguish successive times of a
  // long fine-stepped run.
  out_.precision(std::numeric_limits<double>::max_digits10);
  out_ << "t";
  for (std::size_t r = 0; r < network.num_receivers(); ++r)
    for (const std::string& name : names_) out_ << ",r" << r << "_" << name;
  out_ << "\n" << std::flush;
}

void CsvReceiverSink::append(double time, const double* row, std::size_t n) {
  out_ << time;
  for (std::size_t i = 0; i < n; ++i) out_ << "," << row[i];
  out_ << "\n" << std::flush;
  EXASTP_CHECK_MSG(out_.good(), "write failed: " + path_);
}

void CsvReceiverSink::finish() {
  out_.flush();
  EXASTP_CHECK_MSG(out_.good(), "write failed: " + path_);
}

void BinaryReceiverSink::open(const ReceiverNetwork& network) {
  out_.open(path_, std::ios::binary);
  EXASTP_CHECK_MSG(out_.good(), "cannot open " + path_);
  out_.write(kMagic, sizeof(kMagic));
  write_raw(out_, static_cast<std::uint32_t>(network.num_receivers()));
  write_raw(out_, static_cast<std::uint32_t>(network.quantities().size()));
  for (int s : network.quantities())
    write_raw(out_, static_cast<std::int32_t>(s));
  for (const auto& position : network.positions())
    for (double x : position) write_raw(out_, x);
  out_.flush();
}

void BinaryReceiverSink::append(double time, const double* row,
                                std::size_t n) {
  write_raw(out_, time);
  out_.write(reinterpret_cast<const char*>(row),
             static_cast<std::streamsize>(n * sizeof(double)));
  out_.flush();
  EXASTP_CHECK_MSG(out_.good(), "write failed: " + path_);
}

void BinaryReceiverSink::finish() {
  out_.flush();
  EXASTP_CHECK_MSG(out_.good(), "write failed: " + path_);
}

ReceiverRecords read_receiver_records(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXASTP_CHECK_MSG(in.good(), "cannot open " + path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  EXASTP_CHECK_MSG(
      in.gcount() == sizeof(magic) &&
          std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
      path + " is not an exastp receiver record stream");

  ReceiverRecords records;
  std::uint32_t num_receivers = 0, num_quantities = 0;
  EXASTP_CHECK_MSG(read_raw(in, &num_receivers) &&
                       read_raw(in, &num_quantities),
                   path + ": truncated record-stream header");
  for (std::uint32_t q = 0; q < num_quantities; ++q) {
    std::int32_t s = 0;
    EXASTP_CHECK_MSG(read_raw(in, &s), path + ": truncated quantity list");
    records.quantities.push_back(s);
  }
  for (std::uint32_t r = 0; r < num_receivers; ++r) {
    std::array<double, 3> position{};
    for (double& x : position)
      EXASTP_CHECK_MSG(read_raw(in, &x), path + ": truncated positions");
    records.positions.push_back(position);
  }

  const std::size_t row_size = records.row_size();
  std::vector<double> row(row_size);
  double time = 0.0;
  while (read_raw(in, &time)) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row_size * sizeof(double)));
    if (in.gcount() !=
        static_cast<std::streamsize>(row_size * sizeof(double)))
      break;  // trailing partial record from an interrupted run
    records.times.push_back(time);
    records.data.insert(records.data.end(), row.begin(), row.end());
  }
  return records;
}

void write_receiver_records(const ReceiverRecords& records,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  EXASTP_CHECK_MSG(out.good(), "cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_raw(out, static_cast<std::uint32_t>(records.positions.size()));
  write_raw(out, static_cast<std::uint32_t>(records.quantities.size()));
  for (int s : records.quantities)
    write_raw(out, static_cast<std::int32_t>(s));
  for (const auto& position : records.positions)
    for (double x : position) write_raw(out, x);
  const std::size_t row_size = records.row_size();
  for (std::size_t i = 0; i < records.times.size(); ++i) {
    write_raw(out, records.times[i]);
    out.write(reinterpret_cast<const char*>(records.data.data() + i * row_size),
              static_cast<std::streamsize>(row_size * sizeof(double)));
  }
  out.flush();
  EXASTP_CHECK_MSG(out.good(), "write failed: " + path);
}

void write_receiver_csv(const ReceiverRecords& records,
                        const std::string& path) {
  std::ofstream out(path);
  EXASTP_CHECK_MSG(out.good(), "cannot open " + path);
  out.precision(std::numeric_limits<double>::max_digits10);
  const std::vector<std::string> names =
      default_quantity_names(records.quantities);
  out << "t";
  for (std::size_t r = 0; r < records.positions.size(); ++r)
    for (const std::string& name : names) out << ",r" << r << "_" << name;
  out << "\n";
  const std::size_t row_size = records.row_size();
  for (std::size_t i = 0; i < records.times.size(); ++i) {
    out << records.times[i];
    for (std::size_t j = 0; j < row_size; ++j)
      out << "," << records.data[i * row_size + j];
    out << "\n";
  }
  out.flush();
  EXASTP_CHECK_MSG(out.good(), "write failed: " + path);
}

ReceiverRecords merge_receiver_records(
    const std::string& part_base, int ranks,
    const std::vector<std::array<double, 3>>& positions,
    const std::string& bin_path, const std::string& csv_path) {
  ReceiverRecords merged;
  merged.positions = positions;
  std::vector<bool> filled(positions.size(), false);

  for (int k = 0; k < ranks; ++k) {
    const std::string part = part_base + ".r" + std::to_string(k) + ".part";
    if (!std::ifstream(part, std::ios::binary).good())
      continue;  // this rank owned no receiver
    const ReceiverRecords records = read_receiver_records(part);
    if (records.positions.empty()) continue;

    if (merged.quantities.empty()) {
      merged.quantities = records.quantities;
      merged.times = records.times;
      merged.data.assign(merged.times.size() * merged.row_size(), 0.0);
    }
    EXASTP_CHECK_MSG(records.quantities == merged.quantities &&
                         records.times == merged.times,
                     part + ": per-rank streams disagree on the sample grid");

    // Positions are copied verbatim from the shared config on every rank,
    // so a row's global slot is its exact position match — the first
    // still-unfilled one, so duplicate probe points each land in their
    // own column like a local run streams them.
    for (std::size_t r = 0; r < records.positions.size(); ++r) {
      std::size_t slot = positions.size();
      for (std::size_t p = 0; p < positions.size(); ++p) {
        if (!filled[p] && positions[p] == records.positions[r]) {
          slot = p;
          break;
        }
      }
      EXASTP_CHECK_MSG(slot < positions.size(),
                       part + ": receiver not in the configured network");
      filled[slot] = true;
      const std::size_t nq = merged.quantities.size();
      for (std::size_t i = 0; i < merged.times.size(); ++i)
        for (std::size_t q = 0; q < nq; ++q)
          merged.data[i * merged.row_size() + slot * nq + q] =
              records.value(i, r, q);
    }
  }

  if (!bin_path.empty()) write_receiver_records(merged, bin_path);
  if (!csv_path.empty()) write_receiver_csv(merged, csv_path);
  return merged;
}

}  // namespace exastp
