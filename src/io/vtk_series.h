// Incremental VTK snapshot series with a .pvd-style collection index.
//
// Emits interval-spaced cell-average snapshots (<base>_NNNN.vtk, the legacy
// writer from solver/output.h) from the time loop and maintains
// <base>.pvd — a ParaView-collection XML mapping timestep -> file. The
// index is rewritten after every snapshot, so the series on disk is
// complete and loadable at any point during the run, not just after it.
//
// Sharded solvers (solver/sharded_solver.h) emit one piece per shard and
// snapshot — <base>_NNNN_pKK.vtk, each covering its shard's cell box — and
// the index lists the pieces of a timestep under distinct part attributes,
// so a decomposed run stays a single loadable series.
#pragma once

#include <string>
#include <vector>

#include "exastp/io/observer.h"

namespace exastp {

class VtkSeriesWriter final : public Observer {
 public:
  /// Snapshots of `quantities` (labelled `names`) every `interval` of
  /// simulation time; interval <= 0 means "after every step". `base` is the
  /// path prefix — files land at <base>_NNNN.vtk and <base>.pvd.
  VtkSeriesWriter(std::string base, std::vector<int> quantities,
                  std::vector<std::string> names, double interval);

  void on_start(const SolverBase& solver) override;
  void on_step(const SolverBase& solver, int step) override;
  void on_finish(const SolverBase& solver) override;

  /// Snapshots emitted so far (a snapshot is all shards of one timestep).
  int num_snapshots() const { return snapshots_; }
  /// Path of the collection index (<base>.pvd).
  std::string index_path() const { return base_ + ".pvd"; }

 private:
  void emit(const SolverBase& solver);
  void write_index() const;

  std::string base_;
  std::vector<int> quantities_;
  std::vector<std::string> names_;
  double interval_ = 0.0;
  double last_emit_time_ = 0.0;
  /// Next threshold on the fixed t0 + k*interval grid, so spacing does not
  /// drift by the per-step overshoot when dt does not divide the interval.
  double next_emit_time_ = 0.0;

  struct Entry {
    double time;
    int part;          ///< shard index (0 for monolithic runs)
    std::string file;  ///< basename relative to the index file
  };
  std::vector<Entry> entries_;
  int snapshots_ = 0;
};

}  // namespace exastp
