// Incremental VTK snapshot series with a .pvd-style collection index.
//
// Emits interval-spaced cell-average snapshots (<base>_NNNN.vtk, the legacy
// writer from solver/output.h) from the time loop and maintains
// <base>.pvd — a ParaView-collection XML mapping timestep -> file. The
// index is rewritten after every snapshot, so the series on disk is
// complete and loadable at any point during the run, not just after it.
#pragma once

#include <string>
#include <vector>

#include "exastp/io/observer.h"

namespace exastp {

class VtkSeriesWriter final : public Observer {
 public:
  /// Snapshots of `quantities` (labelled `names`) every `interval` of
  /// simulation time; interval <= 0 means "after every step". `base` is the
  /// path prefix — files land at <base>_NNNN.vtk and <base>.pvd.
  VtkSeriesWriter(std::string base, std::vector<int> quantities,
                  std::vector<std::string> names, double interval);

  void on_start(const SolverBase& solver) override;
  void on_step(const SolverBase& solver, int step) override;
  void on_finish(const SolverBase& solver) override;

  /// Snapshots emitted so far.
  int num_snapshots() const { return static_cast<int>(entries_.size()); }
  /// Path of the collection index (<base>.pvd).
  std::string index_path() const { return base_ + ".pvd"; }

 private:
  void emit(const SolverBase& solver);
  void write_index() const;

  std::string base_;
  std::vector<int> quantities_;
  std::vector<std::string> names_;
  double interval_ = 0.0;
  double last_emit_time_ = 0.0;
  /// Next threshold on the fixed t0 + k*interval grid, so spacing does not
  /// drift by the per-step overshoot when dt does not divide the interval.
  double next_emit_time_ = 0.0;

  struct Entry {
    double time;
    std::string file;  ///< basename relative to the index file
  };
  std::vector<Entry> entries_;
};

}  // namespace exastp
