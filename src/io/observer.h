// Streaming observer hooks on the solver time loop — the engine's
// "Plotters" role (paper Fig. 2) as a first-class subsystem.
//
// An Observer watches a running solver without touching it: every hook
// receives a const SolverBase&, so attaching any number of observers leaves
// the field state bitwise-identical to an observer-free run (guarded by
// tests/test_io.cpp). SolverBase::run_until drives the hooks for both
// steppers:
//
//   on_start   once per observer, before the first step it witnesses
//              (receiver binding, file headers, the t = 0 sample);
//   on_step    after every completed step inside run_until;
//   on_finish  when run_until returns (flush/close; may fire again if
//              run_until is called repeatedly with a raised t_end, so
//              implementations keep it idempotent).
//
// Direct step() calls bypass the hooks — run_until owns the loop.
// Concrete observers live next to this header: ReceiverNetwork
// (receiver_network.h) and VtkSeriesWriter (vtk_series.h); the engine
// builds them from declarative config keys via ObserverRegistry
// (engine/observer_registry.h).
#pragma once

namespace exastp {

class SolverBase;

class Observer {
 public:
  virtual ~Observer() = default;

  /// Fired once before the first observed step; the solver is initialized
  /// and at its current (usually initial) time.
  virtual void on_start(const SolverBase& /*solver*/) {}
  /// Fired after each completed step inside run_until; `step` counts the
  /// solver's observed steps cumulatively, starting at 1.
  virtual void on_step(const SolverBase& /*solver*/, int /*step*/) {}
  /// Fired when run_until returns (also for zero-step calls). May fire more
  /// than once over an observer's life; implementations stay idempotent.
  virtual void on_finish(const SolverBase& /*solver*/) {}
};

}  // namespace exastp
