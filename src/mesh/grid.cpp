#include "exastp/mesh/grid.h"

#include <cmath>

namespace exastp {

Grid::Grid(const GridSpec& spec)
    : spec_(spec),
      nx_(spec.cells[0]),
      ny_(spec.cells[1]),
      nz_(spec.cells[2]) {
  for (int d = 0; d < 3; ++d) {
    EXASTP_CHECK_MSG(spec.cells[d] >= 1, "grid needs at least one cell");
    EXASTP_CHECK_MSG(spec.extent[d] > 0.0, "grid extent must be positive");
    dx_[d] = spec.extent[d] / spec.cells[d];
  }
}

std::array<int, 3> Grid::coords(int cell) const {
  EXASTP_CHECK(cell >= 0 && cell < num_cells());
  const int cx = cell % nx_;
  const int cy = (cell / nx_) % ny_;
  const int cz = cell / (nx_ * ny_);
  return {cx, cy, cz};
}

std::array<double, 3> Grid::cell_origin(int cell) const {
  const auto c = coords(cell);
  return {spec_.origin[0] + c[0] * dx_[0], spec_.origin[1] + c[1] * dx_[1],
          spec_.origin[2] + c[2] * dx_[2]};
}

NeighborRef Grid::neighbor(int cell, int dir, int side) const {
  EXASTP_CHECK(dir >= 0 && dir < 3 && (side == 0 || side == 1));
  auto c = coords(cell);
  const int n[3] = {nx_, ny_, nz_};
  int v = c[dir] + (side == 0 ? -1 : 1);
  if (v < 0 || v >= n[dir]) {
    if (spec_.boundary[dir] == BoundaryKind::kPeriodic) {
      v = (v + n[dir]) % n[dir];
    } else {
      return {-1, true, spec_.boundary[dir]};
    }
  }
  c[dir] = v;
  return {index(c[0], c[1], c[2]), false, spec_.boundary[dir]};
}

int Grid::locate(const std::array<double, 3>& x,
                 std::array<double, 3>* xi) const {
  std::array<int, 3> c{};
  std::array<double, 3> ref{};
  const int n[3] = {nx_, ny_, nz_};
  for (int d = 0; d < 3; ++d) {
    const double rel = (x[d] - spec_.origin[d]) / dx_[d];
    EXASTP_CHECK_MSG(rel >= 0.0 && rel <= n[d] + 1e-12,
                     "point outside the domain");
    c[d] = std::min(static_cast<int>(rel), n[d] - 1);
    ref[d] = std::min(std::max(rel - c[d], 0.0), 1.0);
  }
  if (xi != nullptr) *xi = ref;
  return index(c[0], c[1], c[2]);
}

}  // namespace exastp
