#include "exastp/mesh/grid.h"

#include <algorithm>
#include <cmath>

namespace exastp {

Grid::Grid(const GridSpec& spec) : Grid(spec, {0, 0, 0}, spec.cells) {}

Grid::Grid(const GridSpec& global_spec, const std::array<int, 3>& lo,
           const std::array<int, 3>& size)
    : global_(global_spec),
      lo_(lo),
      nx_(size[0]),
      ny_(size[1]),
      nz_(size[2]),
      gn_(global_spec.cells) {
  for (int d = 0; d < 3; ++d) {
    EXASTP_CHECK_MSG(gn_[d] >= 1, "grid needs at least one cell");
    EXASTP_CHECK_MSG(global_.extent[d] > 0.0, "grid extent must be positive");
    EXASTP_CHECK_MSG(size[d] >= 1, "view needs at least one cell");
    EXASTP_CHECK_MSG(lo_[d] >= 0 && lo_[d] + size[d] <= gn_[d],
                     "view box must lie inside the global grid");
    dx_[d] = global_.extent[d] / gn_[d];
    if (lo_[d] != 0 || size[d] != gn_[d]) partitioned_ = true;
  }
  // The view box as a spec of its own: derived metadata for per-shard
  // writers. Geometry queries never read it — they use global coordinates.
  spec_ = global_;
  spec_.cells = size;
  for (int d = 0; d < 3; ++d) {
    spec_.origin[d] = global_.origin[d] + lo_[d] * dx_[d];
    spec_.extent[d] = size[d] * dx_[d];
  }

  // Halo slots: one contiguous block per face whose neighbour plane lives
  // outside the view (another shard, possibly across a periodic wrap).
  const int n[3] = {nx_, ny_, nz_};
  for (int dir = 0; dir < 3; ++dir) {
    for (int side = 0; side < 2; ++side) {
      halo_begin_[dir][side] = -1;
      // Global row just beyond this face of the view.
      const int g = side == 0 ? lo_[dir] - 1 : lo_[dir] + n[dir];
      bool remote = false;
      if (g >= 0 && g < gn_[dir]) {
        remote = true;  // interior to the domain but outside the view box
      } else if (global_.boundary[dir] == BoundaryKind::kPeriodic) {
        // Periodic wrap: off-view unless the view spans the dimension.
        remote = n[dir] != gn_[dir];
      }
      if (remote) {
        const int ad = dir == 0 ? 1 : 0;
        const int bd = dir == 2 ? 1 : 2;
        halo_begin_[dir][side] = num_cells() + num_halo_;
        num_halo_ += n[ad] * n[bd];
      }
    }
  }
}

std::array<int, 3> Grid::coords(int cell) const {
  EXASTP_CHECK(cell >= 0 && cell < num_cells());
  const int cx = cell % nx_;
  const int cy = (cell / nx_) % ny_;
  const int cz = cell / (nx_ * ny_);
  return {cx, cy, cz};
}

int Grid::global_cell(int cell) const {
  const auto c = coords(cell);
  return ((lo_[2] + c[2]) * gn_[1] + lo_[1] + c[1]) * gn_[0] + lo_[0] + c[0];
}

std::array<double, 3> Grid::cell_origin(int cell) const {
  const auto c = coords(cell);
  // Global cell coordinate times global spacing: every view of the same
  // domain computes the same bits for the same physical cell.
  return {global_.origin[0] + (lo_[0] + c[0]) * dx_[0],
          global_.origin[1] + (lo_[1] + c[1]) * dx_[1],
          global_.origin[2] + (lo_[2] + c[2]) * dx_[2]};
}

NeighborRef Grid::neighbor(int cell, int dir, int side) const {
  EXASTP_CHECK(dir >= 0 && dir < 3 && (side == 0 || side == 1));
  auto c = coords(cell);
  const int n[3] = {nx_, ny_, nz_};
  const int v = c[dir] + (side == 0 ? -1 : 1);
  if (v >= 0 && v < n[dir]) {
    c[dir] = v;
    return {index(c[0], c[1], c[2]), false, global_.boundary[dir]};
  }
  // Crossing the view edge: resolve in global coordinates.
  int g = lo_[dir] + v;
  if (g < 0 || g >= gn_[dir]) {
    if (global_.boundary[dir] != BoundaryKind::kPeriodic)
      return {-1, true, global_.boundary[dir]};
    g = (g + gn_[dir]) % gn_[dir];
  }
  if (g >= lo_[dir] && g < lo_[dir] + n[dir]) {
    // Periodic wrap landing back inside the view (full-span dimension).
    c[dir] = g - lo_[dir];
    return {index(c[0], c[1], c[2]), false, global_.boundary[dir]};
  }
  // Off-view neighbour: the halo slot of this face at the same in-face
  // coordinates (ascending dimension order, b-major a-minor).
  const int hb = halo_begin_[dir][side];
  EXASTP_CHECK_MSG(hb >= 0, "off-view neighbour without a halo face");
  const int ad = dir == 0 ? 1 : 0;
  const int bd = dir == 2 ? 1 : 2;
  return {hb + c[bd] * n[ad] + c[ad], false, global_.boundary[dir]};
}

int Grid::locate(const std::array<double, 3>& x,
                 std::array<double, 3>* xi) const {
  std::array<int, 3> c{};
  std::array<double, 3> ref{};
  const int n[3] = {nx_, ny_, nz_};
  for (int d = 0; d < 3; ++d) {
    // Accept points within rounding of the closed global domain and clamp
    // them into the adjacent cell, so e.g. a receiver at origin + extent
    // lands in the last cell with xi = 1 instead of throwing.
    const double hi = global_.origin[d] + global_.extent[d];
    const double tol = 1e-12 * std::max({1.0, std::abs(global_.origin[d]),
                                         std::abs(hi)});
    EXASTP_CHECK_MSG(x[d] >= global_.origin[d] - tol && x[d] <= hi + tol,
                     "point outside the domain");
    const double rel = (x[d] - global_.origin[d]) / dx_[d];
    const int g = std::min(std::max(static_cast<int>(rel), 0), gn_[d] - 1);
    ref[d] = std::min(std::max(rel - g, 0.0), 1.0);
    c[d] = g - lo_[d];
    EXASTP_CHECK_MSG(c[d] >= 0 && c[d] < n[d],
                     "point outside this partitioned view");
  }
  if (xi != nullptr) *xi = ref;
  return index(c[0], c[1], c[2]);
}

}  // namespace exastp
