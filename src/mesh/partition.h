// Domain decomposition: the global grid sharded into a 3-D block grid of
// halo-exchanged subdomains.
//
// A Partition splits a GridSpec into shards[0] x shards[1] x shards[2]
// contiguous cell boxes ("ragged" splits — dimensions not divisible by the
// shard count — are supported; the first remainder blocks get one extra
// cell). Each Subdomain carries a Grid view (mesh/grid.h) whose geometry is
// computed in global coordinates, plus one HaloPlan per face whose
// neighbour plane is owned by another shard: the plan names the source
// shard, the source cells to pack (in the halo slot order of the receiving
// view) and the destination halo block. Periodic boundaries wrap plans to
// the far shard; outflow/wall faces at the true domain edge need no plan —
// the solvers build ghost states there, exactly like the monolithic path.
//
// The plans are consumed by the exchange backends
// (solver/exchange_backend.h: the zero-copy in-process gather of
// solver/halo_exchange.h, or the rank-per-shard MPI_Isend/Irecv of
// solver/mpi_exchange.h) and the per-shard solvers are composed by
// solver/sharded_solver.h.
#pragma once

#include <array>
#include <vector>

#include "exastp/mesh/grid.h"

namespace exastp {

/// One halo dependency of a shard: the cells another shard packs for one
/// face of this shard's halo ring.
struct HaloPlan {
  int dir = 0;        ///< face normal of the receiving shard
  int side = 0;       ///< 0 = lower face, 1 = upper face
  int src_shard = -1; ///< shard owning the neighbour plane
  /// Local cell indices in the source shard, listed in the receiving
  /// face's halo slot order (in-face coordinates ascending, b-major).
  std::vector<int> src_cells;
  /// First halo cell slot (>= num_cells()) in the receiving shard.
  int dst_begin = -1;
};

/// Interior/boundary split of a grid view's owned cells, the basis of the
/// split-phase exchange protocol (solver/exchange_backend.h): `boundary`
/// lists cells with at least one face neighbour in halo storage — they read
/// exchanged data, so their sweep must wait for the exchange to complete —
/// and `interior` the rest, which a solver can traverse while halos are
/// still in flight. Both lists are ascending, and together they cover
/// every owned cell exactly once. A whole-domain grid has no halo slots,
/// so its boundary set is empty.
struct CellClassification {
  std::vector<int> interior;
  std::vector<int> boundary;
};

/// Classifies the owned cells of `grid` (any view, including whole-domain
/// grids) by whether one of their six face neighbours is a halo slot.
CellClassification classify_cells(const Grid& grid);

struct Subdomain {
  int id = -1;
  std::array<int, 3> block{};  ///< coordinates in the shard block grid
  std::array<int, 3> lo{};     ///< lower corner in global cell coordinates
  std::array<int, 3> size{};   ///< owned cells per dimension
  Grid grid;                   ///< the partitioned view (owned + halo slots)
  std::vector<HaloPlan> halos; ///< one per remote face, fixed (dir, side) order
  CellClassification cells;    ///< interior vs halo-adjacent boundary cells
};

class Partition {
 public:
  /// Splits `global` into a shards[0] x shards[1] x shards[2] block grid.
  /// Each dimension needs at least one cell per shard.
  Partition(const GridSpec& global, const std::array<int, 3>& shards);

  /// Weighted split: `cell_weights` holds one positive cost per global
  /// cell (x-fastest order, like global cell indices). Split planes are
  /// chosen per dimension over the marginal plane-weight sums, minimizing
  /// the heaviest contiguous block — shards equalize measured work instead
  /// of cell count. An empty weight vector reproduces the unweighted
  /// split exactly.
  Partition(const GridSpec& global, const std::array<int, 3>& shards,
            const std::vector<double>& cell_weights);

  /// Factors `total` shards onto the cell box: repeatedly assigns the
  /// smallest remaining prime factor to the dimension with the most cells
  /// per shard, never exceeding one shard per cell. Used by the
  /// shards=N / shards=auto config forms.
  static std::array<int, 3> factor(int total,
                                   const std::array<int, 3>& cells);

  /// Block sizes of one dimension: n cells over k blocks, first n % k
  /// blocks one cell larger.
  static std::vector<int> split_sizes(int n, int k);

  /// Weighted block sizes of one dimension: contiguous groups of
  /// `plane_weights` (one entry per cell plane, every group non-empty)
  /// minimizing the maximum group weight, by dynamic programming. Ties
  /// break toward the unweighted split (earlier cuts as late as possible),
  /// so uniform weights reproduce split_sizes exactly.
  static std::vector<int> weighted_split_sizes(
      const std::vector<double>& plane_weights, int k);

  /// Groups the shards into `num_ranks` rank blocks, contiguous in shard
  /// index order, so over-decomposed runs (more shards than ranks) keep
  /// face-heavy neighbours co-resident. `shard_weights` (one positive cost
  /// per shard, optional) makes the grouping ragged-weighted via the same
  /// min-max DP as weighted_split_sizes; empty weights split by count
  /// (first num_shards % num_ranks ranks get one extra shard). Requires
  /// at least one shard per rank. A fresh Partition starts with every
  /// shard on rank 0.
  void assign_ranks(int num_ranks,
                    const std::vector<double>& shard_weights = {});

  int num_ranks() const { return num_ranks_; }
  /// Rank owning shard `s` under the current assign_ranks grouping.
  int rank_of(int shard) const;
  /// Shard ids owned by `rank`, ascending (contiguous by construction).
  const std::vector<int>& shards_of_rank(int rank) const;

  int num_shards() const { return static_cast<int>(subdomains_.size()); }
  const std::array<int, 3>& shards() const { return shards_; }
  const GridSpec& global_spec() const { return global_; }
  const Subdomain& subdomain(int s) const;

  /// Shard owning a global cell index.
  int owner_of(int global_cell) const;
  /// Local index of a global cell within its owning shard; the two-arg
  /// form takes a precomputed owner_of() result instead of re-deriving it.
  int local_cell(int global_cell) const {
    return local_cell(owner_of(global_cell), global_cell);
  }
  int local_cell(int shard, int global_cell) const;
  /// Global index of a shard's owned local cell.
  int global_cell(int shard, int local_cell) const;

  /// Smallest / largest owned-cell count over all shards.
  int min_cells_per_shard() const;
  int max_cells_per_shard() const;

 private:
  int shard_index(const std::array<int, 3>& block) const {
    return (block[2] * shards_[1] + block[1]) * shards_[0] + block[0];
  }
  /// Block coordinate owning global cell coordinate g in dimension d.
  int block_of(int d, int g) const;

  GridSpec global_;
  std::array<int, 3> shards_{1, 1, 1};
  std::array<std::vector<int>, 3> starts_;  ///< per-dim block start cells
  std::vector<Subdomain> subdomains_;
  int num_ranks_ = 1;
  std::vector<int> rank_of_;                ///< shard -> rank
  std::vector<std::vector<int>> rank_shards_;  ///< rank -> shard ids
};

}  // namespace exastp
