#include "exastp/mesh/balance_table.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exastp/common/check.h"

namespace exastp {
namespace {

struct ParsedLine {
  std::string pde;
  int order = 0;
  int cluster = 0;
  double cost = 0.0;
};

/// Parses the tokens produced by BalanceTable::key/serialize.
ParsedLine parse_line(const std::string& line) {
  std::istringstream is(line);
  ParsedLine p;
  if (!(is >> p.pde >> p.order >> p.cluster >> p.cost))
    throw std::invalid_argument("malformed balance-table line: " + line);
  if (p.order < 1 || p.cluster < 0 || !(p.cost > 0.0))
    throw std::invalid_argument("invalid balance-table entry: " + line);
  return p;
}

}  // namespace

std::string BalanceTable::key(const std::string& pde, int order,
                              int cluster) {
  return pde + " " + std::to_string(order) + " " + std::to_string(cluster);
}

double BalanceTable::cost(const std::string& pde, int order,
                          int cluster) const {
  const auto it = table_.find(key(pde, order, cluster));
  return it == table_.end() ? 1.0 : it->second;
}

bool BalanceTable::has(const std::string& pde, int order, int cluster) const {
  return table_.count(key(pde, order, cluster)) != 0;
}

void BalanceTable::set(const std::string& pde, int order, int cluster,
                       double cost) {
  EXASTP_CHECK_MSG(cost > 0.0, "balance costs must be positive");
  table_[key(pde, order, cluster)] = cost;
}

void BalanceTable::clear() { table_.clear(); }

std::vector<double> BalanceTable::cell_weights(
    const std::string& pde, int order, const std::vector<int>& assignment,
    int num_clusters) const {
  EXASTP_CHECK_MSG(num_clusters >= 1, "need at least one cluster");
  std::vector<double> weights(assignment.size(), 1.0);
  for (std::size_t g = 0; g < assignment.size(); ++g) {
    const int k = assignment[g];
    EXASTP_CHECK_MSG(k >= 0 && k < num_clusters,
                     "cluster assignment out of range");
    const double substeps =
        static_cast<double>(1 << (num_clusters - 1 - k));
    weights[g] = cost(pde, order, k) * substeps;
  }
  return weights;
}

std::string BalanceTable::serialize() const {
  std::ostringstream os;
  os << "# exastp measured-cost balance table\n"
     << "# pde order cluster cost\n";
  for (const auto& [k, cost] : table_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", cost);
    os << k << " " << buf << "\n";
  }
  return os.str();
}

void BalanceTable::merge_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const ParsedLine p = parse_line(line);
    set(p.pde, p.order, p.cluster, p.cost);
  }
}

bool BalanceTable::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  merge_text(buf.str());
  return true;
}

void BalanceTable::save_file(const std::string& path) const {
  std::ofstream out(path);
  EXASTP_CHECK_MSG(static_cast<bool>(out),
                   "cannot write balance table: " + path);
  out << serialize();
  EXASTP_CHECK_MSG(static_cast<bool>(out),
                   "failed writing balance table: " + path);
}

}  // namespace exastp
