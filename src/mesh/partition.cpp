#include "exastp/mesh/partition.h"

#include <algorithm>
#include <limits>

namespace exastp {

CellClassification classify_cells(const Grid& grid) {
  CellClassification cells;
  cells.interior.reserve(static_cast<std::size_t>(grid.num_cells()));
  for (int c = 0; c < grid.num_cells(); ++c) {
    bool touches_halo = false;
    for (int dir = 0; dir < 3 && !touches_halo; ++dir)
      for (int side = 0; side < 2; ++side) {
        const NeighborRef nb = grid.neighbor(c, dir, side);
        if (!nb.boundary && nb.cell >= grid.num_cells()) {
          touches_halo = true;
          break;
        }
      }
    (touches_halo ? cells.boundary : cells.interior).push_back(c);
  }
  return cells;
}

std::vector<int> Partition::split_sizes(int n, int k) {
  EXASTP_CHECK_MSG(k >= 1 && k <= n,
                   "each shard needs at least one cell per dimension");
  std::vector<int> sizes(static_cast<std::size_t>(k), n / k);
  for (int i = 0; i < n % k; ++i) ++sizes[static_cast<std::size_t>(i)];
  return sizes;
}

std::vector<int> Partition::weighted_split_sizes(
    const std::vector<double>& plane_weights, int k) {
  const int n = static_cast<int>(plane_weights.size());
  EXASTP_CHECK_MSG(k >= 1 && k <= n,
                   "each shard needs at least one cell per dimension");
  for (double w : plane_weights)
    EXASTP_CHECK_MSG(w > 0.0, "plane weights must be positive");
  auto at = [&](int i) { return plane_weights[static_cast<std::size_t>(i)]; };

  // Prefix sums: weight of the contiguous plane range [a, b).
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i)
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + at(i);
  auto range = [&](int a, int b) {
    return prefix[static_cast<std::size_t>(b)] -
           prefix[static_cast<std::size_t>(a)];
  };

  // Pass 1: the minimal achievable heaviest block M, by the classic
  // linear-partition DP (f[j][i] = min max over the first i planes in j
  // groups). Sizes here are grid dimensions, so O(k n^2) is nothing.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t cols = static_cast<std::size_t>(n) + 1;
  std::vector<double> f(cols, kInf);
  for (int i = 1; i <= n; ++i) f[static_cast<std::size_t>(i)] = range(0, i);
  for (int j = 2; j <= k; ++j) {
    std::vector<double> g(cols, kInf);
    for (int i = j; i <= n; ++i) {
      double best = kInf;
      for (int c = j - 1; c < i; ++c)
        best = std::min(best,
                        std::max(f[static_cast<std::size_t>(c)], range(c, i)));
      g[static_cast<std::size_t>(i)] = best;
    }
    f.swap(g);
  }
  const double cap = f[static_cast<std::size_t>(n)];

  // Pass 2: among partitions whose every block stays within cap, minimize
  // the sum of squared block weights (the most even split); h[j][i] is
  // that minimum for planes [i, n) in j groups.
  std::vector<std::vector<double>> h(
      static_cast<std::size_t>(k) + 1, std::vector<double>(cols, kInf));
  for (int i = 0; i < n; ++i) {
    const double w = range(i, n);
    // Floating-point slack: cap came out of the same sums, but max/min
    // reassociation can differ by one ulp.
    if (w <= cap * (1.0 + 1e-12))
      h[1][static_cast<std::size_t>(i)] = w * w;
  }
  for (int j = 2; j <= k; ++j)
    for (int i = n - j; i >= 0; --i) {
      double best = kInf;
      for (int len = 1; i + len <= n - (j - 1); ++len) {
        const double w = range(i, i + len);
        if (w > cap * (1.0 + 1e-12)) break;
        best = std::min(best, w * w +
                                  h[static_cast<std::size_t>(j - 1)]
                                   [static_cast<std::size_t>(i + len)]);
      }
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = best;
    }

  // Reconstruct left to right, taking the longest block that still reaches
  // the optimum — so uniform weights reproduce split_sizes exactly (first
  // remainder blocks one plane larger).
  std::vector<int> sizes;
  sizes.reserve(static_cast<std::size_t>(k));
  int i = 0;
  for (int j = k; j >= 1; --j) {
    if (j == 1) {
      sizes.push_back(n - i);
      break;
    }
    const double target =
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    int pick = 1;
    for (int len = 1; i + len <= n - (j - 1); ++len) {
      const double w = range(i, i + len);
      if (w > cap * (1.0 + 1e-12)) break;
      const double rest = h[static_cast<std::size_t>(j - 1)]
                           [static_cast<std::size_t>(i + len)];
      if (w * w + rest <= target * (1.0 + 1e-12)) pick = len;
    }
    sizes.push_back(pick);
    i += pick;
  }
  return sizes;
}

std::array<int, 3> Partition::factor(int total,
                                     const std::array<int, 3>& cells) {
  EXASTP_CHECK_MSG(total >= 1, "shard count must be positive");
  std::array<int, 3> shards{1, 1, 1};
  int remaining = total;
  for (int p = 2; remaining > 1; ++p) {
    while (remaining % p == 0) {
      // The dimension with the most cells per shard absorbs the factor;
      // a factor no dimension can absorb (one cell per shard everywhere)
      // is dropped, shrinking the effective shard count.
      int best = -1;
      double best_ratio = 0.0;
      for (int d = 0; d < 3; ++d) {
        if (shards[d] * p > cells[d]) continue;
        const double ratio =
            static_cast<double>(cells[d]) / (shards[d] * p);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best = d;
        }
      }
      remaining /= p;
      if (best >= 0) shards[best] *= p;
    }
  }
  return shards;
}

Partition::Partition(const GridSpec& global, const std::array<int, 3>& shards)
    : Partition(global, shards, {}) {}

Partition::Partition(const GridSpec& global, const std::array<int, 3>& shards,
                     const std::vector<double>& cell_weights)
    : global_(global), shards_(shards) {
  const int total_cells = global.cells[0] * global.cells[1] * global.cells[2];
  EXASTP_CHECK_MSG(
      cell_weights.empty() ||
          static_cast<int>(cell_weights.size()) == total_cells,
      "cell weights must cover every global cell");
  std::array<std::vector<int>, 3> sizes;
  for (int d = 0; d < 3; ++d) {
    if (cell_weights.empty()) {
      sizes[d] = split_sizes(global.cells[d], shards[d]);
    } else {
      // Marginal plane weights: the block grid is tensor-product, so each
      // dimension splits independently over the summed cost of its cell
      // planes.
      std::vector<double> planes(static_cast<std::size_t>(global.cells[d]),
                                 0.0);
      for (int g = 0; g < total_cells; ++g) {
        const int gx = g % global.cells[0];
        const int gy = (g / global.cells[0]) % global.cells[1];
        const int gz = g / (global.cells[0] * global.cells[1]);
        const int coord = d == 0 ? gx : d == 1 ? gy : gz;
        planes[static_cast<std::size_t>(coord)] +=
            cell_weights[static_cast<std::size_t>(g)];
      }
      sizes[d] = weighted_split_sizes(planes, shards[d]);
    }
    starts_[d].assign(sizes[d].size(), 0);
    for (std::size_t i = 1; i < sizes[d].size(); ++i)
      starts_[d][i] = starts_[d][i - 1] + sizes[d][i - 1];
  }

  subdomains_.reserve(static_cast<std::size_t>(shards[0]) * shards[1] *
                      shards[2]);
  for (int bz = 0; bz < shards[2]; ++bz)
    for (int by = 0; by < shards[1]; ++by)
      for (int bx = 0; bx < shards[0]; ++bx) {
        const std::array<int, 3> lo{starts_[0][static_cast<std::size_t>(bx)],
                                    starts_[1][static_cast<std::size_t>(by)],
                                    starts_[2][static_cast<std::size_t>(bz)]};
        const std::array<int, 3> size{sizes[0][static_cast<std::size_t>(bx)],
                                      sizes[1][static_cast<std::size_t>(by)],
                                      sizes[2][static_cast<std::size_t>(bz)]};
        subdomains_.push_back(Subdomain{shard_index({bx, by, bz}),
                                        {bx, by, bz},
                                        lo,
                                        size,
                                        Grid(global, lo, size),
                                        {},
                                        {}});
      }

  // One HaloPlan per remote face, in the grid's fixed (dir, side) order so
  // plan order matches halo slot order.
  for (Subdomain& sub : subdomains_) {
    for (int dir = 0; dir < 3; ++dir) {
      const int ad = dir == 0 ? 1 : 0;
      const int bd = dir == 2 ? 1 : 2;
      for (int side = 0; side < 2; ++side) {
        const int dst_begin = sub.grid.halo_begin(dir, side);
        if (dst_begin < 0) continue;
        HaloPlan plan;
        plan.dir = dir;
        plan.side = side;
        plan.dst_begin = dst_begin;
        std::array<int, 3> nb_block = sub.block;
        nb_block[dir] += side == 0 ? -1 : 1;
        // A remote face at the true domain edge is necessarily periodic
        // (Grid only assigns halos there for periodic boundaries).
        nb_block[dir] = (nb_block[dir] + shards_[dir]) % shards_[dir];
        plan.src_shard = shard_index(nb_block);
        const Subdomain& src = subdomains_[static_cast<std::size_t>(
            plan.src_shard)];
        // The packed plane: the source cells touching the shared face, at
        // the same in-face coordinates as the receiving halo slots (the
        // block grid is tensor-product, so in-face extents match).
        EXASTP_CHECK(src.size[ad] == sub.size[ad] &&
                     src.size[bd] == sub.size[bd]);
        const int plane = side == 0 ? src.size[dir] - 1 : 0;
        plan.src_cells.reserve(static_cast<std::size_t>(sub.size[ad]) *
                               sub.size[bd]);
        for (int b = 0; b < sub.size[bd]; ++b)
          for (int a = 0; a < sub.size[ad]; ++a) {
            std::array<int, 3> c{};
            c[dir] = plane;
            c[ad] = a;
            c[bd] = b;
            plan.src_cells.push_back(src.grid.index(c[0], c[1], c[2]));
          }
        sub.halos.push_back(std::move(plan));
      }
    }
    sub.cells = classify_cells(sub.grid);
  }
  assign_ranks(1);
}

void Partition::assign_ranks(int num_ranks,
                             const std::vector<double>& shard_weights) {
  EXASTP_CHECK_MSG(num_ranks >= 1 && num_ranks <= num_shards(),
                   "the rank grouping needs at least one shard per rank: " +
                       std::to_string(num_shards()) + " shard(s) cannot " +
                       "cover " + std::to_string(num_ranks) +
                       " rank(s) — raise shards= or shards_per_rank=");
  EXASTP_CHECK_MSG(
      shard_weights.empty() ||
          static_cast<int>(shard_weights.size()) == num_shards(),
      "shard weights must cover every shard");
  // Contiguous grouping in shard-index order; the weighted form reuses the
  // min-max DP of the plane splits with each shard as one "plane", so the
  // heaviest rank is minimized and uniform weights reproduce the count
  // split exactly.
  const std::vector<int> sizes =
      shard_weights.empty()
          ? split_sizes(num_shards(), num_ranks)
          : weighted_split_sizes(shard_weights, num_ranks);
  num_ranks_ = num_ranks;
  rank_of_.assign(static_cast<std::size_t>(num_shards()), 0);
  rank_shards_.assign(static_cast<std::size_t>(num_ranks), {});
  int shard = 0;
  for (int r = 0; r < num_ranks; ++r)
    for (int i = 0; i < sizes[static_cast<std::size_t>(r)]; ++i, ++shard) {
      rank_of_[static_cast<std::size_t>(shard)] = r;
      rank_shards_[static_cast<std::size_t>(r)].push_back(shard);
    }
}

int Partition::rank_of(int shard) const {
  EXASTP_CHECK(shard >= 0 && shard < num_shards());
  return rank_of_[static_cast<std::size_t>(shard)];
}

const std::vector<int>& Partition::shards_of_rank(int rank) const {
  EXASTP_CHECK(rank >= 0 && rank < num_ranks_);
  return rank_shards_[static_cast<std::size_t>(rank)];
}

const Subdomain& Partition::subdomain(int s) const {
  EXASTP_CHECK(s >= 0 && s < num_shards());
  return subdomains_[static_cast<std::size_t>(s)];
}

int Partition::block_of(int d, int g) const {
  // Weighted splits have arbitrary block sizes, so locate g among the
  // block start cells: the last start <= g.
  const std::vector<int>& starts = starts_[d];
  const auto it = std::upper_bound(starts.begin(), starts.end(), g);
  return static_cast<int>(it - starts.begin()) - 1;
}

int Partition::owner_of(int global_cell) const {
  EXASTP_CHECK(global_cell >= 0 &&
               global_cell < global_.cells[0] * global_.cells[1] *
                                 global_.cells[2]);
  const int gx = global_cell % global_.cells[0];
  const int gy = (global_cell / global_.cells[0]) % global_.cells[1];
  const int gz = global_cell / (global_.cells[0] * global_.cells[1]);
  return shard_index({block_of(0, gx), block_of(1, gy), block_of(2, gz)});
}

int Partition::local_cell(int shard, int global_cell) const {
  const Subdomain& sub = subdomain(shard);
  const int gx = global_cell % global_.cells[0];
  const int gy = (global_cell / global_.cells[0]) % global_.cells[1];
  const int gz = global_cell / (global_.cells[0] * global_.cells[1]);
  return sub.grid.index(gx - sub.lo[0], gy - sub.lo[1], gz - sub.lo[2]);
}

int Partition::global_cell(int shard, int local_cell) const {
  return subdomain(shard).grid.global_cell(local_cell);
}

int Partition::min_cells_per_shard() const {
  int best = subdomains_.front().grid.num_cells();
  for (const Subdomain& sub : subdomains_)
    best = std::min(best, sub.grid.num_cells());
  return best;
}

int Partition::max_cells_per_shard() const {
  int best = 0;
  for (const Subdomain& sub : subdomains_)
    best = std::max(best, sub.grid.num_cells());
  return best;
}

}  // namespace exastp
