#include "exastp/mesh/partition.h"

#include <algorithm>

namespace exastp {

CellClassification classify_cells(const Grid& grid) {
  CellClassification cells;
  cells.interior.reserve(static_cast<std::size_t>(grid.num_cells()));
  for (int c = 0; c < grid.num_cells(); ++c) {
    bool touches_halo = false;
    for (int dir = 0; dir < 3 && !touches_halo; ++dir)
      for (int side = 0; side < 2; ++side) {
        const NeighborRef nb = grid.neighbor(c, dir, side);
        if (!nb.boundary && nb.cell >= grid.num_cells()) {
          touches_halo = true;
          break;
        }
      }
    (touches_halo ? cells.boundary : cells.interior).push_back(c);
  }
  return cells;
}

std::vector<int> Partition::split_sizes(int n, int k) {
  EXASTP_CHECK_MSG(k >= 1 && k <= n,
                   "each shard needs at least one cell per dimension");
  std::vector<int> sizes(static_cast<std::size_t>(k), n / k);
  for (int i = 0; i < n % k; ++i) ++sizes[static_cast<std::size_t>(i)];
  return sizes;
}

std::array<int, 3> Partition::factor(int total,
                                     const std::array<int, 3>& cells) {
  EXASTP_CHECK_MSG(total >= 1, "shard count must be positive");
  std::array<int, 3> shards{1, 1, 1};
  int remaining = total;
  for (int p = 2; remaining > 1; ++p) {
    while (remaining % p == 0) {
      // The dimension with the most cells per shard absorbs the factor;
      // a factor no dimension can absorb (one cell per shard everywhere)
      // is dropped, shrinking the effective shard count.
      int best = -1;
      double best_ratio = 0.0;
      for (int d = 0; d < 3; ++d) {
        if (shards[d] * p > cells[d]) continue;
        const double ratio =
            static_cast<double>(cells[d]) / (shards[d] * p);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best = d;
        }
      }
      remaining /= p;
      if (best >= 0) shards[best] *= p;
    }
  }
  return shards;
}

Partition::Partition(const GridSpec& global, const std::array<int, 3>& shards)
    : global_(global), shards_(shards) {
  std::array<std::vector<int>, 3> sizes;
  for (int d = 0; d < 3; ++d) {
    sizes[d] = split_sizes(global.cells[d], shards[d]);
    starts_[d].assign(sizes[d].size(), 0);
    for (std::size_t i = 1; i < sizes[d].size(); ++i)
      starts_[d][i] = starts_[d][i - 1] + sizes[d][i - 1];
  }

  subdomains_.reserve(static_cast<std::size_t>(shards[0]) * shards[1] *
                      shards[2]);
  for (int bz = 0; bz < shards[2]; ++bz)
    for (int by = 0; by < shards[1]; ++by)
      for (int bx = 0; bx < shards[0]; ++bx) {
        const std::array<int, 3> lo{starts_[0][static_cast<std::size_t>(bx)],
                                    starts_[1][static_cast<std::size_t>(by)],
                                    starts_[2][static_cast<std::size_t>(bz)]};
        const std::array<int, 3> size{sizes[0][static_cast<std::size_t>(bx)],
                                      sizes[1][static_cast<std::size_t>(by)],
                                      sizes[2][static_cast<std::size_t>(bz)]};
        subdomains_.push_back(Subdomain{shard_index({bx, by, bz}),
                                        {bx, by, bz},
                                        lo,
                                        size,
                                        Grid(global, lo, size),
                                        {},
                                        {}});
      }

  // One HaloPlan per remote face, in the grid's fixed (dir, side) order so
  // plan order matches halo slot order.
  for (Subdomain& sub : subdomains_) {
    for (int dir = 0; dir < 3; ++dir) {
      const int ad = dir == 0 ? 1 : 0;
      const int bd = dir == 2 ? 1 : 2;
      for (int side = 0; side < 2; ++side) {
        const int dst_begin = sub.grid.halo_begin(dir, side);
        if (dst_begin < 0) continue;
        HaloPlan plan;
        plan.dir = dir;
        plan.side = side;
        plan.dst_begin = dst_begin;
        std::array<int, 3> nb_block = sub.block;
        nb_block[dir] += side == 0 ? -1 : 1;
        // A remote face at the true domain edge is necessarily periodic
        // (Grid only assigns halos there for periodic boundaries).
        nb_block[dir] = (nb_block[dir] + shards_[dir]) % shards_[dir];
        plan.src_shard = shard_index(nb_block);
        const Subdomain& src = subdomains_[static_cast<std::size_t>(
            plan.src_shard)];
        // The packed plane: the source cells touching the shared face, at
        // the same in-face coordinates as the receiving halo slots (the
        // block grid is tensor-product, so in-face extents match).
        EXASTP_CHECK(src.size[ad] == sub.size[ad] &&
                     src.size[bd] == sub.size[bd]);
        const int plane = side == 0 ? src.size[dir] - 1 : 0;
        plan.src_cells.reserve(static_cast<std::size_t>(sub.size[ad]) *
                               sub.size[bd]);
        for (int b = 0; b < sub.size[bd]; ++b)
          for (int a = 0; a < sub.size[ad]; ++a) {
            std::array<int, 3> c{};
            c[dir] = plane;
            c[ad] = a;
            c[bd] = b;
            plan.src_cells.push_back(src.grid.index(c[0], c[1], c[2]));
          }
        sub.halos.push_back(std::move(plan));
      }
    }
    sub.cells = classify_cells(sub.grid);
  }
}

const Subdomain& Partition::subdomain(int s) const {
  EXASTP_CHECK(s >= 0 && s < num_shards());
  return subdomains_[static_cast<std::size_t>(s)];
}

int Partition::block_of(int d, int g) const {
  // Ragged splits: the first (n % k) blocks are one cell larger.
  const int n = global_.cells[d];
  const int k = shards_[d];
  const int big = n / k + 1;
  const int rem = n % k;
  if (g < rem * big) return g / big;
  return rem + (g - rem * big) / (n / k);
}

int Partition::owner_of(int global_cell) const {
  EXASTP_CHECK(global_cell >= 0 &&
               global_cell < global_.cells[0] * global_.cells[1] *
                                 global_.cells[2]);
  const int gx = global_cell % global_.cells[0];
  const int gy = (global_cell / global_.cells[0]) % global_.cells[1];
  const int gz = global_cell / (global_.cells[0] * global_.cells[1]);
  return shard_index({block_of(0, gx), block_of(1, gy), block_of(2, gz)});
}

int Partition::local_cell(int shard, int global_cell) const {
  const Subdomain& sub = subdomain(shard);
  const int gx = global_cell % global_.cells[0];
  const int gy = (global_cell / global_.cells[0]) % global_.cells[1];
  const int gz = global_cell / (global_.cells[0] * global_.cells[1]);
  return sub.grid.index(gx - sub.lo[0], gy - sub.lo[1], gz - sub.lo[2]);
}

int Partition::global_cell(int shard, int local_cell) const {
  return subdomain(shard).grid.global_cell(local_cell);
}

int Partition::min_cells_per_shard() const {
  int best = subdomains_.front().grid.num_cells();
  for (const Subdomain& sub : subdomains_)
    best = std::min(best, sub.grid.num_cells());
  return best;
}

int Partition::max_cells_per_shard() const {
  int best = 0;
  for (const Subdomain& sub : subdomains_)
    best = std::max(best, sub.grid.num_cells());
  return best;
}

}  // namespace exastp
