// Uniform Cartesian hexahedral mesh, optionally a partitioned view.
//
// Peano substitute (see DESIGN.md): the paper's results are single-socket
// and entirely dominated by element-local kernels, so a uniform structured
// grid with periodic / outflow / reflecting-wall boundaries carries every
// experiment. Cells are unit-aspect boxes; the curvilinear geometry of the
// benchmark enters through per-node metric quantities (mesh/geometry.h),
// not through the grid itself — exactly like the boundary-fitted meshes of
// [8] store the transformation at each vertex.
//
// Domain decomposition (mesh/partition.h) turns the global grid into a set
// of views: a Grid is always a contiguous cell box [lo, lo + size) of a
// global domain (the whole domain in the common case). All geometry — dx,
// cell_origin, locate — is computed in *global* coordinates from the global
// spec, so a view is bitwise-consistent with the monolithic grid: the same
// physical cell yields the same node positions and reference coordinates no
// matter which view addresses it. Faces whose neighbour lies outside the
// view map to appended halo cell slots (indices >= num_cells()), which the
// solvers back with exchanged DOF storage (solver/exchange_backend.h).
#pragma once

#include <array>
#include <cstddef>

#include "exastp/common/check.h"

namespace exastp {

enum class BoundaryKind {
  kPeriodic,  ///< wraps to the opposite side
  kOutflow,   ///< copies the interior state (absorbing, first order)
  kWall,      ///< reflecting wall via the PDE's mirror state
};

struct GridSpec {
  std::array<int, 3> cells{1, 1, 1};
  std::array<double, 3> origin{0.0, 0.0, 0.0};
  std::array<double, 3> extent{1.0, 1.0, 1.0};
  std::array<BoundaryKind, 3> boundary{BoundaryKind::kPeriodic,
                                       BoundaryKind::kPeriodic,
                                       BoundaryKind::kPeriodic};
};

/// Result of a neighbour query: an interior cell of the view, a halo slot
/// (cell >= num_cells(), backed by exchanged storage), or a boundary face
/// of the global domain.
struct NeighborRef {
  int cell = -1;  ///< neighbour cell index, or -1 at a non-periodic boundary
  bool boundary = false;
  BoundaryKind kind = BoundaryKind::kPeriodic;
};

class Grid {
 public:
  /// Whole-domain grid: the view covers every cell, no halos.
  explicit Grid(const GridSpec& spec);

  /// Partitioned view: the cell box [lo, lo + size) of the global grid
  /// described by `global_spec`. Geometry stays in global coordinates, so
  /// every view of the same domain is bitwise-consistent with the
  /// monolithic grid; spec() describes the view box itself (for writers
  /// that emit per-shard pieces).
  Grid(const GridSpec& global_spec, const std::array<int, 3>& lo,
       const std::array<int, 3>& size);

  /// Cells owned by this view (excludes halo slots).
  int num_cells() const { return nx_ * ny_ * nz_; }
  /// Halo cell slots appended after the owned cells: one per off-view
  /// face-neighbour plane. 0 for whole-domain grids.
  int num_halo_cells() const { return num_halo_; }
  /// True when the view does not span the whole global domain.
  bool partitioned() const { return partitioned_; }

  /// The view box as a GridSpec (cells = view size, origin/extent = the
  /// box; derived metadata — geometry queries use global_spec()).
  const GridSpec& spec() const { return spec_; }
  const GridSpec& global_spec() const { return global_; }
  /// Lower corner of the view in global cell coordinates.
  const std::array<int, 3>& lo() const { return lo_; }

  std::array<int, 3> coords(int cell) const;
  int index(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }
  /// Index of an owned cell in the global grid's addressing.
  int global_cell(int cell) const;

  double dx(int d) const { return dx_[d]; }
  std::array<double, 3> dx() const { return dx_; }
  std::array<double, 3> inv_dx() const {
    return {1.0 / dx_[0], 1.0 / dx_[1], 1.0 / dx_[2]};
  }
  /// Physical coordinates of the lower corner of a cell (global frame).
  std::array<double, 3> cell_origin(int cell) const;
  double cell_volume() const { return dx_[0] * dx_[1] * dx_[2]; }

  /// Neighbour across the face normal to `dir` on `side` (0 lower, 1
  /// upper): an owned cell (wrapping locally when the view spans the whole
  /// dimension), a halo slot when the neighbour lives in another view, or
  /// a boundary face of the global domain.
  NeighborRef neighbor(int cell, int dir, int side) const;

  /// First halo cell slot of the face normal to `dir` on `side`, or -1
  /// when that face needs no halo (in-view wrap or true domain boundary).
  /// Each halo face is a contiguous block of plane-many slots ordered by
  /// the two in-face coordinates in ascending dimension order (b-major,
  /// a-minor) — the pack/unpack order of HaloPlan.
  int halo_begin(int dir, int side) const {
    return halo_begin_[dir][side];
  }

  /// Cell of this view containing a physical point plus its reference
  /// coordinates in [0,1]^3. Points on (or within rounding of) the global
  /// domain boundary are clamped into the adjacent cell, so a receiver at
  /// `origin + extent` resolves to the last cell with xi = 1 instead of
  /// throwing. Throws if the point lies outside the global domain, or
  /// outside this view's box for partitioned views.
  int locate(const std::array<double, 3>& x,
             std::array<double, 3>* xi = nullptr) const;

 private:
  GridSpec spec_;    ///< the view box
  GridSpec global_;  ///< the domain the view belongs to
  std::array<int, 3> lo_{0, 0, 0};
  int nx_, ny_, nz_;          ///< view cells per dimension
  std::array<int, 3> gn_{};   ///< global cells per dimension
  std::array<double, 3> dx_;  ///< global spacing
  bool partitioned_ = false;
  int halo_begin_[3][2];
  int num_halo_ = 0;
};

}  // namespace exastp
