// Uniform Cartesian hexahedral mesh.
//
// Peano substitute (see DESIGN.md): the paper's results are single-socket
// and entirely dominated by element-local kernels, so a uniform structured
// grid with periodic / outflow / reflecting-wall boundaries carries every
// experiment. Cells are unit-aspect boxes; the curvilinear geometry of the
// benchmark enters through per-node metric quantities (mesh/geometry.h),
// not through the grid itself — exactly like the boundary-fitted meshes of
// [8] store the transformation at each vertex.
#pragma once

#include <array>
#include <cstddef>

#include "exastp/common/check.h"

namespace exastp {

enum class BoundaryKind {
  kPeriodic,  ///< wraps to the opposite side
  kOutflow,   ///< copies the interior state (absorbing, first order)
  kWall,      ///< reflecting wall via the PDE's mirror state
};

struct GridSpec {
  std::array<int, 3> cells{1, 1, 1};
  std::array<double, 3> origin{0.0, 0.0, 0.0};
  std::array<double, 3> extent{1.0, 1.0, 1.0};
  std::array<BoundaryKind, 3> boundary{BoundaryKind::kPeriodic,
                                       BoundaryKind::kPeriodic,
                                       BoundaryKind::kPeriodic};
};

/// Result of a neighbour query: either an interior cell or a boundary face.
struct NeighborRef {
  int cell = -1;  ///< neighbour cell index, or -1 at a non-periodic boundary
  bool boundary = false;
  BoundaryKind kind = BoundaryKind::kPeriodic;
};

class Grid {
 public:
  explicit Grid(const GridSpec& spec);

  int num_cells() const { return nx_ * ny_ * nz_; }
  const GridSpec& spec() const { return spec_; }

  std::array<int, 3> coords(int cell) const;
  int index(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }

  double dx(int d) const { return dx_[d]; }
  std::array<double, 3> dx() const { return dx_; }
  std::array<double, 3> inv_dx() const {
    return {1.0 / dx_[0], 1.0 / dx_[1], 1.0 / dx_[2]};
  }
  /// Physical coordinates of the lower corner of a cell.
  std::array<double, 3> cell_origin(int cell) const;
  double cell_volume() const { return dx_[0] * dx_[1] * dx_[2]; }

  /// Neighbour across the face normal to `dir` on `side` (0 lower, 1 upper).
  NeighborRef neighbor(int cell, int dir, int side) const;

  /// Cell containing a physical point plus its reference coordinates in
  /// [0,1]^3; throws if the point lies outside the domain.
  int locate(const std::array<double, 3>& x,
             std::array<double, 3>* xi = nullptr) const;

 private:
  GridSpec spec_;
  int nx_, ny_, nz_;
  std::array<double, 3> dx_;
};

}  // namespace exastp
