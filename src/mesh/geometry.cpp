#include "exastp/mesh/geometry.h"

#include <cmath>

namespace exastp {

std::array<double, 9> SineMap::metric(const std::array<double, 3>& x) const {
  // xi_r = x_r + A sin(k x_{r+1}) => G = I + off-diagonal cosine terms.
  const double a = amplitude_ * wavenumber_;
  std::array<double, 9> g{1, 0, 0, 0, 1, 0, 0, 0, 1};
  g[0 * 3 + 1] = a * std::cos(wavenumber_ * x[1]);
  g[1 * 3 + 2] = a * std::cos(wavenumber_ * x[2]);
  g[2 * 3 + 0] = a * std::cos(wavenumber_ * x[0]);
  return g;
}

}  // namespace exastp
