// Measured per-cell step costs for weighted partitioning.
//
// Clustered local time stepping makes per-cell cost heterogeneous: a cell
// in rate cluster k runs 2^(K-1-k) substeps per coarsest (macro) step, so
// splitting shards by cell count no longer equalizes work. The
// BalanceTable stores the measured cost of one cell substep per
// (pde, order, cluster) — relative units, nanoseconds in practice — and
// turns a cluster assignment into per-cell weights for the weighted
// Partition constructor: weight = cost x substeps. A missing entry falls
// back to cost 1, i.e. the pure substep-count model, which is already the
// right first-order answer.
//
// Persistence mirrors FusionTuneTable: a line-oriented text format
//
//     pde order cluster cost
//
// with '#' comments, merged by `merge_text`, persisted by
// `load_file`/`save_file`, wired to the `balance=PATH` config key
// (simulation.cpp: load before partitioning, measure per-cluster costs
// from telemetry after the run, save back — first run measures, later
// runs just load). Like autotune=, the table is pure performance state:
// any weighting produces a valid decomposition and every decomposition is
// bitwise-identical, so balance= is excluded from the canonical config
// string.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace exastp {

class BalanceTable {
 public:
  /// Measured cost of one cell substep, or 1.0 when the key is missing.
  double cost(const std::string& pde, int order, int cluster) const;

  bool has(const std::string& pde, int order, int cluster) const;

  void set(const std::string& pde, int order, int cluster, double cost);

  void clear();
  bool empty() const { return table_.empty(); }

  /// Per-global-cell partition weights for a cluster assignment
  /// (`assignment[g]` = rate cluster of global cell g, `num_clusters` = K):
  /// measured-or-default substep cost times the 2^(K-1-k) substep count.
  std::vector<double> cell_weights(const std::string& pde, int order,
                                   const std::vector<int>& assignment,
                                   int num_clusters) const;

  /// One "pde order cluster cost" line per entry, sorted by key.
  std::string serialize() const;
  /// Merges entries parsed from `text` (same format; '#' comments and
  /// blank lines ignored). Throws on malformed lines.
  void merge_text(const std::string& text);

  /// Best-effort persistence helpers. load_file returns false when the
  /// file does not exist; save_file throws when the path is unwritable.
  bool load_file(const std::string& path);
  void save_file(const std::string& path) const;

 private:
  static std::string key(const std::string& pde, int order, int cluster);

  std::map<std::string, double> table_;
};

}  // namespace exastp
