// Curvilinear geometry support.
//
// The paper's benchmark runs on curvilinear boundary-fitted meshes [8],
// storing the transformation Jacobian per vertex (nine of the m = 21
// quantities). Here a CurvilinearMap provides the metric G = d(xi)/d(x) at
// any physical point; scenario setup writes it into the metric parameter
// rows of the initial condition. The identity map recovers the Cartesian
// elastic system exactly (tested), smooth perturbations exercise the
// variable-coefficient code paths.
#pragma once

#include <array>

namespace exastp {

class CurvilinearMap {
 public:
  virtual ~CurvilinearMap() = default;
  /// Metric tensor G[r][c] = d(xi_r)/d(x_c) at physical point x, row-major.
  virtual std::array<double, 9> metric(
      const std::array<double, 3>& x) const = 0;
};

/// G = I everywhere: flat geometry.
class IdentityMap final : public CurvilinearMap {
 public:
  std::array<double, 9> metric(const std::array<double, 3>&) const override {
    return {1, 0, 0, 0, 1, 0, 0, 0, 1};
  }
};

/// Smooth sinusoidal perturbation of the identity, the standard test
/// transformation for curvilinear solvers: the metric wobbles with
/// controllable amplitude but stays diagonally dominant (invertible) for
/// amplitude < 1/(2 pi wavenumber scale).
class SineMap final : public CurvilinearMap {
 public:
  SineMap(double amplitude, double wavenumber)
      : amplitude_(amplitude), wavenumber_(wavenumber) {}

  std::array<double, 9> metric(const std::array<double, 3>& x) const override;

 private:
  double amplitude_;
  double wavenumber_;
};

}  // namespace exastp
