// LOH1-like scenario: "Layer Over a Halfspace" (Day & Bradley [19]),
// the seismic benchmark the paper's evaluation builds on (Sec. VI).
//
// A soft sediment layer sits on top of a stiffer halfspace; a point source
// (Ricker wavelet, vertical-velocity forcing as a simple moment surrogate)
// radiates from below the interface and a surface receiver records the
// wavefield. The canonical LOH1 material contrast is used:
//
//              rho      cp      cs     (km/s, g/cm^3 scaled units)
//   layer      2.6      4.0     2.0
//   halfspace  2.7      6.0     3.464
//
// This reproduction runs the scenario on a small periodic-free box with
// absorbing sides and a free-ish (wall) top; it exercises heterogeneous
// material, point sources and receivers — the full code path of the paper's
// benchmark application — without claiming waveform-level agreement with
// the published LOH1 reference solutions (see DESIGN.md).
#pragma once

#include <memory>

#include "exastp/kernels/stp_common.h"
#include "exastp/solver/ader_dg_solver.h"

namespace exastp {

struct Loh1Config {
  /// Domain size (km); the material interface plane sits at z = layer_depth.
  std::array<double, 3> extent{8.0, 8.0, 8.0};
  std::array<int, 3> cells{4, 4, 4};
  double layer_depth = 2.0;  ///< soft layer occupies z < layer_depth

  // Materials (layer over halfspace).
  double layer_rho = 2.6, layer_cp = 4.0, layer_cs = 2.0;
  double half_rho = 2.7, half_cp = 6.0, half_cs = 3.464;

  // Source: Ricker wavelet on the vertical velocity below the interface.
  std::array<double, 3> source_position{4.0, 4.0, 3.0};
  double source_frequency = 1.0;
  double source_delay = 1.2;

  // Receiver on the surface plane.
  std::array<double, 3> receiver_position{6.0, 4.0, 0.1};

  int order = 4;
  StpVariant variant = StpVariant::kAosoaSplitCk;
};

/// Nodal initial condition: zero wavefield over the two-material medium.
/// Shared by make_loh1_solver and the "loh1" scenario registration.
InitialCondition loh1_initial_condition(const Loh1Config& config);

/// The Ricker point source below the interface.
MeshPointSource loh1_point_source(const Loh1Config& config);

/// Builds a fully configured solver (elastic PDE, materials, boundaries,
/// point source) for the scenario.
std::unique_ptr<AderDgSolver> make_loh1_solver(const Loh1Config& config,
                                               Isa isa);

}  // namespace exastp
