// Acoustic plane-wave scenario: initial condition + exact solution,
// used by the convergence example and the solver tests.
//
//   p(x, t) = sin(k . x - w t),  v = khat / (rho c) * p,  w = c |k|.
#pragma once

#include <array>
#include <cmath>

#include "exastp/pde/acoustic.h"

namespace exastp {

struct PlaneWave {
  std::array<double, 3> wave_vector{2.0 * 3.14159265358979323846, 0.0, 0.0};
  double rho = 1.0;
  double c = 1.0;

  double omega() const {
    return c * std::sqrt(wave_vector[0] * wave_vector[0] +
                         wave_vector[1] * wave_vector[1] +
                         wave_vector[2] * wave_vector[2]);
  }

  double pressure(const std::array<double, 3>& x, double t) const {
    return std::sin(wave_vector[0] * x[0] + wave_vector[1] * x[1] +
                    wave_vector[2] * x[2] - omega() * t);
  }

  /// Fills one node of the acoustic state vector at t = 0.
  void initial_condition(const std::array<double, 3>& x, double* q) const {
    const double p = pressure(x, 0.0);
    const double knorm = omega() / c;
    q[AcousticPde::kP] = p;
    for (int d = 0; d < 3; ++d)
      q[AcousticPde::kVx + d] = wave_vector[d] / knorm / (rho * c) * p;
    q[AcousticPde::kRho] = rho;
    q[AcousticPde::kC] = c;
  }
};

}  // namespace exastp
