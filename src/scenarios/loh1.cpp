#include "exastp/scenarios/loh1.h"

#include "exastp/kernels/registry.h"
#include "exastp/pde/elastic.h"

namespace exastp {

InitialCondition loh1_initial_condition(const Loh1Config& config) {
  const Loh1Config c = config;
  return [c](const std::array<double, 3>& x, double* q) {
    for (int s = 0; s < ElasticPde::kVars; ++s) q[s] = 0.0;
    const bool in_layer = x[2] < c.layer_depth;
    q[ElasticPde::kRho] = in_layer ? c.layer_rho : c.half_rho;
    q[ElasticPde::kCp] = in_layer ? c.layer_cp : c.half_cp;
    q[ElasticPde::kCs] = in_layer ? c.layer_cs : c.half_cs;
  };
}

MeshPointSource loh1_point_source(const Loh1Config& config) {
  MeshPointSource source;
  source.position = config.source_position;
  source.quantity = ElasticPde::kVz;
  source.wavelet = std::make_shared<RickerWavelet>(config.source_frequency,
                                                   config.source_delay);
  return source;
}

std::unique_ptr<AderDgSolver> make_loh1_solver(const Loh1Config& config,
                                               Isa isa) {
  GridSpec spec;
  spec.cells = config.cells;
  spec.origin = {0.0, 0.0, 0.0};
  spec.extent = config.extent;
  // Absorbing sides and bottom; reflecting top surface.
  spec.boundary = {BoundaryKind::kOutflow, BoundaryKind::kOutflow,
                   BoundaryKind::kWall};

  ElasticPde pde;
  auto runtime = std::make_shared<PdeAdapter<ElasticPde>>(pde);
  StpKernel kernel = make_stp_kernel(pde, config.variant, config.order, isa);
  auto solver = std::make_unique<AderDgSolver>(runtime, std::move(kernel),
                                               spec);
  solver->set_initial_condition(loh1_initial_condition(config));
  solver->add_point_source(loh1_point_source(config));
  return solver;
}

}  // namespace exastp
