#include "exastp/scenarios/loh1.h"

#include "exastp/kernels/registry.h"
#include "exastp/pde/elastic.h"

namespace exastp {

std::unique_ptr<AderDgSolver> make_loh1_solver(const Loh1Config& config,
                                               Isa isa) {
  GridSpec spec;
  spec.cells = config.cells;
  spec.origin = {0.0, 0.0, 0.0};
  spec.extent = config.extent;
  // Absorbing sides and bottom; reflecting top surface.
  spec.boundary = {BoundaryKind::kOutflow, BoundaryKind::kOutflow,
                   BoundaryKind::kWall};

  ElasticPde pde;
  auto runtime = std::make_shared<PdeAdapter<ElasticPde>>(pde);
  StpKernel kernel = make_stp_kernel(pde, config.variant, config.order, isa);
  auto solver = std::make_unique<AderDgSolver>(runtime, std::move(kernel),
                                               spec);

  const Loh1Config c = config;
  solver->set_initial_condition(
      [c](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < ElasticPde::kVars; ++s) q[s] = 0.0;
        const bool in_layer = x[2] < c.layer_depth;
        q[ElasticPde::kRho] = in_layer ? c.layer_rho : c.half_rho;
        q[ElasticPde::kCp] = in_layer ? c.layer_cp : c.half_cp;
        q[ElasticPde::kCs] = in_layer ? c.layer_cs : c.half_cs;
      });

  MeshPointSource source;
  source.position = config.source_position;
  source.quantity = ElasticPde::kVz;
  source.wavelet = std::make_shared<RickerWavelet>(config.source_frequency,
                                                   config.source_delay);
  solver->add_point_source(source);
  return solver;
}

}  // namespace exastp
