#include "exastp/tensor/transpose.h"

#include <cstring>

#include "exastp/common/check.h"

namespace exastp {

void aos_to_aosoa(const double* src, const AosLayout& aos, double* dst,
                  const AosoaLayout& aosoa) {
  EXASTP_CHECK(aos.n == aosoa.n && aos.m == aosoa.m);
  const int n = aos.n, m = aos.m;
  std::memset(dst, 0, aosoa.size() * sizeof(double));
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          dst[aosoa.idx(k3, k2, s, k1)] = src[aos.idx(k3, k2, k1, s)];
}

void aosoa_to_aos(const double* src, const AosoaLayout& aosoa, double* dst,
                  const AosLayout& aos) {
  EXASTP_CHECK(aos.n == aosoa.n && aos.m == aosoa.m);
  const int n = aos.n, m = aos.m;
  std::memset(dst, 0, aos.size() * sizeof(double));
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          dst[aos.idx(k3, k2, k1, s)] = src[aosoa.idx(k3, k2, s, k1)];
}

void aos_to_soa(const double* src, const AosLayout& aos, double* dst,
                const SoaLayout& soa) {
  EXASTP_CHECK(aos.n == soa.n && aos.m == soa.m);
  const int n = aos.n, m = aos.m;
  std::memset(dst, 0, soa.size() * sizeof(double));
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          dst[soa.idx(s, k3, k2, k1)] = src[aos.idx(k3, k2, k1, s)];
}

void soa_to_aos(const double* src, const SoaLayout& soa, double* dst,
                const AosLayout& aos) {
  EXASTP_CHECK(aos.n == soa.n && aos.m == soa.m);
  const int n = aos.n, m = aos.m;
  std::memset(dst, 0, aos.size() * sizeof(double));
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          dst[aos.idx(k3, k2, k1, s)] = src[soa.idx(s, k3, k2, k1)];
}

void pad_aos(const double* src, int n, int m, double* dst,
             const AosLayout& aos) {
  EXASTP_CHECK(aos.n == n && aos.m == m);
  std::memset(dst, 0, aos.size() * sizeof(double));
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  for (std::size_t k = 0; k < nodes; ++k)
    std::memcpy(dst + k * aos.m_pad, src + k * m, sizeof(double) * m);
}

void unpad_aos(const double* src, const AosLayout& aos, int m, double* dst) {
  EXASTP_CHECK(aos.m == m);
  const std::size_t nodes =
      static_cast<std::size_t>(aos.n) * aos.n * aos.n;
  for (std::size_t k = 0; k < nodes; ++k)
    std::memcpy(dst + k * m, src + k * aos.m_pad, sizeof(double) * m);
}

}  // namespace exastp
