// Data layouts for the per-cell degree-of-freedom tensor.
//
// The paper's central data-structure decision (Sec. III-A, Sec. V): a cell
// stores n^3 quadrature nodes with m quantities each, and the layout of that
// 4-D tensor decides what can be vectorized:
//
//  * AoS    Q[k3][k2][k1][s]  — quantity fastest; GEMMs vectorize over s,
//                               user functions are pointwise/scalar. The
//                               leading dimension s is zero-padded to the
//                               SIMD width (m_pad).
//  * SoA    Q[s][k3][k2][k1]  — node fastest; user functions vectorize,
//                               GEMMs do not (only used for per-call chunks).
//  * AoSoA  Q[k3][k2][s][k1]  — the paper's hybrid: GEMMs keep a unit-stride
//                               leading dimension (k1, padded to n_pad) and
//                               every (k3,k2) line is an SoA chunk the user
//                               functions can vectorize over.
#pragma once

#include <cstddef>

#include "exastp/common/aligned.h"
#include "exastp/common/simd.h"

namespace exastp {

/// AoS layout with padded quantity dimension.
struct AosLayout {
  int n = 0;      ///< nodes per dimension
  int m = 0;      ///< quantities per node
  int m_pad = 0;  ///< m rounded up to the SIMD width

  AosLayout() = default;
  AosLayout(int n_, int m_, Isa isa)
      : n(n_), m(m_), m_pad(pad_to(m_, vector_width(isa))) {}

  std::size_t size() const {
    return static_cast<std::size_t>(n) * n * n * m_pad;
  }
  /// Flat index of quantity s at node (k1,k2,k3); k1 is x (fastest spatial).
  std::size_t idx(int k3, int k2, int k1, int s) const {
    return ((static_cast<std::size_t>(k3) * n + k2) * n + k1) * m_pad + s;
  }
  /// Offset of the node-local AoS chunk (s contiguous).
  std::size_t node_offset(int k3, int k2, int k1) const {
    return idx(k3, k2, k1, 0);
  }
};

/// AoSoA layout: x-line fastest, padded; quantities in between.
struct AosoaLayout {
  int n = 0;      ///< nodes per dimension
  int m = 0;      ///< quantities per node
  int n_pad = 0;  ///< n rounded up to the SIMD width (x-line padding)

  AosoaLayout() = default;
  AosoaLayout(int n_, int m_, Isa isa)
      : n(n_), m(m_), n_pad(pad_to(n_, vector_width(isa))) {}

  std::size_t size() const {
    return static_cast<std::size_t>(n) * n * m * n_pad;
  }
  std::size_t idx(int k3, int k2, int s, int k1) const {
    return ((static_cast<std::size_t>(k3) * n + k2) * m + s) * n_pad + k1;
  }
  /// Offset of the SoA chunk for line (k3,k2): m quantities with stride
  /// n_pad, each holding the n nodes of the x-line.
  std::size_t line_offset(int k3, int k2) const { return idx(k3, k2, 0, 0); }
  /// Fraction of stored (and computed) values that are padding; the
  /// "order 8 sweetspot / order 9 worst case" of Sec. V-A.
  double padding_overhead() const {
    return static_cast<double>(n_pad - n) / n_pad;
  }
};

/// Plain SoA layout for a face patch or full cell (used by transposition
/// ablations and the rejected per-user-function-call transpose variant).
struct SoaLayout {
  int n = 0;
  int m = 0;
  int n_pad = 0;  ///< padded length of the node index range (n^3 padded)

  SoaLayout() = default;
  SoaLayout(int n_, int m_, Isa isa)
      : n(n_), m(m_),
        n_pad(pad_to(n_ * n_ * n_, vector_width(isa))) {}

  std::size_t size() const { return static_cast<std::size_t>(m) * n_pad; }
  std::size_t idx(int s, int k3, int k2, int k1) const {
    return static_cast<std::size_t>(s) * n_pad +
           (static_cast<std::size_t>(k3) * n + k2) * n + k1;
  }
};

}  // namespace exastp
