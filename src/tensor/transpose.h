// Layout conversions.
//
// The AoSoA kernel keeps the engine-facing API in AoS: inputs are transposed
// to AoSoA on kernel entry and outputs back to AoS on exit (paper Sec. V-B,
// "the performance impact of these transpositions is minimal"). The
// per-user-function-call AoS<->SoA transpose that the paper evaluated and
// rejected for linear PDEs is also provided for the ablation benchmark.
#pragma once

#include "exastp/tensor/layout.h"

namespace exastp {

/// AoS -> AoSoA for one cell tensor. Padding lanes of the destination are
/// zero-filled so downstream SIMD arithmetic on padded lanes is well defined.
void aos_to_aosoa(const double* src, const AosLayout& aos, double* dst,
                  const AosoaLayout& aosoa);

/// AoSoA -> AoS. Padding lanes of the destination are zero-filled.
void aosoa_to_aos(const double* src, const AosoaLayout& aosoa, double* dst,
                  const AosLayout& aos);

/// AoS -> SoA over the whole cell (rejected-variant ablation).
void aos_to_soa(const double* src, const AosLayout& aos, double* dst,
                const SoaLayout& soa);

/// SoA -> AoS over the whole cell.
void soa_to_aos(const double* src, const SoaLayout& soa, double* dst,
                const AosLayout& aos);

/// Copies an unpadded AoS tensor (leading dimension m) into a padded one
/// (leading dimension aos.m_pad), zeroing the pad lanes, and back.
void pad_aos(const double* src, int n, int m, double* dst,
             const AosLayout& aos);
void unpad_aos(const double* src, const AosLayout& aos, int m, double* dst);

}  // namespace exastp
