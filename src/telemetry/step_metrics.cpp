#include "exastp/telemetry/step_metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "exastp/common/check.h"
#include "exastp/engine/kernel_cache.h"
#include "exastp/solver/solver_base.h"

namespace exastp {
namespace {

std::int64_t wall_ns_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr char kCsvHeader[] =
    "step,t,dt,wall_s,predict_s,correct_s,rk_stage_s,exchange_post_s,"
    "exchange_wait_s,overlap_eff,shard_min_s,shard_mean_s,shard_max_s,"
    "imbalance,cache_hits,flops,mflops_s,lts_clusters,lts_substeps,"
    "lts_imbalance";

/// Metric values print compactly but round-trip well enough for plots;
/// "nan" keeps the columns numerically parseable (the receiver-CSV idiom).
std::string metric(double v) {
  if (std::isnan(v)) return "nan";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

double s(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

StepMetricsObserver::StepMetricsObserver(const TelemetryRegistry* registry,
                                         std::string path, int interval)
    : registry_(registry), path_(std::move(path)), interval_(interval) {
  EXASTP_CHECK_MSG(registry_ != nullptr, "metrics need a telemetry registry");
  EXASTP_CHECK_MSG(!path_.empty(), "metrics= needs a path");
  EXASTP_CHECK_MSG(interval_ >= 1, "metrics_interval must be >= 1");
  const std::string suffix = ".jsonl";
  jsonl_ = path_.size() >= suffix.size() &&
           path_.compare(path_.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
}

StepMetricsObserver::Snapshot StepMetricsObserver::snapshot(
    const SolverBase& solver) const {
  Snapshot snap;
  snap.wall_ns = wall_ns_now();
  snap.t = solver.time();
  snap.predict_ns = registry_->aggregate(SpanId::kPredict).total_ns;
  snap.correct_ns = registry_->aggregate(SpanId::kCorrectInterior).total_ns +
                    registry_->aggregate(SpanId::kCorrectBoundary).total_ns;
  snap.rk_stage_ns =
      registry_->aggregate(SpanId::kRkStageInterior).total_ns +
      registry_->aggregate(SpanId::kRkStageBoundary).total_ns;
  snap.post_ns = registry_->aggregate(SpanId::kExchangePost).total_ns;
  // The unhidden halo latency of either step schedule: lockstep stalls in
  // ExchangeBackend::wait, the dependency scheduler in blocked sched_wait
  // polls. At most one of the two is nonzero per run.
  snap.wait_ns = registry_->aggregate(SpanId::kExchangeWait).total_ns +
                 registry_->aggregate(SpanId::kSchedWait).total_ns;
  snap.overlap_ns = registry_->aggregate(SpanId::kOverlapCompute).total_ns;
  snap.flops = registry_->flops().total();
  return snap;
}

void StepMetricsObserver::on_start(const SolverBase& solver) {
  if (!out_.is_open()) {
    out_.open(path_, std::ios::trunc);
    EXASTP_CHECK_MSG(out_.good(), "cannot open metrics \"" + path_ + "\"");
    if (!jsonl_) out_ << kCsvHeader << "\n" << std::flush;
  }
  last_ = snapshot(solver);
  last_step_ = solver.steps_taken();
}

void StepMetricsObserver::on_step(const SolverBase& solver, int step) {
  if (step % interval_ != 0) return;
  const Snapshot now = snapshot(solver);
  const int steps = std::max(step - last_step_, 1);
  const double wall = s(now.wall_ns - last_.wall_ns);
  const double dt = (now.t - last_.t) / steps;

  const double hidden = s(now.overlap_ns - last_.overlap_ns);
  const double waited = s(now.wait_ns - last_.wait_ns);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double overlap_eff =
      hidden + waited > 0.0 ? hidden / (hidden + waited) : nan;

  // Per-shard interior+boundary times are cumulative; imbalance uses the
  // cumulative values (per-interval shard deltas would need a per-shard
  // snapshot array for little extra signal — the ratio converges fast).
  std::int64_t s_min = 0, s_max = 0, s_sum = 0;
  int shards = 0;
  for (int i = 0; i < kMaxShardTracks; ++i) {
    const std::int64_t ns = registry_->shard_ns(i);
    if (ns == 0) continue;
    s_min = shards == 0 ? ns : std::min(s_min, ns);
    s_max = std::max(s_max, ns);
    s_sum += ns;
    ++shards;
  }
  const double shard_min = shards > 1 ? s(s_min) : nan;
  const double shard_mean = shards > 1 ? s(s_sum) / shards : nan;
  const double shard_max = shards > 1 ? s(s_max) : nan;
  const double imbalance =
      shards > 1 && s_sum > 0 ? s(s_max) / (s(s_sum) / shards) : nan;

  const double flops = static_cast<double>(now.flops - last_.flops);
  const double mflops = wall > 0.0 ? flops / wall * 1e-6 : nan;
  const long cache_hits = kernel_cache_stats().hits;

  // Clustered LTS: cluster count, cumulative cell-substeps, and the
  // skew of measured per-cluster sweep time (max / mean over clusters;
  // 1 = perfectly even). All nan when LTS is off.
  double lts_clusters = nan, lts_substeps = nan, lts_imbalance = nan;
  const auto cluster_stats = solver.lts_cluster_stats();
  if (!cluster_stats.empty()) {
    lts_clusters = static_cast<double>(cluster_stats.size());
    long long substeps = 0, ns_max = 0, ns_sum = 0;
    for (const auto& st : cluster_stats) {
      substeps += st.cell_substeps;
      ns_max = std::max(ns_max, st.ns);
      ns_sum += st.ns;
    }
    lts_substeps = static_cast<double>(substeps);
    if (ns_sum > 0)
      lts_imbalance = static_cast<double>(ns_max) /
                      (static_cast<double>(ns_sum) /
                       static_cast<double>(cluster_stats.size()));
  }

  if (jsonl_) {
    std::ostringstream os;
    os << "{\"step\":" << step << ",\"t\":" << metric(now.t)
       << ",\"dt\":" << metric(dt) << ",\"wall_s\":" << metric(wall)
       << ",\"predict_s\":" << metric(s(now.predict_ns - last_.predict_ns))
       << ",\"correct_s\":" << metric(s(now.correct_ns - last_.correct_ns))
       << ",\"rk_stage_s\":" << metric(s(now.rk_stage_ns - last_.rk_stage_ns))
       << ",\"exchange_post_s\":" << metric(s(now.post_ns - last_.post_ns))
       << ",\"exchange_wait_s\":" << metric(waited)
       << ",\"overlap_eff\":" << metric(overlap_eff)
       << ",\"shard_min_s\":" << metric(shard_min)
       << ",\"shard_mean_s\":" << metric(shard_mean)
       << ",\"shard_max_s\":" << metric(shard_max)
       << ",\"imbalance\":" << metric(imbalance)
       << ",\"cache_hits\":" << cache_hits << ",\"flops\":" << metric(flops)
       << ",\"mflops_s\":" << metric(mflops)
       << ",\"lts_clusters\":" << metric(lts_clusters)
       << ",\"lts_substeps\":" << metric(lts_substeps)
       << ",\"lts_imbalance\":" << metric(lts_imbalance) << "}";
    // JSON has no NaN literal; the metric() "nan" tokens become null.
    std::string line = os.str();
    std::size_t pos = 0;
    while ((pos = line.find(":nan", pos)) != std::string::npos)
      line.replace(pos, 4, ":null");
    out_ << line << "\n" << std::flush;
  } else {
    out_ << step << "," << metric(now.t) << "," << metric(dt) << ","
         << metric(wall) << ","
         << metric(s(now.predict_ns - last_.predict_ns)) << ","
         << metric(s(now.correct_ns - last_.correct_ns)) << ","
         << metric(s(now.rk_stage_ns - last_.rk_stage_ns)) << ","
         << metric(s(now.post_ns - last_.post_ns)) << "," << metric(waited)
         << "," << metric(overlap_eff) << "," << metric(shard_min) << ","
         << metric(shard_mean) << "," << metric(shard_max) << ","
         << metric(imbalance) << "," << cache_hits << "," << metric(flops)
         << "," << metric(mflops) << "," << metric(lts_clusters) << ","
         << metric(lts_substeps) << "," << metric(lts_imbalance) << "\n"
         << std::flush;
  }
  last_ = now;
  last_step_ = step;
}

void StepMetricsObserver::on_finish(const SolverBase& /*solver*/) {
  if (out_.is_open()) out_.flush();
}

ProgressObserver::ProgressObserver(double min_seconds)
    : min_seconds_(min_seconds) {}

void ProgressObserver::on_start(const SolverBase& solver) {
  start_ns_ = wall_ns_now();
  last_ns_ = 0;  // the first observed step always reports
  last_step_ = solver.steps_taken();
}

void ProgressObserver::on_step(const SolverBase& solver, int step) {
  const std::int64_t now = wall_ns_now();
  if (last_ns_ != 0 && s(now - last_ns_) < min_seconds_) return;
  const double elapsed = s(now - start_ns_);
  const double rate = elapsed > 0.0 ? (step - last_step_) / elapsed : 0.0;
  std::fprintf(stderr, "progress: step %d t=%.6g (%.1f steps/s, %.1f s)\n",
               step, solver.time(), rate, elapsed);
  last_ns_ = now;
}

void ProgressObserver::on_finish(const SolverBase& solver) {
  std::fprintf(stderr, "progress: finished at step %d t=%.6g (%.1f s)\n",
               solver.steps_taken(), solver.time(),
               s(wall_ns_now() - start_ns_));
}

}  // namespace exastp
