#include "exastp/telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "exastp/common/check.h"

namespace exastp {

const char* span_name(SpanId id) {
  switch (id) {
    case SpanId::kStep: return "step";
    case SpanId::kStableDt: return "stable_dt";
    case SpanId::kObservers: return "observers";
    case SpanId::kPredict: return "predict";
    case SpanId::kCorrectInterior: return "correct_interior";
    case SpanId::kCorrectBoundary: return "correct_boundary";
    case SpanId::kRkStageInterior: return "rk_stage_interior";
    case SpanId::kRkStageBoundary: return "rk_stage_boundary";
    case SpanId::kExchangePost: return "exchange_post";
    case SpanId::kExchangeWait: return "exchange_wait";
    case SpanId::kShardInterior: return "shard_interior";
    case SpanId::kShardBoundary: return "shard_boundary";
    case SpanId::kOverlapCompute: return "overlap_compute";
    case SpanId::kParallelRegion: return "parallel_region";
    case SpanId::kSetupTune: return "setup_tune";
    case SpanId::kSetupSolver: return "setup_solver";
    case SpanId::kSetupInit: return "setup_init";
    case SpanId::kJob: return "job";
    case SpanId::kLtsCluster: return "lts_cluster";
    case SpanId::kSchedWait: return "sched_wait";
    case SpanId::kNumSpanIds: break;
  }
  EXASTP_FAIL("unknown span id");
}

ThreadRing::ThreadRing(std::size_t capacity, int thread_index)
    : events_(std::max<std::size_t>(capacity, 1)),
      thread_index_(thread_index) {}

std::vector<SpanEvent> ThreadRing::snapshot() const {
  std::vector<SpanEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::size_t cap = events_.size();
  const std::size_t first = head_ > cap ? head_ - cap : 0;
  for (std::size_t i = first; i < head_; ++i) out.push_back(events_[i % cap]);
  return out;
}

namespace detail {

TelemetryRegistry*& current_telemetry() {
  static thread_local TelemetryRegistry* current = nullptr;
  return current;
}

namespace {
/// Process-unique registry serials; 0 is reserved for "no registry", so a
/// fresh thread_local cache never aliases a real one.
std::atomic<std::uint64_t> next_serial{1};
}  // namespace

}  // namespace detail

TelemetryRegistry::TelemetryRegistry(bool spans_enabled,
                                     std::size_t ring_capacity)
    : spans_enabled_(spans_enabled),
      ring_capacity_(ring_capacity),
      serial_(detail::next_serial.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now()) {}

ThreadRing& TelemetryRegistry::ring_for_this_thread() {
  // Cache keyed by the registry serial: a pooled worker thread that moves
  // to a new job's registry re-registers there on its first span; the
  // common case (same registry as last time) is two thread_local reads.
  // The serial — not the pointer — keys the cache, so a registry allocated
  // at a destroyed one's address cannot inherit its stale ring.
  static thread_local std::uint64_t cached_serial = 0;
  static thread_local ThreadRing* cached_ring = nullptr;
  if (cached_serial == serial_ && cached_ring != nullptr) return *cached_ring;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(std::make_unique<ThreadRing>(
      ring_capacity_, static_cast<int>(rings_.size())));
  cached_ring = rings_.back().get();
  cached_serial = serial_;
  return *cached_ring;
}

void TelemetryRegistry::record(SpanId id, int track, std::int64_t arg,
                               std::int64_t t0_ns, std::int64_t t1_ns) {
  SpanEvent event;
  event.t0_ns = t0_ns;
  event.t1_ns = t1_ns;
  event.id = static_cast<std::int32_t>(id);
  event.track = track;
  event.arg = arg;
  ring_for_this_thread().push(event);
  const std::int64_t ns = t1_ns - t0_ns;
  agg_ns_[static_cast<int>(id)].fetch_add(ns, std::memory_order_relaxed);
  agg_count_[static_cast<int>(id)].fetch_add(1, std::memory_order_relaxed);
  if (track >= 0 && track < kMaxShardTracks)
    shard_ns_[static_cast<std::size_t>(track)].fetch_add(
        ns, std::memory_order_relaxed);
}

void TelemetryRegistry::add_counter(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(named_mutex_);
  named_[name] += delta;
}

void TelemetryRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(named_mutex_);
  named_[name] = value;
}

std::map<std::string, double> TelemetryRegistry::named_values() const {
  std::lock_guard<std::mutex> lock(named_mutex_);
  return named_;
}

std::vector<const ThreadRing*> TelemetryRegistry::rings() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::vector<const ThreadRing*> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) out.push_back(ring.get());
  return out;
}

namespace {

std::string seconds_text(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

std::string percent_text(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * fraction);
  return buf;
}

}  // namespace

std::string telemetry_summary_table(const TelemetryRegistry& registry,
                                    double seconds) {
  const SpanAggregate steps = registry.aggregate(SpanId::kStep);
  if (steps.count == 0) return "";
  const double step_s = static_cast<double>(steps.total_ns) * 1e-9;
  const double wall_s = seconds >= 0.0 ? seconds : step_s;

  std::ostringstream os;
  os << "telemetry: " << steps.count << " steps in " << seconds_text(step_s)
     << " s stepped time (" << seconds_text(step_s / steps.count)
     << " s/step)\n";
  os << "  phase               total_s   share    count\n";
  // Shares are of the stepped time; the phases listed are the disjoint
  // per-stepper sweeps (sharded wrappers and the overlap aggregate are
  // reported separately below, so nothing is double-counted).
  const SpanId phases[] = {SpanId::kPredict,         SpanId::kCorrectInterior,
                           SpanId::kCorrectBoundary, SpanId::kRkStageInterior,
                           SpanId::kRkStageBoundary, SpanId::kExchangePost,
                           SpanId::kExchangeWait,    SpanId::kStableDt,
                           SpanId::kObservers};
  for (SpanId id : phases) {
    const SpanAggregate agg = registry.aggregate(id);
    if (agg.count == 0) continue;
    const double s = static_cast<double>(agg.total_ns) * 1e-9;
    char line[128];
    std::snprintf(line, sizeof(line), "  %-18s %9.4f  %s %8lld\n",
                  span_name(id), s,
                  percent_text(step_s > 0.0 ? s / step_s : 0.0).c_str(),
                  static_cast<long long>(agg.count));
    os << line;
  }

  // Overlap efficiency: how much of the halo exchange hid behind compute.
  // hidden = sweep time while an exchange was in flight; the unhidden
  // remainder showed up as exchange_wait (lockstep) or as blocked
  // sched_wait polls (the dependency scheduler).
  const SpanAggregate overlap = registry.aggregate(SpanId::kOverlapCompute);
  const SpanAggregate wait = registry.aggregate(SpanId::kExchangeWait);
  const SpanAggregate sched = registry.aggregate(SpanId::kSchedWait);
  if (overlap.count > 0) {
    const double hidden = static_cast<double>(overlap.total_ns) * 1e-9;
    const double unhidden =
        static_cast<double>(wait.total_ns + sched.total_ns) * 1e-9;
    const double total = hidden + unhidden;
    os << "  overlap efficiency " << percent_text(total > 0.0 ? hidden / total
                                                              : 0.0)
       << " (" << seconds_text(hidden) << " s interior hid "
       << seconds_text(unhidden) << " s of residual wait)\n";
  }

  // Per-shard imbalance over the interior+boundary sweep times.
  std::int64_t s_min = 0, s_max = 0, s_sum = 0;
  int shards = 0;
  for (int s = 0; s < kMaxShardTracks; ++s) {
    const std::int64_t ns = registry.shard_ns(s);
    if (ns == 0) continue;
    s_min = shards == 0 ? ns : std::min(s_min, ns);
    s_max = std::max(s_max, ns);
    s_sum += ns;
    ++shards;
  }
  if (shards > 1) {
    const double mean = static_cast<double>(s_sum) / shards;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  shard time min/mean/max = %.4f/%.4f/%.4f s over %d "
                  "shards (imbalance %.2f)\n",
                  static_cast<double>(s_min) * 1e-9, mean * 1e-9,
                  static_cast<double>(s_max) * 1e-9, shards,
                  mean > 0.0 ? static_cast<double>(s_max) / mean : 0.0);
    os << line;
  }

  const std::uint64_t flops = registry.flops().total();
  if (flops > 0 && wall_s > 0.0) {
    char line[96];
    std::snprintf(line, sizeof(line), "  flops %.3e (%.2f GFLOP/s)\n",
                  static_cast<double>(flops),
                  static_cast<double>(flops) / wall_s * 1e-9);
    os << line;
  }

  for (const auto& [name, value] : registry.named_values()) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %s = %g\n", name.c_str(), value);
    os << line;
  }
  return os.str();
}

}  // namespace exastp
