// Streaming per-step metrics and the opt-in progress heartbeat.
//
// StepMetricsObserver rides the observer subsystem (io/observer.h) on the
// solver time loop and streams one row every `interval` steps, built from
// the run's TelemetryRegistry aggregates — the same incremental-writer
// contract as the receiver sinks: flushed per row, the file is valid after
// every append, so a long run can be tailed or scraped live. CSV by
// default; a path ending in ".jsonl" streams JSON objects instead.
//
// Columns (docs/observability.md): step, t, dt, wall_s (wall time of the
// interval), the per-phase breakdown (predict/correct/rk_stage/exchange
// post+wait seconds within the interval), overlap_eff (hidden-communication
// fraction: interior-during-exchange / (that + exchange_wait)), the
// per-shard step-time min/mean/max and imbalance ratio (max/mean),
// kernel-cache hits (process cumulative), and flops/mflops_s from the
// run-scoped FlopCounter. Values that do not apply (no exchange, one
// shard) print as nan.
//
// ProgressObserver is the `progress=stderr` heartbeat: a one-line step/t/
// rate report, wall-clock throttled to ~1 Hz, rank 0 only. Both observers
// only read the solver and the registry — enabling them changes no
// simulation bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "exastp/io/observer.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

class StepMetricsObserver final : public Observer {
 public:
  /// Streams to `path` (".jsonl" suffix switches the format) every
  /// `interval` steps (>= 1). The registry must outlive the observer (the
  /// Simulation façade owns both, registry declared first).
  StepMetricsObserver(const TelemetryRegistry* registry, std::string path,
                      int interval);

  void on_start(const SolverBase& solver) override;
  void on_step(const SolverBase& solver, int step) override;
  void on_finish(const SolverBase& solver) override;

 private:
  struct Snapshot {
    std::int64_t wall_ns = 0;
    double t = 0.0;
    std::int64_t predict_ns = 0;
    std::int64_t correct_ns = 0;
    std::int64_t rk_stage_ns = 0;
    std::int64_t post_ns = 0;
    std::int64_t wait_ns = 0;
    std::int64_t overlap_ns = 0;
    std::uint64_t flops = 0;
  };
  Snapshot snapshot(const SolverBase& solver) const;

  const TelemetryRegistry* registry_;
  std::string path_;
  int interval_;
  bool jsonl_ = false;
  std::ofstream out_;
  Snapshot last_;
  int last_step_ = 0;
};

class ProgressObserver final : public Observer {
 public:
  /// `min_seconds` between heartbeats (wall clock; the first observed step
  /// always reports). Writes to stderr.
  explicit ProgressObserver(double min_seconds = 1.0);

  void on_start(const SolverBase& solver) override;
  void on_step(const SolverBase& solver, int step) override;
  void on_finish(const SolverBase& solver) override;

 private:
  double min_seconds_;
  std::int64_t start_ns_ = 0;
  std::int64_t last_ns_ = 0;
  int last_step_ = 0;
};

}  // namespace exastp
