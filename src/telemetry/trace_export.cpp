#include "exastp/telemetry/trace_export.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/common/check.h"

namespace exastp {
namespace {

/// One "X" (complete) event line. ts/dur are µs with ns resolution kept as
/// decimals; args carry the span's arg (phase/stage/job id) when set.
std::string complete_event(const SpanEvent& event, int pid, int tid) {
  char buf[256];
  const double ts = static_cast<double>(event.t0_ns) * 1e-3;
  const double dur = static_cast<double>(event.t1_ns - event.t0_ns) * 1e-3;
  const char* name = span_name(static_cast<SpanId>(event.id));
  if (event.arg >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%lld}}",
                  name, pid, tid, ts, dur,
                  static_cast<long long>(event.arg));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  name, pid, tid, ts, dur);
  }
  return buf;
}

std::string metadata_event(const char* what, int pid, int tid,
                           const std::string& name) {
  std::ostringstream os;
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"" << name << "\"}}";
  return os.str();
}

/// Every event line of one registry under pid `rank`, metadata first.
std::vector<std::string> event_lines(const TelemetryRegistry& registry,
                                     int rank) {
  std::vector<std::string> lines;
  lines.push_back(
      metadata_event("process_name", rank, -1,
                     "exastp rank " + std::to_string(rank)));

  std::set<int> shard_tracks;
  std::uint64_t dropped = 0;
  const std::vector<const ThreadRing*> rings = registry.rings();
  for (const ThreadRing* ring : rings) {
    const int tid = ring->thread_index();
    lines.push_back(metadata_event(
        "thread_name", rank, tid,
        tid == 0 ? "main" : "worker " + std::to_string(tid)));
    dropped += ring->dropped();
    for (const SpanEvent& event : ring->snapshot()) {
      // Shard-attributed spans render on the shard's synthetic track;
      // everything else on the thread that emitted it.
      const int track =
          event.track >= 0 ? kShardTrackBase + event.track : tid;
      if (event.track >= 0) shard_tracks.insert(event.track);
      lines.push_back(complete_event(event, rank, track));
    }
  }
  for (int shard : shard_tracks)
    lines.push_back(metadata_event("thread_name", rank,
                                   kShardTrackBase + shard,
                                   "shard " + std::to_string(shard)));
  if (dropped > 0) {
    // Make ring overflow visible in the trace itself instead of silently
    // presenting a truncated run as complete.
    lines.push_back(metadata_event(
        "process_labels", rank, -1,
        std::to_string(dropped) + " events dropped (ring wrapped)"));
  }
  return lines;
}

void write_array(std::ostream& out, const std::vector<std::string>& lines) {
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i)
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  out << "]}\n";
}

}  // namespace

void write_chrome_trace(const TelemetryRegistry& registry,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  EXASTP_CHECK_MSG(out.good(), "cannot open trace \"" + path + "\"");
  write_array(out, event_lines(registry, 0));
  out.flush();
  EXASTP_CHECK_MSG(out.good(), "failed writing trace \"" + path + "\"");
}

void write_chrome_trace_part(const TelemetryRegistry& registry,
                             const std::string& path, int rank) {
  const std::string part = path + ".r" + std::to_string(rank) + ".part";
  std::ofstream out(part, std::ios::trunc);
  EXASTP_CHECK_MSG(out.good(), "cannot open trace part \"" + part + "\"");
  for (const std::string& line : event_lines(registry, rank))
    out << line << "\n";
  out.flush();
  EXASTP_CHECK_MSG(out.good(), "failed writing trace part \"" + part + "\"");
}

void merge_chrome_trace_parts(const std::string& path, int ranks) {
  std::vector<std::string> lines;
  for (int rank = 0; rank < ranks; ++rank) {
    const std::string part = path + ".r" + std::to_string(rank) + ".part";
    std::ifstream in(part);
    EXASTP_CHECK_MSG(in.good(), "missing trace part \"" + part + "\"");
    std::string line;
    while (std::getline(in, line))
      if (!line.empty()) lines.push_back(line);
  }
  std::ofstream out(path, std::ios::trunc);
  EXASTP_CHECK_MSG(out.good(), "cannot open trace \"" + path + "\"");
  write_array(out, lines);
  out.flush();
  EXASTP_CHECK_MSG(out.good(), "failed writing trace \"" + path + "\"");
}

}  // namespace exastp
