// Chrome trace-event JSON export of a TelemetryRegistry's span rings.
//
// The output is the Trace Event Format's JSON-array flavour — loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Every span becomes one
// complete ("ph":"X") event with microsecond ts/dur relative to the
// registry's epoch; "M" metadata events name the processes and tracks:
//
//   pid   the MPI rank (0 for local runs)
//   tid   one per worker thread that emitted spans (registration order;
//         tid 0 is usually the main thread), plus one synthetic track per
//         mesh shard (kShardTrackBase + shard) carrying the per-shard
//         interior/boundary sweeps of the sharded composite.
//
// Distributed runs mirror the receiver streams (io/receiver_sinks.h):
// every rank writes `<path>.r<K>.part` — the event objects as plain JSON
// lines — and rank 0 merges the parts into the final JSON array after the
// run's barrier. Ranks time spans on their own steady clocks, so
// cross-rank alignment is approximate (good enough to eyeball overlap;
// docs/observability.md).
#pragma once

#include <string>

#include "exastp/telemetry/telemetry.h"

namespace exastp {

/// Trace tid of shard s's synthetic track (clear of any real thread tids).
inline constexpr int kShardTrackBase = 1000;

/// Writes the complete single-process trace (a local run): metadata plus
/// every ring's events, pid 0. Truncates `path`; throws on I/O errors.
void write_chrome_trace(const TelemetryRegistry& registry,
                        const std::string& path);

/// One rank's contribution, as JSON-object lines (no enclosing array):
/// `<path>.r<rank>.part`. Every rank of a distributed run calls this.
void write_chrome_trace_part(const TelemetryRegistry& registry,
                             const std::string& path, int rank);

/// Rank-0 merge of every rank's part lines into the final JSON array at
/// `path`. Missing parts are an error — every rank writes one. The parts
/// stay on disk, like the receiver parts.
void merge_chrome_trace_parts(const std::string& path, int ranks);

}  // namespace exastp
