// Runtime observability core: phase-attributed span timers, per-thread
// event rings, and a per-run registry of aggregates, counters and gauges.
//
// The perf/ layer models what the kernels *should* cost; this layer
// measures where a running simulation's wall time actually goes — predict
// vs correct vs halo wait, per shard and per thread — in the
// SeisSol/ExaHyPE tradition of phase-instrumented ADER-DG production runs.
// Three pieces:
//
//   TelemetryRegistry  one instance per run (the Simulation façade owns
//                      one per job). Holds per-thread SpanEvent rings,
//                      lock-free per-SpanId duration aggregates, a
//                      per-shard time array for imbalance, named
//                      counters/gauges (cold path, mutex), and the run's
//                      own FlopCounter (see TelemetryScope).
//   ScopedSpan         RAII timer. Reads the thread's current registry
//                      from a thread_local — when no registry is
//                      installed, or spans are disabled, the constructor
//                      is one TLS load and a branch: no clock read, no
//                      allocation, no lock. When enabled it records
//                      [t0, t1) into the calling thread's ring (single
//                      writer, never locked) and bumps the aggregate with
//                      relaxed atomics.
//   TelemetryScope     installs a registry as the thread's current one
//                      and routes FlopCounter::instance() to the
//                      registry's counter, so concurrent pool jobs no
//                      longer double-count each other's FLOPs.
//                      TelemetryEnv::capture() snapshots the installation
//                      for re-installation on worker threads (ParallelFor
//                      propagates it into every parallel region).
//
// Determinism: telemetry only reads the monotonic clock and writes to its
// own buffers and files — it never touches solver state, so enabling it
// changes no simulation bytes (guarded by tests/test_telemetry.cpp).
//
// Compile-time kill switch: defining EXASTP_DISABLE_TELEMETRY turns
// ScopedSpan and the capture/install hooks into empty inline no-ops.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exastp/perf/flop_count.h"

namespace exastp {

/// The span taxonomy (docs/observability.md). Fixed at compile time so the
/// hot path indexes a flat array instead of hashing names.
enum class SpanId : std::int32_t {
  kStep = 0,          ///< one step(dt) inside run_until
  kStableDt,          ///< the CFL reduction before each step
  kObservers,         ///< the attached observers' on_step hooks
  kPredict,           ///< ADER space-time predictor sweep (phase 0)
  kCorrectInterior,   ///< ADER corrector over the interior cell set
  kCorrectBoundary,   ///< ADER corrector over the boundary set + advance
  kRkStageInterior,   ///< RK4 stage operator, interior set (arg = stage)
  kRkStageBoundary,   ///< RK4 stage operator, boundary set + axpy sweeps
  kExchangePost,      ///< ExchangeBackend::post (pack + send / gather)
  kExchangeWait,      ///< ExchangeBackend::wait (unhidden halo latency)
  kShardInterior,     ///< one shard's interior sweep (track = shard)
  kShardBoundary,     ///< one shard's boundary sweep (track = shard)
  kOverlapCompute,    ///< interior compute while an exchange was in flight
  kParallelRegion,    ///< one thread's share of a ParallelFor::run
  kSetupTune,         ///< from_config: fused-block autotune measurement
  kSetupSolver,       ///< from_config: kernel + solver construction
  kSetupInit,         ///< from_config: initial condition + sources
  kJob,               ///< one SimulationPool job (arg = job id)
  kLtsCluster,        ///< one LTS cluster's sweep (arg = cluster)
  kSchedWait,         ///< scheduler blocked on arrivals (arg = stalled shards)
  kNumSpanIds
};

inline constexpr int kNumSpanIds = static_cast<int>(SpanId::kNumSpanIds);

/// Stable lower_snake name of a span id ("predict", "exchange_wait", ...) —
/// the `name` field of trace events and the summary-table row label.
const char* span_name(SpanId id);

/// One completed span, 32 bytes. Times are ns on the steady clock relative
/// to the owning registry's epoch.
struct SpanEvent {
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::int32_t id = 0;     ///< SpanId
  std::int32_t track = -1; ///< -1 = the emitting thread; >= 0 = shard track
  std::int64_t arg = -1;   ///< phase / stage / job id; -1 = none
};

/// Fixed-capacity single-writer ring of SpanEvents. Exactly one thread
/// pushes (the owner); readers snapshot after the run, once the producing
/// threads have been joined or synchronized (the registry's export path).
/// When full, the oldest events are overwritten — the trace keeps the tail
/// of the run — and `dropped()` counts the overwritten events.
class ThreadRing {
 public:
  explicit ThreadRing(std::size_t capacity, int thread_index);

  void push(const SpanEvent& event) {
    events_[head_ % events_.size()] = event;
    ++head_;
  }

  /// Events in push order (oldest surviving first). Call only quiescent.
  std::vector<SpanEvent> snapshot() const;

  std::uint64_t dropped() const {
    return head_ > events_.size() ? head_ - events_.size() : 0;
  }
  std::size_t size() const {
    return head_ < events_.size() ? head_ : events_.size();
  }
  /// Registration order within the registry: 0 is the first thread that
  /// emitted a span (usually the main thread). The trace's per-thread tid.
  int thread_index() const { return thread_index_; }

 private:
  std::vector<SpanEvent> events_;
  std::size_t head_ = 0;
  int thread_index_ = 0;
};

/// Per-SpanId totals, accumulated lock-free from every thread.
struct SpanAggregate {
  std::int64_t total_ns = 0;
  std::int64_t count = 0;
};

/// Shard slots tracked for the imbalance statistics. Decompositions beyond
/// this are still correct — the overflow shards just do not contribute to
/// the min/mean/max.
inline constexpr int kMaxShardTracks = 256;

class TelemetryRegistry {
 public:
  /// `spans_enabled` gates every clock read: a registry created with it
  /// false still scopes FLOP accounting (TelemetryScope) but records no
  /// spans. `ring_capacity` is events per thread (tests shrink it to
  /// exercise wraparound).
  explicit TelemetryRegistry(bool spans_enabled,
                             std::size_t ring_capacity = std::size_t{1} << 15);

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  bool spans_enabled() const { return spans_enabled_; }

  /// ns since this registry's construction on the steady clock.
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one completed span: pushes it into the calling thread's ring,
  /// bumps the SpanId aggregate, and — when `track` names a shard — adds
  /// the duration to that shard's time (the imbalance statistic).
  void record(SpanId id, int track, std::int64_t arg, std::int64_t t0_ns,
              std::int64_t t1_ns);

  /// Aggregate-only accounting for durations that are not trace spans
  /// (kOverlapCompute: the interior time hidden behind an exchange).
  void add_duration(SpanId id, std::int64_t ns) {
    agg_ns_[static_cast<int>(id)].fetch_add(ns, std::memory_order_relaxed);
    agg_count_[static_cast<int>(id)].fetch_add(1, std::memory_order_relaxed);
  }

  SpanAggregate aggregate(SpanId id) const {
    return {agg_ns_[static_cast<int>(id)].load(std::memory_order_relaxed),
            agg_count_[static_cast<int>(id)].load(std::memory_order_relaxed)};
  }

  /// Cumulative ns shard `s` spent in its interior+boundary sweeps.
  std::int64_t shard_ns(int s) const {
    return s >= 0 && s < kMaxShardTracks
               ? shard_ns_[static_cast<std::size_t>(s)].load(
                     std::memory_order_relaxed)
               : 0;
  }

  /// The run's own FLOP counter; TelemetryScope routes
  /// FlopCounter::instance() here while installed.
  FlopCounter& flops() { return flops_; }
  const FlopCounter& flops() const { return flops_; }

  // Named counters/gauges — cold path (setup bookkeeping, end-of-run
  // summaries), mutex-guarded.
  void add_counter(const std::string& name, double delta);
  void set_gauge(const std::string& name, double value);
  /// A merged name -> value view of counters and gauges, in name order.
  std::map<std::string, double> named_values() const;

  /// Every thread ring registered so far, for export. Call quiescent (the
  /// producing threads joined or synchronized); entries are in thread
  /// registration order.
  std::vector<const ThreadRing*> rings() const;

 private:
  friend class ScopedSpan;
  /// The calling thread's ring, registering it on first use. The fast path
  /// is two thread_local reads (see telemetry.cpp).
  ThreadRing& ring_for_this_thread();

  bool spans_enabled_ = false;
  std::size_t ring_capacity_;
  std::uint64_t serial_;  ///< process-unique, keys the thread_local cache
  std::chrono::steady_clock::time_point epoch_;
  std::array<std::atomic<std::int64_t>, kNumSpanIds> agg_ns_{};
  std::array<std::atomic<std::int64_t>, kNumSpanIds> agg_count_{};
  std::array<std::atomic<std::int64_t>, kMaxShardTracks> shard_ns_{};
  FlopCounter flops_;
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  mutable std::mutex named_mutex_;
  std::map<std::string, double> named_;
};

namespace detail {
/// The thread's installed registry (TelemetryScope); null outside a scope.
TelemetryRegistry*& current_telemetry();
}  // namespace detail

#ifndef EXASTP_DISABLE_TELEMETRY

/// RAII span timer. Constructed on the hot path of every step phase, so
/// the disabled path must stay trivial: one TLS load and one branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanId id, std::int64_t arg = -1, int track = -1)
      : id_(id), track_(track), arg_(arg) {
    TelemetryRegistry* reg = detail::current_telemetry();
    reg_ = (reg != nullptr && reg->spans_enabled()) ? reg : nullptr;
    if (reg_ != nullptr) t0_ns_ = reg_->now_ns();
  }
  ~ScopedSpan() {
    if (reg_ != nullptr)
      reg_->record(id_, track_, arg_, t0_ns_, reg_->now_ns());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TelemetryRegistry* reg_ = nullptr;
  std::int64_t t0_ns_ = 0;
  SpanId id_;
  int track_;
  std::int64_t arg_;
};

/// Installs `registry` as the calling thread's current one and routes
/// FlopCounter::instance() to registry->flops() for the scope's lifetime
/// (restoring both on destruction, so scopes nest). Passing null is a
/// no-op scope — callers need no branches.
class TelemetryScope {
 public:
  explicit TelemetryScope(TelemetryRegistry* registry)
      : prev_reg_(detail::current_telemetry()),
        prev_flops_(FlopCounter::thread_instance()) {
    if (registry != nullptr) {
      detail::current_telemetry() = registry;
      FlopCounter::thread_instance() = &registry->flops();
    }
  }
  ~TelemetryScope() {
    detail::current_telemetry() = prev_reg_;
    FlopCounter::thread_instance() = prev_flops_;
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  /// The calling thread's installed registry, or null.
  static TelemetryRegistry* current() { return detail::current_telemetry(); }

 private:
  TelemetryRegistry* prev_reg_;
  FlopCounter* prev_flops_;
};

/// Snapshot of a thread's telemetry installation (registry + FLOP routing),
/// for handing to worker threads: ParallelFor captures the caller's
/// environment once per run() and installs it inside every chunk body, so
/// spans and FLOPs from OpenMP/pool workers land in the job that spawned
/// them — not in whatever a pooled worker thread ran last.
class TelemetryEnv {
 public:
  static TelemetryEnv capture() {
    TelemetryEnv env;
    env.reg_ = detail::current_telemetry();
    env.flops_ = FlopCounter::thread_instance();
    return env;
  }

  class Install {
   public:
    explicit Install(const TelemetryEnv& env)
        : prev_reg_(detail::current_telemetry()),
          prev_flops_(FlopCounter::thread_instance()) {
      detail::current_telemetry() = env.reg_;
      FlopCounter::thread_instance() = env.flops_;
    }
    ~Install() {
      detail::current_telemetry() = prev_reg_;
      FlopCounter::thread_instance() = prev_flops_;
    }
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    TelemetryRegistry* prev_reg_;
    FlopCounter* prev_flops_;
  };

 private:
  TelemetryRegistry* reg_ = nullptr;
  FlopCounter* flops_ = nullptr;
};

#else  // EXASTP_DISABLE_TELEMETRY

class ScopedSpan {
 public:
  explicit ScopedSpan(SpanId, std::int64_t = -1, int = -1) {}
};

class TelemetryScope {
 public:
  explicit TelemetryScope(TelemetryRegistry*) {}
  static TelemetryRegistry* current() { return nullptr; }
};

class TelemetryEnv {
 public:
  static TelemetryEnv capture() { return {}; }
  class Install {
   public:
    explicit Install(const TelemetryEnv&) {}
  };
};

#endif  // EXASTP_DISABLE_TELEMETRY

/// Human-readable end-of-run table: phase wall-time shares of the stepped
/// time, per-shard imbalance and overlap efficiency, FLOP throughput, and
/// the named counters. Empty when the registry recorded no steps (spans
/// disabled or run_until never ran) — callers print it only when
/// non-empty. `seconds` is the measured wall time of the run when the
/// caller has one (< 0 = derive from the step aggregate).
std::string telemetry_summary_table(const TelemetryRegistry& registry,
                                    double seconds = -1.0);

}  // namespace exastp
