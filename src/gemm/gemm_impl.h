// Shared mini-GEMM inner loop, instantiated once per ISA translation unit.
//
// The three TUs (gemm_baseline.cpp / gemm_avx2.cpp / gemm_avx512.cpp) are
// compiled with different -m flags; including this header gives each the
// same schedule, which GCC vectorizes with the widest packing the TU's
// target allows. This mirrors how LIBXSMM generates one microkernel per
// ISA from one schedule.
//
// Schedule: register-blocked over the unit-stride C columns. A block of
// compile-time width (32/16/8/4 elements) of accumulators stays live across
// the whole k-loop (GCC maps the fixed-size array onto vector registers),
// so each C element is loaded/stored once per GEMM instead of once per k
// iteration — the property that makes LIBXSMM-style small GEMMs
// compute-bound.
//
// The schedule is templated on the scalar type: the fp32 kernel path runs
// the same register-blocked loop over float tensors (twice the lanes per
// register, half the bytes per column block).
//
// Everything here has internal linkage (anonymous namespace) ON PURPOSE:
// each ISA TU must get its own copy compiled with its own -m flags; an
// inline symbol would be merged across TUs by the linker and silently pick
// one ISA for all three.
#pragma once

namespace exastp::detail {
namespace {

template <int JB, class T>
inline void gemm_block(bool accumulate, T alpha, int k, const T* ai,
                       const T* b, int ldb, T* cj) {
  T acc[JB];
  if (accumulate) {
#pragma omp simd
    for (int jj = 0; jj < JB; ++jj) acc[jj] = cj[jj];
  } else {
#pragma omp simd
    for (int jj = 0; jj < JB; ++jj) acc[jj] = T(0);
  }
  for (int l = 0; l < k; ++l) {
    const T ail = alpha * ai[l];
    const T* bl = b + static_cast<long>(l) * ldb;
#pragma omp simd
    for (int jj = 0; jj < JB; ++jj) acc[jj] += ail * bl[jj];
  }
#pragma omp simd
  for (int jj = 0; jj < JB; ++jj) cj[jj] = acc[jj];
}

template <class T>
inline void gemm_tail(bool accumulate, T alpha, int tail, int k,
                      const T* ai, const T* b, int ldb, T* cj) {
  for (int jj = 0; jj < tail; ++jj) {
    T acc = accumulate ? cj[jj] : T(0);
    for (int l = 0; l < k; ++l)
      acc += alpha * ai[l] * b[static_cast<long>(l) * ldb + jj];
    cj[jj] = acc;
  }
}

template <class T>
inline void gemm_kernel_body(bool accumulate, T alpha, int m, int n,
                             int k, const T* a, int lda, const T* b,
                             int ldb, T* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    T* ci = c + static_cast<long>(i) * ldc;
    const T* ai = a + static_cast<long>(i) * lda;
    int jb = 0;
    for (; jb + 32 <= n; jb += 32)
      gemm_block<32>(accumulate, alpha, k, ai, b + jb, ldb, ci + jb);
    if (jb + 16 <= n) {
      gemm_block<16>(accumulate, alpha, k, ai, b + jb, ldb, ci + jb);
      jb += 16;
    }
    if (jb + 8 <= n) {
      gemm_block<8>(accumulate, alpha, k, ai, b + jb, ldb, ci + jb);
      jb += 8;
    }
    if (jb + 4 <= n) {
      gemm_block<4>(accumulate, alpha, k, ai, b + jb, ldb, ci + jb);
      jb += 4;
    }
    if (jb < n)
      gemm_tail(accumulate, alpha, n - jb, k, ai, b + jb, ldb, ci + jb);
  }
}

}  // namespace
}  // namespace exastp::detail

#define EXASTP_DEFINE_GEMM_KERNEL(NAME)                                      \
  void NAME(bool accumulate, double alpha, int m, int n, int k,              \
            const double* a, int lda, const double* b, int ldb, double* c,   \
            int ldc) {                                                       \
    gemm_kernel_body(accumulate, alpha, m, n, k, a, lda, b, ldb, c, ldc);    \
  }                                                                          \
  void NAME##_f32(bool accumulate, float alpha, int m, int n, int k,         \
                  const float* a, int lda, const float* b, int ldb,          \
                  float* c, int ldc) {                                       \
    gemm_kernel_body(accumulate, alpha, m, n, k, a, lda, b, ldb, c, ldc);    \
  }

namespace exastp::detail {

void gemm_kernel_baseline(bool accumulate, double alpha, int m, int n, int k,
                          const double* a, int lda, const double* b, int ldb,
                          double* c, int ldc);
void gemm_kernel_avx2(bool accumulate, double alpha, int m, int n, int k,
                      const double* a, int lda, const double* b, int ldb,
                      double* c, int ldc);
void gemm_kernel_avx512(bool accumulate, double alpha, int m, int n, int k,
                        const double* a, int lda, const double* b, int ldb,
                        double* c, int ldc);

void gemm_kernel_baseline_f32(bool accumulate, float alpha, int m, int n,
                              int k, const float* a, int lda, const float* b,
                              int ldb, float* c, int ldc);
void gemm_kernel_avx2_f32(bool accumulate, float alpha, int m, int n, int k,
                          const float* a, int lda, const float* b, int ldb,
                          float* c, int ldc);
void gemm_kernel_avx512_f32(bool accumulate, float alpha, int m, int n, int k,
                            const float* a, int lda, const float* b, int ldb,
                            float* c, int ldc);

}  // namespace exastp::detail
