#include "exastp/gemm/vecops_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_VECOPS_KERNELS(avx512)

}  // namespace exastp::detail
