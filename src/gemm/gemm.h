// mini-GEMM: small dense matrix multiplication on tensor slices.
//
// Substitute for LIBXSMM (paper Sec. III-B). The kernels compute
//
//     C (M x N)  =/+=  A (M x K) * B (K x N)
//
// with independent leading dimensions lda/ldb/ldc, so a "matrix" may be a
// strided slice of a tensor: the paper's trick of interpreting the slice
// stride as the padded leading dimension (Fig. 3) maps 1:1 onto these
// arguments. The N (column) dimension is the unit-stride one and is the
// vectorized axis; callers arrange their layouts so that N is the padded
// quantity dimension (AoS) or the padded x-line / fused dimensions (AoSoA).
//
// Three ISA paths are compiled into the library from one shared inner-loop
// template (see gemm_impl.h): a baseline path (no -m flags: GCC emits SSE2,
// mirroring "compiler heuristics" 128-bit packing), an AVX2 path and an
// AVX-512 path. Dispatch is explicit via the Isa argument so benchmarks can
// compare code paths on one machine (Fig. 4: LoG AVX-512 vs LoG AVX2).
//
// Every call reports its FLOPs (2*M*N*K, padding included) to FlopCounter,
// classified by the packing width of the selected path.
#pragma once

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

/// C = A*B (overwrite). N columns of C/B must be unit-stride.
void gemm_set(Isa isa, int m, int n, int k, const double* a, int lda,
              const double* b, int ldb, double* c, int ldc);

/// C += A*B (accumulate).
void gemm_acc(Isa isa, int m, int n, int k, const double* a, int lda,
              const double* b, int ldb, double* c, int ldc);

/// C += alpha * A*B. Used for derivative operators carrying the 1/h mesh
/// scaling so no separate scaling pass over C is needed.
void gemm_acc_scaled(Isa isa, double alpha, int m, int n, int k,
                     const double* a, int lda, const double* b, int ldb,
                     double* c, int ldc);

/// C = alpha * A*B (overwrite).
void gemm_set_scaled(Isa isa, double alpha, int m, int n, int k,
                     const double* a, int lda, const double* b, int ldb,
                     double* c, int ldc);

/// Float overloads of the four entry points: same schedule, same per-call
/// FLOP reporting. FLOPs are classified at the double packing width of the
/// ISA (conservative: an AVX-512 register holds 16 floats, reported as 8
/// lanes), so fp32/fp64 runs of one kernel report identical counts and the
/// trace-model twins stay precision-agnostic.
void gemm_set(Isa isa, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc);
void gemm_acc(Isa isa, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc);
void gemm_acc_scaled(Isa isa, float alpha, int m, int n, int k,
                     const float* a, int lda, const float* b, int ldb,
                     float* c, int ldc);
void gemm_set_scaled(Isa isa, float alpha, int m, int n, int k,
                     const float* a, int lda, const float* b, int ldb,
                     float* c, int ldc);

/// Reference triple loop without any vectorization pragmas; ground truth for
/// the unit tests and the "naive" side of the bench_gemm comparison. Does
/// not touch the FLOP counter.
void gemm_reference(bool accumulate, double alpha, int m, int n, int k,
                    const double* a, int lda, const double* b, int ldb,
                    double* c, int ldc);

/// WidthClass that `isa`'s code path reports to the FLOP counter.
WidthClass gemm_width_class(Isa isa);

}  // namespace exastp
