#include "exastp/gemm/gemm.h"

#include "exastp/common/check.h"
#include "exastp/gemm/gemm_impl.h"
#include "exastp/perf/flop_count.h"

namespace exastp {
namespace {

void count_gemm_flops(Isa isa, int m, int n, int k, bool accumulate) {
  // 2*M*N*K multiply-adds plus the zeroing pass when overwriting; zeroing
  // stores are not FLOPs and are not counted. Padded columns of N execute
  // real arithmetic and are included — same as a hardware counter.
  (void)accumulate;
  // Each of the n columns is a SIMD lane carrying 2*m*k multiply-adds;
  // columns beyond the last full vector run in the compiler's remainder
  // loop and count as scalar.
  count_packed_flops(isa, n, 2ull * m * k);
}

void dispatch(Isa isa, bool accumulate, double alpha, int m, int n, int k,
              const double* a, int lda, const double* b, int ldb, double* c,
              int ldc) {
  EXASTP_CHECK(m >= 0 && n >= 0 && k >= 0);
  EXASTP_CHECK(lda >= k && ldb >= n && ldc >= n);
  switch (isa) {
    case Isa::kScalar:
      detail::gemm_kernel_baseline(accumulate, alpha, m, n, k, a, lda, b, ldb,
                                   c, ldc);
      break;
    case Isa::kAvx2:
      EXASTP_CHECK_MSG(host_supports(Isa::kAvx2), "host lacks AVX2");
      detail::gemm_kernel_avx2(accumulate, alpha, m, n, k, a, lda, b, ldb, c,
                               ldc);
      break;
    case Isa::kAvx512:
      EXASTP_CHECK_MSG(host_supports(Isa::kAvx512), "host lacks AVX-512");
      detail::gemm_kernel_avx512(accumulate, alpha, m, n, k, a, lda, b, ldb,
                                 c, ldc);
      break;
  }
  count_gemm_flops(isa, m, n, k, accumulate);
}

void dispatch(Isa isa, bool accumulate, float alpha, int m, int n, int k,
              const float* a, int lda, const float* b, int ldb, float* c,
              int ldc) {
  EXASTP_CHECK(m >= 0 && n >= 0 && k >= 0);
  EXASTP_CHECK(lda >= k && ldb >= n && ldc >= n);
  switch (isa) {
    case Isa::kScalar:
      detail::gemm_kernel_baseline_f32(accumulate, alpha, m, n, k, a, lda, b,
                                       ldb, c, ldc);
      break;
    case Isa::kAvx2:
      EXASTP_CHECK_MSG(host_supports(Isa::kAvx2), "host lacks AVX2");
      detail::gemm_kernel_avx2_f32(accumulate, alpha, m, n, k, a, lda, b, ldb,
                                   c, ldc);
      break;
    case Isa::kAvx512:
      EXASTP_CHECK_MSG(host_supports(Isa::kAvx512), "host lacks AVX-512");
      detail::gemm_kernel_avx512_f32(accumulate, alpha, m, n, k, a, lda, b,
                                     ldb, c, ldc);
      break;
  }
  // Same counting as the double path: FLOPs are precision-independent and
  // the width classification deliberately stays at the double lane count so
  // fp32/fp64 twins of one kernel report identical instruction mixes.
  count_gemm_flops(isa, m, n, k, accumulate);
}

}  // namespace

WidthClass gemm_width_class(Isa isa) { return packed_width_class(isa); }

void gemm_set(Isa isa, int m, int n, int k, const double* a, int lda,
              const double* b, int ldb, double* c, int ldc) {
  dispatch(isa, /*accumulate=*/false, 1.0, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_acc(Isa isa, int m, int n, int k, const double* a, int lda,
              const double* b, int ldb, double* c, int ldc) {
  dispatch(isa, /*accumulate=*/true, 1.0, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_acc_scaled(Isa isa, double alpha, int m, int n, int k,
                     const double* a, int lda, const double* b, int ldb,
                     double* c, int ldc) {
  dispatch(isa, /*accumulate=*/true, alpha, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_set_scaled(Isa isa, double alpha, int m, int n, int k,
                     const double* a, int lda, const double* b, int ldb,
                     double* c, int ldc) {
  dispatch(isa, /*accumulate=*/false, alpha, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_set(Isa isa, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc) {
  dispatch(isa, /*accumulate=*/false, 1.0f, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_acc(Isa isa, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc) {
  dispatch(isa, /*accumulate=*/true, 1.0f, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_acc_scaled(Isa isa, float alpha, int m, int n, int k,
                     const float* a, int lda, const float* b, int ldb,
                     float* c, int ldc) {
  dispatch(isa, /*accumulate=*/true, alpha, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_set_scaled(Isa isa, float alpha, int m, int n, int k,
                     const float* a, int lda, const float* b, int ldb,
                     float* c, int ldc) {
  dispatch(isa, /*accumulate=*/false, alpha, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_reference(bool accumulate, double alpha, int m, int n, int k,
                    const double* a, int lda, const double* b, int ldb,
                    double* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = accumulate ? c[static_cast<long>(i) * ldc + j] : 0.0;
      for (int l = 0; l < k; ++l) {
        acc += alpha * a[static_cast<long>(i) * lda + l] *
               b[static_cast<long>(l) * ldb + j];
      }
      c[static_cast<long>(i) * ldc + j] = acc;
    }
  }
}

}  // namespace exastp
