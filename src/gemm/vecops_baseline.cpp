#include "exastp/gemm/vecops_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_VECOPS_KERNELS(baseline)

}  // namespace exastp::detail
