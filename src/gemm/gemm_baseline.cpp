// Baseline-ISA microkernel TU: compiled with the project's default flags
// (no -m extensions), so GCC packs at most 128 bits (SSE2).
#include "exastp/gemm/gemm_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_GEMM_KERNEL(gemm_kernel_baseline)

}  // namespace exastp::detail
