#include "exastp/gemm/vecops_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_VECOPS_KERNELS(avx2)

}  // namespace exastp::detail
