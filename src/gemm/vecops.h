// Element-wise vector primitives with ISA dispatch.
//
// The optimized STP variants spend most FLOPs in mini-GEMM, but the Taylor
// accumulation (qavg += coeff * p) and similar sweeps over whole cell tensors
// also vectorize over the padded leading dimension (paper Sec. III-A). Like
// the GEMM microkernels these are compiled once per ISA from one schedule so
// the AVX2/AVX-512 comparison exercises genuinely different code paths.
//
// All entry points report their FLOPs to FlopCounter with the packing class
// of the selected ISA path (remainder elements count as scalar).
#pragma once

#include "exastp/common/simd.h"

namespace exastp {

/// y[i] += a * x[i]
void vec_axpy(Isa isa, long n, double a, const double* x, double* y);

/// y[i] = a * x[i]
void vec_scale(Isa isa, long n, double a, const double* x, double* y);

/// y[i] += x[i]
void vec_add(Isa isa, long n, const double* x, double* y);

/// y[i] = 0   (no FLOPs counted)
void vec_zero(long n, double* y);

/// y[i] = x[i] (no FLOPs counted)
void vec_copy(long n, const double* x, double* y);

/// Float overloads for the fp32 kernel path. FLOP reporting matches the
/// double overloads (classified at the double lane width — see gemm.h).
void vec_axpy(Isa isa, long n, float a, const float* x, float* y);
void vec_scale(Isa isa, long n, float a, const float* x, float* y);
void vec_add(Isa isa, long n, const float* x, float* y);
void vec_zero(long n, float* y);
void vec_copy(long n, const float* x, float* y);

/// Precision boundary conversions of the fp32 path: widen at kernel exit
/// (qavg/favg back to the engine's double buffers), narrow at kernel entry
/// (q into float scratch). Conversions are data movement, not FLOPs, and
/// are not counted — mirroring how the trace model treats copies.
void vec_widen(long n, const float* x, double* y);
void vec_narrow(long n, const double* x, float* y);

}  // namespace exastp
