// AVX-512 microkernel TU: compiled with -mavx512f -mavx512vl -mfma
// (Skylake-SP code path).
#include "exastp/gemm/gemm_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_GEMM_KERNEL(gemm_kernel_avx512)

}  // namespace exastp::detail
