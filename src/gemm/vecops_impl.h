// Shared element-wise loop bodies, instantiated once per ISA TU, same
// pattern as gemm_impl.h.
#pragma once

#define EXASTP_DEFINE_VECOPS_KERNELS(SUFFIX)                         \
  void vec_axpy_##SUFFIX(long n, double a, const double* x,         \
                         double* y) {                               \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] += a * x[i];                  \
  }                                                                 \
  void vec_scale_##SUFFIX(long n, double a, const double* x,        \
                          double* y) {                              \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] = a * x[i];                   \
  }                                                                 \
  void vec_add_##SUFFIX(long n, const double* x, double* y) {       \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] += x[i];                      \
  }

namespace exastp::detail {

void vec_axpy_baseline(long n, double a, const double* x, double* y);
void vec_scale_baseline(long n, double a, const double* x, double* y);
void vec_add_baseline(long n, const double* x, double* y);
void vec_axpy_avx2(long n, double a, const double* x, double* y);
void vec_scale_avx2(long n, double a, const double* x, double* y);
void vec_add_avx2(long n, const double* x, double* y);
void vec_axpy_avx512(long n, double a, const double* x, double* y);
void vec_scale_avx512(long n, double a, const double* x, double* y);
void vec_add_avx512(long n, const double* x, double* y);

}  // namespace exastp::detail
