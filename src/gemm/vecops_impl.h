// Shared element-wise loop bodies, instantiated once per ISA TU, same
// pattern as gemm_impl.h. Each macro expansion emits a double and a float
// (_f32) kernel; the float loops vectorize at twice the lane count under
// the TU's -m flags.
#pragma once

#define EXASTP_DEFINE_VECOPS_KERNELS(SUFFIX)                         \
  void vec_axpy_##SUFFIX(long n, double a, const double* x,         \
                         double* y) {                               \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] += a * x[i];                  \
  }                                                                 \
  void vec_scale_##SUFFIX(long n, double a, const double* x,        \
                          double* y) {                              \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] = a * x[i];                   \
  }                                                                 \
  void vec_add_##SUFFIX(long n, const double* x, double* y) {       \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] += x[i];                      \
  }                                                                 \
  void vec_axpy_##SUFFIX##_f32(long n, float a, const float* x,     \
                               float* y) {                          \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] += a * x[i];                  \
  }                                                                 \
  void vec_scale_##SUFFIX##_f32(long n, float a, const float* x,    \
                                float* y) {                         \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] = a * x[i];                   \
  }                                                                 \
  void vec_add_##SUFFIX##_f32(long n, const float* x, float* y) {   \
    _Pragma("omp simd")                                             \
    for (long i = 0; i < n; ++i) y[i] += x[i];                      \
  }

namespace exastp::detail {

void vec_axpy_baseline(long n, double a, const double* x, double* y);
void vec_scale_baseline(long n, double a, const double* x, double* y);
void vec_add_baseline(long n, const double* x, double* y);
void vec_axpy_avx2(long n, double a, const double* x, double* y);
void vec_scale_avx2(long n, double a, const double* x, double* y);
void vec_add_avx2(long n, const double* x, double* y);
void vec_axpy_avx512(long n, double a, const double* x, double* y);
void vec_scale_avx512(long n, double a, const double* x, double* y);
void vec_add_avx512(long n, const double* x, double* y);

void vec_axpy_baseline_f32(long n, float a, const float* x, float* y);
void vec_scale_baseline_f32(long n, float a, const float* x, float* y);
void vec_add_baseline_f32(long n, const float* x, float* y);
void vec_axpy_avx2_f32(long n, float a, const float* x, float* y);
void vec_scale_avx2_f32(long n, float a, const float* x, float* y);
void vec_add_avx2_f32(long n, const float* x, float* y);
void vec_axpy_avx512_f32(long n, float a, const float* x, float* y);
void vec_scale_avx512_f32(long n, float a, const float* x, float* y);
void vec_add_avx512_f32(long n, const float* x, float* y);

}  // namespace exastp::detail
