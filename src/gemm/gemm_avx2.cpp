// AVX2 microkernel TU: compiled with -mavx2 -mfma (Haswell code path of the
// paper's Fig. 4 comparison).
#include "exastp/gemm/gemm_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_GEMM_KERNEL(gemm_kernel_avx2)

}  // namespace exastp::detail
