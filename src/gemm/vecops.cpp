#include "exastp/gemm/vecops.h"

#include <cstring>

#include "exastp/common/check.h"
#include "exastp/gemm/gemm.h"
#include "exastp/gemm/vecops_impl.h"
#include "exastp/perf/flop_count.h"

namespace exastp {
namespace {

void count_vec_flops(Isa isa, long n, std::uint64_t flops_per_element) {
  count_packed_flops(isa, n, flops_per_element);
}

}  // namespace

void vec_axpy(Isa isa, long n, double a, const double* x, double* y) {
  EXASTP_CHECK(n >= 0);
  switch (isa) {
    case Isa::kScalar: detail::vec_axpy_baseline(n, a, x, y); break;
    case Isa::kAvx2: detail::vec_axpy_avx2(n, a, x, y); break;
    case Isa::kAvx512: detail::vec_axpy_avx512(n, a, x, y); break;
  }
  count_vec_flops(isa, n, 2);
}

void vec_scale(Isa isa, long n, double a, const double* x, double* y) {
  EXASTP_CHECK(n >= 0);
  switch (isa) {
    case Isa::kScalar: detail::vec_scale_baseline(n, a, x, y); break;
    case Isa::kAvx2: detail::vec_scale_avx2(n, a, x, y); break;
    case Isa::kAvx512: detail::vec_scale_avx512(n, a, x, y); break;
  }
  count_vec_flops(isa, n, 1);
}

void vec_add(Isa isa, long n, const double* x, double* y) {
  EXASTP_CHECK(n >= 0);
  switch (isa) {
    case Isa::kScalar: detail::vec_add_baseline(n, x, y); break;
    case Isa::kAvx2: detail::vec_add_avx2(n, x, y); break;
    case Isa::kAvx512: detail::vec_add_avx512(n, x, y); break;
  }
  count_vec_flops(isa, n, 1);
}

void vec_zero(long n, double* y) {
  std::memset(y, 0, static_cast<std::size_t>(n) * sizeof(double));
}

void vec_copy(long n, const double* x, double* y) {
  std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(double));
}

void vec_axpy(Isa isa, long n, float a, const float* x, float* y) {
  EXASTP_CHECK(n >= 0);
  switch (isa) {
    case Isa::kScalar: detail::vec_axpy_baseline_f32(n, a, x, y); break;
    case Isa::kAvx2: detail::vec_axpy_avx2_f32(n, a, x, y); break;
    case Isa::kAvx512: detail::vec_axpy_avx512_f32(n, a, x, y); break;
  }
  count_vec_flops(isa, n, 2);
}

void vec_scale(Isa isa, long n, float a, const float* x, float* y) {
  EXASTP_CHECK(n >= 0);
  switch (isa) {
    case Isa::kScalar: detail::vec_scale_baseline_f32(n, a, x, y); break;
    case Isa::kAvx2: detail::vec_scale_avx2_f32(n, a, x, y); break;
    case Isa::kAvx512: detail::vec_scale_avx512_f32(n, a, x, y); break;
  }
  count_vec_flops(isa, n, 1);
}

void vec_add(Isa isa, long n, const float* x, float* y) {
  EXASTP_CHECK(n >= 0);
  switch (isa) {
    case Isa::kScalar: detail::vec_add_baseline_f32(n, x, y); break;
    case Isa::kAvx2: detail::vec_add_avx2_f32(n, x, y); break;
    case Isa::kAvx512: detail::vec_add_avx512_f32(n, x, y); break;
  }
  count_vec_flops(isa, n, 1);
}

void vec_zero(long n, float* y) {
  std::memset(y, 0, static_cast<std::size_t>(n) * sizeof(float));
}

void vec_copy(long n, const float* x, float* y) {
  std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(float));
}

void vec_widen(long n, const float* x, double* y) {
#pragma omp simd
  for (long i = 0; i < n; ++i) y[i] = static_cast<double>(x[i]);
}

void vec_narrow(long n, const double* x, float* y) {
#pragma omp simd
  for (long i = 0; i < n; ++i) y[i] = static_cast<float>(x[i]);
}

}  // namespace exastp
