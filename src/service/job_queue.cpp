#include "exastp/service/job_queue.h"

#include <cctype>
#include <fstream>

#include "exastp/common/check.h"

namespace exastp {

std::vector<std::string> split_batch_line(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;  // comment runs to end of line
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::vector<std::string>> parse_batch_file(
    const std::string& path) {
  std::ifstream in(path);
  EXASTP_CHECK_MSG(in.good(), "cannot open batch file \"" + path + "\"");
  std::vector<std::vector<std::string>> jobs;
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> tokens = split_batch_line(line);
    if (!tokens.empty()) jobs.push_back(std::move(tokens));
  }
  return jobs;
}

std::string with_path_suffix(const std::string& path,
                             const std::string& suffix) {
  if (path.empty()) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace exastp
