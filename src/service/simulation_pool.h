// SimulationPool: the batched many-run engine of the ensemble service.
//
// The other scaling regime from the big sharded run: thousands of small
// simulations batched onto one machine behind an API. The pool takes a
// queue of job specs (a batch file of one-config-per-line key=value
// strings, or programmatic submit() calls), schedules up to `jobs`
// concurrent simulations onto worker threads, and streams one JobResult
// row per job through the pluggable galleries (result_gallery.h) — in
// ascending job-id order, so batch output is deterministic at any
// concurrency.
//
// Shared caches. All jobs share the process-wide basis-table cache
// (basis/basis_tables.h) and the kernel prototype cache
// (engine/kernel_cache.h, keyed by pde/variant/order/isa/family) — a batch
// of a thousand jobs over a handful of configurations builds each kernel
// configuration once. Completed results are memoized by the canonical
// config string (canonical_config_string): duplicate configs in a batch
// run once, the duplicates return the cached summary (marked from_cache;
// a duplicate scheduled while the original is still running waits for it
// instead of re-running). `threads=` is excluded from the key — results
// are bitwise-identical for every thread count.
//
// Failure isolation. A job that throws (parse error, blow-up, bad output
// path) is marked failed with the captured message; the batch continues.
// stop_on_failure flips that: queued jobs after a failure are reported as
// skipped (run_sweep's abort semantics).
//
// Thread budget. Each job honours its own threads= key. Jobs that leave
// it on auto get hardware_threads() / jobs instead of a full team each, so
// a jobs=N batch does not oversubscribe the machine N-fold. Results do not
// depend on the choice (bitwise thread-count invariance).
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exastp/service/job_queue.h"
#include "exastp/service/result_gallery.h"

namespace exastp {

struct PoolOptions {
  /// Concurrent simulations. 1 (the default) runs the queue inline on the
  /// caller, in submit order; N > 1 runs on N worker threads.
  int jobs = 1;
  /// Abort semantics: once a job fails, jobs that have not started yet are
  /// skipped (in-flight jobs finish). Off = full failure isolation.
  bool stop_on_failure = false;
  /// Result memoization by canonical config (off re-runs duplicates —
  /// bench mode).
  bool memoize = true;
  /// key=value pairs prepended to every job's args (batch-wide defaults,
  /// e.g. a common scenario or order; a job line repeating a base key is a
  /// duplicate-key error, by design).
  std::vector<std::string> base_args;
};

class SimulationPool {
 public:
  explicit SimulationPool(PoolOptions options = {});

  /// Queues one job; returns its id (= submit order). `label` defaults to
  /// the args joined with spaces; the output-path suffix defaults to
  /// "_j<id>" and keeps concurrent jobs' file outputs apart — pass an
  /// explicit suffix to override (run_sweep uses "_<value>").
  int submit(std::vector<std::string> args, std::string label = "",
             std::string suffix = "");

  /// Queues every non-comment line of a batch file; returns the number of
  /// jobs added. Lines are labelled with their own text.
  int submit_batch_file(const std::string& path);

  const std::vector<JobSpec>& jobs() const { return queue_; }

  /// Runs every queued job (at most options.jobs concurrently), streaming
  /// rows to `galleries` in job-id order as results become available, and
  /// returns all results sorted by id. Galleries get open()/finish()
  /// bracketing the rows. Callable once per submitted batch; jobs
  /// submitted after a run() are picked up by the next run().
  std::vector<JobResult> run(
      const std::vector<ResultGallery*>& galleries = {});

  /// Simulations actually constructed and run (memoization misses) since
  /// this pool was created — the memoization-verifying counter.
  int runs_executed() const { return runs_executed_.load(); }

 private:
  PoolOptions options_;
  std::vector<JobSpec> queue_;
  int next_unrun_ = 0;  ///< queue_ index the next run() starts from
  std::atomic<int> runs_executed_{0};
  /// Memoized results by canonical config string. Lives on the pool (not
  /// one run() call) so a long-lived service keeps benefiting from every
  /// batch it has completed.
  std::map<std::string, std::shared_future<JobResult>> memo_;
  std::mutex memo_mutex_;
};

}  // namespace exastp
