#include "exastp/service/result_gallery.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "exastp/common/check.h"

namespace exastp {
namespace {

/// CSV field quoting: wrap in quotes, double inner quotes. Labels and
/// error messages carry commas (receiver lists, exception text) — every
/// free-text field goes through here so rows stay machine-parseable.
std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_quote(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
  return os.str();
}

/// Numbers print round-trip exactly; NaN (no exact solution) prints as the
/// token "nan" in CSV and null in JSON.
std::string number(double v) {
  if (std::isnan(v)) return "nan";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string csv_row(const JobResult& r) {
  std::ostringstream os;
  os << r.id << "," << csv_quote(r.label) << "," << job_status_name(r.status)
     << "," << r.steps << "," << number(r.t) << "," << number(r.l2_error)
     << "," << number(r.seconds) << "," << r.flops << ","
     << (r.from_cache ? 1 : 0) << "," << csv_quote(r.error);
  return os.str();
}

std::string json_row(const JobResult& r) {
  std::ostringstream os;
  os << "{\"job\":" << r.id << ",\"label\":" << json_quote(r.label)
     << ",\"status\":\"" << job_status_name(r.status) << "\""
     << ",\"steps\":" << r.steps << ",\"t\":" << number(r.t)
     << ",\"l2_error\":"
     << (std::isnan(r.l2_error) ? "null" : number(r.l2_error))
     << ",\"seconds\":" << number(r.seconds) << ",\"flops\":" << r.flops
     << ",\"cached\":" << (r.from_cache ? "true" : "false")
     << ",\"summary\":" << json_quote(r.summary)
     << ",\"error\":" << json_quote(r.error) << "}";
  return os.str();
}

constexpr char kCsvHeader[] =
    "job,label,status,steps,t,l2_error,seconds,flops,cached,error";

/// Shared base for the two line-oriented galleries: writes to an owned
/// file when a path was given, to the fallback stream otherwise.
class StreamGallery : public ResultGallery {
 public:
  StreamGallery(std::string path, std::ostream* fallback)
      : path_(std::move(path)), fallback_(fallback) {}

  void open() override {
    if (path_.empty()) {
      EXASTP_CHECK_MSG(fallback_ != nullptr,
                       "gallery without a path needs a fallback stream");
      out_ = fallback_;
      return;
    }
    file_.open(path_, std::ios::trunc);
    EXASTP_CHECK_MSG(file_.good(), "cannot open gallery \"" + path_ + "\"");
    out_ = &file_;
  }

  void finish() override {
    out_->flush();
    if (file_.is_open()) file_.close();
  }

 protected:
  std::ostream& out() { return *out_; }

 private:
  std::string path_;
  std::ostream* fallback_;
  std::ofstream file_;
  std::ostream* out_ = nullptr;
};

class CsvGallery final : public StreamGallery {
 public:
  using StreamGallery::StreamGallery;
  void open() override {
    StreamGallery::open();
    out() << kCsvHeader << "\n" << std::flush;
  }
  void add(const JobResult& r) override {
    out() << csv_row(r) << "\n" << std::flush;
  }
};

class JsonlGallery final : public StreamGallery {
 public:
  using StreamGallery::StreamGallery;
  void add(const JobResult& r) override {
    out() << json_row(r) << "\n" << std::flush;
  }
};

// Binary record stream (native endianness). The "2" revision appended the
// uint64 flops field after seconds; readers reject the old magic rather
// than misparse it.
//   8 bytes  magic "EXSTPJB2"
//   records, until EOF:
//     int32  id, uint8 status, uint8 cached, int32 steps
//     double t, l2_error, seconds
//     uint64 flops
//     uint32 label bytes, label
//     uint32 error bytes, error
//     uint32 summary bytes, summary
constexpr char kBinMagic[8] = {'E', 'X', 'S', 'T', 'P', 'J', 'B', '2'};

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <class T>
bool get(std::istream& in, T* v) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(v), sizeof(*v)));
}

void put_string(std::ostream& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& in, std::string* s) {
  std::uint32_t n = 0;
  if (!get(in, &n)) return false;
  s->resize(n);
  return static_cast<bool>(in.read(s->data(), n));
}

class BinGallery final : public ResultGallery {
 public:
  explicit BinGallery(std::string path) : path_(std::move(path)) {
    EXASTP_CHECK_MSG(!path_.empty(), "gallery=bin needs a path (bin:PATH)");
  }

  void open() override {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    EXASTP_CHECK_MSG(out_.good(), "cannot open gallery \"" + path_ + "\"");
    out_.write(kBinMagic, sizeof(kBinMagic));
    out_.flush();
  }

  void add(const JobResult& r) override {
    put(out_, static_cast<std::int32_t>(r.id));
    put(out_, static_cast<std::uint8_t>(r.status));
    put(out_, static_cast<std::uint8_t>(r.from_cache ? 1 : 0));
    put(out_, static_cast<std::int32_t>(r.steps));
    put(out_, r.t);
    put(out_, r.l2_error);
    put(out_, r.seconds);
    put(out_, static_cast<std::uint64_t>(r.flops));
    put_string(out_, r.label);
    put_string(out_, r.error);
    put_string(out_, r.summary);
    out_.flush();
  }

  void finish() override { out_.close(); }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Directory tree: one pretty-printable JSON file per job plus a CSV index
/// — the layout downstream dashboards scrape per-job artifacts from.
class DirGallery final : public ResultGallery {
 public:
  explicit DirGallery(std::string path) : path_(std::move(path)) {
    EXASTP_CHECK_MSG(!path_.empty(), "gallery=dir needs a path (dir:PATH)");
  }

  void open() override {
    std::filesystem::create_directories(path_);
    index_.open(path_ + "/index.csv", std::ios::trunc);
    EXASTP_CHECK_MSG(index_.good(),
                     "cannot open gallery index in \"" + path_ + "\"");
    index_ << kCsvHeader << "\n" << std::flush;
  }

  void add(const JobResult& r) override {
    char name[32];
    std::snprintf(name, sizeof(name), "job_%04d.json", r.id);
    std::ofstream job(path_ + "/" + name, std::ios::trunc);
    EXASTP_CHECK_MSG(job.good(), "cannot write " + path_ + "/" + name);
    job << json_row(r) << "\n";
    index_ << csv_row(r) << "\n" << std::flush;
  }

  void finish() override { index_.close(); }

 private:
  std::string path_;
  std::ofstream index_;
};

template <class Gallery, bool kNeedsPath>
class TypedGalleryFactory final : public GalleryFactory {
 public:
  explicit TypedGalleryFactory(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  std::unique_ptr<ResultGallery> make(const std::string& path,
                                      std::ostream* fallback) const override {
    if constexpr (kNeedsPath) {
      (void)fallback;
      return std::make_unique<Gallery>(path);
    } else {
      return std::make_unique<Gallery>(path, fallback);
    }
  }

 private:
  std::string name_;
};

}  // namespace

std::string job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kSkipped: return "skipped";
  }
  EXASTP_FAIL("unknown job status");
}

GalleryRegistry& GalleryRegistry::instance() {
  static GalleryRegistry& registry = *[] {
    auto* r = new GalleryRegistry;
    r->add(std::make_shared<TypedGalleryFactory<CsvGallery, false>>("csv"));
    r->add(
        std::make_shared<TypedGalleryFactory<JsonlGallery, false>>("jsonl"));
    r->add(std::make_shared<TypedGalleryFactory<BinGallery, true>>("bin"));
    r->add(std::make_shared<TypedGalleryFactory<DirGallery, true>>("dir"));
    return r;
  }();
  return registry;
}

GallerySpec parse_gallery_spec(const std::string& value) {
  GallerySpec spec;
  const auto colon = value.find(':');
  spec.kind = value.substr(0, colon);
  if (colon != std::string::npos) spec.path = value.substr(colon + 1);
  EXASTP_CHECK_MSG(!spec.kind.empty(),
                   "expected gallery=KIND[:PATH], got gallery=" + value);
  GalleryRegistry::instance().find(spec.kind);  // throws with known names
  return spec;
}

std::unique_ptr<ResultGallery> make_gallery(const GallerySpec& spec,
                                            std::ostream* fallback) {
  return GalleryRegistry::instance().find(spec.kind)->make(spec.path,
                                                           fallback);
}

std::vector<JobResult> read_gallery_records(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXASTP_CHECK_MSG(in.good(), "cannot open gallery \"" + path + "\"");
  char magic[8];
  EXASTP_CHECK_MSG(in.read(magic, sizeof(magic)) &&
                       std::equal(magic, magic + 8, kBinMagic),
                   "\"" + path + "\" is not a bin gallery stream");
  std::vector<JobResult> results;
  while (true) {
    JobResult r;
    std::int32_t id, steps;
    std::uint8_t status, cached;
    if (!get(in, &id)) break;  // clean EOF between records
    std::uint64_t flops = 0;
    if (!get(in, &status) || !get(in, &cached) || !get(in, &steps) ||
        !get(in, &r.t) || !get(in, &r.l2_error) || !get(in, &r.seconds) ||
        !get(in, &flops) || !get_string(in, &r.label) ||
        !get_string(in, &r.error) || !get_string(in, &r.summary))
      break;  // trailing partial record (killed run) — ignore
    r.id = id;
    r.steps = steps;
    r.status = static_cast<JobStatus>(status);
    r.flops = flops;
    r.from_cache = cached != 0;
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace exastp
