// Pluggable result sinks for the ensemble service — the openbr "Gallery"
// idiom: one abstract interface, many string-keyed adaptors.
//
// Every completed pool job produces one JobResult row (id, status, steps,
// final time, L2 error, wall seconds, captured error text). Galleries
// receive the rows strictly in job-id order — deterministic regardless of
// how many jobs ran concurrently — and each adaptor streams them in its own
// format, flushed per row so a long batch can be tailed:
//
//   csv    one quoted CSV row per job (stdout when no path is given)
//   jsonl  one JSON object per line (stdout when no path is given)
//   bin    compact binary record stream (read_gallery_records round-trips)
//   dir    a directory tree: <path>/job_<NNNN>.json per job + an index.csv
//
// New formats register in the GalleryRegistry exactly like observers in
// the ObserverRegistry — no engine or pool changes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exastp/engine/named_registry.h"

namespace exastp {

enum class JobStatus {
  kDone,     ///< ran to t_end
  kFailed,   ///< threw; `error` carries the message, the batch continued
  kSkipped,  ///< never started (stop_on_failure aborted the queue first)
};

/// "done" / "failed" / "skipped".
std::string job_status_name(JobStatus status);

/// Summary row of one pool job.
struct JobResult {
  int id = -1;
  std::string label;
  JobStatus status = JobStatus::kFailed;
  std::string error;     ///< captured exception text; empty when done
  int steps = 0;         ///< time steps taken
  double t = 0.0;        ///< final simulation time
  /// NaN when the scenario has no exact solution (and for failed jobs).
  double l2_error = std::numeric_limits<double>::quiet_NaN();
  double seconds = 0.0;  ///< wall seconds of the run that produced this
  /// FLOPs the run executed, from its own telemetry registry — the
  /// per-job scope means concurrent jobs never pollute each other's count
  /// (0 for failed jobs; the original run's count for cache hits).
  std::uint64_t flops = 0;
  bool from_cache = false;  ///< memoization hit: reused an earlier job's run
  std::string summary;   ///< Simulation::summary() one-liner
};

class ResultGallery {
 public:
  virtual ~ResultGallery() = default;

  /// Called once before the first row (header, directory creation, ...).
  virtual void open() = 0;
  /// One result row; called in ascending job-id order, flushed per row.
  virtual void add(const JobResult& result) = 0;
  /// Called once after the last row.
  virtual void finish() = 0;
};

/// Builds one gallery kind. `path` may be empty for stream-capable kinds
/// (csv, jsonl), which then write to `fallback` (never null when the pool
/// calls it — the CLI passes stdout); kinds that need a real path (bin,
/// dir) throw on an empty one.
class GalleryFactory {
 public:
  virtual ~GalleryFactory() = default;

  virtual const std::string& name() const = 0;
  virtual std::unique_ptr<ResultGallery> make(const std::string& path,
                                              std::ostream* fallback)
      const = 0;
};

/// Name -> GalleryFactory map; same conventions as the other registries.
class GalleryRegistry final : public NamedRegistry<GalleryFactory> {
 public:
  GalleryRegistry() : NamedRegistry("gallery") {}
  /// The process-wide registry, populated with csv, jsonl, bin and dir.
  static GalleryRegistry& instance();
};

/// Parses a gallery= value: "kind" or "kind:path" (the first ':' splits, so
/// paths may contain further colons). Throws on an unknown kind.
struct GallerySpec {
  std::string kind = "csv";
  std::string path;  ///< empty = the fallback stream, for kinds that can
};
GallerySpec parse_gallery_spec(const std::string& value);

/// Looks up spec.kind in the registry and builds the gallery.
std::unique_ptr<ResultGallery> make_gallery(const GallerySpec& spec,
                                            std::ostream* fallback);

/// Reads a "bin" gallery stream back, in row order; throws on bad magic or
/// a truncated header. A trailing partial record is ignored (the stream is
/// valid after every append, like the receiver streams).
std::vector<JobResult> read_gallery_records(const std::string& path);

}  // namespace exastp
