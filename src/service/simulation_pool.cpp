#include "exastp/service/simulation_pool.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "exastp/common/check.h"
#include "exastp/common/parallel.h"
#include "exastp/engine/simulation.h"

namespace exastp {
namespace {

std::string join_args(const std::vector<std::string>& args) {
  std::string out;
  for (const std::string& arg : args)
    out += (out.empty() ? "" : " ") + arg;
  return out;
}

bool has_explicit_threads(const std::vector<std::string>& args) {
  for (const std::string& arg : args)
    if (arg.rfind("threads=", 0) == 0) return true;
  return false;
}

/// Executes one parsed config; never throws — failures become the result's
/// status. The suffix keeps this job's file outputs apart from its batch
/// siblings (mirroring what run_sweep has always done for swept values).
JobResult execute_job(SimulationConfig config, const JobSpec& spec) {
  JobResult r;
  r.id = spec.id;
  r.label = spec.label;
  try {
    config.output.csv = with_path_suffix(config.output.csv, spec.suffix);
    config.output.vtk = with_path_suffix(config.output.vtk, spec.suffix);
    config.output.series =
        with_path_suffix(config.output.series, spec.suffix);
    config.output.receivers_csv =
        with_path_suffix(config.output.receivers_csv, spec.suffix);
    config.output.receivers_bin =
        with_path_suffix(config.output.receivers_bin, spec.suffix);

    config.telemetry.trace = with_path_suffix(config.telemetry.trace,
                                              spec.suffix);
    config.telemetry.metrics = with_path_suffix(config.telemetry.metrics,
                                                spec.suffix);

    const auto start = std::chrono::steady_clock::now();
    Simulation sim = Simulation::from_config(std::move(config));
    r.summary = sim.summary();
    {
      // The job span lands in the job's own registry (run() installs it),
      // so a trace of a pool job shows one enclosing "job" span.
      TelemetryScope scope(&sim.telemetry());
      ScopedSpan span(SpanId::kJob, /*arg=*/spec.id);
      r.steps = sim.run();
    }
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    // Per-job FLOPs: the run-scoped counter, not the process-wide one, so
    // concurrent batch siblings never double-count (the satellite fix).
    r.flops = sim.telemetry().flops().total();
    r.t = sim.solver().time();
    r.l2_error = sim.has_exact_solution()
                     ? sim.l2_error()
                     : std::numeric_limits<double>::quiet_NaN();
    r.status = JobStatus::kDone;
  } catch (const std::exception& e) {
    r.status = JobStatus::kFailed;
    r.error = e.what();
  } catch (...) {
    r.status = JobStatus::kFailed;
    r.error = "unknown error";
  }
  return r;
}

}  // namespace

SimulationPool::SimulationPool(PoolOptions options)
    : options_(std::move(options)) {
  EXASTP_CHECK_MSG(options_.jobs >= 1, "pool needs jobs >= 1");
}

int SimulationPool::submit(std::vector<std::string> args, std::string label,
                           std::string suffix) {
  JobSpec spec;
  spec.id = static_cast<int>(queue_.size());
  spec.label = label.empty() ? join_args(args) : std::move(label);
  spec.suffix = suffix.empty() ? "_j" + std::to_string(spec.id)
                               : std::move(suffix);
  spec.args = std::move(args);
  queue_.push_back(std::move(spec));
  return queue_.back().id;
}

int SimulationPool::submit_batch_file(const std::string& path) {
  int added = 0;
  for (std::vector<std::string>& args : parse_batch_file(path)) {
    submit(std::move(args));
    ++added;
  }
  return added;
}

std::vector<JobResult> SimulationPool::run(
    const std::vector<ResultGallery*>& galleries) {
  const int begin = next_unrun_;
  const int n = static_cast<int>(queue_.size()) - begin;
  next_unrun_ = static_cast<int>(queue_.size());
  for (ResultGallery* g : galleries) g->open();

  std::vector<JobResult> results(std::max(n, 0));
  std::atomic<int> next{0};
  std::atomic<bool> stop{false};

  // Gallery rows stream strictly in job-id order: completed results park
  // in `results` until every lower id is done, then flush in one sweep.
  std::mutex emit_mutex;
  int emitted = 0;
  std::vector<char> ready(std::max(n, 0), 0);
  const auto emit_ready = [&] {  // callers hold emit_mutex
    while (emitted < n && ready[emitted]) {
      for (ResultGallery* g : galleries) g->add(results[emitted]);
      ++emitted;
    }
  };

  const auto process = [&](int i) -> JobResult {
    const JobSpec& spec = queue_[begin + i];
    if (stop.load()) {
      JobResult r;
      r.id = spec.id;
      r.label = spec.label;
      r.status = JobStatus::kSkipped;
      r.error = "skipped after an earlier failure";
      return r;
    }
    SimulationConfig config;
    try {
      std::vector<std::string> args = options_.base_args;
      args.insert(args.end(), spec.args.begin(), spec.args.end());
      config = parse_simulation_args(args);
      // The pool is a single-process service; a rank-per-shard launch
      // cannot host many independent simulations.
      EXASTP_CHECK_MSG(config.backend != "mpi",
                       "batch jobs are single-process — backend=mpi is not "
                       "supported (run one configuration per mpirun launch)");
      // Jobs that leave threads= on auto split the machine instead of
      // oversubscribing it jobs-fold; an explicit threads= is honoured.
      // Either way results are bitwise-identical (README "Threading").
      if (!has_explicit_threads(args) && options_.jobs > 1)
        config.threads = std::max(1, hardware_threads() / options_.jobs);
    } catch (const std::exception& e) {
      JobResult r;
      r.id = spec.id;
      r.label = spec.label;
      r.status = JobStatus::kFailed;
      r.error = e.what();
      return r;
    }

    if (!options_.memoize) {
      runs_executed_.fetch_add(1);
      return execute_job(std::move(config), spec);
    }

    // Memoization: the first job to claim a canonical config owns the run
    // and fulfils the future; duplicates wait on it and tag their copy
    // from_cache. Failed runs memoize too — a deterministic failure need
    // not be re-proven per duplicate. The key is the canonical config
    // BEFORE the per-job suffix: two jobs that differ only in their
    // assigned suffix are duplicates (the cached summary is returned; only
    // the executing job's artifacts exist).
    const std::string key = canonical_config_string(config);
    std::promise<JobResult> promise;
    std::shared_future<JobResult> future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(memo_mutex_);
      auto it = memo_.find(key);
      if (it == memo_.end()) {
        future = promise.get_future().share();
        memo_.emplace(key, future);
        owner = true;
      } else {
        future = it->second;
      }
    }
    if (owner) {
      runs_executed_.fetch_add(1);
      JobResult r = execute_job(std::move(config), spec);
      promise.set_value(r);
      return r;
    }
    JobResult r = future.get();  // waits when the original is in flight
    r.id = spec.id;
    r.label = spec.label;
    r.from_cache = true;
    return r;
  };

  const auto worker = [&] {
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= n) break;
      JobResult result = process(i);
      if (result.status == JobStatus::kFailed && options_.stop_on_failure)
        stop.store(true);
      std::lock_guard<std::mutex> lock(emit_mutex);
      results[i] = std::move(result);
      ready[i] = 1;
      emit_ready();
    }
  };

  const int workers = std::min(options_.jobs, std::max(n, 1));
  if (workers <= 1) {
    worker();  // inline: deterministic submit-order execution
  } else {
    std::vector<std::thread> team;
    team.reserve(workers);
    for (int w = 0; w < workers; ++w) team.emplace_back(worker);
    for (std::thread& t : team) t.join();
  }

  for (ResultGallery* g : galleries) g->finish();
  return results;
}

}  // namespace exastp
