// Job specs for the ensemble service: one queued simulation per spec.
//
// A job is a key=value argument list — exactly what exastp_run takes —
// plus bookkeeping the pool assigns: a stable integer id, a display label
// and the output-path suffix that keeps concurrent jobs from writing over
// each other. Batch files (one config per line) parse into specs here:
//
//   # comment lines and blank lines are skipped
//   scenario=planewave order=3 cells=3x3x3 t_end=0.05
//   scenario=gaussian  order=4 t_end=0.1
//
// Tokens are whitespace-separated key=value pairs; there is no quoting —
// values with semicolons (receiver lists) are fine, values with spaces are
// not representable (none of the config keys need them).
#pragma once

#include <string>
#include <vector>

namespace exastp {

struct JobSpec {
  int id = -1;           ///< position in the pool's queue (submit order)
  std::string label;     ///< display label: the batch line or sweep value
  std::vector<std::string> args;  ///< key=value config arguments
  /// Appended to the filename part of every output path the job writes
  /// (csv/vtk/series/receiver streams), so jobs in one batch never collide.
  /// The pool defaults it to "_j<id>"; run_sweep passes "_<value>" to keep
  /// the artifact names sweeps have always produced.
  std::string suffix;
};

/// Splits one batch-file line into whitespace-separated tokens. Returns an
/// empty vector for blank and '#'-comment lines. Tokens are validated as
/// key=value shaped by parse_simulation_args later, not here.
std::vector<std::string> split_batch_line(const std::string& line);

/// Parses a batch file (one job per non-comment line) into arg lists, in
/// file order. Throws when the file cannot be opened.
std::vector<std::vector<std::string>> parse_batch_file(
    const std::string& path);

/// "out.csv" + "_j3" -> "out_j3.csv"; extensionless paths (VTK series
/// basenames) get the suffix appended. Only the filename part is
/// inspected. Empty paths stay empty.
std::string with_path_suffix(const std::string& path,
                             const std::string& suffix);

}  // namespace exastp
