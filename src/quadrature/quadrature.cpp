#include "exastp/quadrature/quadrature.h"

#include <cmath>
#include <numbers>

#include "exastp/common/check.h"

namespace exastp {
namespace {

// Newton solve for the k-th root of P_n on [-1,1], seeded with the Chebyshev
// approximation; converges in < 10 iterations to machine precision.
double legendre_root(int n, int k) {
  double x = -std::cos(std::numbers::pi * (k + 0.75) / (n + 0.5));
  for (int it = 0; it < 100; ++it) {
    double p, dp;
    legendre_eval(n, x, &p, &dp);
    const double dx = p / dp;
    x -= dx;
    if (std::abs(dx) < 1e-15) break;
  }
  return x;
}

QuadratureRule gauss_legendre(int n) {
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  for (int k = 0; k < n; ++k) {
    const double x = legendre_root(n, k);
    double p, dp;
    legendre_eval(n, x, &p, &dp);
    // Weight on [-1,1] is 2 / ((1-x^2) P_n'(x)^2); halved by the map to [0,1].
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.nodes[k] = 0.5 * (x + 1.0);
    rule.weights[k] = 0.5 * w;
  }
  return rule;
}

// Interior Lobatto nodes are the roots of P_{n-1}'; found by bisection+Newton
// on the derivative, bracketed by the Gauss-Legendre roots of P_{n-1}.
QuadratureRule gauss_lobatto(int n) {
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const int m = n - 1;  // polynomial degree involved
  rule.nodes.front() = 0.0;
  rule.nodes.back() = 1.0;

  for (int k = 1; k < n - 1; ++k) {
    // Seed between adjacent roots of P_m (derivative roots interlace).
    double lo = legendre_root(m, k - 1);
    double hi = legendre_root(m, k);
    double x = 0.5 * (lo + hi);
    for (int it = 0; it < 100; ++it) {
      // Newton on f(x) = P_m'(x). f'(x) from the Legendre ODE:
      // (1-x^2) P_m'' = 2x P_m' - m(m+1) P_m.
      double p, dp;
      legendre_eval(m, x, &p, &dp);
      const double ddp =
          (2.0 * x * dp - m * (m + 1) * p) / (1.0 - x * x);
      const double dx = dp / ddp;
      x -= dx;
      if (x <= lo || x >= hi) x = 0.5 * (lo + hi);  // keep the bracket
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[k] = 0.5 * (x + 1.0);
  }

  for (int k = 0; k < n; ++k) {
    const double x = 2.0 * rule.nodes[k] - 1.0;
    double p, dp;
    legendre_eval(m, x, &p, &dp);
    // Lobatto weight on [-1,1]: 2 / (n(n-1) P_{n-1}(x)^2); halved for [0,1].
    rule.weights[k] = 1.0 / (n * (n - 1) * p * p);
  }
  return rule;
}

}  // namespace

void legendre_eval(int n, double x, double* value, double* derivative) {
  double p0 = 1.0, p1 = x;
  if (n == 0) {
    *value = 1.0;
    *derivative = 0.0;
    return;
  }
  for (int j = 2; j <= n; ++j) {
    const double p2 = ((2.0 * j - 1.0) * x * p1 - (j - 1.0) * p0) / j;
    p0 = p1;
    p1 = p2;
  }
  *value = p1;
  // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1); endpoints use the closed form
  // P_n'(±1) = (±1)^{n-1} n(n+1)/2.
  if (std::abs(x) == 1.0) {
    *derivative = (x > 0 ? 1.0 : ((n % 2 == 1) ? 1.0 : -1.0)) * 0.5 * n * (n + 1);
  } else {
    *derivative = n * (x * p1 - p0) / (x * x - 1.0);
  }
}

QuadratureRule make_quadrature(int n, NodeFamily family) {
  switch (family) {
    case NodeFamily::kGaussLegendre:
      EXASTP_CHECK_MSG(n >= 1, "Gauss-Legendre needs n >= 1");
      return gauss_legendre(n);
    case NodeFamily::kGaussLobatto:
      EXASTP_CHECK_MSG(n >= 2, "Gauss-Lobatto needs n >= 2");
      return gauss_lobatto(n);
  }
  EXASTP_CHECK_MSG(false, "unknown node family");
  return {};
}

}  // namespace exastp
