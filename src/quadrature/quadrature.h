// Gauss-Legendre and Gauss-Lobatto quadrature on the reference interval
// [0, 1].
//
// ExaHyPE's nodal DG basis collocates Lagrange polynomials at these points
// (paper Sec. II-A); all operator tables in src/basis are derived from them.
#pragma once

#include <vector>

namespace exastp {

enum class NodeFamily {
  kGaussLegendre,  ///< interior points, default in ExaHyPE
  kGaussLobatto,   ///< includes interval endpoints (needs n >= 2)
};

struct QuadratureRule {
  std::vector<double> nodes;    ///< in (0,1) resp. [0,1], ascending
  std::vector<double> weights;  ///< positive, sums to 1
};

/// Returns the n-point rule of the requested family on [0,1].
///
/// Gauss-Legendre integrates polynomials up to degree 2n-1 exactly,
/// Gauss-Lobatto up to degree 2n-3. Throws std::invalid_argument for n < 1
/// (Legendre) or n < 2 (Lobatto).
QuadratureRule make_quadrature(int n, NodeFamily family);

/// Legendre polynomial P_n and derivative P_n' at x in [-1,1], evaluated by
/// the three-term recurrence. Exposed for tests and for the Lobatto solver.
void legendre_eval(int n, double x, double* value, double* derivative);

}  // namespace exastp
