// LoG STP kernel — Loop-over-GEMM variant (paper Sec. III).
//
// Same algorithm and space-time storage as the generic kernel (the whole
// predictor p[o] and its fluctuations dF[o][d] stay live — the footprint
// that overflows L2 from order ~6, Sec. IV-A), but:
//  * padded, aligned AoS data layout (quantity dimension padded to the SIMD
//    width),
//  * all tensor contractions lowered to batched mini-GEMM calls on tensor
//    slices (derivative_ops.h),
//  * element-wise Taylor sweeps through the ISA-dispatched vecops,
//  * PDE user functions inlined via the CRTP template parameter, but still
//    evaluated pointwise per quadrature node (scalar — the ~10% scalar tail
//    of Fig. 9 that only the AoSoA variant removes).
//
// The Isa parameter selects the microkernel family and the padding width,
// which is how one binary hosts the Fig. 4 comparison of the AVX-512 and
// AVX2 ("Haswell") code paths.
#pragma once

#include <cstring>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

template <class Pde>
class LogStp {
 public:
  static constexpr int kQuants = Pde::kQuants;

  LogStp(Pde pde, int order, Isa isa,
         NodeFamily family = NodeFamily::kGaussLegendre)
      : pde_(std::move(pde)),
        basis_(basis_tables(order, family)),
        isa_(isa),
        n_(order),
        aos_(order, kQuants, isa),
        cell_(aos_.size()) {
    EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
    p_.assign((static_cast<std::size_t>(n_) + 1) * cell_, 0.0);
    flux_.assign(static_cast<std::size_t>(n_) * 3 * cell_, 0.0);
    df_.assign(static_cast<std::size_t>(n_) * 3 * cell_, 0.0);
    gradq_.assign(static_cast<std::size_t>(n_) * 3 * cell_, 0.0);
  }

  const AosLayout& layout() const { return aos_; }

  std::size_t workspace_bytes() const {
    return (p_.size() + flux_.size() + df_.size() + gradq_.size()) *
           sizeof(double);
  }

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out) {
    const int n = n_;
    const int mp = aos_.m_pad;
    const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
    const double* diff = basis_.diff.data();
    FlopCounter& fc = FlopCounter::instance();

    vec_copy(static_cast<long>(cell_), q, p_.data());

    for (int o = 0; o < n; ++o) {
      const double* po = p_.data() + p_index(o);

      // Pointwise user functions (scalar, inlined).
      for (int d = 0; d < 3; ++d) {
        double* fo = flux_.data() + od_index(o, d);
        for (std::size_t k = 0; k < nodes; ++k)
          pde_.flux(po + k * mp, d, fo + k * mp);
      }
      fc.add(WidthClass::kScalar, 3 * nodes * Pde::kFluxFlops);

      // Loop-over-GEMM contractions.
      for (int d = 0; d < 3; ++d) {
        aos_derivative(isa_, aos_, diff, inv_dx[d], d,
                       flux_.data() + od_index(o, d),
                       df_.data() + od_index(o, d), /*accumulate=*/false);
        aos_derivative(isa_, aos_, diff, inv_dx[d], d, po,
                       gradq_.data() + od_index(o, d), /*accumulate=*/false);
      }

      // Pointwise NCP (scalar, inlined).
      for (int d = 0; d < 3; ++d) {
        double* dfo = df_.data() + od_index(o, d);
        const double* go = gradq_.data() + od_index(o, d);
        for (std::size_t k = 0; k < nodes; ++k) {
          pde_.ncp(po + k * mp, go + k * mp, d, ncp_tmp_);
          for (int s = 0; s < kQuants; ++s) dfo[k * mp + s] += ncp_tmp_[s];
        }
      }
      fc.add(WidthClass::kScalar, 3 * nodes * (Pde::kNcpFlops + kQuants));

      // p[o+1] = sum_d dF[o][d] (+ source derivative).
      double* pn = p_.data() + p_index(o + 1);
      vec_zero(static_cast<long>(cell_), pn);
      for (int d = 0; d < 3; ++d)
        vec_add(isa_, static_cast<long>(cell_),
                df_.data() + od_index(o, d), pn);
      if (source != nullptr) apply_source(pn, source, o, fc);
      refresh_aos_param_rows(aos_, Pde::kVars, q, pn);
    }

    // Taylor accumulation of the time-averaged outputs.
    const auto coeff = time_average_coefficients(dt, n);
    vec_zero(static_cast<long>(cell_), out.qavg);
    for (int d = 0; d < 3; ++d) vec_zero(static_cast<long>(cell_), out.favg[d]);
    for (int o = 0; o < n; ++o) {
      vec_axpy(isa_, static_cast<long>(cell_), coeff[o],
               p_.data() + p_index(o), out.qavg);
      for (int d = 0; d < 3; ++d)
        vec_axpy(isa_, static_cast<long>(cell_), coeff[o],
                 df_.data() + od_index(o, d), out.favg[d]);
    }
    refresh_aos_param_rows(aos_, Pde::kVars, q, out.qavg);
  }

 private:
  std::size_t p_index(int o) const {
    return static_cast<std::size_t>(o) * cell_;
  }
  std::size_t od_index(int o, int d) const {
    return (static_cast<std::size_t>(o) * 3 + d) * cell_;
  }

  void apply_source(double* pn, const SourceTerm* source, int o,
                    FlopCounter& fc) {
    const int n = n_;
    const int mp = aos_.m_pad;
    const double sdo = source->dt_derivatives[o];
    const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
    for (std::size_t k = 0; k < nodes; ++k)
      pn[k * mp + source->quantity] += source->psi[k] * sdo;
    fc.add(WidthClass::kScalar, 2 * nodes);
  }

  Pde pde_;
  const BasisTables& basis_;
  Isa isa_;
  int n_;
  AosLayout aos_;
  std::size_t cell_;  // padded cell tensor size

  AlignedVector p_, flux_, df_, gradq_;
  double ncp_tmp_[kQuants] = {};
};

}  // namespace exastp
