#include "exastp/kernels/fusion_autotune.h"

#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "exastp/common/aligned.h"
#include "exastp/common/check.h"

namespace exastp {
namespace {

// Parses the tokens produced by FusionTuneTable::key/serialize.
struct ParsedLine {
  std::string pde;
  int order = 0;
  Isa isa = Isa::kScalar;
  Precision precision = Precision::kF64;
  int planes = 0;
};

ParsedLine parse_line(const std::string& line) {
  std::istringstream is(line);
  ParsedLine p;
  std::string isa_tok, prec_tok;
  EXASTP_CHECK_MSG(
      static_cast<bool>(is >> p.pde >> p.order >> isa_tok >> prec_tok >>
                        p.planes),
      "malformed autotune line: " + line);
  p.isa = parse_isa(isa_tok);
  p.precision = parse_precision(prec_tok);
  EXASTP_CHECK_MSG(p.order >= 2 && p.planes >= 1 && p.planes <= p.order,
                   "autotune line out of range: " + line);
  return p;
}

}  // namespace

FusionTuneTable& FusionTuneTable::instance() {
  static FusionTuneTable table;
  return table;
}

std::string FusionTuneTable::key(const std::string& pde, int order, Isa isa,
                                 Precision precision) {
  return pde + " " + std::to_string(order) + " " + isa_name(isa) + " " +
         precision_name(precision);
}

int FusionTuneTable::block_planes(const std::string& pde, int order,
                                  int quants, Isa isa,
                                  Precision precision) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key(pde, order, isa, precision));
    if (it != table_.end()) {
      return it->second < order ? it->second : order;
    }
  }
  return heuristic_block_planes(order, quants, isa, precision);
}

bool FusionTuneTable::has(const std::string& pde, int order, Isa isa,
                          Precision precision) const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.count(key(pde, order, isa, precision)) != 0;
}

void FusionTuneTable::set(const std::string& pde, int order, Isa isa,
                          Precision precision, int planes) {
  EXASTP_CHECK_MSG(planes >= 1 && planes <= order,
                   "block planes must be in [1, order]");
  std::lock_guard<std::mutex> lock(mu_);
  table_[key(pde, order, isa, precision)] = planes;
}

void FusionTuneTable::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  table_.clear();
}

int FusionTuneTable::heuristic_block_planes(int order, int quants, Isa isa,
                                            Precision precision) {
  // A fused block touches ~4 slabs of the cell tensors (src, flux, dst,
  // gradQ); keep that working set within half a typical 512 KiB L2.
  const std::size_t value_bytes =
      precision == Precision::kF32 ? sizeof(float) : sizeof(double);
  const std::size_t plane_bytes = static_cast<std::size_t>(order) * order *
                                  pad_to(quants, vector_width(isa)) *
                                  value_bytes;
  constexpr std::size_t kBudget = 256 * 1024;
  std::size_t planes = kBudget / (4 * plane_bytes + 1);
  if (planes < 1) planes = 1;
  if (planes > static_cast<std::size_t>(order))
    planes = static_cast<std::size_t>(order);
  return static_cast<int>(planes);
}

int FusionTuneTable::tune(const std::string& pde, int order, int quants,
                          Isa isa, Precision precision,
                          const std::function<StpKernel()>& build, int reps) {
  EXASTP_CHECK(reps >= 1);
  // Candidate plane counts: powers of two up to the order, plus the order
  // itself (no blocking) and the heuristic pick.
  std::vector<int> candidates;
  for (int b = 1; b < order; b *= 2) candidates.push_back(b);
  candidates.push_back(order);
  const int h = heuristic_block_planes(order, quants, isa, precision);
  bool have_h = false;
  for (int c : candidates) have_h = have_h || c == h;
  if (!have_h) candidates.push_back(h);

  double best_time = std::numeric_limits<double>::max();
  int best = h;
  for (int planes : candidates) {
    set(pde, order, isa, precision, planes);
    StpKernel kernel = build();
    const AosLayout& aos = kernel.layout();
    // Constant unit state: every quantity (material parameters included)
    // is 1.0, a valid state for all registered PDEs; padding stays zero.
    AlignedVector q(aos.size(), 0.0), qavg(aos.size(), 0.0);
    AlignedVector favg0(aos.size(), 0.0), favg1(aos.size(), 0.0),
        favg2(aos.size(), 0.0);
    const std::size_t nodes =
        static_cast<std::size_t>(aos.n) * aos.n * aos.n;
    for (std::size_t k = 0; k < nodes; ++k)
      for (int s = 0; s < aos.m; ++s) q[k * aos.m_pad + s] = 1.0;
    const std::array<double, 3> inv_dx{1.0, 1.0, 1.0};
    StpOutputs out{qavg.data(), {favg0.data(), favg1.data(), favg2.data()}};
    kernel.run(q.data(), 1e-3, inv_dx, nullptr, out);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
      kernel.run(q.data(), 1e-3, inv_dx, nullptr, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    if (dt < best_time) {
      best_time = dt;
      best = planes;
    }
  }
  set(pde, order, isa, precision, best);
  return best;
}

std::string FusionTuneTable::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "# exastp fused-block autotune table\n"
     << "# pde order isa precision block_planes\n";
  for (const auto& [k, planes] : table_) os << k << " " << planes << "\n";
  return os.str();
}

void FusionTuneTable::merge_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const ParsedLine p = parse_line(line);
    set(p.pde, p.order, p.isa, p.precision, p.planes);
  }
}

bool FusionTuneTable::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  merge_text(buf.str());
  return true;
}

void FusionTuneTable::save_file(const std::string& path) const {
  std::ofstream out(path);
  EXASTP_CHECK_MSG(static_cast<bool>(out),
                   "cannot write autotune table: " + path);
  out << serialize();
  EXASTP_CHECK_MSG(static_cast<bool>(out),
                   "failed writing autotune table: " + path);
}

}  // namespace exastp
