// Discrete derivative operators as Loop-over-GEMM (paper Sec. III-B).
//
// Every tensor contraction of the STP reduces to batched mini-GEMM calls on
// matrix slices of the cell tensor (Fig. 3): the slice stride becomes the
// leading dimension. Three batching shapes appear:
//
//   AoS,   x:  per (k3,k2) slice   out' = D * Q'      (n x n)(n x mPad)
//   AoS,   y:  per k3 slab, fuse (k1,s):  D * (n x n*mPad)
//   AoS,   z:  one GEMM, fuse (k2,k1,s):  D * (n x n^2*mPad)
//   AoSoA, x:  per (k3,k2) line, transposed product  Q' * D^T  (Sec. V-B
//              case 1: C^T = B^T A^T), vectorizing over the padded x-line
//   AoSoA, y:  per k3 slab, fuse (s,k1):  D * (n x m*nPad)   (Fig. 7)
//   AoSoA, z:  one GEMM, fuse (k2,s,k1):  D * (n x n*m*nPad)
//
// The 1/h mesh scaling rides along as the GEMM alpha so no separate scaling
// pass over the output is needed.
//
// Two orthogonal extensions serve the fused SplitCK kernels:
//
//  * Zero-block masking (`cover`): the PDE declares the past-the-end index
//    of its possibly-nonzero flux rows per direction (pde_base.h traits).
//    Quantity rows >= cover of the flux tensor are exactly zero, so their
//    derivative columns are skipped. Skipping is bitwise-exact for
//    accumulate mode (adding signed zeros to a zeroed target yields +0
//    either way) but changes reported FLOPs — the trace-model twins mirror
//    the masking rules below EXACTLY (same conditions, same GEMM shapes).
//  * Slab ranges (`lo`, `hi`): the fused kernels interleave pointwise flux
//    evaluation with the derivative GEMMs block by block so the flux slab
//    is still cache-resident when the GEMM consumes it. dirs 0 and 1
//    contract within a k3 plane, so the range selects k3 planes; dir 2
//    contracts OVER k3, so the range selects k2 pencils (all k3 present).
//    Slab boundaries split GEMM columns at multiples of the padded leading
//    dimension (a multiple of the vector width), so blocking never changes
//    FLOP counts or their width classification — the twins need only
//    mirror masking, not block sizes.
//
// Masking rules (definitive; trace_model.cpp copies these literally). AoS
// masked widths are rounded UP to the ISA vector width — the masked
// columns stay full SIMD lanes (no scalar remainder loop) and the extra
// columns within the last vector multiply zeros, which accumulate-mode
// absorbs bitwise-exactly:
//
//   ncols = min(pad_to(cover, vector_width(isa)), mPad)
//   AoS  dir 0: skip when cover == 0; per-slice GEMM of N = ncols.
//   AoS  dir 1: skip when cover == 0; when ncols < mPad: per (k3,k1) GEMM
//               of N = ncols; else the full fused call per k3.
//   AoS  dir 2: skip when cover == 0; when ncols < mPad: per (k2,k1) GEMM
//               of N = ncols; else one call over the slab's fused columns.
//
// AoSoA columns fuse (s, k1) with s outer, so a row mask keeps whole
// padded x-lines — already vector-width multiples, no rounding needed:
//
//   AoSoA dir 0: nrows = min(cover, m); skip when 0 (M shrinks, N stays
//               the padded line — classification unchanged, total shrinks).
//   AoSoA dir 1: when cover < m: N = cover*nPad (contiguous prefix).
//   AoSoA dir 2: when cover < m: per-k2 GEMM of N = cover*nPad; else one
//               call over the slab's fused columns.
#pragma once

#include "exastp/common/aligned.h"
#include "exastp/common/check.h"
#include "exastp/common/simd.h"
#include "exastp/gemm/gemm.h"
#include "exastp/tensor/layout.h"

namespace exastp {

/// Masked AoS column count: cover rounded up to full vectors, capped at
/// the padded row width. Shared with the trace-model twins.
inline int aos_masked_cols(const AosLayout& aos, Isa isa, int cover) {
  const int padded = pad_to(cover, vector_width(isa));
  return padded < aos.m_pad ? padded : aos.m_pad;
}

/// dst (+)= inv_h * d(src)/dxi_dir restricted to a slab (see header
/// comment) with zero-block masking for quantity rows >= cover. `diff` is
/// the n x n derivative operator, row-major, lda = n.
template <class Real>
inline void aos_derivative_slab(Isa isa, const AosLayout& aos,
                                const Real* diff, Real inv_h, int dir,
                                int lo, int hi, int cover, const Real* src,
                                Real* dst, bool accumulate) {
  const int n = aos.n;
  const int ld = aos.m_pad;
  if (cover <= 0) return;
  const int ncols = aos_masked_cols(aos, isa, cover);
  const bool masked = ncols < ld;
  const auto run = [&](int M, int N, int K, const Real* b, Real* c, int ldx) {
    if (accumulate)
      gemm_acc_scaled(isa, inv_h, M, N, K, diff, n, b, ldx, c, ldx);
    else
      gemm_set_scaled(isa, inv_h, M, N, K, diff, n, b, ldx, c, ldx);
  };
  switch (dir) {
    case 0:
      for (int k3 = lo; k3 < hi; ++k3)
        for (int k2 = 0; k2 < n; ++k2) {
          const std::size_t off = aos.node_offset(k3, k2, 0);
          run(n, ncols, n, src + off, dst + off, ld);
        }
      break;
    case 1:
      if (masked) {
        for (int k3 = lo; k3 < hi; ++k3)
          for (int k1 = 0; k1 < n; ++k1) {
            const std::size_t off = aos.node_offset(k3, 0, k1);
            run(n, ncols, n, src + off, dst + off, n * ld);
          }
      } else {
        for (int k3 = lo; k3 < hi; ++k3) {
          const std::size_t off = aos.node_offset(k3, 0, 0);
          run(n, n * ld, n, src + off, dst + off, n * ld);
        }
      }
      break;
    case 2:
      if (masked) {
        for (int k2 = lo; k2 < hi; ++k2)
          for (int k1 = 0; k1 < n; ++k1) {
            const std::size_t off = aos.node_offset(0, k2, k1);
            run(n, ncols, n, src + off, dst + off, n * n * ld);
          }
      } else {
        const std::size_t off = aos.node_offset(0, lo, 0);
        run(n, (hi - lo) * n * ld, n, src + off, dst + off, n * n * ld);
      }
      break;
    default:
      EXASTP_CHECK_MSG(false, "dir must be 0, 1 or 2");
  }
}

/// dst (+)= inv_h * d(src)/dxi_dir for AoS tensors, full cell, no masking.
/// `diff` is the n x n derivative operator, row-major, lda = n.
template <class Real>
inline void aos_derivative(Isa isa, const AosLayout& aos, const Real* diff,
                           Real inv_h, int dir, const Real* src, Real* dst,
                           bool accumulate) {
  aos_derivative_slab(isa, aos, diff, inv_h, dir, 0, aos.n, aos.m_pad, src,
                      dst, accumulate);
}

/// AoSoA counterpart of aos_derivative_slab. `diff` as above;
/// `diff_t_padded` is D^T with rows padded to aosoa.n_pad (basis_tables'
/// padded_diff_t), required for dir == 0.
template <class Real>
inline void aosoa_derivative_slab(Isa isa, const AosoaLayout& aosoa,
                                  const Real* diff, const Real* diff_t_padded,
                                  Real inv_h, int dir, int lo, int hi,
                                  int cover, const Real* src, Real* dst,
                                  bool accumulate) {
  const int n = aosoa.n;
  const int m = aosoa.m;
  const int np = aosoa.n_pad;
  if (cover <= 0) return;
  const auto run = [&](int M, int N, int K, const Real* a, int lda,
                       const Real* b, int ldb, Real* c, int ldc) {
    if (accumulate)
      gemm_acc_scaled(isa, inv_h, M, N, K, a, lda, b, ldb, c, ldc);
    else
      gemm_set_scaled(isa, inv_h, M, N, K, a, lda, b, ldb, c, ldc);
  };
  const bool masked = cover < m;
  switch (dir) {
    case 0: {
      // out[s][i] = sum_l src[s][l] * Dt[l][i]; unit stride over the padded
      // x-line in both B and C. Masking shrinks the row count.
      const int nrows = masked ? cover : m;
      for (int k3 = lo; k3 < hi; ++k3)
        for (int k2 = 0; k2 < n; ++k2) {
          const std::size_t off = aosoa.line_offset(k3, k2);
          run(nrows, np, n, src + off, np, diff_t_padded, np, dst + off, np);
        }
      break;
    }
    case 1:
      // Fuse (s, i): out[j][si] = sum_l D[j][l] src[l][si] (Fig. 7). The s
      // index is outermost in the fused columns, so masking keeps the
      // contiguous prefix of cover*np columns.
      for (int k3 = lo; k3 < hi; ++k3) {
        const std::size_t off = aosoa.idx(k3, 0, 0, 0);
        run(n, (masked ? cover : m) * np, n, diff, n, src + off, m * np,
            dst + off, m * np);
      }
      break;
    case 2:
      // Fuse (k2, s, i). Unmasked: one call over the slab's k2 range.
      // Masked: k2 is outermost in the fused columns, so each k2 keeps its
      // own cover*np prefix — one call per k2.
      if (masked) {
        for (int k2 = lo; k2 < hi; ++k2) {
          const std::size_t off = aosoa.idx(0, k2, 0, 0);
          run(n, cover * np, n, diff, n, src + off, n * m * np, dst + off,
              n * m * np);
        }
      } else {
        const std::size_t off = aosoa.idx(0, lo, 0, 0);
        run(n, (hi - lo) * m * np, n, diff, n, src + off, n * m * np,
            dst + off, n * m * np);
      }
      break;
    default:
      EXASTP_CHECK_MSG(false, "dir must be 0, 1 or 2");
  }
}

/// dst (+)= inv_h * d(src)/dxi_dir for AoSoA tensors, full cell, no
/// masking.
template <class Real>
inline void aosoa_derivative(Isa isa, const AosoaLayout& aosoa,
                             const Real* diff, const Real* diff_t_padded,
                             Real inv_h, int dir, const Real* src, Real* dst,
                             bool accumulate) {
  aosoa_derivative_slab(isa, aosoa, diff, diff_t_padded, inv_h, dir, 0,
                        aosoa.n, aosoa.m, src, dst, accumulate);
}

}  // namespace exastp
