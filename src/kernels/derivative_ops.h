// Discrete derivative operators as Loop-over-GEMM (paper Sec. III-B).
//
// Every tensor contraction of the STP reduces to batched mini-GEMM calls on
// matrix slices of the cell tensor (Fig. 3): the slice stride becomes the
// leading dimension. Three batching shapes appear:
//
//   AoS,   x:  per (k3,k2) slice   out' = D * Q'      (n x n)(n x mPad)
//   AoS,   y:  per k3 slab, fuse (k1,s):  D * (n x n*mPad)
//   AoS,   z:  one GEMM, fuse (k2,k1,s):  D * (n x n^2*mPad)
//   AoSoA, x:  per (k3,k2) line, transposed product  Q' * D^T  (Sec. V-B
//              case 1: C^T = B^T A^T), vectorizing over the padded x-line
//   AoSoA, y:  per k3 slab, fuse (s,k1):  D * (n x m*nPad)   (Fig. 7)
//   AoSoA, z:  one GEMM, fuse (k2,s,k1):  D * (n x n*m*nPad)
//
// The 1/h mesh scaling rides along as the GEMM alpha so no separate scaling
// pass over the output is needed.
#pragma once

#include "exastp/common/check.h"
#include "exastp/gemm/gemm.h"
#include "exastp/tensor/layout.h"

namespace exastp {

/// dst (+)= inv_h * d(src)/dxi_dir for AoS tensors. `diff` is the n x n
/// derivative operator, row-major, lda = n.
inline void aos_derivative(Isa isa, const AosLayout& aos, const double* diff,
                           double inv_h, int dir, const double* src,
                           double* dst, bool accumulate) {
  const int n = aos.n;
  const int ld = aos.m_pad;
  auto run = accumulate ? gemm_acc_scaled : gemm_set_scaled;
  switch (dir) {
    case 0:
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2) {
          const std::size_t off = aos.node_offset(k3, k2, 0);
          run(isa, inv_h, n, ld, n, diff, n, src + off, ld, dst + off, ld);
        }
      break;
    case 1:
      for (int k3 = 0; k3 < n; ++k3) {
        const std::size_t off = aos.node_offset(k3, 0, 0);
        run(isa, inv_h, n, n * ld, n, diff, n, src + off, n * ld, dst + off,
            n * ld);
      }
      break;
    case 2:
      run(isa, inv_h, n, n * n * ld, n, diff, n, src, n * n * ld, dst,
          n * n * ld);
      break;
    default:
      EXASTP_CHECK_MSG(false, "dir must be 0, 1 or 2");
  }
}

/// dst (+)= inv_h * d(src)/dxi_dir for AoSoA tensors. `diff` as above;
/// `diff_t_padded` is D^T with rows padded to aosoa.n_pad (basis_tables'
/// padded_diff_t), required for dir == 0.
inline void aosoa_derivative(Isa isa, const AosoaLayout& aosoa,
                             const double* diff, const double* diff_t_padded,
                             double inv_h, int dir, const double* src,
                             double* dst, bool accumulate) {
  const int n = aosoa.n;
  const int m = aosoa.m;
  const int np = aosoa.n_pad;
  auto run = accumulate ? gemm_acc_scaled : gemm_set_scaled;
  switch (dir) {
    case 0:
      // out[s][i] = sum_l src[s][l] * Dt[l][i]; unit stride over the padded
      // x-line in both B and C.
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2) {
          const std::size_t off = aosoa.line_offset(k3, k2);
          run(isa, inv_h, m, np, n, src + off, np, diff_t_padded, np,
              dst + off, np);
        }
      break;
    case 1:
      // Fuse (s, i): out[j][si] = sum_l D[j][l] src[l][si] (Fig. 7).
      for (int k3 = 0; k3 < n; ++k3) {
        const std::size_t off = aosoa.idx(k3, 0, 0, 0);
        run(isa, inv_h, n, m * np, n, diff, n, src + off, m * np, dst + off,
            m * np);
      }
      break;
    case 2:
      // Fuse (k2, s, i): one big GEMM over the whole tensor.
      run(isa, inv_h, n, n * m * np, n, diff, n, src, n * m * np, dst,
          n * m * np);
      break;
    default:
      EXASTP_CHECK_MSG(false, "dir must be 0, 1 or 2");
  }
}

}  // namespace exastp
