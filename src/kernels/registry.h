// Kernel registry: the code-generation stand-in.
//
// The paper's Toolkit/Kernel Generator emits one tailored kernel per
// (application, architecture, variant) before compilation; here the same
// role is played by C++ templates instantiated per PDE type, with the order
// and ISA as runtime configuration. make_stp_kernel is the single entry
// point the engine and the benchmarks use to obtain a configured kernel.
#pragma once

#include <memory>
#include <string>

#include "exastp/common/check.h"
#include "exastp/kernels/aosoa_stp.h"
#include "exastp/kernels/generic_stp.h"
#include "exastp/kernels/log_stp.h"
#include "exastp/kernels/soa_uf_stp.h"
#include "exastp/kernels/splitck_stp.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/pde/pde_base.h"

namespace exastp {

/// Parses "generic" / "log" / "splitck" / "aosoa_splitck" (alias "aosoa") /
/// "soa_uf_splitck" (alias "soa_uf"); throws on unknown names. The inverse
/// mapping for reporting is variant_name() (stp_common.h).
StpVariant parse_variant(const std::string& name);

/// All variants make_stp_kernel dispatches, in the order the paper
/// introduces them — including the rejected SoA-UF transpose ablation.
inline constexpr StpVariant kAllVariants[] = {
    StpVariant::kGeneric, StpVariant::kLog, StpVariant::kSplitCk,
    StpVariant::kAosoaSplitCk, StpVariant::kSoaUfSplitCk};

namespace detail {

/// fp32 instantiations of the two SplitCK-family kernels. Only these two
/// variants carry an fp32 path: they are the memory-bound production
/// kernels where halved DOF bytes pay off; the generic/LoG/SoA-UF variants
/// exist as measured ablations of the paper's fp64 progression and stay
/// double-only.
template <class Pde>
StpKernel make_f32_kernel(Pde pde, StpVariant variant, int order, Isa isa,
                          NodeFamily family) {
  switch (variant) {
    case StpVariant::kSplitCk: {
      auto impl = std::make_shared<SplitCkStpT<Pde, float>>(std::move(pde),
                                                            order, isa,
                                                            family);
      return StpKernel(variant, impl->layout(), impl->workspace_bytes(),
                       [impl](const double* q, double dt,
                              const std::array<double, 3>& inv_dx,
                              const SourceTerm* source,
                              const StpOutputs& out) {
                         impl->compute(q, dt, inv_dx, source, out);
                       },
                       Precision::kF32);
    }
    case StpVariant::kAosoaSplitCk: {
      auto impl = std::make_shared<AosoaStpT<Pde, float>>(std::move(pde),
                                                          order, isa, family);
      return StpKernel(variant, impl->layout(), impl->workspace_bytes(),
                       [impl](const double* q, double dt,
                              const std::array<double, 3>& inv_dx,
                              const SourceTerm* source,
                              const StpOutputs& out) {
                         impl->compute(q, dt, inv_dx, source, out);
                       },
                       Precision::kF32);
    }
    default:
      EXASTP_FAIL("precision=fp32 supports variants splitck and "
                  "aosoa_splitck; variant " +
                  variant_name(variant) + " is fp64-only");
  }
}

/// Builds the kernel without a fork factory; make_stp_kernel adds it.
template <class Pde>
StpKernel make_stp_kernel_impl(Pde pde, StpVariant variant, int order,
                               Isa isa, NodeFamily family,
                               Precision precision) {
  if (precision == Precision::kF32)
    return make_f32_kernel(std::move(pde), variant, order, isa, family);
  switch (variant) {
    case StpVariant::kGeneric: {
      // The generic kernel is runtime-dimensioned and calls the PDE through
      // the virtual interface, like ExaHyPE's default kernels. It always
      // uses the unpadded scalar layout regardless of `isa`.
      auto adapter = std::make_shared<PdeAdapter<Pde>>(std::move(pde));
      return make_generic_stp(adapter, order, family);
    }
    case StpVariant::kLog: {
      auto impl =
          std::make_shared<LogStp<Pde>>(std::move(pde), order, isa, family);
      return StpKernel(variant, impl->layout(), impl->workspace_bytes(),
                       [impl](const double* q, double dt,
                              const std::array<double, 3>& inv_dx,
                              const SourceTerm* source,
                              const StpOutputs& out) {
                         impl->compute(q, dt, inv_dx, source, out);
                       });
    }
    case StpVariant::kSplitCk: {
      auto impl = std::make_shared<SplitCkStp<Pde>>(std::move(pde), order,
                                                    isa, family);
      return StpKernel(variant, impl->layout(), impl->workspace_bytes(),
                       [impl](const double* q, double dt,
                              const std::array<double, 3>& inv_dx,
                              const SourceTerm* source,
                              const StpOutputs& out) {
                         impl->compute(q, dt, inv_dx, source, out);
                       });
    }
    case StpVariant::kAosoaSplitCk: {
      auto impl =
          std::make_shared<AosoaStp<Pde>>(std::move(pde), order, isa, family);
      return StpKernel(variant, impl->layout(), impl->workspace_bytes(),
                       [impl](const double* q, double dt,
                              const std::array<double, 3>& inv_dx,
                              const SourceTerm* source,
                              const StpOutputs& out) {
                         impl->compute(q, dt, inv_dx, source, out);
                       });
    }
    case StpVariant::kSoaUfSplitCk: {
      auto impl =
          std::make_shared<SoaUfStp<Pde>>(std::move(pde), order, isa, family);
      return StpKernel(variant, impl->layout(), impl->workspace_bytes(),
                       [impl](const double* q, double dt,
                              const std::array<double, 3>& inv_dx,
                              const SourceTerm* source,
                              const StpOutputs& out) {
                         impl->compute(q, dt, inv_dx, source, out);
                       });
    }
  }
  EXASTP_FAIL("unknown STP variant");
}

}  // namespace detail

template <class Pde>
StpKernel make_stp_kernel(Pde pde, StpVariant variant, int order, Isa isa,
                          NodeFamily family = NodeFamily::kGaussLegendre,
                          Precision precision = Precision::kF64) {
  StpKernel kernel = detail::make_stp_kernel_impl(pde, variant, order, isa,
                                                  family, precision);
  // The fork factory re-runs this very function, so clones can fork again
  // (each carries its own workspace; the Pde value is copied per clone).
  kernel.set_fork(
      [pde = std::move(pde), variant, order, isa, family, precision] {
        return make_stp_kernel(pde, variant, order, isa, family, precision);
      });
  return kernel;
}

}  // namespace exastp
