#include "exastp/kernels/registry.h"

#include "exastp/common/check.h"

namespace exastp {

StpKernel StpKernel::fork() const {
  EXASTP_CHECK_MSG(fork_ != nullptr,
                   "kernel has no fork factory (hand-built StpKernel?); "
                   "construct it through make_stp_kernel to run it "
                   "multi-threaded");
  return fork_();
}

StpVariant parse_variant(const std::string& name) {
  if (name == "generic") return StpVariant::kGeneric;
  if (name == "log") return StpVariant::kLog;
  if (name == "splitck") return StpVariant::kSplitCk;
  if (name == "aosoa_splitck" || name == "aosoa")
    return StpVariant::kAosoaSplitCk;
  if (name == "soa_uf_splitck" || name == "soa_uf")
    return StpVariant::kSoaUfSplitCk;
  EXASTP_FAIL("unknown STP variant name: " + name);
}

}  // namespace exastp
