#include "exastp/kernels/registry.h"

#include "exastp/common/check.h"

namespace exastp {

StpVariant parse_variant(const std::string& name) {
  if (name == "generic") return StpVariant::kGeneric;
  if (name == "log") return StpVariant::kLog;
  if (name == "splitck") return StpVariant::kSplitCk;
  if (name == "aosoa_splitck" || name == "aosoa")
    return StpVariant::kAosoaSplitCk;
  if (name == "soa_uf_splitck") return StpVariant::kSoaUfSplitCk;
  EXASTP_CHECK_MSG(false, "unknown STP variant name: " + name);
  return StpVariant::kGeneric;
}

}  // namespace exastp
