#include "exastp/kernels/registry.h"

#include "exastp/common/check.h"

namespace exastp {

StpKernel StpKernel::fork() const {
  EXASTP_CHECK_MSG(fork_ != nullptr,
                   "kernel has no fork factory (hand-built StpKernel?); "
                   "construct it through make_stp_kernel to run it "
                   "multi-threaded");
  return fork_();
}

std::string precision_name(Precision p) {
  return p == Precision::kF32 ? "fp32" : "fp64";
}

Precision parse_precision(const std::string& name) {
  if (name == "fp64" || name == "double") return Precision::kF64;
  if (name == "fp32" || name == "float" || name == "single")
    return Precision::kF32;
  EXASTP_FAIL("unknown precision name: " + name +
              " (expected fp64 or fp32)");
}

StpVariant parse_variant(const std::string& name) {
  if (name == "generic") return StpVariant::kGeneric;
  if (name == "log") return StpVariant::kLog;
  if (name == "splitck") return StpVariant::kSplitCk;
  if (name == "aosoa_splitck" || name == "aosoa")
    return StpVariant::kAosoaSplitCk;
  if (name == "soa_uf_splitck" || name == "soa_uf")
    return StpVariant::kSoaUfSplitCk;
  EXASTP_FAIL("unknown STP variant name: " + name);
}

}  // namespace exastp
