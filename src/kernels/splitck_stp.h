// SplitCK STP kernel — dimension-split Cauchy-Kowalewsky scheme
// (paper Sec. IV, Fig. 5 pseudocode with the typos fixed per DESIGN.md).
//
// The reformulation that removes the L2-cache bottleneck: instead of keeping
// the entire space-time predictor alive, only four cell-sized tensors exist
// (p, ptemp, flux/scratch, gradQ) — O(N^d m) instead of O(N^{d+1} m d). The
// time integration happens on the fly (qavg accumulates each Taylor term as
// soon as it is produced), every dimension reuses the same scratch tensors,
// and the time-averaged fluctuations favg[d] are recomputed at the end from
// the time-averaged state (legal because the scheme is linear and the
// parameter rows of the averaged state are exact).
//
// Costs one extra flux+derivative sweep after the time loop (the paper's
// "almost one iteration"), which vanishes relative to the N-order loop at
// high order.
#pragma once

#include <cstring>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

template <class Pde>
class SplitCkStp {
 public:
  static constexpr int kQuants = Pde::kQuants;

  SplitCkStp(Pde pde, int order, Isa isa,
             NodeFamily family = NodeFamily::kGaussLegendre)
      : pde_(std::move(pde)),
        basis_(basis_tables(order, family)),
        isa_(isa),
        n_(order),
        aos_(order, kQuants, isa),
        cell_(aos_.size()) {
    EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
    p_.assign(cell_, 0.0);
    ptemp_.assign(cell_, 0.0);
    flux_.assign(cell_, 0.0);
    gradq_.assign(cell_, 0.0);
  }

  const AosLayout& layout() const { return aos_; }

  std::size_t workspace_bytes() const {
    return (p_.size() + ptemp_.size() + flux_.size() + gradq_.size()) *
           sizeof(double);
  }

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out) {
    const int n = n_;
    const auto coeff = time_average_coefficients(dt, n);
    FlopCounter& fc = FlopCounter::instance();

    // qavg starts with the o = 0 term: coeff[0] * q = q.
    vec_copy(static_cast<long>(cell_), q, p_.data());
    vec_scale(isa_, static_cast<long>(cell_), coeff[0], q, out.qavg);

    // Time loop: each iteration turns p = d^o q/dt^o into d^{o+1} q/dt^{o+1}
    // and folds it into qavg immediately.
    for (int o = 0; o + 1 < n; ++o) {
      vec_zero(static_cast<long>(cell_), ptemp_.data());
      for (int d = 0; d < 3; ++d) {
        apply_volume_dimension(d, inv_dx[d], p_.data(), ptemp_.data(), fc);
      }
      if (source != nullptr) apply_source(ptemp_.data(), source, o, fc);
      vec_axpy(isa_, static_cast<long>(cell_), coeff[o + 1], ptemp_.data(),
               out.qavg);
      p_.swap(ptemp_);
      // The new derivative tensor has zero parameter rows; user functions
      // in the next iteration need the real parameters.
      refresh_aos_param_rows(aos_, Pde::kVars, q, p_.data());
    }

    // Restore the constant parameter rows of the averaged state, then
    // recompute favg[d] from it (exploiting linearity):
    // favg[d] = D_d F_d(qavg) + B_d(qavg) D_d qavg.
    refresh_aos_param_rows(aos_, Pde::kVars, q, out.qavg);
    for (int d = 0; d < 3; ++d) {
      vec_zero(static_cast<long>(cell_), out.favg[d]);
      apply_volume_dimension(d, inv_dx[d], out.qavg, out.favg[d], fc);
    }
  }

 private:
  /// dst += inv_h * D_d F_d(src) + B_d(src, inv_h * D_d src).
  void apply_volume_dimension(int d, double inv_h, const double* src,
                              double* dst, FlopCounter& fc) {
    const int mp = aos_.m_pad;
    const std::size_t nodes = static_cast<std::size_t>(n_) * n_ * n_;
    const double* diff = basis_.diff.data();
    // flux = F_d(src) — pointwise user function, scalar.
    for (std::size_t k = 0; k < nodes; ++k)
      pde_.flux(src + k * mp, d, flux_.data() + k * mp);
    fc.add(WidthClass::kScalar, nodes * Pde::kFluxFlops);
    // dst += inv_h * D_d flux.
    aos_derivative(isa_, aos_, diff, inv_h, d, flux_.data(), dst,
                   /*accumulate=*/true);
    // gradQ = inv_h * D_d src; dst += B_d(src) gradQ (pointwise, scalar).
    aos_derivative(isa_, aos_, diff, inv_h, d, src, gradq_.data(),
                   /*accumulate=*/false);
    for (std::size_t k = 0; k < nodes; ++k) {
      pde_.ncp(src + k * mp, gradq_.data() + k * mp, d, ncp_tmp_);
      for (int s = 0; s < kQuants; ++s) dst[k * mp + s] += ncp_tmp_[s];
    }
    fc.add(WidthClass::kScalar, nodes * (Pde::kNcpFlops + kQuants));
  }

  void apply_source(double* dst, const SourceTerm* source, int o,
                    FlopCounter& fc) {
    const int mp = aos_.m_pad;
    const double sdo = source->dt_derivatives[o];
    const std::size_t nodes = static_cast<std::size_t>(n_) * n_ * n_;
    for (std::size_t k = 0; k < nodes; ++k)
      dst[k * mp + source->quantity] += source->psi[k] * sdo;
    fc.add(WidthClass::kScalar, 2 * nodes);
  }

  Pde pde_;
  const BasisTables& basis_;
  Isa isa_;
  int n_;
  AosLayout aos_;
  std::size_t cell_;

  AlignedVector p_, ptemp_, flux_, gradq_;
  double ncp_tmp_[kQuants] = {};
};

}  // namespace exastp
