// SplitCK STP kernel — dimension-split Cauchy-Kowalewsky scheme
// (paper Sec. IV, Fig. 5 pseudocode with the typos fixed per DESIGN.md).
//
// The reformulation that removes the L2-cache bottleneck: instead of keeping
// the entire space-time predictor alive, only four cell-sized tensors exist
// (p, ptemp, flux/scratch, gradQ) — O(N^d m) instead of O(N^{d+1} m d). The
// time integration happens on the fly (qavg accumulates each Taylor term as
// soon as it is produced), every dimension reuses the same scratch tensors,
// and the time-averaged fluctuations favg[d] are recomputed at the end from
// the time-averaged state (legal because the scheme is linear and the
// parameter rows of the averaged state are exact).
//
// Costs one extra flux+derivative sweep after the time loop (the paper's
// "almost one iteration"), which vanishes relative to the N-order loop at
// high order.
//
// Three extensions over the paper's Fig. 5 rendition:
//  * Fused cache blocking: each dimension sweep runs slab by slab (k3
//    planes for x/y, k2 pencils for z) — pointwise flux, its derivative
//    GEMM, and the NCP stage of one slab complete before the next starts,
//    so the flux block is consumed while cache-resident. The slab size
//    comes from FusionTuneTable (autotunable; bitwise- and FLOP-neutral).
//  * Zero-block skipping: flux derivative GEMMs mask quantity rows past
//    the PDE-declared pde_flux_rows_end bound, and PDEs with kNcpIsZero
//    skip the gradQ + NCP stage entirely. Both are bitwise-exact; the
//    trace-model twins mirror the same rules so FLOP ledgers still match.
//  * Precision templating: Real=float stores every internal tensor in
//    fp32 (half the DOF bytes — the memory-bound win) and converts exactly
//    once at the kernel boundary; the PDE user functions are templated on
//    the scalar type, so the hot sweeps run conversion-free in both
//    precisions. The engine-side buffers and all solver reductions stay
//    fp64.
#pragma once

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/kernels/fusion_autotune.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/pde/pde_base.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

template <class Pde, class Real = double>
class SplitCkStpT {
 public:
  static constexpr int kQuants = Pde::kQuants;
  static constexpr bool kF32 = !std::is_same_v<Real, double>;

  SplitCkStpT(Pde pde, int order, Isa isa,
              NodeFamily family = NodeFamily::kGaussLegendre)
      : pde_(std::move(pde)),
        basis_(basis_tables(order, family)),
        isa_(isa),
        n_(order),
        aos_(order, kQuants, isa),
        cell_(aos_.size()),
        block_(FusionTuneTable::instance().block_planes(
            Pde::kName, order, kQuants, isa,
            kF32 ? Precision::kF32 : Precision::kF64)) {
    EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
    p_.assign(cell_, Real(0));
    ptemp_.assign(cell_, Real(0));
    flux_.assign(cell_, Real(0));
    gradq_.assign(cell_, Real(0));
    if constexpr (kF32) {
      qr_.assign(cell_, Real(0));
      qavg_r_.assign(cell_, Real(0));
      for (auto& f : favg_r_) f.assign(cell_, Real(0));
      diff_r_.resize(static_cast<std::size_t>(n_) * n_);
      vec_narrow(static_cast<long>(diff_r_.size()), basis_.diff.data(),
                 diff_r_.data());
    }
  }

  const AosLayout& layout() const { return aos_; }
  int fused_block_planes() const { return block_; }

  std::size_t workspace_bytes() const {
    std::size_t bytes = (p_.size() + ptemp_.size() + flux_.size() +
                         gradq_.size()) * sizeof(Real);
    if constexpr (kF32) {
      bytes += (qr_.size() + qavg_r_.size() + 3 * favg_r_[0].size()) *
               sizeof(Real);
    }
    return bytes;
  }

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out) {
    if constexpr (kF32) {
      // fp32 boundary: narrow the state once, run the whole scheme on
      // float tensors, widen the averaged outputs once.
      vec_narrow(static_cast<long>(cell_), q, qr_.data());
      compute_impl(qr_.data(), dt, inv_dx, source, qavg_r_.data(),
                   {favg_r_[0].data(), favg_r_[1].data(), favg_r_[2].data()});
      vec_widen(static_cast<long>(cell_), qavg_r_.data(), out.qavg);
      for (int d = 0; d < 3; ++d)
        vec_widen(static_cast<long>(cell_), favg_r_[d].data(), out.favg[d]);
    } else {
      compute_impl(q, dt, inv_dx, source, out.qavg, out.favg);
    }
  }

 private:
  void compute_impl(const Real* q, double dt,
                    const std::array<double, 3>& inv_dx,
                    const SourceTerm* source, Real* qavg,
                    const std::array<Real*, 3>& favg) {
    const int n = n_;
    const auto coeff = time_average_coefficients(dt, n);
    FlopCounter& fc = FlopCounter::instance();

    // qavg starts with the o = 0 term: coeff[0] * q = q.
    vec_copy(static_cast<long>(cell_), q, p_.data());
    vec_scale(isa_, static_cast<long>(cell_), Real(coeff[0]), q, qavg);

    // Time loop: each iteration turns p = d^o q/dt^o into d^{o+1} q/dt^{o+1}
    // and folds it into qavg immediately.
    for (int o = 0; o + 1 < n; ++o) {
      vec_zero(static_cast<long>(cell_), ptemp_.data());
      for (int d = 0; d < 3; ++d) {
        apply_volume_dimension(d, Real(inv_dx[d]), p_.data(), ptemp_.data(),
                               fc);
      }
      if (source != nullptr) apply_source(ptemp_.data(), source, o, fc);
      vec_axpy(isa_, static_cast<long>(cell_), Real(coeff[o + 1]),
               ptemp_.data(), qavg);
      p_.swap(ptemp_);
      // The new derivative tensor has zero parameter rows; user functions
      // in the next iteration need the real parameters.
      refresh_aos_param_rows(aos_, Pde::kVars, q, p_.data());
    }

    // Restore the constant parameter rows of the averaged state, then
    // recompute favg[d] from it (exploiting linearity):
    // favg[d] = D_d F_d(qavg) + B_d(qavg) D_d qavg.
    refresh_aos_param_rows(aos_, Pde::kVars, q, qavg);
    for (int d = 0; d < 3; ++d) {
      vec_zero(static_cast<long>(cell_), favg[d]);
      apply_volume_dimension(d, Real(inv_dx[d]), qavg, favg[d], fc);
    }
  }

  const Real* diff_ptr() const {
    if constexpr (kF32) {
      return diff_r_.data();
    } else {
      return basis_.diff.data();
    }
  }

  /// First linear node index of slab plane `j` for sweep direction d: k3
  /// planes are contiguous; a k2 pencil repeats once per k3.
  /// Iterates `fn(node)` over the slab's nodes.
  template <class Fn>
  void for_slab_nodes(int d, int lo, int hi, Fn&& fn) const {
    const std::size_t nn = static_cast<std::size_t>(n_) * n_;
    if (d < 2) {
      for (std::size_t k = lo * nn; k < hi * nn; ++k) fn(k);
    } else {
      for (int k3 = 0; k3 < n_; ++k3)
        for (std::size_t k = k3 * nn + static_cast<std::size_t>(lo) * n_;
             k < k3 * nn + static_cast<std::size_t>(hi) * n_; ++k)
          fn(k);
    }
  }

  // The PDE pointwise functions are templated on the scalar type, so both
  // precisions call them directly on the working tensors — the fp32 path
  // performs zero conversions inside the hot sweeps.
  void eval_flux_node(int d, const Real* src, std::size_t k) {
    const int mp = aos_.m_pad;
    pde_.flux(src + k * mp, d, flux_.data() + k * mp);
  }

  void eval_ncp_node(int d, const Real* src, Real* dst, std::size_t k) {
    const int mp = aos_.m_pad;
    pde_.ncp(src + k * mp, gradq_.data() + k * mp, d, ncp_tmp_);
    for (int s = 0; s < kQuants; ++s) dst[k * mp + s] += ncp_tmp_[s];
  }

  /// dst += inv_h * D_d F_d(src) + B_d(src, inv_h * D_d src), fused slab
  /// by slab so the flux block is still cache-resident at its GEMM.
  void apply_volume_dimension(int d, Real inv_h, const Real* src, Real* dst,
                              FlopCounter& fc) {
    const Real* diff = diff_ptr();
    const int cover = pde_flux_rows_end<Pde>(d);
    constexpr bool kNcpZero = pde_ncp_is_zero<Pde>();
    const std::size_t nn = static_cast<std::size_t>(n_) * n_;
    for (int lo = 0; lo < n_; lo += block_) {
      const int hi = std::min(n_, lo + block_);
      const std::size_t slab_nodes = static_cast<std::size_t>(hi - lo) * nn;
      if (cover > 0) {
        // flux = F_d(src) — pointwise user function, scalar.
        for_slab_nodes(d, lo, hi,
                       [&](std::size_t k) { eval_flux_node(d, src, k); });
        fc.add(WidthClass::kScalar, slab_nodes * Pde::kFluxFlops);
        // dst += inv_h * D_d flux, masked past the PDE's flux rows.
        aos_derivative_slab(isa_, aos_, diff, inv_h, d, lo, hi, cover,
                            flux_.data(), dst, /*accumulate=*/true);
      }
      if constexpr (!kNcpZero) {
        // gradQ = inv_h * D_d src; dst += B_d(src) gradQ (pointwise).
        aos_derivative_slab(isa_, aos_, diff, inv_h, d, lo, hi, aos_.m_pad,
                            src, gradq_.data(), /*accumulate=*/false);
        for_slab_nodes(d, lo, hi,
                       [&](std::size_t k) { eval_ncp_node(d, src, dst, k); });
        fc.add(WidthClass::kScalar,
               slab_nodes * (Pde::kNcpFlops + kQuants));
      }
    }
  }

  void apply_source(Real* dst, const SourceTerm* source, int o,
                    FlopCounter& fc) {
    const int mp = aos_.m_pad;
    const double sdo = source->dt_derivatives[o];
    const std::size_t nodes = static_cast<std::size_t>(n_) * n_ * n_;
    for (std::size_t k = 0; k < nodes; ++k)
      dst[k * mp + source->quantity] +=
          static_cast<Real>(source->psi[k] * sdo);
    fc.add(WidthClass::kScalar, 2 * nodes);
  }

  Pde pde_;
  const BasisTables& basis_;
  Isa isa_;
  int n_;
  AosLayout aos_;
  std::size_t cell_;
  int block_;

  AlignedVectorT<Real> p_, ptemp_, flux_, gradq_;
  // fp32-only staging: narrowed state, widened-on-exit outputs, and the
  // float copy of the derivative operator.
  AlignedVectorT<Real> qr_, qavg_r_;
  std::array<AlignedVectorT<Real>, 3> favg_r_;
  AlignedVectorT<Real> diff_r_;
  Real ncp_tmp_[kQuants] = {};
};

/// The paper's fp64 SplitCK kernel (the default precision).
template <class Pde>
using SplitCkStp = SplitCkStpT<Pde>;

}  // namespace exastp
