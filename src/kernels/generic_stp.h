// Generic STP kernel — the paper's scalar reference implementation
// (Sec. II-B, Fig. 1 pseudocode, with the p-recursion corrected as noted in
// DESIGN.md).
//
// Faithful to ExaHyPE's generic kernels, this variant is dimensioned at
// runtime (order and quantity count are plain ints), calls the PDE terms
// through the virtual PdeRuntime interface at every quadrature node, and
// stores the complete space-time predictor: p[o], flux[o][d], dF[o][d] and
// gradQ[o][d] for every Taylor order o — the O(N^{d+1} m d) footprint whose
// L2 overflow Sec. IV-A analyses. Contractions are naive per-node dot
// products along the derivative direction (strided, not vectorizable);
// only the trailing Taylor accumulation sweeps run over contiguous memory
// where the compiler's baseline auto-vectorizer can pack them.
#pragma once

#include <memory>

#include "exastp/basis/basis_tables.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/pde/pde_base.h"

namespace exastp {

class GenericStp {
 public:
  /// The kernel keeps a reference to `pde`; the caller owns it.
  GenericStp(const PdeRuntime& pde, int order,
             NodeFamily family = NodeFamily::kGaussLegendre);

  /// Engine-facing layout: unpadded AoS (m_pad == m).
  const AosLayout& layout() const { return aos_; }
  /// Bytes of kernel-internal scratch (footprint metric of Sec. IV-A).
  std::size_t workspace_bytes() const;

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out);

 private:
  // Index helpers into the space-time scratch arrays.
  std::size_t p_index(int o) const { return static_cast<std::size_t>(o) * cell_; }
  std::size_t od_index(int o, int d) const {
    return (static_cast<std::size_t>(o) * 3 + d) * cell_;
  }

  const PdeRuntime& pde_;
  const BasisTables& basis_;
  int n_;      // nodes per dimension (paper's order N)
  int m_;      // quantities per node
  std::size_t cell_;  // n^3 * m
  AosLayout aos_;

  AlignedVector p_;      // (n+1) * cell_   : Taylor derivatives of q
  AlignedVector flux_;   // n * 3 * cell_   : flux per order and dimension
  AlignedVector df_;     // n * 3 * cell_   : derived flux + ncp
  AlignedVector gradq_;  // n * 3 * cell_   : spatial gradients
};

/// Wraps a GenericStp into the type-erased StpKernel handle.
StpKernel make_generic_stp(std::shared_ptr<const PdeRuntime> pde, int order,
                           NodeFamily family = NodeFamily::kGaussLegendre);

}  // namespace exastp
