// Shared definitions for the Space-Time Predictor kernel variants.
//
// Kernel contract (all variants):
//
//   inputs   q        — cell DOFs at t_n in padded AoS layout
//            dt       — time step
//            inv_dx   — 1/h per dimension (reference-to-physical scaling)
//            source   — optional point source prepared for this cell
//   outputs  qavg     — time-AVERAGED state (1/dt) * integral of q over
//                       [t_n, t_n+dt]; constant parameter rows pass through
//                       unchanged so flux/ncp of qavg stay well defined
//            favg[d]  — time-averaged volume fluctuation per dimension:
//                       (1/dt) * integral of (d/dx_d F_d(q) + B_d dq/dx_d)
//
// The corrector then computes q^{n+1} = q + dt * sum_d favg[d] + surface
// terms built from qavg (see face.h and solver/ader_dg_solver.cpp). All
// buffers use the layout
// returned by StpKernel::layout; padding lanes are kept at exactly zero.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "exastp/common/aligned.h"
#include "exastp/common/simd.h"
#include "exastp/pde/point_source.h"
#include "exastp/tensor/layout.h"

namespace exastp {

/// The four kernel variants of the paper, in the order they are introduced.
enum class StpVariant {
  kGeneric,       ///< Sec. II-B / Fig. 1: scalar reference implementation
  kLog,           ///< Sec. III: AoS + Loop-over-GEMM
  kSplitCk,       ///< Sec. IV / Fig. 5: dimension-split low-footprint CK
  kAosoaSplitCk,  ///< Sec. V: hybrid layout + vectorized user functions
  kSoaUfSplitCk,  ///< Sec. V-A: the REJECTED per-call AoS<->SoA transpose
                  ///< scheme, kept as a measured ablation variant
};

std::string variant_name(StpVariant v);

/// Storage precision of a kernel's internal DOF/flux/update tensors. The
/// engine-facing buffers (q/qavg/favg) are always double; an fp32 kernel
/// converts once at entry and once at exit, and everything the *solver*
/// reduces over those outputs (stable_dt, norms, energy) accumulates in
/// fp64 regardless — the "fp32 storage / fp64 accumulation" scheme the
/// memory-bound sweeps want (halved DOF bytes, near-2x bandwidth win).
/// Only the SplitCK-family variants (splitck, aosoa_splitck) implement
/// kF32; requesting it for the others throws in make_stp_kernel.
enum class Precision {
  kF64,  ///< double storage everywhere (the paper's baseline)
  kF32,  ///< float kernel-internal storage, double kernel boundary
};

/// "fp64" / "fp32" — the tokens of the precision= config key.
std::string precision_name(Precision p);

/// Parses "fp64" (alias "double") / "fp32" (alias "float" / "single");
/// throws on unknown names.
Precision parse_precision(const std::string& name);

/// Copies the parameter rows (s in [vars, m)) of the original state into a
/// derivative tensor. The time derivatives of the constant material/geometry
/// parameters are zero, but the PDE user functions read parameters from the
/// node they are called on (e.g. 1/rho), so every tensor handed to
/// flux()/ncp() must carry the *original* parameter values. All kernel
/// variants maintain this invariant; qavg's parameter rows are restored the
/// same way after the Taylor accumulation so that flux(qavg) is well defined
/// (see DESIGN.md on the SplitCK favg recomputation).
template <class Real>
inline void refresh_aos_param_rows(const AosLayout& aos, int vars,
                                   const Real* q, Real* dst) {
  if (vars == aos.m) return;
  const std::size_t nodes =
      static_cast<std::size_t>(aos.n) * aos.n * aos.n;
  for (std::size_t k = 0; k < nodes; ++k)
    for (int s = vars; s < aos.m; ++s)
      dst[k * aos.m_pad + s] = q[k * aos.m_pad + s];
}

/// Same invariant for AoSoA tensors.
template <class Real>
inline void refresh_aosoa_param_rows(const AosoaLayout& aosoa, int vars,
                                     const Real* q, Real* dst) {
  if (vars == aosoa.m) return;
  for (int k3 = 0; k3 < aosoa.n; ++k3)
    for (int k2 = 0; k2 < aosoa.n; ++k2)
      for (int s = vars; s < aosoa.m; ++s) {
        const std::size_t off = aosoa.idx(k3, k2, s, 0);
        for (int k1 = 0; k1 < aosoa.n_pad; ++k1)
          dst[off + k1] = q[off + k1];
      }
}

/// Per-dimension time-averaged fluctuation outputs.
struct StpOutputs {
  double* qavg = nullptr;
  std::array<double*, 3> favg{};
};

/// Type-erased handle to a configured kernel instance. Create through
/// make_stp_kernel (registry.h); reuse across cells — the workspace is
/// allocated once at construction time. The workspace makes a kernel
/// stateful per *invocation*, so one instance must never run on two
/// threads at once; the parallel steppers fork() one clone per thread.
class StpKernel {
 public:
  using RunFn = std::function<void(const double* q, double dt,
                                   const std::array<double, 3>& inv_dx,
                                   const SourceTerm* source,
                                   const StpOutputs& out)>;
  using ForkFn = std::function<StpKernel()>;

  StpKernel() = default;
  StpKernel(StpVariant variant, AosLayout layout, std::size_t footprint,
            RunFn run, Precision precision = Precision::kF64)
      : variant_(variant), precision_(precision), layout_(layout),
        workspace_bytes_(footprint), run_(std::move(run)) {}

  StpVariant variant() const { return variant_; }
  /// Storage precision of the kernel's internal tensors; the run()
  /// boundary is always double.
  Precision precision() const { return precision_; }
  /// Engine-facing AoS layout of q/qavg/favg buffers. The generic variant
  /// uses the unpadded layout (m_pad == m), the optimized ones pad to the
  /// ISA width.
  const AosLayout& layout() const { return layout_; }
  /// Bytes of kernel-internal scratch (the memory-footprint metric of
  /// Sec. IV-A; excludes the engine-owned in/out buffers).
  std::size_t workspace_bytes() const { return workspace_bytes_; }

  void run(const double* q, double dt, const std::array<double, 3>& inv_dx,
           const SourceTerm* source, const StpOutputs& out) const {
    run_(q, dt, inv_dx, source, out);
  }

  explicit operator bool() const { return static_cast<bool>(run_); }

  /// Installed by make_stp_kernel: rebuilds an equivalent kernel with an
  /// independent workspace (same PDE/variant/order/ISA).
  void set_fork(ForkFn fork) { fork_ = std::move(fork); }
  bool can_fork() const { return static_cast<bool>(fork_); }
  /// A fresh clone safe to run on another thread. Throws when the kernel
  /// was hand-built without a fork factory.
  StpKernel fork() const;

 private:
  StpVariant variant_ = StpVariant::kGeneric;
  Precision precision_ = Precision::kF64;
  AosLayout layout_;
  std::size_t workspace_bytes_ = 0;
  RunFn run_;
  ForkFn fork_;
};

}  // namespace exastp
