#include "exastp/kernels/generic_stp.h"

#include <cstring>

#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/perf/flop_count.h"

namespace exastp {
namespace {

// Node stride along dimension d in the (k3, k2, k1, s) AoS index space.
std::size_t dim_stride(int n, int m, int d) {
  switch (d) {
    case 0: return static_cast<std::size_t>(m);
    case 1: return static_cast<std::size_t>(m) * n;
    default: return static_cast<std::size_t>(m) * n * n;
  }
}

}  // namespace

GenericStp::GenericStp(const PdeRuntime& pde, int order, NodeFamily family)
    : pde_(pde),
      basis_(basis_tables(order, family)),
      n_(order),
      m_(pde.info().quants),
      cell_(static_cast<std::size_t>(n_) * n_ * n_ * m_),
      aos_(order, m_, Isa::kScalar) {
  EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
  p_.assign((static_cast<std::size_t>(n_) + 1) * cell_, 0.0);
  flux_.assign(static_cast<std::size_t>(n_) * 3 * cell_, 0.0);
  df_.assign(static_cast<std::size_t>(n_) * 3 * cell_, 0.0);
  gradq_.assign(static_cast<std::size_t>(n_) * 3 * cell_, 0.0);
}

std::size_t GenericStp::workspace_bytes() const {
  return (p_.size() + flux_.size() + df_.size() + gradq_.size()) *
         sizeof(double);
}

void GenericStp::compute(const double* q, double dt,
                         const std::array<double, 3>& inv_dx,
                         const SourceTerm* source, const StpOutputs& out) {
  const int n = n_, m = m_;
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  const double* diff = basis_.diff.data();
  FlopCounter& fc = FlopCounter::instance();

  // p[0] = q(t_n).
  std::memcpy(p_.data(), q, cell_ * sizeof(double));
  std::vector<double> ncp_tmp(m);

  for (int o = 0; o < n; ++o) {
    const double* po = p_.data() + p_index(o);

    // flux[o][d][k][:] = F_d(p[o][k]).
    for (int d = 0; d < 3; ++d) {
      double* fo = flux_.data() + od_index(o, d);
      for (std::size_t k = 0; k < nodes; ++k)
        pde_.flux(po + k * m, d, fo + k * m);
    }
    fc.add(WidthClass::kScalar, 3 * nodes * pde_.flux_flops());

    // dF[o][d] = derive(flux[o][d], d); gradQ[o][d] = derive(p[o], d).
    // Naive contraction: for every output node a dot product over the n
    // nodes along dimension d — strided access, scalar arithmetic.
    for (int d = 0; d < 3; ++d) {
      const std::size_t stride = dim_stride(n, m, d);
      const double* fo = flux_.data() + od_index(o, d);
      double* dfo = df_.data() + od_index(o, d);
      double* go = gradq_.data() + od_index(o, d);
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2)
          for (int k1 = 0; k1 < n; ++k1) {
            const int kd = d == 0 ? k1 : (d == 1 ? k2 : k3);
            const std::size_t base =
                ((static_cast<std::size_t>(k3) * n + k2) * n + k1) * m;
            // Offset of the first node of this line along d.
            const std::size_t line0 = base - kd * stride;
            for (int s = 0; s < m; ++s) {
              double acc_f = 0.0, acc_q = 0.0;
              for (int l = 0; l < n; ++l) {
                const double dkl = diff[kd * n + l];
                acc_f += dkl * fo[line0 + l * stride + s];
                acc_q += dkl * po[line0 + l * stride + s];
              }
              dfo[base + s] = acc_f * inv_dx[d];
              go[base + s] = acc_q * inv_dx[d];
            }
          }
    }
    fc.add(WidthClass::kScalar, 3 * nodes * m * (4ull * n + 2));

    // dF[o][d][k] += B_d(p[o][k]) * gradQ[o][d][k].
    for (int d = 0; d < 3; ++d) {
      double* dfo = df_.data() + od_index(o, d);
      const double* go = gradq_.data() + od_index(o, d);
      for (std::size_t k = 0; k < nodes; ++k) {
        pde_.ncp(po + k * m, go + k * m, d, ncp_tmp.data());
        for (int s = 0; s < m; ++s) dfo[k * m + s] += ncp_tmp[s];
      }
    }
    fc.add(WidthClass::kScalar, 3 * nodes * (pde_.ncp_flops() + m));

    // p[o+1] = sum_d dF[o][d]  (+ source time derivative).
    double* pn = p_.data() + p_index(o + 1);
    std::memset(pn, 0, cell_ * sizeof(double));
    for (int d = 0; d < 3; ++d) {
      const double* dfo = df_.data() + od_index(o, d);
      for (std::size_t i = 0; i < cell_; ++i) pn[i] += dfo[i];
    }
    fc.add(WidthClass::k128, 3 * cell_);
    if (source != nullptr) {
      const double sdo = source->dt_derivatives[o];
      for (std::size_t k = 0; k < nodes; ++k)
        pn[k * m + source->quantity] += source->psi[k] * sdo;
      fc.add(WidthClass::kScalar, 2 * nodes);
    }
    // User functions read parameters from the node they receive, so every
    // derivative tensor must carry the original parameter values.
    refresh_aos_param_rows(aos_, pde_.info().vars, q, pn);
  }

  // Time-averaged outputs: qavg = sum_o c[o] p[o], favg[d] = sum_o c[o]
  // dF[o][d], with c[o] = dt^o/(o+1)!.
  const auto coeff = time_average_coefficients(dt, n);
  std::memset(out.qavg, 0, cell_ * sizeof(double));
  for (int d = 0; d < 3; ++d)
    std::memset(out.favg[d], 0, cell_ * sizeof(double));
  for (int o = 0; o < n; ++o) {
    const double c = coeff[o];
    const double* po = p_.data() + p_index(o);
    for (std::size_t i = 0; i < cell_; ++i) out.qavg[i] += c * po[i];
    for (int d = 0; d < 3; ++d) {
      const double* dfo = df_.data() + od_index(o, d);
      double* fd = out.favg[d];
      for (std::size_t i = 0; i < cell_; ++i) fd[i] += c * dfo[i];
    }
  }
  // Contiguous axpy sweeps: the one part of the generic kernel the baseline
  // compiler packs (128-bit), as in the paper's Fig. 9 "Generic" column.
  fc.add(WidthClass::k128, 8ull * n * cell_);

  // The Taylor sum scaled the constant parameter rows; restore them so that
  // flux(qavg)/wave speeds of the averaged state stay well defined.
  refresh_aos_param_rows(aos_, pde_.info().vars, q, out.qavg);
}

StpKernel make_generic_stp(std::shared_ptr<const PdeRuntime> pde, int order,
                           NodeFamily family) {
  auto impl = std::make_shared<GenericStp>(*pde, order, family);
  AosLayout layout = impl->layout();
  std::size_t bytes = impl->workspace_bytes();
  return StpKernel(
      StpVariant::kGeneric, layout, bytes,
      [impl, pde](const double* q, double dt,
                  const std::array<double, 3>& inv_dx,
                  const SourceTerm* source, const StpOutputs& out) {
        impl->compute(q, dt, inv_dx, source, out);
      });
}

std::string variant_name(StpVariant v) {
  switch (v) {
    case StpVariant::kGeneric: return "generic";
    case StpVariant::kLog: return "log";
    case StpVariant::kSplitCk: return "splitck";
    case StpVariant::kAosoaSplitCk: return "aosoa_splitck";
    case StpVariant::kSoaUfSplitCk: return "soa_uf_splitck";
  }
  return "unknown";
}

}  // namespace exastp
