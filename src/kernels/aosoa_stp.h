// AoSoA SplitCK STP kernel — hybrid data layout + vectorized user functions
// (paper Sec. V).
//
// Same dimension-split Cauchy-Kowalewsky algorithm as SplitCkStpT, but the
// working tensors live in the hybrid A[k3][k2][s][k1] layout:
//  * GEMMs keep a unit-stride leading dimension (the zero-padded x-line;
//    x-derivatives become transposed products C^T = B^T A^T, y/z-derivatives
//    fuse the quantity and x dimensions — Sec. V-B),
//  * every (k3,k2) line is a ready-made SoA chunk, so the PDE user functions
//    are called once per line on VECTLENGTH = n_pad lanes and vectorize at
//    the full SIMD width (Sec. V-C / Fig. 8) — this removes the ~10% scalar
//    tail the AoS variants keep.
//
// The rest of the engine speaks AoS, so inputs are transposed to AoSoA on
// entry and outputs back on exit, as the paper does ("the performance impact
// of these transpositions is minimal compared to the cost of the kernel").
//
// Shares the SplitCK extensions (see splitck_stp.h): fused cache-blocked
// dimension sweeps (slab size from FusionTuneTable), PDE-declared zero-block
// masking of the flux derivative GEMMs and NCP-stage skipping, and Real
// templating — Real=float stores every working tensor in fp32, converting
// exactly once at the kernel boundary; the templated PDE line functions
// keep the hot sweeps conversion-free in both precisions.
#pragma once

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/kernels/fusion_autotune.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/pde/pde_base.h"
#include "exastp/perf/flop_count.h"
#include "exastp/tensor/transpose.h"

namespace exastp {

template <class Pde, class Real = double>
class AosoaStpT {
 public:
  static constexpr int kQuants = Pde::kQuants;
  static constexpr bool kF32 = !std::is_same_v<Real, double>;

  AosoaStpT(Pde pde, int order, Isa isa,
            NodeFamily family = NodeFamily::kGaussLegendre)
      : pde_(std::move(pde)),
        basis_(basis_tables(order, family)),
        isa_(isa),
        n_(order),
        aos_(order, kQuants, isa),
        aosoa_(order, kQuants, isa),
        cell_(aosoa_.size()),
        block_(FusionTuneTable::instance().block_planes(
            Pde::kName, order, kQuants, isa,
            kF32 ? Precision::kF32 : Precision::kF64)),
        diff_t_padded_(basis_.padded_diff_t(aosoa_.n_pad)) {
    EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
    const std::size_t line = static_cast<std::size_t>(kQuants) * aosoa_.n_pad;
    q_a_.assign(cell_, 0.0);
    qavg_a_.assign(cell_, 0.0);
    favg0_.assign(cell_, 0.0);
    favg1_.assign(cell_, 0.0);
    favg2_.assign(cell_, 0.0);
    p_.assign(cell_, Real(0));
    ptemp_.assign(cell_, Real(0));
    flux_.assign(cell_, Real(0));
    gradq_.assign(cell_, Real(0));
    line_buf_.assign(line, Real(0));
    if constexpr (kF32) {
      qr_.assign(cell_, Real(0));
      qavg_r_.assign(cell_, Real(0));
      for (auto& f : favg_r_) f.assign(cell_, Real(0));
      diff_r_.resize(static_cast<std::size_t>(n_) * n_);
      vec_narrow(static_cast<long>(diff_r_.size()), basis_.diff.data(),
                 diff_r_.data());
      diff_t_padded_r_.resize(diff_t_padded_.size());
      vec_narrow(static_cast<long>(diff_t_padded_.size()),
                 diff_t_padded_.data(), diff_t_padded_r_.data());
    }
  }

  const AosLayout& layout() const { return aos_; }
  const AosoaLayout& internal_layout() const { return aosoa_; }
  int fused_block_planes() const { return block_; }

  std::size_t workspace_bytes() const {
    std::size_t bytes =
        (q_a_.size() + qavg_a_.size() + favg0_.size() + favg1_.size() +
         favg2_.size()) * sizeof(double) +
        (p_.size() + ptemp_.size() + flux_.size() + gradq_.size() +
         line_buf_.size()) * sizeof(Real);
    if constexpr (kF32) {
      bytes +=
          (qr_.size() + qavg_r_.size() + 3 * favg_r_[0].size()) * sizeof(Real);
    }
    return bytes;
  }

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out) {
    // Engine AoS -> kernel AoSoA at the boundary, AoSoA -> AoS on the way
    // out (Sec. V-B: the rest of the engine still expects AoS).
    aos_to_aosoa(q, aos_, q_a_.data(), aosoa_);
    compute_native(q_a_.data(), dt, inv_dx, source, qavg_a_.data(),
                   {favg0_.data(), favg1_.data(), favg2_.data()});
    aosoa_to_aos(qavg_a_.data(), aosoa_, out.qavg, aos_);
    aosoa_to_aos(favg0_.data(), aosoa_, out.favg[0], aos_);
    aosoa_to_aos(favg1_.data(), aosoa_, out.favg[1], aos_);
    aosoa_to_aos(favg2_.data(), aosoa_, out.favg[2], aos_);
  }

  /// Extension (paper Sec. V-B: the boundary transposes "could be avoided
  /// altogether by switching the whole engine to an AoSoA data layout"):
  /// runs the predictor directly on AoSoA buffers with no transposes.
  /// All pointers use this kernel's internal_layout(); q_aosoa must have
  /// zeroed padding lanes. For Real=float the AoSoA boundary stays double;
  /// narrowing/widening happens here.
  void compute_native(const double* q_aosoa, double dt,
                      const std::array<double, 3>& inv_dx,
                      const SourceTerm* source, double* qavg_aosoa,
                      const std::array<double*, 3>& favg_aosoa) {
    if constexpr (kF32) {
      vec_narrow(static_cast<long>(cell_), q_aosoa, qr_.data());
      native_impl(qr_.data(), dt, inv_dx, source, qavg_r_.data(),
                  {favg_r_[0].data(), favg_r_[1].data(), favg_r_[2].data()});
      vec_widen(static_cast<long>(cell_), qavg_r_.data(), qavg_aosoa);
      for (int d = 0; d < 3; ++d)
        vec_widen(static_cast<long>(cell_), favg_r_[d].data(),
                  favg_aosoa[d]);
    } else {
      native_impl(q_aosoa, dt, inv_dx, source, qavg_aosoa, favg_aosoa);
    }
  }

 private:
  void native_impl(const Real* q_aosoa, double dt,
                   const std::array<double, 3>& inv_dx,
                   const SourceTerm* source, Real* qavg_aosoa,
                   const std::array<Real*, 3>& favg_aosoa) {
    const int n = n_;
    const auto coeff = time_average_coefficients(dt, n);
    FlopCounter& fc = FlopCounter::instance();

    vec_copy(static_cast<long>(cell_), q_aosoa, p_.data());
    vec_scale(isa_, static_cast<long>(cell_), Real(coeff[0]), q_aosoa,
              qavg_aosoa);

    for (int o = 0; o + 1 < n; ++o) {
      vec_zero(static_cast<long>(cell_), ptemp_.data());
      for (int d = 0; d < 3; ++d)
        apply_volume_dimension(d, Real(inv_dx[d]), p_.data(), ptemp_.data());
      if (source != nullptr) apply_source(ptemp_.data(), source, o, fc);
      vec_axpy(isa_, static_cast<long>(cell_), Real(coeff[o + 1]),
               ptemp_.data(), qavg_aosoa);
      p_.swap(ptemp_);
      refresh_aosoa_param_rows(aosoa_, Pde::kVars, q_aosoa, p_.data());
    }

    refresh_aosoa_param_rows(aosoa_, Pde::kVars, q_aosoa, qavg_aosoa);

    // favg[d] recomputed from the averaged state.
    for (int d = 0; d < 3; ++d) {
      vec_zero(static_cast<long>(cell_), favg_aosoa[d]);
      apply_volume_dimension(d, Real(inv_dx[d]), qavg_aosoa, favg_aosoa[d]);
    }
  }

  const Real* diff_ptr() const {
    if constexpr (kF32) {
      return diff_r_.data();
    } else {
      return basis_.diff.data();
    }
  }

  const Real* diff_t_ptr() const {
    if constexpr (kF32) {
      return diff_t_padded_r_.data();
    } else {
      return diff_t_padded_.data();
    }
  }

  /// Iterates `fn(line_offset)` over the slab's (k3,k2) lines: k3 planes
  /// for the x/y sweeps, k2 pencils (all k3) for the z sweep.
  template <class Fn>
  void for_slab_lines(int d, int lo, int hi, Fn&& fn) const {
    if (d < 2) {
      for (int k3 = lo; k3 < hi; ++k3)
        for (int k2 = 0; k2 < n_; ++k2) fn(aosoa_.line_offset(k3, k2));
    } else {
      for (int k3 = 0; k3 < n_; ++k3)
        for (int k2 = lo; k2 < hi; ++k2) fn(aosoa_.line_offset(k3, k2));
    }
  }

  // The PDE line functions are templated on the scalar type (the fp32
  // overloads dispatch to the _f32 ISA entry points), so both precisions
  // run conversion-free on the working tensors.
  void eval_flux_line(int d, const Real* src, std::size_t off) {
    const int np = aosoa_.n_pad;
    pde_.flux_line(isa_, src + off, d, flux_.data() + off, np, np);
  }

  void eval_ncp_line(int d, const Real* src, Real* dst, std::size_t off) {
    const int np = aosoa_.n_pad;
    const long line = static_cast<long>(kQuants) * np;
    pde_.ncp_line(isa_, src + off, gradq_.data() + off, d, line_buf_.data(),
                  np, np);
    vec_add(isa_, line, line_buf_.data(), dst + off);
  }

  /// dst += inv_h * D_d F_d(src) + B_d(src, inv_h * D_d src), all AoSoA,
  /// fused slab by slab (see splitck_stp.h).
  void apply_volume_dimension(int d, Real inv_h, const Real* src, Real* dst) {
    const int cover = pde_flux_rows_end<Pde>(d);
    constexpr bool kNcpZero = pde_ncp_is_zero<Pde>();
    for (int lo = 0; lo < n_; lo += block_) {
      const int hi = std::min(n_, lo + block_);
      if (cover > 0) {
        // Vectorized user function: one call per (k3,k2) line, operating
        // on the full padded x-line (zero lanes are valid inputs by PDE
        // contract).
        for_slab_lines(d, lo, hi,
                       [&](std::size_t off) { eval_flux_line(d, src, off); });
        aosoa_derivative_slab(isa_, aosoa_, diff_ptr(), diff_t_ptr(), inv_h,
                              d, lo, hi, cover, flux_.data(), dst,
                              /*accumulate=*/true);
      }
      if constexpr (!kNcpZero) {
        aosoa_derivative_slab(isa_, aosoa_, diff_ptr(), diff_t_ptr(), inv_h,
                              d, lo, hi, aosoa_.m, src, gradq_.data(),
                              /*accumulate=*/false);
        for_slab_lines(d, lo, hi, [&](std::size_t off) {
          eval_ncp_line(d, src, dst, off);
        });
      }
    }
  }

  void apply_source(Real* dst, const SourceTerm* source, int o,
                    FlopCounter& fc) {
    const int n = n_;
    const double sdo = source->dt_derivatives[o];
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2) {
        const std::size_t line =
            (static_cast<std::size_t>(k3) * n + k2) * n;
        const std::size_t off = aosoa_.idx(k3, k2, source->quantity, 0);
        for (int k1 = 0; k1 < n; ++k1)
          dst[off + k1] += static_cast<Real>(source->psi[line + k1] * sdo);
      }
    fc.add(WidthClass::kScalar, 2ull * n * n * n);
  }

  Pde pde_;
  const BasisTables& basis_;
  Isa isa_;
  int n_;
  AosLayout aos_;
  AosoaLayout aosoa_;
  std::size_t cell_;
  int block_;
  AlignedVector diff_t_padded_;

  // Double AoSoA boundary buffers (the engine transposes land here).
  AlignedVector q_a_, qavg_a_, favg0_, favg1_, favg2_;
  // Real working tensors of the CK recursion + the NCP line scratch.
  AlignedVectorT<Real> p_, ptemp_, flux_, gradq_, line_buf_;
  // fp32-only: narrowed boundary tensors and float operator copies.
  AlignedVectorT<Real> qr_, qavg_r_;
  std::array<AlignedVectorT<Real>, 3> favg_r_;
  AlignedVectorT<Real> diff_r_, diff_t_padded_r_;
};

/// The paper's fp64 AoSoA kernel (the default precision).
template <class Pde>
using AosoaStp = AosoaStpT<Pde>;

}  // namespace exastp
