// AoSoA SplitCK STP kernel — hybrid data layout + vectorized user functions
// (paper Sec. V).
//
// Same dimension-split Cauchy-Kowalewsky algorithm as SplitCkStp, but the
// working tensors live in the hybrid A[k3][k2][s][k1] layout:
//  * GEMMs keep a unit-stride leading dimension (the zero-padded x-line;
//    x-derivatives become transposed products C^T = B^T A^T, y/z-derivatives
//    fuse the quantity and x dimensions — Sec. V-B),
//  * every (k3,k2) line is a ready-made SoA chunk, so the PDE user functions
//    are called once per line on VECTLENGTH = n_pad lanes and vectorize at
//    the full SIMD width (Sec. V-C / Fig. 8) — this removes the ~10% scalar
//    tail the AoS variants keep.
//
// The rest of the engine speaks AoS, so inputs are transposed to AoSoA on
// entry and outputs back on exit, as the paper does ("the performance impact
// of these transpositions is minimal compared to the cost of the kernel").
#pragma once

#include <cstring>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/perf/flop_count.h"
#include "exastp/tensor/transpose.h"

namespace exastp {

template <class Pde>
class AosoaStp {
 public:
  static constexpr int kQuants = Pde::kQuants;

  AosoaStp(Pde pde, int order, Isa isa,
           NodeFamily family = NodeFamily::kGaussLegendre)
      : pde_(std::move(pde)),
        basis_(basis_tables(order, family)),
        isa_(isa),
        n_(order),
        aos_(order, kQuants, isa),
        aosoa_(order, kQuants, isa),
        cell_(aosoa_.size()),
        diff_t_padded_(basis_.padded_diff_t(aosoa_.n_pad)) {
    EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
    q_a_.assign(cell_, 0.0);
    p_.assign(cell_, 0.0);
    ptemp_.assign(cell_, 0.0);
    flux_.assign(cell_, 0.0);
    gradq_.assign(cell_, 0.0);
    qavg_a_.assign(cell_, 0.0);
    favg0_.assign(cell_, 0.0);
    favg1_.assign(cell_, 0.0);
    favg2_.assign(cell_, 0.0);
    line_buf_.assign(static_cast<std::size_t>(kQuants) * aosoa_.n_pad, 0.0);
  }

  const AosLayout& layout() const { return aos_; }
  const AosoaLayout& internal_layout() const { return aosoa_; }

  std::size_t workspace_bytes() const {
    return (q_a_.size() + p_.size() + ptemp_.size() + flux_.size() +
            gradq_.size() + qavg_a_.size() + favg0_.size() + favg1_.size() +
            favg2_.size() + line_buf_.size()) *
           sizeof(double);
  }

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out) {
    // Engine AoS -> kernel AoSoA at the boundary, AoSoA -> AoS on the way
    // out (Sec. V-B: the rest of the engine still expects AoS).
    aos_to_aosoa(q, aos_, q_a_.data(), aosoa_);
    compute_native(q_a_.data(), dt, inv_dx, source, qavg_a_.data(),
                   {favg0_.data(), favg1_.data(), favg2_.data()});
    aosoa_to_aos(qavg_a_.data(), aosoa_, out.qavg, aos_);
    aosoa_to_aos(favg0_.data(), aosoa_, out.favg[0], aos_);
    aosoa_to_aos(favg1_.data(), aosoa_, out.favg[1], aos_);
    aosoa_to_aos(favg2_.data(), aosoa_, out.favg[2], aos_);
  }

  /// Extension (paper Sec. V-B: the boundary transposes "could be avoided
  /// altogether by switching the whole engine to an AoSoA data layout"):
  /// runs the predictor directly on AoSoA buffers with no transposes.
  /// All pointers use this kernel's internal_layout(); q_aosoa must have
  /// zeroed padding lanes.
  void compute_native(const double* q_aosoa, double dt,
                      const std::array<double, 3>& inv_dx,
                      const SourceTerm* source, double* qavg_aosoa,
                      const std::array<double*, 3>& favg_aosoa) {
    const int n = n_;
    const auto coeff = time_average_coefficients(dt, n);
    FlopCounter& fc = FlopCounter::instance();

    vec_copy(static_cast<long>(cell_), q_aosoa, p_.data());
    vec_scale(isa_, static_cast<long>(cell_), coeff[0], q_aosoa,
              qavg_aosoa);

    for (int o = 0; o + 1 < n; ++o) {
      vec_zero(static_cast<long>(cell_), ptemp_.data());
      for (int d = 0; d < 3; ++d)
        apply_volume_dimension(d, inv_dx[d], p_.data(), ptemp_.data());
      if (source != nullptr) apply_source(ptemp_.data(), source, o, fc);
      vec_axpy(isa_, static_cast<long>(cell_), coeff[o + 1], ptemp_.data(),
               qavg_aosoa);
      p_.swap(ptemp_);
      refresh_aosoa_param_rows(aosoa_, Pde::kVars, q_aosoa, p_.data());
    }

    refresh_aosoa_param_rows(aosoa_, Pde::kVars, q_aosoa, qavg_aosoa);

    // favg[d] recomputed from the averaged state.
    for (int d = 0; d < 3; ++d) {
      vec_zero(static_cast<long>(cell_), favg_aosoa[d]);
      apply_volume_dimension(d, inv_dx[d], qavg_aosoa, favg_aosoa[d]);
    }
  }

 private:
  /// dst += inv_h * D_d F_d(src) + B_d(src, inv_h * D_d src), all AoSoA.
  void apply_volume_dimension(int d, double inv_h, const double* src,
                              double* dst) {
    const int n = n_;
    const int np = aosoa_.n_pad;
    const long line = static_cast<long>(kQuants) * np;

    // Vectorized user function: one call per (k3,k2) line, operating on the
    // full padded x-line (zero lanes are valid inputs by PDE contract).
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2) {
        const std::size_t off = aosoa_.line_offset(k3, k2);
        pde_.flux_line(isa_, src + off, d, flux_.data() + off, np, np);
      }
    aosoa_derivative(isa_, aosoa_, basis_.diff.data(), diff_t_padded_.data(),
                     inv_h, d, flux_.data(), dst, /*accumulate=*/true);

    aosoa_derivative(isa_, aosoa_, basis_.diff.data(), diff_t_padded_.data(),
                     inv_h, d, src, gradq_.data(), /*accumulate=*/false);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2) {
        const std::size_t off = aosoa_.line_offset(k3, k2);
        pde_.ncp_line(isa_, src + off, gradq_.data() + off, d,
                      line_buf_.data(), np, np);
        vec_add(isa_, line, line_buf_.data(), dst + off);
      }
  }

  void apply_source(double* dst, const SourceTerm* source, int o,
                    FlopCounter& fc) {
    const int n = n_;
    const double sdo = source->dt_derivatives[o];
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2) {
        const std::size_t line =
            (static_cast<std::size_t>(k3) * n + k2) * n;
        const std::size_t off = aosoa_.idx(k3, k2, source->quantity, 0);
        for (int k1 = 0; k1 < n; ++k1)
          dst[off + k1] += source->psi[line + k1] * sdo;
      }
    fc.add(WidthClass::kScalar, 2ull * n * n * n);
  }

  Pde pde_;
  const BasisTables& basis_;
  Isa isa_;
  int n_;
  AosLayout aos_;
  AosoaLayout aosoa_;
  std::size_t cell_;
  AlignedVector diff_t_padded_;

  AlignedVector q_a_, p_, ptemp_, flux_, gradq_, qavg_a_;
  AlignedVector favg0_, favg1_, favg2_, line_buf_;
};

}  // namespace exastp
