// Face-level operations of the corrector step (paper eq. (5)).
//
// The STP emits the time-averaged state qavg; the corrector projects it to
// the six element faces ("performed by a single matrix-matrix
// multiplication, leaving no room for optimization" — Sec. II-B), solves a
// Rusanov Riemann problem per face from both sides' projections, and applies
// the strong-form DGSEM surface lift. For a linear PDE the numerical flux is
// linear in its inputs (the assumption of Sec. II-A), so operating on
// time-averaged quantities is exact.
//
// Face patch layout: AoS with the same quantity padding as the cell tensor;
// node (a, b) are the two in-face coordinates in ascending dimension order
// (x-face: (y,z), y-face: (x,z), z-face: (x,y)).
#pragma once

#include <array>
#include <cstring>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/mesh/grid.h"
#include "exastp/pde/pde_base.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

/// Layout of one face patch: n^2 nodes, padded quantities.
struct FaceLayout {
  int n = 0;
  int m = 0;
  int m_pad = 0;

  FaceLayout() = default;
  FaceLayout(const AosLayout& aos) : n(aos.n), m(aos.m), m_pad(aos.m_pad) {}

  std::size_t size() const { return static_cast<std::size_t>(n) * n * m_pad; }
  std::size_t idx(int b, int a, int s) const {
    return (static_cast<std::size_t>(b) * n + a) * m_pad + s;
  }
};

/// Projects a cell tensor onto the face normal to `dir` on `side`
/// (0 = lower/left, 1 = upper/right): face[(a,b),s] = sum_l phi_side[l] *
/// q[node with dim-dir index l].
inline void project_to_face(const AosLayout& aos, const BasisTables& basis,
                            const double* q, int dir, int side,
                            double* face) {
  EXASTP_CHECK(dir >= 0 && dir < 3);
  const int n = aos.n;
  const int mp = aos.m_pad;
  const FaceLayout fl(aos);
  const double* phi =
      side == 0 ? basis.phi_left.data() : basis.phi_right.data();
  std::memset(face, 0, fl.size() * sizeof(double));
  for (int b = 0; b < n; ++b)
    for (int a = 0; a < n; ++a) {
      double* dst = face + fl.idx(b, a, 0);
      for (int l = 0; l < n; ++l) {
        // Cell node with the dir coordinate = l and in-face coords (a, b).
        int k1 = 0, k2 = 0, k3 = 0;
        switch (dir) {
          case 0: k1 = l; k2 = a; k3 = b; break;
          case 1: k1 = a; k2 = l; k3 = b; break;
          default: k1 = a; k2 = b; k3 = l; break;
        }
        const double* src = q + aos.idx(k3, k2, k1, 0);
        const double p = phi[l];
#pragma omp simd
        for (int s = 0; s < mp; ++s) dst[s] += p * src[s];
      }
    }
  FlopCounter::instance().add(WidthClass::k128,
                              2ull * n * n * n * mp);
}

/// Face scratch of one worker thread: both sides' projected states, their
/// normal fluxes, and the Rusanov flux. Resize once per face layout.
struct FaceWorkspace {
  AlignedVector face_l, face_r, flux_l, flux_r, fstar;
  std::vector<double> ghost_node;

  void resize(const FaceLayout& fl) {
    face_l.assign(fl.size(), 0.0);
    face_r.assign(fl.size(), 0.0);
    flux_l.assign(fl.size(), 0.0);
    flux_r.assign(fl.size(), 0.0);
    fstar.assign(fl.size(), 0.0);
    ghost_node.resize(static_cast<std::size_t>(fl.m));
  }
};

/// Ghost face state from a boundary condition, node by node: kWall mirrors
/// the inner state through the PDE, every other kind is absorbing outflow —
/// zero wave state with copied parameter rows, so the Rusanov flux swallows
/// the outgoing characteristics (a plain copy-ghost would be the unstable
/// extrapolation BC). `vars` counts the evolved quantities; `node_tmp` is
/// caller scratch of fl.m doubles.
inline void ghost_face_state(const PdeRuntime& pde, const FaceLayout& fl,
                             int vars, BoundaryKind kind, int dir,
                             const double* inner_face, double* ghost_face,
                             double* node_tmp) {
  const int nn = fl.n * fl.n;
  for (int k = 0; k < nn; ++k) {
    const double* inner = inner_face + static_cast<std::size_t>(k) * fl.m_pad;
    double* ghost = ghost_face + static_cast<std::size_t>(k) * fl.m_pad;
    if (kind == BoundaryKind::kWall) {
      pde.wall_reflect(inner, dir, node_tmp);
      std::memcpy(ghost, node_tmp, fl.m * sizeof(double));
    } else {
      for (int s = 0; s < vars; ++s) ghost[s] = 0.0;
      for (int s = vars; s < fl.m; ++s) ghost[s] = inner[s];
    }
    for (int s = fl.m; s < fl.m_pad; ++s) ghost[s] = 0.0;
  }
}

/// Normal "flux" of the linear PDE at a face state: F_dir(q) + B_dir(q) q.
/// For linear systems this is the full normal Jacobian applied to q, which
/// makes flux-form and NCP-form PDEs interchangeable at faces.
inline void face_normal_flux(const PdeRuntime& pde, const FaceLayout& fl,
                             const double* face, int dir, double* out) {
  const int nn = fl.n * fl.n;
  std::vector<double> tmp(fl.m);
  for (int k = 0; k < nn; ++k) {
    const double* qk = face + static_cast<std::size_t>(k) * fl.m_pad;
    double* ok = out + static_cast<std::size_t>(k) * fl.m_pad;
    pde.flux(qk, dir, ok);
    pde.ncp(qk, qk, dir, tmp.data());
    for (int s = 0; s < fl.m; ++s) ok[s] += tmp[s];
    for (int s = fl.m; s < fl.m_pad; ++s) ok[s] = 0.0;
  }
  FlopCounter::instance().add(
      WidthClass::kScalar,
      static_cast<std::uint64_t>(nn) *
          (pde.flux_flops() + pde.ncp_flops() + fl.m));
}

/// Rusanov (local Lax-Friedrichs) numerical flux for the convention
/// dq/dt = d(F)/dx: F* = 1/2 (F_L + F_R) + 1/2 smax (q_R - q_L).
/// Parameter rows of F* are forced to zero — material/geometry parameters do
/// not evolve, even across material interfaces where q_R != q_L.
inline void rusanov_flux(const PdeRuntime& pde, const FaceLayout& fl,
                         const double* ql, const double* qr,
                         const double* fleft, const double* fright, int dir,
                         double* fstar) {
  const int nn = fl.n * fl.n;
  const int vars = pde.info().vars;
  for (int k = 0; k < nn; ++k) {
    const std::size_t off = static_cast<std::size_t>(k) * fl.m_pad;
    const double s = std::max(pde.max_wave_speed(ql + off, dir),
                              pde.max_wave_speed(qr + off, dir));
    for (int v = 0; v < vars; ++v) {
      const std::size_t i = off + v;
      fstar[i] = 0.5 * (fleft[i] + fright[i]) + 0.5 * s * (qr[i] - ql[i]);
    }
    for (int s2 = vars; s2 < fl.m_pad; ++s2) fstar[off + s2] = 0.0;
  }
  FlopCounter::instance().add(WidthClass::kScalar,
                              static_cast<std::uint64_t>(nn) * (5 * vars + 1));
}

/// Strong-form DGSEM surface lift. For the cell whose face (normal `dir`,
/// `side` 0 = lower, 1 = upper) carries numerical flux fstar and own
/// extrapolated flux fown, adds
///   qnew_k += sign * scale * lift_side[k_dir] * (fstar - fown)(a, b)
/// with sign +1 on the upper face and -1 on the lower face and
/// scale = dt / h_dir. Derived from integrating dq/dt = dF/dx by parts
/// twice; validated by the solver convergence tests.
inline void apply_face_correction(const AosLayout& aos,
                                  const BasisTables& basis, int dir, int side,
                                  double scale, const double* fstar,
                                  const double* fown, double* qnew) {
  const int n = aos.n;
  const int mp = aos.m_pad;
  const FaceLayout fl(aos);
  const double* lift =
      side == 0 ? basis.lift_left.data() : basis.lift_right.data();
  const double sign = side == 0 ? -1.0 : 1.0;
  for (int b = 0; b < n; ++b)
    for (int a = 0; a < n; ++a) {
      const double* df = fstar + fl.idx(b, a, 0);
      const double* fo = fown + fl.idx(b, a, 0);
      for (int l = 0; l < n; ++l) {
        int k1 = 0, k2 = 0, k3 = 0;
        switch (dir) {
          case 0: k1 = l; k2 = a; k3 = b; break;
          case 1: k1 = a; k2 = l; k3 = b; break;
          default: k1 = a; k2 = b; k3 = l; break;
        }
        double* dst = qnew + aos.idx(k3, k2, k1, 0);
        const double c = sign * scale * lift[l];
#pragma omp simd
        for (int s = 0; s < mp; ++s) dst[s] += c * (df[s] - fo[s]);
      }
    }
  FlopCounter::instance().add(WidthClass::k128, 3ull * n * n * n * mp);
}

/// The per-cell-side surface update shared by both steppers: assembles the
/// Riemann problem of the face on `side` of cell `c` and applies the lift
/// to `out` (the cell's own qnew/rhs slice). `cell_state(cell)` returns a
/// cell's state tensor; `vars` counts the evolved quantities.
///
/// The problem is always assembled as (left = lower-side cell, right =
/// upper-side cell), so both adjacent cells compute bitwise-identical
/// fstar from identical inputs — the invariant that makes the cell-parallel
/// sweeps race-free and thread-count-independent with no face ownership or
/// coloring. Boundary faces build a ghost state instead of the neighbour.
template <class CellState>
inline void apply_own_face(const PdeRuntime& pde, const Grid& grid,
                           const AosLayout& aos, const BasisTables& basis,
                           int vars, int c, int dir, int side, double scale,
                           const CellState& cell_state, FaceWorkspace& ws,
                           double* out) {
  const FaceLayout fl(aos);
  const NeighborRef nb = grid.neighbor(c, dir, side);
  const double* qc = cell_state(c);
  if (side == 1) {
    project_to_face(aos, basis, qc, dir, 1, ws.face_l.data());
    if (!nb.boundary) {
      project_to_face(aos, basis, cell_state(nb.cell), dir, 0,
                      ws.face_r.data());
    } else {
      ghost_face_state(pde, fl, vars, nb.kind, dir, ws.face_l.data(),
                       ws.face_r.data(), ws.ghost_node.data());
    }
  } else {
    project_to_face(aos, basis, qc, dir, 0, ws.face_r.data());
    if (!nb.boundary) {
      project_to_face(aos, basis, cell_state(nb.cell), dir, 1,
                      ws.face_l.data());
    } else {
      ghost_face_state(pde, fl, vars, nb.kind, dir, ws.face_r.data(),
                       ws.face_l.data(), ws.ghost_node.data());
    }
  }
  face_normal_flux(pde, fl, ws.face_l.data(), dir, ws.flux_l.data());
  face_normal_flux(pde, fl, ws.face_r.data(), dir, ws.flux_r.data());
  rusanov_flux(pde, fl, ws.face_l.data(), ws.face_r.data(),
               ws.flux_l.data(), ws.flux_r.data(), dir, ws.fstar.data());
  apply_face_correction(aos, basis, dir, side, scale, ws.fstar.data(),
                        side == 1 ? ws.flux_l.data() : ws.flux_r.data(),
                        out);
}

}  // namespace exastp
