// Autotuned block sizes for the fused SplitCK derivative chains.
//
// The fused kernels (splitck_stp.h, aosoa_stp.h) evaluate the pointwise
// flux, its derivative GEMM, and the NCP stage slab by slab so the flux
// block is still cache-resident when the GEMM consumes it. The slab size —
// k3 planes for the x/y sweeps, k2 pencils for the z sweep — is the one
// genuinely machine-dependent knob: too small wastes GEMM call overhead,
// too large spills the slab out of L2. Block size NEVER changes results
// (slab boundaries are bitwise-neutral) nor FLOP counts (columns split at
// vector-width multiples), so the table is pure performance state and is
// deliberately excluded from the canonical config string.
//
// The table is process-wide and keyed (pde, order, isa, precision). A
// missing entry falls back to a footprint heuristic; `tune` measures the
// candidate sizes with a caller-supplied kernel builder and pins the
// winner. `serialize`/`merge_text` give a line-oriented text format
//
//     pde order isa precision block_planes
//
// that `save_file`/`load_file` persist, wired to the `autotune=PATH`
// config key (simulation.cpp: load, tune what is missing, save back).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "exastp/common/simd.h"
#include "exastp/kernels/stp_common.h"

namespace exastp {

class FusionTuneTable {
 public:
  static FusionTuneTable& instance();

  /// Tuned block size, or the heuristic default when the key is missing.
  /// Always in [1, order].
  int block_planes(const std::string& pde, int order, int quants, Isa isa,
                   Precision precision) const;

  bool has(const std::string& pde, int order, Isa isa,
           Precision precision) const;

  void set(const std::string& pde, int order, Isa isa, Precision precision,
           int planes);

  void clear();

  /// L2-footprint heuristic: the largest plane count whose fused working
  /// set (four cell-tensor slabs) stays within ~256 KiB, at least 1.
  static int heuristic_block_planes(int order, int quants, Isa isa,
                                    Precision precision);

  /// Measures every candidate block size by installing it, building a
  /// fresh kernel through `build`, and timing `reps` runs on a constant
  /// unit state; pins the fastest. Returns the winning plane count.
  int tune(const std::string& pde, int order, int quants, Isa isa,
           Precision precision, const std::function<StpKernel()>& build,
           int reps = 3);

  /// One "pde order isa precision planes" line per entry, sorted by key.
  std::string serialize() const;
  /// Merges entries parsed from `text` (same format; '#' comments and
  /// blank lines ignored). Throws on malformed lines.
  void merge_text(const std::string& text);

  /// Best-effort persistence helpers. load_file returns false when the
  /// file does not exist; save_file throws when the path is unwritable.
  bool load_file(const std::string& path);
  void save_file(const std::string& path) const;

 private:
  static std::string key(const std::string& pde, int order, Isa isa,
                         Precision precision);

  mutable std::mutex mu_;
  std::map<std::string, int> table_;
};

}  // namespace exastp
