// SoA-transposed-user-function STP kernel — the alternative the paper
// evaluated and REJECTED for linear PDEs (Sec. V-A):
//
//   "One way to get around this issue is to transpose the tensors
//    on-the-fly to switch the data layout from AoS to SoA and back before
//    and after calling the user functions. [...] It proved effective for
//    complex non-linear scenarios [...] However, the linear PDE systems in
//    the targeted seismic applications have too simple (and inexpensive)
//    user functions for such a solution to be effective."
//
// Implemented here as a fifth variant so the trade-off is *measured* rather
// than estimated: the SplitCK algorithm and AoS storage of SplitCkStp, but
// every user-function sweep transposes the full cell AoS -> SoA, calls the
// vectorized line functions once over all n^3 nodes, and transposes back.
// Numerically identical to all other variants (covered by the equivalence
// tests); performance-wise it pays 4 full-cell transposes per Taylor order
// and dimension.
#pragma once

#include <cstring>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/perf/flop_count.h"
#include "exastp/tensor/transpose.h"

namespace exastp {

template <class Pde>
class SoaUfStp {
 public:
  static constexpr int kQuants = Pde::kQuants;

  SoaUfStp(Pde pde, int order, Isa isa,
           NodeFamily family = NodeFamily::kGaussLegendre)
      : pde_(std::move(pde)),
        basis_(basis_tables(order, family)),
        isa_(isa),
        n_(order),
        aos_(order, kQuants, isa),
        soa_(order, kQuants, isa),
        cell_(aos_.size()) {
    EXASTP_CHECK_MSG(order >= 2, "STP needs at least 2 nodes per dimension");
    p_.assign(cell_, 0.0);
    ptemp_.assign(cell_, 0.0);
    flux_.assign(cell_, 0.0);
    gradq_.assign(cell_, 0.0);
    soa_in_.assign(soa_.size(), 0.0);
    soa_aux_.assign(soa_.size(), 0.0);
    soa_out_.assign(soa_.size(), 0.0);
  }

  const AosLayout& layout() const { return aos_; }

  std::size_t workspace_bytes() const {
    return (p_.size() + ptemp_.size() + flux_.size() + gradq_.size() +
            soa_in_.size() + soa_aux_.size() + soa_out_.size()) *
           sizeof(double);
  }

  void compute(const double* q, double dt,
               const std::array<double, 3>& inv_dx, const SourceTerm* source,
               const StpOutputs& out) {
    const int n = n_;
    const auto coeff = time_average_coefficients(dt, n);
    FlopCounter& fc = FlopCounter::instance();

    vec_copy(static_cast<long>(cell_), q, p_.data());
    vec_scale(isa_, static_cast<long>(cell_), coeff[0], q, out.qavg);

    for (int o = 0; o + 1 < n; ++o) {
      vec_zero(static_cast<long>(cell_), ptemp_.data());
      for (int d = 0; d < 3; ++d)
        apply_volume_dimension(d, inv_dx[d], p_.data(), ptemp_.data());
      if (source != nullptr) apply_source(ptemp_.data(), source, o, fc);
      vec_axpy(isa_, static_cast<long>(cell_), coeff[o + 1], ptemp_.data(),
               out.qavg);
      p_.swap(ptemp_);
      refresh_aos_param_rows(aos_, Pde::kVars, q, p_.data());
    }

    refresh_aos_param_rows(aos_, Pde::kVars, q, out.qavg);
    for (int d = 0; d < 3; ++d) {
      vec_zero(static_cast<long>(cell_), out.favg[d]);
      apply_volume_dimension(d, inv_dx[d], out.qavg, out.favg[d]);
    }
  }

 private:
  void apply_volume_dimension(int d, double inv_h, const double* src,
                              double* dst) {
    const std::size_t nodes = static_cast<std::size_t>(n_) * n_ * n_;
    const double* diff = basis_.diff.data();

    // flux = F_d(src), via the rejected scheme: AoS -> SoA, one vectorized
    // sweep over all n^3 nodes, SoA -> AoS.
    aos_to_soa(src, aos_, soa_in_.data(), soa_);
    pde_.flux_line(isa_, soa_in_.data(), d, soa_out_.data(), soa_.n_pad,
                   soa_.n_pad);
    soa_to_aos(soa_out_.data(), soa_, flux_.data(), aos_);
    (void)nodes;
    aos_derivative(isa_, aos_, diff, inv_h, d, flux_.data(), dst,
                   /*accumulate=*/true);

    // gradQ = inv_h * D_d src; NCP through the same transpose dance.
    aos_derivative(isa_, aos_, diff, inv_h, d, src, gradq_.data(),
                   /*accumulate=*/false);
    aos_to_soa(gradq_.data(), aos_, soa_aux_.data(), soa_);
    pde_.ncp_line(isa_, soa_in_.data(), soa_aux_.data(), d, soa_out_.data(),
                  soa_.n_pad, soa_.n_pad);
    soa_to_aos(soa_out_.data(), soa_, gradq_.data(), aos_);
    vec_add(isa_, static_cast<long>(cell_), gradq_.data(), dst);
  }

  void apply_source(double* dst, const SourceTerm* source, int o,
                    FlopCounter& fc) {
    const int mp = aos_.m_pad;
    const double sdo = source->dt_derivatives[o];
    const std::size_t nodes = static_cast<std::size_t>(n_) * n_ * n_;
    for (std::size_t k = 0; k < nodes; ++k)
      dst[k * mp + source->quantity] += source->psi[k] * sdo;
    fc.add(WidthClass::kScalar, 2 * nodes);
  }

  Pde pde_;
  const BasisTables& basis_;
  Isa isa_;
  int n_;
  AosLayout aos_;
  SoaLayout soa_;
  std::size_t cell_;

  AlignedVector p_, ptemp_, flux_, gradq_;
  AlignedVector soa_in_, soa_aux_, soa_out_;
};

}  // namespace exastp
