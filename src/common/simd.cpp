#include "exastp/common/simd.h"

#include "exastp/common/check.h"

namespace exastp {

std::string isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

Isa parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  EXASTP_FAIL("unknown ISA name: " + name);
}

bool host_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512: return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
}

Isa host_best_isa() {
  if (host_supports(Isa::kAvx512)) return Isa::kAvx512;
  if (host_supports(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

}  // namespace exastp
