// Instruction-set abstraction.
//
// The paper generates kernels per target architecture (Haswell/AVX2 vs
// Skylake/AVX-512) from Jinja2 macros. Here the analogous knob is the `Isa`
// enum: it selects the padding width of the leading tensor dimension and the
// microkernel family used by the mini-GEMM library, so the Fig. 4 comparison
// (LoG AVX-512 vs LoG AVX2) runs both code paths on the same machine.
#pragma once

#include <string>

namespace exastp {

enum class Isa {
  kScalar,  ///< no SIMD: padding 1, scalar microkernels (generic kernels)
  kAvx2,    ///< 256-bit: padding 4 doubles (Haswell-era code path)
  kAvx512,  ///< 512-bit: padding 8 doubles (Skylake code path)
};

/// SIMD register width in units of doubles.
constexpr int vector_width(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return 1;
    case Isa::kAvx2: return 4;
    case Isa::kAvx512: return 8;
  }
  return 1;
}

/// Human-readable name used in bench tables.
std::string isa_name(Isa isa);

/// Parses "scalar" / "avx2" / "avx512"; throws on unknown names.
Isa parse_isa(const std::string& name);

/// True if the host CPU can execute code generated for `isa`.
bool host_supports(Isa isa);

/// Best ISA supported by the host.
Isa host_best_isa();

}  // namespace exastp
