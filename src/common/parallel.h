// Shared-memory parallel loop utility for the cell-parallel hot paths.
//
// The per-cell predictor is embarrassingly parallel (ROADMAP), so both
// steppers fan their cell loops out over a fixed team of threads. The
// implementation is OpenMP when the build enables it (EXASTP_HAVE_OPENMP,
// see CMakeLists.txt) and a persistent std::thread pool otherwise — the
// pool is what the ThreadSanitizer CI job exercises, since libgomp is not
// TSan-instrumented.
//
// Determinism contract: work is split into contiguous chunks whose
// boundaries depend only on (n, num_threads, granularity) — never on
// scheduling — and every chunk writes disjoint output. Callers that reduce
// must combine per-chunk (or per-item) partials in index order themselves;
// see ordered_partials() and the solver norms for the pattern. Under this
// contract a run with any fixed thread count is bitwise-reproducible, and
// the solvers additionally arrange their loops (per-cell accumulation, one
// item per partial) so results are bitwise-identical across thread counts.
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace exastp {

/// Number of hardware threads, at least 1.
int hardware_threads();

/// Resolves a requested thread count: values < 1 mean "auto" and map to
/// hardware_threads(); explicit counts pass through (oversubscription is
/// allowed — useful for sanitizer tests on small machines).
int resolve_threads(int requested);

namespace detail {
class ThreadPool;
}

/// A fixed-size thread team running static contiguous partitions.
/// Copyable and cheap to pass around; copies share the same pool.
class ParallelFor {
 public:
  /// Single-threaded team: run() executes inline on the caller.
  ParallelFor() = default;
  /// Team of resolve_threads(threads) threads (the caller counts as one;
  /// the pool holds threads - 1 workers).
  explicit ParallelFor(int threads);

  int num_threads() const { return threads_; }

  /// Invokes fn(tid, begin, end) over a static partition of [0, n) into
  /// num_threads() contiguous chunks, each a multiple of `granularity`
  /// except the last. tid is the chunk index in [0, num_threads()); chunks
  /// may be empty when n is small. Blocks until every chunk finished.
  /// Exceptions thrown by fn are captured and rethrown on the caller
  /// (first chunk index wins).
  void run(long n, long granularity,
           const std::function<void(int, long, long)>& fn) const;

  /// run() with granularity 1 and a per-index body fn(tid, i).
  void for_each(long n, const std::function<void(int, long)>& fn) const;

 private:
  int threads_ = 1;
  std::shared_ptr<detail::ThreadPool> pool_;  // null when OpenMP or serial
};

/// Deterministic reduction helper: evaluates fn(i) for every i in [0, n)
/// in parallel, storing each result into slot i of the returned vector.
/// Summing (or max-ing) the returned partials serially in index order gives
/// a result independent of the thread count — the "ordered reduction" used
/// for norms, energies and blow-up detection.
std::vector<double> ordered_partials(const ParallelFor& par, long n,
                                     const std::function<double(long)>& fn);

}  // namespace exastp
