// Lightweight invariant checking used at module boundaries.
//
// Hot kernels validate their inputs once per call (not per node); violations
// throw std::invalid_argument / std::logic_error so the solver loop and the
// tests can observe failures deterministically.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace exastp {

[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace exastp

/// EXASTP_CHECK(cond) / EXASTP_CHECK_MSG(cond, "context"): argument and
/// invariant validation that stays enabled in release builds (boundary-only,
/// so the cost is negligible next to the kernels themselves).
#define EXASTP_CHECK(cond)                                       \
  do {                                                           \
    if (!(cond)) ::exastp::fail_check(#cond, __FILE__, __LINE__, \
                                      std::string());            \
  } while (false)

#define EXASTP_CHECK_MSG(cond, msg)                              \
  do {                                                           \
    if (!(cond)) ::exastp::fail_check(#cond, __FILE__, __LINE__, \
                                      std::string(msg));         \
  } while (false)

/// EXASTP_FAIL(msg): unconditional failure for unreachable branches (e.g.
/// exhaustive-switch fallthroughs). Expands to a [[noreturn]] call, so no
/// dead default-constructed return value is needed after it.
#define EXASTP_FAIL(msg) \
  ::exastp::fail_check("unreachable", __FILE__, __LINE__, std::string(msg))
