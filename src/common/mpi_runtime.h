// Process-level MPI state behind one header that compiles with and without
// MPI support.
//
// The distributed execution path (backend=mpi, solver/mpi_exchange.h) runs
// one rank per mesh shard. Everything rank-shaped the engine needs —
// initialization, the rank/size of the launch, the handful of collectives
// the solvers use — funnels through MpiRuntime so that non-MPI builds
// (EXASTP_WITH_MPI undefined, the default) contain no mpi.h include and
// degrade to a single-rank identity: rank() == 0, size() == 1, reductions
// return their input, barrier() is a no-op. Callers therefore never need
// their own #ifdefs; a build without MPI simply cannot construct the mpi
// exchange backend (make_exchange_backend fails with a clear message).
#pragma once

namespace exastp {

class MpiRuntime {
 public:
  /// True when the library was built with -DEXASTP_WITH_MPI=ON.
  static bool compiled_in();
  /// True when MPI_Init has run and MPI_Finalize has not (always false in
  /// non-MPI builds).
  static bool initialized();

  /// Initializes MPI (MPI_THREAD_FUNNELED — the steppers thread their cell
  /// loops but all MPI calls stay on the driving thread). Idempotent; a
  /// no-op in non-MPI builds, so drivers call it unconditionally.
  static void init(int* argc, char*** argv);
  /// Finalizes MPI if this process initialized it. Idempotent.
  static void finalize();
  /// Tears the whole multi-rank job down (MPI_Abort) so a rank that
  /// failed asymmetrically — e.g. threw while its peers sit in a
  /// collective — does not leave them hanging. No-op when MPI is absent
  /// or uninitialized; does not return otherwise.
  static void abort(int code);

  static int rank();
  static int size();

  /// Exact collectives for the lockstep time loop: min commutes bitwise,
  /// so every rank computes the identical stable dt.
  static double min_across_ranks(double value);
  /// Deterministic sum: gathers every rank's partial and adds them in rank
  /// order on every rank (norms stay reproducible across runs, though the
  /// association differs from the monolithic cell-order sum).
  static double ordered_sum_across_ranks(double value);
  static void barrier();
};

}  // namespace exastp
