// Aligned storage primitives shared by every exastp module.
//
// All hot tensors are 64-byte aligned so that AVX-512 loads of the padded
// leading dimension are always aligned, mirroring the memory discipline the
// paper's Kernel Generator emits (Sec. III-A).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace exastp {

/// Alignment (bytes) used for every tensor allocation. One cache line; also
/// the natural alignment of a full AVX-512 register.
inline constexpr std::size_t kAlignment = 64;

/// Minimal C++17 aligned allocator so std::vector storage is usable with
/// aligned SIMD loads and `__builtin_assume_aligned`.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    void* p = std::aligned_alloc(kAlignment, round_up_bytes(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }

 private:
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  static std::size_t round_up_bytes(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }
};

/// Aligned vector of any scalar type. The fp32 kernel path stores its
/// internal tensors as AlignedVectorT<float>; everything engine-facing
/// stays AlignedVector (double).
template <class T>
using AlignedVectorT = std::vector<T, AlignedAllocator<T>>;

/// Aligned vector of doubles: the workhorse storage type for DOFs, operator
/// tables and kernel scratch space.
using AlignedVector = AlignedVectorT<double>;

/// Aligned vector of floats: kernel-internal storage of the precision=fp32
/// path (DOF/flux/update tensors at half the bytes per value).
using AlignedVectorF = AlignedVectorT<float>;

/// Rounds `n` up to the next multiple of `multiple` (> 0). This is the
/// zero-padding rule applied to the leading tensor dimension (Sec. III-A).
constexpr int pad_to(int n, int multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

}  // namespace exastp
