// Taylor-series coefficients for the Cauchy-Kowalewsky time expansion.
//
// The STP accumulates `p[o] * dt^{o+1} / (o+1)!` (paper eq. (4)); computing
// the coefficient by recurrence avoids overflow of the factorial and keeps
// every kernel variant numerically identical.
#pragma once

#include <array>
#include <cstddef>

namespace exastp {

/// Maximum supported number of nodes per dimension (paper evaluates N<=11;
/// we leave headroom for the padding-ablation experiments).
inline constexpr int kMaxOrder = 15;

/// taylor_coefficients(dt, n)[o] == dt^{o+1} / (o+1)!  for o = 0..n-1.
/// These are the weights of eq. (4): integral of q over [t_n, t_n + dt].
inline std::array<double, kMaxOrder> taylor_coefficients(double dt, int n) {
  std::array<double, kMaxOrder> c{};
  double acc = dt;  // dt^1 / 1!
  for (int o = 0; o < n && o < kMaxOrder; ++o) {
    c[static_cast<std::size_t>(o)] = acc;
    acc *= dt / static_cast<double>(o + 2);
  }
  return c;
}

/// time_average_coefficients(dt, n)[o] == dt^o / (o+1)!  — the weights of
/// the *time-averaged* state (1/dt) * integral q dt. The kernels emit the
/// averaged (not integrated) state so the constant parameter rows of q pass
/// through unscaled, which keeps flux/ncp evaluations of the averaged state
/// well defined (see DESIGN.md, SplitCK favg recomputation).
inline std::array<double, kMaxOrder> time_average_coefficients(double dt,
                                                               int n) {
  std::array<double, kMaxOrder> c{};
  double acc = 1.0;  // dt^0 / 1!
  for (int o = 0; o < n && o < kMaxOrder; ++o) {
    c[static_cast<std::size_t>(o)] = acc;
    acc *= dt / static_cast<double>(o + 2);
  }
  return c;
}

}  // namespace exastp
