#include "exastp/common/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#ifdef EXASTP_HAVE_OPENMP
#include <omp.h>
#endif

#include "exastp/common/check.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int requested) {
  return requested < 1 ? hardware_threads() : requested;
}

namespace detail {

/// Persistent worker team. One job at a time: run() publishes a job under
/// the mutex, workers execute their fixed tid and report back, run()
/// returns when all workers finished. Plain mutex/condition_variable
/// signalling throughout so ThreadSanitizer sees every edge.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    workers_.reserve(workers);
    for (int tid = 0; tid < workers; ++tid)
      workers_.emplace_back([this, tid] { worker_loop(tid); });
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(tid) on every worker (tid in [1, workers]) while the caller
  /// runs fn(0); returns after all of them completed.
  void run(const std::function<void(int)>& fn) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ = &fn;
      remaining_ = workers();
      ++epoch_;
    }
    start_cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(int tid) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        job = job_;
      }
      (*job)(tid + 1);  // tid 0 is the caller
      std::unique_lock<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_, done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
};

}  // namespace detail

ParallelFor::ParallelFor(int threads) : threads_(resolve_threads(threads)) {
#ifndef EXASTP_HAVE_OPENMP
  if (threads_ > 1)
    pool_ = std::make_shared<detail::ThreadPool>(threads_ - 1);
#endif
}

namespace {

/// Chunk [begin, end) of tid's share of [0, n): ceil(n / threads) rounded
/// up to the granularity, clamped to n. Depends only on the arguments.
void chunk_bounds(long n, long granularity, int threads, int tid,
                  long* begin, long* end) {
  const long per =
      (n + threads - 1) / threads;
  const long step = (per + granularity - 1) / granularity * granularity;
  *begin = std::min<long>(n, static_cast<long>(tid) * step);
  *end = std::min<long>(n, *begin + step);
}

}  // namespace

void ParallelFor::run(long n, long granularity,
                      const std::function<void(int, long, long)>& fn) const {
  EXASTP_CHECK(n >= 0 && granularity >= 1);
  if (n == 0) return;
  if (threads_ == 1) {
    fn(0, 0, n);
    return;
  }

  const int nt = threads_;
  std::vector<std::exception_ptr> errors(nt);
  // Workers (OpenMP team members or pooled std::threads) carry no telemetry
  // installation of their own — hand them the caller's, so their spans and
  // FLOPs land in the run that spawned this region.
  const TelemetryEnv telemetry_env = TelemetryEnv::capture();
  auto body = [&](int tid) {
    long begin = 0, end = 0;
    chunk_bounds(n, granularity, nt, tid, &begin, &end);
    if (begin >= end) return;
    TelemetryEnv::Install install(telemetry_env);
    ScopedSpan region(SpanId::kParallelRegion, /*arg=*/n);
    try {
      fn(tid, begin, end);
    } catch (...) {
      errors[tid] = std::current_exception();
    }
  };

#ifdef EXASTP_HAVE_OPENMP
#pragma omp parallel for num_threads(nt) schedule(static)
  for (int tid = 0; tid < nt; ++tid) body(tid);
#else
  pool_->run(body);
#endif

  // First failing chunk wins, matching the serial first-throw behaviour.
  for (int tid = 0; tid < nt; ++tid)
    if (errors[tid]) std::rethrow_exception(errors[tid]);
}

void ParallelFor::for_each(long n,
                           const std::function<void(int, long)>& fn) const {
  run(n, 1, [&fn](int tid, long begin, long end) {
    for (long i = begin; i < end; ++i) fn(tid, i);
  });
}

std::vector<double> ordered_partials(const ParallelFor& par, long n,
                                     const std::function<double(long)>& fn) {
  std::vector<double> partials(static_cast<std::size_t>(n), 0.0);
  par.for_each(n, [&](int /*tid*/, long i) {
    partials[static_cast<std::size_t>(i)] = fn(i);
  });
  return partials;
}

}  // namespace exastp
