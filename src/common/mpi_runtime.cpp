#include "exastp/common/mpi_runtime.h"

#if defined(EXASTP_WITH_MPI)

#include <mpi.h>

#include <vector>

#include "exastp/common/check.h"

namespace exastp {

bool MpiRuntime::compiled_in() { return true; }

bool MpiRuntime::initialized() {
  int init = 0, fini = 0;
  MPI_Initialized(&init);
  if (init == 0) return false;
  MPI_Finalized(&fini);
  return fini == 0;
}

void MpiRuntime::init(int* argc, char*** argv) {
  int already = 0;
  MPI_Initialized(&already);
  if (already != 0) return;
  int provided = 0;
  MPI_Init_thread(argc, argv, MPI_THREAD_FUNNELED, &provided);
  // The steppers thread their cell loops while the driving thread talks
  // to MPI; an implementation granting only MPI_THREAD_SINGLE would make
  // that undefined — fail loudly instead of proceeding.
  EXASTP_CHECK_MSG(provided >= MPI_THREAD_FUNNELED,
                   "this MPI implementation does not provide "
                   "MPI_THREAD_FUNNELED");
}

void MpiRuntime::finalize() {
  if (!initialized()) return;
  MPI_Finalize();
}

void MpiRuntime::abort(int code) {
  if (!initialized()) return;
  MPI_Abort(MPI_COMM_WORLD, code);
}

int MpiRuntime::rank() {
  if (!initialized()) return 0;
  int rank = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  return rank;
}

int MpiRuntime::size() {
  if (!initialized()) return 1;
  int size = 1;
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  return size;
}

double MpiRuntime::min_across_ranks(double value) {
  if (!initialized()) return value;
  double result = value;
  MPI_Allreduce(&value, &result, 1, MPI_DOUBLE, MPI_MIN, MPI_COMM_WORLD);
  return result;
}

double MpiRuntime::ordered_sum_across_ranks(double value) {
  if (!initialized()) return value;
  std::vector<double> partials(static_cast<std::size_t>(size()), 0.0);
  MPI_Allgather(&value, 1, MPI_DOUBLE, partials.data(), 1, MPI_DOUBLE,
                MPI_COMM_WORLD);
  double sum = 0.0;
  for (double p : partials) sum += p;
  return sum;
}

void MpiRuntime::barrier() {
  if (!initialized()) return;
  MPI_Barrier(MPI_COMM_WORLD);
}

}  // namespace exastp

#else  // !EXASTP_WITH_MPI — the single-rank identity.

namespace exastp {

bool MpiRuntime::compiled_in() { return false; }
bool MpiRuntime::initialized() { return false; }
void MpiRuntime::init(int* /*argc*/, char*** /*argv*/) {}
void MpiRuntime::finalize() {}
void MpiRuntime::abort(int /*code*/) {}
int MpiRuntime::rank() { return 0; }
int MpiRuntime::size() { return 1; }
double MpiRuntime::min_across_ranks(double value) { return value; }
double MpiRuntime::ordered_sum_across_ranks(double value) { return value; }
void MpiRuntime::barrier() {}

}  // namespace exastp

#endif
