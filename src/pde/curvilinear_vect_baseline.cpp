#include "exastp/pde/curvilinear_vect_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_CURVI_KERNELS(baseline)

}  // namespace exastp::detail
