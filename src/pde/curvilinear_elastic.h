// The paper's benchmark PDE: linear elastodynamics on curvilinear
// boundary-fitted meshes (Sec. VI), m = 21 quantities per node:
//
//   0..2   particle velocity v
//   3..8   stress sigma, Voigt order (xx, yy, zz, yz, xz, xy)
//   9..11  material: rho, cp, cs
//   12..20 geometry: metric tensor G, row-major, G[r][c] = d(xi_r)/d(x_c)
//          (the per-node Jacobian of the curvilinear transformation)
//
// The reference-coordinate evolution splits across both user-function paths,
// as in the ExaHyPE seismic application:
//   * velocity rows through the conservative flux:
//       F~_d(v_i) = sum_e G[d][e] sigma_{i e} / rho
//   * stress rows through the non-conservative product:
//       B~_d picks up the metric-weighted velocity gradients.
//
// With the identity metric this reduces exactly to ElasticPde split into a
// flux part and an NCP part — the cross-PDE equivalence test in
// test_kernels.cpp relies on that. For genuinely curved meshes the metric
// varies per node; the scheme treats it as a frozen coefficient field, which
// preserves the computational pattern of [8] (this reproduction does not
// claim pointwise agreement with the physical curvilinear equations, see
// DESIGN.md).
#pragma once

#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/pde/curvilinear_vect_impl.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

struct CurvilinearElasticPde {
  static constexpr int kVars = 9;
  static constexpr int kParams = 12;
  static constexpr int kQuants = kVars + kParams;  // the paper's m = 21
  static constexpr const char* kName = "curvilinear_elastic";
  // Per pointwise call: 9 mult + 6 add + 3 mult (inv_rho) + 1 div ~= 19.
  static constexpr std::uint64_t kFluxFlops = 19;
  // lambda/mu/l2m: 6, metric-gradient products: 3, stress rows: ~24.
  static constexpr std::uint64_t kNcpFlops = 33;

  static constexpr int kVx = 0, kVy = 1, kVz = 2;
  static constexpr int kSxx = 3, kSyy = 4, kSzz = 5;
  static constexpr int kSyz = 6, kSxz = 7, kSxy = 8;
  static constexpr int kRho = 9, kCp = 10, kCs = 11;
  static constexpr int kMetric = 12;  // + 3*r + c

  /// Pointwise user functions are templated on the scalar type so the fp32
  /// kernels call them on float rows with zero conversion staging; literals
  /// are cast to Real to keep fp32 arithmetic from promoting to double.
  template <class Real>
  void flux(const Real* q, int dir, Real* f) const {
    const Real g0 = q[kMetric + 3 * dir + 0];
    const Real g1 = q[kMetric + 3 * dir + 1];
    const Real g2 = q[kMetric + 3 * dir + 2];
    const Real inv_rho = Real(1) / q[kRho];
    for (int s = 0; s < kQuants; ++s) f[s] = Real(0);
    f[kVx] = (g0 * q[kSxx] + g1 * q[kSxy] + g2 * q[kSxz]) * inv_rho;
    f[kVy] = (g0 * q[kSxy] + g1 * q[kSyy] + g2 * q[kSyz]) * inv_rho;
    f[kVz] = (g0 * q[kSxz] + g1 * q[kSyz] + g2 * q[kSzz]) * inv_rho;
  }

  template <class Real>
  void ncp(const Real* q, const Real* grad, int dir, Real* out) const {
    const Real g0 = q[kMetric + 3 * dir + 0];
    const Real g1 = q[kMetric + 3 * dir + 1];
    const Real g2 = q[kMetric + 3 * dir + 2];
    const Real mu = q[kRho] * q[kCs] * q[kCs];
    const Real lam = q[kRho] * q[kCp] * q[kCp] - Real(2) * mu;
    const Real l2m = lam + Real(2) * mu;
    for (int s = 0; s < kQuants; ++s) out[s] = Real(0);
    const Real dvx = g0 * grad[kVx];
    const Real dvy = g1 * grad[kVy];
    const Real dvz = g2 * grad[kVz];
    out[kSxx] = l2m * dvx + lam * (dvy + dvz);
    out[kSyy] = lam * dvx + l2m * dvy + lam * dvz;
    out[kSzz] = lam * (dvx + dvy) + l2m * dvz;
    out[kSyz] = mu * (g2 * grad[kVy] + g1 * grad[kVz]);
    out[kSxz] = mu * (g2 * grad[kVx] + g0 * grad[kVz]);
    out[kSxy] = mu * (g1 * grad[kVx] + g0 * grad[kVy]);
  }

  double max_wave_speed(const double* q, int dir) const {
    const double g0 = q[kMetric + 3 * dir + 0];
    const double g1 = q[kMetric + 3 * dir + 1];
    const double g2 = q[kMetric + 3 * dir + 2];
    return q[kCp] * std::sqrt(g0 * g0 + g1 * g1 + g2 * g2);
  }

  /// Vectorized user functions: dispatched to the ISA-specific translation
  /// units, so an AVX-512 run genuinely executes 512-bit packed user
  /// functions (paper Sec. V-C / Fig. 9 "AoSoA SplitCK"). The float
  /// overloads hit the _f32 entry points of the same TUs (same schedule,
  /// twice the lanes); the FLOP accounting is identical by convention —
  /// fp32 lanes are counted at the double packing width (see gemm.h).
  void flux_line(Isa isa, const double* q, int dir, double* f, int len,
                 int stride) const {
    switch (isa) {
      case Isa::kScalar:
        detail::curvi_flux_line_baseline(q, dir, f, len, stride);
        break;
      case Isa::kAvx2:
        detail::curvi_flux_line_avx2(q, dir, f, len, stride);
        break;
      case Isa::kAvx512:
        detail::curvi_flux_line_avx512(q, dir, f, len, stride);
        break;
    }
    count_packed_flops(isa, len, kFluxFlops);
  }

  void flux_line(Isa isa, const float* q, int dir, float* f, int len,
                 int stride) const {
    switch (isa) {
      case Isa::kScalar:
        detail::curvi_flux_line_baseline_f32(q, dir, f, len, stride);
        break;
      case Isa::kAvx2:
        detail::curvi_flux_line_avx2_f32(q, dir, f, len, stride);
        break;
      case Isa::kAvx512:
        detail::curvi_flux_line_avx512_f32(q, dir, f, len, stride);
        break;
    }
    count_packed_flops(isa, len, kFluxFlops);
  }

  void ncp_line(Isa isa, const double* q, const double* grad, int dir,
                double* out, int len, int stride) const {
    switch (isa) {
      case Isa::kScalar:
        detail::curvi_ncp_line_baseline(q, grad, dir, out, len, stride);
        break;
      case Isa::kAvx2:
        detail::curvi_ncp_line_avx2(q, grad, dir, out, len, stride);
        break;
      case Isa::kAvx512:
        detail::curvi_ncp_line_avx512(q, grad, dir, out, len, stride);
        break;
    }
    count_packed_flops(isa, len, kNcpFlops);
  }

  void ncp_line(Isa isa, const float* q, const float* grad, int dir,
                float* out, int len, int stride) const {
    switch (isa) {
      case Isa::kScalar:
        detail::curvi_ncp_line_baseline_f32(q, grad, dir, out, len, stride);
        break;
      case Isa::kAvx2:
        detail::curvi_ncp_line_avx2_f32(q, grad, dir, out, len, stride);
        break;
      case Isa::kAvx512:
        detail::curvi_ncp_line_avx512_f32(q, grad, dir, out, len, stride);
        break;
    }
    count_packed_flops(isa, len, kNcpFlops);
  }
};

}  // namespace exastp
