// Linear advection systems — the simplest linear hyperbolic PDE, used for
// exact-solution convergence tests and for the flux-vs-NCP equivalence
// property (the same physics expressed through both user-function paths must
// give identical discrete solutions).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

/// m decoupled advected quantities, all moving with one velocity vector:
/// dq/dt + a . grad q = 0, written in conservative form F_d = -a_d q.
struct AdvectionPde {
  static constexpr int kVars = 5;
  static constexpr int kParams = 0;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "advection";
  static constexpr std::uint64_t kFluxFlops = kVars;  // one mult per quantity
  static constexpr std::uint64_t kNcpFlops = 0;
  /// ncp() writes zeros unconditionally — kernels skip the stage.
  static constexpr bool kNcpIsZero = true;

  std::array<double, 3> velocity{1.0, 0.5, 0.25};

  /// Pointwise user functions are templated on the scalar type (fp32
  /// kernels call them on float rows directly); the velocity coefficient is
  /// narrowed once outside the loop.
  template <class Real>
  void flux(const Real* q, int dir, Real* f) const {
    const Real a = static_cast<Real>(-velocity[dir]);
    for (int s = 0; s < kQuants; ++s) f[s] = a * q[s];
  }

  template <class Real>
  void ncp(const Real* /*q*/, const Real* /*grad*/, int /*dir*/,
           Real* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = Real(0);
  }

  double max_wave_speed(const double* /*q*/, int dir) const {
    return std::abs(velocity[dir]);
  }

  /// Vectorized user function on an SoA chunk: quantity s occupies
  /// q[s*stride + i] for lanes i in [0, len). Mirrors Fig. 8 of the paper.
  /// Header implementation compiles at baseline ISA; counted as such.
  template <class Real>
  void flux_line(Isa /*isa*/, const Real* q, int dir, Real* f, int len,
                 int stride) const {
    const Real a = static_cast<Real>(-velocity[dir]);
    for (int s = 0; s < kQuants; ++s) {
      const Real* qs = q + s * stride;
      Real* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = a * qs[i];
    }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  template <class Real>
  void ncp_line(Isa /*isa*/, const Real* /*q*/, const Real* /*grad*/,
                int /*dir*/, Real* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      Real* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = Real(0);
    }
  }
};

/// The same physics expressed purely through the non-conservative product:
/// F = 0 and B_d = -a_d * I. Discretely equivalent to AdvectionPde because
/// the velocity is constant — the kernels' flux and NCP code paths must
/// produce identical predictors (tested in test_kernels.cpp).
struct AdvectionNcpPde {
  static constexpr int kVars = 5;
  static constexpr int kParams = 0;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "advection_ncp";
  static constexpr std::uint64_t kFluxFlops = 0;
  static constexpr std::uint64_t kNcpFlops = kVars;
  /// F is identically zero: the flux derivative GEMMs are skipped outright
  /// (the physics lives entirely in the non-conservative product).
  static constexpr int flux_rows_end(int /*dir*/) { return 0; }

  std::array<double, 3> velocity{1.0, 0.5, 0.25};

  template <class Real>
  void flux(const Real* /*q*/, int /*dir*/, Real* f) const {
    for (int s = 0; s < kQuants; ++s) f[s] = Real(0);
  }

  template <class Real>
  void ncp(const Real* /*q*/, const Real* grad, int dir,
           Real* out) const {
    const Real a = static_cast<Real>(-velocity[dir]);
    for (int s = 0; s < kQuants; ++s) out[s] = a * grad[s];
  }

  double max_wave_speed(const double* /*q*/, int dir) const {
    return std::abs(velocity[dir]);
  }

  template <class Real>
  void flux_line(Isa /*isa*/, const Real* /*q*/, int /*dir*/, Real* f,
                 int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      Real* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = Real(0);
    }
  }

  template <class Real>
  void ncp_line(Isa /*isa*/, const Real* /*q*/, const Real* grad,
                int dir, Real* out, int len, int stride) const {
    const Real a = static_cast<Real>(-velocity[dir]);
    for (int s = 0; s < kQuants; ++s) {
      const Real* gs = grad + s * stride;
      Real* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = a * gs[i];
    }
    count_packed_flops(Isa::kScalar, len, kNcpFlops);
  }
};

}  // namespace exastp
