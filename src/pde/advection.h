// Linear advection systems — the simplest linear hyperbolic PDE, used for
// exact-solution convergence tests and for the flux-vs-NCP equivalence
// property (the same physics expressed through both user-function paths must
// give identical discrete solutions).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

/// m decoupled advected quantities, all moving with one velocity vector:
/// dq/dt + a . grad q = 0, written in conservative form F_d = -a_d q.
struct AdvectionPde {
  static constexpr int kVars = 5;
  static constexpr int kParams = 0;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "advection";
  static constexpr std::uint64_t kFluxFlops = kVars;  // one mult per quantity
  static constexpr std::uint64_t kNcpFlops = 0;

  std::array<double, 3> velocity{1.0, 0.5, 0.25};

  void flux(const double* q, int dir, double* f) const {
    const double a = -velocity[dir];
    for (int s = 0; s < kQuants; ++s) f[s] = a * q[s];
  }

  void ncp(const double* /*q*/, const double* /*grad*/, int /*dir*/,
           double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = 0.0;
  }

  double max_wave_speed(const double* /*q*/, int dir) const {
    return std::abs(velocity[dir]);
  }

  /// Vectorized user function on an SoA chunk: quantity s occupies
  /// q[s*stride + i] for lanes i in [0, len). Mirrors Fig. 8 of the paper.
  /// Header implementation compiles at baseline ISA; counted as such.
  void flux_line(Isa /*isa*/, const double* q, int dir, double* f, int len,
                 int stride) const {
    const double a = -velocity[dir];
    for (int s = 0; s < kQuants; ++s) {
      const double* qs = q + s * stride;
      double* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = a * qs[i];
    }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  void ncp_line(Isa /*isa*/, const double* /*q*/, const double* /*grad*/,
                int /*dir*/, double* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      double* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = 0.0;
    }
  }
};

/// The same physics expressed purely through the non-conservative product:
/// F = 0 and B_d = -a_d * I. Discretely equivalent to AdvectionPde because
/// the velocity is constant — the kernels' flux and NCP code paths must
/// produce identical predictors (tested in test_kernels.cpp).
struct AdvectionNcpPde {
  static constexpr int kVars = 5;
  static constexpr int kParams = 0;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "advection_ncp";
  static constexpr std::uint64_t kFluxFlops = 0;
  static constexpr std::uint64_t kNcpFlops = kVars;

  std::array<double, 3> velocity{1.0, 0.5, 0.25};

  void flux(const double* /*q*/, int /*dir*/, double* f) const {
    for (int s = 0; s < kQuants; ++s) f[s] = 0.0;
  }

  void ncp(const double* /*q*/, const double* grad, int dir,
           double* out) const {
    const double a = -velocity[dir];
    for (int s = 0; s < kQuants; ++s) out[s] = a * grad[s];
  }

  double max_wave_speed(const double* /*q*/, int dir) const {
    return std::abs(velocity[dir]);
  }

  void flux_line(Isa /*isa*/, const double* /*q*/, int /*dir*/, double* f,
                 int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      double* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = 0.0;
    }
  }

  void ncp_line(Isa /*isa*/, const double* /*q*/, const double* grad,
                int dir, double* out, int len, int stride) const {
    const double a = -velocity[dir];
    for (int s = 0; s < kQuants; ++s) {
      const double* gs = grad + s * stride;
      double* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = a * gs[i];
    }
    count_packed_flops(Isa::kScalar, len, kNcpFlops);
  }
};

}  // namespace exastp
