// 3-D isotropic linear elastodynamics in first-order velocity-stress form,
// conservative flux formulation (cell-wise constant material):
//
//   rho dv_i/dt      = sum_j d(sigma_ij)/dx_j
//   d(sigma_ij)/dt   = lambda delta_ij div(v) + mu (dv_i/dx_j + dv_j/dx_i)
//
// Quantities: v (3), sigma in Voigt order (xx, yy, zz, yz, xz, xy), and the
// material parameters rho, cp, cs per node. This is the 9+3 = 12 quantity
// system underlying the paper's seismic application [8]; the full m = 21
// benchmark adds nine curvilinear-geometry entries (curvilinear_elastic.h).
#pragma once

#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

struct ElasticPde {
  static constexpr int kVars = 9;
  static constexpr int kParams = 3;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "elastic";
  // lambda/mu: 5, velocity rows: 3 divides, stress rows: 8 mult/add.
  static constexpr std::uint64_t kFluxFlops = 16;
  static constexpr std::uint64_t kNcpFlops = 0;
  /// Cartesian-mesh form is purely conservative: ncp() writes zeros.
  static constexpr bool kNcpIsZero = true;

  // Quantity indices.
  static constexpr int kVx = 0, kVy = 1, kVz = 2;
  static constexpr int kSxx = 3, kSyy = 4, kSzz = 5;
  static constexpr int kSyz = 6, kSxz = 7, kSxy = 8;
  static constexpr int kRho = 9, kCp = 10, kCs = 11;

  /// sigma column for direction d: the stresses acting on the d-face.
  /// stress_col[d] = {sigma_xd, sigma_yd, sigma_zd} as Voigt indices.
  static constexpr int kStressCol[3][3] = {
      {kSxx, kSxy, kSxz}, {kSxy, kSyy, kSyz}, {kSxz, kSyz, kSzz}};

  template <class Real>
  static Real lame_lambda(const Real* q) {
    return q[kRho] * (q[kCp] * q[kCp] - Real(2) * q[kCs] * q[kCs]);
  }
  template <class Real>
  static Real lame_mu(const Real* q) {
    return q[kRho] * q[kCs] * q[kCs];
  }

  /// Pointwise user functions are templated on the scalar type (fp32
  /// kernels call them on float rows directly); literals are cast to Real
  /// so fp32 arithmetic does not promote to double.
  template <class Real>
  void flux(const Real* q, int dir, Real* f) const {
    const Real rho = q[kRho];
    const Real lam = lame_lambda(q);
    const Real mu = lame_mu(q);
    const Real lam2mu = lam + Real(2) * mu;
    for (int s = 0; s < kQuants; ++s) f[s] = Real(0);
    // Velocity rows: F_d(v_i) = sigma_{i d} / rho.
    f[kVx] = q[kStressCol[dir][0]] / rho;
    f[kVy] = q[kStressCol[dir][1]] / rho;
    f[kVz] = q[kStressCol[dir][2]] / rho;
    // Stress rows: F_d(sigma_ij) = lambda delta_ij v_d
    //                              + mu (delta_id v_j + delta_jd v_i).
    const Real vd = q[kVx + dir];
    f[kSxx] = (dir == 0 ? lam2mu : lam) * vd;
    f[kSyy] = (dir == 1 ? lam2mu : lam) * vd;
    f[kSzz] = (dir == 2 ? lam2mu : lam) * vd;
    switch (dir) {
      case 0:
        f[kSxz] = mu * q[kVz];
        f[kSxy] = mu * q[kVy];
        break;
      case 1:
        f[kSyz] = mu * q[kVz];
        f[kSxy] = mu * q[kVx];
        break;
      case 2:
        f[kSyz] = mu * q[kVy];
        f[kSxz] = mu * q[kVx];
        break;
    }
  }

  template <class Real>
  void ncp(const Real* /*q*/, const Real* /*grad*/, int /*dir*/,
           Real* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = Real(0);
  }

  double max_wave_speed(const double* q, int /*dir*/) const {
    return q[kCp];
  }

  /// Rigid wall: the normal velocity component mirrors.
  void wall_reflect(const double* q, int dir, double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = q[s];
    out[kVx + dir] = -q[kVx + dir];
  }

  template <class Real>
  void flux_line(Isa /*isa*/, const Real* q, int dir, Real* f, int len,
                 int stride) const {
    auto row = [&](int s) { return q + s * stride; };
    auto out = [&](int s) { return f + s * stride; };
    for (int s = 0; s < kQuants; ++s) {
      Real* fs = out(s);
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = Real(0);
    }
    const Real* rho = row(kRho);
    const Real* cp = row(kCp);
    const Real* cs = row(kCs);
    const Real* vd = row(kVx + dir);
    const int c0 = kStressCol[dir][0], c1 = kStressCol[dir][1],
              c2 = kStressCol[dir][2];
    Real* fvx = out(kVx);
    Real* fvy = out(kVy);
    Real* fvz = out(kVz);
    Real* fsxx = out(kSxx);
    Real* fsyy = out(kSyy);
    Real* fszz = out(kSzz);
#pragma omp simd
    for (int i = 0; i < len; ++i) {
      // Guard against zero-padded lanes (rho = 0): Sec. V-C.
      const Real inv_rho = rho[i] != Real(0) ? Real(1) / rho[i] : Real(0);
      const Real mu = rho[i] * cs[i] * cs[i];
      const Real lam = rho[i] * cp[i] * cp[i] - Real(2) * mu;
      fvx[i] = row(c0)[i] * inv_rho;
      fvy[i] = row(c1)[i] * inv_rho;
      fvz[i] = row(c2)[i] * inv_rho;
      fsxx[i] = (dir == 0 ? lam + Real(2) * mu : lam) * vd[i];
      fsyy[i] = (dir == 1 ? lam + Real(2) * mu : lam) * vd[i];
      fszz[i] = (dir == 2 ? lam + Real(2) * mu : lam) * vd[i];
    }
    Real* fa = nullptr;
    Real* fb = nullptr;
    const Real* va = nullptr;
    const Real* vb = nullptr;
    switch (dir) {
      case 0: fa = out(kSxz); va = row(kVz); fb = out(kSxy); vb = row(kVy); break;
      case 1: fa = out(kSyz); va = row(kVz); fb = out(kSxy); vb = row(kVx); break;
      case 2: fa = out(kSyz); va = row(kVy); fb = out(kSxz); vb = row(kVx); break;
    }
    const Real* rho2 = row(kRho);
    const Real* cs2 = row(kCs);
#pragma omp simd
    for (int i = 0; i < len; ++i) {
      const Real mu = rho2[i] * cs2[i] * cs2[i];
      fa[i] = mu * va[i];
      fb[i] = mu * vb[i];
    }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  template <class Real>
  void ncp_line(Isa /*isa*/, const Real* /*q*/, const Real* /*grad*/,
                int /*dir*/, Real* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      Real* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = Real(0);
    }
  }
};

}  // namespace exastp
