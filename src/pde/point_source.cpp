#include "exastp/pde/point_source.h"

#include <cmath>

#include "exastp/basis/lagrange.h"
#include "exastp/common/check.h"

namespace exastp {

double hermite(int n, double x) {
  // H_0 = 1, H_1 = 2x, H_{n+1} = 2x H_n - 2n H_{n-1}.
  double h0 = 1.0, h1 = 2.0 * x;
  if (n == 0) return h0;
  for (int j = 2; j <= n; ++j) {
    const double h2 = 2.0 * x * h1 - 2.0 * (j - 1) * h0;
    h0 = h1;
    h1 = h2;
  }
  return h1;
}

double RickerWavelet::derivative(double t, int o) const {
  const double tau = t - t0_;
  const double sqrt_a = std::sqrt(a_);
  // g(t) = exp(-a tau^2); g^{(n)}(t) = (-sqrt(a))^n H_n(sqrt(a) tau) g(t).
  // s(t) = -g''(t) / (2a)  =>  s^{(o)}(t) = -g^{(o+2)}(t) / (2a).
  const int n = o + 2;
  const double g = std::exp(-a_ * tau * tau);
  const double sign = (n % 2 == 0) ? 1.0 : -1.0;
  const double gn = sign * std::pow(sqrt_a, n) * hermite(n, sqrt_a * tau) * g;
  return -gn / (2.0 * a_);
}

double PolynomialWavelet::derivative(double t, int o) const {
  // d^o/dt^o sum_i c_i t^i = sum_{i>=o} c_i * i!/(i-o)! * t^{i-o}.
  double value = 0.0;
  for (std::size_t i = static_cast<std::size_t>(o); i < c_.size(); ++i) {
    double factor = 1.0;
    for (std::size_t j = i; j > i - static_cast<std::size_t>(o); --j)
      factor *= static_cast<double>(j);
    value += c_[i] * factor * std::pow(t, static_cast<double>(i) - o);
  }
  return value;
}

AlignedVector project_point_source(const BasisTables& basis,
                                   const std::array<double, 3>& xi0,
                                   double volume) {
  EXASTP_CHECK_MSG(volume > 0.0, "cell volume must be positive");
  for (double c : xi0)
    EXASTP_CHECK_MSG(c >= 0.0 && c <= 1.0,
                     "source must lie inside the reference cell");
  const int n = basis.n;
  std::array<std::vector<double>, 3> phi;
  for (int d = 0; d < 3; ++d) {
    phi[d].resize(n);
    for (int j = 0; j < n; ++j)
      phi[d][j] = lagrange_value(basis.nodes, j, xi0[d]);
  }
  AlignedVector psi(static_cast<std::size_t>(n) * n * n);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        const double mass =
            basis.weights[k1] * basis.weights[k2] * basis.weights[k3] * volume;
        psi[(static_cast<std::size_t>(k3) * n + k2) * n + k1] =
            phi[2][k3] * phi[1][k2] * phi[0][k1] / mass;
      }
  return psi;
}

}  // namespace exastp
