// Source-free Maxwell's equations in linear isotropic media — a second
// full application domain for the engine (ExaHyPE's scope is "a wide class
// of systems of linear and non-linear hyperbolic PDEs", Sec. II):
//
//   dE/dt =  (1/eps) curl H        F_j(E_i) =  levi(i,j,k) H_k / eps
//   dH/dt = -(1/mu)  curl E        F_j(H_i) = -levi(i,j,k) E_k / mu
//
// Quantities: E (3), H (3), parameters eps, mu per node. Conservative flux
// form for cell-wise constant media; wave speed c = 1/sqrt(eps mu). A PEC
// (perfect electric conductor) wall mirrors the tangential E and the normal
// H components.
#pragma once

#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

struct MaxwellPde {
  static constexpr int kVars = 6;
  static constexpr int kParams = 2;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "maxwell";
  // Per pointwise call: 2 divides + 4 signed copies ~ 6.
  static constexpr std::uint64_t kFluxFlops = 6;
  static constexpr std::uint64_t kNcpFlops = 0;
  /// Pure conservation form: ncp() writes zeros unconditionally.
  static constexpr bool kNcpIsZero = true;

  static constexpr int kEx = 0, kEy = 1, kEz = 2;
  static constexpr int kHx = 3, kHy = 4, kHz = 5;
  static constexpr int kEps = 6, kMu = 7;

  /// Levi-Civita symbol, 0-indexed.
  static constexpr double levi(int i, int j, int k) {
    if (i == j || j == k || i == k) return 0.0;
    return ((j - i + 3) % 3 == 1) ? 1.0 : -1.0;
  }

  /// Pointwise user functions are templated on the scalar type (fp32
  /// kernels call them on float rows directly); the Levi-Civita factor is
  /// cast to Real so fp32 arithmetic does not promote to double.
  template <class Real>
  void flux(const Real* q, int dir, Real* f) const {
    const Real inv_eps = Real(1) / q[kEps];
    const Real inv_mu = Real(1) / q[kMu];
    for (int s = 0; s < kQuants; ++s) f[s] = Real(0);
    for (int i = 0; i < 3; ++i)
      for (int k = 0; k < 3; ++k) {
        const Real e = static_cast<Real>(levi(i, dir, k));
        if (e == Real(0)) continue;
        f[kEx + i] += e * q[kHx + k] * inv_eps;
        f[kHx + i] -= e * q[kEx + k] * inv_mu;
      }
  }

  template <class Real>
  void ncp(const Real* /*q*/, const Real* /*grad*/, int /*dir*/,
           Real* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = Real(0);
  }

  double max_wave_speed(const double* q, int /*dir*/) const {
    return 1.0 / std::sqrt(q[kEps] * q[kMu]);
  }

  /// PEC wall: tangential E and normal H flip sign.
  void wall_reflect(const double* q, int dir, double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = q[s];
    for (int i = 0; i < 3; ++i)
      if (i != dir) out[kEx + i] = -q[kEx + i];
    out[kHx + dir] = -q[kHx + dir];
  }

  template <class Real>
  void flux_line(Isa /*isa*/, const Real* q, int dir, Real* f, int len,
                 int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      Real* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = Real(0);
    }
    const Real* eps = q + kEps * stride;
    const Real* mu = q + kMu * stride;
    for (int i = 0; i < 3; ++i)
      for (int k = 0; k < 3; ++k) {
        const Real e = static_cast<Real>(levi(i, dir, k));
        if (e == Real(0)) continue;
        Real* fe = f + (kEx + i) * stride;
        Real* fh = f + (kHx + i) * stride;
        const Real* hk = q + (kHx + k) * stride;
        const Real* ek = q + (kEx + k) * stride;
#pragma omp simd
        for (int l = 0; l < len; ++l) {
          // Zero-padded lanes carry eps = mu = 0; guard the divisions.
          fe[l] += eps[l] != Real(0) ? e * hk[l] / eps[l] : Real(0);
          fh[l] -= mu[l] != Real(0) ? e * ek[l] / mu[l] : Real(0);
        }
      }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  template <class Real>
  void ncp_line(Isa /*isa*/, const Real* /*q*/, const Real* /*grad*/,
                int /*dir*/, Real* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      Real* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = Real(0);
    }
  }
};

}  // namespace exastp
