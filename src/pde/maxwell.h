// Source-free Maxwell's equations in linear isotropic media — a second
// full application domain for the engine (ExaHyPE's scope is "a wide class
// of systems of linear and non-linear hyperbolic PDEs", Sec. II):
//
//   dE/dt =  (1/eps) curl H        F_j(E_i) =  levi(i,j,k) H_k / eps
//   dH/dt = -(1/mu)  curl E        F_j(H_i) = -levi(i,j,k) E_k / mu
//
// Quantities: E (3), H (3), parameters eps, mu per node. Conservative flux
// form for cell-wise constant media; wave speed c = 1/sqrt(eps mu). A PEC
// (perfect electric conductor) wall mirrors the tangential E and the normal
// H components.
#pragma once

#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

struct MaxwellPde {
  static constexpr int kVars = 6;
  static constexpr int kParams = 2;
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "maxwell";
  // Per pointwise call: 2 divides + 4 signed copies ~ 6.
  static constexpr std::uint64_t kFluxFlops = 6;
  static constexpr std::uint64_t kNcpFlops = 0;

  static constexpr int kEx = 0, kEy = 1, kEz = 2;
  static constexpr int kHx = 3, kHy = 4, kHz = 5;
  static constexpr int kEps = 6, kMu = 7;

  /// Levi-Civita symbol, 0-indexed.
  static constexpr double levi(int i, int j, int k) {
    if (i == j || j == k || i == k) return 0.0;
    return ((j - i + 3) % 3 == 1) ? 1.0 : -1.0;
  }

  void flux(const double* q, int dir, double* f) const {
    const double inv_eps = 1.0 / q[kEps];
    const double inv_mu = 1.0 / q[kMu];
    for (int s = 0; s < kQuants; ++s) f[s] = 0.0;
    for (int i = 0; i < 3; ++i)
      for (int k = 0; k < 3; ++k) {
        const double e = levi(i, dir, k);
        if (e == 0.0) continue;
        f[kEx + i] += e * q[kHx + k] * inv_eps;
        f[kHx + i] -= e * q[kEx + k] * inv_mu;
      }
  }

  void ncp(const double* /*q*/, const double* /*grad*/, int /*dir*/,
           double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = 0.0;
  }

  double max_wave_speed(const double* q, int /*dir*/) const {
    return 1.0 / std::sqrt(q[kEps] * q[kMu]);
  }

  /// PEC wall: tangential E and normal H flip sign.
  void wall_reflect(const double* q, int dir, double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = q[s];
    for (int i = 0; i < 3; ++i)
      if (i != dir) out[kEx + i] = -q[kEx + i];
    out[kHx + dir] = -q[kHx + dir];
  }

  void flux_line(Isa /*isa*/, const double* q, int dir, double* f, int len,
                 int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      double* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = 0.0;
    }
    const double* eps = q + kEps * stride;
    const double* mu = q + kMu * stride;
    for (int i = 0; i < 3; ++i)
      for (int k = 0; k < 3; ++k) {
        const double e = levi(i, dir, k);
        if (e == 0.0) continue;
        double* fe = f + (kEx + i) * stride;
        double* fh = f + (kHx + i) * stride;
        const double* hk = q + (kHx + k) * stride;
        const double* ek = q + (kEx + k) * stride;
#pragma omp simd
        for (int l = 0; l < len; ++l) {
          // Zero-padded lanes carry eps = mu = 0; guard the divisions.
          fe[l] += eps[l] != 0.0 ? e * hk[l] / eps[l] : 0.0;
          fh[l] -= mu[l] != 0.0 ? e * ek[l] / mu[l] : 0.0;
        }
      }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  void ncp_line(Isa /*isa*/, const double* /*q*/, const double* /*grad*/,
                int /*dir*/, double* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      double* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = 0.0;
    }
  }
};

}  // namespace exastp
