#include "exastp/pde/curvilinear_vect_impl.h"

namespace exastp::detail {

EXASTP_DEFINE_CURVI_KERNELS(avx2)

}  // namespace exastp::detail
