// 3-D linear acoustics in pressure/velocity form.
//
//   dp/dt  = -rho c^2  div(v)
//   dv/dt  = -(1/rho) grad(p)
//
// Material parameters rho (density) and c (sound speed) ride along as
// per-node quantities with zero flux rows, the same storage discipline the
// paper uses for its m = 21 elastic benchmark. With cell-wise constant
// material the system is conservative, and plane waves
// p = sin(k.x - w t), v = (k/(rho c |k|)) sin(k.x - w t) give exact
// solutions for the solver convergence tests.
#pragma once

#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

struct AcousticPde {
  static constexpr int kVars = 4;    // p, vx, vy, vz
  static constexpr int kParams = 2;  // rho, c
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "acoustic";
  // p-row: rho*c*c*v_d (3 mults), v-row: p/rho (1 div counted as 1 flop).
  static constexpr std::uint64_t kFluxFlops = 4;
  static constexpr std::uint64_t kNcpFlops = 0;

  static constexpr int kP = 0, kVx = 1, kRho = 4, kC = 5;

  void flux(const double* q, int dir, double* f) const {
    const double rho = q[kRho], c = q[kC];
    f[kP] = -rho * c * c * q[kVx + dir];
    f[kVx + 0] = 0.0;
    f[kVx + 1] = 0.0;
    f[kVx + 2] = 0.0;
    f[kVx + dir] = -q[kP] / rho;
    f[kRho] = 0.0;
    f[kC] = 0.0;
  }

  void ncp(const double* /*q*/, const double* /*grad*/, int /*dir*/,
           double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = 0.0;
  }

  double max_wave_speed(const double* q, int /*dir*/) const {
    return q[kC];
  }

  /// Rigid wall: normal velocity mirrors, pressure and tangential velocity
  /// copy — the classic ghost state that zeroes v.n at the face.
  void wall_reflect(const double* q, int dir, double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = q[s];
    out[kVx + dir] = -q[kVx + dir];
  }

  void flux_line(Isa /*isa*/, const double* q, int dir, double* f, int len,
                 int stride) const {
    const double* p = q + kP * stride;
    const double* vd = q + (kVx + dir) * stride;
    const double* rho = q + kRho * stride;
    const double* c = q + kC * stride;
    double* fp = f + kP * stride;
    for (int s = kVx; s < kQuants; ++s) {
      double* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = 0.0;
    }
    double* fvd = f + (kVx + dir) * stride;
#pragma omp simd
    for (int i = 0; i < len; ++i) {
      fp[i] = -rho[i] * c[i] * c[i] * vd[i];
      // Padded lanes carry rho = 0; guard the division so zero-padding stays
      // a valid input (the numerical hazard Sec. V-C warns about).
      fvd[i] = rho[i] != 0.0 ? -p[i] / rho[i] : 0.0;
    }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  void ncp_line(Isa /*isa*/, const double* /*q*/, const double* /*grad*/,
                int /*dir*/, double* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      double* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = 0.0;
    }
  }
};

}  // namespace exastp
