// 3-D linear acoustics in pressure/velocity form.
//
//   dp/dt  = -rho c^2  div(v)
//   dv/dt  = -(1/rho) grad(p)
//
// Material parameters rho (density) and c (sound speed) ride along as
// per-node quantities with zero flux rows, the same storage discipline the
// paper uses for its m = 21 elastic benchmark. With cell-wise constant
// material the system is conservative, and plane waves
// p = sin(k.x - w t), v = (k/(rho c |k|)) sin(k.x - w t) give exact
// solutions for the solver convergence tests.
#pragma once

#include <cmath>
#include <cstdint>

#include "exastp/common/simd.h"
#include "exastp/perf/flop_count.h"

namespace exastp {

struct AcousticPde {
  static constexpr int kVars = 4;    // p, vx, vy, vz
  static constexpr int kParams = 2;  // rho, c
  static constexpr int kQuants = kVars + kParams;
  static constexpr const char* kName = "acoustic";
  // p-row: rho*c*c*v_d (3 mults), v-row: p/rho (1 div counted as 1 flop).
  static constexpr std::uint64_t kFluxFlops = 4;
  static constexpr std::uint64_t kNcpFlops = 0;
  /// ncp() below writes zeros unconditionally — kernels skip the stage.
  static constexpr bool kNcpIsZero = true;
  /// Direction d moves only p (row 0) and v_d (row 1+d); every flux row
  /// past 1+d is structurally zero, so derivative GEMMs stop at 2+d.
  static constexpr int flux_rows_end(int dir) { return 2 + dir; }

  static constexpr int kP = 0, kVx = 1, kRho = 4, kC = 5;

  /// Pointwise user functions are templated on the scalar type (fp32
  /// kernels call them on float rows directly); literals are cast to Real
  /// so fp32 arithmetic does not promote to double.
  template <class Real>
  void flux(const Real* q, int dir, Real* f) const {
    const Real rho = q[kRho], c = q[kC];
    f[kP] = -rho * c * c * q[kVx + dir];
    f[kVx + 0] = Real(0);
    f[kVx + 1] = Real(0);
    f[kVx + 2] = Real(0);
    f[kVx + dir] = -q[kP] / rho;
    f[kRho] = Real(0);
    f[kC] = Real(0);
  }

  template <class Real>
  void ncp(const Real* /*q*/, const Real* /*grad*/, int /*dir*/,
           Real* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = Real(0);
  }

  double max_wave_speed(const double* q, int /*dir*/) const {
    return q[kC];
  }

  /// Rigid wall: normal velocity mirrors, pressure and tangential velocity
  /// copy — the classic ghost state that zeroes v.n at the face.
  void wall_reflect(const double* q, int dir, double* out) const {
    for (int s = 0; s < kQuants; ++s) out[s] = q[s];
    out[kVx + dir] = -q[kVx + dir];
  }

  template <class Real>
  void flux_line(Isa /*isa*/, const Real* q, int dir, Real* f, int len,
                 int stride) const {
    const Real* p = q + kP * stride;
    const Real* vd = q + (kVx + dir) * stride;
    const Real* rho = q + kRho * stride;
    const Real* c = q + kC * stride;
    Real* fp = f + kP * stride;
    for (int s = kVx; s < kQuants; ++s) {
      Real* fs = f + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) fs[i] = Real(0);
    }
    Real* fvd = f + (kVx + dir) * stride;
#pragma omp simd
    for (int i = 0; i < len; ++i) {
      fp[i] = -rho[i] * c[i] * c[i] * vd[i];
      // Padded lanes carry rho = 0; guard the division so zero-padding stays
      // a valid input (the numerical hazard Sec. V-C warns about).
      fvd[i] = rho[i] != Real(0) ? -p[i] / rho[i] : Real(0);
    }
    count_packed_flops(Isa::kScalar, len, kFluxFlops);
  }

  template <class Real>
  void ncp_line(Isa /*isa*/, const Real* /*q*/, const Real* /*grad*/,
                int /*dir*/, Real* out, int len, int stride) const {
    for (int s = 0; s < kQuants; ++s) {
      Real* os = out + s * stride;
#pragma omp simd
      for (int i = 0; i < len; ++i) os[i] = Real(0);
    }
  }
};

}  // namespace exastp
