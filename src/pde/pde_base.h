// The PDE "user function" interface.
//
// ExaHyPE users supply PDE-specific terms (flux, non-conservative product,
// wave speeds) per quadrature node; the engine fixes the calling convention
// (paper Sec. II-C). We mirror both API levels:
//
//  * PdeRuntime — type-erased, pointwise AoS functions. Used by the Generic
//    STP kernel (runtime order/quantity count, virtual calls per node —
//    faithfully reproducing why the generic kernels cannot vectorize) and by
//    engine glue that does not need to be fast.
//  * CRTP PDE structs (advection.h, acoustic.h, ...) — compile-time quantity
//    counts and inlineable pointwise calls; the optimized kernels are
//    templated on the concrete PDE exactly as the paper's generated kernels
//    hard-code the user functions (Sec. III-C). Every PDE also provides
//    *_line functions operating on an SoA chunk (one padded x-line), the
//    vectorizable user-function flavour of Sec. V-C.
//
// Conventions shared by all PDEs:
//  * A node stores kQuants = kVars + kParams doubles: evolved quantities
//    first, then material/geometry parameters (the paper's m counts both,
//    m = 21 for the curvilinear elastic benchmark).
//  * flux(q, dir, f) writes all kQuants entries of f; parameter rows are
//    zero, so parameters automatically stay constant in time while the
//    padded GEMMs still process their rows — exactly the layout the paper
//    optimizes.
//  * ncp(q, grad, dir, out) writes B_dir(q) * grad into all kQuants rows
//    (set, not accumulate); grad is the spatial derivative of q in `dir`.
//  * The evolution law implemented by the kernels is
//        dq/dt = sum_d [ d/dx_d flux_d(q) + ncp_d(q, dq/dx_d) ] + source.
//
// FLOP accounting convention: pointwise flux()/ncp() do NOT touch the
// counter (kernels batch-account them per sweep using kFluxFlops/kNcpFlops,
// classified scalar); the *_line functions DO count internally, classified by
// the packing width their code actually compiles to — the generic header
// implementations are baseline-compiled (128-bit class) while PDEs with
// dedicated ISA translation units (curvilinear elastic) count at the
// dispatched width.
#pragma once

#include <cstdint>
#include <string>

namespace exastp {

struct PdeInfo {
  int quants = 0;  ///< total stored quantities per node (the paper's m)
  int vars = 0;    ///< evolved quantities
  int params = 0;  ///< material/geometry parameters riding along
  std::string name;
};

/// Past-the-end index of the quantity rows flux_dir(q) can possibly make
/// nonzero. Defaults to kVars (parameter rows are zero by the flux
/// contract above); a PDE with extra structural zeros declares
/// `static constexpr int flux_rows_end(int dir)` to tighten it (acoustic:
/// only p and v_dir move → 2+dir; pure-NCP PDEs: 0, flux is identically
/// zero). The SplitCK kernels skip the derivative GEMM columns of rows
/// beyond this bound — bitwise-exact, but the trace-model twins must use
/// the same bound for the FLOP ledgers to agree.
template <class Pde>
constexpr int pde_flux_rows_end(int dir) {
  if constexpr (requires { Pde::flux_rows_end(dir); }) {
    return Pde::flux_rows_end(dir);
  } else {
    return Pde::kVars;
  }
}

/// True when ncp() is identically zero for every state (declared via
/// `static constexpr bool kNcpIsZero = true`). The SplitCK kernels then
/// skip the whole gradient + ncp stage of each dimension sweep; defaults
/// to false (stage runs) when the PDE does not say.
template <class Pde>
constexpr bool pde_ncp_is_zero() {
  if constexpr (requires { Pde::kNcpIsZero; }) {
    return Pde::kNcpIsZero;
  } else {
    return false;
  }
}

/// Type-erased pointwise interface (generic kernels, glue code).
class PdeRuntime {
 public:
  virtual ~PdeRuntime() = default;

  virtual PdeInfo info() const = 0;
  /// f[0..quants): physical flux in direction dir (0=x, 1=y, 2=z).
  virtual void flux(const double* q, int dir, double* f) const = 0;
  /// out[0..quants) = B_dir(q) * grad.
  virtual void ncp(const double* q, const double* grad, int dir,
                   double* out) const = 0;
  /// Largest absolute characteristic speed in direction dir at state q.
  virtual double max_wave_speed(const double* q, int dir) const = 0;
  /// FLOPs one flux / ncp call performs (for the instruction-mix accounting).
  virtual std::uint64_t flux_flops() const = 0;
  virtual std::uint64_t ncp_flops() const = 0;

  /// Ghost state for a reflecting wall on a face with normal `dir`.
  /// Default behaves like outflow (copies); PDEs with a natural mirror
  /// state (acoustic/elastic: normal velocity negated) override it via the
  /// CRTP detection in PdeAdapter.
  virtual void wall_reflect(const double* q, int /*dir*/, double* out) const {
    for (int s = 0; s < info().quants; ++s) out[s] = q[s];
  }
};

/// Wraps a CRTP PDE struct into the runtime interface.
template <class Pde>
class PdeAdapter final : public PdeRuntime {
 public:
  explicit PdeAdapter(Pde pde = Pde{}) : pde_(std::move(pde)) {}

  PdeInfo info() const override {
    return {Pde::kQuants, Pde::kVars, Pde::kParams, Pde::kName};
  }
  void flux(const double* q, int dir, double* f) const override {
    pde_.flux(q, dir, f);
  }
  void ncp(const double* q, const double* grad, int dir,
           double* out) const override {
    pde_.ncp(q, grad, dir, out);
  }
  double max_wave_speed(const double* q, int dir) const override {
    return pde_.max_wave_speed(q, dir);
  }
  std::uint64_t flux_flops() const override { return Pde::kFluxFlops; }
  std::uint64_t ncp_flops() const override { return Pde::kNcpFlops; }

  void wall_reflect(const double* q, int dir, double* out) const override {
    if constexpr (requires { pde_.wall_reflect(q, dir, out); }) {
      pde_.wall_reflect(q, dir, out);
    } else {
      PdeRuntime::wall_reflect(q, dir, out);
    }
  }

  const Pde& pde() const { return pde_; }

 private:
  Pde pde_;
};

}  // namespace exastp
