// Point sources: delta_x0 * s(t) right-hand sides (paper eq. (1)).
//
// The Cauchy-Kowalewsky predictor needs the o-th time derivative of the
// source amplitude at t_n (Fig. 1: "derive(pointSource, dim=time, order=o)")
// and the projection of delta_x0 onto the nodal basis through the operator P
// (Sec. II-A). We provide the Ricker wavelet customary in seismic benchmarks
// such as LOH1 [19], with analytic derivatives of any order via Hermite
// polynomials, plus a polynomial source whose Taylor expansion is exact —
// used to unit-test the predictor's source handling to machine precision.
#pragma once

#include <array>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/aligned.h"
#include "exastp/common/taylor.h"

namespace exastp {

/// Time signature s(t) of a point source.
class SourceWavelet {
 public:
  virtual ~SourceWavelet() = default;
  /// d^o s / dt^o evaluated at t (o = 0 is the value itself).
  virtual double derivative(double t, int o) const = 0;
};

/// Ricker wavelet s(t) = (1 - 2 a tau^2) exp(-a tau^2), tau = t - t0,
/// a = pi^2 f^2. All derivatives come from the Gaussian-Hermite identity
/// d^n/dt^n exp(-a tau^2) = (-sqrt(a))^n H_n(sqrt(a) tau) exp(-a tau^2)
/// using s(t) = -g''(t) / (2a).
class RickerWavelet final : public SourceWavelet {
 public:
  RickerWavelet(double frequency, double delay)
      : a_(9.869604401089358 * frequency * frequency),  // pi^2 f^2
        t0_(delay) {}

  double derivative(double t, int o) const override;

 private:
  double a_;
  double t0_;
};

/// s(t) = sum_i c_i t^i. Its Taylor series terminates, so an order-N
/// predictor with N > degree reproduces the time integral exactly.
class PolynomialWavelet final : public SourceWavelet {
 public:
  explicit PolynomialWavelet(std::vector<double> coefficients)
      : c_(std::move(coefficients)) {}

  double derivative(double t, int o) const override;

 private:
  std::vector<double> c_;
};

/// Physicists' Hermite polynomial H_n(x) (exposed for tests).
double hermite(int n, double x);

/// Projection of delta_{x0} onto the n^3 nodal basis functions of one cell:
/// psi_k = phi_k(xi0) / (w_k1 w_k2 w_k3 * volume), where xi0 is the source
/// position in reference coordinates (all components in [0,1]) and `volume`
/// the physical cell volume. Adding psi_k * s(t) to dq_k/dt is the discrete
/// equivalent of the delta right-hand side.
AlignedVector project_point_source(const BasisTables& basis,
                                   const std::array<double, 3>& xi0,
                                   double volume);

/// A source term prepared for one STP kernel invocation on one cell.
struct SourceTerm {
  const double* psi = nullptr;  ///< n^3 projection weights
  int quantity = 0;             ///< quantity row receiving the source
  /// dt_derivatives[o] = d^o s/dt^o at t_n, o = 0..order.
  std::array<double, kMaxOrder + 2> dt_derivatives{};
};

}  // namespace exastp
