// Vectorized user functions for the curvilinear elastic benchmark PDE,
// instantiated once per ISA translation unit (same pattern as gemm_impl.h).
//
// This is the paper's Fig. 8 discipline applied to the m = 21 seismic
// workload: the loop body runs over one padded x-line in SoA layout and the
// TU's -m flags decide the packing width. Zero-padded lanes carry rho = 0
// and are guarded so padding stays a valid input (Sec. V-C).
//
// Quantity indices match CurvilinearElasticPde in curvilinear_elastic.h:
// v=0..2, sigma Voigt=3..8, rho/cp/cs=9..11, metric row-major G=12..20.
#pragma once

#define EXASTP_DEFINE_CURVI_KERNELS(SUFFIX)                                   \
  void curvi_flux_line_##SUFFIX(const double* q, int dir, double* f,         \
                                int len, int stride) {                       \
    const double* g0 = q + (12 + 3 * dir + 0) * stride;                      \
    const double* g1 = q + (12 + 3 * dir + 1) * stride;                      \
    const double* g2 = q + (12 + 3 * dir + 2) * stride;                      \
    const double* rho = q + 9 * stride;                                      \
    const double* sxx = q + 3 * stride;                                      \
    const double* syy = q + 4 * stride;                                      \
    const double* szz = q + 5 * stride;                                      \
    const double* syz = q + 6 * stride;                                      \
    const double* sxz = q + 7 * stride;                                      \
    const double* sxy = q + 8 * stride;                                      \
    for (int s = 0; s < 21; ++s) {                                           \
      double* fs = f + s * stride;                                           \
      _Pragma("omp simd")                                                    \
      for (int i = 0; i < len; ++i) fs[i] = 0.0;                             \
    }                                                                        \
    double* fvx = f + 0 * stride;                                            \
    double* fvy = f + 1 * stride;                                            \
    double* fvz = f + 2 * stride;                                            \
    _Pragma("omp simd")                                                      \
    for (int i = 0; i < len; ++i) {                                          \
      const double inv_rho = rho[i] != 0.0 ? 1.0 / rho[i] : 0.0;             \
      fvx[i] = (g0[i] * sxx[i] + g1[i] * sxy[i] + g2[i] * sxz[i]) * inv_rho; \
      fvy[i] = (g0[i] * sxy[i] + g1[i] * syy[i] + g2[i] * syz[i]) * inv_rho; \
      fvz[i] = (g0[i] * sxz[i] + g1[i] * syz[i] + g2[i] * szz[i]) * inv_rho; \
    }                                                                        \
  }                                                                          \
                                                                             \
  void curvi_ncp_line_##SUFFIX(const double* q, const double* grad,          \
                               int dir, double* out, int len, int stride) {  \
    const double* g0 = q + (12 + 3 * dir + 0) * stride;                      \
    const double* g1 = q + (12 + 3 * dir + 1) * stride;                      \
    const double* g2 = q + (12 + 3 * dir + 2) * stride;                      \
    const double* rho = q + 9 * stride;                                      \
    const double* cp = q + 10 * stride;                                      \
    const double* cs = q + 11 * stride;                                      \
    const double* gvx = grad + 0 * stride;                                   \
    const double* gvy = grad + 1 * stride;                                   \
    const double* gvz = grad + 2 * stride;                                   \
    for (int s = 0; s < 21; ++s) {                                           \
      double* os = out + s * stride;                                         \
      _Pragma("omp simd")                                                    \
      for (int i = 0; i < len; ++i) os[i] = 0.0;                             \
    }                                                                        \
    double* oxx = out + 3 * stride;                                          \
    double* oyy = out + 4 * stride;                                          \
    double* ozz = out + 5 * stride;                                          \
    double* oyz = out + 6 * stride;                                          \
    double* oxz = out + 7 * stride;                                          \
    double* oxy = out + 8 * stride;                                          \
    _Pragma("omp simd")                                                      \
    for (int i = 0; i < len; ++i) {                                          \
      const double mu = rho[i] * cs[i] * cs[i];                              \
      const double lam = rho[i] * cp[i] * cp[i] - 2.0 * mu;                  \
      const double l2m = lam + 2.0 * mu;                                     \
      const double dvx = g0[i] * gvx[i];                                     \
      const double dvy = g1[i] * gvy[i];                                     \
      const double dvz = g2[i] * gvz[i];                                     \
      oxx[i] = l2m * dvx + lam * (dvy + dvz);                                \
      oyy[i] = lam * dvx + l2m * dvy + lam * dvz;                            \
      ozz[i] = lam * (dvx + dvy) + l2m * dvz;                                \
      oyz[i] = mu * (g2[i] * gvy[i] + g1[i] * gvz[i]);                       \
      oxz[i] = mu * (g2[i] * gvx[i] + g0[i] * gvz[i]);                       \
      oxy[i] = mu * (g1[i] * gvx[i] + g0[i] * gvy[i]);                       \
    }                                                                        \
  }

namespace exastp::detail {

void curvi_flux_line_baseline(const double* q, int dir, double* f, int len,
                              int stride);
void curvi_ncp_line_baseline(const double* q, const double* grad, int dir,
                             double* out, int len, int stride);
void curvi_flux_line_avx2(const double* q, int dir, double* f, int len,
                          int stride);
void curvi_ncp_line_avx2(const double* q, const double* grad, int dir,
                         double* out, int len, int stride);
void curvi_flux_line_avx512(const double* q, int dir, double* f, int len,
                            int stride);
void curvi_ncp_line_avx512(const double* q, const double* grad, int dir,
                           double* out, int len, int stride);

}  // namespace exastp::detail
