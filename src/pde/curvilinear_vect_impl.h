// Vectorized user functions for the curvilinear elastic benchmark PDE,
// instantiated once per ISA translation unit (same pattern as gemm_impl.h).
//
// This is the paper's Fig. 8 discipline applied to the m = 21 seismic
// workload: the loop body runs over one padded x-line in SoA layout and the
// TU's -m flags decide the packing width. Zero-padded lanes carry rho = 0
// and are guarded so padding stays a valid input (Sec. V-C).
//
// The loop bodies are templated on the scalar type and every literal is
// cast to T: a stray double constant inside the simd loop would promote the
// whole expression to double and halve the fp32 lane count. Each ISA TU
// emits a double and a float entry point from the same schedule; the
// anonymous namespace keeps the bodies internal per TU ON PURPOSE (an
// inline symbol would be merged across TUs and silently pick one ISA).
//
// Quantity indices match CurvilinearElasticPde in curvilinear_elastic.h:
// v=0..2, sigma Voigt=3..8, rho/cp/cs=9..11, metric row-major G=12..20.
#pragma once

namespace exastp::detail {
namespace {

template <class T>
inline void curvi_flux_line_body(const T* q, int dir, T* f, int len,
                                 int stride) {
  const T* g0 = q + (12 + 3 * dir + 0) * stride;
  const T* g1 = q + (12 + 3 * dir + 1) * stride;
  const T* g2 = q + (12 + 3 * dir + 2) * stride;
  const T* rho = q + 9 * stride;
  const T* sxx = q + 3 * stride;
  const T* syy = q + 4 * stride;
  const T* szz = q + 5 * stride;
  const T* syz = q + 6 * stride;
  const T* sxz = q + 7 * stride;
  const T* sxy = q + 8 * stride;
  for (int s = 0; s < 21; ++s) {
    T* fs = f + s * stride;
#pragma omp simd
    for (int i = 0; i < len; ++i) fs[i] = T(0);
  }
  T* fvx = f + 0 * stride;
  T* fvy = f + 1 * stride;
  T* fvz = f + 2 * stride;
#pragma omp simd
  for (int i = 0; i < len; ++i) {
    const T inv_rho = rho[i] != T(0) ? T(1) / rho[i] : T(0);
    fvx[i] = (g0[i] * sxx[i] + g1[i] * sxy[i] + g2[i] * sxz[i]) * inv_rho;
    fvy[i] = (g0[i] * sxy[i] + g1[i] * syy[i] + g2[i] * syz[i]) * inv_rho;
    fvz[i] = (g0[i] * sxz[i] + g1[i] * syz[i] + g2[i] * szz[i]) * inv_rho;
  }
}

template <class T>
inline void curvi_ncp_line_body(const T* q, const T* grad, int dir, T* out,
                                int len, int stride) {
  const T* g0 = q + (12 + 3 * dir + 0) * stride;
  const T* g1 = q + (12 + 3 * dir + 1) * stride;
  const T* g2 = q + (12 + 3 * dir + 2) * stride;
  const T* rho = q + 9 * stride;
  const T* cp = q + 10 * stride;
  const T* cs = q + 11 * stride;
  const T* gvx = grad + 0 * stride;
  const T* gvy = grad + 1 * stride;
  const T* gvz = grad + 2 * stride;
  for (int s = 0; s < 21; ++s) {
    T* os = out + s * stride;
#pragma omp simd
    for (int i = 0; i < len; ++i) os[i] = T(0);
  }
  T* oxx = out + 3 * stride;
  T* oyy = out + 4 * stride;
  T* ozz = out + 5 * stride;
  T* oyz = out + 6 * stride;
  T* oxz = out + 7 * stride;
  T* oxy = out + 8 * stride;
#pragma omp simd
  for (int i = 0; i < len; ++i) {
    const T mu = rho[i] * cs[i] * cs[i];
    const T lam = rho[i] * cp[i] * cp[i] - T(2) * mu;
    const T l2m = lam + T(2) * mu;
    const T dvx = g0[i] * gvx[i];
    const T dvy = g1[i] * gvy[i];
    const T dvz = g2[i] * gvz[i];
    oxx[i] = l2m * dvx + lam * (dvy + dvz);
    oyy[i] = lam * dvx + l2m * dvy + lam * dvz;
    ozz[i] = lam * (dvx + dvy) + l2m * dvz;
    oyz[i] = mu * (g2[i] * gvy[i] + g1[i] * gvz[i]);
    oxz[i] = mu * (g2[i] * gvx[i] + g0[i] * gvz[i]);
    oxy[i] = mu * (g1[i] * gvx[i] + g0[i] * gvy[i]);
  }
}

}  // namespace
}  // namespace exastp::detail

#define EXASTP_DEFINE_CURVI_KERNELS(SUFFIX)                                   \
  void curvi_flux_line_##SUFFIX(const double* q, int dir, double* f,         \
                                int len, int stride) {                       \
    curvi_flux_line_body(q, dir, f, len, stride);                            \
  }                                                                          \
  void curvi_ncp_line_##SUFFIX(const double* q, const double* grad,          \
                               int dir, double* out, int len, int stride) {  \
    curvi_ncp_line_body(q, grad, dir, out, len, stride);                     \
  }                                                                          \
  void curvi_flux_line_##SUFFIX##_f32(const float* q, int dir, float* f,     \
                                      int len, int stride) {                 \
    curvi_flux_line_body(q, dir, f, len, stride);                            \
  }                                                                          \
  void curvi_ncp_line_##SUFFIX##_f32(const float* q, const float* grad,      \
                                     int dir, float* out, int len,           \
                                     int stride) {                           \
    curvi_ncp_line_body(q, grad, dir, out, len, stride);                     \
  }

namespace exastp::detail {

void curvi_flux_line_baseline(const double* q, int dir, double* f, int len,
                              int stride);
void curvi_ncp_line_baseline(const double* q, const double* grad, int dir,
                             double* out, int len, int stride);
void curvi_flux_line_avx2(const double* q, int dir, double* f, int len,
                          int stride);
void curvi_ncp_line_avx2(const double* q, const double* grad, int dir,
                         double* out, int len, int stride);
void curvi_flux_line_avx512(const double* q, int dir, double* f, int len,
                            int stride);
void curvi_ncp_line_avx512(const double* q, const double* grad, int dir,
                           double* out, int len, int stride);

void curvi_flux_line_baseline_f32(const float* q, int dir, float* f, int len,
                                  int stride);
void curvi_ncp_line_baseline_f32(const float* q, const float* grad, int dir,
                                 float* out, int len, int stride);
void curvi_flux_line_avx2_f32(const float* q, int dir, float* f, int len,
                              int stride);
void curvi_ncp_line_avx2_f32(const float* q, const float* grad, int dir,
                             float* out, int len, int stride);
void curvi_flux_line_avx512_f32(const float* q, int dir, float* f, int len,
                                int stride);
void curvi_ncp_line_avx512_f32(const float* q, const float* grad, int dir,
                               float* out, int len, int stride);

}  // namespace exastp::detail
