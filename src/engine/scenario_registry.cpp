#include "exastp/engine/scenario_registry.h"

#include <cmath>

#include "exastp/common/check.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/advection.h"
#include "exastp/pde/maxwell.h"
#include "exastp/scenarios/loh1.h"
#include "exastp/scenarios/planewave.h"

namespace exastp {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Exact acoustic plane wave (scenarios/planewave.h) on a periodic box.
/// The wave has unit wavelength, so the solution stays exact on any box
/// with integer extents; fractional extents break periodicity. The integer
/// wavenumbers are scenario parameters (scenario.kx/ky/kz, default 1,0,0).
class PlaneWaveScenario final : public Scenario {
 public:
  /// The parameterized wave shared by initial condition and exact solution.
  static PlaneWave wave(const SimulationConfig& config) {
    PlaneWave wave;
    const int kx = scenario_param_int(config, "kx", 1);
    const int ky = scenario_param_int(config, "ky", 0);
    const int kz = scenario_param_int(config, "kz", 0);
    EXASTP_CHECK_MSG(kx != 0 || ky != 0 || kz != 0,
                     "planewave needs a non-zero wavenumber");
    wave.wave_vector = {2.0 * kPi * kx, 2.0 * kPi * ky, 2.0 * kPi * kz};
    return wave;
  }

  const std::string& name() const override {
    static const std::string n = "planewave";
    return n;
  }
  std::string default_pde() const override { return "acoustic"; }
  std::vector<std::string> param_keys() const override {
    return {"kx", "ky", "kz"};
  }

  void configure(SimulationConfig& config) const override {
    config.grid.cells = {3, 3, 3};
    config.grid.extent = {1.0, 1.0, 1.0};  // one wavelength per dimension
    config.t_end = 0.25;
  }

  InitialCondition initial_condition(
      const std::shared_ptr<const KernelFactory>& /*pde*/,
      const SimulationConfig& config) const override {
    const PlaneWave w = wave(config);
    return [w](const std::array<double, 3>& x, double* q) {
      w.initial_condition(x, q);
    };
  }

  int error_quantity(const KernelFactory& /*pde*/) const override {
    return AcousticPde::kP;
  }
  ExactSolution exact_solution(
      const KernelFactory& /*pde*/,
      const SimulationConfig& config) const override {
    const PlaneWave w = wave(config);
    return [w](const std::array<double, 3>& x, double t) {
      return w.pressure(x, t);
    };
  }
};

/// PDE-agnostic Gaussian pulse on quantity 0 over the factory's canonical
/// background medium; the smoke-test workload for any registered PDE.
class GaussianScenario final : public Scenario {
 public:
  /// Pulse placement shared by the initial condition and exact solution.
  struct Pulse {
    std::array<double, 3> center{};
    double sigma = 0.0;
  };
  static Pulse pulse(const SimulationConfig& config) {
    const GridSpec& grid = config.grid;
    Pulse p;
    double width = 0.0;
    for (int d = 0; d < 3; ++d) {
      p.center[d] = grid.origin[d] + 0.5 * grid.extent[d];
      width = std::max(width, grid.extent[d]);
    }
    p.sigma = scenario_param(config, "sigma", 0.1 * width);
    EXASTP_CHECK_MSG(p.sigma > 0.0, "gaussian sigma must be positive");
    return p;
  }

  const std::string& name() const override {
    static const std::string n = "gaussian";
    return n;
  }
  std::string default_pde() const override { return "advection"; }
  bool compatible_with(const std::string& /*pde_name*/) const override {
    return true;
  }
  std::vector<std::string> param_keys() const override { return {"sigma"}; }

  void configure(SimulationConfig& config) const override {
    config.grid.cells = {3, 3, 3};
  }

  InitialCondition initial_condition(
      const std::shared_ptr<const KernelFactory>& pde,
      const SimulationConfig& config) const override {
    const PdeInfo info = pde->info();
    const Pulse p = pulse(config);
    return [info, pde, p](const std::array<double, 3>& x, double* q) {
      double r2 = 0.0;
      for (int d = 0; d < 3; ++d)
        r2 += (x[d] - p.center[d]) * (x[d] - p.center[d]);
      for (int s = 0; s < info.vars; ++s) q[s] = 0.0;
      q[0] = std::exp(-r2 / (2.0 * p.sigma * p.sigma));
      pde->default_parameters(q);
    };
  }

  int error_quantity(const KernelFactory& pde) const override {
    // Only plain advection translates the pulse rigidly.
    return pde.name() == "advection" ? 0 : -1;
  }
  ExactSolution exact_solution(
      const KernelFactory& pde,
      const SimulationConfig& config) const override {
    if (error_quantity(pde) < 0) return nullptr;
    // Assumes periodic boundaries (the scenario default); with outflow
    // walls the wrapped translate stops being the true solution once the
    // pulse reaches a boundary.
    const GridSpec grid = config.grid;
    const Pulse p = pulse(config);
    const std::array<double, 3> velocity = AdvectionPde{}.velocity;
    return [grid, p, velocity](const std::array<double, 3>& x, double t) {
      double r2 = 0.0;
      for (int d = 0; d < 3; ++d) {
        // Periodic distance to the advected pulse center.
        double dx = x[d] - (p.center[d] + velocity[d] * t);
        dx -= grid.extent[d] * std::round(dx / grid.extent[d]);
        r2 += dx * dx;
      }
      return std::exp(-r2 / (2.0 * p.sigma * p.sigma));
    };
  }
};

/// LOH1-like layer over halfspace (scenarios/loh1.h): heterogeneous elastic
/// material, Ricker point source, absorbing sides, reflecting top.
class Loh1Scenario final : public Scenario {
 public:
  /// Loh1Config with the scenario.* material/source overrides applied; the
  /// grid itself stays under the ordinary cells/extent/origin keys.
  static Loh1Config loh1_config(const SimulationConfig& config) {
    Loh1Config c;
    c.layer_depth = scenario_param(config, "layer_depth", c.layer_depth);
    c.layer_rho = scenario_param(config, "layer_rho", c.layer_rho);
    c.layer_cp = scenario_param(config, "layer_cp", c.layer_cp);
    c.layer_cs = scenario_param(config, "layer_cs", c.layer_cs);
    c.half_rho = scenario_param(config, "half_rho", c.half_rho);
    c.half_cp = scenario_param(config, "half_cp", c.half_cp);
    c.half_cs = scenario_param(config, "half_cs", c.half_cs);
    c.source_frequency =
        scenario_param(config, "source_frequency", c.source_frequency);
    c.source_delay = scenario_param(config, "source_delay", c.source_delay);
    for (double v : {c.layer_rho, c.layer_cp, c.layer_cs, c.half_rho,
                     c.half_cp, c.half_cs, c.source_frequency})
      EXASTP_CHECK_MSG(v > 0.0,
                       "loh1 materials and source frequency must be positive");
    return c;
  }

  const std::string& name() const override {
    static const std::string n = "loh1";
    return n;
  }
  std::string default_pde() const override { return "elastic"; }
  std::vector<std::string> param_keys() const override {
    return {"layer_depth", "layer_rho", "layer_cp",
            "layer_cs",    "half_rho",  "half_cp",
            "half_cs",     "source_frequency", "source_delay"};
  }

  void configure(SimulationConfig& config) const override {
    const Loh1Config defaults;
    config.grid.cells = defaults.cells;
    config.grid.origin = {0.0, 0.0, 0.0};
    config.grid.extent = defaults.extent;
    config.grid.boundary = {BoundaryKind::kOutflow, BoundaryKind::kOutflow,
                            BoundaryKind::kWall};
    config.t_end = 2.0;
  }

  InitialCondition initial_condition(
      const std::shared_ptr<const KernelFactory>& /*pde*/,
      const SimulationConfig& config) const override {
    return loh1_initial_condition(loh1_config(config));
  }

  std::vector<MeshPointSource> sources(
      const SimulationConfig& config) const override {
    return {loh1_point_source(loh1_config(config))};
  }
};

/// TE101-like eigenmode of a perfectly conducting unit box; the Ey
/// component oscillates as a standing wave at omega = sqrt(2) pi. The
/// initial condition fixes the wavenumbers at pi, so the mode (and its
/// exact solution) remains valid on any integer-extent PEC box.
class MaxwellCavityScenario final : public Scenario {
 public:
  const std::string& name() const override {
    static const std::string n = "maxwell_cavity";
    return n;
  }
  std::string default_pde() const override { return "maxwell"; }

  void configure(SimulationConfig& config) const override {
    config.grid.cells = {3, 3, 3};
    config.grid.extent = {1.0, 1.0, 1.0};
    config.grid.boundary = {BoundaryKind::kWall, BoundaryKind::kWall,
                            BoundaryKind::kWall};  // PEC box
    config.t_end = 1.0;
  }

  InitialCondition initial_condition(
      const std::shared_ptr<const KernelFactory>& /*pde*/,
      const SimulationConfig& /*config*/) const override {
    return [](const std::array<double, 3>& x, double* q) {
      for (int s = 0; s < MaxwellPde::kVars; ++s) q[s] = 0.0;
      q[MaxwellPde::kEy] = std::sin(kPi * x[0]) * std::sin(kPi * x[2]);
      q[MaxwellPde::kEps] = 1.0;
      q[MaxwellPde::kMu] = 1.0;
    };
  }

  int error_quantity(const KernelFactory& /*pde*/) const override {
    return MaxwellPde::kEy;
  }
  ExactSolution exact_solution(
      const KernelFactory& /*pde*/,
      const SimulationConfig& /*config*/) const override {
    return [](const std::array<double, 3>& x, double t) {
      const double omega = std::sqrt(2.0) * kPi;
      return std::sin(kPi * x[0]) * std::sin(kPi * x[2]) *
             std::cos(omega * t);
    };
  }
};

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry& registry = *[] {
    auto* r = new ScenarioRegistry;
    r->add(std::make_shared<GaussianScenario>());
    r->add(std::make_shared<PlaneWaveScenario>());
    r->add(std::make_shared<Loh1Scenario>());
    r->add(std::make_shared<MaxwellCavityScenario>());
    return r;
  }();
  return registry;
}

std::shared_ptr<const Scenario> find_scenario(const std::string& name) {
  return ScenarioRegistry::instance().find(name);
}

}  // namespace exastp
