#include "exastp/engine/pde_registry.h"

#include <utility>

#include "exastp/common/check.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/advection.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/pde/elastic.h"
#include "exastp/pde/maxwell.h"

namespace exastp {
namespace {

template <class Pde>
std::shared_ptr<const KernelFactory> factory(
    std::function<void(double*)> defaults, Pde pde = Pde{}) {
  return std::make_shared<TypedKernelFactory<Pde>>(std::move(pde),
                                                   std::move(defaults));
}

void register_builtins(PdeRegistry& registry) {
  registry.add(factory<AdvectionPde>({}));
  registry.add(factory<AdvectionNcpPde>({}));
  registry.add(factory<AcousticPde>([](double* node) {
    node[AcousticPde::kRho] = 1.0;
    node[AcousticPde::kC] = 1.0;
  }));
  registry.add(factory<ElasticPde>([](double* node) {
    node[ElasticPde::kRho] = 1.0;
    node[ElasticPde::kCp] = 2.0;
    node[ElasticPde::kCs] = 1.0;
  }));
  registry.add(factory<MaxwellPde>([](double* node) {
    node[MaxwellPde::kEps] = 1.0;
    node[MaxwellPde::kMu] = 1.0;
  }));
  // The paper's benchmark medium (LOH1 halfspace) on an identity metric.
  registry.add(factory<CurvilinearElasticPde>([](double* node) {
    node[CurvilinearElasticPde::kRho] = 2.7;
    node[CurvilinearElasticPde::kCp] = 6.0;
    node[CurvilinearElasticPde::kCs] = 3.464;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        node[CurvilinearElasticPde::kMetric + 3 * r + c] = r == c ? 1.0 : 0.0;
  }));
}

}  // namespace

PdeRegistry& PdeRegistry::instance() {
  static PdeRegistry& registry = *[] {
    auto* r = new PdeRegistry;
    register_builtins(*r);
    return r;
  }();
  return registry;
}

std::shared_ptr<const KernelFactory> find_pde(const std::string& name) {
  return PdeRegistry::instance().find(name);
}

}  // namespace exastp
