// String-keyed PDE registry: the runtime face of the kernel generator.
//
// make_stp_kernel (kernels/registry.h) is a template switch — it needs the
// concrete PDE type at compile time, exactly like the paper's generated
// kernels hard-code the user functions. KernelFactory type-erases that
// switch behind one virtual call, so a *runtime string* ("acoustic",
// "curvilinear_elastic", ...) selects the PDE while every kernel variant
// underneath stays fully templated and optimized. This mirrors the
// named-plugin factories of openbr-style frameworks: adding a PDE is one
// TypedKernelFactory registration, no engine change.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exastp/engine/named_registry.h"
#include "exastp/kernels/registry.h"
#include "exastp/pde/pde_base.h"

namespace exastp {

/// Type-erased producer of everything the engine needs for one PDE: the
/// runtime view (face terms, boundary conditions, generic kernels) and
/// configured STP kernels for any (variant, order, isa).
class KernelFactory {
 public:
  virtual ~KernelFactory() = default;

  /// Registry key, identical to the PDE's kName.
  virtual const std::string& name() const = 0;
  virtual PdeInfo info() const = 0;
  /// The type-erased pointwise view; one shared instance per factory.
  virtual std::shared_ptr<const PdeRuntime> runtime() const = 0;
  /// Builds a configured kernel — the virtual wrapper around the
  /// make_stp_kernel template switch. precision=kF32 selects the
  /// float-storage SplitCK-family kernels (fp64 boundary, see
  /// docs/precision.md); other variants reject it.
  virtual StpKernel make_kernel(
      StpVariant variant, int order, Isa isa,
      NodeFamily family = NodeFamily::kGaussLegendre,
      Precision precision = Precision::kF64) const = 0;
  /// Fills the material/geometry parameter entries (s in [vars, quants)) of
  /// one node with the PDE's canonical background medium, so generic
  /// scenarios can initialize any registered PDE.
  virtual void default_parameters(double* node) const = 0;
};

/// Implements KernelFactory for one CRTP PDE struct.
template <class Pde>
class TypedKernelFactory final : public KernelFactory {
 public:
  /// `defaults` fills a node's parameter entries; pass {} for PDEs without
  /// parameters.
  TypedKernelFactory(Pde pde, std::function<void(double*)> defaults)
      : name_(Pde::kName),
        pde_(std::move(pde)),
        runtime_(std::make_shared<PdeAdapter<Pde>>(pde_)),
        defaults_(std::move(defaults)) {}

  const std::string& name() const override { return name_; }
  PdeInfo info() const override { return runtime_->info(); }
  std::shared_ptr<const PdeRuntime> runtime() const override {
    return runtime_;
  }
  StpKernel make_kernel(StpVariant variant, int order, Isa isa,
                        NodeFamily family, Precision precision) const override {
    return make_stp_kernel(pde_, variant, order, isa, family, precision);
  }
  void default_parameters(double* node) const override {
    if (defaults_) defaults_(node);
  }

 private:
  std::string name_;
  Pde pde_;
  std::shared_ptr<const PdeRuntime> runtime_;
  std::function<void(double*)> defaults_;
};

/// Name -> KernelFactory map. The process-wide instance() comes populated
/// with the built-in PDEs; add() extends it at runtime (e.g. from a plugin's
/// static initializer or a test).
class PdeRegistry final : public NamedRegistry<KernelFactory> {
 public:
  PdeRegistry() : NamedRegistry("PDE") {}
  /// The process-wide registry, populated with the built-in PDEs.
  static PdeRegistry& instance();
};

/// Shorthand for PdeRegistry::instance().find(name).
std::shared_ptr<const KernelFactory> find_pde(const std::string& name);

}  // namespace exastp
