// String-keyed observer registry: declarative output.* / receivers config
// keys -> streaming observers attached to the time loop.
//
// Mirrors the PDE and scenario registries' plugin idiom for the third
// engine role, the "Plotters" (src/io/). Each ObserverFactory inspects the
// SimulationConfig and builds its observer when the config asks for it —
// so Simulation::from_config attaches exactly the streaming outputs the
// config declares, and new observer kinds (sharded writers, live metrics,
// ...) register without engine changes. Factories are consulted in name
// order, giving a deterministic observer attachment (and thus hook firing)
// order.
//
// Built-ins: "receiver_network" (receivers= probe points, streamed to
// output.receivers_csv / output.receivers_bin) and "vtk_series"
// (output.series + output.interval snapshot series with a .pvd index).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exastp/engine/named_registry.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/io/observer.h"

namespace exastp {

class ObserverFactory {
 public:
  virtual ~ObserverFactory() = default;

  /// Registry key.
  virtual const std::string& name() const = 0;
  /// Builds the observer when `config` requests it, nullptr otherwise.
  /// Throws on inconsistent requests (e.g. a receiver stream path without
  /// receiver positions).
  virtual std::shared_ptr<Observer> make(const SimulationConfig& config,
                                         const KernelFactory& pde) const = 0;
};

/// Name -> ObserverFactory map; same conventions as the other registries.
class ObserverRegistry final : public NamedRegistry<ObserverFactory> {
 public:
  ObserverRegistry() : NamedRegistry("observer") {}
  /// The process-wide registry, populated with the built-in observers.
  static ObserverRegistry& instance();
};

/// Every observer the config requests, from all registered factories in
/// name order. The caller owns the result (the Simulation façade keeps
/// them alive alongside its solver).
std::vector<std::shared_ptr<Observer>> make_observers(
    const SimulationConfig& config, const KernelFactory& pde);

/// Quantity indices the config's outputs sample: output.quantities
/// (validated against the PDE), or every evolved quantity. One resolution
/// shared by receivers, the VTK series and the post-hoc VTK dump so the
/// key means the same thing everywhere.
std::vector<int> output_quantities(const SimulationConfig& config,
                                   const KernelFactory& pde);

}  // namespace exastp
