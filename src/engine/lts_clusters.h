// Rate-cluster assignment for clustered local time stepping (docs/lts.md).
//
// Binning follows the clustered LTS scheme of the source paper's ExaHyPE
// lineage: each cell's admissible time step is proportional to 1 / (its
// local maximum wave speed), so cells are binned into powers-of-two rate
// clusters relative to the globally stiffest cell. Cluster 0 steps at the
// global stable dt; cluster k steps at 2^k times that dt, which is stable
// exactly when the cell's own wave speed is at most (global max) / 2^k —
// the floor(log2) rule below. A face-neighbour smoothing pass then lowers
// clusters until adjacent cells differ by at most one level, the invariant
// the solver's Taylor-recombination corrector assumes
// (AderDgSolver::enable_lts re-validates it).
//
// The assignment is computed once, from the scenario's initial condition
// evaluated at every cell's basis nodes on the *global* grid — materials
// are parameter quantities that never evolve, so the initial snapshot
// decides the clustering for the whole run, and every shard of a
// decomposed run derives the identical assignment from the identical
// global inputs.
#pragma once

#include <vector>

#include "exastp/mesh/grid.h"
#include "exastp/pde/pde_base.h"
#include "exastp/quadrature/quadrature.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

struct LtsClustering {
  /// Rate cluster per global cell (x-fastest order); 0 = finest dt.
  std::vector<int> cluster;
  /// Number of clusters K actually used (1 = uniform, global stepping).
  int num_clusters = 1;
  /// Per-global-cell maximum wave speed over the cell's basis nodes and
  /// the three directions — the binning input, kept for reports/tests.
  std::vector<double> cell_speed;
};

/// Computes the cluster assignment for the global grid `spec`: evaluates
/// `init` at the order^3 basis nodes of every cell, takes the PDE's
/// maximum wave speed over nodes and directions, bins cells by
/// floor(log2(global_max / cell_speed)) capped at `max_clusters` - 1
/// (max_clusters <= 0 means "auto": the wave-speed spread decides), lowers
/// clusters to the +-1 face-neighbour invariant, and compacts the used
/// levels to a contiguous 0..K-1 range (compaction only ever shrinks a
/// cell's dt, so it preserves stability and the +-1 invariant).
LtsClustering compute_lts_clusters(const GridSpec& spec, const PdeRuntime& pde,
                                   const InitialCondition& init, int order,
                                   NodeFamily family, int max_clusters);

}  // namespace exastp
