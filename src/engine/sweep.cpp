#include "exastp/engine/sweep.h"

#include <chrono>
#include <ostream>

#include "exastp/common/check.h"
#include "exastp/engine/simulation.h"

namespace exastp {
namespace {

/// "out.csv" + "5" -> "out_5.csv"; extensionless paths (series basenames)
/// get the suffix appended. Only the filename part is inspected.
std::string with_value_suffix(const std::string& path,
                              const std::string& value) {
  if (path.empty()) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + "_" + value;
  return path.substr(0, dot) + "_" + value + path.substr(dot);
}

}  // namespace

SweepSpec parse_sweep_spec(const std::string& value) {
  const auto colon = value.find(':');
  EXASTP_CHECK_MSG(colon != std::string::npos && colon > 0,
                   "expected sweep=key:v1,v2,..., got sweep=" + value);
  SweepSpec spec;
  spec.key = value.substr(0, colon);
  EXASTP_CHECK_MSG(spec.key != "sweep", "cannot sweep the sweep key");
  std::string current;
  for (char c : value.substr(colon + 1)) {
    if (c == ',') {
      spec.values.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  spec.values.push_back(current);
  for (const std::string& v : spec.values)
    EXASTP_CHECK_MSG(!v.empty(), "empty value in sweep=" + value);
  return spec;
}

std::vector<std::string> extract_sweep(const std::vector<std::string>& args,
                                       SweepSpec* spec, bool* found) {
  *found = false;
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    if (arg.rfind("sweep=", 0) == 0) {
      EXASTP_CHECK_MSG(!*found, "only one sweep= argument is supported");
      *spec = parse_sweep_spec(arg.substr(6));
      *found = true;
    } else {
      rest.push_back(arg);
    }
  }
  return rest;
}

int run_sweep(const std::vector<std::string>& base_args,
              const SweepSpec& spec, std::ostream& out) {
  EXASTP_CHECK_MSG(!spec.values.empty(), "sweep needs at least one value");
  out << spec.key << ",steps,t,l2_error,seconds\n" << std::flush;
  int runs = 0;
  for (const std::string& value : spec.values) {
    std::vector<std::string> args = base_args;
    args.push_back(spec.key + "=" + value);
    SimulationConfig config = parse_simulation_args(args);
    // A sweep re-partitions per run; a distributed launch is pinned to one
    // decomposition by its rank count, so the combination cannot work.
    EXASTP_CHECK_MSG(config.backend != "mpi",
                     "sweep= is not supported with backend=mpi — run one "
                     "configuration per mpirun launch");
    config.output.csv = with_value_suffix(config.output.csv, value);
    config.output.vtk = with_value_suffix(config.output.vtk, value);
    config.output.series = with_value_suffix(config.output.series, value);
    config.output.receivers_csv =
        with_value_suffix(config.output.receivers_csv, value);
    config.output.receivers_bin =
        with_value_suffix(config.output.receivers_bin, value);

    const auto start = std::chrono::steady_clock::now();
    Simulation sim = Simulation::from_config(std::move(config));
    const int steps = sim.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    out << value << "," << steps << "," << sim.solver().time() << ",";
    // "nan" keeps the column numerically parseable when the scenario has
    // no exact solution.
    if (sim.has_exact_solution()) {
      out << sim.l2_error();
    } else {
      out << "nan";
    }
    out << "," << seconds << "\n" << std::flush;
    ++runs;
  }
  return runs;
}

}  // namespace exastp
