#include "exastp/engine/sweep.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "exastp/common/check.h"
#include "exastp/service/result_gallery.h"
#include "exastp/service/simulation_pool.h"

namespace exastp {
namespace {

/// The sweep's historical summary format, as a gallery: one
/// "<value>,steps,t,l2_error,seconds,flops" row per completed run, header
/// first,
/// flushed per row (long sweeps can be tailed). Failed/skipped jobs stream
/// no row — run_sweep turns the failure into the throw it has always been.
class SweepSummaryGallery final : public ResultGallery {
 public:
  SweepSummaryGallery(std::string key, std::ostream& out)
      : key_(std::move(key)), out_(out) {}

  void open() override {
    out_ << key_ << ",steps,t,l2_error,seconds,flops\n" << std::flush;
  }

  void add(const JobResult& r) override {
    if (r.status != JobStatus::kDone) return;
    out_ << r.label << "," << r.steps << "," << r.t << ",";
    // "nan" keeps the column numerically parseable when the scenario has
    // no exact solution.
    if (std::isnan(r.l2_error)) {
      out_ << "nan";
    } else {
      out_ << r.l2_error;
    }
    out_ << "," << r.seconds << "," << r.flops << "\n" << std::flush;
  }

  void finish() override {}

 private:
  std::string key_;
  std::ostream& out_;
};

}  // namespace

SweepSpec parse_sweep_spec(const std::string& value) {
  const auto colon = value.find(':');
  EXASTP_CHECK_MSG(colon != std::string::npos && colon > 0,
                   "expected sweep=key:v1,v2,..., got sweep=" + value);
  SweepSpec spec;
  spec.key = value.substr(0, colon);
  EXASTP_CHECK_MSG(spec.key != "sweep", "cannot sweep the sweep key");
  std::string current;
  for (char c : value.substr(colon + 1)) {
    if (c == ',') {
      spec.values.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  spec.values.push_back(current);
  for (const std::string& v : spec.values)
    EXASTP_CHECK_MSG(!v.empty(), "empty value in sweep=" + value);
  return spec;
}

std::vector<std::string> extract_sweep(const std::vector<std::string>& args,
                                       SweepSpec* spec, bool* found) {
  *found = false;
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    if (arg.rfind("sweep=", 0) == 0) {
      EXASTP_CHECK_MSG(!*found, "only one sweep= argument is supported");
      *spec = parse_sweep_spec(arg.substr(6));
      *found = true;
    } else {
      rest.push_back(arg);
    }
  }
  return rest;
}

int run_sweep(const std::vector<std::string>& base_args,
              const SweepSpec& spec, std::ostream& out) {
  EXASTP_CHECK_MSG(!spec.values.empty(), "sweep needs at least one value");
  // A sweep is the ensemble pool with one job per swept value: sequential
  // (jobs=1, so rows stream in value order as each run finishes) and
  // aborting at the first failure, exactly the semantics the sweep always
  // had — there is no second run-many code path.
  PoolOptions options;
  options.jobs = 1;
  options.stop_on_failure = true;
  // The swept key is appended per job; a base arg already naming it would
  // be a duplicate-key error, so drop it (the swept value wins, as before).
  for (const std::string& arg : base_args)
    if (arg.rfind(spec.key + "=", 0) != 0) options.base_args.push_back(arg);

  SimulationPool pool(std::move(options));
  for (const std::string& value : spec.values)
    pool.submit({spec.key + "=" + value}, value, "_" + value);

  SweepSummaryGallery gallery(spec.key, out);
  const std::vector<JobResult> results = pool.run({&gallery});
  int runs = 0;
  for (const JobResult& r : results) {
    // Rows up to the failure are already streamed (partial CSV intact);
    // re-raise the captured error as the abort the sweep contract promises.
    if (r.status == JobStatus::kFailed)
      throw std::runtime_error("sweep " + spec.key + "=" + r.label +
                               " failed: " + r.error);
    if (r.status == JobStatus::kDone) ++runs;
  }
  return runs;
}

}  // namespace exastp
