// Process-wide kernel prototype cache shared by every Simulation.
//
// Building an optimized STP kernel resolves basis tables, pads operator
// matrices and allocates workspace — work that depends only on
// (pde, variant, order, isa, family). A single run pays it once, but the
// ensemble service (src/service/simulation_pool.h) constructs hundreds of
// Simulations in one process, most of them sharing a handful of kernel
// configurations. This cache keeps one prototype kernel per configuration;
// requests return an independent fork() of the prototype (own workspace,
// safe to run on any thread), so concurrent pool jobs share the cached
// configuration without sharing mutable state. The basis-table cache
// underneath (basis/basis_tables.h) is process-wide already; together they
// are the "shared caches" of the ensemble engine.
//
// Thread-safe: lookups and insertions are mutex-guarded; the fork of the
// prototype happens outside the lock.
#pragma once

#include "exastp/engine/pde_registry.h"

namespace exastp {

/// Cumulative cache traffic since process start (or the last reset):
/// `misses` counts distinct (pde, variant, order, isa, family) prototypes
/// built, `hits` the requests served from an existing prototype. The
/// service bench and tests read these to verify cross-job sharing.
struct KernelCacheStats {
  long hits = 0;
  long misses = 0;
};

/// A configured kernel for (pde, variant, order, isa, family, precision),
/// forked from the process-wide prototype cache (built through
/// pde.make_kernel on the first request). The returned kernel owns its
/// workspace and can fork again — it behaves exactly like a kernel from
/// pde.make_kernel. The precision is part of the cache key: fp64 and fp32
/// prototypes of one configuration coexist.
StpKernel cached_stp_kernel(const KernelFactory& pde, StpVariant variant,
                            int order, Isa isa, NodeFamily family,
                            Precision precision = Precision::kF64);

KernelCacheStats kernel_cache_stats();
/// Zeroes the counters (prototypes stay cached) — bench/test bookkeeping.
void reset_kernel_cache_stats();

}  // namespace exastp
