// Name -> entry map shared by the PDE and scenario registries.
//
// T must expose `const std::string& name() const`. The `kind` string only
// flavours the error messages ("unknown PDE ...", "unknown scenario ...").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exastp/common/check.h"

namespace exastp {

template <class T>
class NamedRegistry {
 public:
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers an entry under its name(); throws on duplicates.
  void add(std::shared_ptr<const T> entry) {
    EXASTP_CHECK(entry != nullptr);
    const std::string& name = entry->name();
    EXASTP_CHECK_MSG(!entries_.count(name),
                     kind_ + " already registered: " + name);
    entries_.emplace(name, std::move(entry));
  }

  /// Looks up an entry; throws with the known names on a miss.
  std::shared_ptr<const T> find(const std::string& name) const {
    auto it = entries_.find(name);
    if (it != entries_.end()) return it->second;
    std::string known;
    for (const auto& [key, unused] : entries_)
      known += (known.empty() ? "" : ", ") + key;
    EXASTP_FAIL("unknown " + kind_ + " \"" + name + "\" (known: " + known +
                ")");
  }

  bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }

  /// All registered names, sorted (std::map iterates in key order).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [key, unused] : entries_) out.push_back(key);
    return out;
  }

 private:
  std::string kind_;
  std::map<std::string, std::shared_ptr<const T>> entries_;
};

}  // namespace exastp
