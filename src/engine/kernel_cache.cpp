#include "exastp/engine/kernel_cache.h"

#include <map>
#include <mutex>
#include <string>

namespace exastp {
namespace {

std::mutex& cache_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, StpKernel>& cache() {
  static std::map<std::string, StpKernel> map;
  return map;
}

KernelCacheStats& stats() {
  static KernelCacheStats s;
  return s;
}

}  // namespace

StpKernel cached_stp_kernel(const KernelFactory& pde, StpVariant variant,
                            int order, Isa isa, NodeFamily family,
                            Precision precision) {
  const std::string key = pde.name() + "/" + variant_name(variant) + "/" +
                          std::to_string(order) + "/" + isa_name(isa) + "/" +
                          (family == NodeFamily::kGaussLegendre ? "gl"
                                                                : "lobatto") +
                          "/" + precision_name(precision);
  StpKernel prototype;
  {
    std::lock_guard<std::mutex> lock(cache_mutex());
    auto it = cache().find(key);
    if (it != cache().end()) {
      ++stats().hits;
      prototype = it->second;  // copies share the impl; run() is never
                               // called on the prototype
    }
  }
  if (!prototype) {
    // Build outside the lock (construction resolves quadrature + basis
    // tables); a racing thread may build the same prototype — the first
    // insert wins and the duplicate is discarded, still counted as the
    // miss it was.
    StpKernel built = pde.make_kernel(variant, order, isa, family, precision);
    std::lock_guard<std::mutex> lock(cache_mutex());
    ++stats().misses;
    auto [it, inserted] = cache().emplace(key, built);
    prototype = it->second;
    (void)inserted;
  }
  // Fork outside the lock: an independent workspace per request, so
  // concurrent pool jobs never share mutable kernel state.
  return prototype.fork();
}

KernelCacheStats kernel_cache_stats() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  return stats();
}

void reset_kernel_cache_stats() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  stats() = KernelCacheStats{};
}

}  // namespace exastp
