#include "exastp/engine/simulation.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "exastp/common/check.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/norms.h"
#include "exastp/solver/output.h"
#include "exastp/solver/rk_dg_solver.h"
#include "exastp/solver/sharded_solver.h"

namespace exastp {

Simulation::Simulation(SimulationConfig config, Isa isa,
                       std::shared_ptr<const KernelFactory> pde,
                       std::shared_ptr<const Scenario> scenario,
                       std::unique_ptr<SolverBase> solver)
    : config_(std::move(config)),
      isa_(isa),
      pde_(std::move(pde)),
      scenario_(std::move(scenario)),
      solver_(std::move(solver)) {}

Simulation Simulation::from_config(SimulationConfig config) {
  std::shared_ptr<const Scenario> scenario = find_scenario(config.scenario);
  if (config.pde.empty()) config.pde = scenario->default_pde();
  EXASTP_CHECK_MSG(scenario->compatible_with(config.pde),
                   "scenario \"" + scenario->name() +
                       "\" is not defined for pde \"" + config.pde + "\"");
  std::shared_ptr<const KernelFactory> pde = find_pde(config.pde);

  // Reject scenario.* keys the scenario does not declare, so parameter
  // typos fail loudly instead of silently running the defaults.
  const std::vector<std::string> known_params = scenario->param_keys();
  for (const auto& [key, value] : config.scenario_params) {
    if (std::find(known_params.begin(), known_params.end(), key) !=
        known_params.end())
      continue;
    std::string known;
    for (const std::string& k : known_params)
      known += (known.empty() ? "" : ", ") + k;
    EXASTP_FAIL("scenario \"" + scenario->name() +
                "\" has no parameter \"" + key + "\"" +
                (known.empty() ? " (it declares none)"
                               : " (known: " + known + ")"));
  }

  Isa isa;
  if (config.isa == "auto") {
    isa = host_best_isa();
  } else {
    isa = parse_isa(config.isa);
    EXASTP_CHECK_MSG(host_supports(isa),
                     "host cannot execute isa=" + config.isa);
  }

  // One shard factory serves both paths: a monolithic run is the factory
  // applied to the whole-domain grid, a sharded run applies it to every
  // partitioned view under the ShardedSolver façade. Each ADER shard gets
  // its own kernel instance (per-thread clones are forked per shard).
  const auto make_shard =
      [&](const Grid& grid) -> std::unique_ptr<SolverBase> {
    if (config.stepper == "ader") {
      return std::make_unique<AderDgSolver>(
          pde->runtime(),
          pde->make_kernel(config.variant, config.order, isa, config.family),
          grid, config.family);
    }
    if (config.stepper == "rk4" || config.stepper == "rk") {
      return std::make_unique<RkDgSolver>(pde->runtime(), config.order, isa,
                                          grid, config.family);
    }
    EXASTP_FAIL("unknown stepper \"" + config.stepper + "\" (ader|rk4)");
  };

  const std::array<int, 3> shard_grid = resolve_shard_grid(config);
  std::unique_ptr<SolverBase> solver;
  if (shard_grid[0] * shard_grid[1] * shard_grid[2] == 1) {
    solver = make_shard(Grid(config.grid));
  } else {
    solver = std::make_unique<ShardedSolver>(Partition(config.grid, shard_grid),
                                             make_shard);
  }

  solver->set_num_threads(config.threads);
  solver->set_initial_condition(scenario->initial_condition(pde, config));
  for (const MeshPointSource& source : scenario->sources(config))
    solver->add_point_source(source);

  Simulation simulation(std::move(config), isa, std::move(pde),
                        std::move(scenario), std::move(solver));
  simulation.shard_grid_ = shard_grid;
  // Attach the config-declared streaming observers (receivers, VTK series,
  // any registered plugin) in registry name order.
  for (std::shared_ptr<Observer>& observer :
       make_observers(simulation.config_, *simulation.pde_))
    simulation.add_observer(std::move(observer));
  return simulation;
}

void Simulation::add_observer(std::shared_ptr<Observer> observer) {
  EXASTP_CHECK_MSG(observer != nullptr, "observer must not be null");
  solver_->add_observer(observer.get());
  if (auto network = std::dynamic_pointer_cast<ReceiverNetwork>(observer);
      network != nullptr && receivers_ == nullptr)
    receivers_ = network;
  observers_.push_back(std::move(observer));
}

Simulation Simulation::from_args(const std::vector<std::string>& args) {
  return from_config(parse_simulation_args(args));
}

int Simulation::run() {
  const int steps = solver_->run_until(config_.t_end, config_.cfl);
  if (!config_.output.csv.empty()) write_csv(*solver_, config_.output.csv);
  if (!config_.output.vtk.empty()) {
    // Same quantity selection as the streaming VTK series: explicit
    // output.quantities, or the evolved quantities capped to keep the
    // file small.
    std::vector<int> quantities = output_quantities(config_, *pde_);
    if (config_.output.quantities.empty() && quantities.size() > 4)
      quantities.resize(4);
    write_vtk_cell_averages(*solver_, quantities,
                            default_quantity_names(quantities),
                            config_.output.vtk);
  }
  return steps;
}

double Simulation::l2_error() const {
  const int quantity = error_quantity();
  EXASTP_CHECK_MSG(quantity >= 0,
                   "scenario \"" + scenario_->name() +
                       "\" has no exact solution for pde \"" + pde_->name() +
                       "\"");
  return exastp::l2_error(*solver_, quantity,
                          scenario_->exact_solution(*pde_, config_));
}

std::string Simulation::summary() const {
  const PdeInfo info = pde_->info();
  const auto& cells = config_.grid.cells;
  // Effective topology: the shard block grid actually built plus the
  // owned-cell range per shard (a single number unless the split is
  // ragged).
  int min_cells = solver_->shard(0).grid().num_cells();
  int max_cells = min_cells;
  for (int s = 1; s < solver_->num_shards(); ++s) {
    const int n = solver_->shard(s).grid().num_cells();
    min_cells = std::min(min_cells, n);
    max_cells = std::max(max_cells, n);
  }
  std::ostringstream os;
  os << "pde=" << pde_->name() << " (m=" << info.quants << ")"
     << " scenario=" << scenario_->name()
     << " stepper=" << solver_->stepper_name()
     << " variant=" << variant_name(config_.variant)
     << " isa=" << isa_name(isa_) << " order=" << config_.order
     << " shards=" << shard_grid_[0] << "x" << shard_grid_[1] << "x"
     << shard_grid_[2] << " threads=" << solver_->num_threads() << " cells="
     << cells[0] << "x" << cells[1] << "x" << cells[2] << " cells/shard=";
  if (min_cells == max_cells) {
    os << max_cells;
  } else {
    os << min_cells << "-" << max_cells;
  }
  os << " t_end=" << config_.t_end;
  return os.str();
}

}  // namespace exastp
