#include "exastp/engine/simulation.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "exastp/common/check.h"
#include "exastp/common/mpi_runtime.h"
#include "exastp/engine/kernel_cache.h"
#include "exastp/engine/lts_clusters.h"
#include "exastp/io/receiver_sinks.h"
#include "exastp/kernels/fusion_autotune.h"
#include "exastp/mesh/balance_table.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/norms.h"
#include "exastp/solver/output.h"
#include "exastp/solver/rk_dg_solver.h"
#include "exastp/solver/sharded_solver.h"
#include "exastp/telemetry/step_metrics.h"
#include "exastp/telemetry/trace_export.h"

namespace exastp {

Simulation::Simulation(SimulationConfig config, Isa isa,
                       std::shared_ptr<const KernelFactory> pde,
                       std::shared_ptr<const Scenario> scenario,
                       std::unique_ptr<SolverBase> solver)
    : config_(std::move(config)),
      isa_(isa),
      pde_(std::move(pde)),
      scenario_(std::move(scenario)),
      solver_(std::move(solver)) {}

Simulation Simulation::from_config(SimulationConfig config) {
  // The run's registry exists from the first setup step: spans turn on when
  // any telemetry output asked for them, and the scope below routes
  // FlopCounter::instance() to this run for the whole build — so autotune
  // and kernel-construction FLOPs land in the job that caused them, not in
  // a process-wide counter shared with concurrent pool jobs.
  const TelemetryConfig& tc = config.telemetry;
  const bool spans_on =
      !tc.trace.empty() || !tc.metrics.empty() || !tc.progress.empty();
  auto telemetry = std::make_shared<TelemetryRegistry>(spans_on);
  TelemetryScope telemetry_scope(telemetry.get());
  const KernelCacheStats cache_before = kernel_cache_stats();

  std::shared_ptr<const Scenario> scenario = find_scenario(config.scenario);
  if (config.pde.empty()) config.pde = scenario->default_pde();
  EXASTP_CHECK_MSG(scenario->compatible_with(config.pde),
                   "scenario \"" + scenario->name() +
                       "\" is not defined for pde \"" + config.pde + "\"");
  std::shared_ptr<const KernelFactory> pde = find_pde(config.pde);

  // Reject scenario.* keys the scenario does not declare, so parameter
  // typos fail loudly instead of silently running the defaults.
  const std::vector<std::string> known_params = scenario->param_keys();
  for (const auto& [key, value] : config.scenario_params) {
    if (std::find(known_params.begin(), known_params.end(), key) !=
        known_params.end())
      continue;
    std::string known;
    for (const std::string& k : known_params)
      known += (known.empty() ? "" : ", ") + k;
    EXASTP_FAIL("scenario \"" + scenario->name() +
                "\" has no parameter \"" + key + "\"" +
                (known.empty() ? " (it declares none)"
                               : " (known: " + known + ")"));
  }

  Isa isa;
  if (config.isa == "auto") {
    isa = host_best_isa();
  } else {
    isa = parse_isa(config.isa);
    EXASTP_CHECK_MSG(host_supports(isa),
                     "host cannot execute isa=" + config.isa);
  }

  // fp32 storage lives inside the ADER predictor kernels; the RK4 baseline
  // has no kernel to narrow. The variant restriction (splitck |
  // aosoa_splitck) is enforced where the kernel is built, with the same
  // wording, so programmatic make_kernel callers get it too.
  EXASTP_CHECK_MSG(
      config.precision == Precision::kF64 || config.stepper == "ader",
      "precision=fp32 requires stepper=ader (rk4 has no fp32 kernel path)");

  // Clustered LTS needs the ADER predictor's Taylor expansion to evaluate
  // neighbours at intermediate times; the RK4 baseline has no equivalent.
  EXASTP_CHECK_MSG(!config.lts || config.stepper == "ader",
                   "lts=on requires stepper=ader (rk4 has no local time "
                   "stepping schedule)");

  // Fused-block autotune table: load whatever the file already knows, then
  // measure this run's (pde, order, isa, precision) entry if it is missing
  // and persist the grown table. Block sizes are bitwise-neutral, so this
  // only changes speed — but note the prototype kernel cache bakes the
  // block size in at construction, so a prototype built before the tune
  // keeps its old block until the process restarts.
  if (!config.autotune.empty() && config.stepper == "ader" &&
      (config.variant == StpVariant::kSplitCk ||
       config.variant == StpVariant::kAosoaSplitCk)) {
    ScopedSpan span(SpanId::kSetupTune);
    FusionTuneTable& table = FusionTuneTable::instance();
    table.load_file(config.autotune);
    if (!table.has(pde->name(), config.order, isa, config.precision)) {
      table.tune(pde->name(), config.order, pde->info().quants, isa,
                 config.precision, [&] {
                   return pde->make_kernel(config.variant, config.order, isa,
                                           config.family, config.precision);
                 });
      table.save_file(config.autotune);
    }
  }

  // One shard factory serves both paths: a monolithic run is the factory
  // applied to the whole-domain grid, a sharded run applies it to every
  // partitioned view under the ShardedSolver façade. Each ADER shard gets
  // its own kernel instance (per-thread clones are forked per shard).
  const auto make_shard =
      [&](const Grid& grid) -> std::unique_ptr<SolverBase> {
    if (config.stepper == "ader") {
      // Kernels come from the process-wide prototype cache (one build per
      // (pde, variant, order, isa, family), shared across every Simulation
      // in the process — the ensemble pool's jobs in particular); the fork
      // gives this shard an independent workspace.
      return std::make_unique<AderDgSolver>(
          pde->runtime(),
          cached_stp_kernel(*pde, config.variant, config.order, isa,
                            config.family, config.precision),
          grid, config.family);
    }
    if (config.stepper == "rk4" || config.stepper == "rk") {
      return std::make_unique<RkDgSolver>(pde->runtime(), config.order, isa,
                                          grid, config.family);
    }
    EXASTP_FAIL("unknown stepper \"" + config.stepper + "\" (ader|rk4)");
  };

  const bool distributed = config.backend == "mpi";
  if (distributed) {
    EXASTP_CHECK_MSG(MpiRuntime::compiled_in(),
                     "backend=mpi needs a build with -DEXASTP_WITH_MPI=ON");
    EXASTP_CHECK_MSG(MpiRuntime::initialized(),
                     "backend=mpi needs an MPI launch (mpirun)");
    // Post-hoc whole-field dumps would need every rank's cells in one
    // process; the streaming per-shard series covers distributed runs.
    EXASTP_CHECK_MSG(config.output.csv.empty() && config.output.vtk.empty(),
                     "csv=/vtk= post-hoc outputs are not supported with "
                     "backend=mpi — use output.series");
  }

  // Rate clusters come from the scenario's materials on the *global* grid,
  // so every rank (and the monolithic path) derives the same assignment
  // from the same inputs — no communication needed. The assignment also
  // feeds the weighted partition below: a cluster-k cell runs 2^(K-1-k)
  // substeps per macro step, so equal-cell shards would no longer be
  // equal-work shards. balance= refines the substep-count weights with
  // per-cluster costs measured by a previous run.
  LtsClustering clustering;
  if (config.lts) {
    clustering = compute_lts_clusters(
        config.grid, *pde->runtime(),
        scenario->initial_condition(pde, config), config.order, config.family,
        config.lts_clusters);
  }
  std::vector<double> cell_weights;
  if (config.lts && clustering.num_clusters > 1) {
    BalanceTable balance;
    if (!config.balance.empty()) balance.load_file(config.balance);
    cell_weights = balance.cell_weights(pde->name(), config.order,
                                        clustering.cluster,
                                        clustering.num_clusters);
  }

  const std::array<int, 3> shard_grid = resolve_shard_grid(config);
  const int total_shards = shard_grid[0] * shard_grid[1] * shard_grid[2];
  if (config.shards_per_rank > 0) {
    // An explicit shards_per_rank must be consistent with what actually
    // resolved — Partition::factor can shrink a requested total when the
    // mesh cannot split that finely, and silently running a different
    // over-decomposition than asked would invalidate a bench matrix.
    const int ranks = distributed ? MpiRuntime::size() : 1;
    EXASTP_CHECK_MSG(
        total_shards == ranks * config.shards_per_rank,
        "shards_per_rank=" + std::to_string(config.shards_per_rank) +
            " needs " + std::to_string(ranks * config.shards_per_rank) +
            " shard(s) over " + std::to_string(ranks) +
            " rank(s), but the decomposition resolved to " +
            std::to_string(total_shards) +
            " — the mesh may not split that finely; set shards= explicitly "
            "or lower shards_per_rank=");
  }
  std::unique_ptr<SolverBase> solver;
  {
    ScopedSpan span(SpanId::kSetupSolver);
    if (!distributed && total_shards == 1) {
      solver = make_shard(Grid(config.grid));
    } else {
      // backend=mpi always goes through the sharded composite (even for one
      // shard per rank), so the rank map is validated and every rank
      // drives the same split-phase schedule.
      Partition partition(config.grid, shard_grid, cell_weights);
      if (distributed) {
        // Group shards onto ranks weighted by summed per-cell cost — the
        // balance-table weights when LTS loaded them, plain cell counts
        // otherwise — so a ragged over-decomposition keeps measured work
        // even across ranks, not just shard counts.
        std::vector<double> shard_costs(
            static_cast<std::size_t>(partition.num_shards()), 0.0);
        for (int s = 0; s < partition.num_shards(); ++s) {
          if (cell_weights.empty()) {
            shard_costs[static_cast<std::size_t>(s)] =
                static_cast<double>(partition.subdomain(s).grid.num_cells());
          } else {
            for (int lc = 0; lc < partition.subdomain(s).grid.num_cells();
                 ++lc)
              shard_costs[static_cast<std::size_t>(s)] +=
                  cell_weights[static_cast<std::size_t>(
                      partition.global_cell(s, lc))];
          }
        }
        partition.assign_ranks(MpiRuntime::size(), shard_costs);
      }
      solver = std::make_unique<ShardedSolver>(std::move(partition),
                                               make_shard, config.backend,
                                               config.schedule);
    }
  }

  {
    ScopedSpan span(SpanId::kSetupInit);
    solver->set_num_threads(config.threads);
    solver->set_initial_condition(scenario->initial_condition(pde, config));
    for (const MeshPointSource& source : scenario->sources(config))
      solver->add_point_source(source);
    if (config.lts)
      solver->enable_lts(clustering.cluster, clustering.num_clusters);
  }

  Simulation simulation(std::move(config), isa, std::move(pde),
                        std::move(scenario), std::move(solver));
  simulation.shard_grid_ = shard_grid;
  simulation.distributed_ = distributed;
  simulation.telemetry_ = telemetry;
  const KernelCacheStats cache_after = kernel_cache_stats();
  telemetry->add_counter("setup_kernel_cache_hits",
                         static_cast<double>(cache_after.hits -
                                             cache_before.hits));
  telemetry->add_counter("setup_kernel_cache_misses",
                         static_cast<double>(cache_after.misses -
                                             cache_before.misses));
  // Attach the config-declared streaming observers (receivers, VTK series,
  // any registered plugin) in registry name order. Distributed runs build
  // them from a rank-local view of the config: each rank's network holds
  // the receivers its shard owns and streams them to a per-rank part file
  // that rank 0 merges after the run (io/receiver_sinks.h).
  SimulationConfig observer_config = simulation.config_;
  if (distributed && !observer_config.receivers.empty()) {
    const Grid global(observer_config.grid);
    const auto& partition =
        dynamic_cast<const ShardedSolver&>(*simulation.solver_).partition();
    std::vector<std::array<double, 3>> mine;
    for (const std::array<double, 3>& position : observer_config.receivers)
      if (simulation.solver_->shard_is_local(
              partition.owner_of(global.locate(position))))
        mine.push_back(position);

    const OutputConfig& output = observer_config.output;
    if (!output.receivers_csv.empty() || !output.receivers_bin.empty()) {
      ReceiverMergePlan plan;
      plan.positions = observer_config.receivers;
      plan.bin_path = output.receivers_bin;
      plan.csv_path = output.receivers_csv;
      plan.part_base = plan.bin_path.empty() ? plan.csv_path : plan.bin_path;
      const std::string part = plan.part_base + ".r" +
                               std::to_string(simulation.solver_->rank()) +
                               ".part";
      // Drop any part a previous run left at this rank's path — a rank
      // that owns no receivers now opens no sink, and a stale stream
      // must not leak into the merge.
      std::remove(part.c_str());
      observer_config.output.receivers_bin = mine.empty() ? "" : part;
      observer_config.output.receivers_csv.clear();  // merged, not streamed
      simulation.receiver_merge_ = std::move(plan);
    }
    observer_config.receivers = std::move(mine);
  }
  for (std::shared_ptr<Observer>& observer :
       make_observers(observer_config, *simulation.pde_))
    simulation.add_observer(std::move(observer));

  // Telemetry observers attach last, so their rows see the step the other
  // observers already processed. Rank 0 streams to the configured path;
  // other ranks of a distributed run stream beside it (their phase times
  // are their own — unlike receiver records, the rows do not merge).
  // Read the simulation's own config copy: `config` was moved from above.
  const TelemetryConfig& tcs = simulation.config_.telemetry;
  if (!tcs.metrics.empty()) {
    const int rank = simulation.solver_->rank();
    const std::string path =
        rank == 0 ? tcs.metrics
                  : tcs.metrics + ".r" + std::to_string(rank) + ".part";
    simulation.add_observer(std::make_shared<StepMetricsObserver>(
        telemetry.get(), path, tcs.metrics_interval));
  }
  if (tcs.progress == "stderr" && simulation.solver_->rank() == 0)
    simulation.add_observer(std::make_shared<ProgressObserver>());
  return simulation;
}

void Simulation::add_observer(std::shared_ptr<Observer> observer) {
  EXASTP_CHECK_MSG(observer != nullptr, "observer must not be null");
  solver_->add_observer(observer.get());
  if (auto network = std::dynamic_pointer_cast<ReceiverNetwork>(observer);
      network != nullptr && receivers_ == nullptr)
    receivers_ = network;
  observers_.push_back(std::move(observer));
}

Simulation Simulation::from_args(const std::vector<std::string>& args) {
  return from_config(parse_simulation_args(args));
}

int Simulation::run() {
  // Install this run's registry on the driving thread for the whole loop;
  // ParallelFor re-installs it on every worker, and the scope also routes
  // the kernels' FLOP adds to this run's counter.
  TelemetryScope telemetry_scope(telemetry_.get());
  const int steps = solver_->run_until(config_.t_end, config_.cfl);
  // Clustered LTS post-run accounting: the measured per-cluster sweep
  // times become summary gauges, and — when balance= names a table — the
  // per-cell-substep costs they imply are persisted so the *next* run's
  // shard split weights cells by measured work (rank 0 writes; every rank
  // measured only its own shards, but the per-substep cost is a per-cell
  // property that any rank's sample estimates).
  if (config_.lts) {
    const std::vector<SolverBase::LtsClusterStats> stats =
        solver_->lts_cluster_stats();
    telemetry_->set_gauge("lts_clusters", static_cast<double>(stats.size()));
    for (std::size_t k = 0; k < stats.size(); ++k) {
      telemetry_->set_gauge("lts_cluster" + std::to_string(k) + "_cells",
                            static_cast<double>(stats[k].cells));
      telemetry_->set_gauge("lts_cluster" + std::to_string(k) + "_substeps",
                            static_cast<double>(stats[k].cell_substeps));
    }
    if (!config_.balance.empty() && solver_->rank() == 0) {
      BalanceTable balance;
      balance.load_file(config_.balance);
      for (std::size_t k = 0; k < stats.size(); ++k)
        if (stats[k].cell_substeps > 0 && stats[k].ns > 0)
          balance.set(pde_->name(), config_.order, static_cast<int>(k),
                      static_cast<double>(stats[k].ns) /
                          static_cast<double>(stats[k].cell_substeps));
      balance.save_file(config_.balance);
    }
  }
  if (distributed_) {
    MpiRuntime::barrier();  // every rank's streams and pieces are on disk
    if (solver_->rank() == 0 && receiver_merge_.has_value())
      merge_receiver_records(receiver_merge_->part_base, solver_->num_ranks(),
                             receiver_merge_->positions,
                             receiver_merge_->bin_path,
                             receiver_merge_->csv_path);
    MpiRuntime::barrier();  // merged artifacts visible to every rank
  }
  if (!config_.telemetry.trace.empty()) {
    if (distributed_) {
      // Trace parts mirror the receiver streams: every rank writes its
      // own, rank 0 merges once all parts are on disk.
      write_chrome_trace_part(*telemetry_, config_.telemetry.trace,
                              solver_->rank());
      MpiRuntime::barrier();
      if (solver_->rank() == 0)
        merge_chrome_trace_parts(config_.telemetry.trace,
                                 solver_->num_ranks());
      MpiRuntime::barrier();
    } else {
      write_chrome_trace(*telemetry_, config_.telemetry.trace);
    }
  }
  if (!config_.output.csv.empty()) write_csv(*solver_, config_.output.csv);
  if (!config_.output.vtk.empty()) {
    // Same quantity selection as the streaming VTK series: explicit
    // output.quantities, or the evolved quantities capped to keep the
    // file small.
    std::vector<int> quantities = output_quantities(config_, *pde_);
    if (config_.output.quantities.empty() && quantities.size() > 4)
      quantities.resize(4);
    write_vtk_cell_averages(*solver_, quantities,
                            default_quantity_names(quantities),
                            config_.output.vtk);
  }
  return steps;
}

double Simulation::l2_error() const {
  const int quantity = error_quantity();
  EXASTP_CHECK_MSG(quantity >= 0,
                   "scenario \"" + scenario_->name() +
                       "\" has no exact solution for pde \"" + pde_->name() +
                       "\"");
  const ExactSolution exact = scenario_->exact_solution(*pde_, config_);
  if (solver_->num_ranks() > 1) {
    // Collective: each rank sums its resident shards (in shard order) and
    // the per-rank partials combine in rank order — deterministic, with
    // the per-shard association replacing the monolithic cell-order sum.
    double local = 0.0;
    for (int s = 0; s < solver_->num_shards(); ++s)
      if (solver_->shard_is_local(s))
        local += l2_error_squared(solver_->shard(s), quantity, exact);
    return std::sqrt(MpiRuntime::ordered_sum_across_ranks(local));
  }
  return exastp::l2_error(*solver_, quantity, exact);
}

std::string Simulation::telemetry_summary() const {
  return telemetry_summary_table(*telemetry_);
}

std::string Simulation::summary() const {
  const PdeInfo info = pde_->info();
  const auto& cells = config_.grid.cells;
  // Effective topology: the shard block grid actually built plus the
  // owned-cell range per shard (a single number unless the split is
  // ragged). The Partition knows every shard's size, so this works on any
  // rank of a distributed run.
  const auto* sharded = dynamic_cast<const ShardedSolver*>(solver_.get());
  int min_cells, max_cells;
  if (sharded != nullptr) {
    min_cells = sharded->partition().min_cells_per_shard();
    max_cells = sharded->partition().max_cells_per_shard();
  } else {
    min_cells = max_cells = solver_->grid().num_cells();
  }
  std::ostringstream os;
  os << "pde=" << pde_->name() << " (m=" << info.quants << ")"
     << " scenario=" << scenario_->name()
     << " stepper=" << solver_->stepper_name()
     << " variant=" << variant_name(config_.variant)
     << " isa=" << isa_name(isa_) << " order=" << config_.order
     << " precision=" << precision_name(config_.precision)
     << " shards=" << shard_grid_[0] << "x" << shard_grid_[1] << "x"
     << shard_grid_[2] << " threads=" << solver_->num_threads() << " cells="
     << cells[0] << "x" << cells[1] << "x" << cells[2] << " cells/shard=";
  if (min_cells == max_cells) {
    os << max_cells;
  } else {
    os << min_cells << "-" << max_cells;
  }
  if (distributed_) {
    os << " backend=mpi rank=" << solver_->rank() << "/"
       << solver_->num_ranks();
    if (sharded != nullptr &&
        sharded->num_shards() != solver_->num_ranks()) {
      // Over-decomposed: the per-rank shard group sizes (one number
      // unless the rank grouping is ragged).
      const Partition& partition = sharded->partition();
      int min_group = partition.num_shards(), max_group = 0;
      for (int r = 0; r < partition.num_ranks(); ++r) {
        const int size =
            static_cast<int>(partition.shards_of_rank(r).size());
        min_group = std::min(min_group, size);
        max_group = std::max(max_group, size);
      }
      os << " shards/rank=";
      if (min_group == max_group) {
        os << max_group;
      } else {
        os << min_group << "-" << max_group;
      }
    }
  }
  if (sharded != nullptr) os << " schedule=" << sharded->schedule();
  if (config_.lts) os << " lts_clusters=" << solver_->lts_num_clusters();
  os << " t_end=" << config_.t_end;
  return os.str();
}

}  // namespace exastp
