// Parameter sweeps over the config-driven runner: one base config, one
// swept key, one summary CSV row streamed per completed run.
//
// `exastp_run sweep=order:2,3,4 scenario=planewave ...` runs the config
// once per value and streams
//   <key>,steps,t,l2_error,seconds
// rows as each run finishes, so a long sweep can be tailed or consumed
// downstream while later runs are still executing. Per-run file outputs
// (csv/vtk/series/receiver streams) get a "_<value>" suffix so runs do not
// overwrite each other.
//
// run_sweep is a thin wrapper over the ensemble service
// (src/service/simulation_pool.h): each swept value becomes one pool job,
// run sequentially (jobs=1) with stop-on-failure — so sweeps share the
// pool's kernel cache and result memoization (a duplicate value streams
// its row from the cached run) without a second run-many code path.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace exastp {

struct SweepSpec {
  std::string key;                  ///< config key to sweep (e.g. "order")
  std::vector<std::string> values;  ///< one run per value, in order
};

/// Parses the value of a sweep= argument, "key:v1,v2[,...]". Throws on a
/// missing key, missing values or an attempt to sweep "sweep" itself.
SweepSpec parse_sweep_spec(const std::string& value);

/// Splits `args` into plain config args and an optional sweep spec (at most
/// one sweep= pair; a second one throws). Returns the remaining args.
std::vector<std::string> extract_sweep(const std::vector<std::string>& args,
                                       SweepSpec* spec, bool* found);

/// Runs base_args once per spec value (as if "key=value" were appended),
/// streaming one summary CSV row per run to `out` (header first, flushed
/// after every row). Returns the number of completed runs. A run that
/// throws aborts the sweep with the partial CSV intact.
int run_sweep(const std::vector<std::string>& base_args,
              const SweepSpec& spec, std::ostream& out);

}  // namespace exastp
