// Declarative run description consumed by the Simulation façade.
//
// Everything a workload needs — PDE, scenario, kernel variant, ISA, order,
// grid, boundaries, end time, outputs — in one plain struct, so new
// workloads are a config (or a key=value command line, see
// parse_simulation_args) instead of a recompiled driver.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "exastp/kernels/stp_common.h"
#include "exastp/mesh/grid.h"
#include "exastp/quadrature/quadrature.h"

namespace exastp {

struct OutputConfig {
  std::string csv;  ///< nodal-values CSV path after the run; empty = none
  std::string vtk;  ///< cell-average VTK path after the run; empty = none

  // Streaming outputs, produced incrementally from the time loop by the
  // observer subsystem (src/io/, attached via ObserverRegistry).
  /// Base path of an interval-spaced VTK snapshot series plus its
  /// .pvd-style index (<base>_NNNN.vtk, <base>.pvd); empty = none.
  std::string series;
  /// Simulation-time spacing of series snapshots; <= 0 = every step.
  double interval = 0.0;
  /// Appending per-step receiver CSV / binary record stream; empty = none.
  std::string receivers_csv;
  std::string receivers_bin;
  /// Quantity indices receivers sample; empty = all evolved quantities.
  std::vector<int> quantities;
};

/// Runtime observability (src/telemetry/, docs/observability.md). All of it
/// is read-only instrumentation: enabling any key changes no simulation
/// bytes, only what gets measured and written beside the run.
struct TelemetryConfig {
  /// Chrome trace-event JSON (Perfetto-loadable) span timeline written
  /// after the run; empty = spans off. Distributed runs write per-rank
  /// `<trace>.r<K>.part` streams merged by rank 0.
  std::string trace;
  /// Per-step metrics stream (CSV, or JSONL when the path ends ".jsonl"),
  /// appended every `metrics_interval` steps; empty = none. Rank 0 writes
  /// `metrics`; other ranks write `<metrics>.r<K>.part`.
  std::string metrics;
  /// Steps between metrics rows; >= 1.
  int metrics_interval = 1;
  /// "stderr" enables the rank-0 progress heartbeat; empty = off.
  std::string progress;
};

struct SimulationConfig {
  std::string scenario = "gaussian";
  /// PDE registry key; empty picks the scenario's default PDE.
  std::string pde;
  /// Time stepper: "ader" (paper scheme) or "rk4" (baseline).
  std::string stepper = "ader";
  StpVariant variant = StpVariant::kAosoaSplitCk;
  /// "auto" resolves to host_best_isa(); otherwise "scalar"/"avx2"/"avx512".
  std::string isa = "auto";
  int order = 4;
  NodeFamily family = NodeFamily::kGaussLegendre;
  /// Thread count of the stepper hot loops; 0 (or any value < 1) means
  /// "auto" = hardware concurrency. Results are bitwise-identical for
  /// every thread count (see README "Threading").
  int threads = 0;
  /// Domain decomposition: "AxBxC" shard block grid, a total shard count
  /// to factor onto the mesh, or "auto" (factor the resolved thread
  /// count — or the MPI launch size under backend=mpi). Resolved by
  /// resolve_shard_grid; results are bitwise-identical for every
  /// decomposition (see README "Sharding").
  std::string shards = "1";
  /// Halo exchange backend: "inprocess" (every shard in this process, the
  /// default) or "mpi" (one rank per shard, -DEXASTP_WITH_MPI=ON builds
  /// under mpirun; see README "Distributed execution (MPI)"). Results are
  /// bitwise-identical across backends.
  std::string backend = "inprocess";
  /// Over-decomposition: shards per MPI rank. 0 ("auto", the default)
  /// keeps the historical behaviour — one shard per rank under
  /// backend=mpi, and the resolved decomposition unchanged locally. N >= 1
  /// makes shards=auto resolve to ranks * N shards and requires an
  /// explicit shards= total to equal ranks * N; the partition's rank map
  /// then groups N consecutive shards per rank (weighted by measured cost
  /// when a balance table is loaded). Locally (backend=inprocess) N >= 1
  /// simply makes shards=auto resolve to N shards, so one config exercises
  /// the same decomposition with and without MPI. Results are
  /// bitwise-identical for every grouping.
  int shards_per_rank = 0;
  /// Step schedule of the sharded solver: "deps" (default) advances each
  /// shard as its halo inputs arrive, pipelining the next phase's sends
  /// behind other shards' compute; "lockstep" barriers every phase.
  /// Bitwise-identical results either way, so this key is pure performance
  /// state and excluded from the canonical config string.
  std::string schedule = "deps";
  /// Kernel storage precision: kF64 (default) runs the paper's double
  /// kernels; kF32 stores the predictor's DOF/flux/derivative tensors in
  /// float inside the kernel (half the bytes through the memory-bound GEMM
  /// chains) while the kernel boundary, the solver state and every
  /// reduction (stable_dt, norms, energy) stay double. fp32 requires
  /// stepper=ader and a SplitCK-family variant (splitck | aosoa_splitck);
  /// accuracy bounds per order are documented in docs/precision.md.
  Precision precision = Precision::kF64;
  /// Path of a fused-block autotune table (kernels/fusion_autotune.h):
  /// loaded before kernels are built, the entry for this run's
  /// (pde, order, isa, precision) is measured if missing, and the table is
  /// saved back. Empty = use the built-in footprint heuristic. Block sizes
  /// are bitwise- and FLOP-neutral, so this key is pure performance state
  /// and excluded from the canonical config string.
  std::string autotune;

  /// Clustered local time stepping (docs/lts.md): "on" bins cells into
  /// powers-of-two rate clusters from their local wave speeds and steps
  /// each cluster at its own dt; "off" (default) is global stepping.
  /// Requires stepper=ader. lts=on with one resulting cluster is
  /// bitwise-identical to lts=off, so these keys join the canonical
  /// string only through the schedule they actually select.
  bool lts = false;
  /// Cap on the number of rate clusters: "auto" (0) lets the wave-speed
  /// spread decide, an integer N >= 1 caps the binning at N clusters.
  int lts_clusters = 0;
  /// Rate ratio between adjacent clusters; only 2 is supported (the
  /// power-of-two schedule the cluster algebra assumes).
  int lts_rate = 2;
  /// Path of a measured-cost balance table (mesh/balance_table.h): loaded
  /// before partitioning so shard splits weight cells by measured per-
  /// cluster cost, updated with this run's measurements and saved back.
  /// Empty = substep-count weighting only. Like autotune, pure
  /// performance state — every decomposition is bitwise-identical — so
  /// it is excluded from the canonical config string.
  std::string balance;

  GridSpec grid;
  double t_end = 0.5;
  double cfl = 0.4;
  OutputConfig output;
  TelemetryConfig telemetry;

  /// Receiver probe positions sampled after every step when non-empty
  /// (the façade builds a ReceiverNetwork observer from them).
  std::vector<std::array<double, 3>> receivers;

  /// Generic scenario parameter passthrough: "scenario.<key>=value" CLI
  /// pairs land here with the "scenario." prefix stripped, and scenario
  /// factories read them (e.g. loh1 materials, planewave wavenumber).
  /// Keys a scenario does not declare (Scenario::param_keys) are rejected
  /// by Simulation::from_config.
  std::map<std::string, std::string> scenario_params;
};

/// Typed accessors for scenario_params: the stored string parsed as a
/// double/int, or `fallback` when the key is absent. Malformed values throw.
double scenario_param(const SimulationConfig& config, const std::string& key,
                      double fallback);
int scenario_param_int(const SimulationConfig& config, const std::string& key,
                       int fallback);

/// Deterministic one-line serialization of every config field (maps in key
/// order, doubles printed round-trip exactly) — the memoization key of the
/// ensemble service (src/service/simulation_pool.h): two configs with equal
/// canonical strings produce bitwise-identical results. `threads` is
/// deliberately excluded: results are bitwise-identical for every thread
/// count (README "Threading"), so a batch that re-runs a config with a
/// different thread budget still hits the cache.
std::string canonical_config_string(const SimulationConfig& config);

/// Resolves config.shards against the grid, thread count and rank count
/// into the effective shard block grid: "AxBxC" is taken literally (each
/// dimension needs at least one cell per shard), a plain total and "auto"
/// (= ranks x shards_per_rank under backend=mpi; otherwise shards_per_rank
/// when given, else the resolved thread count) are factored onto the mesh by
/// Partition::factor — so the effective topology can be smaller than a
/// requested total when the mesh cannot be split that finely; the runner's
/// summary line prints what was actually used.
std::array<int, 3> resolve_shard_grid(const SimulationConfig& config);

/// Applies the scenario's recommended grid/boundaries/end time to `config`
/// (looked up by config.scenario). parse_simulation_args calls this before
/// applying explicit key=value overrides; call it yourself when building a
/// SimulationConfig by hand and you want the scenario defaults.
void apply_scenario_defaults(SimulationConfig& config);

/// Parses "key=value" arguments into a config. The scenario is resolved
/// first and its defaults applied, then the remaining pairs override them,
/// so e.g. {"scenario=loh1", "cells=8x8x8"} refines the stock LOH1 box.
/// A key given twice is a hard error naming the key — a duplicate in a
/// hand-written batch line is almost always a typo, and silently letting
/// the later pair win would run a config the user did not ask for.
///
/// Keys: pde, scenario, stepper, variant, isa, order, family (gl|lobatto),
/// cells (NxMxK or one int for a cube), extent, origin (comma- or
/// x-separated triples), bc (periodic|outflow|wall, one or three
/// comma-separated), t_end, cfl, csv, vtk, the streaming output.* keys
/// (series, interval, receivers_csv, receivers_bin, quantities; csv/vtk
/// also accepted with the prefix), receivers (semicolon-separated x,y,z
/// triples) and scenario.<key> passthrough pairs. Unknown keys throw.
SimulationConfig parse_simulation_args(const std::vector<std::string>& args);

/// One-line-per-key usage text for CLI drivers.
std::string simulation_usage();

/// Every key parse_simulation_args accepts, in usage order, with the
/// scenario passthrough family spelled "scenario.*". parse_simulation_args
/// itself validates incoming keys against this list (before the typed
/// apply step), so a parser branch whose key is missing here fails loudly
/// in any test that uses the key — and the docs-sync test
/// (tests/test_docs.cpp) cross-checks this list against
/// docs/config_reference.md, keeping parser and reference in lockstep.
std::vector<std::string> accepted_config_keys();

/// The driver-only keys exastp_run peels off before config parsing
/// (sweep=, batch=, jobs=, gallery=). Documented in the same reference;
/// exported separately because parse_simulation_args rejects them.
std::vector<std::string> driver_only_keys();

}  // namespace exastp
