// Declarative run description consumed by the Simulation façade.
//
// Everything a workload needs — PDE, scenario, kernel variant, ISA, order,
// grid, boundaries, end time, outputs — in one plain struct, so new
// workloads are a config (or a key=value command line, see
// parse_simulation_args) instead of a recompiled driver.
#pragma once

#include <string>
#include <vector>

#include "exastp/kernels/stp_common.h"
#include "exastp/mesh/grid.h"
#include "exastp/quadrature/quadrature.h"

namespace exastp {

struct OutputConfig {
  std::string csv;  ///< nodal-values CSV path; empty = no output
  std::string vtk;  ///< cell-average VTK path; empty = no output
};

struct SimulationConfig {
  std::string scenario = "gaussian";
  /// PDE registry key; empty picks the scenario's default PDE.
  std::string pde;
  /// Time stepper: "ader" (paper scheme) or "rk4" (baseline).
  std::string stepper = "ader";
  StpVariant variant = StpVariant::kAosoaSplitCk;
  /// "auto" resolves to host_best_isa(); otherwise "scalar"/"avx2"/"avx512".
  std::string isa = "auto";
  int order = 4;
  NodeFamily family = NodeFamily::kGaussLegendre;
  /// Thread count of the stepper hot loops; 0 (or any value < 1) means
  /// "auto" = hardware concurrency. Results are bitwise-identical for
  /// every thread count (see README "Threading").
  int threads = 0;

  GridSpec grid;
  double t_end = 0.5;
  double cfl = 0.4;
  OutputConfig output;
};

/// Applies the scenario's recommended grid/boundaries/end time to `config`
/// (looked up by config.scenario). parse_simulation_args calls this before
/// applying explicit key=value overrides; call it yourself when building a
/// SimulationConfig by hand and you want the scenario defaults.
void apply_scenario_defaults(SimulationConfig& config);

/// Parses "key=value" arguments into a config. The scenario is resolved
/// first and its defaults applied, then the remaining pairs override them,
/// so e.g. {"scenario=loh1", "cells=8x8x8"} refines the stock LOH1 box.
///
/// Keys: pde, scenario, stepper, variant, isa, order, family (gl|lobatto),
/// cells (NxMxK or one int for a cube), extent, origin (comma- or
/// x-separated triples), bc (periodic|outflow|wall, one or three
/// comma-separated), t_end, cfl, csv, vtk. Unknown keys throw.
SimulationConfig parse_simulation_args(const std::vector<std::string>& args);

/// One-line-per-key usage text for CLI drivers.
std::string simulation_usage();

}  // namespace exastp
