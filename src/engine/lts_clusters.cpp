#include "exastp/engine/lts_clusters.h"

#include <algorithm>
#include <cmath>

#include "exastp/common/check.h"

namespace exastp {

LtsClustering compute_lts_clusters(const GridSpec& spec, const PdeRuntime& pde,
                                   const InitialCondition& init, int order,
                                   NodeFamily family, int max_clusters) {
  EXASTP_CHECK_MSG(order >= 1, "compute_lts_clusters needs order >= 1");
  const Grid grid(spec);
  const int cells = grid.num_cells();
  const int m = pde.info().quants;
  const QuadratureRule rule = make_quadrature(order, family);

  LtsClustering out;
  out.cell_speed.assign(cells, 0.0);
  std::vector<double> q(static_cast<std::size_t>(m));
  for (int c = 0; c < cells; ++c) {
    const std::array<double, 3> origin = grid.cell_origin(c);
    double speed = 0.0;
    for (int kz = 0; kz < order; ++kz)
      for (int ky = 0; ky < order; ++ky)
        for (int kx = 0; kx < order; ++kx) {
          const std::array<double, 3> x{origin[0] + rule.nodes[kx] * grid.dx(0),
                                        origin[1] + rule.nodes[ky] * grid.dx(1),
                                        origin[2] + rule.nodes[kz] * grid.dx(2)};
          init(x, q.data());
          for (int dir = 0; dir < 3; ++dir)
            speed = std::max(speed, pde.max_wave_speed(q.data(), dir));
        }
    out.cell_speed[c] = speed;
  }

  const double global_max =
      *std::max_element(out.cell_speed.begin(), out.cell_speed.end());
  // A degenerate scenario (all speeds zero) cannot define rate ratios;
  // one cluster — plain global stepping — is the only sound answer.
  if (!(global_max > 0.0)) {
    out.cluster.assign(cells, 0);
    out.num_clusters = 1;
    return out;
  }

  // floor(log2(global_max / speed)), capped. Cells with zero local speed
  // (e.g. vacuum pockets) take the slowest admissible level; the cap keeps
  // the level finite even then. "auto" caps at 31 only to bound the
  // arithmetic — the face smoothing and compaction below decide the real K.
  const int cap = max_clusters > 0 ? max_clusters : 32;
  out.cluster.assign(cells, 0);
  for (int c = 0; c < cells; ++c) {
    const double speed = out.cell_speed[c];
    int level = cap - 1;
    if (speed > 0.0) {
      const double ratio = global_max / speed;
      level = std::min(level,
                       std::max(0, static_cast<int>(std::floor(
                                       std::log2(ratio)))));
      // Guard the edge where floating log2 rounds up across a power of
      // two: level k requires speed <= global_max / 2^k exactly.
      while (level > 0 && speed * static_cast<double>(1 << level) > global_max)
        --level;
    }
    out.cluster[c] = level;
  }

  // Lower clusters until every face-neighbour pair differs by at most one
  // level. Lowering means more substeps — always stable — and the sweep
  // monotonically decreases levels, so the fixpoint exists and is reached
  // in at most (max level) passes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int c = 0; c < cells; ++c)
      for (int dir = 0; dir < 3; ++dir)
        for (int side = 0; side < 2; ++side) {
          const NeighborRef nb = grid.neighbor(c, dir, side);
          if (nb.cell < 0) continue;
          if (out.cluster[c] > out.cluster[nb.cell] + 1) {
            out.cluster[c] = out.cluster[nb.cell] + 1;
            changed = true;
          }
        }
  }

  // Compact the used levels to 0..K-1. A gap means some level has no
  // cells; mapping the levels above it down shrinks their dt (stable) and
  // cannot widen any face gap, so the +-1 invariant survives.
  const int max_level =
      *std::max_element(out.cluster.begin(), out.cluster.end());
  std::vector<int> remap(static_cast<std::size_t>(max_level) + 1, -1);
  for (int c = 0; c < cells; ++c) remap[out.cluster[c]] = 0;
  int next = 0;
  for (int& slot : remap)
    if (slot == 0) slot = next++;
  for (int c = 0; c < cells; ++c) out.cluster[c] = remap[out.cluster[c]];
  out.num_clusters = next;
  return out;
}

}  // namespace exastp
