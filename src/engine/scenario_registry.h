// String-keyed scenario registry: named initial conditions, boundary
// setups, point sources and (where known) exact solutions.
//
// A Scenario is everything that turns a bare PDE into a runnable workload.
// Scenarios are looked up by name at runtime ("planewave", "loh1",
// "maxwell_cavity", "gaussian"), mirror the PDE registry's plugin idiom and
// fill the SimulationConfig defaults a workload needs, so the config-driven
// runner covers new experiments without recompilation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exastp/engine/named_registry.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry key.
  virtual const std::string& name() const = 0;
  /// PDE used when the config does not name one.
  virtual std::string default_pde() const = 0;
  /// Whether the scenario's initial condition is meaningful for `pde_name`.
  /// The default accepts only default_pde(); PDE-agnostic scenarios
  /// override.
  virtual bool compatible_with(const std::string& pde_name) const {
    return pde_name == default_pde();
  }

  /// Writes the scenario's recommended grid, boundaries and end time into
  /// the config (called before explicit user overrides are applied).
  virtual void configure(SimulationConfig& /*config*/) const {}

  /// Parameter keys the scenario reads from config.scenario_params
  /// ("scenario.<key>=value" on the CLI). Simulation::from_config rejects
  /// configs carrying keys outside this list, so typos fail loudly.
  virtual std::vector<std::string> param_keys() const { return {}; }

  /// Nodal initial condition for a solver running `pde`. Passed as a
  /// shared_ptr so the returned closure can own the factory.
  virtual InitialCondition initial_condition(
      const std::shared_ptr<const KernelFactory>& pde,
      const SimulationConfig& config) const = 0;

  /// Point sources to attach (may be empty).
  virtual std::vector<MeshPointSource> sources(
      const SimulationConfig& /*config*/) const {
    return {};
  }

  /// Quantity index with a known exact solution, or -1 if none.
  virtual int error_quantity(const KernelFactory& /*pde*/) const {
    return -1;
  }
  /// Exact solution of error_quantity(); null when error_quantity() is -1.
  virtual ExactSolution exact_solution(
      const KernelFactory& /*pde*/, const SimulationConfig& /*config*/) const {
    return nullptr;
  }
};

/// Name -> Scenario map; same conventions as PdeRegistry.
class ScenarioRegistry final : public NamedRegistry<Scenario> {
 public:
  ScenarioRegistry() : NamedRegistry("scenario") {}
  /// The process-wide registry, populated with the built-in scenarios.
  static ScenarioRegistry& instance();
};

/// Shorthand for ScenarioRegistry::instance().find(name).
std::shared_ptr<const Scenario> find_scenario(const std::string& name);

}  // namespace exastp
