// The Simulation façade: one entry point from a declarative config to a
// running solver.
//
// from_config() resolves the scenario and PDE from the string registries,
// type-erases the kernel selection ((pde, variant, order, isa) -> StpKernel)
// through KernelFactory, builds the requested stepper behind SolverBase,
// applies the scenario's initial condition and point sources, and hands back
// an object drivers can run, sample and measure — the whole ~50-line
// hand-wiring dance of the old examples in one call.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exastp/engine/observer_registry.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/io/receiver_network.h"
#include "exastp/solver/solver_base.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

class Simulation {
 public:
  /// Builds the fully configured simulation. The config is taken literally;
  /// use parse_simulation_args / apply_scenario_defaults to fill scenario
  /// defaults first. Throws on unknown names, incompatible PDE/scenario
  /// pairs and ISAs the host cannot execute.
  static Simulation from_config(SimulationConfig config);

  /// parse_simulation_args + from_config in one step (CLI entry point).
  static Simulation from_args(const std::vector<std::string>& args);

  SolverBase& solver() { return *solver_; }
  const SolverBase& solver() const { return *solver_; }
  const SimulationConfig& config() const { return config_; }
  const KernelFactory& pde() const { return *pde_; }
  const Scenario& scenario() const { return *scenario_; }
  /// The resolved instruction set ("auto" already applied).
  Isa isa() const { return isa_; }
  /// The effective shard block grid (shards= key resolved against the
  /// mesh; {1,1,1} for monolithic runs).
  const std::array<int, 3>& shard_grid() const { return shard_grid_; }

  /// Runs to config.t_end — streaming observers (receivers, VTK series)
  /// fire from the time loop — then writes any configured post-hoc outputs;
  /// returns the number of steps taken. Callable repeatedly after raising
  /// t_end. Under backend=mpi this is collective (every rank calls it):
  /// after the loop, rank 0 merges the per-rank receiver streams into the
  /// configured paths so distributed runs produce the same artifacts as
  /// local ones.
  int run();

  /// Attaches a streaming observer to the solver's time loop and takes
  /// (shared) ownership of it; the config-declared observers are attached
  /// by from_config already.
  void add_observer(std::shared_ptr<Observer> observer);
  /// Every owned observer, in attachment order.
  const std::vector<std::shared_ptr<Observer>>& observers() const {
    return observers_;
  }
  /// The config-built receiver network (receivers= key), or null. Traces
  /// stay queryable here after run().
  std::shared_ptr<ReceiverNetwork> receivers() const { return receivers_; }

  /// True when the scenario knows an exact solution for this PDE.
  bool has_exact_solution() const { return error_quantity() >= 0; }
  /// Quantity index the exact solution describes, or -1.
  int error_quantity() const { return scenario_->error_quantity(*pde_); }
  /// L2 error of error_quantity() against the scenario's exact solution at
  /// the solver's current time; throws if the scenario has none. Under
  /// backend=mpi this is collective: every rank sums its shards and the
  /// partials combine in rank order (deterministic, though the association
  /// differs from the monolithic cell-order sum by floating-point
  /// rounding).
  double l2_error() const;

  /// One-line human-readable description for logs and CLI banners.
  std::string summary() const;

  /// This run's telemetry registry. Always present: even with every
  /// telemetry key unset it scopes the FLOP accounting, so concurrent pool
  /// jobs never double-count each other (spans stay off unless trace=,
  /// metrics= or progress= asked for them). run() installs it on the
  /// driving thread; ParallelFor propagates it to workers.
  TelemetryRegistry& telemetry() { return *telemetry_; }
  const TelemetryRegistry& telemetry() const { return *telemetry_; }

  /// End-of-run summary table (telemetry_summary_table); empty when spans
  /// were off or nothing ran. Meaningful on rank 0 after run().
  std::string telemetry_summary() const;

 private:
  Simulation(SimulationConfig config, Isa isa,
             std::shared_ptr<const KernelFactory> pde,
             std::shared_ptr<const Scenario> scenario,
             std::unique_ptr<SolverBase> solver);

  /// Rank-0 merge plan of a distributed run's receiver streams: the full
  /// configured network plus the final artifact paths
  /// (io/receiver_sinks.h merge_receiver_records). Present on every rank
  /// of a backend=mpi run with receiver streams configured.
  struct ReceiverMergePlan {
    std::vector<std::array<double, 3>> positions;
    std::string part_base;
    std::string bin_path;
    std::string csv_path;
  };

  SimulationConfig config_;
  Isa isa_ = Isa::kScalar;
  std::array<int, 3> shard_grid_{1, 1, 1};
  bool distributed_ = false;
  /// Declared before observers_: the metrics observer reads the registry,
  /// so the registry must outlive it (members destroy in reverse order).
  std::shared_ptr<TelemetryRegistry> telemetry_;
  std::optional<ReceiverMergePlan> receiver_merge_;
  std::shared_ptr<const KernelFactory> pde_;
  std::shared_ptr<const Scenario> scenario_;
  /// Observer lifetime is owned here; the solver only holds raw pointers,
  /// so observers_ is declared before solver_ to outlive it (members
  /// destroy in reverse declaration order).
  std::vector<std::shared_ptr<Observer>> observers_;
  std::shared_ptr<ReceiverNetwork> receivers_;
  std::unique_ptr<SolverBase> solver_;
};

}  // namespace exastp
