#include "exastp/engine/observer_registry.h"

#include <algorithm>

#include "exastp/common/check.h"
#include "exastp/io/receiver_network.h"
#include "exastp/io/receiver_sinks.h"
#include "exastp/io/vtk_series.h"

namespace exastp {

std::vector<int> output_quantities(const SimulationConfig& config,
                                   const KernelFactory& pde) {
  if (!config.output.quantities.empty()) {
    for (int s : config.output.quantities)
      EXASTP_CHECK_MSG(s >= 0 && s < pde.info().quants,
                       "output.quantities index " + std::to_string(s) +
                           " out of range for pde " + pde.name());
    return config.output.quantities;
  }
  std::vector<int> quantities;
  for (int s = 0; s < pde.info().vars; ++s) quantities.push_back(s);
  return quantities;
}

namespace {

/// receivers= probe points, sampled every step, streamed to the configured
/// sinks.
class ReceiverNetworkFactory final : public ObserverFactory {
 public:
  const std::string& name() const override {
    static const std::string n = "receiver_network";
    return n;
  }

  std::shared_ptr<Observer> make(const SimulationConfig& config,
                                 const KernelFactory& pde) const override {
    if (config.receivers.empty()) {
      EXASTP_CHECK_MSG(config.output.receivers_csv.empty() &&
                           config.output.receivers_bin.empty(),
                       "receiver output streams need receivers=x,y,z[;...]");
      return nullptr;
    }
    auto network =
        std::make_shared<ReceiverNetwork>(output_quantities(config, pde));
    network->add_receivers(config.receivers);
    if (!config.output.receivers_csv.empty())
      network->add_sink(
          std::make_unique<CsvReceiverSink>(config.output.receivers_csv));
    if (!config.output.receivers_bin.empty())
      network->add_sink(
          std::make_unique<BinaryReceiverSink>(config.output.receivers_bin));
    return network;
  }
};

/// output.series= incremental VTK snapshot series.
class VtkSeriesFactory final : public ObserverFactory {
 public:
  const std::string& name() const override {
    static const std::string n = "vtk_series";
    return n;
  }

  std::shared_ptr<Observer> make(const SimulationConfig& config,
                                 const KernelFactory& pde) const override {
    if (config.output.series.empty()) return nullptr;
    // Cell averages of the sampled quantities (capped like the post-hoc
    // VTK dump to keep snapshot files small).
    std::vector<int> quantities = output_quantities(config, pde);
    if (config.output.quantities.empty() && quantities.size() > 4)
      quantities.resize(4);
    std::vector<std::string> names = default_quantity_names(quantities);
    return std::make_shared<VtkSeriesWriter>(config.output.series,
                                             std::move(quantities),
                                             std::move(names),
                                             config.output.interval);
  }
};

}  // namespace

ObserverRegistry& ObserverRegistry::instance() {
  static ObserverRegistry& registry = *[] {
    auto* r = new ObserverRegistry;
    r->add(std::make_shared<ReceiverNetworkFactory>());
    r->add(std::make_shared<VtkSeriesFactory>());
    return r;
  }();
  return registry;
}

std::vector<std::shared_ptr<Observer>> make_observers(
    const SimulationConfig& config, const KernelFactory& pde) {
  std::vector<std::shared_ptr<Observer>> observers;
  for (const std::string& name : ObserverRegistry::instance().names()) {
    std::shared_ptr<Observer> observer =
        ObserverRegistry::instance().find(name)->make(config, pde);
    if (observer != nullptr) observers.push_back(std::move(observer));
  }
  return observers;
}

}  // namespace exastp
