#include "exastp/engine/simulation_config.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exastp/common/check.h"
#include "exastp/common/mpi_runtime.h"
#include "exastp/common/parallel.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/kernels/registry.h"
#include "exastp/mesh/partition.h"

namespace exastp {
namespace {

/// Splits "a=b" into {a, b}; throws on malformed pairs.
std::pair<std::string, std::string> split_pair(const std::string& arg) {
  const auto eq = arg.find('=');
  EXASTP_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "expected key=value, got \"" + arg + "\"");
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/// Splits on any character in `delims`. The ",x" default serves the
/// dimension triples, where both "4x4x4" and "4,4,4" are accepted; keys
/// with their own separators (quantity lists, receiver triples) pass an
/// explicit delimiter so stray 'x's fail loudly.
std::vector<std::string> split_list(const std::string& value,
                                    const char* delims = ",x") {
  std::vector<std::string> parts;
  std::string current;
  for (char c : value) {
    if (std::strchr(delims, c) != nullptr) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    EXASTP_CHECK_MSG(used == value.size(), key + "=" + value);
    return v;
  } catch (const std::logic_error&) {
    EXASTP_FAIL("expected an integer for " + key + ", got \"" + value + "\"");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    EXASTP_CHECK_MSG(used == value.size(), key + "=" + value);
    return v;
  } catch (const std::logic_error&) {
    EXASTP_FAIL("expected a number for " + key + ", got \"" + value + "\"");
  }
}

std::array<int, 3> parse_cells(const std::string& value) {
  const auto parts = split_list(value);
  if (parts.size() == 1) {
    const int n = parse_int("cells", parts[0]);
    return {n, n, n};
  }
  EXASTP_CHECK_MSG(parts.size() == 3, "cells=" + value);
  return {parse_int("cells", parts[0]), parse_int("cells", parts[1]),
          parse_int("cells", parts[2])};
}

std::array<double, 3> parse_triple(const std::string& key,
                                   const std::string& value) {
  const auto parts = split_list(value);
  if (parts.size() == 1) {
    const double v = parse_double(key, parts[0]);
    return {v, v, v};
  }
  EXASTP_CHECK_MSG(parts.size() == 3, key + "=" + value);
  return {parse_double(key, parts[0]), parse_double(key, parts[1]),
          parse_double(key, parts[2])};
}

BoundaryKind parse_boundary(const std::string& name) {
  if (name == "periodic") return BoundaryKind::kPeriodic;
  if (name == "outflow") return BoundaryKind::kOutflow;
  if (name == "wall") return BoundaryKind::kWall;
  EXASTP_FAIL("unknown boundary kind \"" + name +
              "\" (periodic|outflow|wall)");
}

std::array<BoundaryKind, 3> parse_boundaries(const std::string& value) {
  const auto parts = split_list(value);
  if (parts.size() == 1) {
    const BoundaryKind k = parse_boundary(parts[0]);
    return {k, k, k};
  }
  EXASTP_CHECK_MSG(parts.size() == 3, "bc=" + value);
  return {parse_boundary(parts[0]), parse_boundary(parts[1]),
          parse_boundary(parts[2])};
}

NodeFamily parse_family(const std::string& name) {
  if (name == "gl" || name == "legendre") return NodeFamily::kGaussLegendre;
  if (name == "lobatto") return NodeFamily::kGaussLobatto;
  EXASTP_FAIL("unknown node family \"" + name + "\" (gl|lobatto)");
}

/// "x,y,z;x,y,z;..." -> receiver positions.
std::vector<std::array<double, 3>> parse_receivers(const std::string& value) {
  std::vector<std::array<double, 3>> receivers;
  for (const std::string& triple : split_list(value, ";"))
    receivers.push_back(parse_triple("receivers", triple));
  return receivers;
}

std::vector<int> parse_quantities(const std::string& value) {
  std::vector<int> quantities;
  for (const std::string& part : split_list(value, ","))
    quantities.push_back(parse_int("output.quantities", part));
  return quantities;
}

void apply_pair(SimulationConfig& config, const std::string& key,
                const std::string& value) {
  if (key == "pde") {
    config.pde = value;
  } else if (key == "scenario") {
    config.scenario = value;  // already applied, kept for idempotence
  } else if (key == "stepper") {
    config.stepper = value;
  } else if (key == "variant") {
    config.variant = parse_variant(value);
  } else if (key == "isa") {
    config.isa = value;
  } else if (key == "order") {
    config.order = parse_int(key, value);
  } else if (key == "family") {
    config.family = parse_family(value);
  } else if (key == "threads") {
    config.threads = value == "auto" ? 0 : parse_int(key, value);
  } else if (key == "shards") {
    // Validated against the grid later (resolve_shard_grid); here only the
    // shape is checked so typos fail at parse time.
    if (value != "auto") {
      const auto parts = split_list(value);
      EXASTP_CHECK_MSG(parts.size() == 1 || parts.size() == 3,
                       "shards=" + value + " (AxBxC, a total count, or auto)");
      for (const std::string& part : parts) {
        const int v = parse_int(key, part);
        EXASTP_CHECK_MSG(v >= 1, "shards=" + value +
                                     " needs positive counts");
      }
    }
    config.shards = value;
  } else if (key == "shards_per_rank") {
    if (value == "auto") {
      config.shards_per_rank = 0;
    } else {
      config.shards_per_rank = parse_int(key, value);
      EXASTP_CHECK_MSG(config.shards_per_rank >= 1,
                       "shards_per_rank=" + value + " must be auto or >= 1");
    }
  } else if (key == "backend") {
    EXASTP_CHECK_MSG(value == "inprocess" || value == "mpi",
                     "backend=" + value + " (inprocess|mpi)");
    config.backend = value;
  } else if (key == "schedule") {
    EXASTP_CHECK_MSG(value == "deps" || value == "lockstep",
                     "schedule=" + value + " (deps|lockstep)");
    config.schedule = value;
  } else if (key == "precision") {
    config.precision = parse_precision(value);
  } else if (key == "autotune") {
    EXASTP_CHECK_MSG(!value.empty(), "autotune= needs a table path");
    config.autotune = value;
  } else if (key == "lts") {
    EXASTP_CHECK_MSG(value == "on" || value == "off",
                     "lts=" + value + " (on|off)");
    config.lts = value == "on";
  } else if (key == "lts_clusters") {
    if (value == "auto") {
      config.lts_clusters = 0;
    } else {
      config.lts_clusters = parse_int(key, value);
      EXASTP_CHECK_MSG(config.lts_clusters >= 1,
                       "lts_clusters=" + value + " must be auto or >= 1");
    }
  } else if (key == "lts_rate") {
    config.lts_rate = parse_int(key, value);
    EXASTP_CHECK_MSG(config.lts_rate == 2,
                     "lts_rate=" + value +
                         " (only the power-of-two schedule, rate 2, is "
                         "supported)");
  } else if (key == "balance") {
    EXASTP_CHECK_MSG(!value.empty(), "balance= needs a table path");
    config.balance = value;
  } else if (key == "cells") {
    config.grid.cells = parse_cells(value);
  } else if (key == "extent") {
    config.grid.extent = parse_triple(key, value);
  } else if (key == "origin") {
    config.grid.origin = parse_triple(key, value);
  } else if (key == "bc") {
    config.grid.boundary = parse_boundaries(value);
  } else if (key == "t_end") {
    config.t_end = parse_double(key, value);
  } else if (key == "cfl") {
    config.cfl = parse_double(key, value);
  } else if (key == "csv" || key == "output.csv") {
    config.output.csv = value;
  } else if (key == "vtk" || key == "output.vtk") {
    config.output.vtk = value;
  } else if (key == "output.series") {
    config.output.series = value;
  } else if (key == "output.interval") {
    config.output.interval = parse_double(key, value);
  } else if (key == "output.receivers_csv") {
    config.output.receivers_csv = value;
  } else if (key == "output.receivers_bin") {
    config.output.receivers_bin = value;
  } else if (key == "output.quantities") {
    config.output.quantities = parse_quantities(value);
  } else if (key == "receivers") {
    config.receivers = parse_receivers(value);
  } else if (key == "trace") {
    EXASTP_CHECK_MSG(!value.empty(), "trace= needs a path");
    config.telemetry.trace = value;
  } else if (key == "metrics") {
    EXASTP_CHECK_MSG(!value.empty(), "metrics= needs a path");
    config.telemetry.metrics = value;
  } else if (key == "metrics_interval") {
    config.telemetry.metrics_interval = parse_int(key, value);
    EXASTP_CHECK_MSG(config.telemetry.metrics_interval >= 1,
                     "metrics_interval=" + value + " must be >= 1");
  } else if (key == "progress") {
    EXASTP_CHECK_MSG(value == "stderr",
                     "progress=" + value + " (only stderr is supported)");
    config.telemetry.progress = value;
  } else if (key.rfind("scenario.", 0) == 0) {
    const std::string param = key.substr(std::string("scenario.").size());
    EXASTP_CHECK_MSG(!param.empty(), "empty scenario parameter key");
    config.scenario_params[param] = value;
  } else {
    EXASTP_FAIL("unknown config key \"" + key + "\"\n" + simulation_usage());
  }
}

}  // namespace

double scenario_param(const SimulationConfig& config, const std::string& key,
                      double fallback) {
  const auto it = config.scenario_params.find(key);
  if (it == config.scenario_params.end()) return fallback;
  return parse_double("scenario." + key, it->second);
}

int scenario_param_int(const SimulationConfig& config, const std::string& key,
                       int fallback) {
  const auto it = config.scenario_params.find(key);
  if (it == config.scenario_params.end()) return fallback;
  return parse_int("scenario." + key, it->second);
}

namespace {

/// Round-trip-exact double text (%.17g re-reads to the same bits), so the
/// canonical string distinguishes exactly the configs that differ.
std::string exact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* boundary_token(BoundaryKind kind) {
  switch (kind) {
    case BoundaryKind::kPeriodic: return "periodic";
    case BoundaryKind::kOutflow: return "outflow";
    case BoundaryKind::kWall: return "wall";
  }
  EXASTP_FAIL("unknown boundary kind");
}

}  // namespace

std::string canonical_config_string(const SimulationConfig& config) {
  std::ostringstream os;
  os << "scenario=" << config.scenario << "|pde=" << config.pde
     << "|stepper=" << config.stepper
     << "|variant=" << variant_name(config.variant) << "|isa=" << config.isa
     << "|order=" << config.order << "|family="
     << (config.family == NodeFamily::kGaussLegendre ? "gl" : "lobatto")
     << "|shards=" << config.shards
     << "|shards_per_rank=" << config.shards_per_rank
     << "|backend=" << config.backend
     << "|precision=" << precision_name(config.precision)
     << "|lts=" << (config.lts ? "on" : "off")
     << "|lts_clusters=" << config.lts_clusters
     << "|lts_rate=" << config.lts_rate;
  // threads is intentionally absent: results are bitwise-identical for
  // every thread count, so it must not split the memoization key. The
  // autotune table path is absent for the same reason: fused block sizes
  // are bitwise-neutral, so tuned and untuned runs of one config must
  // share a memoization entry. The balance table path is absent for the
  // autotune reason too: cost-weighted shard splits are bitwise-identical
  // to unweighted ones, so balanced and unbalanced runs of one config
  // must share an entry. The lts keys ARE present: a multi-cluster
  // schedule changes the computed bytes. schedule= is absent for the
  // threads reason: the dependency-driven and lockstep step schedules are
  // bitwise-identical, so they must share a memoization entry.
  // shards_per_rank IS present: under shards=auto it changes the resolved
  // decomposition, which (like shards=) names the run's topology.
  os << "|cells=" << config.grid.cells[0] << "x" << config.grid.cells[1]
     << "x" << config.grid.cells[2];
  os << "|extent=" << exact(config.grid.extent[0]) << ","
     << exact(config.grid.extent[1]) << "," << exact(config.grid.extent[2]);
  os << "|origin=" << exact(config.grid.origin[0]) << ","
     << exact(config.grid.origin[1]) << "," << exact(config.grid.origin[2]);
  os << "|bc=" << boundary_token(config.grid.boundary[0]) << ","
     << boundary_token(config.grid.boundary[1]) << ","
     << boundary_token(config.grid.boundary[2]);
  os << "|t_end=" << exact(config.t_end) << "|cfl=" << exact(config.cfl);
  os << "|csv=" << config.output.csv << "|vtk=" << config.output.vtk
     << "|series=" << config.output.series
     << "|interval=" << exact(config.output.interval)
     << "|receivers_csv=" << config.output.receivers_csv
     << "|receivers_bin=" << config.output.receivers_bin;
  os << "|quantities=";
  for (std::size_t i = 0; i < config.output.quantities.size(); ++i)
    os << (i ? "," : "") << config.output.quantities[i];
  os << "|receivers=";
  for (std::size_t i = 0; i < config.receivers.size(); ++i)
    os << (i ? ";" : "") << exact(config.receivers[i][0]) << ","
       << exact(config.receivers[i][1]) << "," << exact(config.receivers[i][2]);
  // Telemetry file outputs are artifacts like csv=/vtk=, so they split the
  // memoization key (a cached replay writes no files). progress= is absent
  // for the threads/autotune reason: a heartbeat leaves no artifact and
  // must not split the key.
  os << "|trace=" << config.telemetry.trace
     << "|metrics=" << config.telemetry.metrics
     << "|metrics_interval=" << config.telemetry.metrics_interval;
  // std::map iterates in key order, so the passthrough block is canonical.
  for (const auto& [key, value] : config.scenario_params)
    os << "|scenario." << key << "=" << value;
  return os.str();
}

std::array<int, 3> resolve_shard_grid(const SimulationConfig& config) {
  if (config.shards == "auto") {
    // Distributed runs factor shards_per_rank shards per MPI rank (one
    // without the key — the historical rank-per-shard shape); local runs
    // factor shards_per_rank directly when given (so one config exercises
    // the same decomposition with and without MPI), else the thread count.
    const int per_rank = std::max(config.shards_per_rank, 1);
    const int total =
        config.backend == "mpi"
            ? MpiRuntime::size() * per_rank
            : (config.shards_per_rank > 0 ? per_rank
                                          : resolve_threads(config.threads));
    return Partition::factor(total, config.grid.cells);
  }
  const auto parts = split_list(config.shards);
  if (parts.size() == 1)
    return Partition::factor(parse_int("shards", parts[0]),
                             config.grid.cells);
  EXASTP_CHECK_MSG(parts.size() == 3, "shards=" + config.shards);
  const std::array<int, 3> shards{parse_int("shards", parts[0]),
                                  parse_int("shards", parts[1]),
                                  parse_int("shards", parts[2])};
  for (int d = 0; d < 3; ++d)
    EXASTP_CHECK_MSG(shards[d] >= 1 && shards[d] <= config.grid.cells[d],
                     "shards=" + config.shards +
                         " needs at least one cell per shard per dimension");
  return shards;
}

void apply_scenario_defaults(SimulationConfig& config) {
  ScenarioRegistry::instance().find(config.scenario)->configure(config);
}

SimulationConfig parse_simulation_args(const std::vector<std::string>& args) {
  SimulationConfig config;
  // The scenario decides the default grid/boundaries/t_end, so resolve it
  // before the remaining pairs override those defaults. The same pass
  // rejects duplicate keys: silently letting the later pair win would run
  // a config the user did not ask for (batch files are hand-written).
  // Membership is checked against accepted_config_keys() — the same list
  // the config reference documents — so a key accepted by apply_pair but
  // absent from the list cannot slip through undocumented.
  const std::vector<std::string> known = accepted_config_keys();
  std::set<std::string> seen;
  for (const std::string& arg : args) {
    const auto [key, value] = split_pair(arg);
    EXASTP_CHECK_MSG(seen.insert(key).second,
                     "duplicate config key \"" + key + "\"");
    const bool listed =
        key.rfind("scenario.", 0) == 0 ||
        std::find(known.begin(), known.end(), key) != known.end();
    EXASTP_CHECK_MSG(listed, "unknown config key \"" + key + "\"\n" +
                                 simulation_usage());
    if (key == "scenario") config.scenario = value;
  }
  apply_scenario_defaults(config);
  for (const std::string& arg : args) {
    const auto [key, value] = split_pair(arg);
    apply_pair(config, key, value);
  }
  return config;
}

std::vector<std::string> accepted_config_keys() {
  // Keep in usage/reference order. "csv"/"vtk" are the unprefixed aliases
  // of output.csv/output.vtk; "scenario.*" stands for the passthrough
  // family (any key the selected scenario declares).
  return {"scenario",
          "pde",
          "stepper",
          "variant",
          "isa",
          "order",
          "family",
          "precision",
          "threads",
          "shards",
          "shards_per_rank",
          "backend",
          "schedule",
          "autotune",
          "lts",
          "lts_clusters",
          "lts_rate",
          "balance",
          "cells",
          "extent",
          "origin",
          "bc",
          "t_end",
          "cfl",
          "csv",
          "vtk",
          "output.csv",
          "output.vtk",
          "output.series",
          "output.interval",
          "output.receivers_csv",
          "output.receivers_bin",
          "output.quantities",
          "receivers",
          "trace",
          "metrics",
          "metrics_interval",
          "progress",
          "scenario.*"};
}

std::vector<std::string> driver_only_keys() {
  return {"sweep", "batch", "jobs", "gallery"};
}

std::string simulation_usage() {
  return
      "usage: key=value ...\n"
      "  scenario=NAME   initial condition + defaults (see registry; default"
      " gaussian)\n"
      "  pde=NAME        PDE registry key (default: the scenario's PDE)\n"
      "  stepper=KIND    ader | rk4 (default ader)\n"
      "  variant=NAME    generic | log | splitck | aosoa_splitck |"
      " soa_uf_splitck\n"
      "  isa=NAME        auto | scalar | avx2 | avx512 (default auto)\n"
      "  order=N         nodes per dimension (default 4)\n"
      "  family=NAME     gl | lobatto quadrature nodes (default gl)\n"
      "  precision=NAME  fp64 (default) | fp32 kernel storage precision;"
      " fp32 needs\n"
      "                  stepper=ader and variant=splitck|aosoa_splitck"
      " (see docs/precision.md)\n"
      "  threads=N       stepper threads; auto (default) = hardware"
      " concurrency\n"
      "  shards=AxBxC    mesh shard block grid (or a total count to factor,"
      " or auto);\n"
      "                  results are bitwise-identical for every"
      " decomposition\n"
      "  shards_per_rank=N  over-decomposition: auto (default, one shard per"
      " rank under\n"
      "                  backend=mpi) or N >= 1 shards per rank"
      " (bitwise-identical)\n"
      "  backend=KIND    halo exchange: inprocess (default) | mpi"
      " (multi-shard ranks,\n"
      "                  -DEXASTP_WITH_MPI=ON builds under mpirun)\n"
      "  schedule=KIND   sharded step schedule: deps (default,"
      " dependency-driven,\n"
      "                  pipelined halos) | lockstep (per-phase barrier);"
      " bitwise-identical\n"
      "  autotune=PATH   fused-block autotune table: load, measure missing"
      " entries,\n"
      "                  save back (bitwise-neutral; see docs/precision.md)\n"
      "  lts=on|off      clustered local time stepping (default off); bins"
      " cells into\n"
      "                  powers-of-two rate clusters by local wave speed;"
      " needs\n"
      "                  stepper=ader (see docs/lts.md)\n"
      "  lts_clusters=N  cluster cap: auto (default, wave-speed spread"
      " decides) or N >= 1\n"
      "  lts_rate=2      rate ratio between adjacent clusters (only 2 is"
      " supported)\n"
      "  balance=PATH    measured-cost balance table: weight shard splits by"
      " measured\n"
      "                  per-cluster cost, update with this run, save back"
      " (bitwise-neutral)\n"
      "  cells=AxBxC     mesh cells per dimension (or one int for a cube)\n"
      "  extent=X,Y,Z    domain size (or one number for a cube)\n"
      "  origin=X,Y,Z    domain lower corner\n"
      "  bc=KIND[,KIND,KIND]  periodic | outflow | wall per dimension\n"
      "  t_end=T         end time\n"
      "  cfl=C           CFL factor (default 0.4)\n"
      "  csv=PATH        write nodal values CSV after the run (alias of"
      " output.csv=)\n"
      "  vtk=PATH        write cell-average VTK after the run (alias of"
      " output.vtk=)\n"
      "  receivers=X,Y,Z[;X,Y,Z...]  probe points sampled every step\n"
      "  output.receivers_csv=PATH   stream receiver samples as CSV\n"
      "  output.receivers_bin=PATH   stream receiver samples as a binary"
      " record stream\n"
      "  output.quantities=A,B,...   quantity indices receivers sample"
      " (default: all evolved)\n"
      "  output.series=BASE          incremental VTK snapshot series"
      " (BASE_NNNN.vtk + BASE.pvd)\n"
      "  output.interval=T           series snapshot spacing (default:"
      " every step)\n"
      "  trace=PATH      write a Chrome trace-event JSON span timeline after"
      " the run\n"
      "                  (Perfetto-loadable; see docs/observability.md)\n"
      "  metrics=PATH    stream per-step metrics (CSV, or JSONL for .jsonl"
      " paths)\n"
      "  metrics_interval=N          steps between metrics rows (default 1)\n"
      "  progress=stderr rank-0 progress heartbeat (~1 Hz) on stderr\n"
      "  scenario.KEY=VALUE          scenario parameter passthrough (e.g."
      " scenario.layer_rho for loh1,\n"
      "                              scenario.kx for planewave; see the"
      " scenario's declared keys)\n"
      "  sweep=KEY:V1,V2,...         (exastp_run) run once per value,"
      " streaming a summary CSV\n"
      "                              (any key above sweeps, e.g."
      " sweep=shards:1,2,4)\n"
      "  batch=FILE                  (exastp_run) ensemble mode: run every"
      " line of FILE (one\n"
      "                              key=value config per line, # comments)"
      " as a pool job;\n"
      "                              remaining args are batch-wide defaults\n"
      "  jobs=N                      (exastp_run) concurrent simulations for"
      " batch= (default 1)\n"
      "  gallery=KIND[:PATH]         (exastp_run) batch result sink: csv |"
      " jsonl | bin | dir\n"
      "                              (repeatable; csv/jsonl stream to stdout"
      " without a PATH)\n";
}

}  // namespace exastp
