// Precomputed per-order operator tables.
//
// The paper's Kernel Generator hard-codes these matrices into the generated
// kernels (Sec. III-C: "frequently used matrices ... can be precomputed").
// Here they live in a process-wide cache keyed by (order, node family); the
// optimized kernel templates capture a reference once at construction.
#pragma once

#include <vector>

#include "exastp/common/aligned.h"
#include "exastp/quadrature/quadrature.h"

namespace exastp {

struct BasisTables {
  int n = 0;  ///< nodes per dimension (paper's order N)
  NodeFamily family = NodeFamily::kGaussLegendre;

  std::vector<double> nodes;    ///< quadrature nodes in [0,1]
  std::vector<double> weights;  ///< quadrature weights (diagonal mass matrix)

  /// Collocation derivative operator, row-major n x n: D[i*n+j] = l_j'(x_i).
  AlignedVector diff;
  /// Transpose of `diff`, row-major n x n (used by the AoSoA x-derivative,
  /// Sec. V-B case 1: C^T = B^T A^T).
  AlignedVector diff_t;

  /// Basis values at the element faces: phi_left[j] = l_j(0),
  /// phi_right[j] = l_j(1). These build the face-projection operator.
  AlignedVector phi_left, phi_right;

  /// Lift coefficients for the strong-form surface term:
  /// lift_left[j] = l_j(0) / w_j, lift_right[j] = l_j(1) / w_j.
  AlignedVector lift_left, lift_right;

  /// diff with each row padded to `ld` doubles (zero fill). Used to hand
  /// LIBXSMM-style microkernels an aligned leading dimension.
  AlignedVector padded_diff(int ld) const;
  /// diff_t with padded rows.
  AlignedVector padded_diff_t(int ld) const;
};

/// Returns the cached tables for n nodes of the given family. Thread-safe
/// for concurrent readers after first use; throws for n < 1 or n > kMaxOrder.
const BasisTables& basis_tables(int n,
                                NodeFamily family = NodeFamily::kGaussLegendre);

}  // namespace exastp
