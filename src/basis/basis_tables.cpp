#include "exastp/basis/basis_tables.h"

#include <map>
#include <memory>
#include <mutex>

#include "exastp/basis/lagrange.h"
#include "exastp/common/check.h"
#include "exastp/common/taylor.h"

namespace exastp {

AlignedVector BasisTables::padded_diff(int ld) const {
  EXASTP_CHECK(ld >= n);
  AlignedVector out(static_cast<std::size_t>(n) * ld, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      out[static_cast<std::size_t>(i) * ld + j] =
          diff[static_cast<std::size_t>(i) * n + j];
  return out;
}

AlignedVector BasisTables::padded_diff_t(int ld) const {
  EXASTP_CHECK(ld >= n);
  AlignedVector out(static_cast<std::size_t>(n) * ld, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      out[static_cast<std::size_t>(i) * ld + j] =
          diff_t[static_cast<std::size_t>(i) * n + j];
  return out;
}

namespace {

std::unique_ptr<BasisTables> build_tables(int n, NodeFamily family) {
  auto t = std::make_unique<BasisTables>();
  t->n = n;
  t->family = family;
  QuadratureRule rule = make_quadrature(n, family);
  t->nodes = rule.nodes;
  t->weights = rule.weights;

  std::vector<double> d = derivative_matrix(t->nodes);
  t->diff.assign(d.begin(), d.end());
  t->diff_t.resize(d.size());
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      t->diff_t[static_cast<std::size_t>(j) * n + i] =
          d[static_cast<std::size_t>(i) * n + j];

  t->phi_left.resize(n);
  t->phi_right.resize(n);
  t->lift_left.resize(n);
  t->lift_right.resize(n);
  for (int j = 0; j < n; ++j) {
    t->phi_left[j] = lagrange_value(t->nodes, j, 0.0);
    t->phi_right[j] = lagrange_value(t->nodes, j, 1.0);
    t->lift_left[j] = t->phi_left[j] / t->weights[j];
    t->lift_right[j] = t->phi_right[j] / t->weights[j];
  }
  return t;
}

}  // namespace

const BasisTables& basis_tables(int n, NodeFamily family) {
  EXASTP_CHECK_MSG(n >= 1 && n <= kMaxOrder, "order out of supported range");
  static std::mutex mutex;
  static std::map<std::pair<int, NodeFamily>, std::unique_ptr<BasisTables>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[{n, family}];
  if (!slot) slot = build_tables(n, family);
  return *slot;
}

}  // namespace exastp
