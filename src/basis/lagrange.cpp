#include "exastp/basis/lagrange.h"

#include <cmath>
#include <cstddef>

#include "exastp/common/check.h"

namespace exastp {

std::vector<double> barycentric_weights(const std::vector<double>& nodes) {
  const int n = static_cast<int>(nodes.size());
  std::vector<double> w(static_cast<std::size_t>(n), 1.0);
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < n; ++k) {
      if (k != j) w[j] /= (nodes[j] - nodes[k]);
    }
  }
  return w;
}

double lagrange_value(const std::vector<double>& nodes, int j, double x) {
  const int n = static_cast<int>(nodes.size());
  EXASTP_CHECK(j >= 0 && j < n);
  double v = 1.0;
  for (int k = 0; k < n; ++k) {
    if (k != j) v *= (x - nodes[k]) / (nodes[j] - nodes[k]);
  }
  return v;
}

double lagrange_derivative(const std::vector<double>& nodes, int j, double x) {
  const int n = static_cast<int>(nodes.size());
  EXASTP_CHECK(j >= 0 && j < n);
  // l_j'(x) = l_j(x) * sum_{k != j} 1/(x - x_k) away from nodes; at nodes the
  // product form below stays finite and exact.
  double sum = 0.0;
  for (int m = 0; m < n; ++m) {
    if (m == j) continue;
    double term = 1.0 / (nodes[j] - nodes[m]);
    for (int k = 0; k < n; ++k) {
      if (k != j && k != m) term *= (x - nodes[k]) / (nodes[j] - nodes[k]);
    }
    sum += term;
  }
  return sum;
}

std::vector<double> derivative_matrix(const std::vector<double>& nodes) {
  const int n = static_cast<int>(nodes.size());
  const std::vector<double> w = barycentric_weights(nodes);
  std::vector<double> d(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    double diag = 0.0;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dij = (w[j] / w[i]) / (nodes[i] - nodes[j]);
      d[static_cast<std::size_t>(i) * n + j] = dij;
      diag -= dij;  // rows of D must sum to zero (derivative of constants)
    }
    d[static_cast<std::size_t>(i) * n + i] = diag;
  }
  return d;
}

}  // namespace exastp
