// Lagrange nodal basis on [0,1].
//
// The DG ansatz uses tensor products of 1-D Lagrange polynomials collocated
// at quadrature nodes (paper Sec. II-A). This module provides pointwise
// evaluation plus the classic barycentric construction of the collocation
// derivative matrix D with D[i][j] = l_j'(x_i).
#pragma once

#include <vector>

namespace exastp {

/// Barycentric weights w_j = 1 / prod_{k != j} (x_j - x_k).
std::vector<double> barycentric_weights(const std::vector<double>& nodes);

/// Value of the j-th Lagrange polynomial at x (direct product form; exact
/// at the nodes by construction).
double lagrange_value(const std::vector<double>& nodes, int j, double x);

/// Derivative of the j-th Lagrange polynomial at x.
double lagrange_derivative(const std::vector<double>& nodes, int j, double x);

/// Collocation derivative matrix, row-major n x n: D[i*n + j] = l_j'(x_i).
/// Built from barycentric weights with the negative-sum trick for the
/// diagonal, which guarantees exact differentiation of constants.
std::vector<double> derivative_matrix(const std::vector<double>& nodes);

}  // namespace exastp
