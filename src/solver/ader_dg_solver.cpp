#include "exastp/solver/ader_dg_solver.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "exastp/basis/lagrange.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/mesh/partition.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

AderDgSolver::AderDgSolver(std::shared_ptr<const PdeRuntime> pde,
                           StpKernel kernel, const GridSpec& grid_spec,
                           NodeFamily family)
    : AderDgSolver(std::move(pde), std::move(kernel), Grid(grid_spec),
                   family) {}

AderDgSolver::AderDgSolver(std::shared_ptr<const PdeRuntime> pde,
                           StpKernel kernel, const Grid& grid,
                           NodeFamily family)
    : pde_(std::move(pde)),
      kernel_(std::move(kernel)),
      grid_(grid),
      basis_(basis_tables(kernel_.layout().n, family)),
      layout_(kernel_.layout()),
      face_layout_(layout_),
      cell_size_(layout_.size()),
      vars_(pde_ ? pde_->info().vars : 0) {
  EXASTP_CHECK_MSG(pde_ != nullptr && kernel_, "solver needs pde and kernel");
  EXASTP_CHECK_MSG(pde_->info().quants == layout_.m,
                   "kernel layout does not match the PDE");
  // Halo slots extend every buffer so the corrector's neighbour accessor
  // is one base pointer for owned and exchanged cells alike; only qavg's
  // halo is ever filled (step_phase_halo), the others stay zero.
  const std::size_t total =
      static_cast<std::size_t>(grid_.num_cells() + grid_.num_halo_cells()) *
      cell_size_;
  q_.assign(total, 0.0);
  qnew_.assign(total, 0.0);
  qavg_.assign(total, 0.0);
  CellClassification cells = classify_cells(grid_);
  interior_cells_ = std::move(cells.interior);
  boundary_cells_ = std::move(cells.boundary);
  rebuild_scratch();
}

void AderDgSolver::set_thread_team(const ParallelFor& team) {
  // Validate before touching par_/scratch_, so a throw leaves the solver
  // in its previous, consistent configuration.
  EXASTP_CHECK_MSG(team.num_threads() == 1 || kernel_.can_fork(),
                   "multi-threaded stepping needs a forkable kernel "
                   "(built via make_stp_kernel)");
  SolverBase::set_thread_team(team);
  rebuild_scratch();
}

void AderDgSolver::rebuild_scratch() {
  scratch_.clear();
  scratch_.reserve(static_cast<std::size_t>(num_threads()));
  for (int tid = 0; tid < num_threads(); ++tid) {
    ThreadScratch ts;
    // Thread 0 is the caller and may share the primary kernel's workspace;
    // every other thread gets an independent clone.
    ts.kernel = tid == 0 ? kernel_ : kernel_.fork();
    ts.favg0.assign(cell_size_, 0.0);
    ts.favg1.assign(cell_size_, 0.0);
    ts.favg2.assign(cell_size_, 0.0);
    ts.nb_state.assign(cell_size_, 0.0);
    ts.faces.resize(face_layout_);
    scratch_.push_back(std::move(ts));
  }
}

void AderDgSolver::set_initial_condition(
    const std::function<void(const std::array<double, 3>&, double*)>& init) {
  const int n = layout_.n;
  std::vector<double> node(layout_.m);
  for (int c = 0; c < grid_.num_cells(); ++c) {
    double* cell = mutable_cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          init(node_position(c, k1, k2, k3), node.data());
          double* dst = cell + layout_.idx(k3, k2, k1, 0);
          std::memcpy(dst, node.data(), layout_.m * sizeof(double));
          for (int s = layout_.m; s < layout_.m_pad; ++s) dst[s] = 0.0;
        }
  }
  time_ = 0.0;
  // Material parameters may have changed; the wave-speed cache rebuilds
  // on the next stable_dt call.
  wave_speed_cache_.clear();
}

void AderDgSolver::add_point_source(const MeshPointSource& source) {
  prepare_point_source(source, vars_);
}

std::array<double, 3> AderDgSolver::node_position(int cell, int k1, int k2,
                                                  int k3) const {
  const auto o = grid_.cell_origin(cell);
  return {o[0] + grid_.dx(0) * basis_.nodes[k1],
          o[1] + grid_.dx(1) * basis_.nodes[k2],
          o[2] + grid_.dx(2) * basis_.nodes[k3]};
}

double AderDgSolver::stable_dt(double cfl) const {
  const int n = layout_.n;
  if (wave_speed_cache_.empty()) {
    // Per-cell maxima, computed once per initial condition: every PDE's
    // max_wave_speed reads only material parameter rows, which the zero
    // flux rows keep constant in time, so the eigenvalue sweep need not
    // rerun every step. max commutes exactly, so the cached per-cell
    // values — and the reduction below — stay bitwise-independent of the
    // thread count.
    const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
    wave_speed_cache_.assign(static_cast<std::size_t>(grid_.num_cells()),
                             0.0);
    par_.run(grid_.num_cells(), 1, [&](int /*tid*/, long begin, long end) {
      for (long c = begin; c < end; ++c) {
        const double* cell = cell_dofs(static_cast<int>(c));
        double cell_max = 0.0;
        for (std::size_t k = 0; k < nodes; ++k)
          for (int d = 0; d < 3; ++d)
            cell_max = std::max(
                cell_max, pde_->max_wave_speed(cell + k * layout_.m_pad, d));
        wave_speed_cache_[static_cast<std::size_t>(c)] = cell_max;
      }
    });
  }
  double smax = 1e-300;
  for (double s : wave_speed_cache_) smax = std::max(smax, s);
  const double hmin =
      std::min({grid_.dx(0), grid_.dx(1), grid_.dx(2)});
  // Standard explicit-DG CFL bound ~ h / (c (2N - 1)) per dimension.
  return cfl * hmin / (smax * (2.0 * n - 1.0) * 3.0);
}

void AderDgSolver::predict_cell(
    ThreadScratch& ts, int c, double dt, double t,
    const std::array<double, 3>& inv_dx,
    const std::array<double, kMaxOrder>& integral_coeff, bool sum_reset) {
  const double* qc = cell_dofs(c);
  double* qavg_c = qavg_.data() + static_cast<std::size_t>(c) * cell_size_;
  double* qnew_c = qnew_.data() + static_cast<std::size_t>(c) * cell_size_;

  std::memcpy(qnew_c, qc, cell_size_ * sizeof(double));

  // favg goes straight into the volume update, so three temporaries per
  // thread suffice.
  ts.favg0.assign(cell_size_, 0.0);
  ts.favg1.assign(cell_size_, 0.0);
  ts.favg2.assign(cell_size_, 0.0);

  SourceTerm src;
  const SourceTerm* src_ptr = nullptr;
  for (const auto& prepared : sources_) {
    if (prepared.cell != c) continue;
    src.psi = prepared.psi.data();
    src.quantity = prepared.source.quantity;
    for (int o = 0; o <= layout_.n; ++o)
      src.dt_derivatives[o] = prepared.source.wavelet->derivative(t, o);
    src_ptr = &src;
    break;  // one source per cell supported; add_point_source validates
  }

  StpOutputs out{qavg_c, {ts.favg0.data(), ts.favg1.data(), ts.favg2.data()}};
  ts.kernel.run(qc, dt, inv_dx, src_ptr, out);

  for (const double* f : {ts.favg0.data(), ts.favg1.data(), ts.favg2.data()})
    for (std::size_t i = 0; i < cell_size_; ++i) qnew_c[i] += dt * f[i];
  FlopCounter::instance().add(WidthClass::k128, 6ull * cell_size_);

  if (src_ptr != nullptr) {
    // Direct time integral of the source: qnew += psi * int s dt.
    double integral = 0.0;
    for (int o = 0; o < layout_.n; ++o)
      integral += src.dt_derivatives[o] * integral_coeff[o];
    const int n = layout_.n;
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1)
          qnew_c[layout_.idx(k3, k2, k1, src.quantity)] +=
              src.psi[(static_cast<std::size_t>(k3) * n + k2) * n + k1] *
              integral;
  }

  if (!lts_enabled_) return;

  if (needs_sum_[static_cast<std::size_t>(c)] != 0) {
    // A coarser face neighbour averages this cell's two sub-averages over
    // its full interval; fold qavg into the running window sum.
    double* sum_c =
        qavg_sum_.data() + static_cast<std::size_t>(c) * cell_size_;
    if (sum_reset)
      std::memcpy(sum_c, qavg_c, cell_size_ * sizeof(double));
    else
      for (std::size_t i = 0; i < cell_size_; ++i) sum_c[i] += qavg_c[i];
  }

  if (needs_half_[static_cast<std::size_t>(c)] != 0) {
    // A finer face neighbour substeps inside this cell's interval: rerun
    // the predictor over [t, t + dt/2] into qavg_half (the kernel
    // overwrites its outputs, so the favg scratch is simply discarded;
    // the same Taylor expansion point means the same source derivatives).
    double* half_c =
        qavg_half_.data() + static_cast<std::size_t>(c) * cell_size_;
    StpOutputs half_out{
        half_c, {ts.favg0.data(), ts.favg1.data(), ts.favg2.data()}};
    ts.kernel.run(qc, 0.5 * dt, inv_dx, src_ptr, half_out);
  }
}

void AderDgSolver::step(double dt) {
  for (int phase = 0; phase < num_step_phases(); ++phase)
    step_phase(phase, dt);
}

void AderDgSolver::step_phase(int phase, double dt) {
  step_phase_interior(phase, dt);
  step_phase_boundary(phase, dt);
}

void AderDgSolver::step_phase_interior(int phase, double dt) {
  EXASTP_CHECK_MSG(dt > 0.0, "dt must be positive");
  if (lts_enabled_) {
    EXASTP_CHECK(phase >= 0 && phase < 2 * macro_substeps_);
    const int s = phase / 2;
    const double dt_fine = dt / macro_substeps_;
    if (phase % 2 == 0) {
      // Predict fine substep s: every cluster whose step starts here
      // (s aligned to its 2^k stride) expands at t = time_ + s dt_fine.
      ScopedSpan span(SpanId::kPredict);
      const auto inv_dx = grid_.inv_dx();
      for (int k = 0; k < num_clusters_; ++k) {
        if (s % (1 << k) != 0) continue;
        predict_cluster(k, s, dt_fine * (1 << k), time_ + s * dt_fine,
                        inv_dx);
      }
      return;
    }
    // Correct fine substep s, interior sweep: the clusters completing
    // their step here read only owned qavg-family tensors.
    ScopedSpan span(SpanId::kCorrectInterior);
    for (int k = 0; k < num_clusters_; ++k) {
      if ((s + 1) % (1 << k) != 0) continue;
      correct_cluster(k, s, dt_fine * (1 << k), cluster_interior_[k]);
    }
    return;
  }

  EXASTP_CHECK(phase == 0 || phase == 1);
  if (phase == 0) {
    ScopedSpan span(SpanId::kPredict);
    const auto inv_dx = grid_.inv_dx();
    const auto integral_coeff = taylor_coefficients(dt, layout_.n);
    // Predictor + volume update: embarrassingly cell-parallel — qavg_c and
    // qnew_c belong to the traversed cell, each thread runs its own kernel
    // clone and favg scratch. No neighbour reads, so the phase is all
    // interior.
    par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
      ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
      for (long c = begin; c < end; ++c)
        predict_cell(ts, static_cast<int>(c), dt, time_, inv_dx,
                     integral_coeff, false);
    });
    return;
  }

  // Corrector over the interior set: these cells read only owned qavg
  // tensors, so the sweep runs while the halo exchange is in flight.
  ScopedSpan span(SpanId::kCorrectInterior);
  apply_corrector(dt, interior_cells_);
}

void AderDgSolver::step_phase_boundary(int phase, double dt) {
  if (lts_enabled_) {
    EXASTP_CHECK(phase >= 0 && phase < 2 * macro_substeps_);
    if (phase % 2 == 0) return;
    const int s = phase / 2;
    const double dt_fine = dt / macro_substeps_;
    ScopedSpan span(SpanId::kCorrectBoundary);
    for (int k = 0; k < num_clusters_; ++k) {
      if ((s + 1) % (1 << k) != 0) continue;
      correct_cluster(k, s, dt_fine * (1 << k), cluster_boundary_[k]);
    }
    if (s == macro_substeps_ - 1) {
      // Every cluster completes at the last fine substep, so every owned
      // cell's qnew is fresh — the whole-buffer swap and finite check of
      // the global path apply verbatim (K == 1 IS the global path).
      q_.swap(qnew_);
      time_ += dt;
      check_finite();
      return;
    }
    // Intermediate advance: only the completing clusters' cells move to
    // their substepped state; everyone else keeps stepping from q.
    for (int k = 0; k < num_clusters_; ++k) {
      if ((s + 1) % (1 << k) != 0) continue;
      const std::vector<int>& cells = cluster_cells_[k];
      par_.run(static_cast<long>(cells.size()), 1,
               [&](int /*tid*/, long begin, long end) {
                 for (long i = begin; i < end; ++i) {
                   const std::size_t off =
                       static_cast<std::size_t>(
                           cells[static_cast<std::size_t>(i)]) *
                       cell_size_;
                   std::memcpy(q_.data() + off, qnew_.data() + off,
                               cell_size_ * sizeof(double));
                 }
               });
    }
    return;
  }

  EXASTP_CHECK(phase == 0 || phase == 1);
  if (phase == 0) return;

  // Runs after qavg halos are valid (the monolithic grid has none, and its
  // boundary set is empty): boundary corrector, buffer swap, time advance.
  ScopedSpan span(SpanId::kCorrectBoundary);
  apply_corrector(dt, boundary_cells_);
  q_.swap(qnew_);
  time_ += dt;
  check_finite();
}

void AderDgSolver::correct_cell(ThreadScratch& ts, int c, double dt, int s) {
  const auto inv_dx = grid_.inv_dx();
  double* qnew_c = qnew_.data() + static_cast<std::size_t>(c) * cell_size_;
  if (!lts_enabled_ || num_clusters_ == 1) {
    const auto qavg_of = [this](int cell) -> const double* {
      return qavg_.data() + static_cast<std::size_t>(cell) * cell_size_;
    };
    for (int dir = 0; dir < 3; ++dir)
      for (int side = 0; side < 2; ++side)
        apply_own_face(*pde_, grid_, layout_, basis_, vars_, c, dir, side,
                       dt * inv_dx[dir], qavg_of, ts.faces, qnew_c);
    return;
  }

  // Cross-cluster neighbour states, derived on the fly from the CK/Taylor
  // identity avg[dt/2, dt] = 2 avg[0, dt] - avg[0, dt/2]. The own cell is
  // always same-cluster (direct pointer), so one scratch tensor per
  // thread suffices — each face consumes it before the next face derives
  // a new one. Parameter rows survive every derivation (2p - p = p,
  // 0.5 (p + p) = p), so face solves see valid materials.
  const int k = cluster_[static_cast<std::size_t>(c)];
  double* tmp = ts.nb_state.data();
  const auto state_of = [this, k, s, tmp](int cell) -> const double* {
    const std::size_t off = static_cast<std::size_t>(cell) * cell_size_;
    const double* avg = qavg_.data() + off;
    const int nk = cluster_[static_cast<std::size_t>(cell)];
    if (nk == k) return avg;
    if (nk > k) {
      // Coarser neighbour: its interval spans two of my steps; my local
      // substep parity says which half I am in.
      const double* half = qavg_half_.data() + off;
      if (((s >> k) & 1) == 0) return half;
      for (std::size_t i = 0; i < cell_size_; ++i)
        tmp[i] = 2.0 * avg[i] - half[i];
      return tmp;
    }
    // Finer neighbour: mean of its two sub-averages over my interval.
    const double* sum = qavg_sum_.data() + off;
    for (std::size_t i = 0; i < cell_size_; ++i) tmp[i] = 0.5 * sum[i];
    return tmp;
  };
  for (int dir = 0; dir < 3; ++dir)
    for (int side = 0; side < 2; ++side)
      apply_own_face(*pde_, grid_, layout_, basis_, vars_, c, dir, side,
                     dt * inv_dx[dir], state_of, ts.faces, qnew_c);
}

void AderDgSolver::apply_corrector(double dt, const std::vector<int>& cells) {
  // Cell-parallel surface sweep over one classification set: each cell
  // applies the lift from its own six faces to itself only (interior
  // Riemann solves are recomputed once per side — identical bits, no write
  // races), so the interior/boundary split never changes any cell's bits.
  par_.run(static_cast<long>(cells.size()), 1,
           [&](int tid, long begin, long end) {
             ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
             for (long i = begin; i < end; ++i)
               correct_cell(ts, cells[static_cast<std::size_t>(i)], dt, 0);
           });
}

void AderDgSolver::predict_cluster(int k, int s, double dt_k, double t,
                                   const std::array<double, 3>& inv_dx) {
  ScopedSpan span(SpanId::kLtsCluster, /*arg=*/k);
  const auto t0 = std::chrono::steady_clock::now();
  const auto integral_coeff = taylor_coefficients(dt_k, layout_.n);
  // A new sum window opens on every even local substep (the start of the
  // coarser neighbour's interval).
  const bool sum_reset = ((s >> k) & 1) == 0;
  const std::vector<int>& cells = cluster_cells_[static_cast<std::size_t>(k)];
  par_.run(static_cast<long>(cells.size()), 1,
           [&](int tid, long begin, long end) {
             ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
             for (long i = begin; i < end; ++i)
               predict_cell(ts, cells[static_cast<std::size_t>(i)], dt_k, t,
                            inv_dx, integral_coeff, sum_reset);
           });
  cluster_ns_[static_cast<std::size_t>(k)] +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  cluster_cell_substeps_[static_cast<std::size_t>(k)] +=
      static_cast<long long>(cells.size());
}

void AderDgSolver::correct_cluster(int k, int s, double dt_k,
                                   const std::vector<int>& cells) {
  ScopedSpan span(SpanId::kLtsCluster, /*arg=*/k);
  const auto t0 = std::chrono::steady_clock::now();
  par_.run(static_cast<long>(cells.size()), 1,
           [&](int tid, long begin, long end) {
             ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
             for (long i = begin; i < end; ++i)
               correct_cell(ts, cells[static_cast<std::size_t>(i)], dt_k, s);
           });
  cluster_ns_[static_cast<std::size_t>(k)] +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
}

void AderDgSolver::enable_lts(const std::vector<int>& cluster_of_cell,
                              int num_clusters) {
  const int total = grid_.num_cells() + grid_.num_halo_cells();
  EXASTP_CHECK_MSG(num_clusters >= 1, "lts needs at least one cluster");
  EXASTP_CHECK_MSG(
      static_cast<int>(cluster_of_cell.size()) == total,
      "lts cluster assignment must cover owned + halo cells");
  for (const int k : cluster_of_cell)
    EXASTP_CHECK_MSG(k >= 0 && k < num_clusters,
                     "lts cluster assignment out of range");
  // The CK/Taylor coupling covers exactly one rate level per face; the
  // engine's binning normalizes to this invariant, re-checked here so a
  // hand-built assignment cannot silently desynchronize.
  for (int c = 0; c < grid_.num_cells(); ++c) {
    for (int dir = 0; dir < 3; ++dir) {
      for (int side = 0; side < 2; ++side) {
        const NeighborRef nb = grid_.neighbor(c, dir, side);
        if (nb.boundary) continue;
        const int diff = cluster_of_cell[static_cast<std::size_t>(c)] -
                         cluster_of_cell[static_cast<std::size_t>(nb.cell)];
        EXASTP_CHECK_MSG(diff >= -1 && diff <= 1,
                         "lts face neighbours must be at most one rate "
                         "cluster apart");
      }
    }
  }

  cluster_ = cluster_of_cell;
  num_clusters_ = num_clusters;
  macro_substeps_ = 1 << (num_clusters - 1);
  lts_enabled_ = true;

  // Per-cluster sweep lists, filtered from the global orders so the
  // K == 1 degenerate case walks exactly the global sweeps.
  cluster_cells_.assign(static_cast<std::size_t>(num_clusters), {});
  for (int c = 0; c < grid_.num_cells(); ++c)
    cluster_cells_[static_cast<std::size_t>(cluster_[c])].push_back(c);
  cluster_interior_.assign(static_cast<std::size_t>(num_clusters), {});
  for (const int c : interior_cells_)
    cluster_interior_[static_cast<std::size_t>(cluster_[c])].push_back(c);
  cluster_boundary_.assign(static_cast<std::size_t>(num_clusters), {});
  for (const int c : boundary_cells_)
    cluster_boundary_[static_cast<std::size_t>(cluster_[c])].push_back(c);

  // Production flags: which owned cells must publish the extra
  // time-averages. Halo neighbours count — the reader may live on
  // another shard, and the exchange moves whatever this shard produced.
  needs_half_.assign(static_cast<std::size_t>(total), 0);
  needs_sum_.assign(static_cast<std::size_t>(total), 0);
  for (int c = 0; c < grid_.num_cells(); ++c) {
    for (int dir = 0; dir < 3; ++dir) {
      for (int side = 0; side < 2; ++side) {
        const NeighborRef nb = grid_.neighbor(c, dir, side);
        if (nb.boundary) continue;
        const int nk = cluster_[static_cast<std::size_t>(nb.cell)];
        const int k = cluster_[static_cast<std::size_t>(c)];
        if (nk < k) needs_half_[static_cast<std::size_t>(c)] = 1;
        if (nk > k) needs_sum_[static_cast<std::size_t>(c)] = 1;
      }
    }
  }

  if (num_clusters_ > 1) {
    const std::size_t size = static_cast<std::size_t>(total) * cell_size_;
    qavg_half_.assign(size, 0.0);
    qavg_sum_.assign(size, 0.0);
  }
  cluster_ns_.assign(static_cast<std::size_t>(num_clusters), 0);
  cluster_cell_substeps_.assign(static_cast<std::size_t>(num_clusters), 0);
}

std::vector<SolverBase::LtsClusterStats> AderDgSolver::lts_cluster_stats()
    const {
  if (!lts_enabled_) return {};
  std::vector<LtsClusterStats> stats(
      static_cast<std::size_t>(num_clusters_));
  for (int k = 0; k < num_clusters_; ++k) {
    LtsClusterStats& st = stats[static_cast<std::size_t>(k)];
    st.cells = static_cast<int>(
        cluster_cells_[static_cast<std::size_t>(k)].size());
    st.cell_substeps = cluster_cell_substeps_[static_cast<std::size_t>(k)];
    st.ns = cluster_ns_[static_cast<std::size_t>(k)];
  }
  return stats;
}

std::vector<SolverBase::PhaseHaloField> AderDgSolver::step_phase_halo_fields(
    int phase) {
  double* primary = step_phase_halo(phase);
  if (primary == nullptr) return {};
  std::vector<PhaseHaloField> fields{PhaseHaloField{primary, 0}};
  if (num_clusters_ > 1) {
    // Over-exchange by design: not every correct phase reads every
    // buffer, but a fixed field set keeps all shards' posts structurally
    // agreed without any cross-shard negotiation.
    fields.push_back(PhaseHaloField{qavg_half_.data(), 1});
    fields.push_back(PhaseHaloField{qavg_sum_.data(), 2});
  }
  return fields;
}

void AderDgSolver::check_finite() const {
  // Per-chunk verdicts with early exit; "any non-finite" commutes, so the
  // outcome is thread-count-independent.
  std::vector<char> bad(static_cast<std::size_t>(par_.num_threads()), 0);
  par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
    for (long c = begin; c < end; ++c) {
      const double* cell = cell_dofs(static_cast<int>(c));
      for (std::size_t i = 0; i < cell_size_; ++i) {
        if (!std::isfinite(cell[i])) {
          bad[static_cast<std::size_t>(tid)] = 1;
          return;
        }
      }
    }
  });
  for (char b : bad) {
    if (b != 0)
      throw std::runtime_error(
          "AderDgSolver: solution became non-finite (CFL violation or "
          "unstable setup)");
  }
}

}  // namespace exastp
