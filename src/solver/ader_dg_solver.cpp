#include "exastp/solver/ader_dg_solver.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "exastp/basis/lagrange.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"

namespace exastp {

AderDgSolver::AderDgSolver(std::shared_ptr<const PdeRuntime> pde,
                           StpKernel kernel, const GridSpec& grid_spec,
                           NodeFamily family)
    : pde_(std::move(pde)),
      kernel_(std::move(kernel)),
      grid_(grid_spec),
      basis_(basis_tables(kernel_.layout().n, family)),
      layout_(kernel_.layout()),
      face_layout_(layout_),
      cell_size_(layout_.size()),
      vars_(pde_ ? pde_->info().vars : 0) {
  EXASTP_CHECK_MSG(pde_ != nullptr && kernel_, "solver needs pde and kernel");
  EXASTP_CHECK_MSG(pde_->info().quants == layout_.m,
                   "kernel layout does not match the PDE");
  const std::size_t total =
      static_cast<std::size_t>(grid_.num_cells()) * cell_size_;
  q_.assign(total, 0.0);
  qnew_.assign(total, 0.0);
  qavg_.assign(total, 0.0);
  face_l_.assign(face_layout_.size(), 0.0);
  face_r_.assign(face_layout_.size(), 0.0);
  flux_l_.assign(face_layout_.size(), 0.0);
  flux_r_.assign(face_layout_.size(), 0.0);
  fstar_.assign(face_layout_.size(), 0.0);
}

void AderDgSolver::set_initial_condition(
    const std::function<void(const std::array<double, 3>&, double*)>& init) {
  const int n = layout_.n;
  std::vector<double> node(layout_.m);
  for (int c = 0; c < grid_.num_cells(); ++c) {
    double* cell = mutable_cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          init(node_position(c, k1, k2, k3), node.data());
          double* dst = cell + layout_.idx(k3, k2, k1, 0);
          std::memcpy(dst, node.data(), layout_.m * sizeof(double));
          for (int s = layout_.m; s < layout_.m_pad; ++s) dst[s] = 0.0;
        }
  }
  time_ = 0.0;
}

void AderDgSolver::add_point_source(const MeshPointSource& source) {
  EXASTP_CHECK_MSG(source.wavelet != nullptr, "source needs a wavelet");
  EXASTP_CHECK_MSG(source.quantity >= 0 &&
                       source.quantity < pde_->info().vars,
                   "source quantity must be an evolved variable");
  PreparedSource prepared;
  std::array<double, 3> xi{};
  prepared.cell = grid_.locate(source.position, &xi);
  for (const auto& existing : sources_)
    EXASTP_CHECK_MSG(existing.cell != prepared.cell,
                     "only one point source per cell is supported");
  prepared.source = source;
  prepared.psi = project_point_source(basis_, xi, grid_.cell_volume());
  sources_.push_back(std::move(prepared));
}

std::array<double, 3> AderDgSolver::node_position(int cell, int k1, int k2,
                                                  int k3) const {
  const auto o = grid_.cell_origin(cell);
  return {o[0] + grid_.dx(0) * basis_.nodes[k1],
          o[1] + grid_.dx(1) * basis_.nodes[k2],
          o[2] + grid_.dx(2) * basis_.nodes[k3]};
}

double AderDgSolver::stable_dt(double cfl) const {
  const int n = layout_.n;
  double smax = 1e-300;
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  for (int c = 0; c < grid_.num_cells(); ++c) {
    const double* cell = cell_dofs(c);
    for (std::size_t k = 0; k < nodes; ++k)
      for (int d = 0; d < 3; ++d)
        smax = std::max(smax,
                        pde_->max_wave_speed(cell + k * layout_.m_pad, d));
  }
  const double hmin =
      std::min({grid_.dx(0), grid_.dx(1), grid_.dx(2)});
  // Standard explicit-DG CFL bound ~ h / (c (2N - 1)) per dimension.
  return cfl * hmin / (smax * (2.0 * n - 1.0) * 3.0);
}

void AderDgSolver::step(double dt) {
  EXASTP_CHECK_MSG(dt > 0.0, "dt must be positive");
  const auto inv_dx = grid_.inv_dx();
  const auto integral_coeff = taylor_coefficients(dt, layout_.n);

  // Predictor + volume update.
  std::memcpy(qnew_.data(), q_.data(), q_.size() * sizeof(double));
  for (int c = 0; c < grid_.num_cells(); ++c) {
    const double* qc = cell_dofs(c);
    double* qavg_c = qavg_.data() + static_cast<std::size_t>(c) * cell_size_;
    double* qnew_c = qnew_.data() + static_cast<std::size_t>(c) * cell_size_;

    // Reuse the face scratch-free favg buffers: favg goes straight into the
    // volume update, so three temporaries per cell suffice.
    static thread_local AlignedVector favg0, favg1, favg2;
    favg0.assign(cell_size_, 0.0);
    favg1.assign(cell_size_, 0.0);
    favg2.assign(cell_size_, 0.0);

    SourceTerm src;
    const SourceTerm* src_ptr = nullptr;
    for (const auto& prepared : sources_) {
      if (prepared.cell != c) continue;
      src.psi = prepared.psi.data();
      src.quantity = prepared.source.quantity;
      for (int o = 0; o <= layout_.n; ++o)
        src.dt_derivatives[o] =
            prepared.source.wavelet->derivative(time_, o);
      src_ptr = &src;
      break;  // one source per cell supported; add_point_source validates
    }

    StpOutputs out{qavg_c, {favg0.data(), favg1.data(), favg2.data()}};
    kernel_.run(qc, dt, inv_dx, src_ptr, out);

    for (const double* f : {favg0.data(), favg1.data(), favg2.data()})
      for (std::size_t i = 0; i < cell_size_; ++i) qnew_c[i] += dt * f[i];
    FlopCounter::instance().add(WidthClass::k128, 6ull * cell_size_);

    if (src_ptr != nullptr) {
      // Direct time integral of the source: qnew += psi * int s dt.
      double integral = 0.0;
      for (int o = 0; o < layout_.n; ++o)
        integral += src.dt_derivatives[o] * integral_coeff[o];
      const int n = layout_.n;
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2)
          for (int k1 = 0; k1 < n; ++k1)
            qnew_c[layout_.idx(k3, k2, k1, src.quantity)] +=
                src.psi[(static_cast<std::size_t>(k3) * n + k2) * n + k1] *
                integral;
    }
  }

  apply_corrector(dt);

  q_.swap(qnew_);
  time_ += dt;
  check_finite();
}

void AderDgSolver::apply_corrector(double dt) {
  const int n = layout_.n;
  const auto inv_dx = grid_.inv_dx();
  std::vector<double> ghost_node(layout_.m);

  // Sweep the three face directions; each interior face is visited once
  // (owned by the cell on its lower side).
  for (int dir = 0; dir < 3; ++dir) {
    const double scale = dt * inv_dx[dir];
    for (int c = 0; c < grid_.num_cells(); ++c) {
      // Face between cell c (upper side) and its +dir neighbour.
      const NeighborRef nb = grid_.neighbor(c, dir, 1);
      const double* qavg_l =
          qavg_.data() + static_cast<std::size_t>(c) * cell_size_;
      project_to_face(layout_, basis_, qavg_l, dir, 1, face_l_.data());

      if (!nb.boundary) {
        const double* qavg_r =
            qavg_.data() + static_cast<std::size_t>(nb.cell) * cell_size_;
        project_to_face(layout_, basis_, qavg_r, dir, 0, face_r_.data());
      } else {
        // Ghost state from the boundary condition.
        const int nn = n * n;
        for (int k = 0; k < nn; ++k) {
          const double* inner =
              face_l_.data() + static_cast<std::size_t>(k) * layout_.m_pad;
          double* ghost =
              face_r_.data() + static_cast<std::size_t>(k) * layout_.m_pad;
          if (nb.kind == BoundaryKind::kWall) {
            pde_->wall_reflect(inner, dir, ghost_node.data());
            std::memcpy(ghost, ghost_node.data(),
                        layout_.m * sizeof(double));
          } else {
            // Absorbing outflow: zero wave state with copied parameters.
            // The Rusanov flux then swallows the outgoing characteristics
            // (a plain copy-ghost is the unstable extrapolation BC).
            for (int s = 0; s < vars_; ++s) ghost[s] = 0.0;
            for (int s = vars_; s < layout_.m; ++s) ghost[s] = inner[s];
          }
          for (int s = layout_.m; s < layout_.m_pad; ++s) ghost[s] = 0.0;
        }
      }

      face_normal_flux(*pde_, face_layout_, face_l_.data(), dir,
                       flux_l_.data());
      face_normal_flux(*pde_, face_layout_, face_r_.data(), dir,
                       flux_r_.data());
      rusanov_flux(*pde_, face_layout_, face_l_.data(), face_r_.data(),
                   flux_l_.data(), flux_r_.data(), dir, fstar_.data());

      double* qnew_l = qnew_.data() + static_cast<std::size_t>(c) * cell_size_;
      apply_face_correction(layout_, basis_, dir, 1, scale, fstar_.data(),
                            flux_l_.data(), qnew_l);
      if (!nb.boundary) {
        double* qnew_r =
            qnew_.data() + static_cast<std::size_t>(nb.cell) * cell_size_;
        apply_face_correction(layout_, basis_, dir, 0, scale, fstar_.data(),
                              flux_r_.data(), qnew_r);
      }
      // At a lower-side physical boundary, handle the face owned by nobody.
      const NeighborRef lower = grid_.neighbor(c, dir, 0);
      if (lower.boundary) {
        project_to_face(layout_, basis_, qavg_l, dir, 0, face_r_.data());
        const int nn = n * n;
        for (int k = 0; k < nn; ++k) {
          const double* inner =
              face_r_.data() + static_cast<std::size_t>(k) * layout_.m_pad;
          double* ghost =
              face_l_.data() + static_cast<std::size_t>(k) * layout_.m_pad;
          if (lower.kind == BoundaryKind::kWall) {
            pde_->wall_reflect(inner, dir, ghost_node.data());
            std::memcpy(ghost, ghost_node.data(),
                        layout_.m * sizeof(double));
          } else {
            for (int s = 0; s < vars_; ++s) ghost[s] = 0.0;
            for (int s = vars_; s < layout_.m; ++s) ghost[s] = inner[s];
          }
          for (int s = layout_.m; s < layout_.m_pad; ++s) ghost[s] = 0.0;
        }
        face_normal_flux(*pde_, face_layout_, face_r_.data(), dir,
                         flux_r_.data());
        face_normal_flux(*pde_, face_layout_, face_l_.data(), dir,
                         flux_l_.data());
        rusanov_flux(*pde_, face_layout_, face_l_.data(), face_r_.data(),
                     flux_l_.data(), flux_r_.data(), dir, fstar_.data());
        apply_face_correction(layout_, basis_, dir, 0, scale, fstar_.data(),
                              flux_r_.data(), qnew_l);
      }
    }
  }
}

void AderDgSolver::check_finite() const {
  for (double v : q_) {
    if (!std::isfinite(v))
      throw std::runtime_error(
          "AderDgSolver: solution became non-finite (CFL violation or "
          "unstable setup)");
  }
}

int AderDgSolver::run_until(double t_end, double cfl) {
  int steps = 0;
  while (time_ < t_end - 1e-14) {
    double dt = stable_dt(cfl);
    if (time_ + dt > t_end) dt = t_end - time_;
    step(dt);
    ++steps;
  }
  return steps;
}

}  // namespace exastp
