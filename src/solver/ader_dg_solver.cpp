#include "exastp/solver/ader_dg_solver.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "exastp/basis/lagrange.h"
#include "exastp/common/taylor.h"
#include "exastp/gemm/vecops.h"
#include "exastp/mesh/partition.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

AderDgSolver::AderDgSolver(std::shared_ptr<const PdeRuntime> pde,
                           StpKernel kernel, const GridSpec& grid_spec,
                           NodeFamily family)
    : AderDgSolver(std::move(pde), std::move(kernel), Grid(grid_spec),
                   family) {}

AderDgSolver::AderDgSolver(std::shared_ptr<const PdeRuntime> pde,
                           StpKernel kernel, const Grid& grid,
                           NodeFamily family)
    : pde_(std::move(pde)),
      kernel_(std::move(kernel)),
      grid_(grid),
      basis_(basis_tables(kernel_.layout().n, family)),
      layout_(kernel_.layout()),
      face_layout_(layout_),
      cell_size_(layout_.size()),
      vars_(pde_ ? pde_->info().vars : 0) {
  EXASTP_CHECK_MSG(pde_ != nullptr && kernel_, "solver needs pde and kernel");
  EXASTP_CHECK_MSG(pde_->info().quants == layout_.m,
                   "kernel layout does not match the PDE");
  // Halo slots extend every buffer so the corrector's neighbour accessor
  // is one base pointer for owned and exchanged cells alike; only qavg's
  // halo is ever filled (step_phase_halo), the others stay zero.
  const std::size_t total =
      static_cast<std::size_t>(grid_.num_cells() + grid_.num_halo_cells()) *
      cell_size_;
  q_.assign(total, 0.0);
  qnew_.assign(total, 0.0);
  qavg_.assign(total, 0.0);
  CellClassification cells = classify_cells(grid_);
  interior_cells_ = std::move(cells.interior);
  boundary_cells_ = std::move(cells.boundary);
  rebuild_scratch();
}

void AderDgSolver::set_thread_team(const ParallelFor& team) {
  // Validate before touching par_/scratch_, so a throw leaves the solver
  // in its previous, consistent configuration.
  EXASTP_CHECK_MSG(team.num_threads() == 1 || kernel_.can_fork(),
                   "multi-threaded stepping needs a forkable kernel "
                   "(built via make_stp_kernel)");
  SolverBase::set_thread_team(team);
  rebuild_scratch();
}

void AderDgSolver::rebuild_scratch() {
  scratch_.clear();
  scratch_.reserve(static_cast<std::size_t>(num_threads()));
  for (int tid = 0; tid < num_threads(); ++tid) {
    ThreadScratch ts;
    // Thread 0 is the caller and may share the primary kernel's workspace;
    // every other thread gets an independent clone.
    ts.kernel = tid == 0 ? kernel_ : kernel_.fork();
    ts.favg0.assign(cell_size_, 0.0);
    ts.favg1.assign(cell_size_, 0.0);
    ts.favg2.assign(cell_size_, 0.0);
    ts.faces.resize(face_layout_);
    scratch_.push_back(std::move(ts));
  }
}

void AderDgSolver::set_initial_condition(
    const std::function<void(const std::array<double, 3>&, double*)>& init) {
  const int n = layout_.n;
  std::vector<double> node(layout_.m);
  for (int c = 0; c < grid_.num_cells(); ++c) {
    double* cell = mutable_cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          init(node_position(c, k1, k2, k3), node.data());
          double* dst = cell + layout_.idx(k3, k2, k1, 0);
          std::memcpy(dst, node.data(), layout_.m * sizeof(double));
          for (int s = layout_.m; s < layout_.m_pad; ++s) dst[s] = 0.0;
        }
  }
  time_ = 0.0;
}

void AderDgSolver::add_point_source(const MeshPointSource& source) {
  prepare_point_source(source, vars_);
}

std::array<double, 3> AderDgSolver::node_position(int cell, int k1, int k2,
                                                  int k3) const {
  const auto o = grid_.cell_origin(cell);
  return {o[0] + grid_.dx(0) * basis_.nodes[k1],
          o[1] + grid_.dx(1) * basis_.nodes[k2],
          o[2] + grid_.dx(2) * basis_.nodes[k3]};
}

double AderDgSolver::stable_dt(double cfl) const {
  const int n = layout_.n;
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  // Per-chunk maxima: max commutes exactly, so the result stays bitwise-
  // independent of the thread count even though chunk bounds are not.
  std::vector<double> partials(static_cast<std::size_t>(par_.num_threads()),
                               0.0);
  par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
    double chunk_max = 0.0;
    for (long c = begin; c < end; ++c) {
      const double* cell = cell_dofs(static_cast<int>(c));
      for (std::size_t k = 0; k < nodes; ++k)
        for (int d = 0; d < 3; ++d)
          chunk_max = std::max(
              chunk_max, pde_->max_wave_speed(cell + k * layout_.m_pad, d));
    }
    partials[static_cast<std::size_t>(tid)] = chunk_max;
  });
  double smax = 1e-300;
  for (double s : partials) smax = std::max(smax, s);
  const double hmin =
      std::min({grid_.dx(0), grid_.dx(1), grid_.dx(2)});
  // Standard explicit-DG CFL bound ~ h / (c (2N - 1)) per dimension.
  return cfl * hmin / (smax * (2.0 * n - 1.0) * 3.0);
}

void AderDgSolver::predict_cell(
    ThreadScratch& ts, int c, double dt,
    const std::array<double, 3>& inv_dx,
    const std::array<double, kMaxOrder>& integral_coeff) {
  const double* qc = cell_dofs(c);
  double* qavg_c = qavg_.data() + static_cast<std::size_t>(c) * cell_size_;
  double* qnew_c = qnew_.data() + static_cast<std::size_t>(c) * cell_size_;

  std::memcpy(qnew_c, qc, cell_size_ * sizeof(double));

  // favg goes straight into the volume update, so three temporaries per
  // thread suffice.
  ts.favg0.assign(cell_size_, 0.0);
  ts.favg1.assign(cell_size_, 0.0);
  ts.favg2.assign(cell_size_, 0.0);

  SourceTerm src;
  const SourceTerm* src_ptr = nullptr;
  for (const auto& prepared : sources_) {
    if (prepared.cell != c) continue;
    src.psi = prepared.psi.data();
    src.quantity = prepared.source.quantity;
    for (int o = 0; o <= layout_.n; ++o)
      src.dt_derivatives[o] =
          prepared.source.wavelet->derivative(time_, o);
    src_ptr = &src;
    break;  // one source per cell supported; add_point_source validates
  }

  StpOutputs out{qavg_c, {ts.favg0.data(), ts.favg1.data(), ts.favg2.data()}};
  ts.kernel.run(qc, dt, inv_dx, src_ptr, out);

  for (const double* f : {ts.favg0.data(), ts.favg1.data(), ts.favg2.data()})
    for (std::size_t i = 0; i < cell_size_; ++i) qnew_c[i] += dt * f[i];
  FlopCounter::instance().add(WidthClass::k128, 6ull * cell_size_);

  if (src_ptr != nullptr) {
    // Direct time integral of the source: qnew += psi * int s dt.
    double integral = 0.0;
    for (int o = 0; o < layout_.n; ++o)
      integral += src.dt_derivatives[o] * integral_coeff[o];
    const int n = layout_.n;
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1)
          qnew_c[layout_.idx(k3, k2, k1, src.quantity)] +=
              src.psi[(static_cast<std::size_t>(k3) * n + k2) * n + k1] *
              integral;
  }
}

void AderDgSolver::step(double dt) {
  for (int phase = 0; phase < num_step_phases(); ++phase)
    step_phase(phase, dt);
}

void AderDgSolver::step_phase(int phase, double dt) {
  step_phase_interior(phase, dt);
  step_phase_boundary(phase, dt);
}

void AderDgSolver::step_phase_interior(int phase, double dt) {
  EXASTP_CHECK_MSG(dt > 0.0, "dt must be positive");
  EXASTP_CHECK(phase == 0 || phase == 1);
  if (phase == 0) {
    ScopedSpan span(SpanId::kPredict);
    const auto inv_dx = grid_.inv_dx();
    const auto integral_coeff = taylor_coefficients(dt, layout_.n);
    // Predictor + volume update: embarrassingly cell-parallel — qavg_c and
    // qnew_c belong to the traversed cell, each thread runs its own kernel
    // clone and favg scratch. No neighbour reads, so the phase is all
    // interior.
    par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
      ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
      for (long c = begin; c < end; ++c)
        predict_cell(ts, static_cast<int>(c), dt, inv_dx, integral_coeff);
    });
    return;
  }

  // Corrector over the interior set: these cells read only owned qavg
  // tensors, so the sweep runs while the halo exchange is in flight.
  ScopedSpan span(SpanId::kCorrectInterior);
  apply_corrector(dt, interior_cells_);
}

void AderDgSolver::step_phase_boundary(int phase, double dt) {
  EXASTP_CHECK(phase == 0 || phase == 1);
  if (phase == 0) return;

  // Runs after qavg halos are valid (the monolithic grid has none, and its
  // boundary set is empty): boundary corrector, buffer swap, time advance.
  ScopedSpan span(SpanId::kCorrectBoundary);
  apply_corrector(dt, boundary_cells_);
  q_.swap(qnew_);
  time_ += dt;
  check_finite();
}

void AderDgSolver::correct_cell(ThreadScratch& ts, int c, double dt) {
  const auto inv_dx = grid_.inv_dx();
  const auto qavg_of = [this](int cell) -> const double* {
    return qavg_.data() + static_cast<std::size_t>(cell) * cell_size_;
  };
  double* qnew_c = qnew_.data() + static_cast<std::size_t>(c) * cell_size_;
  for (int dir = 0; dir < 3; ++dir)
    for (int side = 0; side < 2; ++side)
      apply_own_face(*pde_, grid_, layout_, basis_, vars_, c, dir, side,
                     dt * inv_dx[dir], qavg_of, ts.faces, qnew_c);
}

void AderDgSolver::apply_corrector(double dt, const std::vector<int>& cells) {
  // Cell-parallel surface sweep over one classification set: each cell
  // applies the lift from its own six faces to itself only (interior
  // Riemann solves are recomputed once per side — identical bits, no write
  // races), so the interior/boundary split never changes any cell's bits.
  par_.run(static_cast<long>(cells.size()), 1,
           [&](int tid, long begin, long end) {
             ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
             for (long i = begin; i < end; ++i)
               correct_cell(ts, cells[static_cast<std::size_t>(i)], dt);
           });
}

void AderDgSolver::check_finite() const {
  // Per-chunk verdicts with early exit; "any non-finite" commutes, so the
  // outcome is thread-count-independent.
  std::vector<char> bad(static_cast<std::size_t>(par_.num_threads()), 0);
  par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
    for (long c = begin; c < end; ++c) {
      const double* cell = cell_dofs(static_cast<int>(c));
      for (std::size_t i = 0; i < cell_size_; ++i) {
        if (!std::isfinite(cell[i])) {
          bad[static_cast<std::size_t>(tid)] = 1;
          return;
        }
      }
    }
  });
  for (char b : bad) {
    if (b != 0)
      throw std::runtime_error(
          "AderDgSolver: solution became non-finite (CFL violation or "
          "unstable setup)");
  }
}

}  // namespace exastp
