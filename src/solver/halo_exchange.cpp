#include "exastp/solver/halo_exchange.h"

#include <cstring>

namespace exastp {

InProcessExchange::InProcessExchange(const Partition& partition,
                                     std::size_t cell_size)
    : cell_size_(cell_size) {
  EXASTP_CHECK_MSG(cell_size_ > 0, "halo exchange needs a cell size");
  for (int s = 0; s < partition.num_shards(); ++s) {
    for (const HaloPlan& plan : partition.subdomain(s).halos) {
      Link link;
      link.dst_shard = s;
      link.src_shard = plan.src_shard;
      link.src_cells = plan.src_cells;
      link.dst_offset = static_cast<std::size_t>(plan.dst_begin) * cell_size_;
      const std::size_t bytes =
          plan.src_cells.size() * cell_size_ * sizeof(double);
      payload_bytes_ += bytes;
      copied_bytes_ += bytes;
      links_.push_back(std::move(link));
    }
  }
}

void InProcessExchange::do_post(const std::vector<ExchangeField>& fields) {
  EXASTP_CHECK_MSG(!in_flight_, "an exchange is already in flight");
  in_flight_ = true;
  for (const ExchangeField& field : fields) {
    const std::vector<double*>& shard_fields = field.shard_fields;
    for (const Link& link : links_) {
      EXASTP_CHECK(link.src_shard >= 0 &&
                   link.src_shard < static_cast<int>(shard_fields.size()) &&
                   link.dst_shard < static_cast<int>(shard_fields.size()));
      const double* src =
          shard_fields[static_cast<std::size_t>(link.src_shard)];
      double* dst = shard_fields[static_cast<std::size_t>(link.dst_shard)];
      EXASTP_CHECK_MSG(src != nullptr && dst != nullptr,
                       "the in-process backend needs every shard's field");

      // Zero-copy gather: the halo block is contiguous in the destination
      // array and ordered like the plan's plane, so each source tensor lands
      // directly in its slot — no intermediate send/recv buffers.
      double* out = dst + link.dst_offset;
      for (const int cell : link.src_cells) {
        std::memcpy(out, src + static_cast<std::size_t>(cell) * cell_size_,
                    cell_size_ * sizeof(double));
        out += cell_size_;
      }
    }
  }
}

void InProcessExchange::do_wait() {
  EXASTP_CHECK_MSG(in_flight_, "wait() without a posted exchange");
  in_flight_ = false;
}

}  // namespace exastp
