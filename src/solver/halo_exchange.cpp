#include "exastp/solver/halo_exchange.h"

#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

namespace exastp {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LocalLinkSet::LocalLinkSet(const Partition& partition, std::size_t cell_size,
                           int only_rank)
    : cell_size_(cell_size), num_shards_(partition.num_shards()) {
  EXASTP_CHECK_MSG(cell_size_ > 0, "halo exchange needs a cell size");
  for (int s = 0; s < partition.num_shards(); ++s) {
    if (only_rank >= 0 && partition.rank_of(s) != only_rank) continue;
    for (const HaloPlan& plan : partition.subdomain(s).halos) {
      if (only_rank >= 0 && partition.rank_of(plan.src_shard) != only_rank)
        continue;
      Link link;
      link.dst_shard = s;
      link.src_shard = plan.src_shard;
      link.src_cells = plan.src_cells;
      link.dst_offset = static_cast<std::size_t>(plan.dst_begin) * cell_size_;
      link.cross_rank =
          partition.rank_of(s) != partition.rank_of(plan.src_shard);
      payload_bytes_ += plan.src_cells.size() * cell_size_ * sizeof(double);
      links_.push_back(std::move(link));
    }
  }
}

void LocalLinkSet::gather_all(const ExchangeField& field) const {
  const std::vector<double*>& shard_fields = field.shard_fields;
  for (const Link& link : links_) {
    EXASTP_CHECK(link.src_shard >= 0 &&
                 link.src_shard < static_cast<int>(shard_fields.size()) &&
                 link.dst_shard < static_cast<int>(shard_fields.size()));
    const double* src = shard_fields[static_cast<std::size_t>(link.src_shard)];
    double* dst = shard_fields[static_cast<std::size_t>(link.dst_shard)];
    EXASTP_CHECK_MSG(src != nullptr && dst != nullptr,
                     "the in-process gather needs both endpoints' fields");

    // Zero-copy gather: the halo block is contiguous in the destination
    // array and ordered like the plan's plane, so each source tensor lands
    // directly in its slot — no intermediate send/recv buffers.
    double* out = dst + link.dst_offset;
    for (const int cell : link.src_cells) {
      std::memcpy(out, src + static_cast<std::size_t>(cell) * cell_size_,
                  cell_size_ * sizeof(double));
      out += cell_size_;
    }
  }
}

void LocalLinkSet::begin_step(
    const std::vector<std::vector<ExchangeField>>& fields,
    std::int64_t latency_ns) {
  EXASTP_CHECK_MSG(fields_ == nullptr,
                   "a scheduled step is already in progress");
  fields_ = &fields;
  phases_ = static_cast<int>(fields.size());
  latency_ns_ = latency_ns;
  const std::size_t link_states =
      links_.size() * static_cast<std::size_t>(phases_);
  const std::size_t shard_states =
      static_cast<std::size_t>(num_shards_) * static_cast<std::size_t>(phases_);
  open_.assign(shard_states, 0);
  captured_.assign(link_states, 0);
  done_.assign(link_states, 0);
  deadline_ns_.assign(link_states, 0);
  if (staged_.size() < link_states) staged_.resize(link_states);
  pending_.assign(shard_states, 0);
  for (int p = 0; p < phases_; ++p) {
    if (!phase_has_fields(p)) continue;
    for (const Link& link : links_)
      ++pending_[shard_state_index(link.dst_shard, p)];
  }
}

void LocalLinkSet::stage(int link, int phase) {
  const Link& l = links_[static_cast<std::size_t>(link)];
  const std::vector<ExchangeField>& fields =
      (*fields_)[static_cast<std::size_t>(phase)];
  const std::size_t block = l.src_cells.size() * cell_size_;
  AlignedVector& buffer = staged_[link_state_index(link, phase)];
  buffer.resize(block * fields.size());
  double* out = buffer.data();
  for (const ExchangeField& field : fields) {
    const double* src =
        field.shard_fields[static_cast<std::size_t>(l.src_shard)];
    EXASTP_CHECK_MSG(src != nullptr, "halo field without storage");
    for (const int cell : l.src_cells) {
      std::memcpy(out, src + static_cast<std::size_t>(cell) * cell_size_,
                  cell_size_ * sizeof(double));
      out += cell_size_;
    }
  }
}

void LocalLinkSet::deliver_direct(int link, int phase) {
  const Link& l = links_[static_cast<std::size_t>(link)];
  for (const ExchangeField& field :
       (*fields_)[static_cast<std::size_t>(phase)]) {
    const double* src =
        field.shard_fields[static_cast<std::size_t>(l.src_shard)];
    double* dst = field.shard_fields[static_cast<std::size_t>(l.dst_shard)];
    EXASTP_CHECK_MSG(src != nullptr && dst != nullptr,
                     "halo field without storage");
    double* out = dst + l.dst_offset;
    for (const int cell : l.src_cells) {
      std::memcpy(out, src + static_cast<std::size_t>(cell) * cell_size_,
                  cell_size_ * sizeof(double));
      out += cell_size_;
    }
  }
  done_[link_state_index(link, phase)] = 1;
  --pending_[shard_state_index(l.dst_shard, phase)];
}

void LocalLinkSet::deliver_staged(int link, int phase) {
  const Link& l = links_[static_cast<std::size_t>(link)];
  const std::vector<ExchangeField>& fields =
      (*fields_)[static_cast<std::size_t>(phase)];
  const AlignedVector& buffer = staged_[link_state_index(link, phase)];
  const std::size_t block = l.src_cells.size() * cell_size_;
  EXASTP_CHECK(buffer.size() == block * fields.size());
  for (std::size_t f = 0; f < fields.size(); ++f) {
    double* dst = fields[f].shard_fields[static_cast<std::size_t>(l.dst_shard)];
    EXASTP_CHECK_MSG(dst != nullptr, "halo field without storage");
    std::memcpy(dst + l.dst_offset, buffer.data() + f * block,
                block * sizeof(double));
  }
  done_[link_state_index(link, phase)] = 1;
  --pending_[shard_state_index(l.dst_shard, phase)];
}

void LocalLinkSet::capture(int shard, int phase) {
  EXASTP_CHECK_MSG(fields_ != nullptr, "capture outside a scheduled step");
  if (!phase_has_fields(phase)) return;
  for (int i = 0; i < static_cast<int>(links_.size()); ++i) {
    const Link& l = links_[static_cast<std::size_t>(i)];
    if (l.src_shard != shard) continue;
    const std::size_t idx = link_state_index(i, phase);
    EXASTP_CHECK_MSG(captured_[idx] == 0, "link captured twice in one phase");
    captured_[idx] = 1;
    if (l.cross_rank && latency_ns_ > 0) {
      // Simulated wire: the bytes leave now (staged — the source keeps
      // computing into this field) but may not land before the deadline.
      stage(i, phase);
      deadline_ns_[idx] = steady_now_ns() + latency_ns_;
    } else if (open_[shard_state_index(l.dst_shard, phase)] != 0) {
      deliver_direct(i, phase);
    } else {
      stage(i, phase);
    }
  }
}

void LocalLinkSet::open(int shard, int phase) {
  EXASTP_CHECK_MSG(fields_ != nullptr, "open outside a scheduled step");
  const std::size_t sidx = shard_state_index(shard, phase);
  EXASTP_CHECK_MSG(open_[sidx] == 0, "phase opened twice for one shard");
  open_[sidx] = 1;
  if (!phase_has_fields(phase)) return;
  for (int i = 0; i < static_cast<int>(links_.size()); ++i) {
    const Link& l = links_[static_cast<std::size_t>(i)];
    if (l.dst_shard != shard) continue;
    const std::size_t idx = link_state_index(i, phase);
    if (captured_[idx] != 0 && done_[idx] == 0 &&
        (deadline_ns_[idx] == 0 || steady_now_ns() >= deadline_ns_[idx]))
      deliver_staged(i, phase);
  }
}

bool LocalLinkSet::delivered(int shard, int phase) const {
  if (!phase_has_fields(phase)) return true;
  return pending_[shard_state_index(shard, phase)] == 0;
}

bool LocalLinkSet::is_open(int shard, int phase) const {
  return open_[shard_state_index(shard, phase)] != 0;
}

bool LocalLinkSet::any_pending() const {
  for (int p = 0; p < phases_; ++p) {
    if (!phase_has_fields(p)) continue;
    for (int s = 0; s < num_shards_; ++s) {
      const std::size_t idx = shard_state_index(s, p);
      if (open_[idx] != 0 && pending_[idx] > 0) return true;
    }
  }
  return false;
}

void LocalLinkSet::poll(bool block) {
  if (fields_ == nullptr) return;
  while (true) {
    bool progressed = false;
    std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
    const std::int64_t now = steady_now_ns();
    for (int i = 0; i < static_cast<int>(links_.size()); ++i) {
      for (int p = 0; p < phases_; ++p) {
        const std::size_t idx = link_state_index(i, p);
        if (captured_[idx] == 0 || done_[idx] != 0) continue;
        const Link& l = links_[static_cast<std::size_t>(i)];
        if (open_[shard_state_index(l.dst_shard, p)] == 0) continue;
        if (deadline_ns_[idx] > now) {
          earliest = std::min(earliest, deadline_ns_[idx]);
          continue;
        }
        deliver_staged(i, p);
        progressed = true;
      }
    }
    if (!block || progressed) return;
    EXASTP_CHECK_MSG(earliest != std::numeric_limits<std::int64_t>::max(),
                     "scheduled exchange deadlock: blocking poll with "
                     "nothing in flight");
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(earliest - steady_now_ns()));
  }
}

void LocalLinkSet::end_step() {
  EXASTP_CHECK_MSG(fields_ != nullptr, "end_step outside a scheduled step");
  for (int p = 0; p < phases_; ++p) {
    if (!phase_has_fields(p)) continue;
    for (int s = 0; s < num_shards_; ++s) {
      const std::size_t idx = shard_state_index(s, p);
      EXASTP_CHECK_MSG(open_[idx] != 0 && pending_[idx] == 0,
                       "scheduled step ended with undelivered halos");
    }
  }
  fields_ = nullptr;
}

InProcessExchange::InProcessExchange(
    const Partition& partition, std::size_t cell_size,
    double simulated_cross_rank_latency_seconds)
    : links_(partition, cell_size, /*only_rank=*/-1),
      latency_ns_(static_cast<std::int64_t>(
          simulated_cross_rank_latency_seconds * 1e9)) {
  payload_bytes_ = links_.payload_bytes();
  copied_bytes_ = links_.payload_bytes();
}

void InProcessExchange::do_post(const std::vector<ExchangeField>& fields) {
  EXASTP_CHECK_MSG(!in_flight_, "an exchange is already in flight");
  in_flight_ = true;
  // Gather immediately — with simulated latency the bytes are already
  // final (the in-flight contract forbids writing the owned cells until
  // wait()), so only the completion time shifts, never the data.
  for (const ExchangeField& field : fields) links_.gather_all(field);
  if (latency_ns_ > 0) lockstep_deadline_ns_ = steady_now_ns() + latency_ns_;
}

void InProcessExchange::do_wait() {
  EXASTP_CHECK_MSG(in_flight_, "wait() without a posted exchange");
  in_flight_ = false;
  if (lockstep_deadline_ns_ > 0) {
    const std::int64_t remaining = lockstep_deadline_ns_ - steady_now_ns();
    if (remaining > 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(remaining));
    lockstep_deadline_ns_ = 0;
  }
}

void InProcessExchange::do_sched_begin_step(
    const std::vector<std::vector<ExchangeField>>& fields) {
  links_.begin_step(fields, latency_ns_);
}

void InProcessExchange::do_sched_capture(int shard, int phase) {
  links_.capture(shard, phase);
}

void InProcessExchange::do_sched_open(int shard, int phase) {
  links_.open(shard, phase);
}

bool InProcessExchange::do_sched_delivered(int shard, int phase) const {
  return links_.delivered(shard, phase);
}

bool InProcessExchange::do_sched_any_pending() const {
  return links_.any_pending();
}

void InProcessExchange::do_sched_poll(bool block) { links_.poll(block); }

void InProcessExchange::do_sched_end_step() { links_.end_step(); }

}  // namespace exastp
