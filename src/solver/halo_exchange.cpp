#include "exastp/solver/halo_exchange.h"

#include <cstring>

namespace exastp {

HaloExchange::HaloExchange(const Partition& partition, std::size_t cell_size)
    : cell_size_(cell_size) {
  EXASTP_CHECK_MSG(cell_size_ > 0, "halo exchange needs a cell size");
  for (int s = 0; s < partition.num_shards(); ++s) {
    for (const HaloPlan& plan : partition.subdomain(s).halos) {
      Link link;
      link.dst_shard = s;
      link.src_shard = plan.src_shard;
      link.src_cells = plan.src_cells;
      link.dst_offset = static_cast<std::size_t>(plan.dst_begin) * cell_size_;
      const std::size_t doubles = plan.src_cells.size() * cell_size_;
      link.send.assign(doubles, 0.0);
      link.recv.assign(doubles, 0.0);
      bytes_per_exchange_ += doubles * sizeof(double);
      links_.push_back(std::move(link));
    }
  }
}

void HaloExchange::exchange(const std::vector<double*>& shard_fields) {
  for (Link& link : links_) {
    EXASTP_CHECK(link.src_shard >= 0 &&
                 link.src_shard < static_cast<int>(shard_fields.size()) &&
                 link.dst_shard < static_cast<int>(shard_fields.size()));
    const double* src = shard_fields[static_cast<std::size_t>(link.src_shard)];
    double* dst = shard_fields[static_cast<std::size_t>(link.dst_shard)];

    // Pack: the (strided) source face plane into one contiguous buffer.
    double* out = link.send.data();
    for (const int cell : link.src_cells) {
      std::memcpy(out, src + static_cast<std::size_t>(cell) * cell_size_,
                  cell_size_ * sizeof(double));
      out += cell_size_;
    }

    // Swap: in-process today; an MPI backend replaces exactly this copy
    // with a send/receive of link.send into the peer's link.recv.
    std::memcpy(link.recv.data(), link.send.data(),
                link.send.size() * sizeof(double));

    // Unpack: the halo block is contiguous in the destination array and
    // ordered like the packed plane, so one copy lands every cell.
    std::memcpy(dst + link.dst_offset, link.recv.data(),
                link.recv.size() * sizeof(double));
  }
}

}  // namespace exastp
