// Pluggable halo-exchange backends with a split-phase protocol.
//
// PR 4 left the in-process swap memcpy as "the MPI seam". This interface
// cashes that in: an ExchangeBackend moves every HaloPlan's plan-ordered
// plane of cell_size-double DOF tensors from source shards into destination
// halo blocks, in two phases —
//
//   post(fields)   start moving the halo data (in-process: deliver it
//                  synchronously; MPI: MPI_Irecv into the halo blocks +
//                  pack and MPI_Isend the outgoing planes);
//   wait()         block until every halo slot of the posted fields is
//                  valid.
//
// Between post() and wait() the driving solver runs the phase's *interior*
// sweep (cells that read no halo data — see CellClassification in
// mesh/partition.h), so on a distributed run the halo latency hides behind
// compute instead of serializing in front of it. The boundary sweep runs
// after wait(). Contract for the in-flight window: the exchanged field's
// owned cells must not be written (the backend may still be reading them)
// and its halo slots must not be read (the backend is writing them); both
// steppers' interior sweeps satisfy this by construction.
//
// Whatever the backend, the bytes delivered into a halo slot are exactly
// the source cell's tensor, so sharded stepping stays bitwise-identical to
// the monolithic path for every backend, decomposition and thread count.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exastp/common/check.h"
#include "exastp/mesh/partition.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

/// One logical field of a (possibly multi-field) exchange.
/// `shard_fields[s]` is the base of shard s's DOF array (owned cells
/// first, halo blocks appended) for every shard materialized in this
/// process, nullptr for the others. `channel` is a small non-negative id
/// namespacing the transfer (the MPI tag space), so several fields — the
/// LTS corrector reads qavg, qavg_half and qavg_sum halos — move inside
/// one posted exchange without mixing bytes. Channels within one post
/// must be distinct.
struct ExchangeField {
  std::vector<double*> shard_fields;
  int channel = 0;
};

/// Channel ids stay below this bound (keeps MPI tags small and valid).
inline constexpr int kMaxExchangeChannels = 64;

class ExchangeBackend {
 public:
  virtual ~ExchangeBackend() = default;

  /// Registry-style key: "inprocess" or "mpi".
  virtual std::string name() const = 0;

  /// Starts refreshing the halo rings of one logical field on channel 0.
  /// The in-process backend needs all shard entries, the MPI backend
  /// exactly this rank's. No exchange may already be in flight.
  ///
  /// Non-virtual wrappers time every backend uniformly (the exchange_post /
  /// exchange_wait telemetry spans); backends implement do_post/do_wait.
  void post(const std::vector<double*>& shard_fields) {
    post_fields({ExchangeField{shard_fields, 0}});
  }

  /// Multi-field form: every field's halo rings refresh inside the same
  /// posted exchange (the backends allow only one in flight at a time, so
  /// phases that read several fields must post them together).
  void post_fields(const std::vector<ExchangeField>& fields) {
    ScopedSpan span(SpanId::kExchangePost);
    do_post(fields);
  }

  /// Completes the posted exchange; afterwards every halo slot of the
  /// posted fields holds its neighbour's tensor. The span it records is
  /// the *unhidden* halo latency — whatever the interior sweep did not
  /// cover.
  void wait() {
    ScopedSpan span(SpanId::kExchangeWait);
    do_wait();
  }

  /// post() + wait(): the serialized exchange for drivers that do not
  /// overlap (benches measuring the unhidden halo cost).
  void exchange(const std::vector<double*>& shard_fields) {
    post(shard_fields);
    wait();
  }

  // --- Dependency-scheduled protocol (ShardedSolver schedule=deps) ------
  //
  // Alternative to the lockstep post/wait pair for over-decomposed ranks:
  // per-shard, per-phase pipelining. One step is bracketed by
  // sched_begin_step / sched_end_step; in between the driving scheduler
  // tells the backend, shard by shard, when outgoing bytes become final
  // (sched_capture: the shard completed the previous phase) and when a
  // shard is ready to receive (sched_open: it finished reading the
  // previous phase's halos), and asks which shards' halos have fully
  // arrived (sched_delivered). The backend moves bytes as early as the
  // protocol allows: a capture whose receiver has already opened delivers
  // immediately (zero-copy in-process; an eager MPI_Isend across ranks),
  // otherwise the face plane is packed into a staging buffer at capture
  // time — the source keeps computing into the same field, so the bytes
  // of "phase start" must be taken right then. Delivery into a halo block
  // happens only after the receiver opened the phase (it may still be
  // reading the previous phase's halos), which makes the reordering
  // WAR-free; per (link, channel) transfers are produced and consumed in
  // phase order, so matching is unambiguous (MPI's non-overtaking rule
  // pairs same-tag messages in order).
  //
  // The bytes every halo slot receives are exactly the lockstep bytes, so
  // scheduled stepping stays bitwise-identical to lockstep (and to the
  // monolithic solver) for every decomposition.

  /// Whether this backend implements the scheduled protocol.
  virtual bool supports_scheduled() const { return false; }

  /// Starts a scheduled step. `fields_by_phase[phase]` is that phase's
  /// field list in the post_fields form (empty = the phase exchanges
  /// nothing); the vector must outlive the step. Resets per-link state.
  void sched_begin_step(
      const std::vector<std::vector<ExchangeField>>& fields_by_phase) {
    do_sched_begin_step(fields_by_phase);
  }
  /// Source-side: shard `shard` completed phase `phase - 1` (or the
  /// previous step, for phase 0), so its outgoing planes for `phase` are
  /// final — deliver or stage them now. Call once per (shard, phase), in
  /// ascending phase order per shard.
  void sched_capture(int shard, int phase) {
    ScopedSpan span(SpanId::kExchangePost);
    do_sched_capture(shard, phase);
  }
  /// Receiver-side: shard `shard` finished reading phase `phase - 1`
  /// halos, so `phase` deliveries may now land in its halo blocks. Call
  /// once per (shard, phase), in ascending phase order per shard.
  void sched_open(int shard, int phase) {
    ScopedSpan span(SpanId::kExchangePost);
    do_sched_open(shard, phase);
  }
  /// True once every halo slot `shard` reads in `phase` holds its
  /// neighbour's bytes (trivially true for non-exchanging phases). The
  /// shard's boundary sweep for the phase may then run.
  bool sched_delivered(int shard, int phase) const {
    return do_sched_delivered(shard, phase);
  }
  /// True while some opened (shard, phase) still waits on arrivals — the
  /// scheduler's "communication in flight" predicate for the overlap
  /// accounting.
  bool sched_any_pending() const { return do_sched_any_pending(); }
  /// Progresses in-flight transfers (MPI_Testsome-style). `block` waits
  /// until at least one delivery lands — only legal when some opened
  /// shard is undelivered (a blocking poll with nothing in flight is a
  /// scheduler bug and fails loudly).
  void sched_poll(bool block) { do_sched_poll(block); }
  /// Finishes the step: drains outstanding sends and verifies every
  /// exchanging (shard, phase) was opened and delivered.
  void sched_end_step() { do_sched_end_step(); }

  /// Halo bytes delivered into this process's shards per exchange (the
  /// logical traffic; identical for every backend on a local run).
  std::size_t payload_bytes_per_exchange() const { return payload_bytes_; }
  /// Bytes actually memcpy'd per exchange. The zero-copy in-process swap
  /// gathers each source plane straight into the peer's halo block, so
  /// this equals the payload (it used to be 3x: pack + swap + unpack);
  /// the MPI backend only copies on the send side (receives land directly
  /// in the halo block).
  std::size_t copied_bytes_per_exchange() const { return copied_bytes_; }

 protected:
  virtual void do_post(const std::vector<ExchangeField>& fields) = 0;
  virtual void do_wait() = 0;

  // Scheduled-protocol hooks; the defaults fail loudly so a backend that
  // answers supports_scheduled() == false is never driven half-way.
  virtual void do_sched_begin_step(
      const std::vector<std::vector<ExchangeField>>& /*fields_by_phase*/) {
    fail_unscheduled();
  }
  virtual void do_sched_capture(int /*shard*/, int /*phase*/) {
    fail_unscheduled();
  }
  virtual void do_sched_open(int /*shard*/, int /*phase*/) {
    fail_unscheduled();
  }
  virtual bool do_sched_delivered(int /*shard*/, int /*phase*/) const {
    fail_unscheduled();
  }
  virtual bool do_sched_any_pending() const { fail_unscheduled(); }
  virtual void do_sched_poll(bool /*block*/) { fail_unscheduled(); }
  virtual void do_sched_end_step() { fail_unscheduled(); }

  [[noreturn]] static void fail_unscheduled() {
    EXASTP_FAIL("this exchange backend does not implement the scheduled "
                "protocol (supports_scheduled() is false)");
  }

  std::size_t payload_bytes_ = 0;
  std::size_t copied_bytes_ = 0;
};

/// Builds the backend named by the `backend=` config key ("inprocess" |
/// "mpi") over `partition` with `cell_size` doubles per cell DOF tensor.
/// "mpi" requires a -DEXASTP_WITH_MPI=ON build and an initialized MPI
/// launch with one rank per shard; violations fail with a clear message.
std::unique_ptr<ExchangeBackend> make_exchange_backend(
    const std::string& backend, const Partition& partition,
    std::size_t cell_size);

}  // namespace exastp
