// Type-erased time-stepper interface.
//
// The engine offers two steppers over the same spatial discretization: the
// ADER-DG predictor-corrector (the paper's scheme) and the RK4-DG baseline
// it is measured against. SolverBase is the contract drivers, norms, energy
// functionals and output writers program against, so every scenario runs on
// either stepper — and the Simulation façade (src/engine/) can pick one from
// a runtime config string.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/parallel.h"
#include "exastp/io/observer.h"
#include "exastp/mesh/grid.h"
#include "exastp/pde/point_source.h"
#include "exastp/tensor/layout.h"

namespace exastp {

/// init(x, q_node) fills all m quantities at physical node position x.
using InitialCondition =
    std::function<void(const std::array<double, 3>&, double*)>;

/// exact(x, t) -> value of one quantity at physical position x and time t.
using ExactSolution =
    std::function<double(const std::array<double, 3>&, double)>;

/// Point source attached to the mesh.
struct MeshPointSource {
  std::array<double, 3> position{};
  int quantity = 0;
  std::shared_ptr<const SourceWavelet> wavelet;
};

class SolverBase {
 public:
  virtual ~SolverBase() = default;

  virtual const Grid& grid() const = 0;
  /// Engine-facing AoS layout of the DOF storage (padded for the optimized
  /// kernel variants).
  virtual const AosLayout& layout() const = 0;
  virtual const BasisTables& basis() const = 0;
  virtual double time() const = 0;
  virtual int order() const = 0;
  /// Evolved quantities — material/geometry parameters excluded (the
  /// layout's m counts both).
  virtual int evolved_quantities() const = 0;
  /// Short stepper tag for reports/configs: "ader" or "rk4".
  virtual std::string stepper_name() const = 0;

  virtual void set_initial_condition(const InitialCondition& init) = 0;

  /// Steppers without point-source support throw std::invalid_argument.
  virtual void add_point_source(const MeshPointSource& source);
  virtual bool supports_point_sources() const { return false; }

  /// Number of threads the hot loops fan out to. Direct construction
  /// defaults to 1 (serial, the benches' per-core measurement mode); the
  /// Simulation façade applies the config's `threads` key. `threads` < 1
  /// means "auto" (hardware concurrency). Results are bitwise-identical
  /// for every thread count — see README "Threading".
  void set_num_threads(int threads) { set_thread_team(ParallelFor(threads)); }
  /// Adopts an existing thread team (ParallelFor copies share one pool).
  /// The sharded composite hands every shard the same team — shards step
  /// sequentially, so one pool serves them all instead of shards x threads
  /// idle workers. Subclasses rebuild their per-thread scratch here.
  virtual void set_thread_team(const ParallelFor& team);
  int num_threads() const { return par_.num_threads(); }
  /// The solver's thread team, for functionals (norms, energies) that want
  /// to reduce over the mesh on the same threads as the stepper.
  const ParallelFor& parallel() const { return par_; }

  /// CFL-limited stable time step from the current solution.
  virtual double stable_dt(double cfl = 0.4) const = 0;
  /// Maps the CFL-stable dt to the dt one step() call actually advances.
  /// The identity for global stepping; the clustered-LTS ADER stepper
  /// returns stable * 2^(K-1) — one macro step spans the coarsest
  /// cluster's dt while the finest cluster substeps at the stable rate.
  /// run_until calls this between stable_dt and the tail clamp, so a
  /// clamped macro step shrinks every cluster's dt proportionally (still
  /// stable: clamping only decreases dt).
  virtual double plan_step(double stable) const { return stable; }
  /// Advances by one step of size dt. Throws std::runtime_error if the
  /// solution leaves the finite range (blow-up detection). Observer hooks
  /// do NOT fire for direct step() calls — run_until owns the loop.
  virtual void step(double dt) = 0;

  // ---- Clustered local time stepping ----------------------------------

  /// Switches the stepper to clustered LTS. `cluster_of_cell[c]` is the
  /// rate cluster (0 = finest) of cell c in THIS solver's grid indexing —
  /// owned cells first, then halo slots, exactly grid().num_cells() +
  /// grid().num_halo_cells() entries. Cluster k steps with dt_k =
  /// dt_fine * 2^k; face neighbours must be at most one cluster apart
  /// (the caller normalizes the binning). Steppers without LTS support
  /// throw; ShardedSolver accepts GLOBAL cell indexing and maps it onto
  /// each local shard. num_clusters == 1 must reproduce global stepping
  /// bitwise.
  virtual void enable_lts(const std::vector<int>& cluster_of_cell,
                          int num_clusters);
  /// Rate clusters the stepper advances (1 = global stepping).
  virtual int lts_num_clusters() const { return 1; }
  /// Per-cluster telemetry for the metrics stream, the end-of-run summary
  /// and the measured-cost balance table. Empty when LTS is off. For the
  /// sharded composite: aggregated over local shards.
  struct LtsClusterStats {
    int cells = 0;                ///< owned cells assigned to the cluster
    long long cell_substeps = 0;  ///< cell-substeps executed so far
    long long ns = 0;             ///< measured wall ns in cluster sweeps
  };
  virtual std::vector<LtsClusterStats> lts_cluster_stats() const {
    return {};
  }

  // ---- Domain-decomposition stepping protocol -------------------------
  // A step decomposes into num_step_phases() ordered phases. Before phase
  // p, step_phase_halo(p) names the DOF array whose one-cell halo ring
  // must hold the face-adjacent neighbours' tensors (nullptr = the phase
  // reads no neighbour data). Each phase further splits into begin/end
  // exchange hooks so the halo transfer can overlap compute
  // (exchange_backend.h):
  //
  //   backend.post(halo field)      start moving the halo bytes
  //   step_phase_interior(p, dt)    cells that read no halo data
  //   backend.wait()                halo slots valid from here
  //   step_phase_boundary(p, dt)    halo-adjacent cells + phase tail
  //
  // step_phase(p, dt) must equal interior + boundary run back to back,
  // and calling phases 0..P-1 in order must equal one step(dt) — the
  // monolithic path (a whole-domain Grid has no halo slots, so its
  // boundary set is empty and interior covers every cell). While an
  // exchange is in flight, step_phase_interior must neither write the
  // exchanged field's owned cells nor read its halo slots. Solvers that
  // want to run sharded allocate their exchanged arrays over
  // grid().num_cells() + grid().num_halo_cells() cells.

  /// Phases per step: 2 for ADER (predict | correct+advance), 4 for RK4
  /// (one per stage), 1 for steppers without a sharded decomposition.
  virtual int num_step_phases() const { return 1; }
  /// Runs one phase of a step of size dt; calling phases 0..P-1 in order
  /// is exactly one step(dt). Default: single-phase, forwards to step().
  virtual void step_phase(int phase, double dt);
  /// Begin-exchange hook: the part of a phase that reads no halo data and
  /// can therefore run while the exchange is in flight. Default: no-op —
  /// a stepper that does not override the split runs its whole phase
  /// after wait() (no overlap, but never a halo read mid-flight).
  virtual void step_phase_interior(int phase, double dt);
  /// End-exchange hook: the halo-adjacent remainder, run after the
  /// exchange completed. Default: the whole phase.
  virtual void step_phase_boundary(int phase, double dt);
  /// Base of the array whose halo must be refreshed before `phase`, or
  /// nullptr when that phase reads no neighbour tensors.
  virtual double* step_phase_halo(int phase);

  /// One halo field a phase reads, with the exchange channel that
  /// namespaces its transfer (solver/exchange_backend.h). Channels: 0 =
  /// the primary field (qavg / stage state), 1 = qavg_half, 2 = qavg_sum
  /// (the LTS corrector's extra buffers).
  struct PhaseHaloField {
    double* data = nullptr;
    int channel = 0;
  };
  /// All halo fields `phase` reads (empty = no neighbour data). The
  /// multi-field generalization of step_phase_halo for phases that read
  /// several arrays — the LTS corrector needs qavg, qavg_half and
  /// qavg_sum refreshed together. Default: wraps step_phase_halo as a
  /// single channel-0 field, so existing steppers keep their protocol
  /// (and their MPI tags) unchanged.
  virtual std::vector<PhaseHaloField> step_phase_halo_fields(int phase);

  /// Mesh shards behind this solver: 1 for monolithic solvers, the
  /// partition size for ShardedSolver. shard(s) exposes the per-shard
  /// sub-solver (whose grid() is the shard's partitioned view) so writers
  /// can emit per-shard pieces.
  virtual int num_shards() const { return 1; }
  virtual const SolverBase& shard(int s) const;

  /// Process topology of the run: local runs are rank 0 of 1. Under the
  /// MPI exchange backend every rank drives one shard of the same
  /// decomposition; shard_is_local(s) says whether shard s's sub-solver
  /// (and its cells' DOF storage) is materialized in this process —
  /// rank-aware writers emit only local pieces, and rank 0 merges the
  /// rest (io/vtk_series.h, io/receiver_sinks.h).
  virtual int rank() const { return 0; }
  virtual int num_ranks() const { return 1; }
  virtual bool shard_is_local(int /*s*/) const { return true; }
  /// Runs until t_end (last step shortened to land exactly), returns the
  /// number of steps taken this call. Implemented once here over the
  /// virtual stable_dt()/step(), so every stepper drives the observer
  /// hooks identically: on_start before the first observed step, on_step
  /// after each step, on_finish on return (see io/observer.h).
  int run_until(double t_end, double cfl = 0.4);

  /// Attaches a read-only observer to the time loop (io/observer.h).
  /// Non-owning: the caller (typically the Simulation façade) keeps the
  /// observer alive for the solver's remaining use. Observers fire in
  /// attachment order; attaching any number of them never changes the
  /// field state — they only see const SolverBase&.
  void add_observer(Observer* observer);
  void clear_observers() { observers_.clear(); }
  /// Cumulative steps taken by run_until (the step index observers see).
  int steps_taken() const { return steps_taken_; }

  /// Read-only view of a cell's padded AoS DOFs.
  virtual const double* cell_dofs(int cell) const = 0;
  /// Physical position of a quadrature node of a cell.
  virtual std::array<double, 3> node_position(int cell, int k1, int k2,
                                              int k3) const = 0;

  /// Samples quantity s at the physical point x by evaluating the nodal
  /// expansion of the containing cell (receiver extraction for seismograms).
  /// Implemented once here on top of the virtual accessors.
  double sample(const std::array<double, 3>& x, int quantity) const;

 protected:
  /// A point source located on the mesh and projected onto the nodal basis
  /// of its cell.
  struct PreparedSource {
    int cell = -1;
    MeshPointSource source;
    AlignedVector psi;
  };

  /// Shared add_point_source body for steppers that support sources:
  /// validates the wavelet and quantity (`vars` = evolved-quantity count),
  /// locates the cell and projects the delta onto its basis.
  void prepare_point_source(const MeshPointSource& source, int vars);

  std::vector<PreparedSource> sources_;
  /// The thread team the subclass hot loops run on (1 thread by default).
  ParallelFor par_;

 private:
  /// An attached observer plus whether its on_start already fired, so
  /// observers attached between run_until calls still get a start hook.
  struct AttachedObserver {
    Observer* observer = nullptr;
    bool started = false;
  };
  std::vector<AttachedObserver> observers_;
  int steps_taken_ = 0;
};

}  // namespace exastp
