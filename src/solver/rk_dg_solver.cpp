#include "exastp/solver/rk_dg_solver.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"

namespace exastp {

RkDgSolver::RkDgSolver(std::shared_ptr<const PdeRuntime> pde, int order,
                       Isa isa, const GridSpec& grid_spec, NodeFamily family)
    : pde_(std::move(pde)),
      grid_(grid_spec),
      basis_(basis_tables(order, family)),
      isa_(isa),
      layout_(order, pde_->info().quants, isa),
      face_layout_(layout_),
      cell_size_(layout_.size()),
      vars_(pde_->info().vars) {
  const std::size_t total =
      static_cast<std::size_t>(grid_.num_cells()) * cell_size_;
  q_.assign(total, 0.0);
  stage_.assign(total, 0.0);
  rhs_.assign(total, 0.0);
  accum_.assign(total, 0.0);
  flux_.assign(cell_size_, 0.0);
  gradq_.assign(cell_size_, 0.0);
  face_l_.assign(face_layout_.size(), 0.0);
  face_r_.assign(face_layout_.size(), 0.0);
  flux_l_.assign(face_layout_.size(), 0.0);
  flux_r_.assign(face_layout_.size(), 0.0);
  fstar_.assign(face_layout_.size(), 0.0);
}

void RkDgSolver::set_initial_condition(
    const std::function<void(const std::array<double, 3>&, double*)>& init) {
  const int n = layout_.n;
  std::vector<double> node(layout_.m);
  for (int c = 0; c < grid_.num_cells(); ++c) {
    double* cell = q_.data() + static_cast<std::size_t>(c) * cell_size_;
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          init(node_position(c, k1, k2, k3), node.data());
          double* dst = cell + layout_.idx(k3, k2, k1, 0);
          std::memcpy(dst, node.data(), layout_.m * sizeof(double));
          for (int s = layout_.m; s < layout_.m_pad; ++s) dst[s] = 0.0;
        }
  }
  time_ = 0.0;
}

std::array<double, 3> RkDgSolver::node_position(int cell, int k1, int k2,
                                                int k3) const {
  const auto o = grid_.cell_origin(cell);
  return {o[0] + grid_.dx(0) * basis_.nodes[k1],
          o[1] + grid_.dx(1) * basis_.nodes[k2],
          o[2] + grid_.dx(2) * basis_.nodes[k3]};
}

double RkDgSolver::stable_dt(double cfl) const {
  const int n = layout_.n;
  double smax = 1e-300;
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  for (int c = 0; c < grid_.num_cells(); ++c) {
    const double* cell = cell_dofs(c);
    for (std::size_t k = 0; k < nodes; ++k)
      for (int d = 0; d < 3; ++d)
        smax = std::max(smax,
                        pde_->max_wave_speed(cell + k * layout_.m_pad, d));
  }
  const double hmin = std::min({grid_.dx(0), grid_.dx(1), grid_.dx(2)});
  return cfl * hmin / (smax * (2.0 * n - 1.0) * 3.0);
}

void RkDgSolver::evaluate_operator(const AlignedVector& state,
                                   AlignedVector& rhs) {
  ++operator_evals_;
  const int n = layout_.n;
  const int mp = layout_.m_pad;
  const auto inv_dx = grid_.inv_dx();
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  std::vector<double> ncp_tmp(layout_.m);
  std::vector<double> ghost_node(layout_.m);
  FlopCounter& fc = FlopCounter::instance();

  std::memset(rhs.data(), 0, rhs.size() * sizeof(double));

  // Volume terms, cell by cell.
  for (int c = 0; c < grid_.num_cells(); ++c) {
    const double* qc =
        state.data() + static_cast<std::size_t>(c) * cell_size_;
    double* rc = rhs.data() + static_cast<std::size_t>(c) * cell_size_;
    for (int d = 0; d < 3; ++d) {
      for (std::size_t k = 0; k < nodes; ++k)
        pde_->flux(qc + k * mp, d, flux_.data() + k * mp);
      fc.add(WidthClass::kScalar, nodes * pde_->flux_flops());
      aos_derivative(isa_, layout_, basis_.diff.data(), inv_dx[d], d,
                     flux_.data(), rc, /*accumulate=*/true);
      aos_derivative(isa_, layout_, basis_.diff.data(), inv_dx[d], d, qc,
                     gradq_.data(), /*accumulate=*/false);
      for (std::size_t k = 0; k < nodes; ++k) {
        pde_->ncp(qc + k * mp, gradq_.data() + k * mp, d, ncp_tmp.data());
        for (int s = 0; s < layout_.m; ++s) rc[k * mp + s] += ncp_tmp[s];
      }
      fc.add(WidthClass::kScalar,
             nodes * (pde_->ncp_flops() + layout_.m));
    }
  }

  // Surface terms: each interior face once, from its lower-side owner.
  auto make_ghost = [&](const double* inner, double* ghost,
                        BoundaryKind kind, int dir) {
    if (kind == BoundaryKind::kWall) {
      pde_->wall_reflect(inner, dir, ghost_node.data());
      std::memcpy(ghost, ghost_node.data(), layout_.m * sizeof(double));
    } else {
      for (int s = 0; s < vars_; ++s) ghost[s] = 0.0;
      for (int s = vars_; s < layout_.m; ++s) ghost[s] = inner[s];
    }
    for (int s = layout_.m; s < layout_.m_pad; ++s) ghost[s] = 0.0;
  };

  for (int dir = 0; dir < 3; ++dir) {
    for (int c = 0; c < grid_.num_cells(); ++c) {
      const double* ql =
          state.data() + static_cast<std::size_t>(c) * cell_size_;
      project_to_face(layout_, basis_, ql, dir, 1, face_l_.data());
      const NeighborRef nb = grid_.neighbor(c, dir, 1);
      if (!nb.boundary) {
        const double* qr =
            state.data() + static_cast<std::size_t>(nb.cell) * cell_size_;
        project_to_face(layout_, basis_, qr, dir, 0, face_r_.data());
      } else {
        const int nn = n * n;
        for (int k = 0; k < nn; ++k)
          make_ghost(face_l_.data() + static_cast<std::size_t>(k) * mp,
                     face_r_.data() + static_cast<std::size_t>(k) * mp,
                     nb.kind, dir);
      }
      face_normal_flux(*pde_, face_layout_, face_l_.data(), dir,
                       flux_l_.data());
      face_normal_flux(*pde_, face_layout_, face_r_.data(), dir,
                       flux_r_.data());
      rusanov_flux(*pde_, face_layout_, face_l_.data(), face_r_.data(),
                   flux_l_.data(), flux_r_.data(), dir, fstar_.data());
      double* rl = rhs.data() + static_cast<std::size_t>(c) * cell_size_;
      apply_face_correction(layout_, basis_, dir, 1, inv_dx[dir],
                            fstar_.data(), flux_l_.data(), rl);
      if (!nb.boundary) {
        double* rr =
            rhs.data() + static_cast<std::size_t>(nb.cell) * cell_size_;
        apply_face_correction(layout_, basis_, dir, 0, inv_dx[dir],
                              fstar_.data(), flux_r_.data(), rr);
      }
      const NeighborRef lower = grid_.neighbor(c, dir, 0);
      if (lower.boundary) {
        project_to_face(layout_, basis_, ql, dir, 0, face_r_.data());
        const int nn = n * n;
        for (int k = 0; k < nn; ++k)
          make_ghost(face_r_.data() + static_cast<std::size_t>(k) * mp,
                     face_l_.data() + static_cast<std::size_t>(k) * mp,
                     lower.kind, dir);
        face_normal_flux(*pde_, face_layout_, face_r_.data(), dir,
                         flux_r_.data());
        face_normal_flux(*pde_, face_layout_, face_l_.data(), dir,
                         flux_l_.data());
        rusanov_flux(*pde_, face_layout_, face_l_.data(), face_r_.data(),
                     flux_l_.data(), flux_r_.data(), dir, fstar_.data());
        apply_face_correction(layout_, basis_, dir, 0, inv_dx[dir],
                              fstar_.data(), flux_r_.data(), rl);
      }
    }
  }
}

void RkDgSolver::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("RkDgSolver: dt must be > 0");
  const long total = static_cast<long>(q_.size());

  // Classical RK4: q += dt/6 (k1 + 2 k2 + 2 k3 + k4).
  evaluate_operator(q_, rhs_);                       // k1
  vec_copy(total, rhs_.data(), accum_.data());
  vec_copy(total, q_.data(), stage_.data());
  vec_axpy(isa_, total, 0.5 * dt, rhs_.data(), stage_.data());

  evaluate_operator(stage_, rhs_);                   // k2
  vec_axpy(isa_, total, 2.0, rhs_.data(), accum_.data());
  vec_copy(total, q_.data(), stage_.data());
  vec_axpy(isa_, total, 0.5 * dt, rhs_.data(), stage_.data());

  evaluate_operator(stage_, rhs_);                   // k3
  vec_axpy(isa_, total, 2.0, rhs_.data(), accum_.data());
  vec_copy(total, q_.data(), stage_.data());
  vec_axpy(isa_, total, dt, rhs_.data(), stage_.data());

  evaluate_operator(stage_, rhs_);                   // k4
  vec_add(isa_, total, rhs_.data(), accum_.data());

  vec_axpy(isa_, total, dt / 6.0, accum_.data(), q_.data());
  time_ += dt;

  for (double v : q_) {
    if (!std::isfinite(v))
      throw std::runtime_error("RkDgSolver: solution became non-finite");
  }
}

int RkDgSolver::run_until(double t_end, double cfl) {
  int steps = 0;
  while (time_ < t_end - 1e-14) {
    double dt = stable_dt(cfl);
    if (time_ + dt > t_end) dt = t_end - time_;
    step(dt);
    ++steps;
  }
  return steps;
}

}  // namespace exastp
