#include "exastp/solver/rk_dg_solver.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "exastp/gemm/vecops.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/mesh/partition.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {
namespace {

/// Chunk granularity (doubles) of the element-wise RK sweeps: one cache
/// line / AVX-512 register, so every chunk start stays 64-byte aligned and
/// the vector/remainder split of each element is independent of the
/// partition — chunked sweeps are bitwise-identical to serial ones.
constexpr long kVecGranularity =
    static_cast<long>(kAlignment / sizeof(double));

}  // namespace

RkDgSolver::RkDgSolver(std::shared_ptr<const PdeRuntime> pde, int order,
                       Isa isa, const GridSpec& grid_spec, NodeFamily family)
    : RkDgSolver(std::move(pde), order, isa, Grid(grid_spec), family) {}

RkDgSolver::RkDgSolver(std::shared_ptr<const PdeRuntime> pde, int order,
                       Isa isa, const Grid& grid, NodeFamily family)
    : pde_(std::move(pde)),
      grid_(grid),
      basis_(basis_tables(order, family)),
      isa_(isa),
      layout_(order, pde_->info().quants, isa),
      face_layout_(layout_),
      cell_size_(layout_.size()),
      vars_(pde_->info().vars) {
  // Halo slots extend every buffer uniformly; only q/stage halos are ever
  // filled (step_phase_halo), and the element-wise RK sweeps stay on the
  // owned range.
  const std::size_t total =
      static_cast<std::size_t>(grid_.num_cells() + grid_.num_halo_cells()) *
      cell_size_;
  q_.assign(total, 0.0);
  stage_.assign(total, 0.0);
  rhs_.assign(total, 0.0);
  accum_.assign(total, 0.0);
  CellClassification cells = classify_cells(grid_);
  interior_cells_ = std::move(cells.interior);
  boundary_cells_ = std::move(cells.boundary);
  rebuild_scratch();
}

void RkDgSolver::set_thread_team(const ParallelFor& team) {
  SolverBase::set_thread_team(team);
  rebuild_scratch();
}

void RkDgSolver::rebuild_scratch() {
  scratch_.clear();
  scratch_.reserve(static_cast<std::size_t>(num_threads()));
  for (int tid = 0; tid < num_threads(); ++tid) {
    ThreadScratch ts;
    ts.flux.assign(cell_size_, 0.0);
    ts.gradq.assign(cell_size_, 0.0);
    ts.faces.resize(face_layout_);
    ts.ncp_tmp.resize(static_cast<std::size_t>(layout_.m));
    scratch_.push_back(std::move(ts));
  }
}

void RkDgSolver::set_initial_condition(
    const std::function<void(const std::array<double, 3>&, double*)>& init) {
  const int n = layout_.n;
  std::vector<double> node(layout_.m);
  for (int c = 0; c < grid_.num_cells(); ++c) {
    double* cell = q_.data() + static_cast<std::size_t>(c) * cell_size_;
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          init(node_position(c, k1, k2, k3), node.data());
          double* dst = cell + layout_.idx(k3, k2, k1, 0);
          std::memcpy(dst, node.data(), layout_.m * sizeof(double));
          for (int s = layout_.m; s < layout_.m_pad; ++s) dst[s] = 0.0;
        }
  }
  time_ = 0.0;
}

void RkDgSolver::add_point_source(const MeshPointSource& source) {
  prepare_point_source(source, vars_);
}

std::array<double, 3> RkDgSolver::node_position(int cell, int k1, int k2,
                                                int k3) const {
  const auto o = grid_.cell_origin(cell);
  return {o[0] + grid_.dx(0) * basis_.nodes[k1],
          o[1] + grid_.dx(1) * basis_.nodes[k2],
          o[2] + grid_.dx(2) * basis_.nodes[k3]};
}

double RkDgSolver::stable_dt(double cfl) const {
  const int n = layout_.n;
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  // Per-chunk maxima: max commutes exactly, so the result stays bitwise-
  // independent of the thread count even though chunk bounds are not.
  std::vector<double> partials(static_cast<std::size_t>(par_.num_threads()),
                               0.0);
  par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
    double chunk_max = 0.0;
    for (long c = begin; c < end; ++c) {
      const double* cell = cell_dofs(static_cast<int>(c));
      for (std::size_t k = 0; k < nodes; ++k)
        for (int d = 0; d < 3; ++d)
          chunk_max = std::max(
              chunk_max, pde_->max_wave_speed(cell + k * layout_.m_pad, d));
    }
    partials[static_cast<std::size_t>(tid)] = chunk_max;
  });
  double smax = 1e-300;
  for (double s : partials) smax = std::max(smax, s);
  const double hmin = std::min({grid_.dx(0), grid_.dx(1), grid_.dx(2)});
  return cfl * hmin / (smax * (2.0 * n - 1.0) * 3.0);
}

void RkDgSolver::operator_cell(ThreadScratch& ts, const AlignedVector& state,
                               double t, int c, AlignedVector& rhs) {
  const int n = layout_.n;
  const int mp = layout_.m_pad;
  const auto inv_dx = grid_.inv_dx();
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  FlopCounter& fc = FlopCounter::instance();

  const double* qc = state.data() + static_cast<std::size_t>(c) * cell_size_;
  double* rc = rhs.data() + static_cast<std::size_t>(c) * cell_size_;
  std::memset(rc, 0, cell_size_ * sizeof(double));

  // Volume terms.
  for (int d = 0; d < 3; ++d) {
    for (std::size_t k = 0; k < nodes; ++k)
      pde_->flux(qc + k * mp, d, ts.flux.data() + k * mp);
    fc.add(WidthClass::kScalar, nodes * pde_->flux_flops());
    aos_derivative(isa_, layout_, basis_.diff.data(), inv_dx[d], d,
                   ts.flux.data(), rc, /*accumulate=*/true);
    aos_derivative(isa_, layout_, basis_.diff.data(), inv_dx[d], d, qc,
                   ts.gradq.data(), /*accumulate=*/false);
    for (std::size_t k = 0; k < nodes; ++k) {
      pde_->ncp(qc + k * mp, ts.gradq.data() + k * mp, d, ts.ncp_tmp.data());
      for (int s = 0; s < layout_.m; ++s) rc[k * mp + s] += ts.ncp_tmp[s];
    }
    fc.add(WidthClass::kScalar, nodes * (pde_->ncp_flops() + layout_.m));
  }

  // Surface terms: the lift from this cell's own six faces (apply_own_face
  // recomputes interior Riemann solves per side — identical bits, so the
  // cell-parallel traversal needs no face ownership).
  const auto state_of = [&state, this](int cell) -> const double* {
    return state.data() + static_cast<std::size_t>(cell) * cell_size_;
  };
  for (int dir = 0; dir < 3; ++dir)
    for (int side = 0; side < 2; ++side)
      apply_own_face(*pde_, grid_, layout_, basis_, vars_, c, dir, side,
                     inv_dx[dir], state_of, ts.faces, rc);

  // Point-source injection at the stage time.
  for (const auto& prepared : sources_) {
    if (prepared.cell != c) continue;
    const double s = prepared.source.wavelet->derivative(t, 0);
    const int quantity = prepared.source.quantity;
    for (std::size_t k = 0; k < nodes; ++k)
      rc[k * mp + quantity] += prepared.psi[k] * s;
    fc.add(WidthClass::kScalar, 2 * nodes);
  }
}

void RkDgSolver::evaluate_operator(const AlignedVector& state, double t,
                                   AlignedVector& rhs,
                                   const std::vector<int>& cells) {
  // One fused cell-parallel traversal over a classification set: volume
  // terms, own-face surface corrections and source injection all write
  // only the listed cell's rhs slice, so the interior/boundary split
  // never changes any cell's bits.
  par_.run(static_cast<long>(cells.size()), 1,
           [&](int tid, long begin, long end) {
             ThreadScratch& ts = scratch_[static_cast<std::size_t>(tid)];
             for (long i = begin; i < end; ++i)
               operator_cell(ts, state, t, cells[static_cast<std::size_t>(i)],
                             rhs);
           });
}

void RkDgSolver::step(double dt) {
  for (int phase = 0; phase < num_step_phases(); ++phase)
    step_phase(phase, dt);
}

void RkDgSolver::step_phase(int phase, double dt) {
  step_phase_interior(phase, dt);
  step_phase_boundary(phase, dt);
}

void RkDgSolver::step_phase_interior(int phase, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("RkDgSolver: dt must be > 0");
  EXASTP_CHECK(phase >= 0 && phase < 4);
  // The stage operator over the interior set: these cells read no halo
  // tensors of the stage's input state, so the sweep runs while the
  // exchange is in flight. The input state itself is only read, never
  // written, until step_phase_boundary's element-wise sweeps.
  ScopedSpan span(SpanId::kRkStageInterior, /*arg=*/phase);
  ++operator_evals_;
  evaluate_operator(stage_state(phase), stage_time(phase, dt), rhs_,
                    interior_cells_);
}

void RkDgSolver::step_phase_boundary(int phase, double dt) {
  EXASTP_CHECK(phase >= 0 && phase < 4);
  ScopedSpan span(SpanId::kRkStageBoundary, /*arg=*/phase);
  // Boundary remainder of the stage operator, after the halo completed.
  evaluate_operator(stage_state(phase), stage_time(phase, dt), rhs_,
                    boundary_cells_);

  // Owned cells only: halo slots are refreshed by exchange, never swept.
  const long total =
      static_cast<long>(grid_.num_cells()) * static_cast<long>(cell_size_);

  // Element-wise stage sweeps, chunked at cache-line granularity so the
  // partition never changes any element's bits (see kVecGranularity).
  auto par_copy = [&](const AlignedVector& x, AlignedVector& y) {
    par_.run(total, kVecGranularity, [&](int, long b, long e) {
      vec_copy(e - b, x.data() + b, y.data() + b);
    });
  };
  auto par_axpy = [&](double a, const AlignedVector& x, AlignedVector& y) {
    par_.run(total, kVecGranularity, [&](int, long b, long e) {
      vec_axpy(isa_, e - b, a, x.data() + b, y.data() + b);
    });
  };
  auto par_add = [&](const AlignedVector& x, AlignedVector& y) {
    par_.run(total, kVecGranularity, [&](int, long b, long e) {
      vec_add(isa_, e - b, x.data() + b, y.data() + b);
    });
  };

  // Classical RK4: q += dt/6 (k1 + 2 k2 + 2 k3 + k4), with the stage
  // operator evaluated at t_n, t_n + dt/2 (twice) and t_n + dt. Each phase
  // starts after its input state's halo is valid (q for k1, the stage
  // buffer afterwards; the monolithic grid has no halo to wait for).
  switch (phase) {
    case 0:
      par_copy(rhs_, accum_);                             // k1
      par_copy(q_, stage_);
      par_axpy(0.5 * dt, rhs_, stage_);
      break;
    case 1:
      par_axpy(2.0, rhs_, accum_);                        // k2
      par_copy(q_, stage_);
      par_axpy(0.5 * dt, rhs_, stage_);
      break;
    case 2:
      par_axpy(2.0, rhs_, accum_);                        // k3
      par_copy(q_, stage_);
      par_axpy(dt, rhs_, stage_);
      break;
    default:
      par_add(rhs_, accum_);                              // k4
      par_axpy(dt / 6.0, accum_, q_);
      time_ += dt;
      check_finite();
      break;
  }
}

void RkDgSolver::check_finite() const {
  // Per-chunk verdicts with early exit; "any non-finite" commutes, so the
  // outcome is thread-count-independent.
  std::vector<char> bad(static_cast<std::size_t>(par_.num_threads()), 0);
  par_.run(grid_.num_cells(), 1, [&](int tid, long begin, long end) {
    for (long c = begin; c < end; ++c) {
      const double* cell = cell_dofs(static_cast<int>(c));
      for (std::size_t i = 0; i < cell_size_; ++i) {
        if (!std::isfinite(cell[i])) {
          bad[static_cast<std::size_t>(tid)] = 1;
          return;
        }
      }
    }
  });
  for (char b : bad) {
    if (b != 0)
      throw std::runtime_error("RkDgSolver: solution became non-finite");
  }
}

}  // namespace exastp
