#include "exastp/solver/sharded_solver.h"

#include <algorithm>
#include <utility>

#include "exastp/common/check.h"
#include "exastp/common/mpi_runtime.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

ShardedSolver::ShardedSolver(
    Partition partition,
    const std::function<std::unique_ptr<SolverBase>(const Grid&)>& make_shard,
    const std::string& backend, const std::string& schedule)
    : partition_(std::move(partition)),
      global_grid_(partition_.global_spec()),
      distributed_(backend == "mpi"),
      rank_(distributed_ ? MpiRuntime::rank() : 0),
      schedule_(schedule) {
  EXASTP_CHECK_MSG(make_shard != nullptr, "sharded solver needs a factory");
  EXASTP_CHECK_MSG(schedule_ == "deps" || schedule_ == "lockstep",
                   "schedule= must be deps or lockstep, got " + schedule_);
  if (distributed_) {
    EXASTP_CHECK_MSG(MpiRuntime::initialized(),
                     "backend=mpi needs an MPI launch (mpirun); exastp_run "
                     "initializes MPI when built with -DEXASTP_WITH_MPI=ON");
    // A partition without an explicit rank map (every shard on rank 0)
    // auto-groups one rank block per MPI rank; assign_ranks fails with a
    // clear message when the launch provides more ranks than shards. An
    // explicit map must match the launch exactly.
    if (partition_.num_ranks() == 1 && MpiRuntime::size() > 1)
      partition_.assign_ranks(MpiRuntime::size());
    EXASTP_CHECK_MSG(
        partition_.num_ranks() == MpiRuntime::size(),
        "backend=mpi: the partition groups its " +
            std::to_string(partition_.num_shards()) + " shard(s) onto " +
            std::to_string(partition_.num_ranks()) +
            " rank(s) but the launch provides " +
            std::to_string(MpiRuntime::size()) + " — launch with mpirun -np " +
            std::to_string(partition_.num_ranks()) +
            " or regroup with shards_per_rank=");
  }

  shards_.resize(static_cast<std::size_t>(partition_.num_shards()));
  primary_ = -1;
  for (int s = 0; s < partition_.num_shards(); ++s) {
    if (!shard_is_local(s)) continue;
    if (primary_ < 0) primary_ = s;
    std::unique_ptr<SolverBase> shard =
        make_shard(partition_.subdomain(s).grid);
    EXASTP_CHECK_MSG(shard != nullptr, "shard factory returned null");
    shards_[static_cast<std::size_t>(s)] = std::move(shard);
  }
  EXASTP_CHECK_MSG(primary_ >= 0, "no shard is resident on this rank");
  const int phases = primary().num_step_phases();
  for (const auto& shard : shards_) {
    if (shard == nullptr) continue;
    EXASTP_CHECK_MSG(shard->layout().size() == primary().layout().size() &&
                         shard->stepper_name() == primary().stepper_name() &&
                         shard->num_step_phases() == phases,
                     "all shards must share layout and stepper");
  }
  exchange_ =
      make_exchange_backend(backend, partition_, primary().layout().size());
}

int ShardedSolver::num_ranks() const {
  return distributed_ ? partition_.num_ranks() : 1;
}

void ShardedSolver::set_exchange_backend(
    std::unique_ptr<ExchangeBackend> backend) {
  EXASTP_CHECK_MSG(backend != nullptr, "exchange backend must not be null");
  exchange_ = std::move(backend);
}

void ShardedSolver::set_initial_condition(const InitialCondition& init) {
  // Each local shard evaluates the condition at its own nodes; the views
  // compute node positions in global coordinates, so the assembled field
  // is bitwise-identical to the monolithic initialization.
  for (auto& shard : shards_)
    if (shard != nullptr) shard->set_initial_condition(init);
}

void ShardedSolver::add_point_source(const MeshPointSource& source) {
  const int owner = partition_.owner_of(global_grid_.locate(source.position));
  if (!shard_is_local(owner)) return;  // the owning rank adds it
  shards_[static_cast<std::size_t>(owner)]->add_point_source(source);
}

void ShardedSolver::set_thread_team(const ParallelFor& team) {
  SolverBase::set_thread_team(team);  // the engine-facing team (norms &c.)
  // ParallelFor copies share one pool, so every shard reuses this team
  // instead of spawning shards x threads idle workers.
  for (auto& shard : shards_)
    if (shard != nullptr) shard->set_thread_team(team);
}

double ShardedSolver::stable_dt(double cfl) const {
  double dt = 0.0;
  bool first = true;
  for (const auto& shard : shards_) {
    if (shard == nullptr) continue;
    const double shard_dt = shard->stable_dt(cfl);
    dt = first ? shard_dt : std::min(dt, shard_dt);
    first = false;
  }
  // Exact min across ranks: every rank computes the identical dt, keeping
  // the distributed time loop in lockstep (a no-op for local runs).
  if (distributed_) dt = MpiRuntime::min_across_ranks(dt);
  return dt;
}

std::vector<ExchangeField> ShardedSolver::phase_exchange_fields(
    int phase) const {
  // Collect every local shard's halo fields for the phase. All shards run
  // the same stepper over the same configuration, so their field lists
  // must agree structurally (count and channels); the fields of one
  // channel assemble into one ExchangeField.
  std::vector<ExchangeField> exchange_fields;
  bool first_local = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    const std::vector<PhaseHaloField> shard_fields =
        shards_[s]->step_phase_halo_fields(phase);
    if (first_local) {
      exchange_fields.resize(shard_fields.size());
      for (std::size_t f = 0; f < shard_fields.size(); ++f) {
        exchange_fields[f].channel = shard_fields[f].channel;
        exchange_fields[f].shard_fields.assign(shards_.size(), nullptr);
      }
      first_local = false;
    } else {
      EXASTP_CHECK_MSG(shard_fields.size() == exchange_fields.size(),
                       "shards disagree on the phase's halo fields");
    }
    for (std::size_t f = 0; f < shard_fields.size(); ++f) {
      EXASTP_CHECK_MSG(
          shard_fields[f].channel == exchange_fields[f].channel,
          "shards disagree on the phase's halo channels");
      EXASTP_CHECK_MSG(shard_fields[f].data != nullptr,
                       "halo field without storage");
      exchange_fields[f].shard_fields[s] = shard_fields[f].data;
    }
  }
  return exchange_fields;
}

void ShardedSolver::step(double dt) {
  if (schedule_ == "deps" && exchange_->supports_scheduled())
    step_scheduled(dt);
  else
    step_lockstep(dt);
}

void ShardedSolver::step_lockstep(double dt) {
  const int phases = num_step_phases();
  for (int phase = 0; phase < phases; ++phase) {
    // Every channel flies inside a single posted exchange (the backends
    // allow only one in flight).
    const std::vector<ExchangeField> exchange_fields =
        phase_exchange_fields(phase);
    const bool exchanging = !exchange_fields.empty();

    // Split-phase schedule: the interior sweeps run while the halo bytes
    // are in flight; the boundary sweeps (which read halo slots) wait.
    if (exchanging) exchange_->post_fields(exchange_fields);
    {
      // Interior time spent while an exchange is in flight is the hidden
      // communication: aggregate it so overlap efficiency = hidden /
      // (hidden + exchange_wait). Per-shard spans land on the shard's
      // synthetic trace track and feed the imbalance statistic; the
      // per-phase breakdown uses only the stepper-level spans inside, so
      // nothing is double-counted.
      TelemetryRegistry* reg = TelemetryScope::current();
      const bool timing = reg != nullptr && reg->spans_enabled();
      const std::int64_t t0 = timing ? reg->now_ns() : 0;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s] == nullptr) continue;
        ScopedSpan span(SpanId::kShardInterior, /*arg=*/phase,
                        /*track=*/static_cast<int>(s));
        shards_[s]->step_phase_interior(phase, dt);
      }
      if (timing && exchanging)
        reg->add_duration(SpanId::kOverlapCompute, reg->now_ns() - t0);
    }
    if (exchanging) exchange_->wait();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s] == nullptr) continue;
      ScopedSpan span(SpanId::kShardBoundary, /*arg=*/phase,
                      /*track=*/static_cast<int>(s));
      shards_[s]->step_phase_boundary(phase, dt);
    }
  }
}

void ShardedSolver::step_scheduled(double dt) {
  const int phases = num_step_phases();
  // The whole step's exchange plan is known up front: a phase's halo
  // fields are a pure function of the phase (stable preallocated
  // pointers), so every phase's field list assembles before any sweep
  // runs and outlives the scheduled step.
  std::vector<std::vector<ExchangeField>> fields_by_phase(
      static_cast<std::size_t>(phases));
  for (int p = 0; p < phases; ++p)
    fields_by_phase[static_cast<std::size_t>(p)] = phase_exchange_fields(p);

  std::vector<int> local;
  for (int s = 0; s < num_shards(); ++s)
    if (shard_is_local(s)) local.push_back(s);

  // Per-shard progress: the next phase to run and whether its interior
  // sweep already ran. The per-shard order is interior -> (halos
  // delivered) -> boundary -> advance; when a shard completes a phase it
  // immediately opens the next phase for receiving and captures its
  // outgoing planes, so the next phase's traffic pipelines behind other
  // shards' compute.
  struct ShardProgress {
    int phase = 0;
    bool interior_done = false;
  };
  std::vector<ShardProgress> progress(local.size());

  exchange_->sched_begin_step(fields_by_phase);
  // Open before capture so intra-rank phase-0 planes deliver zero-copy
  // (a capture whose receiver is already open skips the staging buffer).
  for (const int s : local) exchange_->sched_open(s, 0);
  for (const int s : local) exchange_->sched_capture(s, 0);

  TelemetryRegistry* reg = TelemetryScope::current();
  const bool timing = reg != nullptr && reg->spans_enabled();
  std::int64_t tasks = 0;
  std::int64_t ready_depth_sum = 0;
  std::int64_t blocked_polls = 0;

  std::size_t remaining = local.size();
  while (remaining > 0) {
    // Progress in-flight deliveries without blocking, then pick a task.
    exchange_->sched_poll(/*block=*/false);

    // Boundary sweeps first (they retire phases and release the shard's
    // next captures — the scheduler's critical path), lowest phase then
    // lowest shard id for determinism; interior sweeps fill the rest.
    int ready = 0;
    int pick = -1;
    bool pick_boundary = false;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const ShardProgress& p = progress[i];
      if (p.phase >= phases) continue;
      if (!p.interior_done) {
        ++ready;
        if (pick < 0) pick = static_cast<int>(i);
      } else if (exchange_->sched_delivered(local[i], p.phase)) {
        ++ready;
        if (!pick_boundary ||
            p.phase < progress[static_cast<std::size_t>(pick)].phase) {
          pick = static_cast<int>(i);
          pick_boundary = true;
        }
      }
    }

    if (pick < 0) {
      // Every unfinished shard waits on halo arrivals: block in the
      // backend's progress engine. The span's arg is the number of
      // stalled shards — all of them, by construction of this branch.
      ++blocked_polls;
      ScopedSpan span(SpanId::kSchedWait,
                      /*arg=*/static_cast<std::int64_t>(remaining));
      exchange_->sched_poll(/*block=*/true);
      continue;
    }

    ++tasks;
    ready_depth_sum += ready;
    ShardProgress& p = progress[static_cast<std::size_t>(pick)];
    const int s = local[static_cast<std::size_t>(pick)];
    // Task time spent while arrivals are outstanding is communication
    // hidden behind compute — the same overlap accounting as lockstep's
    // interior-during-exchange window.
    const bool pending = exchange_->sched_any_pending();
    const std::int64_t t0 = timing ? reg->now_ns() : 0;
    if (!p.interior_done) {
      {
        ScopedSpan span(SpanId::kShardInterior, /*arg=*/p.phase,
                        /*track=*/s);
        shards_[static_cast<std::size_t>(s)]->step_phase_interior(p.phase,
                                                                  dt);
      }
      p.interior_done = true;
    } else {
      {
        ScopedSpan span(SpanId::kShardBoundary, /*arg=*/p.phase,
                        /*track=*/s);
        shards_[static_cast<std::size_t>(s)]->step_phase_boundary(p.phase,
                                                                  dt);
      }
      ++p.phase;
      p.interior_done = false;
      if (p.phase < phases) {
        // The shard finished reading the previous phase's halos and its
        // outgoing planes are final: receive window opens, sends fly.
        exchange_->sched_open(s, p.phase);
        exchange_->sched_capture(s, p.phase);
      } else {
        --remaining;
      }
    }
    if (timing && pending)
      reg->add_duration(SpanId::kOverlapCompute, reg->now_ns() - t0);
  }
  exchange_->sched_end_step();

  if (reg != nullptr) {
    reg->add_counter("sched_tasks", static_cast<double>(tasks));
    reg->add_counter("sched_ready_depth_sum",
                     static_cast<double>(ready_depth_sum));
    reg->add_counter("sched_blocked_polls",
                     static_cast<double>(blocked_polls));
  }
}

void ShardedSolver::enable_lts(const std::vector<int>& cluster_of_cell,
                               int num_clusters) {
  EXASTP_CHECK_MSG(static_cast<int>(cluster_of_cell.size()) ==
                       global_grid_.num_cells(),
                   "the sharded solver's lts cluster assignment is indexed "
                   "by global cells");
  for (int s = 0; s < num_shards(); ++s) {
    if (!shard_is_local(s)) continue;
    const Subdomain& sub = partition_.subdomain(s);
    const Grid& g = sub.grid;
    std::vector<int> local(
        static_cast<std::size_t>(g.num_cells() + g.num_halo_cells()), 0);
    for (int lc = 0; lc < g.num_cells(); ++lc)
      local[static_cast<std::size_t>(lc)] =
          cluster_of_cell[static_cast<std::size_t>(
              partition_.global_cell(s, lc))];
    // Halo slots: the plan names the source shard's local cells in slot
    // order, so each slot's cluster resolves through the same global map
    // the owning shard uses — no communication, no disagreement.
    for (const HaloPlan& plan : sub.halos) {
      for (std::size_t i = 0; i < plan.src_cells.size(); ++i)
        local[static_cast<std::size_t>(plan.dst_begin) + i] =
            cluster_of_cell[static_cast<std::size_t>(
                partition_.global_cell(plan.src_shard, plan.src_cells[i]))];
    }
    shards_[static_cast<std::size_t>(s)]->enable_lts(local, num_clusters);
  }
}

std::vector<SolverBase::LtsClusterStats> ShardedSolver::lts_cluster_stats()
    const {
  std::vector<LtsClusterStats> total;
  for (const auto& shard : shards_) {
    if (shard == nullptr) continue;
    const std::vector<LtsClusterStats> stats = shard->lts_cluster_stats();
    if (total.empty()) total.resize(stats.size());
    EXASTP_CHECK_MSG(stats.size() == total.size(),
                     "shards disagree on the lts cluster count");
    for (std::size_t k = 0; k < stats.size(); ++k) {
      total[k].cells += stats[k].cells;
      total[k].cell_substeps += stats[k].cell_substeps;
      total[k].ns += stats[k].ns;
    }
  }
  return total;
}

const double* ShardedSolver::cell_dofs(int cell) const {
  const int owner = partition_.owner_of(cell);
  EXASTP_CHECK_MSG(shard_is_local(owner),
                   "cell " + std::to_string(cell) + " is owned by shard " +
                       std::to_string(owner) + " on rank " +
                       std::to_string(partition_.rank_of(owner)) +
                       ", not resident on rank " + std::to_string(rank_));
  return shards_[static_cast<std::size_t>(owner)]->cell_dofs(
      partition_.local_cell(owner, cell));
}

std::array<double, 3> ShardedSolver::node_position(int cell, int k1, int k2,
                                                   int k3) const {
  const int owner = partition_.owner_of(cell);
  EXASTP_CHECK_MSG(shard_is_local(owner),
                   "cell " + std::to_string(cell) + " is owned by shard " +
                       std::to_string(owner) + " on rank " +
                       std::to_string(partition_.rank_of(owner)) +
                       ", not resident on rank " + std::to_string(rank_));
  return shards_[static_cast<std::size_t>(owner)]->node_position(
      partition_.local_cell(owner, cell), k1, k2, k3);
}

const SolverBase& ShardedSolver::shard(int s) const {
  EXASTP_CHECK(s >= 0 && s < num_shards());
  EXASTP_CHECK_MSG(shard_is_local(s),
                   "shard " + std::to_string(s) + " is not resident on rank " +
                       std::to_string(rank_));
  return *shards_[static_cast<std::size_t>(s)];
}

}  // namespace exastp
