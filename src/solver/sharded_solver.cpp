#include "exastp/solver/sharded_solver.h"

#include <algorithm>
#include <utility>

#include "exastp/common/check.h"

namespace exastp {

namespace {

std::vector<std::unique_ptr<SolverBase>> build_shards(
    const Partition& partition,
    const std::function<std::unique_ptr<SolverBase>(const Grid&)>&
        make_shard) {
  EXASTP_CHECK_MSG(make_shard != nullptr, "sharded solver needs a factory");
  std::vector<std::unique_ptr<SolverBase>> shards;
  shards.reserve(static_cast<std::size_t>(partition.num_shards()));
  for (int s = 0; s < partition.num_shards(); ++s) {
    std::unique_ptr<SolverBase> shard =
        make_shard(partition.subdomain(s).grid);
    EXASTP_CHECK_MSG(shard != nullptr, "shard factory returned null");
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace

ShardedSolver::ShardedSolver(
    Partition partition,
    const std::function<std::unique_ptr<SolverBase>(const Grid&)>& make_shard)
    : partition_(std::move(partition)),
      global_grid_(partition_.global_spec()),
      shards_(build_shards(partition_, make_shard)),
      exchange_(partition_, shards_[0]->layout().size()),
      phases_(shards_[0]->num_step_phases()) {
  for (const auto& shard : shards_) {
    EXASTP_CHECK_MSG(shard->layout().size() == shards_[0]->layout().size() &&
                         shard->stepper_name() == shards_[0]->stepper_name() &&
                         shard->num_step_phases() == phases_,
                     "all shards must share layout and stepper");
  }
}

void ShardedSolver::set_initial_condition(const InitialCondition& init) {
  // Each shard evaluates the condition at its own nodes; the views compute
  // node positions in global coordinates, so the assembled field is
  // bitwise-identical to the monolithic initialization.
  for (auto& shard : shards_) shard->set_initial_condition(init);
}

void ShardedSolver::add_point_source(const MeshPointSource& source) {
  const int owner = partition_.owner_of(global_grid_.locate(source.position));
  shards_[static_cast<std::size_t>(owner)]->add_point_source(source);
}

void ShardedSolver::set_thread_team(const ParallelFor& team) {
  SolverBase::set_thread_team(team);  // the engine-facing team (norms &c.)
  // ParallelFor copies share one pool, so every shard reuses this team
  // instead of spawning shards x threads idle workers.
  for (auto& shard : shards_) shard->set_thread_team(team);
}

double ShardedSolver::stable_dt(double cfl) const {
  double dt = shards_[0]->stable_dt(cfl);
  for (std::size_t s = 1; s < shards_.size(); ++s)
    dt = std::min(dt, shards_[s]->stable_dt(cfl));
  return dt;
}

void ShardedSolver::step(double dt) {
  std::vector<double*> fields(shards_.size(), nullptr);
  for (int phase = 0; phase < phases_; ++phase) {
    std::size_t wanting = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      fields[s] = shards_[s]->step_phase_halo(phase);
      if (fields[s] != nullptr) ++wanting;
    }
    EXASTP_CHECK_MSG(wanting == 0 || wanting == shards_.size(),
                     "shards disagree on the phase's halo field");
    if (wanting > 0) exchange_.exchange(fields);
    for (auto& shard : shards_) shard->step_phase(phase, dt);
  }
}

const double* ShardedSolver::cell_dofs(int cell) const {
  const int owner = partition_.owner_of(cell);
  return shards_[static_cast<std::size_t>(owner)]->cell_dofs(
      partition_.local_cell(owner, cell));
}

std::array<double, 3> ShardedSolver::node_position(int cell, int k1, int k2,
                                                   int k3) const {
  const int owner = partition_.owner_of(cell);
  return shards_[static_cast<std::size_t>(owner)]->node_position(
      partition_.local_cell(owner, cell), k1, k2, k3);
}

const SolverBase& ShardedSolver::shard(int s) const {
  EXASTP_CHECK(s >= 0 && s < num_shards());
  return *shards_[static_cast<std::size_t>(s)];
}

}  // namespace exastp
