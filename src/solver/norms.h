// Error norms against reference solutions, evaluated with the quadrature
// rule underlying the nodal basis (exact for the ansatz space).
//
// Template over the solver type: any class exposing grid(), basis(),
// layout(), time(), cell_dofs(), node_position() and parallel() qualifies —
// both AderDgSolver and the RK-DG baseline.
//
// All reductions run cell-parallel on the solver's thread team with the
// ordered-reduction pattern (one partial per cell, combined serially in
// cell order), so every norm is bitwise-independent of the thread count.
#pragma once

#include <cmath>
#include <functional>

#include "exastp/common/parallel.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

/// Squared L2 norm of (q_h - exact) for one quantity over the solver's
/// cells — the summable building block distributed runs reduce across
/// ranks (one partial per shard, added in rank order; see
/// Simulation::l2_error).
template <class Solver>
double l2_error_squared(const Solver& solver, int quantity,
                        const ExactSolution& exact) {
  const auto& basis = solver.basis();
  const auto& layout = solver.layout();
  const int n = layout.n;
  const double vol = solver.grid().cell_volume();
  const std::vector<double> partials = ordered_partials(
      solver.parallel(), solver.grid().num_cells(), [&](long c) {
        const double* qc = solver.cell_dofs(static_cast<int>(c));
        double cell_sum = 0.0;
        for (int k3 = 0; k3 < n; ++k3)
          for (int k2 = 0; k2 < n; ++k2)
            for (int k1 = 0; k1 < n; ++k1) {
              const double w = basis.weights[k1] * basis.weights[k2] *
                               basis.weights[k3] * vol;
              const double e =
                  qc[layout.idx(k3, k2, k1, quantity)] -
                  exact(solver.node_position(static_cast<int>(c), k1, k2, k3),
                        solver.time());
              cell_sum += w * e * e;
            }
        return cell_sum;
      });
  double sum = 0.0;
  for (double p : partials) sum += p;
  return sum;
}

/// L2 norm of (q_h - exact) for one quantity over the whole mesh.
template <class Solver>
double l2_error(const Solver& solver, int quantity,
                const ExactSolution& exact) {
  return std::sqrt(l2_error_squared(solver, quantity, exact));
}

/// Max norm of the nodal error for one quantity.
template <class Solver>
double linf_error(const Solver& solver, int quantity,
                  const ExactSolution& exact) {
  const auto& layout = solver.layout();
  const int n = layout.n;
  const std::vector<double> partials = ordered_partials(
      solver.parallel(), solver.grid().num_cells(), [&](long c) {
        const double* qc = solver.cell_dofs(static_cast<int>(c));
        double cell_worst = 0.0;
        for (int k3 = 0; k3 < n; ++k3)
          for (int k2 = 0; k2 < n; ++k2)
            for (int k1 = 0; k1 < n; ++k1) {
              const double e = std::abs(
                  qc[layout.idx(k3, k2, k1, quantity)] -
                  exact(solver.node_position(static_cast<int>(c), k1, k2, k3),
                        solver.time()));
              cell_worst = std::max(cell_worst, e);
            }
        return cell_worst;
      });
  double worst = 0.0;
  for (double p : partials) worst = std::max(worst, p);
  return worst;
}

/// Integral of one quantity over the domain (conservation checks).
template <class Solver>
double integral(const Solver& solver, int quantity) {
  const auto& basis = solver.basis();
  const auto& layout = solver.layout();
  const int n = layout.n;
  const double vol = solver.grid().cell_volume();
  const std::vector<double> partials = ordered_partials(
      solver.parallel(), solver.grid().num_cells(), [&](long c) {
        const double* qc = solver.cell_dofs(static_cast<int>(c));
        double cell_sum = 0.0;
        for (int k3 = 0; k3 < n; ++k3)
          for (int k2 = 0; k2 < n; ++k2)
            for (int k1 = 0; k1 < n; ++k1)
              cell_sum += basis.weights[k1] * basis.weights[k2] *
                          basis.weights[k3] * vol *
                          qc[layout.idx(k3, k2, k1, quantity)];
        return cell_sum;
      });
  double sum = 0.0;
  for (double p : partials) sum += p;
  return sum;
}

}  // namespace exastp
