// Error norms against reference solutions, evaluated with the quadrature
// rule underlying the nodal basis (exact for the ansatz space).
//
// Template over the solver type: any class exposing grid(), basis(),
// layout(), time(), cell_dofs() and node_position() qualifies — both
// AderDgSolver and the RK-DG baseline.
#pragma once

#include <cmath>
#include <functional>

#include "exastp/solver/solver_base.h"

namespace exastp {

/// L2 norm of (q_h - exact) for one quantity over the whole mesh.
template <class Solver>
double l2_error(const Solver& solver, int quantity,
                const ExactSolution& exact) {
  const auto& basis = solver.basis();
  const auto& layout = solver.layout();
  const int n = layout.n;
  const double vol = solver.grid().cell_volume();
  double sum = 0.0;
  for (int c = 0; c < solver.grid().num_cells(); ++c) {
    const double* qc = solver.cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          const double w = basis.weights[k1] * basis.weights[k2] *
                           basis.weights[k3] * vol;
          const double e =
              qc[layout.idx(k3, k2, k1, quantity)] -
              exact(solver.node_position(c, k1, k2, k3), solver.time());
          sum += w * e * e;
        }
  }
  return std::sqrt(sum);
}

/// Max norm of the nodal error for one quantity.
template <class Solver>
double linf_error(const Solver& solver, int quantity,
                  const ExactSolution& exact) {
  const auto& layout = solver.layout();
  const int n = layout.n;
  double worst = 0.0;
  for (int c = 0; c < solver.grid().num_cells(); ++c) {
    const double* qc = solver.cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          const double e = std::abs(
              qc[layout.idx(k3, k2, k1, quantity)] -
              exact(solver.node_position(c, k1, k2, k3), solver.time()));
          worst = std::max(worst, e);
        }
  }
  return worst;
}

/// Integral of one quantity over the domain (conservation checks).
template <class Solver>
double integral(const Solver& solver, int quantity) {
  const auto& basis = solver.basis();
  const auto& layout = solver.layout();
  const int n = layout.n;
  const double vol = solver.grid().cell_volume();
  double sum = 0.0;
  for (int c = 0; c < solver.grid().num_cells(); ++c) {
    const double* qc = solver.cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1)
          sum += basis.weights[k1] * basis.weights[k2] * basis.weights[k3] *
                 vol * qc[layout.idx(k3, k2, k1, quantity)];
  }
  return sum;
}

}  // namespace exastp
