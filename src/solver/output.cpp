#include "exastp/solver/output.h"

#include <fstream>

#include "exastp/common/check.h"

namespace exastp {

void write_csv(const SolverBase& solver, const std::string& path) {
  std::ofstream out(path);
  EXASTP_CHECK_MSG(out.good(), "cannot open " + path);
  const auto& layout = solver.layout();
  const int n = layout.n;
  out << "x,y,z";
  for (int s = 0; s < layout.m; ++s) out << ",q" << s;
  out << "\n";
  for (int c = 0; c < solver.grid().num_cells(); ++c) {
    const double* qc = solver.cell_dofs(c);
    for (int k3 = 0; k3 < n; ++k3)
      for (int k2 = 0; k2 < n; ++k2)
        for (int k1 = 0; k1 < n; ++k1) {
          const auto x = solver.node_position(c, k1, k2, k3);
          out << x[0] << "," << x[1] << "," << x[2];
          for (int s = 0; s < layout.m; ++s)
            out << "," << qc[layout.idx(k3, k2, k1, s)];
          out << "\n";
        }
  }
}

void write_vtk_cell_averages(const SolverBase& solver,
                             const std::vector<int>& quantities,
                             const std::vector<std::string>& names,
                             const std::string& path) {
  EXASTP_CHECK(quantities.size() == names.size());
  std::ofstream out(path);
  EXASTP_CHECK_MSG(out.good(), "cannot open " + path);
  const auto& grid = solver.grid();
  const auto& layout = solver.layout();
  const auto& basis = solver.basis();
  const auto cells = grid.spec().cells;
  const int n = layout.n;

  out << "# vtk DataFile Version 3.0\nexastp cell averages\nASCII\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << cells[0] << " " << cells[1] << " " << cells[2]
      << "\n"
      << "ORIGIN " << grid.spec().origin[0] << " " << grid.spec().origin[1]
      << " " << grid.spec().origin[2] << "\n"
      << "SPACING " << grid.dx(0) << " " << grid.dx(1) << " " << grid.dx(2)
      << "\n"
      << "POINT_DATA " << grid.num_cells() << "\n";

  for (std::size_t f = 0; f < quantities.size(); ++f) {
    out << "SCALARS " << names[f] << " double 1\nLOOKUP_TABLE default\n";
    for (int c = 0; c < grid.num_cells(); ++c) {
      const double* qc = solver.cell_dofs(c);
      double avg = 0.0;
      for (int k3 = 0; k3 < n; ++k3)
        for (int k2 = 0; k2 < n; ++k2)
          for (int k1 = 0; k1 < n; ++k1)
            avg += basis.weights[k1] * basis.weights[k2] * basis.weights[k3] *
                   qc[layout.idx(k3, k2, k1, quantities[f])];
      out << avg << "\n";
    }
  }
}

void SeismogramRecorder::record(const SolverBase& solver) {
  network_.sample_now(solver);
}

const std::vector<std::vector<double>>& SeismogramRecorder::samples() const {
  const std::size_t nq = network_.quantities().size();
  for (std::size_t i = samples_view_.size(); i < network_.num_samples();
       ++i) {
    std::vector<double> row;
    row.reserve(nq);
    for (std::size_t q = 0; q < nq; ++q)
      row.push_back(network_.value(i, 0, q));
    samples_view_.push_back(std::move(row));
  }
  return samples_view_;
}

void SeismogramRecorder::write_csv(const std::string& path,
                                   const std::vector<std::string>& names) const {
  EXASTP_CHECK(names.size() == network_.quantities().size());
  std::ofstream out(path);
  EXASTP_CHECK_MSG(out.good(), "cannot open " + path);
  out << "t";
  for (const auto& n : names) out << "," << n;
  out << "\n";
  for (std::size_t i = 0; i < network_.times().size(); ++i) {
    out << network_.times()[i];
    for (std::size_t q = 0; q < network_.quantities().size(); ++q)
      out << "," << network_.value(i, 0, q);
    out << "\n";
  }
}

}  // namespace exastp
