// Domain-decomposed time stepping: one solver per mesh shard behind the
// single SolverBase façade, over a pluggable exchange backend.
//
// A ShardedSolver owns a Partition (mesh/partition.h), sub-solvers built
// over the shards' partitioned Grid views, and the ExchangeBackend
// connecting them (exchange_backend.h). The shard count is independent of
// the rank count: the Partition's rank map (Partition::assign_ranks)
// groups shards onto ranks, so an over-decomposed run keeps several shards
// per rank — small enough to pipeline, co-resident so their mutual halo
// legs stay zero-copy in-process and only true rank-cut faces pay the wire
// (solver/mpi_exchange.h).
//
// Two step schedules share the phase protocol, selected by `schedule`:
//
//   lockstep   for every phase: post the halo fields the phase reads, run
//              every local shard's interior sweep while they are in
//              flight, wait, then the boundary sweeps. One global barrier
//              per phase — every shard stalls on the slowest exchange.
//
//   deps       dependency-driven (the default): each local shard advances
//              through its own phases as its inputs arrive. A shard's
//              boundary sweep for a phase runs as soon as that shard's
//              halos for the phase are delivered (sched_delivered); when a
//              shard finishes a phase, its next-phase halo planes are
//              captured immediately (pipelined multi-field sends — the
//              next phase's traffic leaves while other shards still
//              compute), and the scheduler fills stalls with whichever
//              shard has runnable work. Blocked time polls the backend
//              MPI_Testsome-style and is recorded as the sched_wait span;
//              ready-queue depth and task counts land in the
//              sched_tasks / sched_ready_depth_sum / sched_blocked_polls
//              counters.
//
// Both schedules deliver exactly the neighbour tensor's bytes into every
// halo slot and run each sweep over identical inputs, so the composite's
// field state is bitwise-identical to the monolithic solver for any
// backend x shard grid x rank map x schedule x thread count
// (tests/test_sharding.cpp, test_overlap.cpp, test_oversub.cpp and
// test_mpi.cpp guard the matrix).
//
// Engine-facing addressing stays global: grid() is the whole-domain grid,
// and cell_dofs / node_position / sample / add_point_source route by the
// owning shard — so observers (receiver networks, writers, norms) work
// unchanged on a local sharded run. Under backend=mpi those accessors only
// serve locally-owned cells (remote ones fail loudly); the engine filters
// receivers by ownership and rank 0 merges the streams (engine/simulation.h).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exastp/mesh/partition.h"
#include "exastp/solver/exchange_backend.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class ShardedSolver final : public SolverBase {
 public:
  /// Builds one sub-solver per locally-materialized subdomain via
  /// `make_shard` (called with the shard's Grid view; typically wraps
  /// AderDgSolver or RkDgSolver). All shards must share layout, basis and
  /// stepper. `backend` picks the exchange: "inprocess" (default, every
  /// shard in this process) or "mpi" (this rank materializes the shards
  /// the partition's rank map assigns to it; a partition without a rank
  /// map is auto-grouped one-shard-per-rank, and a map that does not
  /// match the launch fails with a clear message). `schedule` picks the
  /// step schedule: "deps" (default) or "lockstep".
  ShardedSolver(
      Partition partition,
      const std::function<std::unique_ptr<SolverBase>(const Grid&)>&
          make_shard,
      const std::string& backend = "inprocess",
      const std::string& schedule = "deps");

  const Grid& grid() const override { return global_grid_; }
  const AosLayout& layout() const override { return primary().layout(); }
  const BasisTables& basis() const override { return primary().basis(); }
  double time() const override { return primary().time(); }
  int order() const override { return primary().order(); }
  int evolved_quantities() const override {
    return primary().evolved_quantities();
  }
  std::string stepper_name() const override {
    return primary().stepper_name();
  }

  void set_initial_condition(const InitialCondition& init) override;

  /// Routes the source to the shard owning its position (a no-op on ranks
  /// that do not own it — every rank calls this with the same sources).
  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override {
    return primary().supports_point_sources();
  }

  /// One shared team for every local shard: shards step sequentially, so a
  /// single pool serves the composite and all sub-solvers.
  void set_thread_team(const ParallelFor& team) override;

  /// min over the shards' CFL bounds (an exact MPI_Allreduce(MIN) under
  /// backend=mpi) — identical bits to the monolithic bound on every rank,
  /// since max-wave-speed reduction commutes exactly.
  double stable_dt(double cfl = 0.4) const override;

  /// One time step under the configured schedule (see the file comment);
  /// bitwise-identical results either way.
  void step(double dt) override;

  /// Phase count of the sub-solvers — queried live, because enable_lts
  /// grows the ADER protocol from 2 to 2 * 2^(K-1) phases.
  int num_step_phases() const override {
    return primary().num_step_phases();
  }

  /// Clustered LTS over the decomposition: `cluster_of_cell` uses GLOBAL
  /// cell indexing; each local shard receives its owned cells' entries
  /// plus its halo slots' (resolved through the halo plans), so all
  /// shards agree on every cross-boundary rate without communicating.
  void enable_lts(const std::vector<int>& cluster_of_cell,
                  int num_clusters) override;
  int lts_num_clusters() const override {
    return primary().lts_num_clusters();
  }
  /// Aggregated over local shards (cells/substeps/ns sum per cluster).
  std::vector<LtsClusterStats> lts_cluster_stats() const override;
  double plan_step(double stable) const override {
    return primary().plan_step(stable);
  }

  /// Global-cell routing: the owning shard's local tensor / node. Under
  /// backend=mpi only locally-owned cells are served.
  const double* cell_dofs(int cell) const override;
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

  int num_shards() const override { return partition_.num_shards(); }
  const SolverBase& shard(int s) const override;

  int rank() const override { return rank_; }
  int num_ranks() const override;
  bool shard_is_local(int s) const override {
    return !distributed_ || partition_.rank_of(s) == rank_;
  }

  const Partition& partition() const { return partition_; }
  /// The configured step schedule ("deps" or "lockstep").
  const std::string& schedule() const { return schedule_; }
  /// The exchange backend (name, payload/copied bytes) for benches.
  const ExchangeBackend& exchange_backend() const { return *exchange_; }
  /// Swaps the exchange backend — a bench/test hook (e.g. an
  /// InProcessExchange with simulated cross-rank latency). The replacement
  /// must cover the same partition and cell size.
  void set_exchange_backend(std::unique_ptr<ExchangeBackend> backend);

 private:
  const SolverBase& primary() const {
    return *shards_[static_cast<std::size_t>(primary_)];
  }
  SolverBase& primary() {
    return *shards_[static_cast<std::size_t>(primary_)];
  }

  /// The phase's halo fields assembled across local shards, post_fields
  /// form (one ExchangeField per channel; remote shard slots nullptr).
  std::vector<ExchangeField> phase_exchange_fields(int phase) const;
  void step_lockstep(double dt);
  void step_scheduled(double dt);

  Partition partition_;
  Grid global_grid_;
  bool distributed_ = false;
  int rank_ = 0;
  int primary_ = 0;  ///< lowest locally-materialized shard id
  std::string schedule_;
  /// One slot per shard; only locally-materialized shards are non-null
  /// (all of them for backend=inprocess, this rank's group for
  /// backend=mpi).
  std::vector<std::unique_ptr<SolverBase>> shards_;
  std::unique_ptr<ExchangeBackend> exchange_;
};

}  // namespace exastp
