// Domain-decomposed time stepping: one solver per mesh shard behind the
// single SolverBase façade, over a pluggable exchange backend.
//
// A ShardedSolver owns a Partition (mesh/partition.h), sub-solvers built
// over the shards' partitioned Grid views, and the ExchangeBackend
// connecting them (exchange_backend.h). A step runs the sub-solvers' phase
// protocol in lockstep with the split-phase exchange schedule: for every
// phase, post the halo field the phase reads, run every local shard's
// interior sweep while the halo is in flight, wait, then run the boundary
// sweeps. Because the views compute geometry in global coordinates and
// every halo slot receives the exact bytes of its neighbour tensor, the
// composite's field state is bitwise-identical to the monolithic solver
// for any backend x shard grid x thread count (tests/test_sharding.cpp,
// tests/test_overlap.cpp and tests/test_mpi.cpp guard the matrix).
//
// Two execution modes share this class:
//   backend=inprocess  all shards live here; they advance sequentially
//                      within a phase, each on the solver's thread team
//                      (the decomposition is the process-boundary seam,
//                      not an extra in-process parallel layer);
//   backend=mpi        one rank per shard — only this rank's sub-solver
//                      is materialized, the interior sweep overlaps the
//                      MPI_Isend/Irecv traffic, and rank()/num_ranks()/
//                      shard_is_local() tell rank-aware writers which
//                      pieces live here.
//
// Engine-facing addressing stays global: grid() is the whole-domain grid,
// and cell_dofs / node_position / sample / add_point_source route by the
// owning shard — so observers (receiver networks, writers, norms) work
// unchanged on a local sharded run. Under backend=mpi those accessors only
// serve locally-owned cells (remote ones fail loudly); the engine filters
// receivers by ownership and rank 0 merges the streams (engine/simulation.h).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exastp/mesh/partition.h"
#include "exastp/solver/exchange_backend.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class ShardedSolver final : public SolverBase {
 public:
  /// Builds one sub-solver per locally-materialized subdomain via
  /// `make_shard` (called with the shard's Grid view; typically wraps
  /// AderDgSolver or RkDgSolver). All shards must share layout, basis and
  /// stepper. `backend` picks the exchange: "inprocess" (default, every
  /// shard in this process) or "mpi" (one rank per shard; fails with a
  /// clear message when the decomposition does not match the MPI launch).
  ShardedSolver(
      Partition partition,
      const std::function<std::unique_ptr<SolverBase>(const Grid&)>&
          make_shard,
      const std::string& backend = "inprocess");

  const Grid& grid() const override { return global_grid_; }
  const AosLayout& layout() const override { return primary().layout(); }
  const BasisTables& basis() const override { return primary().basis(); }
  double time() const override { return primary().time(); }
  int order() const override { return primary().order(); }
  int evolved_quantities() const override {
    return primary().evolved_quantities();
  }
  std::string stepper_name() const override {
    return primary().stepper_name();
  }

  void set_initial_condition(const InitialCondition& init) override;

  /// Routes the source to the shard owning its position (a no-op on ranks
  /// that do not own it — every rank calls this with the same sources).
  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override {
    return primary().supports_point_sources();
  }

  /// One shared team for every local shard: shards step sequentially, so a
  /// single pool serves the composite and all sub-solvers.
  void set_thread_team(const ParallelFor& team) override;

  /// min over the shards' CFL bounds (an exact MPI_Allreduce(MIN) under
  /// backend=mpi) — identical bits to the monolithic bound on every rank,
  /// since max-wave-speed reduction commutes exactly.
  double stable_dt(double cfl = 0.4) const override;

  /// Lockstep split-phase protocol: post the phase's halo fields, run
  /// every local shard's interior sweep while they are in flight, wait,
  /// then the boundary sweeps.
  void step(double dt) override;

  /// Phase count of the sub-solvers — queried live, because enable_lts
  /// grows the ADER protocol from 2 to 2 * 2^(K-1) phases.
  int num_step_phases() const override {
    return primary().num_step_phases();
  }

  /// Clustered LTS over the decomposition: `cluster_of_cell` uses GLOBAL
  /// cell indexing; each local shard receives its owned cells' entries
  /// plus its halo slots' (resolved through the halo plans), so all
  /// shards agree on every cross-boundary rate without communicating.
  void enable_lts(const std::vector<int>& cluster_of_cell,
                  int num_clusters) override;
  int lts_num_clusters() const override {
    return primary().lts_num_clusters();
  }
  /// Aggregated over local shards (cells/substeps/ns sum per cluster).
  std::vector<LtsClusterStats> lts_cluster_stats() const override;
  double plan_step(double stable) const override {
    return primary().plan_step(stable);
  }

  /// Global-cell routing: the owning shard's local tensor / node. Under
  /// backend=mpi only locally-owned cells are served.
  const double* cell_dofs(int cell) const override;
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

  int num_shards() const override { return partition_.num_shards(); }
  const SolverBase& shard(int s) const override;

  int rank() const override { return rank_; }
  int num_ranks() const override;
  bool shard_is_local(int s) const override {
    return !distributed_ || s == rank_;
  }

  const Partition& partition() const { return partition_; }
  /// The exchange backend (name, payload/copied bytes) for benches.
  const ExchangeBackend& exchange_backend() const { return *exchange_; }

 private:
  const SolverBase& primary() const {
    return *shards_[static_cast<std::size_t>(distributed_ ? rank_ : 0)];
  }
  SolverBase& primary() {
    return *shards_[static_cast<std::size_t>(distributed_ ? rank_ : 0)];
  }

  Partition partition_;
  Grid global_grid_;
  bool distributed_ = false;
  int rank_ = 0;
  /// One slot per shard; only locally-materialized shards are non-null
  /// (all of them for backend=inprocess, exactly [rank_] for backend=mpi).
  std::vector<std::unique_ptr<SolverBase>> shards_;
  std::unique_ptr<ExchangeBackend> exchange_;
};

}  // namespace exastp
