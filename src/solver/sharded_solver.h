// Domain-decomposed time stepping: one solver per mesh shard behind the
// single SolverBase façade.
//
// A ShardedSolver owns a Partition (mesh/partition.h), one sub-solver per
// Subdomain (each built over the shard's partitioned Grid view) and the
// HaloExchange connecting them. A step runs the sub-solvers' phase
// protocol in lockstep: for every phase, refresh the halo field the phase
// reads (pack/swap/unpack across all shards), then run the phase on each
// shard. Because the views compute geometry in global coordinates and the
// face corrector reads bitwise-identical neighbour tensors from halo
// storage, the composite's field state is bitwise-identical to the
// monolithic solver for any shard grid x thread count (tests/
// test_sharding.cpp guards the matrix).
//
// Engine-facing addressing stays global: grid() is the whole-domain grid,
// and cell_dofs / node_position / sample / add_point_source route by the
// owning shard — so observers (receiver networks, writers, norms) work
// unchanged on a sharded run, while shard-aware writers can reach the
// per-shard views through num_shards()/shard().
//
// Shards advance sequentially within a phase, each on the solver's thread
// team — the decomposition is the process-boundary seam (MPI ranks run one
// shard each), not an extra in-process parallel layer.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "exastp/mesh/partition.h"
#include "exastp/solver/halo_exchange.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class ShardedSolver final : public SolverBase {
 public:
  /// Builds one sub-solver per subdomain via `make_shard` (called with the
  /// shard's Grid view; typically wraps AderDgSolver or RkDgSolver). All
  /// shards must share layout, basis and stepper.
  ShardedSolver(
      Partition partition,
      const std::function<std::unique_ptr<SolverBase>(const Grid&)>&
          make_shard);

  const Grid& grid() const override { return global_grid_; }
  const AosLayout& layout() const override { return shards_[0]->layout(); }
  const BasisTables& basis() const override { return shards_[0]->basis(); }
  double time() const override { return shards_[0]->time(); }
  int order() const override { return shards_[0]->order(); }
  int evolved_quantities() const override {
    return shards_[0]->evolved_quantities();
  }
  std::string stepper_name() const override {
    return shards_[0]->stepper_name();
  }

  void set_initial_condition(const InitialCondition& init) override;

  /// Routes the source to the shard owning its position.
  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override {
    return shards_[0]->supports_point_sources();
  }

  /// One shared team for every shard: shards step sequentially, so a
  /// single pool serves the composite and all sub-solvers.
  void set_thread_team(const ParallelFor& team) override;

  /// min over the shards' CFL bounds — identical bits to the monolithic
  /// bound, since max-wave-speed reduction commutes exactly.
  double stable_dt(double cfl = 0.4) const override;

  /// Lockstep phase protocol: exchange the phase's halo field across all
  /// shards, then run the phase on each shard.
  void step(double dt) override;

  /// Global-cell routing: the owning shard's local tensor / node.
  const double* cell_dofs(int cell) const override;
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

  int num_shards() const override { return partition_.num_shards(); }
  const SolverBase& shard(int s) const override;

  const Partition& partition() const { return partition_; }
  /// Exchange statistics (links, payload bytes, call count) for benches.
  const HaloExchange& halo_exchange() const { return exchange_; }

 private:
  Partition partition_;
  Grid global_grid_;
  std::vector<std::unique_ptr<SolverBase>> shards_;
  HaloExchange exchange_;
  int phases_ = 1;
};

}  // namespace exastp
