// ADER-DG predictor-corrector time stepping (paper Sec. II, eq. (5)).
//
// One time step = one amortized mesh traversal:
//   1. per cell: STP kernel -> time-averaged state qavg and volume
//      fluctuations favg[d]; volume update qnew = q + dt sum_d favg[d]
//      (+ the direct time-integral of any point source);
//   2. per cell: for each of its six faces, project both sides' qavg,
//      solve the Rusanov Riemann problem (linear in its inputs) and apply
//      the strong-form surface lift to this cell only; boundary faces
//      build a ghost state from the boundary condition;
//   3. swap buffers, advance time, verify the solution stayed finite.
//
// Both mesh traversals are cell-parallel (ParallelFor): every write
// belongs to the traversed cell, each thread runs a forked kernel clone
// and its own aligned face scratch. An interior face is visited from both
// adjacent cells, which recomputes its Riemann solve once per side — the
// same fstar bits from identical inputs — so the update needs no face
// ownership, no coloring, and is bitwise-identical for any thread count.
//
// DOF storage is one contiguous aligned block in the *kernel's* AoS layout
// (padded for the optimized variants), so the engine exercises exactly the
// data layout the paper optimizes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/kernels/face.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/mesh/grid.h"
#include "exastp/pde/pde_base.h"
#include "exastp/pde/point_source.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class AderDgSolver final : public SolverBase {
 public:
  /// `pde` is the runtime view used for face terms and boundary conditions;
  /// `kernel` must have been built for the same PDE (same quantity count).
  AderDgSolver(std::shared_ptr<const PdeRuntime> pde, StpKernel kernel,
               const GridSpec& grid_spec,
               NodeFamily family = NodeFamily::kGaussLegendre);
  /// Same, over an arbitrary (possibly partitioned) grid view: qavg grows
  /// a halo ring the corrector reads for off-shard neighbours.
  AderDgSolver(std::shared_ptr<const PdeRuntime> pde, StpKernel kernel,
               const Grid& grid, NodeFamily family = NodeFamily::kGaussLegendre);

  const Grid& grid() const override { return grid_; }
  const AosLayout& layout() const override { return layout_; }
  const BasisTables& basis() const override { return basis_; }
  double time() const override { return time_; }
  int order() const override { return basis_.n; }
  int evolved_quantities() const override { return vars_; }
  std::string stepper_name() const override { return "ader"; }

  void set_initial_condition(const InitialCondition& init) override;

  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override { return true; }

  /// Rebuilds the per-thread kernel clones and face scratch; teams > 1
  /// thread require a kernel built through make_stp_kernel (forkable).
  void set_thread_team(const ParallelFor& team) override;

  /// CFL-limited stable time step from the current solution. The per-cell
  /// maximum wave speed is cached on first use: every registered PDE's
  /// speed depends only on material parameter rows, which are constant in
  /// time (zero flux), so recomputing the eigenvalue sweep each step is
  /// pure waste. set_initial_condition invalidates the cache.
  double stable_dt(double cfl = 0.4) const override;

  /// Advances by one step of size dt. Throws std::runtime_error if the
  /// solution leaves the finite range (blow-up detection). Under clustered
  /// LTS, dt is the MACRO step (the coarsest cluster's dt); the finest
  /// cluster substeps at dt / 2^(K-1).
  void step(double dt) override;

  // ---- Clustered local time stepping ----------------------------------
  // enable_lts switches the stepper to the clustered schedule: cluster k
  // steps with dt_k = dt_fine * 2^k, one macro step = 2^(K-1) fine
  // substeps. Cross-cluster faces use the CK/Taylor identity
  //   avg[dt/2, dt] = 2 avg[0, dt] - avg[0, dt/2]
  // so a coarse cell runs its predictor twice (dt -> qavg, dt/2 ->
  // qavg_half) when it has a finer face neighbour, and a fine cell
  // accumulates qavg_sum over its two substeps when it has a coarser one
  // (the coarse corrector reads 0.5 * qavg_sum). The Rusanov flux is
  // linear in its inputs, so both sides of a cluster boundary see the
  // same time-integrated flux up to FP reassociation. K == 1 reproduces
  // global stepping bitwise (docs/lts.md).
  void enable_lts(const std::vector<int>& cluster_of_cell,
                  int num_clusters) override;
  int lts_num_clusters() const override { return num_clusters_; }
  std::vector<LtsClusterStats> lts_cluster_stats() const override;
  /// stable * 2^(K-1): one macro step spans the coarsest cluster.
  double plan_step(double stable) const override {
    return lts_enabled_ ? stable * macro_substeps_ : stable;
  }

  /// Sharded stepping: phase 0 = element-local predictor + volume update,
  /// phase 1 = surface corrector + buffer swap + time advance. The
  /// corrector reads neighbour qavg tensors, so its halo field is qavg —
  /// and its sweep splits into an interior sweep (cells with no halo
  /// neighbour, runnable while the qavg exchange is in flight) and the
  /// boundary remainder after wait(). The predictor reads no neighbour
  /// data, so phase 0 is all interior.
  ///
  /// Under clustered LTS the protocol generalizes to 2 * 2^(K-1) phases:
  /// phase 2s = predict fine substep s (clusters aligned at s, interior-
  /// only), phase 2s+1 = correct the clusters completing at s. Correct
  /// phases read up to three halo fields (qavg / qavg_half / qavg_sum on
  /// channels 0/1/2); the final substep swaps buffers and advances time
  /// exactly like the global path.
  int num_step_phases() const override {
    return lts_enabled_ ? 2 * macro_substeps_ : 2;
  }
  void step_phase(int phase, double dt) override;
  void step_phase_interior(int phase, double dt) override;
  void step_phase_boundary(int phase, double dt) override;
  double* step_phase_halo(int phase) override {
    const bool correct = lts_enabled_ ? phase % 2 == 1 : phase == 1;
    return correct ? qavg_.data() : nullptr;
  }
  std::vector<PhaseHaloField> step_phase_halo_fields(int phase) override;

  /// Read-only view of a cell's padded AoS DOFs.
  const double* cell_dofs(int cell) const override {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }
  double* mutable_cell_dofs(int cell) {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }

  /// Physical position of a quadrature node of a cell.
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

 private:
  /// Everything one worker thread mutates outside its q/qnew/qavg slices:
  /// a kernel clone with its own workspace plus aligned face scratch.
  struct ThreadScratch {
    StpKernel kernel;
    AlignedVector favg0, favg1, favg2;  // volume-update temporaries
    AlignedVector nb_state;  // derived cross-cluster neighbour state (LTS)
    FaceWorkspace faces;
  };

  void rebuild_scratch();
  /// One predictor + volume update at expansion time t. Under LTS the
  /// cell may additionally run the kernel with dt/2 into qavg_half (finer
  /// face neighbour) and fold qavg into qavg_sum (coarser face
  /// neighbour); `sum_reset` starts a fresh sum window.
  void predict_cell(ThreadScratch& ts, int c, double dt, double t,
                    const std::array<double, 3>& inv_dx,
                    const std::array<double, kMaxOrder>& integral_coeff,
                    bool sum_reset);
  /// Surface lift for one cell; `s` is the fine substep index (for the
  /// cross-cluster neighbour-state selection; ignored off LTS).
  void correct_cell(ThreadScratch& ts, int c, double dt, int s);
  /// Surface sweep over one cell list (the interior or boundary set).
  void apply_corrector(double dt, const std::vector<int>& cells);
  /// Timed predictor sweep over cluster k at fine substep s.
  void predict_cluster(int k, int s, double dt_k, double t,
                       const std::array<double, 3>& inv_dx);
  /// Timed corrector sweep over one of cluster k's cell lists.
  void correct_cluster(int k, int s, double dt_k,
                       const std::vector<int>& cells);
  void check_finite() const;

  std::shared_ptr<const PdeRuntime> pde_;
  StpKernel kernel_;
  Grid grid_;
  const BasisTables& basis_;
  AosLayout layout_;
  FaceLayout face_layout_;
  std::size_t cell_size_;
  int vars_ = 0;  ///< evolved quantities (parameters excluded)

  AlignedVector q_, qnew_, qavg_;
  /// Interior/boundary split of the corrector sweep (mesh/partition.h);
  /// boundary is empty for whole-domain grids, so the monolithic path is
  /// one full interior sweep.
  std::vector<int> interior_cells_, boundary_cells_;
  std::vector<ThreadScratch> scratch_;  ///< one slot per thread

  // ---- Clustered-LTS state (inert until enable_lts) -------------------
  bool lts_enabled_ = false;
  int num_clusters_ = 1;
  int macro_substeps_ = 1;  ///< 2^(K-1) fine substeps per macro step
  std::vector<int> cluster_;  ///< rate cluster per owned + halo cell
  /// Production flags per owned cell: needs_half = has a finer face
  /// neighbour (run the dt/2 predictor), needs_sum = has a coarser one
  /// (accumulate qavg over the sum window).
  std::vector<char> needs_half_, needs_sum_;
  /// Per-cluster owned-cell lists (all / interior / boundary), in the
  /// same relative order as the global sweeps so K == 1 reproduces them.
  std::vector<std::vector<int>> cluster_cells_, cluster_interior_,
      cluster_boundary_;
  /// Extra time-average buffers, halo-extended like qavg_ (exchange
  /// channels 1 and 2); allocated only for K > 1.
  AlignedVector qavg_half_, qavg_sum_;
  /// Measured per-cluster cost: wall ns inside the cluster's sweeps and
  /// cell-substeps executed (the balance table's denominator).
  std::vector<long long> cluster_ns_, cluster_cell_substeps_;

  /// Per-cell max wave speed over nodes and directions; parameter-only,
  /// so it survives until the next set_initial_condition.
  mutable std::vector<double> wave_speed_cache_;

  double time_ = 0.0;
};

}  // namespace exastp
