// ADER-DG predictor-corrector time stepping (paper Sec. II, eq. (5)).
//
// One time step = one amortized mesh traversal:
//   1. per cell: STP kernel -> time-averaged state qavg and volume
//      fluctuations favg[d]; volume update qnew = q + dt sum_d favg[d]
//      (+ the direct time-integral of any point source);
//   2. per cell: for each of its six faces, project both sides' qavg,
//      solve the Rusanov Riemann problem (linear in its inputs) and apply
//      the strong-form surface lift to this cell only; boundary faces
//      build a ghost state from the boundary condition;
//   3. swap buffers, advance time, verify the solution stayed finite.
//
// Both mesh traversals are cell-parallel (ParallelFor): every write
// belongs to the traversed cell, each thread runs a forked kernel clone
// and its own aligned face scratch. An interior face is visited from both
// adjacent cells, which recomputes its Riemann solve once per side — the
// same fstar bits from identical inputs — so the update needs no face
// ownership, no coloring, and is bitwise-identical for any thread count.
//
// DOF storage is one contiguous aligned block in the *kernel's* AoS layout
// (padded for the optimized variants), so the engine exercises exactly the
// data layout the paper optimizes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/kernels/face.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/mesh/grid.h"
#include "exastp/pde/pde_base.h"
#include "exastp/pde/point_source.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class AderDgSolver final : public SolverBase {
 public:
  /// `pde` is the runtime view used for face terms and boundary conditions;
  /// `kernel` must have been built for the same PDE (same quantity count).
  AderDgSolver(std::shared_ptr<const PdeRuntime> pde, StpKernel kernel,
               const GridSpec& grid_spec,
               NodeFamily family = NodeFamily::kGaussLegendre);
  /// Same, over an arbitrary (possibly partitioned) grid view: qavg grows
  /// a halo ring the corrector reads for off-shard neighbours.
  AderDgSolver(std::shared_ptr<const PdeRuntime> pde, StpKernel kernel,
               const Grid& grid, NodeFamily family = NodeFamily::kGaussLegendre);

  const Grid& grid() const override { return grid_; }
  const AosLayout& layout() const override { return layout_; }
  const BasisTables& basis() const override { return basis_; }
  double time() const override { return time_; }
  int order() const override { return basis_.n; }
  int evolved_quantities() const override { return vars_; }
  std::string stepper_name() const override { return "ader"; }

  void set_initial_condition(const InitialCondition& init) override;

  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override { return true; }

  /// Rebuilds the per-thread kernel clones and face scratch; teams > 1
  /// thread require a kernel built through make_stp_kernel (forkable).
  void set_thread_team(const ParallelFor& team) override;

  /// CFL-limited stable time step from the current solution.
  double stable_dt(double cfl = 0.4) const override;

  /// Advances by one step of size dt. Throws std::runtime_error if the
  /// solution leaves the finite range (blow-up detection).
  void step(double dt) override;

  /// Sharded stepping: phase 0 = element-local predictor + volume update,
  /// phase 1 = surface corrector + buffer swap + time advance. The
  /// corrector reads neighbour qavg tensors, so its halo field is qavg —
  /// and its sweep splits into an interior sweep (cells with no halo
  /// neighbour, runnable while the qavg exchange is in flight) and the
  /// boundary remainder after wait(). The predictor reads no neighbour
  /// data, so phase 0 is all interior.
  int num_step_phases() const override { return 2; }
  void step_phase(int phase, double dt) override;
  void step_phase_interior(int phase, double dt) override;
  void step_phase_boundary(int phase, double dt) override;
  double* step_phase_halo(int phase) override {
    return phase == 1 ? qavg_.data() : nullptr;
  }

  /// Read-only view of a cell's padded AoS DOFs.
  const double* cell_dofs(int cell) const override {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }
  double* mutable_cell_dofs(int cell) {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }

  /// Physical position of a quadrature node of a cell.
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

 private:
  /// Everything one worker thread mutates outside its q/qnew/qavg slices:
  /// a kernel clone with its own workspace plus aligned face scratch.
  struct ThreadScratch {
    StpKernel kernel;
    AlignedVector favg0, favg1, favg2;  // volume-update temporaries
    FaceWorkspace faces;
  };

  void rebuild_scratch();
  void predict_cell(ThreadScratch& ts, int c, double dt,
                    const std::array<double, 3>& inv_dx,
                    const std::array<double, kMaxOrder>& integral_coeff);
  void correct_cell(ThreadScratch& ts, int c, double dt);
  /// Surface sweep over one cell list (the interior or boundary set).
  void apply_corrector(double dt, const std::vector<int>& cells);
  void check_finite() const;

  std::shared_ptr<const PdeRuntime> pde_;
  StpKernel kernel_;
  Grid grid_;
  const BasisTables& basis_;
  AosLayout layout_;
  FaceLayout face_layout_;
  std::size_t cell_size_;
  int vars_ = 0;  ///< evolved quantities (parameters excluded)

  AlignedVector q_, qnew_, qavg_;
  /// Interior/boundary split of the corrector sweep (mesh/partition.h);
  /// boundary is empty for whole-domain grids, so the monolithic path is
  /// one full interior sweep.
  std::vector<int> interior_cells_, boundary_cells_;
  std::vector<ThreadScratch> scratch_;  ///< one slot per thread

  double time_ = 0.0;
};

}  // namespace exastp
