// ADER-DG predictor-corrector time stepping (paper Sec. II, eq. (5)).
//
// One time step = one amortized mesh traversal:
//   1. per cell: STP kernel -> time-averaged state qavg and volume
//      fluctuations favg[d]; volume update qnew = q + dt sum_d favg[d]
//      (+ the direct time-integral of any point source);
//   2. per face: project both sides' qavg to the face, solve the Rusanov
//      Riemann problem (linear in its inputs), apply the strong-form
//      surface lift to both adjacent cells; boundary faces build a ghost
//      state from the boundary condition;
//   3. swap buffers, advance time, verify the solution stayed finite.
//
// DOF storage is one contiguous aligned block in the *kernel's* AoS layout
// (padded for the optimized variants), so the engine exercises exactly the
// data layout the paper optimizes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "exastp/basis/basis_tables.h"
#include "exastp/kernels/face.h"
#include "exastp/kernels/stp_common.h"
#include "exastp/mesh/grid.h"
#include "exastp/pde/pde_base.h"
#include "exastp/pde/point_source.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class AderDgSolver final : public SolverBase {
 public:
  /// `pde` is the runtime view used for face terms and boundary conditions;
  /// `kernel` must have been built for the same PDE (same quantity count).
  AderDgSolver(std::shared_ptr<const PdeRuntime> pde, StpKernel kernel,
               const GridSpec& grid_spec,
               NodeFamily family = NodeFamily::kGaussLegendre);

  const Grid& grid() const override { return grid_; }
  const AosLayout& layout() const override { return layout_; }
  const BasisTables& basis() const override { return basis_; }
  double time() const override { return time_; }
  int order() const override { return basis_.n; }
  std::string stepper_name() const override { return "ader"; }

  void set_initial_condition(const InitialCondition& init) override;

  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override { return true; }

  /// CFL-limited stable time step from the current solution.
  double stable_dt(double cfl = 0.4) const override;

  /// Advances by one step of size dt. Throws std::runtime_error if the
  /// solution leaves the finite range (blow-up detection).
  void step(double dt) override;

  /// Runs until t_end (last step shortened to land exactly), returns the
  /// number of steps taken.
  int run_until(double t_end, double cfl = 0.4) override;

  /// Read-only view of a cell's padded AoS DOFs.
  const double* cell_dofs(int cell) const override {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }
  double* mutable_cell_dofs(int cell) {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }

  /// Physical position of a quadrature node of a cell.
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

 private:
  void apply_corrector(double dt);
  void check_finite() const;

  std::shared_ptr<const PdeRuntime> pde_;
  StpKernel kernel_;
  Grid grid_;
  const BasisTables& basis_;
  AosLayout layout_;
  FaceLayout face_layout_;
  std::size_t cell_size_;
  int vars_ = 0;  ///< evolved quantities (parameters excluded)

  AlignedVector q_, qnew_, qavg_;
  // Face scratch buffers.
  AlignedVector face_l_, face_r_, flux_l_, flux_r_, fstar_;

  struct PreparedSource {
    int cell = -1;
    MeshPointSource source;
    AlignedVector psi;
  };
  std::vector<PreparedSource> sources_;

  double time_ = 0.0;
};

}  // namespace exastp
