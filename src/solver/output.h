// Whole-mesh solution writers: CSV (nodal values) and legacy-VTK (cell
// averages). Streaming per-step output lives in src/io/ (observer hooks,
// receiver networks, incremental writers); these stay the post-hoc dumps.
#pragma once

#include <string>
#include <vector>

#include "exastp/io/receiver_network.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

/// Writes every quadrature node as one CSV row:
/// x,y,z,q0,...,q{m-1}. Intended for small meshes / debugging.
void write_csv(const SolverBase& solver, const std::string& path);

/// Writes cell averages of the listed quantities as a legacy-VTK
/// STRUCTURED_POINTS file readable by ParaView.
void write_vtk_cell_averages(const SolverBase& solver,
                             const std::vector<int>& quantities,
                             const std::vector<std::string>& names,
                             const std::string& path);

/// Time series recorder for a single receiver — a thin shim over
/// io/receiver_network.h kept for callers that drive recording by hand.
/// The first record() binds the network (locating the containing cell and
/// precomputing the basis weights once); every later record() is a cached
/// dot product instead of the old locate-and-re-evaluate-per-sample path.
/// New code should attach a ReceiverNetwork observer instead.
class SeismogramRecorder {
 public:
  SeismogramRecorder(std::array<double, 3> position,
                     std::vector<int> quantities)
      : network_(std::move(quantities)) {
    network_.add_receiver(position);
  }

  void record(const SolverBase& solver);
  void write_csv(const std::string& path,
                 const std::vector<std::string>& names) const;
  std::size_t num_samples() const { return network_.num_samples(); }
  const std::vector<double>& times() const { return network_.times(); }
  /// Row-per-record view of the network's traces, rebuilt on demand (the
  /// network already owns the data; this keeps the legacy return type
  /// without a second persistent copy).
  const std::vector<std::vector<double>>& samples() const;

 private:
  ReceiverNetwork network_;
  mutable std::vector<std::vector<double>> samples_view_;
};

}  // namespace exastp
