// Solution writers: CSV (nodal values) and legacy-VTK (cell averages),
// the engine's "Plotters" role in Fig. 2.
#pragma once

#include <string>
#include <vector>

#include "exastp/solver/solver_base.h"

namespace exastp {

/// Writes every quadrature node as one CSV row:
/// x,y,z,q0,...,q{m-1}. Intended for small meshes / debugging.
void write_csv(const SolverBase& solver, const std::string& path);

/// Writes cell averages of the listed quantities as a legacy-VTK
/// STRUCTURED_POINTS file readable by ParaView.
void write_vtk_cell_averages(const SolverBase& solver,
                             const std::vector<int>& quantities,
                             const std::vector<std::string>& names,
                             const std::string& path);

/// Time series recorder for receiver/seismogram output.
class SeismogramRecorder {
 public:
  SeismogramRecorder(std::array<double, 3> position,
                     std::vector<int> quantities)
      : position_(position), quantities_(std::move(quantities)) {}

  void record(const SolverBase& solver);
  void write_csv(const std::string& path,
                 const std::vector<std::string>& names) const;
  std::size_t num_samples() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<std::vector<double>>& samples() const { return samples_; }

 private:
  std::array<double, 3> position_;
  std::vector<int> quantities_;
  std::vector<double> times_;
  std::vector<std::vector<double>> samples_;  // per record, one per quantity
};

}  // namespace exastp
