// Physical energy functionals, evaluated with the nodal quadrature.
//
// Used for stability diagnostics (a Rusanov-flux DG scheme must never gain
// energy on periodic or reflecting meshes) and in the example programs.
#pragma once

#include "exastp/pde/acoustic.h"
#include "exastp/pde/elastic.h"
#include "exastp/pde/maxwell.h"
#include "exastp/solver/norms.h"

namespace exastp {
namespace detail {

/// Integral of f(node_quantities) over the mesh. Cell-parallel with an
/// ordered reduction, so the result is bitwise-independent of the solver's
/// thread count.
template <class Solver, class NodeFn>
double integrate_nodes(const Solver& solver, NodeFn&& f) {
  const auto& basis = solver.basis();
  const auto& layout = solver.layout();
  const int n = layout.n;
  const double vol = solver.grid().cell_volume();
  const std::vector<double> partials = ordered_partials(
      solver.parallel(), solver.grid().num_cells(), [&](long c) {
        const double* qc = solver.cell_dofs(static_cast<int>(c));
        double cell_sum = 0.0;
        for (int k3 = 0; k3 < n; ++k3)
          for (int k2 = 0; k2 < n; ++k2)
            for (int k1 = 0; k1 < n; ++k1)
              cell_sum += basis.weights[k1] * basis.weights[k2] *
                          basis.weights[k3] * vol *
                          f(qc + layout.idx(k3, k2, k1, 0));
        return cell_sum;
      });
  double sum = 0.0;
  for (double p : partials) sum += p;
  return sum;
}

}  // namespace detail

/// Acoustic energy: integral of p^2/(2 rho c^2) + rho |v|^2 / 2.
template <class Solver>
double acoustic_energy(const Solver& solver) {
  return detail::integrate_nodes(solver, [](const double* q) {
    const double rho = q[AcousticPde::kRho], c = q[AcousticPde::kC];
    const double v2 = q[1] * q[1] + q[2] * q[2] + q[3] * q[3];
    return q[AcousticPde::kP] * q[AcousticPde::kP] / (2.0 * rho * c * c) +
           0.5 * rho * v2;
  });
}

/// Electromagnetic energy: integral of (eps |E|^2 + mu |H|^2) / 2.
template <class Solver>
double maxwell_energy(const Solver& solver) {
  return detail::integrate_nodes(solver, [](const double* q) {
    double e2 = 0.0, h2 = 0.0;
    for (int i = 0; i < 3; ++i) {
      e2 += q[MaxwellPde::kEx + i] * q[MaxwellPde::kEx + i];
      h2 += q[MaxwellPde::kHx + i] * q[MaxwellPde::kHx + i];
    }
    return 0.5 * (q[MaxwellPde::kEps] * e2 + q[MaxwellPde::kMu] * h2);
  });
}

/// Elastic kinetic energy: integral of rho |v|^2 / 2 (the strain part needs
/// the compliance tensor and is omitted; kinetic energy alone already bounds
/// instabilities in the tests).
template <class Solver>
double elastic_kinetic_energy(const Solver& solver) {
  return detail::integrate_nodes(solver, [](const double* q) {
    const double v2 = q[0] * q[0] + q[1] * q[1] + q[2] * q[2];
    return 0.5 * q[ElasticPde::kRho] * v2;
  });
}

}  // namespace exastp
