#include "exastp/solver/exchange_backend.h"

#include "exastp/common/check.h"
#include "exastp/solver/halo_exchange.h"
#include "exastp/solver/mpi_exchange.h"

namespace exastp {

std::unique_ptr<ExchangeBackend> make_exchange_backend(
    const std::string& backend, const Partition& partition,
    std::size_t cell_size) {
  if (backend == "inprocess")
    return std::make_unique<InProcessExchange>(partition, cell_size);
  if (backend == "mpi") return make_mpi_exchange(partition, cell_size);
  EXASTP_FAIL("unknown exchange backend \"" + backend +
              "\" (inprocess|mpi)");
}

}  // namespace exastp
