// Runge-Kutta DG baseline solver.
//
// The paper motivates ADER-DG by its advantages over the more widespread
// RK-DG approach (Sec. I, citing [5]): one element-local predictor plus one
// corrector per step versus one full mesh-wide operator evaluation per RK
// stage. This classical RK4-DG solver provides the measurable baseline for
// that claim (bench_ablation_rkdg): same spatial discretization (nodal DG,
// collocation derivative, Rusanov fluxes, strong-form lift), same mesh and
// PDE interface, classical fourth-order Runge-Kutta in time.
//
// The stage operator is evaluated cell-parallel (ParallelFor): one fused
// traversal computes a cell's volume terms, the lift from its own six faces
// (interior Riemann solves recomputed once per side — identical bits) and
// any point-source injection, writing only that cell's rhs slice. The RK
// axpy sweeps are chunked at vector-width granularity. Results are
// bitwise-identical for any thread count.
#pragma once

#include <functional>
#include <memory>

#include "exastp/basis/basis_tables.h"
#include "exastp/kernels/face.h"
#include "exastp/mesh/grid.h"
#include "exastp/pde/pde_base.h"
#include "exastp/solver/solver_base.h"

namespace exastp {

class RkDgSolver final : public SolverBase {
 public:
  RkDgSolver(std::shared_ptr<const PdeRuntime> pde, int order, Isa isa,
             const GridSpec& grid_spec,
             NodeFamily family = NodeFamily::kGaussLegendre);
  /// Same, over an arbitrary (possibly partitioned) grid view: the state
  /// buffers grow a halo ring the stage operator reads for off-shard
  /// neighbours.
  RkDgSolver(std::shared_ptr<const PdeRuntime> pde, int order, Isa isa,
             const Grid& grid, NodeFamily family = NodeFamily::kGaussLegendre);

  const Grid& grid() const override { return grid_; }
  const AosLayout& layout() const override { return layout_; }
  const BasisTables& basis() const override { return basis_; }
  double time() const override { return time_; }
  int order() const override { return basis_.n; }
  int evolved_quantities() const override { return vars_; }
  std::string stepper_name() const override { return "rk4"; }

  void set_initial_condition(const InitialCondition& init) override;

  /// RK source injection: psi * s(t) is added to the semi-discrete rhs at
  /// every stage time, so the classical RK4 tableau integrates the
  /// time-dependent source to fourth order.
  void add_point_source(const MeshPointSource& source) override;
  bool supports_point_sources() const override { return true; }

  /// Rebuilds the per-thread operator scratch.
  void set_thread_team(const ParallelFor& team) override;

  /// CFL-limited stable step (same bound as the ADER solver for an
  /// apples-to-apples time-to-solution comparison).
  double stable_dt(double cfl = 0.4) const override;

  /// One classical RK4 step: four evaluations of the semi-discrete DG
  /// operator.
  void step(double dt) override;

  /// Sharded stepping: one phase per RK stage. Every stage operator reads
  /// neighbour tensors of its input state — q for the first stage, the
  /// stage buffer afterwards — so each phase names that array as its halo
  /// field. The operator traversal splits into an interior sweep (no halo
  /// neighbours, runs while the exchange is in flight) and the boundary
  /// remainder plus the element-wise stage sweeps after wait().
  int num_step_phases() const override { return 4; }
  void step_phase(int phase, double dt) override;
  void step_phase_interior(int phase, double dt) override;
  void step_phase_boundary(int phase, double dt) override;
  double* step_phase_halo(int phase) override {
    return phase == 0 ? q_.data() : stage_.data();
  }

  const double* cell_dofs(int cell) const override {
    return q_.data() + static_cast<std::size_t>(cell) * cell_size_;
  }
  std::array<double, 3> node_position(int cell, int k1, int k2,
                                      int k3) const override;

  /// Number of semi-discrete operator evaluations so far (4 per step).
  long operator_evaluations() const { return operator_evals_; }

 private:
  /// Per-thread scratch of the fused volume + surface cell traversal.
  struct ThreadScratch {
    AlignedVector flux, gradq;  // per-cell volume scratch
    FaceWorkspace faces;
    std::vector<double> ncp_tmp;
  };

  void rebuild_scratch();
  /// rhs = L(state) at time t over one cell list (the interior or
  /// boundary classification set): volume derivative terms, surface
  /// corrections and point-source injection, writing only the listed
  /// cells' rhs slices.
  void evaluate_operator(const AlignedVector& state, double t,
                         AlignedVector& rhs, const std::vector<int>& cells);
  void operator_cell(ThreadScratch& ts, const AlignedVector& state, double t,
                     int c, AlignedVector& rhs);
  /// Input state and evaluation time of one RK stage.
  const AlignedVector& stage_state(int phase) const {
    return phase == 0 ? q_ : stage_;
  }
  double stage_time(int phase, double dt) const {
    return phase == 0 ? time_ : (phase == 3 ? time_ + dt : time_ + 0.5 * dt);
  }
  void check_finite() const;

  std::shared_ptr<const PdeRuntime> pde_;
  Grid grid_;
  const BasisTables& basis_;
  Isa isa_;
  AosLayout layout_;
  FaceLayout face_layout_;
  std::size_t cell_size_;
  int vars_ = 0;

  AlignedVector q_, stage_, rhs_, accum_;
  /// Interior/boundary split of the operator traversal (mesh/partition.h);
  /// boundary is empty for whole-domain grids.
  std::vector<int> interior_cells_, boundary_cells_;
  std::vector<ThreadScratch> scratch_;  ///< one slot per thread

  double time_ = 0.0;
  long operator_evals_ = 0;
};

}  // namespace exastp
