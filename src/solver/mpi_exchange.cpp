#include "exastp/solver/mpi_exchange.h"

#include "exastp/common/check.h"

#if defined(EXASTP_WITH_MPI)

#include <mpi.h>

#include <cstring>
#include <limits>
#include <utility>

#include "exastp/common/aligned.h"
#include "exastp/common/mpi_runtime.h"

namespace exastp {
namespace {

class MpiExchangeBackend final : public ExchangeBackend {
 public:
  MpiExchangeBackend(const Partition& partition, std::size_t cell_size)
      : cell_size_(cell_size), rank_(MpiRuntime::rank()) {
    EXASTP_CHECK_MSG(cell_size_ > 0, "halo exchange needs a cell size");
    EXASTP_CHECK_MSG(MpiRuntime::initialized(),
                     "the mpi exchange backend needs an initialized MPI "
                     "launch (mpirun)");
    EXASTP_CHECK_MSG(MpiRuntime::size() == partition.num_shards(),
                     "the mpi exchange backend runs one rank per shard");

    // Receives: this rank's plans, landing directly in the halo block
    // (contiguous and plan-ordered), so there is no unpack copy.
    for (const HaloPlan& plan : partition.subdomain(rank_).halos) {
      EXASTP_CHECK(plan.src_shard != rank_);
      RecvOp op;
      op.peer = plan.src_shard;
      op.tag = plan.dir * 2 + plan.side;
      op.offset = static_cast<std::size_t>(plan.dst_begin) * cell_size_;
      op.count = plan.src_cells.size() * cell_size_;
      // MPI-3 counts are int; a face plane that overflows one must fail
      // loudly, not wrap into a truncated transfer.
      EXASTP_CHECK_MSG(op.count <= static_cast<std::size_t>(
                                       std::numeric_limits<int>::max()),
                       "halo face exceeds the MPI int count limit");
      payload_bytes_ += op.count * sizeof(double);
      recvs_.push_back(op);
    }

    // Sends: every plan of another shard naming this rank as the source.
    // The tag is the *receiving* face's (dir, side) slot — the sender and
    // receiver walk the same Partition, so both derive the same tag.
    for (int s = 0; s < partition.num_shards(); ++s) {
      if (s == rank_) continue;
      for (const HaloPlan& plan : partition.subdomain(s).halos) {
        if (plan.src_shard != rank_) continue;
        SendOp op;
        op.peer = s;
        op.tag = plan.dir * 2 + plan.side;
        op.cells = plan.src_cells;
        const std::size_t doubles = plan.src_cells.size() * cell_size_;
        EXASTP_CHECK_MSG(doubles <= static_cast<std::size_t>(
                                        std::numeric_limits<int>::max()),
                         "halo face exceeds the MPI int count limit");
        copied_bytes_ += doubles * sizeof(double);
        sends_.push_back(std::move(op));
      }
    }
    requests_.reserve(recvs_.size() + sends_.size());
  }

  std::string name() const override { return "mpi"; }

 protected:
  void do_post(const std::vector<ExchangeField>& fields) override {
    EXASTP_CHECK_MSG(!in_flight_, "an exchange is already in flight");
    requests_.clear();
    // Every field of the post flies concurrently; the channel widens the
    // (dir, side) tag so same-face messages of different fields cannot be
    // matched across channels. Each send op keeps one pack buffer per
    // field slot so all packed planes stay live until do_wait.
    for (std::size_t f = 0; f < fields.size(); ++f) {
      const ExchangeField& field = fields[f];
      EXASTP_CHECK_MSG(
          field.channel >= 0 && field.channel < kMaxExchangeChannels,
          "exchange channel out of range");
      EXASTP_CHECK(rank_ < static_cast<int>(field.shard_fields.size()));
      double* mine = field.shard_fields[static_cast<std::size_t>(rank_)];
      EXASTP_CHECK_MSG(mine != nullptr,
                       "the mpi backend needs this rank's shard field");

      for (const RecvOp& op : recvs_) {
        MPI_Request request;
        MPI_Irecv(mine + op.offset, static_cast<int>(op.count), MPI_DOUBLE,
                  op.peer, field.channel * 6 + op.tag, MPI_COMM_WORLD,
                  &request);
        requests_.push_back(request);
      }
      for (SendOp& op : sends_) {
        if (op.buffers.size() <= f)
          op.buffers.resize(f + 1);
        AlignedVector& buffer = op.buffers[f];
        buffer.assign(op.cells.size() * cell_size_, 0.0);
        double* out = buffer.data();
        for (const int cell : op.cells) {
          std::memcpy(out, mine + static_cast<std::size_t>(cell) * cell_size_,
                      cell_size_ * sizeof(double));
          out += cell_size_;
        }
        MPI_Request request;
        MPI_Isend(buffer.data(), static_cast<int>(buffer.size()), MPI_DOUBLE,
                  op.peer, field.channel * 6 + op.tag, MPI_COMM_WORLD,
                  &request);
        requests_.push_back(request);
      }
    }
    in_flight_ = true;
  }

  void do_wait() override {
    EXASTP_CHECK_MSG(in_flight_, "wait() without a posted exchange");
    MPI_Waitall(static_cast<int>(requests_.size()), requests_.data(),
                MPI_STATUSES_IGNORE);
    in_flight_ = false;
  }

 private:
  struct RecvOp {
    int peer = -1;
    int tag = 0;
    std::size_t offset = 0;  ///< doubles into this rank's field
    std::size_t count = 0;   ///< doubles received
  };
  struct SendOp {
    int peer = -1;
    int tag = 0;             ///< base tag; channel * 6 is added per field
    std::vector<int> cells;  ///< pack order = the receiver's halo order
    std::vector<AlignedVector> buffers;  ///< one pack buffer per field slot
  };

  std::size_t cell_size_ = 0;
  int rank_ = 0;
  std::vector<RecvOp> recvs_;
  std::vector<SendOp> sends_;
  std::vector<MPI_Request> requests_;
  bool in_flight_ = false;
};

}  // namespace

std::unique_ptr<ExchangeBackend> make_mpi_exchange(const Partition& partition,
                                                   std::size_t cell_size) {
  return std::make_unique<MpiExchangeBackend>(partition, cell_size);
}

}  // namespace exastp

#else  // !EXASTP_WITH_MPI

namespace exastp {

std::unique_ptr<ExchangeBackend> make_mpi_exchange(
    const Partition& /*partition*/, std::size_t /*cell_size*/) {
  EXASTP_FAIL(
      "this build has no MPI support — reconfigure with "
      "-DEXASTP_WITH_MPI=ON to use backend=mpi");
}

}  // namespace exastp

#endif
