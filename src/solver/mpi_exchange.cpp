#include "exastp/solver/mpi_exchange.h"

#include "exastp/common/check.h"

#if defined(EXASTP_WITH_MPI)

#include <mpi.h>

#include <cstring>
#include <limits>
#include <utility>

#include "exastp/common/aligned.h"
#include "exastp/common/mpi_runtime.h"
#include "exastp/solver/halo_exchange.h"

namespace exastp {
namespace {

/// Hybrid exchange: rank r materializes every shard of
/// Partition::shards_of_rank(r). Links whose two endpoints live on this
/// rank move through the zero-copy LocalLinkSet gather; only links that
/// actually cross a rank boundary become MPI messages.
///
/// Tag scheme: tag = (channel * num_shards + dst_shard) * 6 + (dir*2+side).
/// A given (dst_shard, dir, side) face has exactly one source shard, so a
/// tag uniquely names a link per channel even when one rank pair carries
/// several shard pairs; the ctor checks the widened space against
/// MPI_TAG_UB. In the scheduled protocol one (link, channel) tag carries
/// one message per exchanging phase — MPI's non-overtaking rule pairs the
/// same-tag sequence in phase order on both sides.
class HybridExchangeBackend final : public ExchangeBackend {
 public:
  HybridExchangeBackend(const Partition& partition, std::size_t cell_size)
      : cell_size_(cell_size),
        rank_(MpiRuntime::rank()),
        num_shards_(partition.num_shards()),
        local_(partition, cell_size, /*only_rank=*/MpiRuntime::rank()) {
    EXASTP_CHECK_MSG(cell_size_ > 0, "halo exchange needs a cell size");
    EXASTP_CHECK_MSG(MpiRuntime::initialized(),
                     "the mpi exchange backend needs an initialized MPI "
                     "launch (mpirun)");
    EXASTP_CHECK_MSG(
        partition.num_ranks() == MpiRuntime::size(),
        "the mpi exchange backend needs the partition's rank map to match "
        "the MPI launch: " + std::to_string(partition.num_ranks()) +
            " rank group(s) vs " + std::to_string(MpiRuntime::size()) +
            " MPI rank(s)");

    int flag = 0;
    int* tag_ub_ptr = nullptr;
    MPI_Comm_get_attr(MPI_COMM_WORLD, MPI_TAG_UB, &tag_ub_ptr, &flag);
    const long tag_ub = flag ? static_cast<long>(*tag_ub_ptr) : 32767L;
    EXASTP_CHECK_MSG(
        static_cast<long>(kMaxExchangeChannels) * num_shards_ * 6 - 1 <=
            tag_ub,
        "the shard count overflows the MPI tag space of this "
        "implementation — use fewer shards");

    // Receives: plans of this rank's shards sourced from another rank,
    // landing directly in the halo block (contiguous and plan-ordered),
    // so there is no unpack copy.
    for (const int s : partition.shards_of_rank(rank_)) {
      for (const HaloPlan& plan : partition.subdomain(s).halos) {
        if (partition.rank_of(plan.src_shard) == rank_) continue;
        RecvOp op;
        op.peer = partition.rank_of(plan.src_shard);
        op.dst_shard = s;
        op.face = plan.dir * 2 + plan.side;
        op.offset = static_cast<std::size_t>(plan.dst_begin) * cell_size_;
        op.count = plan.src_cells.size() * cell_size_;
        // MPI-3 counts are int; a face plane that overflows one must fail
        // loudly, not wrap into a truncated transfer.
        EXASTP_CHECK_MSG(op.count <= static_cast<std::size_t>(
                                         std::numeric_limits<int>::max()),
                         "halo face exceeds the MPI int count limit");
        recvs_.push_back(op);
      }
    }

    // Sends: every remote shard's plan naming one of this rank's shards as
    // the source. Sender and receiver walk the same Partition, so both
    // derive the same (dst_shard, face) tag.
    for (int s = 0; s < num_shards_; ++s) {
      if (partition.rank_of(s) == rank_) continue;
      for (const HaloPlan& plan : partition.subdomain(s).halos) {
        if (partition.rank_of(plan.src_shard) != rank_) continue;
        SendOp op;
        op.peer = partition.rank_of(s);
        op.src_shard = plan.src_shard;
        op.dst_shard = s;
        op.face = plan.dir * 2 + plan.side;
        op.cells = plan.src_cells;
        const std::size_t doubles = plan.src_cells.size() * cell_size_;
        EXASTP_CHECK_MSG(doubles <= static_cast<std::size_t>(
                                        std::numeric_limits<int>::max()),
                         "halo face exceeds the MPI int count limit");
        copied_bytes_ += doubles * sizeof(double);
        sends_.push_back(std::move(op));
      }
    }

    payload_bytes_ = local_.payload_bytes();
    for (const RecvOp& op : recvs_)
      payload_bytes_ += op.count * sizeof(double);
    copied_bytes_ += local_.payload_bytes();
    requests_.reserve(recvs_.size() + sends_.size());
  }

  std::string name() const override { return "mpi"; }
  bool supports_scheduled() const override { return true; }

 protected:
  void do_post(const std::vector<ExchangeField>& fields) override {
    EXASTP_CHECK_MSG(!in_flight_, "an exchange is already in flight");
    requests_.clear();
    // Every field of the post flies concurrently. Each send op keeps one
    // pack buffer per field slot so all packed planes stay live until
    // do_wait; the intra-rank legs deliver synchronously via the
    // zero-copy gather.
    for (std::size_t f = 0; f < fields.size(); ++f) {
      const ExchangeField& field = fields[f];
      EXASTP_CHECK_MSG(
          field.channel >= 0 && field.channel < kMaxExchangeChannels,
          "exchange channel out of range");
      for (const RecvOp& op : recvs_) {
        double* dst = shard_field(field, op.dst_shard);
        MPI_Request request;
        MPI_Irecv(dst + op.offset, static_cast<int>(op.count), MPI_DOUBLE,
                  op.peer, tag_of(field.channel, op.dst_shard, op.face),
                  MPI_COMM_WORLD, &request);
        requests_.push_back(request);
      }
      for (SendOp& op : sends_) {
        if (op.buffers.size() <= f) op.buffers.resize(f + 1);
        AlignedVector& buffer = op.buffers[f];
        pack(op, field, buffer);
        MPI_Request request;
        MPI_Isend(buffer.data(), static_cast<int>(buffer.size()), MPI_DOUBLE,
                  op.peer, tag_of(field.channel, op.dst_shard, op.face),
                  MPI_COMM_WORLD, &request);
        requests_.push_back(request);
      }
      local_.gather_all(field);
    }
    in_flight_ = true;
  }

  void do_wait() override {
    EXASTP_CHECK_MSG(in_flight_, "wait() without a posted exchange");
    MPI_Waitall(static_cast<int>(requests_.size()), requests_.data(),
                MPI_STATUSES_IGNORE);
    in_flight_ = false;
  }

  void do_sched_begin_step(
      const std::vector<std::vector<ExchangeField>>& fields) override {
    EXASTP_CHECK_MSG(fields_ == nullptr,
                     "a scheduled step is already in progress");
    fields_ = &fields;
    phases_ = static_cast<int>(fields.size());
    local_.begin_step(fields, /*latency_ns=*/0);
    const std::size_t shard_states = static_cast<std::size_t>(num_shards_) *
                                     static_cast<std::size_t>(phases_);
    remote_pending_.assign(shard_states, 0);
    opened_.assign(shard_states, 0);
    for (int p = 0; p < phases_; ++p) {
      if (fields[static_cast<std::size_t>(p)].empty()) continue;
      const int nf = static_cast<int>(fields[static_cast<std::size_t>(p)].size());
      for (const RecvOp& op : recvs_)
        remote_pending_[state_index(op.dst_shard, p)] += nf;
    }
    recv_requests_.clear();
    recv_meta_.clear();
    send_requests_.clear();
    sched_buffers_.clear();
  }

  void do_sched_open(int shard, int phase) override {
    local_.open(shard, phase);
    opened_[state_index(shard, phase)] = 1;
    const std::vector<ExchangeField>& fields = phase_fields(phase);
    if (fields.empty()) return;
    for (const RecvOp& op : recvs_) {
      if (op.dst_shard != shard) continue;
      for (const ExchangeField& field : fields) {
        double* dst = shard_field(field, op.dst_shard);
        MPI_Request request;
        MPI_Irecv(dst + op.offset, static_cast<int>(op.count), MPI_DOUBLE,
                  op.peer, tag_of(field.channel, op.dst_shard, op.face),
                  MPI_COMM_WORLD, &request);
        recv_requests_.push_back(request);
        recv_meta_.push_back(state_index(shard, phase));
      }
    }
  }

  void do_sched_capture(int shard, int phase) override {
    local_.capture(shard, phase);
    const std::vector<ExchangeField>& fields = phase_fields(phase);
    if (fields.empty()) return;
    // Eager sends: the bytes must leave now — the source shard keeps
    // computing into the same field — so each plane is packed into a
    // per-capture buffer that stays live until sched_end_step.
    for (SendOp& op : sends_) {
      if (op.src_shard != shard) continue;
      for (const ExchangeField& field : fields) {
        sched_buffers_.emplace_back();
        AlignedVector& buffer = sched_buffers_.back();
        pack(op, field, buffer);
        MPI_Request request;
        MPI_Isend(buffer.data(), static_cast<int>(buffer.size()), MPI_DOUBLE,
                  op.peer, tag_of(field.channel, op.dst_shard, op.face),
                  MPI_COMM_WORLD, &request);
        send_requests_.push_back(request);
      }
    }
  }

  bool do_sched_delivered(int shard, int phase) const override {
    if (phase_fields(phase).empty()) return true;
    return local_.delivered(shard, phase) &&
           remote_pending_[state_index(shard, phase)] == 0;
  }

  bool do_sched_any_pending() const override {
    if (local_.any_pending()) return true;
    for (std::size_t i = 0; i < remote_pending_.size(); ++i)
      if (opened_[i] != 0 && remote_pending_[i] > 0) return true;
    return false;
  }

  void do_sched_poll(bool block) override {
    // Opportunistically retire completed sends so their buffers can be
    // reasoned about (the actual frees happen at end_step).
    test_some(send_requests_, /*meta=*/nullptr, /*block=*/false);
    const bool progressed =
        test_some(recv_requests_, &recv_meta_, /*block=*/false);
    if (!block || progressed) return;
    EXASTP_CHECK_MSG(
        test_some(recv_requests_, &recv_meta_, /*block=*/true),
        "scheduled exchange deadlock: blocking poll with nothing in flight");
  }

  void do_sched_end_step() override {
    MPI_Waitall(static_cast<int>(send_requests_.size()),
                send_requests_.data(), MPI_STATUSES_IGNORE);
    local_.end_step();
    for (std::size_t i = 0; i < remote_pending_.size(); ++i)
      EXASTP_CHECK_MSG(remote_pending_[i] == 0,
                       "scheduled step ended with undelivered halos");
    fields_ = nullptr;
    recv_requests_.clear();
    recv_meta_.clear();
    send_requests_.clear();
    sched_buffers_.clear();
  }

 private:
  struct RecvOp {
    int peer = -1;
    int dst_shard = -1;
    int face = 0;            ///< dir * 2 + side of the receiving face
    std::size_t offset = 0;  ///< doubles into the destination shard's field
    std::size_t count = 0;   ///< doubles received
  };
  struct SendOp {
    int peer = -1;
    int src_shard = -1;
    int dst_shard = -1;
    int face = 0;
    std::vector<int> cells;  ///< pack order = the receiver's halo order
    std::vector<AlignedVector> buffers;  ///< lockstep: one buffer per field
  };

  int tag_of(int channel, int dst_shard, int face) const {
    return (channel * num_shards_ + dst_shard) * 6 + face;
  }
  std::size_t state_index(int shard, int phase) const {
    return static_cast<std::size_t>(shard) * static_cast<std::size_t>(phases_) +
           static_cast<std::size_t>(phase);
  }
  const std::vector<ExchangeField>& phase_fields(int phase) const {
    EXASTP_CHECK_MSG(fields_ != nullptr, "no scheduled step in progress");
    return (*fields_)[static_cast<std::size_t>(phase)];
  }
  static double* shard_field(const ExchangeField& field, int shard) {
    EXASTP_CHECK(shard >= 0 &&
                 shard < static_cast<int>(field.shard_fields.size()));
    double* data = field.shard_fields[static_cast<std::size_t>(shard)];
    EXASTP_CHECK_MSG(data != nullptr,
                     "the mpi backend needs this rank's shard fields");
    return data;
  }
  void pack(const SendOp& op, const ExchangeField& field,
            AlignedVector& buffer) const {
    const double* src = shard_field(field, op.src_shard);
    buffer.resize(op.cells.size() * cell_size_);
    double* out = buffer.data();
    for (const int cell : op.cells) {
      std::memcpy(out, src + static_cast<std::size_t>(cell) * cell_size_,
                  cell_size_ * sizeof(double));
      out += cell_size_;
    }
  }

  /// Testsome / Waitsome over `requests`; completed entries turn into
  /// MPI_REQUEST_NULL in place, and when `meta` is given the matching
  /// remote_pending_ slots are decremented. Returns whether any request
  /// completed (false when none are active).
  bool test_some(std::vector<MPI_Request>& requests,
                 const std::vector<std::size_t>* meta, bool block) {
    if (requests.empty()) return false;
    indices_.resize(requests.size());
    int outcount = 0;
    if (block) {
      MPI_Waitsome(static_cast<int>(requests.size()), requests.data(),
                   &outcount, indices_.data(), MPI_STATUSES_IGNORE);
    } else {
      MPI_Testsome(static_cast<int>(requests.size()), requests.data(),
                   &outcount, indices_.data(), MPI_STATUSES_IGNORE);
    }
    if (outcount == MPI_UNDEFINED || outcount <= 0) return false;
    if (meta != nullptr)
      for (int i = 0; i < outcount; ++i)
        --remote_pending_[(*meta)[static_cast<std::size_t>(
            indices_[static_cast<std::size_t>(i)])]];
    return true;
  }

  std::size_t cell_size_ = 0;
  int rank_ = 0;
  int num_shards_ = 0;
  LocalLinkSet local_;
  std::vector<RecvOp> recvs_;
  std::vector<SendOp> sends_;
  std::vector<MPI_Request> requests_;  ///< lockstep in-flight requests
  bool in_flight_ = false;

  // Scheduled-step state.
  const std::vector<std::vector<ExchangeField>>* fields_ = nullptr;
  int phases_ = 0;
  std::vector<int> remote_pending_;  ///< (shard, phase) -> recvs outstanding
  std::vector<char> opened_;
  std::vector<MPI_Request> recv_requests_;
  std::vector<std::size_t> recv_meta_;  ///< request -> (shard, phase) slot
  std::vector<MPI_Request> send_requests_;
  std::vector<AlignedVector> sched_buffers_;  ///< live until end_step
  std::vector<int> indices_;
};

}  // namespace

std::unique_ptr<ExchangeBackend> make_mpi_exchange(const Partition& partition,
                                                   std::size_t cell_size) {
  return std::make_unique<HybridExchangeBackend>(partition, cell_size);
}

}  // namespace exastp

#else  // !EXASTP_WITH_MPI

namespace exastp {

std::unique_ptr<ExchangeBackend> make_mpi_exchange(
    const Partition& /*partition*/, std::size_t /*cell_size*/) {
  EXASTP_FAIL(
      "this build has no MPI support — reconfigure with "
      "-DEXASTP_WITH_MPI=ON to use backend=mpi");
}

}  // namespace exastp

#endif
