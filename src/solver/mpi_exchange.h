// Distributed exchange backend: hybrid intra-rank gather + inter-rank
// MPI_Isend/MPI_Irecv, driven by the Partition's rank map
// (Partition::assign_ranks). Rank r materializes every shard in
// shards_of_rank(r); links whose two endpoints live on the same rank move
// through the zero-copy LocalLinkSet gather of solver/halo_exchange.h, and
// only links that actually cross a rank boundary become MPI messages —
// over-decomposed runs (shards_per_rank > 1) pay the wire for the few true
// rank-cut faces, not for every shard face.
//
// Lockstep post() first posts one MPI_Irecv per cross-rank plan of this
// rank's shards — straight into the destination halo block, which is
// contiguous and plan-ordered, so the receive side needs no unpack copy —
// then packs and MPI_Isends the outgoing planes, then gathers the local
// legs. The message tag is (channel * num_shards + dst_shard) * 6 +
// (dir, side): a (dst_shard, dir, side) face has exactly one source shard,
// so the tag uniquely names a link per channel even when one rank pair
// carries several shard pairs. wait() is MPI_Waitall.
//
// The backend also implements the dependency-scheduled protocol
// (exchange_backend.h): receives post at sched_open, sends pack and fly
// eagerly at sched_capture, and sched_poll progresses with
// MPI_Testsome / MPI_Waitsome. Per (link, channel) the same tag carries one
// message per exchanging phase; MPI's non-overtaking rule pairs the
// sequence in phase order on both sides.
//
// The bytes a halo slot receives are exactly the bytes the in-process
// backend would have gathered, so backend=mpi runs are bitwise-identical
// to backend=inprocess (and to the monolithic solver) — tests/test_mpi.cpp
// proves it under mpirun, including over-decomposed rank maps.
//
// Only the factory is exposed here; the backend class lives in the
// MPI-gated translation unit. Builds without -DEXASTP_WITH_MPI=ON fail
// with a clear message instead of linking against a missing MPI.
#pragma once

#include <cstddef>
#include <memory>

#include "exastp/mesh/partition.h"
#include "exastp/solver/exchange_backend.h"

namespace exastp {

std::unique_ptr<ExchangeBackend> make_mpi_exchange(const Partition& partition,
                                                   std::size_t cell_size);

}  // namespace exastp
