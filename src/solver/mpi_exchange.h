// Distributed exchange backend: MPI_Isend/MPI_Irecv of the plan-ordered
// halo buffers, one rank per shard (rank r drives shard r of the same
// Partition on every rank).
//
// post() first posts one MPI_Irecv per HaloPlan of this rank's shard —
// straight into the destination halo block, which is contiguous and
// plan-ordered, so the receive side needs no unpack copy — then packs and
// MPI_Isends the outgoing plane of every plan that names this rank as the
// source. The message tag is the receiving face's (dir, side) slot, which
// uniquely identifies a message between a shard pair (two shards can
// neighbour on at most one face per (dir, side), including the periodic
// wrap). wait() is MPI_Waitall over every posted request.
//
// The bytes a halo slot receives are exactly the bytes the in-process
// backend would have gathered, so backend=mpi runs are bitwise-identical
// to backend=inprocess (and to the monolithic solver) — tests/test_mpi.cpp
// proves it under mpirun.
//
// Only the factory is exposed here; the backend class lives in the
// MPI-gated translation unit. Builds without -DEXASTP_WITH_MPI=ON fail
// with a clear message instead of linking against a missing MPI.
#pragma once

#include <cstddef>
#include <memory>

#include "exastp/mesh/partition.h"
#include "exastp/solver/exchange_backend.h"

namespace exastp {

std::unique_ptr<ExchangeBackend> make_mpi_exchange(const Partition& partition,
                                                   std::size_t cell_size);

}  // namespace exastp
