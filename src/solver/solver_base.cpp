#include "exastp/solver/solver_base.h"

#include "exastp/basis/lagrange.h"
#include "exastp/common/check.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {

void SolverBase::add_point_source(const MeshPointSource& /*source*/) {
  EXASTP_FAIL("this stepper (" + stepper_name() +
              ") does not support point sources");
}

void SolverBase::set_thread_team(const ParallelFor& team) { par_ = team; }

void SolverBase::step_phase(int phase, double dt) {
  EXASTP_CHECK_MSG(phase == 0, "this stepper has a single step phase");
  step(dt);
}

void SolverBase::step_phase_interior(int /*phase*/, double /*dt*/) {}

void SolverBase::step_phase_boundary(int phase, double dt) {
  step_phase(phase, dt);
}

double* SolverBase::step_phase_halo(int /*phase*/) { return nullptr; }

std::vector<SolverBase::PhaseHaloField> SolverBase::step_phase_halo_fields(
    int phase) {
  double* field = step_phase_halo(phase);
  if (field == nullptr) return {};
  return {PhaseHaloField{field, 0}};
}

void SolverBase::enable_lts(const std::vector<int>& /*cluster_of_cell*/,
                            int /*num_clusters*/) {
  EXASTP_FAIL("this stepper (" + stepper_name() +
              ") does not support clustered local time stepping (lts=on "
              "needs stepper=ader)");
}

const SolverBase& SolverBase::shard(int s) const {
  EXASTP_CHECK_MSG(s == 0, "monolithic solvers have exactly one shard");
  return *this;
}

void SolverBase::add_observer(Observer* observer) {
  EXASTP_CHECK_MSG(observer != nullptr, "observer must not be null");
  for (const AttachedObserver& attached : observers_)
    EXASTP_CHECK_MSG(attached.observer != observer,
                     "observer is already attached");
  observers_.push_back({observer, false});
}

int SolverBase::run_until(double t_end, double cfl) {
  for (AttachedObserver& attached : observers_) {
    if (attached.started) continue;
    attached.observer->on_start(*this);
    attached.started = true;
  }
  int steps = 0;
  while (time() < t_end - 1e-14) {
    double dt;
    {
      ScopedSpan span(SpanId::kStableDt);
      dt = plan_step(stable_dt(cfl));
    }
    if (time() + dt > t_end) dt = t_end - time();
    {
      ScopedSpan span(SpanId::kStep, /*arg=*/steps_taken_ + 1);
      step(dt);
    }
    ++steps;
    ++steps_taken_;
    ScopedSpan span(SpanId::kObservers);
    for (AttachedObserver& attached : observers_)
      attached.observer->on_step(*this, steps_taken_);
  }
  for (AttachedObserver& attached : observers_)
    attached.observer->on_finish(*this);
  return steps;
}

void SolverBase::prepare_point_source(const MeshPointSource& source,
                                      int vars) {
  EXASTP_CHECK_MSG(source.wavelet != nullptr, "source needs a wavelet");
  EXASTP_CHECK_MSG(source.quantity >= 0 && source.quantity < vars,
                   "source quantity must be an evolved variable");
  PreparedSource prepared;
  std::array<double, 3> xi{};
  prepared.cell = grid().locate(source.position, &xi);
  for (const auto& existing : sources_)
    EXASTP_CHECK_MSG(existing.cell != prepared.cell,
                     "only one point source per cell is supported");
  prepared.source = source;
  prepared.psi = project_point_source(basis(), xi, grid().cell_volume());
  sources_.push_back(std::move(prepared));
}

double SolverBase::sample(const std::array<double, 3>& x, int quantity) const {
  std::array<double, 3> xi{};
  const int cell = grid().locate(x, &xi);
  const double* qc = cell_dofs(cell);
  const AosLayout& aos = layout();
  const BasisTables& tables = basis();
  const int n = aos.n;
  double value = 0.0;
  for (int k3 = 0; k3 < n; ++k3) {
    const double p3 = lagrange_value(tables.nodes, k3, xi[2]);
    for (int k2 = 0; k2 < n; ++k2) {
      const double p23 = p3 * lagrange_value(tables.nodes, k2, xi[1]);
      for (int k1 = 0; k1 < n; ++k1)
        value += p23 * lagrange_value(tables.nodes, k1, xi[0]) *
                 qc[aos.idx(k3, k2, k1, quantity)];
    }
  }
  return value;
}

}  // namespace exastp
