// Halo exchange over contiguous per-face DOF buffers.
//
// The corrector (ADER) and the stage operator (RK) read the face-adjacent
// neighbour cell's full DOF tensor. Under domain decomposition those
// neighbours live in other shards, so before the phase that reads them the
// engine refreshes every shard's one-cell halo ring:
//
//   pack    copy each HaloPlan's source cells (a face plane, strided in
//           the source shard's storage) into one contiguous send buffer;
//   swap    hand the send buffer to the receiving side — an in-process
//           memcpy today. The buffer format (plan-ordered planes of
//           cell_size-double tensors) is the MPI seam: swap becomes
//           MPI_Isend/Irecv of the same bytes, nothing else changes;
//   unpack  copy the received plane into the destination shard's halo
//           block (contiguous by construction, mesh/grid.h halo order).
//
// The exchange is deterministic: plans are walked in a fixed order and
// every halo slot is written by exactly one plan, so sharded stepping
// stays bitwise-reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "exastp/common/aligned.h"
#include "exastp/mesh/partition.h"

namespace exastp {

class HaloExchange {
 public:
  /// Builds the buffer set for `partition` with `cell_size` doubles per
  /// cell DOF tensor (the solver layout's padded size).
  HaloExchange(const Partition& partition, std::size_t cell_size);

  /// Refreshes every shard's halo ring of one logical field.
  /// `shard_fields[s]` is the base of shard s's DOF array — owned cells
  /// first, halo blocks appended (the layout both Grid and the solvers
  /// use). Reads owned cells, writes only halo slots.
  void exchange(const std::vector<double*>& shard_fields);

  /// Payload bytes moved per exchange() call (send side), for benches.
  std::size_t bytes_per_exchange() const { return bytes_per_exchange_; }

 private:
  struct Link {
    int dst_shard = -1;
    int src_shard = -1;
    std::vector<int> src_cells;   ///< pack order = halo slot order
    std::size_t dst_offset = 0;   ///< doubles into the destination array
    AlignedVector send, recv;     ///< per-face contiguous DOF buffers
  };

  std::size_t cell_size_ = 0;
  std::size_t bytes_per_exchange_ = 0;
  std::vector<Link> links_;
};

}  // namespace exastp
