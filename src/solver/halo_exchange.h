// In-process exchange: shards living in this process refresh their halo
// rings by a zero-copy gather.
//
// The destination halo block is contiguous and ordered exactly like the
// HaloPlan's packed plane (mesh/grid.h halo order), so the PR-4
// pack -> swap -> unpack chain of three memcpys collapses to a single
// strided gather per link: each source cell's tensor is copied straight
// into its halo slot in the receiving shard's array. copied bytes ==
// payload bytes (it used to be 3x the payload).
//
// Two backends share the machinery through LocalLinkSet: InProcessExchange
// (every shard local — the backend=inprocess path) and the hybrid MPI
// backend's intra-rank legs (solver/mpi_exchange.cpp keeps only the links
// whose both endpoints live on this rank and moves the rest over MPI).
//
// Besides the lockstep post/wait pair, LocalLinkSet implements the
// dependency-scheduled protocol (exchange_backend.h): at capture time a
// link delivers zero-copy when its receiver has already opened the phase,
// and otherwise packs the plane into a per-(link, phase) staging buffer —
// the source keeps computing into the same field, so the bytes must be
// taken at capture. Staged planes land when the receiver opens.
//
// InProcessExchange can additionally simulate cross-rank latency: links
// whose endpoints map to different ranks of the Partition's rank map
// (Partition::assign_ranks) deliver only after a configurable delay on the
// steady clock. The delay postpones *when* bytes land, never *what* they
// are, so latency-injected runs stay bitwise-identical — benches and tests
// use this to measure and exercise the scheduler's latency hiding without
// a real multi-rank launch.
//
// The exchange is deterministic: links are walked in a fixed order and
// every halo slot is written by exactly one plan, so sharded stepping
// stays bitwise-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exastp/common/aligned.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/exchange_backend.h"

namespace exastp {

/// The intra-process link set: one link per HaloPlan whose source and
/// destination shards are both materialized here, plus the staging state
/// of the scheduled protocol. Shared by InProcessExchange and the hybrid
/// MPI backend's intra-rank legs.
class LocalLinkSet {
 public:
  /// Builds the links of `partition` with `cell_size` doubles per cell.
  /// `only_rank >= 0` keeps only links whose BOTH endpoints live on that
  /// rank of the partition's rank map; -1 keeps every link. Each link
  /// remembers whether its endpoints sit on different ranks (the
  /// simulated-latency predicate; always false under only_rank >= 0).
  LocalLinkSet(const Partition& partition, std::size_t cell_size,
               int only_rank);

  /// Lockstep delivery of one field over every link — the zero-copy
  /// gather. Shard entries both endpoints of some link name must be
  /// non-null.
  void gather_all(const ExchangeField& field) const;

  // Scheduled protocol; mirrors the ExchangeBackend sched_* contract.
  // `latency_ns > 0` delays cross-rank link deliveries by that much on
  // the steady clock (begin of a step's capture -> earliest delivery).
  void begin_step(const std::vector<std::vector<ExchangeField>>& fields,
                  std::int64_t latency_ns);
  void capture(int shard, int phase);
  void open(int shard, int phase);
  bool delivered(int shard, int phase) const;
  bool is_open(int shard, int phase) const;
  bool any_pending() const;
  /// Delivers every staged plane whose receiver is open and whose latency
  /// deadline has passed. `block` sleeps until the earliest such deadline
  /// when nothing is deliverable right now (fails loudly if nothing is in
  /// flight at all — that is a scheduler deadlock).
  void poll(bool block);
  void end_step();

  std::size_t payload_bytes() const { return payload_bytes_; }
  int num_links() const { return static_cast<int>(links_.size()); }

 private:
  struct Link {
    int dst_shard = -1;
    int src_shard = -1;
    std::vector<int> src_cells;  ///< gather order = halo slot order
    std::size_t dst_offset = 0;  ///< doubles into the destination array
    bool cross_rank = false;     ///< endpoints on different partition ranks
  };

  bool phase_has_fields(int phase) const {
    return !(*fields_)[static_cast<std::size_t>(phase)].empty();
  }
  std::size_t link_state_index(int link, int phase) const {
    return static_cast<std::size_t>(link) * static_cast<std::size_t>(phases_) +
           static_cast<std::size_t>(phase);
  }
  std::size_t shard_state_index(int shard, int phase) const {
    return static_cast<std::size_t>(shard) *
               static_cast<std::size_t>(phases_) +
           static_cast<std::size_t>(phase);
  }
  void stage(int link, int phase);
  void deliver_direct(int link, int phase);
  void deliver_staged(int link, int phase);

  std::size_t cell_size_ = 0;
  int num_shards_ = 0;
  std::vector<Link> links_;
  std::size_t payload_bytes_ = 0;

  // Per-step scheduled state. Link state is flat (link, phase)-indexed;
  // shard state (open flag, undelivered incoming count) is (shard, phase).
  const std::vector<std::vector<ExchangeField>>* fields_ = nullptr;
  int phases_ = 0;
  std::int64_t latency_ns_ = 0;
  std::vector<char> open_;
  std::vector<char> captured_;
  std::vector<char> done_;
  std::vector<std::int64_t> deadline_ns_;      ///< steady clock; 0 = none
  std::vector<AlignedVector> staged_;          ///< lazily sized pack buffers
  std::vector<int> pending_;                   ///< undelivered incoming links
};

class InProcessExchange final : public ExchangeBackend {
 public:
  /// Builds the link set for `partition` with `cell_size` doubles per cell
  /// DOF tensor (the solver layout's padded size).
  /// `simulated_cross_rank_latency_seconds > 0` delays every link whose
  /// endpoints the partition's rank map places on different ranks — a
  /// bench/test knob modelling inter-rank wire time inside one process
  /// (bitwise-neutral; see the file comment).
  InProcessExchange(const Partition& partition, std::size_t cell_size,
                    double simulated_cross_rank_latency_seconds = 0.0);

  std::string name() const override { return "inprocess"; }
  bool supports_scheduled() const override { return true; }

 protected:
  /// Delivers every shard's halo ring synchronously, one field after
  /// another. All shard entries of every field must be non-null. Reads
  /// owned cells, writes only halo slots. The post/wait pairing is
  /// enforced even though delivery is synchronous, so a driver that would
  /// deadlock or corrupt halos under the MPI backend fails the local test
  /// suite too. With simulated latency, wait() sleeps out the remainder
  /// of the cross-rank delay — the gathered bytes are unaffected (the
  /// in-flight contract forbids writing the owned cells meanwhile), so
  /// lockstep latency runs pay the stall without changing results.
  void do_post(const std::vector<ExchangeField>& fields) override;
  void do_wait() override;

  void do_sched_begin_step(
      const std::vector<std::vector<ExchangeField>>& fields) override;
  void do_sched_capture(int shard, int phase) override;
  void do_sched_open(int shard, int phase) override;
  bool do_sched_delivered(int shard, int phase) const override;
  bool do_sched_any_pending() const override;
  void do_sched_poll(bool block) override;
  void do_sched_end_step() override;

 private:
  LocalLinkSet links_;
  std::int64_t latency_ns_ = 0;
  std::int64_t lockstep_deadline_ns_ = 0;  ///< steady clock; 0 = none
  bool in_flight_ = false;
};

}  // namespace exastp
