// In-process exchange backend: every shard lives in this process, so the
// halo refresh is a zero-copy gather.
//
// The destination halo block is contiguous and ordered exactly like the
// HaloPlan's packed plane (mesh/grid.h halo order), so the PR-4
// pack -> swap -> unpack chain of three memcpys collapses to a single
// strided gather per link: each source cell's tensor is copied straight
// into its halo slot in the receiving shard's array. copied bytes ==
// payload bytes (it used to be 3x the payload).
//
// The split-phase protocol is degenerate here — post() delivers
// synchronously and wait() is a no-op — but the driver runs the same
// post / interior / wait / boundary schedule as the MPI backend, so the
// overlapped path is exercised (and bitwise-verified) on every local run.
//
// The exchange is deterministic: links are walked in a fixed order and
// every halo slot is written by exactly one plan, so sharded stepping
// stays bitwise-reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "exastp/mesh/partition.h"
#include "exastp/solver/exchange_backend.h"

namespace exastp {

class InProcessExchange final : public ExchangeBackend {
 public:
  /// Builds the link set for `partition` with `cell_size` doubles per cell
  /// DOF tensor (the solver layout's padded size).
  InProcessExchange(const Partition& partition, std::size_t cell_size);

  std::string name() const override { return "inprocess"; }

 protected:
  /// Delivers every shard's halo ring synchronously, one field after
  /// another. All shard entries of every field must be non-null. Reads
  /// owned cells, writes only halo slots. The post/wait pairing is
  /// enforced even though delivery is synchronous, so a driver that would
  /// deadlock or corrupt halos under the MPI backend fails the local test
  /// suite too.
  void do_post(const std::vector<ExchangeField>& fields) override;
  void do_wait() override;

 private:
  struct Link {
    int dst_shard = -1;
    int src_shard = -1;
    std::vector<int> src_cells;   ///< gather order = halo slot order
    std::size_t dst_offset = 0;   ///< doubles into the destination array
  };

  std::size_t cell_size_ = 0;
  std::vector<Link> links_;
  bool in_flight_ = false;
};

}  // namespace exastp
