// Clustered local time stepping (docs/lts.md).
//
// Under test:
//   * the lts= / lts_clusters= / lts_rate= / balance= config keys: parsing,
//     validation, canonical-string membership (the schedule keys split the
//     memoization key, the balance table path does not),
//   * rate-cluster binning from local wave speeds: the floor(log2) rule,
//     the cluster cap, the +-1 face-neighbour smoothing and the level
//     compaction of compute_lts_clusters,
//   * AderDgSolver::enable_lts input validation (coverage, range, the +-1
//     face invariant a hand-built assignment could violate),
//   * the one-cluster degenerate case: lts=on with a single cluster is
//     bitwise-identical to lts=off across the full threads x shards
//     acceptance matrix (carries the threaded+sharded labels),
//   * multi-cluster accuracy: a forced three-cluster schedule on the
//     analytic acoustic plane wave stays within a fraction of the
//     discretization error of the matching global run,
//   * multi-cluster decomposition invariance: the heterogeneous LOH1
//     stiff-layer clustering produces bitwise-identical results for every
//     tested threads x shards combination,
//   * weighted partitioning: Partition::weighted_split_sizes reproduces the
//     unweighted split for uniform weights and shifts cuts toward heavy
//     planes otherwise,
//   * the BalanceTable: substep-count weighting, measured-cost overrides,
//     text and file round trips (the balance=PATH format).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exastp/engine/lts_clusters.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/simulation.h"
#include "exastp/mesh/balance_table.h"
#include "exastp/mesh/partition.h"
#include "exastp/pde/acoustic.h"
#include "exastp/solver/ader_dg_solver.h"

namespace exastp {
namespace {

// ---------------------------------------------------------------------------
// Config keys.

TEST(LtsConfig, KeysParseAndValidate) {
  SimulationConfig config = parse_simulation_args(
      {"scenario=planewave", "lts=on", "lts_clusters=3", "lts_rate=2",
       "balance=bal.txt"});
  EXPECT_TRUE(config.lts);
  EXPECT_EQ(config.lts_clusters, 3);
  EXPECT_EQ(config.lts_rate, 2);
  EXPECT_EQ(config.balance, "bal.txt");

  config = parse_simulation_args({"scenario=planewave", "lts=off",
                                  "lts_clusters=auto"});
  EXPECT_FALSE(config.lts);
  EXPECT_EQ(config.lts_clusters, 0);

  EXPECT_THROW(parse_simulation_args({"lts=yes"}), std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"lts_clusters=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"lts_rate=3"}), std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"balance="}), std::invalid_argument);
}

TEST(LtsConfig, CanonicalStringCarriesScheduleNotBalance) {
  SimulationConfig off = parse_simulation_args({"scenario=planewave"});
  SimulationConfig on = parse_simulation_args(
      {"scenario=planewave", "lts=on", "lts_clusters=2"});
  EXPECT_NE(canonical_config_string(off), canonical_config_string(on));
  EXPECT_NE(canonical_config_string(on).find("|lts=on|"), std::string::npos);

  // balance= is pure performance state (every decomposition is bitwise
  // identical), so it must not split the memoization key.
  SimulationConfig balanced = on;
  balanced.balance = "some_table.txt";
  EXPECT_EQ(canonical_config_string(on), canonical_config_string(balanced));
}

TEST(LtsConfig, RejectsRk4) {
  EXPECT_THROW(Simulation::from_args({"scenario=planewave", "stepper=rk4",
                                      "lts=on", "order=3", "t_end=0.01"}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Rate-cluster binning.

/// Acoustic initial condition with a piecewise-constant sound speed:
/// `fast` where x < split, `slow` elsewhere.
InitialCondition two_speed_init(double split, double fast, double slow) {
  return [split, fast, slow](const std::array<double, 3>& x, double* q) {
    for (int s = 0; s < AcousticPde::kQuants; ++s) q[s] = 0.0;
    q[AcousticPde::kRho] = 1.0;
    q[AcousticPde::kC] = x[0] < split ? fast : slow;
  };
}

TEST(LtsClusters, BinsBySpeedAndSmoothsFaceGaps) {
  GridSpec spec;
  spec.cells = {8, 2, 2};
  spec.extent = {8.0, 2.0, 2.0};
  const auto pde = find_pde("acoustic")->runtime();
  // Speed ratio 4 puts the slow half at floor(log2(4)) = 2; the smoothing
  // pass must lower the slow cells that touch the fast band (directly at
  // x = 2 and through the periodic wrap at x = 7) to level 1.
  const LtsClustering clustering = compute_lts_clusters(
      spec, *pde, two_speed_init(2.0, 4.0, 1.0), 3,
      NodeFamily::kGaussLegendre, 0);
  EXPECT_EQ(clustering.num_clusters, 3);
  const Grid grid(spec);
  const int expected_by_x[8] = {0, 0, 1, 2, 2, 2, 2, 1};
  for (int c = 0; c < grid.num_cells(); ++c) {
    EXPECT_EQ(clustering.cluster[c], expected_by_x[grid.coords(c)[0]])
        << "cell " << c;
    EXPECT_DOUBLE_EQ(clustering.cell_speed[c],
                     grid.coords(c)[0] < 2 ? 4.0 : 1.0);
  }
}

TEST(LtsClusters, CapLimitsLevelsAndUniformCollapses) {
  GridSpec spec;
  spec.cells = {8, 2, 2};
  spec.extent = {8.0, 2.0, 2.0};
  const auto pde = find_pde("acoustic")->runtime();
  const LtsClustering capped = compute_lts_clusters(
      spec, *pde, two_speed_init(2.0, 4.0, 1.0), 3,
      NodeFamily::kGaussLegendre, 2);
  EXPECT_EQ(capped.num_clusters, 2);
  for (const int k : capped.cluster) EXPECT_LE(k, 1);

  const LtsClustering uniform = compute_lts_clusters(
      spec, *pde, two_speed_init(2.0, 3.0, 3.0), 3,
      NodeFamily::kGaussLegendre, 0);
  EXPECT_EQ(uniform.num_clusters, 1);
  for (const int k : uniform.cluster) EXPECT_EQ(k, 0);

  // A speed ratio below the rate (2) cannot justify a second cluster.
  const LtsClustering mild = compute_lts_clusters(
      spec, *pde, two_speed_init(2.0, 3.0, 1.7), 3,
      NodeFamily::kGaussLegendre, 0);
  EXPECT_EQ(mild.num_clusters, 1);
}

TEST(LtsClusters, CompactionRemovesEmptyLevels) {
  GridSpec spec;
  spec.cells = {12, 2, 2};
  spec.extent = {12.0, 2.0, 2.0};
  const auto pde = find_pde("acoustic")->runtime();
  // Ratio 8 = three raw levels (0 and 3) with 1..2 only created by the
  // smoothing ramp; the result must still be a contiguous 0..K-1 range.
  const LtsClustering clustering = compute_lts_clusters(
      spec, *pde, two_speed_init(3.0, 8.0, 1.0), 3,
      NodeFamily::kGaussLegendre, 0);
  std::vector<int> seen(static_cast<std::size_t>(clustering.num_clusters), 0);
  for (const int k : clustering.cluster) {
    ASSERT_GE(k, 0);
    ASSERT_LT(k, clustering.num_clusters);
    seen[static_cast<std::size_t>(k)] = 1;
  }
  for (const int used : seen) EXPECT_EQ(used, 1);
}

// ---------------------------------------------------------------------------
// enable_lts validation.

TEST(LtsSolver, EnableLtsRejectsBadAssignments) {
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=4x4x4", "t_end=0.05"});
  const int cells = sim.solver().grid().num_cells();
  EXPECT_THROW(sim.solver().enable_lts(std::vector<int>(cells - 1, 0), 1),
               std::invalid_argument);
  EXPECT_THROW(sim.solver().enable_lts(std::vector<int>(cells, 1), 1),
               std::invalid_argument);
  // A 0 -> 2 face jump violates the +-1 invariant the Taylor coupling
  // assumes.
  std::vector<int> jump(static_cast<std::size_t>(cells), 0);
  jump[1] = 2;
  EXPECT_THROW(sim.solver().enable_lts(jump, 3), std::invalid_argument);
}

TEST(LtsSolver, Rk4SolverRejectsEnableLts) {
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "stepper=rk4", "order=3", "cells=4x4x4",
       "t_end=0.05"});
  const int cells = sim.solver().grid().num_cells();
  EXPECT_THROW(sim.solver().enable_lts(std::vector<int>(cells, 0), 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// One-cluster bitwise equivalence: lts=on with a single cluster must run
// the byte-for-byte global schedule for every threads x shards combination.

double max_dof_difference(const SolverBase& a, const SolverBase& b) {
  EXPECT_EQ(a.grid().num_cells(), b.grid().num_cells());
  EXPECT_EQ(a.layout().size(), b.layout().size());
  double worst = 0.0;
  for (int c = 0; c < a.grid().num_cells(); ++c) {
    const double* qa = a.cell_dofs(c);
    const double* qb = b.cell_dofs(c);
    for (std::size_t i = 0; i < a.layout().size(); ++i)
      worst = std::max(worst, std::abs(qa[i] - qb[i]));
  }
  return worst;
}

Simulation run_with(const std::vector<std::string>& args,
                    const std::vector<std::string>& extra) {
  std::vector<std::string> full = args;
  full.insert(full.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

TEST(LtsSolver, OneClusterBitwiseMatchesGlobalStepping) {
  const std::vector<std::string> base{"scenario=planewave", "order=4",
                                      "cells=4x4x2", "t_end=0.1"};
  Simulation global = run_with(base, {"shards=1", "threads=1"});
  EXPECT_EQ(global.solver().lts_num_clusters(), 1);
  for (const std::string& shards : {"1", "2x2x1"}) {
    for (const int threads : {1, 4}) {
      Simulation lts = run_with(
          base, {"lts=on", "lts_clusters=1", "shards=" + shards,
                 "threads=" + std::to_string(threads)});
      EXPECT_EQ(lts.solver().lts_num_clusters(), 1);
      EXPECT_EQ(lts.solver().time(), global.solver().time());
      EXPECT_EQ(max_dof_difference(global.solver(), lts.solver()), 0.0)
          << "lts=on shards=" << shards << " threads=" << threads
          << " diverged from the global-stepping run";
      EXPECT_EQ(lts.l2_error(), global.l2_error())
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-cluster accuracy on the analytic plane wave.

TEST(LtsSolver, ForcedMultiClusterTracksGlobalOnPlaneWave) {
  // The plane wave is homogeneous, so the schedule is forced by hand:
  // x-bands 0|1|2|2|2|2|1|0 satisfy the +-1 invariant (including the
  // periodic wrap). The coarsest cluster quadruples its dt, so both runs
  // use cfl/4 — the LTS run's cluster-0 dt then equals the global run's
  // dt and the only difference is the coarse clusters' time resolution.
  const std::vector<std::string> base{"scenario=planewave", "order=3",
                                      "cells=8x4x4", "t_end=0.1",
                                      "cfl=0.1"};
  Simulation global = run_with(base, {});

  Simulation lts = Simulation::from_args(base);
  const Grid& grid = lts.solver().grid();
  const int band_by_x[8] = {0, 1, 2, 2, 2, 2, 1, 0};
  std::vector<int> assignment(static_cast<std::size_t>(grid.num_cells()));
  for (int c = 0; c < grid.num_cells(); ++c)
    assignment[static_cast<std::size_t>(c)] = band_by_x[grid.coords(c)[0]];
  lts.solver().enable_lts(assignment, 3);
  lts.run();

  EXPECT_EQ(lts.solver().lts_num_clusters(), 3);
  const auto stats = lts.solver().lts_cluster_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].cells, 2 * 16);
  EXPECT_EQ(stats[1].cells, 2 * 16);
  EXPECT_EQ(stats[2].cells, 4 * 16);
  // Per macro step a cluster-k cell runs 2^(K-1-k) substeps: the per-cell
  // substep counts must reflect the 4:2:1 schedule exactly.
  const long long per_cell0 = stats[0].cell_substeps / stats[0].cells;
  const long long per_cell1 = stats[1].cell_substeps / stats[1].cells;
  const long long per_cell2 = stats[2].cell_substeps / stats[2].cells;
  EXPECT_EQ(per_cell0, 4 * per_cell2);
  EXPECT_EQ(per_cell1, 2 * per_cell2);
  EXPECT_EQ(stats[0].cell_substeps % stats[0].cells, 0);

  // Both runs land on t_end via the tail clamp; the clamp computes
  // t + (t_end - t) from different step histories, so the final times
  // agree to the run loop's landing tolerance, not bitwise.
  EXPECT_NEAR(lts.solver().time(), global.solver().time(), 1e-13);
  // The Taylor-recombined coupling keeps the LTS run within the
  // discretization error (~1e-3 L2 here, unit-amplitude wave); the runs
  // must differ (the schedule is not the global one) but only at
  // coupling-error scale, well below the solution amplitude.
  const double diff = max_dof_difference(global.solver(), lts.solver());
  EXPECT_GT(diff, 0.0);
  EXPECT_LT(diff, global.l2_error());
  EXPECT_NEAR(lts.l2_error(), global.l2_error(),
              0.1 * global.l2_error());
}

// ---------------------------------------------------------------------------
// Multi-cluster decomposition invariance on the heterogeneous stiff layer.

TEST(LtsSolver, MultiClusterShardThreadBitwiseInvariance) {
  // LOH1 with a softened layer: speed contrast 6.0/1.5 = 4 bins the layer
  // two levels below the halfspace, so the engine derives a genuine
  // multi-cluster schedule — the invariance below then covers the
  // channel-tagged halo exchange of qavg, qavg_half and qavg_sum.
  const std::vector<std::string> base{
      "scenario=loh1",           "order=3",
      "cells=6x6x6",             "t_end=0.15",
      "lts=on",                  "scenario.layer_cp=1.5",
      "scenario.layer_cs=0.75"};
  Simulation mono = run_with(base, {"shards=1", "threads=1"});
  EXPECT_GT(mono.solver().lts_num_clusters(), 1);
  const std::vector<std::pair<std::string, int>> cases{
      {"1", 4}, {"2x2x1", 1}, {"2x2x1", 4}};
  for (const auto& [shards, threads] : cases) {
    Simulation other = run_with(
        base, {"shards=" + shards, "threads=" + std::to_string(threads)});
    EXPECT_EQ(other.solver().lts_num_clusters(),
              mono.solver().lts_num_clusters());
    EXPECT_EQ(mono.solver().time(), other.solver().time());
    EXPECT_EQ(max_dof_difference(mono.solver(), other.solver()), 0.0)
        << "shards=" << shards << " threads=" << threads
        << " diverged from the monolithic multi-cluster run";
  }
}

// ---------------------------------------------------------------------------
// Weighted partitioning.

TEST(WeightedPartition, UniformWeightsReproduceUnweightedSplit) {
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {5, 2}, {7, 3}, {8, 4}, {9, 2}, {12, 5}}) {
    const std::vector<double> uniform(static_cast<std::size_t>(n), 1.0);
    EXPECT_EQ(Partition::weighted_split_sizes(uniform, k),
              Partition::split_sizes(n, k))
        << n << " cells over " << k << " blocks";
  }
}

TEST(WeightedPartition, CutsShiftTowardHeavyPlanes) {
  // Six planes, the first two 4x heavier: {2,4} is the unique min-max
  // split (heaviest block 8; every other cut point gives >= 9), so the
  // cuts must shift toward the heavy planes instead of halving the count.
  const std::vector<double> weights{4.0, 4.0, 1.0, 1.0, 1.0, 1.0};
  const std::vector<int> sizes = Partition::weighted_split_sizes(weights, 2);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 4);

  // Degenerate inputs throw rather than producing empty blocks.
  EXPECT_THROW(Partition::weighted_split_sizes({1.0}, 2),
               std::invalid_argument);
}

TEST(WeightedPartition, WeightedConstructorBalancesMeasuredWork) {
  GridSpec spec;
  spec.cells = {8, 2, 2};
  spec.extent = {8.0, 2.0, 2.0};
  // x < 2 runs 4x substeps: per-cell weights 4,4,1,1,1,1,1,1 along x. The
  // balanced 2-shard split cuts at x = 2 (8 vs 6) instead of 4 vs 4 cells.
  const Grid grid(spec);
  std::vector<double> weights(static_cast<std::size_t>(grid.num_cells()));
  for (int c = 0; c < grid.num_cells(); ++c)
    weights[static_cast<std::size_t>(c)] = grid.coords(c)[0] < 2 ? 4.0 : 1.0;
  const Partition weighted(spec, {2, 1, 1}, weights);
  EXPECT_EQ(weighted.subdomain(0).size[0], 2);
  EXPECT_EQ(weighted.subdomain(1).size[0], 6);
  // An empty weight vector is the unweighted split.
  const Partition plain(spec, {2, 1, 1}, {});
  EXPECT_EQ(plain.subdomain(0).size[0], 4);
  EXPECT_EQ(plain.subdomain(1).size[0], 4);
  // Every global cell still has exactly one owner under ragged weighting.
  for (int g = 0; g < grid.num_cells(); ++g) {
    const int owner = weighted.owner_of(g);
    EXPECT_EQ(weighted.global_cell(owner, weighted.local_cell(owner, g)), g);
  }
}

// ---------------------------------------------------------------------------
// BalanceTable.

TEST(BalanceTable, CellWeightsUseSubstepCountsAndMeasuredCosts) {
  BalanceTable table;
  // No measurements: pure substep-count model, 2^(K-1-k) per cell.
  const std::vector<int> assignment{0, 1, 1, 2};
  std::vector<double> weights = table.cell_weights("elastic", 4, assignment, 3);
  EXPECT_EQ(weights, (std::vector<double>{4.0, 2.0, 2.0, 1.0}));
  // Measured costs scale the substep counts per cluster.
  table.set("elastic", 4, 0, 100.0);
  table.set("elastic", 4, 1, 150.0);
  weights = table.cell_weights("elastic", 4, assignment, 3);
  EXPECT_EQ(weights, (std::vector<double>{400.0, 300.0, 300.0, 1.0}));
  // Other keys keep the default cost 1.
  EXPECT_DOUBLE_EQ(table.cost("elastic", 5, 0), 1.0);
  EXPECT_TRUE(table.has("elastic", 4, 1));
  EXPECT_FALSE(table.has("acoustic", 4, 1));
}

TEST(BalanceTable, TextAndFileRoundTrip) {
  BalanceTable table;
  table.set("elastic", 6, 0, 123.5);
  table.set("acoustic", 3, 2, 42.0);
  const std::string text = table.serialize();
  EXPECT_NE(text.find("elastic 6 0 123.5"), std::string::npos) << text;
  EXPECT_NE(text.find("acoustic 3 2 42"), std::string::npos) << text;

  BalanceTable merged;
  merged.merge_text("# comment\n\n" + text);
  EXPECT_DOUBLE_EQ(merged.cost("elastic", 6, 0), 123.5);
  EXPECT_DOUBLE_EQ(merged.cost("acoustic", 3, 2), 42.0);
  EXPECT_THROW(merged.merge_text("elastic 6 0"), std::invalid_argument);

  const std::string path = "test_lts_balance.txt";
  table.save_file(path);
  BalanceTable loaded;
  EXPECT_FALSE(loaded.load_file("test_lts_no_such_file.txt"));
  EXPECT_TRUE(loaded.load_file(path));
  EXPECT_EQ(loaded.serialize(), table.serialize());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exastp
