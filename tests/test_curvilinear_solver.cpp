// End-to-end tests of the curvilinear machinery: the m = 21 benchmark PDE
// through the full solver with per-node metric fields from a CurvilinearMap,
// plus the energy functionals for the other PDEs.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/mesh/geometry.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/pde/elastic.h"
#include "exastp/scenarios/planewave.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/energy.h"
#include "exastp/solver/norms.h"

namespace exastp {
namespace {

constexpr double kPi = std::numbers::pi;

AderDgSolver make_curvi_solver(const CurvilinearMap& map, StpVariant variant,
                               int order) {
  CurvilinearElasticPde pde;
  GridSpec grid;
  grid.cells = {2, 2, 2};
  auto runtime = std::make_shared<PdeAdapter<CurvilinearElasticPde>>(pde);
  AderDgSolver solver(
      runtime, make_stp_kernel(pde, variant, order, host_best_isa()), grid);
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < 9; ++s) q[s] = 0.0;
        q[CurvilinearElasticPde::kVx] =
            std::sin(2.0 * kPi * x[0]) * std::cos(2.0 * kPi * x[1]);
        q[CurvilinearElasticPde::kSxx] = 0.3 * std::sin(2.0 * kPi * x[2]);
        q[CurvilinearElasticPde::kRho] = 2.7;
        q[CurvilinearElasticPde::kCp] = 6.0;
        q[CurvilinearElasticPde::kCs] = 3.464;
        const auto g = map.metric(x);
        for (int i = 0; i < 9; ++i)
          q[CurvilinearElasticPde::kMetric + i] = g[i];
      });
  return solver;
}

TEST(CurvilinearSolver, IdentityMapMatchesCartesianElastic) {
  // With G = I and cell-wise constant material, the m=21 curvilinear system
  // must evolve its 9 wave quantities exactly like the m=12 Cartesian
  // elastic system.
  IdentityMap id;
  auto curvi = make_curvi_solver(id, StpVariant::kSplitCk, 4);

  ElasticPde epde;
  GridSpec grid;
  grid.cells = {2, 2, 2};
  auto eruntime = std::make_shared<PdeAdapter<ElasticPde>>(epde);
  AderDgSolver elast(
      eruntime,
      make_stp_kernel(epde, StpVariant::kSplitCk, 4, host_best_isa()), grid);
  elast.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < 9; ++s) q[s] = 0.0;
        q[ElasticPde::kVx] =
            std::sin(2.0 * kPi * x[0]) * std::cos(2.0 * kPi * x[1]);
        q[ElasticPde::kSxx] = 0.3 * std::sin(2.0 * kPi * x[2]);
        q[ElasticPde::kRho] = 2.7;
        q[ElasticPde::kCp] = 6.0;
        q[ElasticPde::kCs] = 3.464;
      });

  const double t_end = 5e-3;
  curvi.run_until(t_end);
  elast.run_until(t_end);
  for (auto& x : std::vector<std::array<double, 3>>{
           {0.3, 0.4, 0.5}, {0.7, 0.2, 0.9}, {0.1, 0.8, 0.3}}) {
    for (int s = 0; s < 9; ++s)
      ASSERT_NEAR(curvi.sample(x, s), elast.sample(x, s), 1e-9)
          << "quantity " << s;
  }
}

TEST(CurvilinearSolver, SineMapRunsStably) {
  SineMap map(0.03, 2.0 * kPi);
  auto solver = make_curvi_solver(map, StpVariant::kAosoaSplitCk, 4);
  const double e0 = elastic_kinetic_energy(solver);
  solver.run_until(0.01);
  EXPECT_GT(e0, 0.0);
  for (int s = 0; s < 9; ++s)
    EXPECT_TRUE(std::isfinite(solver.sample({0.5, 0.5, 0.5}, s)));
  // Metric parameter rows must be untouched by the evolution.
  const auto g = map.metric({0.5, 0.5, 0.5});
  for (int i = 0; i < 9; ++i)
    EXPECT_NEAR(solver.sample({0.5, 0.5, 0.5},
                              CurvilinearElasticPde::kMetric + i),
                g[i], 5e-3)
        << "metric row " << i << " drifted";
}

TEST(CurvilinearSolver, AllVariantsAgreeOnCurvedGeometry) {
  SineMap map(0.02, kPi);
  double reference[9] = {};
  bool first = true;
  for (StpVariant v :
       {StpVariant::kGeneric, StpVariant::kLog, StpVariant::kSplitCk,
        StpVariant::kAosoaSplitCk, StpVariant::kSoaUfSplitCk}) {
    auto solver = make_curvi_solver(map, v, 3);
    solver.run_until(4e-3);
    for (int s = 0; s < 9; ++s) {
      const double val = solver.sample({0.4, 0.6, 0.5}, s);
      if (first) {
        reference[s] = val;
      } else {
        ASSERT_NEAR(val, reference[s],
                    1e-9 * std::max(1.0, std::abs(reference[s])))
            << variant_name(v) << " quantity " << s;
      }
    }
    first = false;
  }
}

TEST(Energy, AcousticEnergyNonIncreasingAndPositive) {
  AcousticPde pde;
  GridSpec grid;
  grid.cells = {3, 1, 1};
  auto runtime = std::make_shared<PdeAdapter<AcousticPde>>(pde);
  AderDgSolver solver(
      runtime,
      make_stp_kernel(pde, StpVariant::kSplitCk, 4, host_best_isa()), grid);
  PlaneWave wave;
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        wave.initial_condition(x, q);
      });
  const double e0 = acoustic_energy(solver);
  EXPECT_GT(e0, 0.0);
  solver.run_until(0.1);
  const double e1 = acoustic_energy(solver);
  EXPECT_LE(e1, e0 * (1.0 + 1e-12));
  EXPECT_GT(e1, 0.95 * e0);
}

TEST(Energy, ElasticKineticEnergyOfKnownField) {
  ElasticPde pde;
  GridSpec grid;
  grid.cells = {2, 2, 2};
  auto runtime = std::make_shared<PdeAdapter<ElasticPde>>(pde);
  AderDgSolver solver(
      runtime,
      make_stp_kernel(pde, StpVariant::kGeneric, 3, host_best_isa()), grid);
  solver.set_initial_condition(
      [](const std::array<double, 3>&, double* q) {
        for (int s = 0; s < 9; ++s) q[s] = 0.0;
        q[ElasticPde::kVx] = 2.0;  // uniform velocity
        q[ElasticPde::kRho] = 3.0;
        q[ElasticPde::kCp] = 6.0;
        q[ElasticPde::kCs] = 3.0;
      });
  // E_kin = 1/2 * rho * |v|^2 * volume = 0.5 * 3 * 4 * 1 = 6.
  EXPECT_NEAR(elastic_kinetic_energy(solver), 6.0, 1e-10);
}

}  // namespace
}  // namespace exastp
