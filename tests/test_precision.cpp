// Mixed-precision kernel path: the fp32-storage / fp64-accumulation scheme
// (docs/precision.md).
//
// Under test:
//   * precision parsing and naming round trips,
//   * the registry contract — only the SplitCK-family production kernels
//     carry an fp32 path; every other variant (and the rk4 stepper) rejects
//     precision=fp32 with a clear error,
//   * fp32 kernel outputs stay within fp32 rounding of the fp64 outputs on
//     a smooth state,
//   * end-to-end per-order convergence of precision=fp32 runs against the
//     thresholds documented in docs/precision.md (acoustic plane wave and
//     the Maxwell TE101 cavity eigenmode),
//   * bitwise thread/shard invariance of the fp32 path (the same acceptance
//     matrix the fp64 solver passes; carries the threaded+sharded labels),
//   * the kernel cache keys prototypes by precision,
//   * fused-block bitwise neutrality: any FusionTuneTable block size gives
//     bit-identical outputs in both precisions,
//   * FusionTuneTable text/file round trips (the autotune=PATH format).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "exastp/engine/kernel_cache.h"
#include "exastp/engine/simulation.h"
#include "exastp/kernels/fusion_autotune.h"
#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

TEST(Precision, NamesAndParsingRoundTrip) {
  EXPECT_EQ(precision_name(Precision::kF64), "fp64");
  EXPECT_EQ(precision_name(Precision::kF32), "fp32");
  EXPECT_EQ(parse_precision("fp64"), Precision::kF64);
  EXPECT_EQ(parse_precision("double"), Precision::kF64);
  EXPECT_EQ(parse_precision("fp32"), Precision::kF32);
  EXPECT_EQ(parse_precision("float"), Precision::kF32);
  EXPECT_EQ(parse_precision("single"), Precision::kF32);
  EXPECT_THROW(parse_precision("fp16"), std::invalid_argument);
}

TEST(Precision, OnlySplitCkFamilyBuildsF32Kernels) {
  for (StpVariant v : {StpVariant::kSplitCk, StpVariant::kAosoaSplitCk}) {
    StpKernel kernel = make_stp_kernel(AcousticPde{}, v, 4, Isa::kScalar,
                                       NodeFamily::kGaussLegendre,
                                       Precision::kF32);
    EXPECT_EQ(kernel.precision(), Precision::kF32) << variant_name(v);
    // Thread clones inherit the precision.
    EXPECT_EQ(kernel.fork().precision(), Precision::kF32) << variant_name(v);
  }
  for (StpVariant v : {StpVariant::kGeneric, StpVariant::kLog,
                       StpVariant::kSoaUfSplitCk}) {
    EXPECT_THROW(make_stp_kernel(AcousticPde{}, v, 4, Isa::kScalar,
                                 NodeFamily::kGaussLegendre, Precision::kF32),
                 std::invalid_argument)
        << variant_name(v);
  }
  // Default precision stays the paper's fp64 baseline.
  EXPECT_EQ(
      make_stp_kernel(AcousticPde{}, StpVariant::kSplitCk, 4, Isa::kScalar)
          .precision(),
      Precision::kF64);
}

TEST(Precision, RkSteppersRejectF32) {
  EXPECT_THROW(Simulation::from_args({"scenario=planewave", "stepper=rk4",
                                      "precision=fp32", "order=3",
                                      "t_end=0.01"}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Kernel-level fp64 vs fp32 comparison on a smooth state.

// Smooth nodal state with gently varying material/geometry parameters
// (same construction as test_kernels.cpp, reduced to the two PDEs used
// here).
template <class Pde>
std::vector<double> smooth_cell_state(int n) {
  const auto& basis = basis_tables(n);
  std::vector<double> q(static_cast<std::size_t>(n) * n * n * Pde::kQuants);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        const double x = basis.nodes[k1], y = basis.nodes[k2],
                     z = basis.nodes[k3];
        double* node =
            q.data() +
            ((static_cast<std::size_t>(k3) * n + k2) * n + k1) * Pde::kQuants;
        for (int s = 0; s < Pde::kVars; ++s)
          node[s] = std::sin(2.0 * x + s) * std::cos(1.5 * y - 0.3 * s) +
                    0.25 * z;
        if constexpr (std::is_same_v<Pde, AcousticPde>) {
          node[AcousticPde::kRho] = 1.2 + 0.1 * x;
          node[AcousticPde::kC] = 2.0 + 0.2 * y;
        } else if constexpr (std::is_same_v<Pde, CurvilinearElasticPde>) {
          node[CurvilinearElasticPde::kRho] = 2.6 + 0.1 * z;
          node[CurvilinearElasticPde::kCp] = 6.0 + 0.2 * x;
          node[CurvilinearElasticPde::kCs] = 3.4 + 0.1 * y;
          for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
              node[CurvilinearElasticPde::kMetric + 3 * r + c] =
                  (r == c ? 1.0 : 0.0) + 0.05 * std::sin(x + y + z + r + c);
        }
      }
  return q;
}

struct StpResult {
  std::vector<double> qavg;
  std::array<std::vector<double>, 3> favg;
};

template <class Pde>
StpResult run_stp(Pde pde, StpVariant variant, int order, Isa isa,
                  Precision precision, const std::vector<double>& state) {
  const double h = 0.25;
  const std::array<double, 3> inv_dx{1.0 / h, 1.0 / h, 1.0 / h};
  const double dt = 0.2 * h / (10.0 * order * order);
  StpKernel kernel = make_stp_kernel(pde, variant, order, isa,
                                     NodeFamily::kGaussLegendre, precision);
  const AosLayout& aos = kernel.layout();
  AlignedVector q(aos.size()), qavg(aos.size());
  std::array<AlignedVector, 3> favg;
  for (auto& f : favg) f.assign(aos.size(), 0.0);
  pad_aos(state.data(), order, Pde::kQuants, q.data(), aos);
  StpOutputs out{qavg.data(),
                 {favg[0].data(), favg[1].data(), favg[2].data()}};
  kernel.run(q.data(), dt, inv_dx, nullptr, out);
  StpResult r;
  const std::size_t tight =
      static_cast<std::size_t>(order) * order * order * Pde::kQuants;
  r.qavg.resize(tight);
  unpad_aos(qavg.data(), aos, Pde::kQuants, r.qavg.data());
  for (int d = 0; d < 3; ++d) {
    r.favg[d].resize(tight);
    unpad_aos(favg[d].data(), aos, Pde::kQuants, r.favg[d].data());
  }
  return r;
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double rel_tol, const std::string& what) {
  ASSERT_EQ(a.size(), b.size());
  const double scale = std::max({max_abs(a), max_abs(b), 1e-30});
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a[i], b[i], rel_tol * scale)
        << what << " at index " << i << " (scale " << scale << ")";
}

template <class Pde>
void expect_f32_matches_f64(StpVariant variant, int order) {
  auto state = smooth_cell_state<Pde>(order);
  auto f64 = run_stp(Pde{}, variant, order, Isa::kScalar, Precision::kF64,
                     state);
  auto f32 = run_stp(Pde{}, variant, order, Isa::kScalar, Precision::kF32,
                     state);
  // fp32 rounding (eps ~ 1.2e-7) accumulated over the order-deep CK
  // recursion; 1e-5 relative leaves an order of magnitude of headroom.
  const double tol = 1e-5;
  const std::string tag =
      std::string(Pde::kName) + "/" + variant_name(variant);
  expect_close(f64.qavg, f32.qavg, tol, tag + " qavg");
  for (int d = 0; d < 3; ++d)
    expect_close(f64.favg[d], f32.favg[d], tol,
                 tag + " favg[" + std::to_string(d) + "]");
}

TEST(Precision, F32TracksF64OnSmoothState) {
  expect_f32_matches_f64<AcousticPde>(StpVariant::kSplitCk, 5);
  expect_f32_matches_f64<AcousticPde>(StpVariant::kAosoaSplitCk, 5);
  expect_f32_matches_f64<CurvilinearElasticPde>(StpVariant::kSplitCk, 4);
  expect_f32_matches_f64<CurvilinearElasticPde>(StpVariant::kAosoaSplitCk, 4);
}

// ---------------------------------------------------------------------------
// End-to-end convergence of precision=fp32 runs.
//
// The per-order L2-error bounds below are the acceptance thresholds of
// docs/precision.md ("Accuracy acceptance" tables) — measured fp64 errors
// with ~1.5-2x headroom, which the fp32 runs meet because the fp32 rounding
// floor sits far below the discretization error at these orders. Keep the
// two files in sync.

double l2_error_of(const std::vector<std::string>& args) {
  Simulation sim = Simulation::from_args(args);
  sim.run();
  EXPECT_TRUE(sim.has_exact_solution());
  return sim.l2_error();
}

TEST(Precision, F32AcousticPlaneWaveConverges) {
  // scenario defaults: cells=3x3x3, extent=1, t_end=0.25.
  const std::map<int, double> threshold{
      {3, 3e-2}, {4, 4e-3}, {5, 5e-4}, {6, 5e-5}};
  for (const auto& [order, bound] : threshold) {
    const double err = l2_error_of({"scenario=planewave", "variant=splitck",
                                    "precision=fp32",
                                    "order=" + std::to_string(order)});
    EXPECT_LT(err, bound) << "order " << order;
  }
}

TEST(Precision, F32MaxwellCavityConverges) {
  const std::map<int, double> threshold{{3, 3e-3}, {4, 2e-4}, {5, 1e-5}};
  for (const auto& [order, bound] : threshold) {
    const double err = l2_error_of({"scenario=maxwell_cavity",
                                    "variant=aosoa_splitck",
                                    "precision=fp32", "t_end=0.5",
                                    "order=" + std::to_string(order)});
    EXPECT_LT(err, bound) << "order " << order;
  }
}

TEST(Precision, F32ErrorMatchesF64AtModerateOrder) {
  const std::vector<std::string> base{"scenario=planewave",
                                      "variant=aosoa_splitck", "order=4"};
  auto with_precision = [&](const std::string& p) {
    std::vector<std::string> args = base;
    args.push_back("precision=" + p);
    return l2_error_of(args);
  };
  const double e64 = with_precision("fp64");
  const double e32 = with_precision("fp32");
  // Discretization-error dominated: fp32 must agree to a fraction of a
  // percent (measured agreement is ~5 significant digits).
  EXPECT_NEAR(e32, e64, 1e-2 * e64);
}

// ---------------------------------------------------------------------------
// Bitwise thread/shard invariance of the fp32 path.

double max_dof_difference(const SolverBase& a, const SolverBase& b) {
  EXPECT_EQ(a.grid().num_cells(), b.grid().num_cells());
  EXPECT_EQ(a.layout().size(), b.layout().size());
  double worst = 0.0;
  for (int c = 0; c < a.grid().num_cells(); ++c) {
    const double* qa = a.cell_dofs(c);
    const double* qb = b.cell_dofs(c);
    for (std::size_t i = 0; i < a.layout().size(); ++i)
      worst = std::max(worst, std::abs(qa[i] - qb[i]));
  }
  return worst;
}

Simulation run_with(const std::vector<std::string>& args,
                    const std::vector<std::string>& extra) {
  std::vector<std::string> full = args;
  full.insert(full.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

TEST(Precision, F32ThreadAndShardBitwiseInvariance) {
  const std::vector<std::string> base{
      "scenario=planewave", "variant=aosoa_splitck", "precision=fp32",
      "order=4",            "cells=4x4x2",           "t_end=0.1"};
  Simulation mono = run_with(base, {"shards=1", "threads=1"});
  EXPECT_EQ(mono.solver().num_shards(), 1);
  const std::vector<std::pair<std::string, int>> cases{
      {"1", 4}, {"2x1x1", 1}, {"2x2x1", 4}};
  for (const auto& [shards, threads] : cases) {
    Simulation other = run_with(
        base, {"shards=" + shards, "threads=" + std::to_string(threads)});
    EXPECT_EQ(mono.solver().time(), other.solver().time());
    EXPECT_EQ(max_dof_difference(mono.solver(), other.solver()), 0.0)
        << "shards=" << shards << " threads=" << threads
        << " diverged from the monolithic fp32 run";
    EXPECT_EQ(mono.l2_error(), other.l2_error())
        << "shards=" << shards << " threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Kernel cache keys by precision.

TEST(Precision, KernelCacheKeysByPrecision) {
  auto pde = find_pde("advection");
  ASSERT_TRUE(pde);
  // An (advection, splitck, order=2) prototype is not used anywhere else in
  // this binary, so the first request of each precision must be a miss and
  // repeats must be hits.
  reset_kernel_cache_stats();
  const auto request = [&](Precision p) {
    return cached_stp_kernel(*pde, StpVariant::kSplitCk, 2, Isa::kScalar,
                             NodeFamily::kGaussLegendre, p);
  };
  StpKernel f64 = request(Precision::kF64);
  EXPECT_EQ(f64.precision(), Precision::kF64);
  StpKernel f32 = request(Precision::kF32);
  EXPECT_EQ(f32.precision(), Precision::kF32);
  KernelCacheStats s = kernel_cache_stats();
  EXPECT_EQ(s.misses, 2) << "fp64 and fp32 must build distinct prototypes";
  EXPECT_EQ(s.hits, 0);
  request(Precision::kF64);
  request(Precision::kF32);
  s = kernel_cache_stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.hits, 2);
}

// ---------------------------------------------------------------------------
// Fused-block bitwise neutrality and the autotune table round trip.

/// Restores a pristine (empty) process-wide table around a test.
struct TuneTableGuard {
  TuneTableGuard() { FusionTuneTable::instance().clear(); }
  ~TuneTableGuard() { FusionTuneTable::instance().clear(); }
};

TEST(FusionTune, BlockSizeIsBitwiseNeutral) {
  TuneTableGuard guard;
  const int order = 5;
  for (Precision p : {Precision::kF64, Precision::kF32}) {
    auto state = smooth_cell_state<CurvilinearElasticPde>(order);
    std::vector<StpResult> results;
    for (int planes : {1, 2, order}) {
      FusionTuneTable::instance().set(CurvilinearElasticPde::kName, order,
                                      Isa::kScalar, p, planes);
      results.push_back(run_stp(CurvilinearElasticPde{},
                                StpVariant::kSplitCk, order, Isa::kScalar, p,
                                state));
    }
    for (std::size_t r = 1; r < results.size(); ++r) {
      EXPECT_EQ(results[0].qavg, results[r].qavg) << precision_name(p);
      for (int d = 0; d < 3; ++d)
        EXPECT_EQ(results[0].favg[d], results[r].favg[d])
            << precision_name(p) << " favg[" << d << "]";
    }
  }
}

TEST(FusionTune, HeuristicAndLookupBounds) {
  TuneTableGuard guard;
  FusionTuneTable& table = FusionTuneTable::instance();
  for (int order : {2, 4, 6, 8, 10}) {
    for (Precision p : {Precision::kF64, Precision::kF32}) {
      const int planes =
          FusionTuneTable::heuristic_block_planes(order, 21, Isa::kAvx512, p);
      EXPECT_GE(planes, 1);
      EXPECT_LE(planes, order);
      // Without an entry, block_planes falls back to the heuristic.
      EXPECT_EQ(table.block_planes("curvilinear_elastic", order, 21,
                                   Isa::kAvx512, p),
                planes);
    }
  }
  // fp32 slabs are half the bytes: the tuned block can only grow.
  EXPECT_GE(
      FusionTuneTable::heuristic_block_planes(8, 21, Isa::kAvx512,
                                              Precision::kF32),
      FusionTuneTable::heuristic_block_planes(8, 21, Isa::kAvx512,
                                              Precision::kF64));
}

TEST(FusionTune, TextAndFileRoundTrip) {
  TuneTableGuard guard;
  FusionTuneTable& table = FusionTuneTable::instance();
  table.set("acoustic", 6, Isa::kAvx2, Precision::kF64, 3);
  table.set("curvilinear_elastic", 8, Isa::kAvx512, Precision::kF32, 2);
  const std::string text = table.serialize();
  EXPECT_NE(text.find("acoustic 6 avx2 fp64 3"), std::string::npos) << text;
  EXPECT_NE(text.find("curvilinear_elastic 8 avx512 fp32 2"),
            std::string::npos)
      << text;

  table.clear();
  EXPECT_FALSE(table.has("acoustic", 6, Isa::kAvx2, Precision::kF64));
  table.merge_text("# comment line\n\n" + text);
  EXPECT_TRUE(table.has("acoustic", 6, Isa::kAvx2, Precision::kF64));
  EXPECT_EQ(table.block_planes("acoustic", 6, 6, Isa::kAvx2,
                               Precision::kF64),
            3);
  EXPECT_EQ(table.block_planes("curvilinear_elastic", 8, 21, Isa::kAvx512,
                               Precision::kF32),
            2);
  EXPECT_THROW(table.merge_text("acoustic 6 avx2"), std::invalid_argument);

  const std::string path = "test_precision_autotune.txt";
  table.save_file(path);
  table.clear();
  EXPECT_FALSE(table.load_file("test_precision_no_such_file.txt"));
  EXPECT_TRUE(table.load_file(path));
  EXPECT_TRUE(table.has("curvilinear_elastic", 8, Isa::kAvx512,
                        Precision::kF32));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exastp
