// Tests for src/pde: user-function algebra (linearity, zero parameter rows),
// pointwise vs vectorized-line consistency for every PDE, wave speeds, and
// point-source machinery (Hermite/Ricker derivatives, delta projection).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "exastp/pde/acoustic.h"
#include "exastp/pde/advection.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/pde/elastic.h"
#include "exastp/pde/pde_base.h"
#include "exastp/pde/point_source.h"

namespace exastp {
namespace {

// Fills a physically admissible random state: wave quantities in [-1,1],
// material parameters positive, metric close to identity.
template <class Pde>
std::vector<double> random_state(std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> q(Pde::kQuants);
  for (int s = 0; s < Pde::kVars; ++s) q[s] = dist(rng);
  if constexpr (std::is_same_v<Pde, AcousticPde>) {
    q[AcousticPde::kRho] = 1.3 + 0.2 * dist(rng);
    q[AcousticPde::kC] = 2.0 + 0.5 * dist(rng);
  } else if constexpr (std::is_same_v<Pde, ElasticPde>) {
    q[ElasticPde::kRho] = 2.6 + 0.2 * dist(rng);
    q[ElasticPde::kCp] = 6.0 + 0.5 * dist(rng);
    q[ElasticPde::kCs] = 3.4 + 0.3 * dist(rng);
  } else if constexpr (std::is_same_v<Pde, CurvilinearElasticPde>) {
    q[CurvilinearElasticPde::kRho] = 2.6 + 0.2 * dist(rng);
    q[CurvilinearElasticPde::kCp] = 6.0 + 0.5 * dist(rng);
    q[CurvilinearElasticPde::kCs] = 3.4 + 0.3 * dist(rng);
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        q[CurvilinearElasticPde::kMetric + 3 * r + c] =
            (r == c ? 1.0 : 0.0) + 0.1 * dist(rng);
  }
  return q;
}

template <class Pde>
class PdeTypedTest : public ::testing::Test {};

using AllPdes = ::testing::Types<AdvectionPde, AdvectionNcpPde, AcousticPde,
                                 ElasticPde, CurvilinearElasticPde>;
TYPED_TEST_SUITE(PdeTypedTest, AllPdes);

TYPED_TEST(PdeTypedTest, QuantityCountsConsistent) {
  EXPECT_EQ(TypeParam::kQuants, TypeParam::kVars + TypeParam::kParams);
  EXPECT_GT(TypeParam::kVars, 0);
}

TYPED_TEST(PdeTypedTest, ParameterRowsHaveZeroFluxAndNcp) {
  std::mt19937 rng(1);
  TypeParam pde;
  auto q = random_state<TypeParam>(rng);
  auto grad = random_state<TypeParam>(rng);
  std::vector<double> f(TypeParam::kQuants), b(TypeParam::kQuants);
  for (int dir = 0; dir < 3; ++dir) {
    pde.flux(q.data(), dir, f.data());
    pde.ncp(q.data(), grad.data(), dir, b.data());
    for (int s = TypeParam::kVars; s < TypeParam::kQuants; ++s) {
      EXPECT_EQ(f[s], 0.0) << "flux parameter row " << s;
      EXPECT_EQ(b[s], 0.0) << "ncp parameter row " << s;
    }
  }
}

TYPED_TEST(PdeTypedTest, FluxIsLinearInWaveQuantities) {
  // For fixed parameters, F(alpha q1 + q2) == alpha F(q1) + F(q2) on the
  // evolved rows — the linearity assumption the whole CK scheme rests on.
  std::mt19937 rng(2);
  TypeParam pde;
  auto q1 = random_state<TypeParam>(rng);
  auto q2 = q1;  // same parameters
  std::mt19937 rng2(3);
  auto tmp = random_state<TypeParam>(rng2);
  for (int s = 0; s < TypeParam::kVars; ++s) q2[s] = tmp[s];
  const double alpha = 1.7;
  std::vector<double> qc(q1), f1(TypeParam::kQuants), f2(TypeParam::kQuants),
      fc(TypeParam::kQuants);
  for (int s = 0; s < TypeParam::kVars; ++s)
    qc[s] = alpha * q1[s] + q2[s];
  for (int dir = 0; dir < 3; ++dir) {
    pde.flux(q1.data(), dir, f1.data());
    pde.flux(q2.data(), dir, f2.data());
    pde.flux(qc.data(), dir, fc.data());
    for (int s = 0; s < TypeParam::kVars; ++s)
      EXPECT_NEAR(fc[s], alpha * f1[s] + f2[s], 1e-10)
          << "dir " << dir << " row " << s;
  }
}

TYPED_TEST(PdeTypedTest, NcpIsLinearInGradient) {
  std::mt19937 rng(4);
  TypeParam pde;
  auto q = random_state<TypeParam>(rng);
  auto g1 = random_state<TypeParam>(rng);
  auto g2 = random_state<TypeParam>(rng);
  const double alpha = -0.6;
  std::vector<double> gc(TypeParam::kQuants), b1(TypeParam::kQuants),
      b2(TypeParam::kQuants), bc(TypeParam::kQuants);
  for (int s = 0; s < TypeParam::kQuants; ++s)
    gc[s] = alpha * g1[s] + g2[s];
  for (int dir = 0; dir < 3; ++dir) {
    pde.ncp(q.data(), g1.data(), dir, b1.data());
    pde.ncp(q.data(), g2.data(), dir, b2.data());
    pde.ncp(q.data(), gc.data(), dir, bc.data());
    for (int s = 0; s < TypeParam::kQuants; ++s)
      EXPECT_NEAR(bc[s], alpha * b1[s] + b2[s], 1e-10);
  }
}

TYPED_TEST(PdeTypedTest, LineFunctionsMatchPointwise) {
  // The vectorized user functions must agree with the pointwise ones lane by
  // lane — this is the correctness contract of the Fig. 8 transformation.
  constexpr int kLen = 8, kStride = 8;
  std::mt19937 rng(5);
  TypeParam pde;
  std::vector<double> qs(TypeParam::kQuants * kStride, 0.0);
  std::vector<double> gs(TypeParam::kQuants * kStride, 0.0);
  std::vector<std::vector<double>> q_nodes, g_nodes;
  for (int i = 0; i < kLen; ++i) {
    q_nodes.push_back(random_state<TypeParam>(rng));
    g_nodes.push_back(random_state<TypeParam>(rng));
    for (int s = 0; s < TypeParam::kQuants; ++s) {
      qs[s * kStride + i] = q_nodes.back()[s];
      gs[s * kStride + i] = g_nodes.back()[s];
    }
  }
  std::vector<double> f_line(TypeParam::kQuants * kStride, -1.0);
  std::vector<double> b_line(TypeParam::kQuants * kStride, -1.0);
  std::vector<double> f_pt(TypeParam::kQuants), b_pt(TypeParam::kQuants);
  for (int dir = 0; dir < 3; ++dir) {
    pde.flux_line(Isa::kScalar, qs.data(), dir, f_line.data(), kLen, kStride);
    pde.ncp_line(Isa::kScalar, qs.data(), gs.data(), dir, b_line.data(),
                 kLen, kStride);
    for (int i = 0; i < kLen; ++i) {
      pde.flux(q_nodes[i].data(), dir, f_pt.data());
      pde.ncp(q_nodes[i].data(), g_nodes[i].data(), dir, b_pt.data());
      for (int s = 0; s < TypeParam::kQuants; ++s) {
        EXPECT_NEAR(f_line[s * kStride + i], f_pt[s], 1e-12)
            << "flux dir " << dir << " lane " << i << " row " << s;
        EXPECT_NEAR(b_line[s * kStride + i], b_pt[s], 1e-12)
            << "ncp dir " << dir << " lane " << i << " row " << s;
      }
    }
  }
}

TYPED_TEST(PdeTypedTest, LineFunctionsTolerateZeroPaddedLanes) {
  // Lanes beyond the real nodes carry all-zero state (including rho = 0);
  // the user functions must not produce NaN/Inf there (Sec. V-C).
  constexpr int kLen = 8, kStride = 8;
  std::mt19937 rng(6);
  TypeParam pde;
  std::vector<double> qs(TypeParam::kQuants * kStride, 0.0);
  std::vector<double> gs(TypeParam::kQuants * kStride, 0.0);
  auto q = random_state<TypeParam>(rng);
  for (int s = 0; s < TypeParam::kQuants; ++s) qs[s * kStride] = q[s];
  std::vector<double> f(TypeParam::kQuants * kStride, 0.0);
  std::vector<double> b(TypeParam::kQuants * kStride, 0.0);
  for (int dir = 0; dir < 3; ++dir) {
    pde.flux_line(Isa::kScalar, qs.data(), dir, f.data(), kLen, kStride);
    pde.ncp_line(Isa::kScalar, qs.data(), gs.data(), dir, b.data(), kLen,
                 kStride);
    for (double v : f) EXPECT_TRUE(std::isfinite(v));
    for (double v : b) EXPECT_TRUE(std::isfinite(v));
  }
}

TYPED_TEST(PdeTypedTest, IsaLineVariantsAgree) {
  constexpr int kLen = 16, kStride = 16;
  std::mt19937 rng(7);
  TypeParam pde;
  std::vector<double> qs(TypeParam::kQuants * kStride, 0.0);
  std::vector<double> gs(TypeParam::kQuants * kStride, 0.0);
  for (int i = 0; i < kLen; ++i) {
    auto q = random_state<TypeParam>(rng);
    auto g = random_state<TypeParam>(rng);
    for (int s = 0; s < TypeParam::kQuants; ++s) {
      qs[s * kStride + i] = q[s];
      gs[s * kStride + i] = g[s];
    }
  }
  std::vector<double> ref_f(TypeParam::kQuants * kStride);
  std::vector<double> ref_b(TypeParam::kQuants * kStride);
  pde.flux_line(Isa::kScalar, qs.data(), 1, ref_f.data(), kLen, kStride);
  pde.ncp_line(Isa::kScalar, qs.data(), gs.data(), 1, ref_b.data(), kLen,
               kStride);
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (!host_supports(isa)) continue;
    std::vector<double> f(TypeParam::kQuants * kStride);
    std::vector<double> b(TypeParam::kQuants * kStride);
    pde.flux_line(isa, qs.data(), 1, f.data(), kLen, kStride);
    pde.ncp_line(isa, qs.data(), gs.data(), 1, b.data(), kLen, kStride);
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_NEAR(f[i], ref_f[i], 1e-13);
      EXPECT_NEAR(b[i], ref_b[i], 1e-13);
    }
  }
}

TYPED_TEST(PdeTypedTest, AdapterForwardsEverything) {
  std::mt19937 rng(8);
  PdeAdapter<TypeParam> adapter;
  TypeParam pde;
  auto q = random_state<TypeParam>(rng);
  auto g = random_state<TypeParam>(rng);
  EXPECT_EQ(adapter.info().quants, TypeParam::kQuants);
  EXPECT_EQ(adapter.info().name, TypeParam::kName);
  std::vector<double> fa(TypeParam::kQuants), fb(TypeParam::kQuants);
  std::vector<double> ba(TypeParam::kQuants), bb(TypeParam::kQuants);
  for (int dir = 0; dir < 3; ++dir) {
    adapter.flux(q.data(), dir, fa.data());
    pde.flux(q.data(), dir, fb.data());
    adapter.ncp(q.data(), g.data(), dir, ba.data());
    pde.ncp(q.data(), g.data(), dir, bb.data());
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(ba, bb);
    EXPECT_EQ(adapter.max_wave_speed(q.data(), dir),
              pde.max_wave_speed(q.data(), dir));
  }
}

TEST(WaveSpeeds, MatchPhysics) {
  std::mt19937 rng(9);
  auto qa = random_state<AcousticPde>(rng);
  EXPECT_DOUBLE_EQ(AcousticPde{}.max_wave_speed(qa.data(), 0),
                   qa[AcousticPde::kC]);
  auto qe = random_state<ElasticPde>(rng);
  EXPECT_DOUBLE_EQ(ElasticPde{}.max_wave_speed(qe.data(), 2),
                   qe[ElasticPde::kCp]);
  AdvectionPde adv;
  EXPECT_DOUBLE_EQ(adv.max_wave_speed(nullptr, 0), std::abs(adv.velocity[0]));
}

TEST(WaveSpeeds, CurvilinearIdentityMetricReducesToCp) {
  std::mt19937 rng(10);
  auto q = random_state<CurvilinearElasticPde>(rng);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      q[CurvilinearElasticPde::kMetric + 3 * r + c] = (r == c) ? 1.0 : 0.0;
  for (int dir = 0; dir < 3; ++dir)
    EXPECT_NEAR(CurvilinearElasticPde{}.max_wave_speed(q.data(), dir),
                q[CurvilinearElasticPde::kCp], 1e-14);
}

TEST(CurvilinearIdentity, MatchesElasticSplitIntoFluxAndNcp) {
  // With G = I the curvilinear flux must equal the elastic velocity-row flux
  // and the curvilinear NCP must equal the elastic stress-row flux response
  // to the same gradient (constant material): the pointwise half of the
  // cross-PDE kernel equivalence.
  std::mt19937 rng(11);
  auto qe = random_state<ElasticPde>(rng);
  std::vector<double> qc(CurvilinearElasticPde::kQuants, 0.0);
  for (int s = 0; s < 12; ++s) qc[s] = qe[s];
  for (int r = 0; r < 3; ++r)
    qc[CurvilinearElasticPde::kMetric + 3 * r + r] = 1.0;
  std::vector<double> fe(ElasticPde::kQuants), fc(CurvilinearElasticPde::kQuants);
  for (int dir = 0; dir < 3; ++dir) {
    ElasticPde{}.flux(qe.data(), dir, fe.data());
    CurvilinearElasticPde{}.flux(qc.data(), dir, fc.data());
    for (int s = 0; s < 3; ++s)
      EXPECT_NEAR(fc[s], fe[s], 1e-12) << "velocity row " << s;
    // Stress response: elastic expresses it as flux of the state, the
    // curvilinear PDE as NCP applied to the gradient. Feeding the *state*
    // as gradient must reproduce the elastic stress flux rows.
    std::vector<double> bc(CurvilinearElasticPde::kQuants);
    CurvilinearElasticPde{}.ncp(qc.data(), qc.data(), dir, bc.data());
    for (int s = 3; s < 9; ++s)
      EXPECT_NEAR(bc[s], fe[s], 1e-10) << "stress row " << s;
  }
}

TEST(Hermite, KnownPolynomials) {
  for (double x : {-1.5, -0.2, 0.0, 0.7, 2.0}) {
    EXPECT_DOUBLE_EQ(hermite(0, x), 1.0);
    EXPECT_DOUBLE_EQ(hermite(1, x), 2 * x);
    EXPECT_NEAR(hermite(2, x), 4 * x * x - 2, 1e-12);
    EXPECT_NEAR(hermite(3, x), 8 * x * x * x - 12 * x, 1e-11);
    EXPECT_NEAR(hermite(4, x), 16 * std::pow(x, 4) - 48 * x * x + 12, 1e-10);
  }
}

TEST(Ricker, ValueMatchesClosedForm) {
  RickerWavelet w(2.0, 0.5);
  const double a = M_PI * M_PI * 4.0;
  for (double t : {0.0, 0.3, 0.5, 0.9}) {
    const double tau = t - 0.5;
    const double expected =
        (1.0 - 2.0 * a * tau * tau) * std::exp(-a * tau * tau);
    EXPECT_NEAR(w.derivative(t, 0), expected, 1e-12) << "t=" << t;
  }
}

class RickerDerivP : public ::testing::TestWithParam<int> {};

TEST_P(RickerDerivP, MatchesCentralFiniteDifference) {
  const int o = GetParam();
  RickerWavelet w(1.5, 0.4);
  const double h = 1e-5;
  for (double t : {0.1, 0.4, 0.62}) {
    const double fd =
        (w.derivative(t + h, o - 1) - w.derivative(t - h, o - 1)) / (2 * h);
    const double exact = w.derivative(t, o);
    EXPECT_NEAR(fd, exact, 1e-4 * std::max(1.0, std::abs(exact)))
        << "o=" << o << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, RickerDerivP, ::testing::Range(1, 7));

TEST(PolynomialWavelet, DerivativesAreExact) {
  // s(t) = 2 - t + 3 t^2 + 0.5 t^3
  PolynomialWavelet w({2.0, -1.0, 3.0, 0.5});
  const double t = 1.3;
  EXPECT_NEAR(w.derivative(t, 0), 2 - t + 3 * t * t + 0.5 * t * t * t, 1e-12);
  EXPECT_NEAR(w.derivative(t, 1), -1 + 6 * t + 1.5 * t * t, 1e-12);
  EXPECT_NEAR(w.derivative(t, 2), 6 + 3 * t, 1e-12);
  EXPECT_NEAR(w.derivative(t, 3), 3.0, 1e-12);
  EXPECT_EQ(w.derivative(t, 4), 0.0);
  EXPECT_EQ(w.derivative(t, 9), 0.0);
}

TEST(PointSourceProjection, ReproducesPointEvaluationOnAnsatzSpace) {
  // For any polynomial f in the tensor ansatz space:
  //   sum_k psi_k * (w_k * vol) * f(x_k) == f(xi0)
  // i.e. testing the projected delta against f integrates to a point
  // evaluation — the defining property of the P operator.
  const auto& basis = basis_tables(4);
  const std::array<double, 3> xi0{0.31, 0.62, 0.17};
  const double volume = 0.008;  // h = 0.2 cube
  AlignedVector psi = project_point_source(basis, xi0, volume);
  auto f = [](double x, double y, double z) {
    return 1.0 + 2 * x - y * y * y + x * y * z + 0.3 * z * z;
  };
  double integral = 0.0;
  const int n = basis.n;
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        const double w =
            basis.weights[k1] * basis.weights[k2] * basis.weights[k3] * volume;
        integral += psi[(k3 * n + k2) * n + k1] * w *
                    f(basis.nodes[k1], basis.nodes[k2], basis.nodes[k3]);
      }
  EXPECT_NEAR(integral, f(xi0[0], xi0[1], xi0[2]), 1e-10);
}

TEST(PointSourceProjection, RejectsOutOfCellPositions) {
  const auto& basis = basis_tables(3);
  EXPECT_THROW(project_point_source(basis, {1.2, 0.5, 0.5}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(project_point_source(basis, {0.5, 0.5, 0.5}, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace exastp
