// Tests for src/solver/output: CSV writer, VTK writer, seismogram recorder.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exastp/kernels/registry.h"
#include "exastp/pde/advection.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/output.h"

namespace exastp {
namespace {

AderDgSolver tiny_solver() {
  AdvectionPde pde;
  GridSpec grid;
  grid.cells = {2, 1, 1};
  auto runtime = std::make_shared<PdeAdapter<AdvectionPde>>(pde);
  AderDgSolver solver(
      runtime, make_stp_kernel(pde, StpVariant::kGeneric, 2, Isa::kScalar),
      grid);
  solver.set_initial_condition(
      [](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < AdvectionPde::kQuants; ++s)
          q[s] = x[0] + 10.0 * s;
      });
  return solver;
}

int count_lines(const std::string& path) {
  std::ifstream in(path);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

TEST(CsvWriter, EmitsHeaderAndOneRowPerNode) {
  auto solver = tiny_solver();
  const std::string path = "/tmp/exastp_out_test.csv";
  write_csv(solver, path);
  // 2 cells x 2^3 nodes + header.
  EXPECT_EQ(count_lines(path), 2 * 8 + 1);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y,z,q0,q1,q2,q3,q4");
  std::remove(path.c_str());
}

TEST(CsvWriter, FailsOnUnwritablePath) {
  auto solver = tiny_solver();
  EXPECT_THROW(write_csv(solver, "/nonexistent-dir/out.csv"),
               std::invalid_argument);
}

TEST(VtkWriter, ProducesLegacyHeaderAndData) {
  auto solver = tiny_solver();
  const std::string path = "/tmp/exastp_out_test.vtk";
  write_vtk_cell_averages(solver, {0, 2}, {"a", "b"}, path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(body.find("DIMENSIONS 2 1 1"), std::string::npos);
  EXPECT_NE(body.find("SCALARS a double 1"), std::string::npos);
  EXPECT_NE(body.find("SCALARS b double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VtkWriter, CellAverageOfLinearFieldIsMidpointValue) {
  auto solver = tiny_solver();
  const std::string path = "/tmp/exastp_out_avg.vtk";
  write_vtk_cell_averages(solver, {0}, {"q0"}, path);
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line) && line != "LOOKUP_TABLE default") {
  }
  double a = 0.0, b = 0.0;
  in >> a >> b;
  // Quantity 0 = x; averages over [0, .5] and [.5, 1] are .25 and .75.
  EXPECT_NEAR(a, 0.25, 1e-12);
  EXPECT_NEAR(b, 0.75, 1e-12);
  std::remove(path.c_str());
}

TEST(VtkWriter, RejectsMismatchedNames) {
  auto solver = tiny_solver();
  EXPECT_THROW(
      write_vtk_cell_averages(solver, {0, 1}, {"only_one"}, "/tmp/x.vtk"),
      std::invalid_argument);
}

TEST(Seismogram, RecordsTimesAndSamples) {
  auto solver = tiny_solver();
  SeismogramRecorder rec({0.25, 0.5, 0.5}, std::vector<int>{0, 3});
  rec.record(solver);
  solver.step(1e-3);
  rec.record(solver);
  EXPECT_EQ(rec.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(rec.times()[0], 0.0);
  EXPECT_DOUBLE_EQ(rec.times()[1], 1e-3);
  EXPECT_NEAR(rec.samples()[0][0], 0.25, 1e-9);       // q0 = x
  EXPECT_NEAR(rec.samples()[0][1], 30.0 + 0.25, 1e-9);  // q3 = x + 30

  const std::string path = "/tmp/exastp_seis_test.csv";
  rec.write_csv(path, {"p", "w"});
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,p,w");
  EXPECT_EQ(count_lines(path), 3);  // header + 2 data rows
  std::remove(path.c_str());
}

TEST(Seismogram, WriteRejectsWrongNameCount) {
  auto solver = tiny_solver();
  SeismogramRecorder rec({0.5, 0.5, 0.5}, std::vector<int>{0});
  rec.record(solver);
  EXPECT_THROW(rec.write_csv("/tmp/x.csv", {"a", "b"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace exastp
