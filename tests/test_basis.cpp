// Tests for src/basis: Lagrange evaluation, derivative operator identities,
// face projection vectors, table caching and padding.
#include <gtest/gtest.h>

#include <cmath>

#include "exastp/basis/basis_tables.h"
#include "exastp/basis/lagrange.h"
#include "exastp/common/aligned.h"

namespace exastp {
namespace {

struct BasisCase {
  int n;
  NodeFamily family;
};

void PrintTo(const BasisCase& c, std::ostream* os) {
  *os << "n" << c.n
      << (c.family == NodeFamily::kGaussLegendre ? "_legendre" : "_lobatto");
}

class BasisP : public ::testing::TestWithParam<BasisCase> {};

TEST_P(BasisP, CardinalProperty) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (int j = 0; j < t.n; ++j)
    for (int i = 0; i < t.n; ++i)
      EXPECT_NEAR(lagrange_value(t.nodes, j, t.nodes[i]), i == j ? 1.0 : 0.0,
                  1e-12);
}

TEST_P(BasisP, PartitionOfUnity) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (double x : {0.0, 0.123, 0.5, 0.87, 1.0}) {
    double sum = 0.0;
    for (int j = 0; j < t.n; ++j) sum += lagrange_value(t.nodes, j, x);
    EXPECT_NEAR(sum, 1.0, 1e-11);
  }
}

TEST_P(BasisP, DerivativeMatrixRowsSumToZero) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (int i = 0; i < t.n; ++i) {
    double sum = 0.0;
    for (int j = 0; j < t.n; ++j) sum += t.diff[i * t.n + j];
    EXPECT_NEAR(sum, 0.0, 1e-11) << "row " << i;
  }
}

TEST_P(BasisP, DerivativeMatrixExactOnPolynomials) {
  // D applied to nodal values of x^p must reproduce p*x^{p-1} exactly for
  // p < n (collocation differentiation is exact on the ansatz space).
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (int p = 0; p < t.n; ++p) {
    for (int i = 0; i < t.n; ++i) {
      double d = 0.0;
      for (int j = 0; j < t.n; ++j)
        d += t.diff[i * t.n + j] * std::pow(t.nodes[j], p);
      const double exact = p == 0 ? 0.0 : p * std::pow(t.nodes[i], p - 1);
      EXPECT_NEAR(d, exact, 1e-9) << "p=" << p << " node " << i;
    }
  }
}

TEST_P(BasisP, DerivativeMatrixMatchesPointwiseDerivative) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (int i = 0; i < t.n; ++i)
    for (int j = 0; j < t.n; ++j)
      EXPECT_NEAR(t.diff[i * t.n + j],
                  lagrange_derivative(t.nodes, j, t.nodes[i]), 1e-9);
}

TEST_P(BasisP, TransposeIsConsistent) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (int i = 0; i < t.n; ++i)
    for (int j = 0; j < t.n; ++j)
      EXPECT_EQ(t.diff[i * t.n + j], t.diff_t[j * t.n + i]);
}

TEST_P(BasisP, FaceValuesInterpolateBoundary) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  // Interpolating f(x) = x^2 to the faces: sum_j phi_j(face) f(x_j).
  double left = 0.0, right = 0.0;
  for (int j = 0; j < t.n; ++j) {
    left += t.phi_left[j] * t.nodes[j] * t.nodes[j];
    right += t.phi_right[j] * t.nodes[j] * t.nodes[j];
  }
  if (t.n >= 3) {
    EXPECT_NEAR(left, 0.0, 1e-11);
    EXPECT_NEAR(right, 1.0, 1e-11);
  }
}

TEST_P(BasisP, LiftEqualsFaceValueOverWeight) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  for (int j = 0; j < t.n; ++j) {
    EXPECT_NEAR(t.lift_left[j], t.phi_left[j] / t.weights[j], 1e-12);
    EXPECT_NEAR(t.lift_right[j], t.phi_right[j] / t.weights[j], 1e-12);
  }
}

TEST_P(BasisP, PaddedOperatorsZeroFillAndPreserve) {
  const auto& t = basis_tables(GetParam().n, GetParam().family);
  const int ld = t.n + 5;
  AlignedVector pd = t.padded_diff(ld);
  AlignedVector pdt = t.padded_diff_t(ld);
  for (int i = 0; i < t.n; ++i) {
    for (int j = 0; j < t.n; ++j) {
      EXPECT_EQ(pd[i * ld + j], t.diff[i * t.n + j]);
      EXPECT_EQ(pdt[i * ld + j], t.diff_t[i * t.n + j]);
    }
    for (int j = t.n; j < ld; ++j) {
      EXPECT_EQ(pd[i * ld + j], 0.0);
      EXPECT_EQ(pdt[i * ld + j], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasisP,
    ::testing::Values(BasisCase{2, NodeFamily::kGaussLegendre},
                      BasisCase{3, NodeFamily::kGaussLegendre},
                      BasisCase{4, NodeFamily::kGaussLegendre},
                      BasisCase{6, NodeFamily::kGaussLegendre},
                      BasisCase{8, NodeFamily::kGaussLegendre},
                      BasisCase{11, NodeFamily::kGaussLegendre},
                      BasisCase{2, NodeFamily::kGaussLobatto},
                      BasisCase{4, NodeFamily::kGaussLobatto},
                      BasisCase{7, NodeFamily::kGaussLobatto},
                      BasisCase{11, NodeFamily::kGaussLobatto}));

TEST(BasisTables, CacheReturnsSameInstance) {
  const auto& a = basis_tables(5, NodeFamily::kGaussLegendre);
  const auto& b = basis_tables(5, NodeFamily::kGaussLegendre);
  EXPECT_EQ(&a, &b);
}

TEST(BasisTables, RejectsOutOfRangeOrder) {
  EXPECT_THROW(basis_tables(0), std::invalid_argument);
  EXPECT_THROW(basis_tables(99), std::invalid_argument);
}

TEST(BasisTables, LobattoFaceValuesAreCardinal) {
  // With Lobatto nodes the first/last node sit on the faces.
  const auto& t = basis_tables(6, NodeFamily::kGaussLobatto);
  for (int j = 0; j < t.n; ++j) {
    EXPECT_NEAR(t.phi_left[j], j == 0 ? 1.0 : 0.0, 1e-12);
    EXPECT_NEAR(t.phi_right[j], j == t.n - 1 ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Barycentric, WeightsAlternateInSign) {
  const auto& t = basis_tables(7, NodeFamily::kGaussLegendre);
  auto w = barycentric_weights(t.nodes);
  for (std::size_t j = 1; j < w.size(); ++j)
    EXPECT_LT(w[j] * w[j - 1], 0.0) << "weights must alternate";
}

}  // namespace
}  // namespace exastp
