// Runtime observability (src/telemetry/, docs/observability.md).
//
// Under test:
//   * ScopedSpan nesting and attribution: spans record only inside an
//     installed TelemetryScope with spans enabled, nested spans land in
//     emission order, shard-tracked spans feed the imbalance statistic,
//   * ThreadRing wraparound: a full ring keeps the tail of the run and
//     reports how many events it dropped,
//   * the run-scoped FLOP accounting: TelemetryScope routes
//     FlopCounter::instance() to the run's own counter and restores the
//     routing on exit (the concurrent-pool double-counting fix),
//   * the Chrome trace export: trace= produces a JSON array a minimal
//     parser can walk, with the expected phase names, per-thread tids and
//     per-shard synthetic tracks,
//   * the metrics stream: header, row cadence under metrics_interval,
//     overlap/imbalance columns populated on sharded runs,
//   * determinism: enabling every telemetry output changes no simulation
//     bytes across the threads x shards acceptance matrix (the threaded +
//     sharded ctest labels run this under TSan),
//   * overhead: spans on vs off on the same workload stays within the
//     documented budget,
//   * config plumbing: key validation and the canonical-string rules
//     (trace/metrics split the memoization key, progress does not).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/service/result_gallery.h"
#include "exastp/service/simulation_pool.h"
#include "exastp/telemetry/step_metrics.h"
#include "exastp/telemetry/telemetry.h"
#include "exastp/telemetry/trace_export.h"

namespace exastp {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Every `"name":"..."` value in a trace-export JSON document. The export
/// emits one object per line with snprintf'd fields, so a string scan is a
/// faithful (and dependency-free) reader for what the tests assert.
std::set<std::string> trace_names(const std::string& json) {
  std::set<std::string> names;
  const std::string key = "\"name\":\"";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t end = json.find('"', pos);
    if (end == std::string::npos) break;
    names.insert(json.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

std::set<int> trace_values(const std::string& json, const std::string& field) {
  std::set<int> values;
  const std::string key = "\"" + field + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    values.insert(std::atoi(json.c_str() + pos));
  }
  return values;
}

// ---------------------------------------------------------------------------
// Core units: spans, rings, scopes.

TEST(Telemetry, SpanNamesAreStable) {
  EXPECT_STREQ(span_name(SpanId::kStep), "step");
  EXPECT_STREQ(span_name(SpanId::kPredict), "predict");
  EXPECT_STREQ(span_name(SpanId::kExchangeWait), "exchange_wait");
  EXPECT_STREQ(span_name(SpanId::kJob), "job");
  for (int i = 0; i < kNumSpanIds; ++i)
    EXPECT_GT(std::string(span_name(static_cast<SpanId>(i))).size(), 0u);
}

TEST(Telemetry, SpansRecordOnlyInsideAnEnabledScope) {
  TelemetryRegistry enabled(/*spans_enabled=*/true);
  TelemetryRegistry disabled(/*spans_enabled=*/false);

  { ScopedSpan orphan(SpanId::kStep); }  // no scope installed: no-op
  EXPECT_EQ(enabled.aggregate(SpanId::kStep).count, 0);

  {
    TelemetryScope scope(&disabled);
    ScopedSpan span(SpanId::kStep);
  }
  EXPECT_EQ(disabled.aggregate(SpanId::kStep).count, 0);
  EXPECT_TRUE(disabled.rings().empty());

  {
    TelemetryScope scope(&enabled);
    EXPECT_EQ(TelemetryScope::current(), &enabled);
    ScopedSpan outer(SpanId::kStep);
    { ScopedSpan inner(SpanId::kPredict); }
  }
  EXPECT_EQ(TelemetryScope::current(), nullptr);
  EXPECT_EQ(enabled.aggregate(SpanId::kStep).count, 1);
  EXPECT_EQ(enabled.aggregate(SpanId::kPredict).count, 1);
  // Nested spans close first, so the ring holds inner before outer, and
  // the outer interval encloses the inner one.
  ASSERT_EQ(enabled.rings().size(), 1u);
  const std::vector<SpanEvent> events = enabled.rings()[0]->snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, static_cast<int>(SpanId::kPredict));
  EXPECT_EQ(events[1].id, static_cast<int>(SpanId::kStep));
  EXPECT_LE(events[1].t0_ns, events[0].t0_ns);
  EXPECT_GE(events[1].t1_ns, events[0].t1_ns);
}

TEST(Telemetry, ShardTrackedSpansFeedTheImbalanceStatistic) {
  TelemetryRegistry registry(/*spans_enabled=*/true);
  TelemetryScope scope(&registry);
  { ScopedSpan span(SpanId::kShardInterior, /*arg=*/0, /*track=*/3); }
  { ScopedSpan span(SpanId::kShardBoundary, /*arg=*/0, /*track=*/3); }
  EXPECT_GE(registry.shard_ns(3), 0);
  EXPECT_EQ(registry.aggregate(SpanId::kShardInterior).count, 1);
  EXPECT_EQ(registry.shard_ns(0), 0);
  // Out-of-range tracks are ignored, not UB.
  EXPECT_EQ(registry.shard_ns(-1), 0);
  EXPECT_EQ(registry.shard_ns(kMaxShardTracks), 0);
}

TEST(Telemetry, RingWraparoundKeepsTheTailAndCountsDrops) {
  TelemetryRegistry registry(/*spans_enabled=*/true, /*ring_capacity=*/4);
  TelemetryScope scope(&registry);
  for (int i = 0; i < 10; ++i)
    ScopedSpan span(SpanId::kStep, /*arg=*/i);

  ASSERT_EQ(registry.rings().size(), 1u);
  const ThreadRing& ring = *registry.rings()[0];
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<SpanEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The tail of the run survives, oldest surviving first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].arg, 6 + i);
  // Aggregates see every span regardless of ring drops.
  EXPECT_EQ(registry.aggregate(SpanId::kStep).count, 10);
}

TEST(Telemetry, ScopeRoutesFlopAccountingAndRestoresIt) {
  FlopCounter& process = FlopCounter::process_instance();
  const std::uint64_t before = process.total();

  TelemetryRegistry a(/*spans_enabled=*/false);
  TelemetryRegistry b(/*spans_enabled=*/false);
  {
    TelemetryScope scope_a(&a);
    FlopCounter::instance().add(WidthClass::kScalar, 100);
    {
      TelemetryScope scope_b(&b);  // scopes nest; innermost wins
      FlopCounter::instance().add(WidthClass::k256, 7);
    }
    FlopCounter::instance().add(WidthClass::kScalar, 1);
  }
  FlopCounter::instance().add(WidthClass::kScalar, 5);  // back to process

  EXPECT_EQ(a.flops().total(), 101u);
  EXPECT_EQ(b.flops().total(), 7u);
  EXPECT_EQ(process.total(), before + 5);
}

TEST(Telemetry, SummaryTableIsEmptyWithoutStepsAndPopulatedWithThem) {
  TelemetryRegistry registry(/*spans_enabled=*/true);
  EXPECT_EQ(telemetry_summary_table(registry), "");
  {
    TelemetryScope scope(&registry);
    ScopedSpan step(SpanId::kStep);
    ScopedSpan predict(SpanId::kPredict);
  }
  registry.add_counter("setup_kernel_cache_hits", 3);
  const std::string table = telemetry_summary_table(registry);
  EXPECT_NE(table.find("predict"), std::string::npos);
  EXPECT_NE(table.find("setup_kernel_cache_hits"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: trace export, metrics stream, determinism, overhead.

std::vector<std::string> base_args() {
  return {"scenario=planewave", "order=3", "cells=6x6x6", "t_end=0.04"};
}

Simulation run_with(std::vector<std::string> args,
                    const std::vector<std::string>& extra) {
  args.insert(args.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(args);
  sim.run();
  return sim;
}

TEST(Telemetry, TraceExportIsParseableWithPhaseNamesAndShardTracks) {
  const std::string path = "test_telemetry_trace.json";
  // schedule=lockstep pins the split-phase span set this test asserts
  // (exchange_wait + the overlap aggregate); the default deps schedule has
  // its own spans, covered by tests/test_oversub.cpp.
  Simulation sim = run_with(
      base_args(),
      {"shards=2x1x1", "threads=2", "schedule=lockstep", "trace=" + path});

  const std::string json = read_file(path);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.find('\''), std::string::npos);

  const std::set<std::string> names = trace_names(json);
  for (const char* expected :
       {"step", "stable_dt", "predict", "correct_interior",
        "correct_boundary", "exchange_post", "exchange_wait",
        "shard_interior", "shard_boundary", "parallel_region",
        "setup_solver", "setup_init", "process_name", "thread_name",
        "shard 0", "shard 1", "worker 1"})
    EXPECT_TRUE(names.count(expected)) << "trace lacks \"" << expected << '"';

  // One pid (local run), real thread tids plus the two synthetic shard
  // tracks at kShardTrackBase.
  EXPECT_EQ(trace_values(json, "pid"), std::set<int>{0});
  const std::set<int> tids = trace_values(json, "tid");
  EXPECT_TRUE(tids.count(0));
  EXPECT_TRUE(tids.count(kShardTrackBase + 0));
  EXPECT_TRUE(tids.count(kShardTrackBase + 1));

  // The registry agrees with the file: overlap was measured, both shards
  // accumulated sweep time.
  EXPECT_GT(sim.telemetry().aggregate(SpanId::kOverlapCompute).count, 0);
  EXPECT_GT(sim.telemetry().shard_ns(0), 0);
  EXPECT_GT(sim.telemetry().shard_ns(1), 0);
  EXPECT_GT(sim.telemetry().flops().total(), 0u);
  EXPECT_NE(sim.telemetry_summary().find("overlap efficiency"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Telemetry, TracePartMergeMatchesTheLocalWriterFormat) {
  TelemetryRegistry registry(/*spans_enabled=*/true);
  {
    TelemetryScope scope(&registry);
    ScopedSpan span(SpanId::kStep);
  }
  const std::string path = "test_telemetry_merge.json";
  write_chrome_trace_part(registry, path, 0);
  write_chrome_trace_part(registry, path, 1);
  merge_chrome_trace_parts(path, 2);

  const std::string json = read_file(path);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(trace_values(json, "pid"), (std::set<int>{0, 1}));
  const std::set<std::string> names = trace_names(json);
  EXPECT_TRUE(names.count("step"));
  EXPECT_TRUE(names.count("exastp rank 0"));
  EXPECT_TRUE(names.count("exastp rank 1"));
  // A missing part is an error, not a silent partial merge.
  EXPECT_THROW(merge_chrome_trace_parts(path, 3), std::exception);
  std::remove(path.c_str());
  for (int r = 0; r < 2; ++r)
    std::remove((path + ".r" + std::to_string(r) + ".part").c_str());
}

TEST(Telemetry, MetricsStreamHasHeaderCadenceAndOverlapColumns) {
  const std::string path = "test_telemetry_metrics.csv";
  Simulation sim = run_with(base_args(), {"shards=2x1x1", "threads=2",
                                          "metrics=" + path,
                                          "metrics_interval=2"});
  const int steps = sim.solver().steps_taken();
  ASSERT_GT(steps, 2);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GT(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "step,t,dt,wall_s,predict_s,correct_s,rk_stage_s,"
            "exchange_post_s,exchange_wait_s,overlap_eff,shard_min_s,"
            "shard_mean_s,shard_max_s,imbalance,cache_hits,flops,mflops_s,"
            "lts_clusters,lts_substeps,lts_imbalance");
  EXPECT_EQ(static_cast<int>(lines.size()) - 1, steps / 2);

  // Every row parses to the full column count; the sharded overlapped run
  // populates overlap_eff (col 9) and imbalance (col 13) with numbers,
  // and the lts columns stay "nan" (LTS off).
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> fields;
    std::stringstream ss(lines[i]);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    ASSERT_EQ(fields.size(), 20u) << lines[i];
    const double overlap_eff = std::stod(fields[9]);
    EXPECT_GE(overlap_eff, 0.0);
    EXPECT_LE(overlap_eff, 1.0);
    const double imbalance = std::stod(fields[13]);
    EXPECT_GE(imbalance, 1.0);
    EXPECT_GT(std::stod(fields[15]), 0.0) << "flops column";
    EXPECT_EQ(fields[17], "nan") << "lts_clusters off a global-stepping run";
  }
  std::remove(path.c_str());
}

TEST(Telemetry, MetricsStreamSwitchesToJsonlBySuffix) {
  const std::string path = "test_telemetry_metrics.jsonl";
  run_with(base_args(), {"metrics=" + path});
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GT(lines.size(), 0u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"step\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;  // null instead
  }
  // The monolithic run has no exchange or second shard: those columns are
  // null, not fabricated zeros.
  EXPECT_NE(lines[0].find("\"overlap_eff\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"imbalance\":null"), std::string::npos);
  std::remove(path.c_str());
}

/// The determinism acceptance matrix: every telemetry output enabled at
/// once changes no simulation bytes vs the bare run, for threads 1/4 and
/// shards 1/4 (TSan sees the 4x4 cell through the ctest labels).
TEST(Telemetry, EnablingTelemetryChangesNoSimulationBytes) {
  for (const std::string& shards : {std::string("1"), std::string("2x2x1")}) {
    for (int threads : {1, 4}) {
      const std::string tag = shards + "_" + std::to_string(threads);
      const std::string trace = "test_telemetry_inv_" + tag + ".json";
      const std::string metrics = "test_telemetry_inv_" + tag + ".csv";
      Simulation bare = run_with(
          base_args(),
          {"shards=" + shards, "threads=" + std::to_string(threads)});
      Simulation instrumented = run_with(
          base_args(),
          {"shards=" + shards, "threads=" + std::to_string(threads),
           "trace=" + trace, "metrics=" + metrics});

      const SolverBase& a = bare.solver();
      const SolverBase& b = instrumented.solver();
      ASSERT_EQ(a.grid().num_cells(), b.grid().num_cells());
      ASSERT_EQ(a.time(), b.time());
      for (int c = 0; c < a.grid().num_cells(); ++c) {
        const double* qa = a.cell_dofs(c);
        const double* qb = b.cell_dofs(c);
        for (std::size_t i = 0; i < a.layout().size(); ++i)
          ASSERT_EQ(qa[i], qb[i])
              << "shards=" << shards << " threads=" << threads << " cell "
              << c << " dof " << i;
      }
      std::remove(trace.c_str());
      std::remove(metrics.c_str());
    }
  }
}

TEST(Telemetry, OverheadStaysWithinBudget) {
  // Min-of-interleaved-runs: the minimum is the noise-resistant statistic,
  // interleaving decorrelates it from machine drift. The absolute epsilon
  // keeps a sub-0.1 s workload from failing on scheduler jitter alone.
  const std::vector<std::string> args = {"scenario=planewave", "order=4",
                                         "cells=6x6x6", "t_end=0.06",
                                         "threads=1", "shards=1"};
  const auto time_run = [&](bool telemetry) {
    std::vector<std::string> full = args;
    if (telemetry) {
      full.push_back("trace=test_telemetry_overhead.json");
      full.push_back("metrics=test_telemetry_overhead.csv");
    }
    Simulation sim = Simulation::from_args(full);
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  time_run(false);  // warm the kernel prototype cache out of the measurement
  double off = 1e300, on = 1e300;
  for (int i = 0; i < 3; ++i) {
    off = std::min(off, time_run(false));
    on = std::min(on, time_run(true));
  }
  EXPECT_LE(on, off * 1.02 + 0.02)
      << "telemetry overhead: off=" << off << " s, on=" << on << " s";
  std::remove("test_telemetry_overhead.json");
  std::remove("test_telemetry_overhead.csv");
}

// ---------------------------------------------------------------------------
// Config plumbing and the ensemble-service integration.

TEST(Telemetry, ConfigKeysParseAndValidate) {
  const SimulationConfig config = parse_simulation_args(
      {"scenario=planewave", "trace=t.json", "metrics=m.csv",
       "metrics_interval=5", "progress=stderr"});
  EXPECT_EQ(config.telemetry.trace, "t.json");
  EXPECT_EQ(config.telemetry.metrics, "m.csv");
  EXPECT_EQ(config.telemetry.metrics_interval, 5);
  EXPECT_EQ(config.telemetry.progress, "stderr");

  EXPECT_THROW(
      parse_simulation_args({"scenario=planewave", "metrics_interval=0"}),
      std::exception);
  EXPECT_THROW(
      parse_simulation_args({"scenario=planewave", "progress=stdout"}),
      std::exception);
  EXPECT_THROW(parse_simulation_args({"scenario=planewave", "trace="}),
               std::exception);
}

TEST(Telemetry, CanonicalStringSplitsOnArtifactsNotOnProgress) {
  SimulationConfig a, b;
  EXPECT_EQ(canonical_config_string(a), canonical_config_string(b));
  b.telemetry.progress = "stderr";  // heartbeat: no artifact, same key
  EXPECT_EQ(canonical_config_string(a), canonical_config_string(b));
  b.telemetry.trace = "t.json";  // artifact: splits the memoization key
  EXPECT_NE(canonical_config_string(a), canonical_config_string(b));
  b.telemetry.trace.clear();
  b.telemetry.metrics = "m.csv";
  EXPECT_NE(canonical_config_string(a), canonical_config_string(b));
  b.telemetry.metrics.clear();
  b.telemetry.metrics_interval = 7;
  EXPECT_NE(canonical_config_string(a), canonical_config_string(b));
}

TEST(Telemetry, ConcurrentPoolJobsScopeTheirOwnFlops) {
  // Four concurrent jobs, two distinct configs: per-job registries mean
  // each result reports exactly its own run's FLOPs — identical configs
  // report identical counts (FLOP totals are deterministic), and the
  // process-wide counter no longer absorbs scoped work.
  const std::uint64_t process_before =
      FlopCounter::process_instance().total();
  PoolOptions options;
  options.jobs = 4;
  options.memoize = false;
  options.base_args = {"scenario=planewave", "cells=4x4x4", "t_end=0.03",
                       "threads=1"};
  SimulationPool pool(options);
  pool.submit({"order=3"});
  pool.submit({"order=4"});
  pool.submit({"order=3"});
  pool.submit({"order=4"});
  const std::vector<JobResult> results = pool.run({});
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_GT(r.flops, 0u);
  }
  EXPECT_EQ(results[0].flops, results[2].flops);
  EXPECT_EQ(results[1].flops, results[3].flops);
  EXPECT_GT(results[1].flops, results[0].flops);  // order 4 does more work
  EXPECT_EQ(FlopCounter::process_instance().total(), process_before);
}

TEST(Telemetry, GalleryRowsCarryFlops) {
  JobResult r;
  r.id = 1;
  r.label = "x";
  r.status = JobStatus::kDone;
  r.flops = 123456789u;

  std::ostringstream csv;
  auto gallery = make_gallery(parse_gallery_spec("csv"), &csv);
  gallery->open();
  gallery->add(r);
  gallery->finish();
  EXPECT_NE(csv.str().find(",123456789,"), std::string::npos);

  const std::string bin = "test_telemetry_gallery.bin";
  auto bin_gallery = make_gallery(parse_gallery_spec("bin:" + bin), nullptr);
  bin_gallery->open();
  bin_gallery->add(r);
  bin_gallery->finish();
  const std::vector<JobResult> rows = read_gallery_records(bin);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].flops, 123456789u);
  std::remove(bin.c_str());
}

}  // namespace
}  // namespace exastp
