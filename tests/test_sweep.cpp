// Tests for src/engine/sweep: spec parsing, arg extraction, and the
// streaming summary CSV produced by run_sweep (one row per completed run,
// per-run file outputs suffixed so runs do not overwrite each other).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/engine/sweep.h"

namespace exastp {
namespace {

TEST(SweepSpec, ParsesKeyAndValues) {
  const SweepSpec spec = parse_sweep_spec("order:2,3,4");
  EXPECT_EQ(spec.key, "order");
  EXPECT_EQ(spec.values, (std::vector<std::string>{"2", "3", "4"}));
}

TEST(SweepSpec, ParsesSingleValueAndDottedKeys) {
  const SweepSpec spec = parse_sweep_spec("scenario.kx:2");
  EXPECT_EQ(spec.key, "scenario.kx");
  EXPECT_EQ(spec.values, (std::vector<std::string>{"2"}));
}

TEST(SweepSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_sweep_spec("order"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(":2,3"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("order:2,,3"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("sweep:a,b"), std::invalid_argument);
}

TEST(SweepSpec, ExtractSeparatesTheSweepArg) {
  SweepSpec spec;
  bool found = false;
  const std::vector<std::string> rest = extract_sweep(
      {"scenario=planewave", "sweep=order:2,3", "t_end=0.1"}, &spec, &found);
  EXPECT_TRUE(found);
  EXPECT_EQ(spec.key, "order");
  EXPECT_EQ(rest,
            (std::vector<std::string>{"scenario=planewave", "t_end=0.1"}));

  found = true;
  const std::vector<std::string> none =
      extract_sweep({"scenario=planewave"}, &spec, &found);
  EXPECT_FALSE(found);
  EXPECT_EQ(none, (std::vector<std::string>{"scenario=planewave"}));

  EXPECT_THROW(
      extract_sweep({"sweep=order:2", "sweep=cfl:0.3"}, &spec, &found),
      std::invalid_argument);
}

TEST(RunSweep, StreamsOneSummaryRowPerRun) {
  std::ostringstream out;
  const int runs = run_sweep(
      {"scenario=planewave", "cells=3x3x3", "t_end=0.05"},
      {"order", {"2", "3", "4"}}, out);
  EXPECT_EQ(runs, 3);

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "order,steps,t,l2_error,seconds,flops");
  std::vector<double> errors;
  for (const std::string expected_value : {"2", "3", "4"}) {
    ASSERT_TRUE(std::getline(in, line)) << "missing row for " << expected_value;
    std::stringstream row(line);
    std::string value;
    ASSERT_TRUE(std::getline(row, value, ','));
    EXPECT_EQ(value, expected_value);
    std::string steps, t, l2, seconds;
    ASSERT_TRUE(std::getline(row, steps, ','));
    ASSERT_TRUE(std::getline(row, t, ','));
    ASSERT_TRUE(std::getline(row, l2, ','));
    ASSERT_TRUE(std::getline(row, seconds));
    EXPECT_GT(std::stoi(steps), 0);
    EXPECT_NEAR(std::stod(t), 0.05, 1e-9);
    errors.push_back(std::stod(l2));
    EXPECT_GT(std::stod(seconds), 0.0);
  }
  EXPECT_FALSE(std::getline(in, line));
  // The planewave has an exact solution: error must fall with order.
  EXPECT_LT(errors[2], errors[0]);
}

TEST(RunSweep, SuffixesPerRunOutputsSoRunsDoNotCollide) {
  std::ostringstream out;
  run_sweep({"scenario=planewave", "cells=3x3x3", "t_end=0.02",
             "receivers=0.5,0.5,0.5",
             "output.receivers_csv=/tmp/exastp_sweep_recv.csv"},
            {"order", {"2", "3"}}, out);
  for (const char* path :
       {"/tmp/exastp_sweep_recv_2.csv", "/tmp/exastp_sweep_recv_3.csv"}) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header.rfind("t,", 0), 0u) << path;
    std::remove(path);
  }
}

TEST(RunSweep, SweptScenarioParamsReachTheScenario) {
  // Sweeping the planewave wavenumber changes the workload: kx=2 halves
  // the wavelength, so the same mesh resolves it worse and the L2 error
  // must grow.
  std::ostringstream out;
  const int runs = run_sweep(
      {"scenario=planewave", "order=4", "cells=3x3x3", "t_end=0.05"},
      {"scenario.kx", {"1", "2"}}, out);
  EXPECT_EQ(runs, 2);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  std::vector<double> errors;
  while (std::getline(in, line)) {
    std::stringstream row(line);
    std::string field;
    for (int i = 0; i < 4; ++i) std::getline(row, field, ',');
    errors.push_back(std::stod(field));
  }
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_GT(errors[1], 2.0 * errors[0]);
}

}  // namespace
}  // namespace exastp
