// Tests for src/gemm: every ISA path against the reference triple loop over
// a shape sweep covering the slice shapes used by the STP kernels, leading
// dimension handling, accumulate/overwrite semantics, and FLOP accounting.
#include <gtest/gtest.h>

#include <random>

#include "exastp/common/aligned.h"
#include "exastp/gemm/gemm.h"
#include "exastp/perf/flop_count.h"

namespace exastp {
namespace {

struct GemmCase {
  int m, n, k;
  int lda_extra, ldb_extra, ldc_extra;
  Isa isa;
};

void PrintTo(const GemmCase& c, std::ostream* os) {
  *os << c.m << "x" << c.n << "x" << c.k << "_ld" << c.lda_extra
      << c.ldb_extra << c.ldc_extra << "_" << isa_name(c.isa);
}

class GemmP : public ::testing::TestWithParam<GemmCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    if (!host_supports(p.isa)) GTEST_SKIP() << "host lacks " << isa_name(p.isa);
    lda_ = p.k + p.lda_extra;
    ldb_ = p.n + p.ldb_extra;
    ldc_ = p.n + p.ldc_extra;
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    a_.resize(static_cast<std::size_t>(p.m) * lda_);
    b_.resize(static_cast<std::size_t>(p.k) * ldb_);
    c_.resize(static_cast<std::size_t>(p.m) * ldc_);
    for (auto& x : a_) x = dist(rng);
    for (auto& x : b_) x = dist(rng);
    for (auto& x : c_) x = dist(rng);
  }

  int lda_ = 0, ldb_ = 0, ldc_ = 0;
  AlignedVector a_, b_, c_;
};

TEST_P(GemmP, SetMatchesReference) {
  const auto& p = GetParam();
  AlignedVector expect = c_;
  gemm_reference(false, 1.0, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_,
                 expect.data(), ldc_);
  AlignedVector got = c_;
  gemm_set(p.isa, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_, got.data(),
           ldc_);
  for (int i = 0; i < p.m; ++i)
    for (int j = 0; j < p.n; ++j)
      EXPECT_NEAR(got[i * ldc_ + j], expect[i * ldc_ + j], 1e-13)
          << i << "," << j;
}

TEST_P(GemmP, AccMatchesReference) {
  const auto& p = GetParam();
  AlignedVector expect = c_;
  gemm_reference(true, 1.0, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_,
                 expect.data(), ldc_);
  AlignedVector got = c_;
  gemm_acc(p.isa, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_, got.data(),
           ldc_);
  for (int i = 0; i < p.m; ++i)
    for (int j = 0; j < p.n; ++j)
      EXPECT_NEAR(got[i * ldc_ + j], expect[i * ldc_ + j], 1e-13);
}

TEST_P(GemmP, ScaledVariants) {
  const auto& p = GetParam();
  const double alpha = -2.5;
  AlignedVector expect = c_;
  gemm_reference(true, alpha, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_,
                 expect.data(), ldc_);
  AlignedVector got = c_;
  gemm_acc_scaled(p.isa, alpha, p.m, p.n, p.k, a_.data(), lda_, b_.data(),
                  ldb_, got.data(), ldc_);
  for (int i = 0; i < p.m; ++i)
    for (int j = 0; j < p.n; ++j)
      EXPECT_NEAR(got[i * ldc_ + j], expect[i * ldc_ + j], 1e-12);
}

TEST_P(GemmP, LeavesBeyondLdUntouched) {
  const auto& p = GetParam();
  if (p.ldc_extra == 0) GTEST_SKIP();
  AlignedVector got = c_;
  gemm_set(p.isa, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_, got.data(),
           ldc_);
  for (int i = 0; i < p.m; ++i)
    for (int j = p.n; j < ldc_; ++j)
      EXPECT_EQ(got[i * ldc_ + j], c_[i * ldc_ + j])
          << "wrote past n into the ld gap";
}

TEST_P(GemmP, CountsTwoMNKFlops) {
  const auto& p = GetParam();
  FlopSection section;
  AlignedVector got = c_;
  gemm_acc(p.isa, p.m, p.n, p.k, a_.data(), lda_, b_.data(), ldb_, got.data(),
           ldc_);
  EXPECT_EQ(section.delta().total(),
            2ull * p.m * p.n * p.k);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmP,
    ::testing::Values(
        // Degenerate and tiny shapes.
        GemmCase{1, 1, 1, 0, 0, 0, Isa::kScalar},
        GemmCase{2, 3, 4, 0, 0, 0, Isa::kScalar},
        GemmCase{4, 5, 4, 1, 2, 3, Isa::kScalar},
        // AoS x-derivative slices: D (n x n) times slice (n x mPad).
        GemmCase{4, 24, 4, 0, 0, 0, Isa::kAvx2},
        GemmCase{8, 24, 8, 0, 0, 0, Isa::kAvx512},
        GemmCase{11, 24, 11, 0, 0, 0, Isa::kAvx512},
        // Fused y/z slabs: D times (n x n*mPad).
        GemmCase{6, 144, 6, 0, 0, 0, Isa::kAvx512},
        GemmCase{9, 216, 9, 0, 0, 0, Isa::kAvx2},
        // AoSoA x-derivative: (m x n) times Dt (n x nPad).
        GemmCase{21, 8, 8, 0, 0, 0, Isa::kAvx512},
        GemmCase{21, 16, 9, 7, 0, 0, Isa::kAvx512},
        // Slice strides much larger than the row (Fig. 3 slice extraction).
        GemmCase{5, 8, 5, 40, 40, 40, Isa::kAvx512},
        GemmCase{5, 7, 5, 3, 9, 17, Isa::kAvx2},
        // Non-multiple N exercising the remainder path.
        GemmCase{6, 13, 6, 0, 0, 0, Isa::kAvx512},
        GemmCase{6, 3, 6, 0, 0, 0, Isa::kAvx2}));

TEST(GemmWidthClass, MapsIsaToPacking) {
  EXPECT_EQ(gemm_width_class(Isa::kScalar), WidthClass::k128);
  EXPECT_EQ(gemm_width_class(Isa::kAvx2), WidthClass::k256);
  EXPECT_EQ(gemm_width_class(Isa::kAvx512), WidthClass::k512);
}

TEST(GemmCounters, RemainderColumnsCountAsScalar) {
  if (!host_supports(Isa::kAvx512)) GTEST_SKIP();
  AlignedVector a(8 * 8, 1.0), b(8 * 13, 1.0), c(8 * 13, 0.0);
  FlopSection section;
  gemm_set(Isa::kAvx512, 8, 13, 8, a.data(), 8, b.data(), 13, c.data(), 13);
  FlopCounter d = section.delta();
  EXPECT_EQ(d.flops[static_cast<int>(WidthClass::k512)], 2ull * 8 * 8 * 8);
  EXPECT_EQ(d.flops[static_cast<int>(WidthClass::kScalar)], 2ull * 8 * 5 * 8);
}

TEST(GemmErrors, RejectsBadLeadingDimensions) {
  AlignedVector a(16, 0.0), b(16, 0.0), c(16, 0.0);
  EXPECT_THROW(
      gemm_set(Isa::kScalar, 2, 4, 2, a.data(), 1, b.data(), 4, c.data(), 4),
      std::invalid_argument);
  EXPECT_THROW(
      gemm_set(Isa::kScalar, 2, 4, 2, a.data(), 2, b.data(), 3, c.data(), 4),
      std::invalid_argument);
}

TEST(GemmProperty, LinearityInA) {
  // gemm(alpha*A1 + A2) == alpha*gemm(A1) + gemm(A2) — exercised via the
  // scaled-accumulate entry points.
  if (!host_supports(Isa::kAvx512)) GTEST_SKIP();
  const int m = 6, n = 16, k = 6;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  AlignedVector a1(m * k), a2(m * k), b(k * n);
  for (auto* v : {&a1, &a2, &b})
    for (auto& x : *v) x = dist(rng);
  AlignedVector lhs(m * n, 0.0), rhs(m * n, 0.0);
  const double alpha = 1.75;
  // lhs = (alpha*A1 + A2) * B
  AlignedVector asum(m * k);
  for (int i = 0; i < m * k; ++i) asum[i] = alpha * a1[i] + a2[i];
  gemm_set(Isa::kAvx512, m, n, k, asum.data(), k, b.data(), n, lhs.data(), n);
  // rhs = alpha*(A1*B) + A2*B
  gemm_set_scaled(Isa::kAvx512, alpha, m, n, k, a1.data(), k, b.data(), n,
                  rhs.data(), n);
  gemm_acc(Isa::kAvx512, m, n, k, a2.data(), k, b.data(), n, rhs.data(), n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
}

}  // namespace
}  // namespace exastp
