// Docs/parser synchronization: docs/config_reference.md documents exactly
// the keys parse_simulation_args accepts (plus the driver-only keys
// exastp_run peels off first).
//
// The reference uses one `### `key`` heading per key, so the contract is
// mechanical: the set of backtick-quoted heading tokens equals
// accepted_config_keys() + driver_only_keys(). A parser key without a
// heading fails here ("undocumented key"); a heading without a parser key
// fails too ("stale documentation"). CI runs this test in every build-and-
// test job, so the reference cannot drift from the parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/engine/simulation_config.h"

namespace exastp {
namespace {

#ifndef EXASTP_SOURCE_DIR
#error "EXASTP_SOURCE_DIR must be defined by the build (see CMakeLists.txt)"
#endif

std::string config_reference_path() {
  return std::string(EXASTP_SOURCE_DIR) + "/docs/config_reference.md";
}

/// Keys documented as `### `key`` headings in docs/config_reference.md.
std::set<std::string> documented_keys() {
  std::ifstream in(config_reference_path());
  EXPECT_TRUE(in.good()) << "cannot open " << config_reference_path();
  std::set<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    const std::string prefix = "### `";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t end = line.find('`', prefix.size());
    EXPECT_NE(end, std::string::npos) << "malformed heading: " << line;
    if (end == std::string::npos) continue;
    keys.insert(line.substr(prefix.size(), end - prefix.size()));
  }
  return keys;
}

std::string join(const std::vector<std::string>& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? ", " : "") << v[i];
  return os.str();
}

TEST(Docs, ConfigReferenceMatchesParser) {
  std::set<std::string> expected;
  for (const std::string& key : accepted_config_keys()) expected.insert(key);
  for (const std::string& key : driver_only_keys()) expected.insert(key);
  ASSERT_FALSE(expected.empty());

  const std::set<std::string> documented = documented_keys();

  std::vector<std::string> undocumented;
  std::set_difference(expected.begin(), expected.end(), documented.begin(),
                      documented.end(), std::back_inserter(undocumented));
  EXPECT_TRUE(undocumented.empty())
      << "parser keys missing from docs/config_reference.md: "
      << join(undocumented);

  std::vector<std::string> stale;
  std::set_difference(documented.begin(), documented.end(), expected.begin(),
                      expected.end(), std::back_inserter(stale));
  EXPECT_TRUE(stale.empty())
      << "docs/config_reference.md documents keys the parser does not "
         "accept: "
      << join(stale);
}

TEST(Docs, UsageTextCoversEveryKey) {
  // The CLI usage text must mention every accepted key too (it is the
  // terse sibling of the reference).
  const std::string usage = simulation_usage();
  for (const std::string& key : accepted_config_keys()) {
    // The scenario passthrough family is spelled "scenario.<key>" in usage.
    const std::string needle =
        key == "scenario.*" ? "scenario." : key + "=";
    EXPECT_NE(usage.find(needle), std::string::npos)
        << "simulation_usage() does not mention " << key;
  }
}

}  // namespace
}  // namespace exastp
