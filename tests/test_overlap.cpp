// The split-phase exchange protocol: interior/boundary cell
// classification and bitwise equivalence of the overlapped schedule
// (post -> interior -> wait -> boundary) against the unsplit
// exchange-then-full-phase sweep.
//
// The contract under test (solver/exchange_backend.h): splitting each
// phase's cell loop into an interior sweep that runs while halos are in
// flight and a boundary sweep after wait() never changes any cell's bits,
// for either stepper, any PDE and any thread count. These tests carry the
// `threaded` ctest label the TSan CI job runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "exastp/common/simd.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/halo_exchange.h"
#include "exastp/solver/rk_dg_solver.h"

namespace exastp {
namespace {

TEST(CellClassification, WholeDomainGridsAreAllInterior) {
  GridSpec spec;
  spec.cells = {4, 3, 2};
  const CellClassification cells = classify_cells(Grid(spec));
  EXPECT_EQ(cells.interior.size(), 24u);
  EXPECT_TRUE(cells.boundary.empty());
  for (int c = 0; c < 24; ++c)
    EXPECT_EQ(cells.interior[static_cast<std::size_t>(c)], c);
}

TEST(CellClassification, HaloAdjacentPlanesAreBoundary) {
  GridSpec spec;
  spec.cells = {8, 4, 4};  // all-periodic default
  Partition partition(spec, {2, 1, 1});
  for (int s = 0; s < 2; ++s) {
    const Subdomain& sub = partition.subdomain(s);
    // Both x faces of each 4x4x4 shard are remote (the second via the
    // periodic wrap); y/z wrap inside the full-span view.
    EXPECT_EQ(sub.cells.boundary.size(), 2u * 4 * 4);
    EXPECT_EQ(sub.cells.interior.size(), 2u * 4 * 4);
    EXPECT_EQ(sub.cells.interior.size() + sub.cells.boundary.size(),
              static_cast<std::size_t>(sub.grid.num_cells()));
    for (int c : sub.cells.boundary) {
      const auto coords = sub.grid.coords(c);
      EXPECT_TRUE(coords[0] == 0 || coords[0] == sub.size[0] - 1) << c;
    }
    for (int c : sub.cells.interior) {
      const auto coords = sub.grid.coords(c);
      EXPECT_TRUE(coords[0] > 0 && coords[0] < sub.size[0] - 1) << c;
    }
  }
}

TEST(CellClassification, OutflowEdgesNeedNoHaloAndStayInterior) {
  GridSpec spec;
  spec.cells = {4, 3, 3};
  spec.boundary = {BoundaryKind::kOutflow, BoundaryKind::kOutflow,
                   BoundaryKind::kOutflow};
  Partition partition(spec, {2, 1, 1});
  for (int s = 0; s < 2; ++s) {
    const Subdomain& sub = partition.subdomain(s);
    // Only the inter-shard interface plane reads exchanged data; the true
    // domain edge builds ghost states, so its cells stay interior.
    EXPECT_EQ(sub.cells.boundary.size(), 3u * 3);
    const int plane = s == 0 ? sub.size[0] - 1 : 0;
    for (int c : sub.cells.boundary)
      EXPECT_EQ(sub.grid.coords(c)[0], plane);
  }
}

// ---- Overlapped vs unsplit schedule: bitwise equivalence ---------------

// Per-shard solvers plus the exchange connecting them — the raw material
// ShardedSolver composes, driven by hand here so the two schedules can be
// compared directly.

std::unique_ptr<SolverBase> make_solver(const std::string& stepper,
                                        const std::shared_ptr<const KernelFactory>& pde,
                                        const Grid& grid, int order,
                                        int threads) {
  std::unique_ptr<SolverBase> solver;
  if (stepper == "ader") {
    solver = std::make_unique<AderDgSolver>(
        pde->runtime(),
        pde->make_kernel(StpVariant::kAosoaSplitCk, order, host_best_isa()),
        grid);
  } else {
    solver = std::make_unique<RkDgSolver>(pde->runtime(), order,
                                          host_best_isa(), grid);
  }
  solver->set_num_threads(threads);
  return solver;
}

std::vector<std::unique_ptr<SolverBase>> make_shard_set(
    const Partition& partition, const std::string& stepper,
    const std::shared_ptr<const KernelFactory>& pde,
    const InitialCondition& init, int order, int threads) {
  std::vector<std::unique_ptr<SolverBase>> shards;
  for (int s = 0; s < partition.num_shards(); ++s) {
    shards.push_back(make_solver(stepper, pde, partition.subdomain(s).grid,
                                 order, threads));
    shards.back()->set_initial_condition(init);
  }
  return shards;
}

std::vector<double*> collect_halo_fields(
    std::vector<std::unique_ptr<SolverBase>>& shards, int phase,
    bool* exchanging) {
  std::vector<double*> fields(shards.size(), nullptr);
  std::size_t wanting = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    fields[s] = shards[s]->step_phase_halo(phase);
    if (fields[s] != nullptr) ++wanting;
  }
  EXPECT_TRUE(wanting == 0 || wanting == shards.size());
  *exchanging = wanting > 0;
  return fields;
}

/// The PR-4 schedule: complete the exchange, then run each phase whole.
void step_unsplit(std::vector<std::unique_ptr<SolverBase>>& shards,
                  InProcessExchange& exchange, double dt) {
  for (int phase = 0; phase < shards[0]->num_step_phases(); ++phase) {
    bool exchanging = false;
    auto fields = collect_halo_fields(shards, phase, &exchanging);
    if (exchanging) exchange.exchange(fields);
    for (auto& shard : shards) shard->step_phase(phase, dt);
  }
}

/// The split-phase schedule: interior sweeps run between post and wait.
void step_overlapped(std::vector<std::unique_ptr<SolverBase>>& shards,
                     InProcessExchange& exchange, double dt) {
  for (int phase = 0; phase < shards[0]->num_step_phases(); ++phase) {
    bool exchanging = false;
    auto fields = collect_halo_fields(shards, phase, &exchanging);
    if (exchanging) exchange.post(fields);
    for (auto& shard : shards) shard->step_phase_interior(phase, dt);
    if (exchanging) exchange.wait();
    for (auto& shard : shards) shard->step_phase_boundary(phase, dt);
  }
}

void expect_bitwise_equal(const std::vector<std::unique_ptr<SolverBase>>& a,
                          const std::vector<std::unique_ptr<SolverBase>>& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s]->grid().num_cells(), b[s]->grid().num_cells());
    EXPECT_EQ(a[s]->time(), b[s]->time());
    for (int c = 0; c < a[s]->grid().num_cells(); ++c) {
      const double* qa = a[s]->cell_dofs(c);
      const double* qb = b[s]->cell_dofs(c);
      for (std::size_t i = 0; i < a[s]->layout().size(); ++i)
        ASSERT_EQ(qa[i], qb[i])
            << label << ": shard " << s << " cell " << c << " slot " << i;
    }
  }
}

/// Drives both schedules over identical shard sets and requires bitwise
/// equality — the "split loop equals unsplit sweep" acceptance matrix.
void expect_split_invariant(const std::string& stepper,
                            const std::string& pde_name,
                            const std::string& scenario_name) {
  SimulationConfig config;
  config.scenario = scenario_name;
  config.pde = pde_name;
  apply_scenario_defaults(config);
  config.pde = pde_name;
  config.grid.cells = {6, 5, 4};
  const int order = 3;

  const std::shared_ptr<const KernelFactory> pde = find_pde(config.pde);
  const InitialCondition init =
      find_scenario(scenario_name)->initial_condition(pde, config);
  // 2x2x1: both x and y faces are remote on every shard (ragged in y), so
  // each shard has interior and boundary cells.
  Partition partition(config.grid, {2, 2, 1});
  const std::size_t cell_size =
      make_solver(stepper, pde, partition.subdomain(0).grid, order, 1)
          ->layout()
          .size();

  for (int threads : {1, 4}) {
    auto unsplit =
        make_shard_set(partition, stepper, pde, init, order, threads);
    auto overlapped =
        make_shard_set(partition, stepper, pde, init, order, threads);
    InProcessExchange exchange_a(partition, cell_size);
    InProcessExchange exchange_b(partition, cell_size);

    double dt = unsplit[0]->stable_dt();
    for (const auto& shard : unsplit)
      dt = std::min(dt, shard->stable_dt());
    for (int step = 0; step < 3; ++step) {
      step_unsplit(unsplit, exchange_a, dt);
      step_overlapped(overlapped, exchange_b, dt);
    }
    expect_bitwise_equal(unsplit, overlapped,
                         stepper + "/" + pde_name + " threads=" +
                             std::to_string(threads));
  }
}

TEST(SplitPhase, AderAcousticMatchesUnsplitSweep) {
  expect_split_invariant("ader", "acoustic", "planewave");
}

TEST(SplitPhase, AderMaxwellMatchesUnsplitSweep) {
  expect_split_invariant("ader", "maxwell", "gaussian");
}

TEST(SplitPhase, RkAcousticMatchesUnsplitSweep) {
  expect_split_invariant("rk4", "acoustic", "planewave");
}

TEST(SplitPhase, RkMaxwellMatchesUnsplitSweep) {
  expect_split_invariant("rk4", "maxwell", "gaussian");
}

}  // namespace
}  // namespace exastp
