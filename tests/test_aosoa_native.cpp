// Tests for the AoSoA-native kernel entry point (the paper's "switch the
// whole engine to AoSoA" future-work extension): running directly on AoSoA
// buffers must give exactly the same results as the transposing wrapper.
#include <gtest/gtest.h>

#include <cmath>

#include "exastp/kernels/aosoa_stp.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

template <class Pde>
void fill_state(const AosLayout& aos, AlignedVector& q) {
  q.assign(aos.size(), 0.0);
  const int n = aos.n;
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        double* node = q.data() + aos.idx(k3, k2, k1, 0);
        for (int s = 0; s < Pde::kVars; ++s)
          node[s] = std::sin(0.21 * (k1 + 3 * k2 + 7 * k3) + s);
        if constexpr (std::is_same_v<Pde, AcousticPde>) {
          node[Pde::kRho] = 1.1;
          node[Pde::kC] = 2.0;
        } else {
          node[Pde::kRho] = 2.7;
          node[Pde::kCp] = 6.0;
          node[Pde::kCs] = 3.4;
          for (int r = 0; r < 3; ++r)
            node[Pde::kMetric + 3 * r + r] = 1.0;
        }
      }
}

template <class Pde>
void check_native_matches_wrapper(int order) {
  const Isa isa = host_best_isa();
  AosoaStp<Pde> kernel(Pde{}, order, isa);
  const AosLayout& aos = kernel.layout();
  const AosoaLayout& aosoa = kernel.internal_layout();

  AlignedVector q;
  fill_state<Pde>(aos, q);
  const double dt = 1e-3;
  const std::array<double, 3> inv_dx{4.0, 4.0, 4.0};

  // Wrapper path (AoS in/out).
  AlignedVector qavg(aos.size()), f0(aos.size()), f1(aos.size()),
      f2(aos.size());
  StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};
  kernel.compute(q.data(), dt, inv_dx, nullptr, out);

  // Native path (AoSoA in/out), transposed manually for comparison.
  AlignedVector q_a(aosoa.size()), qavg_a(aosoa.size()),
      g0(aosoa.size()), g1(aosoa.size()), g2(aosoa.size());
  aos_to_aosoa(q.data(), aos, q_a.data(), aosoa);
  kernel.compute_native(q_a.data(), dt, inv_dx, nullptr, qavg_a.data(),
                        {g0.data(), g1.data(), g2.data()});

  AlignedVector check(aos.size());
  aosoa_to_aos(qavg_a.data(), aosoa, check.data(), aos);
  for (std::size_t i = 0; i < aos.size(); ++i)
    ASSERT_EQ(check[i], qavg[i]) << "qavg differs at " << i;
  const AlignedVector* favg_a[3] = {&g0, &g1, &g2};
  const AlignedVector* favg[3] = {&f0, &f1, &f2};
  for (int d = 0; d < 3; ++d) {
    aosoa_to_aos(favg_a[d]->data(), aosoa, check.data(), aos);
    for (std::size_t i = 0; i < aos.size(); ++i)
      ASSERT_EQ(check[i], (*favg[d])[i]) << "favg" << d << " differs at " << i;
  }
}

TEST(AosoaNative, MatchesWrapperAcousticOrder4) {
  check_native_matches_wrapper<AcousticPde>(4);
}

TEST(AosoaNative, MatchesWrapperAcousticOrder7) {
  check_native_matches_wrapper<AcousticPde>(7);
}

TEST(AosoaNative, MatchesWrapperCurvilinearOrder5) {
  check_native_matches_wrapper<CurvilinearElasticPde>(5);
}

TEST(AosoaNative, MatchesWrapperCurvilinearOrder9) {
  check_native_matches_wrapper<CurvilinearElasticPde>(9);
}

TEST(AosoaNative, NativeSkipsTransposesButCountsSameFlops) {
  // The native path performs the same arithmetic (transposes are pure data
  // movement and count no FLOPs).
  const Isa isa = host_best_isa();
  AosoaStp<AcousticPde> kernel(AcousticPde{}, 5, isa);
  const AosLayout& aos = kernel.layout();
  const AosoaLayout& aosoa = kernel.internal_layout();
  AlignedVector q;
  fill_state<AcousticPde>(aos, q);
  AlignedVector qavg(aos.size()), f0(aos.size()), f1(aos.size()),
      f2(aos.size());
  StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};
  FlopSection wrapper_section;
  kernel.compute(q.data(), 1e-3, {4.0, 4.0, 4.0}, nullptr, out);
  const auto wrapper_flops = wrapper_section.delta().total();

  AlignedVector q_a(aosoa.size()), qavg_a(aosoa.size()), g0(aosoa.size()),
      g1(aosoa.size()), g2(aosoa.size());
  aos_to_aosoa(q.data(), aos, q_a.data(), aosoa);
  FlopSection native_section;
  kernel.compute_native(q_a.data(), 1e-3, {4.0, 4.0, 4.0}, nullptr,
                        qavg_a.data(), {g0.data(), g1.data(), g2.data()});
  EXPECT_EQ(native_section.delta().total(), wrapper_flops);
}

}  // namespace
}  // namespace exastp
