// Tests for the src/io streaming observer subsystem: hook ordering on the
// SolverBase time loop, batched receiver accuracy against the analytic
// planewave, incremental writer round-trips (appending CSV, binary record
// stream, VTK series + .pvd index), and the two acceptance guards — field
// state bitwise-identical with/without observers at any thread count, and
// < 5% wall-clock overhead with 64 receivers on the threaded planewave
// workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/io/receiver_network.h"
#include "exastp/io/receiver_sinks.h"
#include "exastp/io/vtk_series.h"
#include "exastp/scenarios/planewave.h"

namespace exastp {
namespace {

/// Logs every hook invocation as "start", "step<k>" or "finish".
class LoggingObserver final : public Observer {
 public:
  void on_start(const SolverBase&) override { events.push_back("start"); }
  void on_step(const SolverBase&, int step) override {
    events.push_back("step" + std::to_string(step));
  }
  void on_finish(const SolverBase&) override { events.push_back("finish"); }

  std::vector<std::string> events;
};

Simulation planewave_sim(const std::vector<std::string>& extra = {}) {
  // A base default survives only when `extra` does not set the same key —
  // duplicate config keys are a hard parse error.
  std::vector<std::string> args;
  for (const std::string& def :
       {"scenario=planewave", "order=4", "cells=3x3x3", "t_end=0.1"}) {
    const std::string key = def.substr(0, def.find('=') + 1);
    bool overridden = false;
    for (const std::string& arg : extra)
      if (arg.rfind(key, 0) == 0) overridden = true;
    if (!overridden) args.push_back(def);
  }
  args.insert(args.end(), extra.begin(), extra.end());
  return Simulation::from_args(args);
}

TEST(ObserverHooks, FireInStartStepFinishOrder) {
  Simulation sim = planewave_sim();
  LoggingObserver log;
  sim.solver().add_observer(&log);
  const int steps = sim.solver().run_until(0.05);
  ASSERT_GT(steps, 0);
  ASSERT_EQ(log.events.size(), static_cast<std::size_t>(steps) + 2);
  EXPECT_EQ(log.events.front(), "start");
  EXPECT_EQ(log.events.back(), "finish");
  for (int i = 0; i < steps; ++i)
    EXPECT_EQ(log.events[static_cast<std::size_t>(i) + 1],
              "step" + std::to_string(i + 1));
}

TEST(ObserverHooks, StartFiresOnceAcrossRepeatedRuns) {
  Simulation sim = planewave_sim();
  LoggingObserver log;
  sim.solver().add_observer(&log);
  const int first = sim.solver().run_until(0.03);
  const int second = sim.solver().run_until(0.06);
  ASSERT_GT(first, 0);
  ASSERT_GT(second, 0);
  // One start, every step numbered cumulatively, one finish per run.
  EXPECT_EQ(std::count(log.events.begin(), log.events.end(), "start"), 1);
  EXPECT_EQ(std::count(log.events.begin(), log.events.end(), "finish"), 2);
  EXPECT_EQ(log.events[1], "step1");
  EXPECT_EQ(log.events.back(), "finish");
  EXPECT_EQ(sim.solver().steps_taken(), first + second);
}

TEST(ObserverHooks, ZeroStepRunStillStartsAndFinishes) {
  Simulation sim = planewave_sim();
  LoggingObserver log;
  sim.solver().add_observer(&log);
  EXPECT_EQ(sim.solver().run_until(0.0), 0);
  EXPECT_EQ(log.events, (std::vector<std::string>{"start", "finish"}));
}

TEST(ObserverHooks, ObserverAttachedBetweenRunsGetsItsStart) {
  Simulation sim = planewave_sim();
  sim.solver().run_until(0.03);
  LoggingObserver late;
  sim.solver().add_observer(&late);
  sim.solver().run_until(0.06);
  ASSERT_FALSE(late.events.empty());
  EXPECT_EQ(late.events.front(), "start");
}

TEST(ObserverHooks, DuplicateAttachmentThrows) {
  Simulation sim = planewave_sim();
  LoggingObserver log;
  sim.solver().add_observer(&log);
  EXPECT_THROW(sim.solver().add_observer(&log), std::invalid_argument);
}

TEST(ReceiverNetwork, TraceMatchesTheAnalyticPlanewave) {
  Simulation sim = planewave_sim(
      {"order=5", "t_end=0.25", "receivers=0.3,0.4,0.5;0.7,0.2,0.9"});
  sim.run();
  const ReceiverNetwork& net = *sim.receivers();
  ASSERT_EQ(net.num_receivers(), 2u);
  ASSERT_GT(net.num_samples(), 10u);
  const PlaneWave wave;
  for (std::size_t r = 0; r < net.num_receivers(); ++r) {
    const std::vector<double> pressure = net.trace(r, 0);  // quantity 0 = p
    for (std::size_t i = 0; i < net.num_samples(); ++i)
      EXPECT_NEAR(pressure[i],
                  wave.pressure(net.positions()[r], net.times()[i]), 2e-3)
          << "receiver " << r << " sample " << i;
  }
}

TEST(ReceiverNetwork, SamplesEveryStepPlusTheInitialState) {
  Simulation sim = planewave_sim({"receivers=0.5,0.5,0.5"});
  const int steps = sim.run();
  EXPECT_EQ(sim.receivers()->num_samples(),
            static_cast<std::size_t>(steps) + 1);
  EXPECT_DOUBLE_EQ(sim.receivers()->times().front(), 0.0);
  EXPECT_DOUBLE_EQ(sim.receivers()->times().back(), sim.solver().time());
}

TEST(ReceiverNetwork, OutOfDomainReceiverThrows) {
  EXPECT_THROW(planewave_sim({"receivers=2.5,0.5,0.5"}).run(),
               std::invalid_argument);
}

TEST(ReceiverNetwork, StreamPathsWithoutReceiversThrow) {
  EXPECT_THROW(planewave_sim({"output.receivers_csv=/tmp/x.csv"}),
               std::invalid_argument);
}

TEST(ReceiverNetwork, CsvSinkStreamsHeaderAndOneRowPerSample) {
  const std::string path = "/tmp/exastp_io_recv.csv";
  Simulation sim = planewave_sim({"receivers=0.5,0.5,0.5;0.25,0.5,0.5",
                                  "output.quantities=0,3",
                                  "output.receivers_csv=" + path});
  sim.run();
  const ReceiverNetwork& net = *sim.receivers();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,r0_q0,r0_q3,r1_q0,r1_q3");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    double t = 0.0, value = 0.0;
    char comma = 0;
    ss >> t;
    EXPECT_NEAR(t, net.times()[rows], 1e-5 + 1e-5 * std::abs(t));
    for (std::size_t i = 0; i < 4; ++i) {
      ss >> comma >> value;
      const double expect = net.value(rows, i / 2, i % 2);
      EXPECT_NEAR(value, expect, 1e-5 + 1e-5 * std::abs(expect));
    }
    ++rows;
  }
  EXPECT_EQ(rows, net.num_samples());
  std::remove(path.c_str());
}

TEST(ReceiverNetwork, BinaryRecordStreamRoundTripsExactly) {
  const std::string path = "/tmp/exastp_io_recv.bin";
  Simulation sim = planewave_sim({"receivers=0.5,0.5,0.5;0.2,0.8,0.4",
                                  "output.receivers_bin=" + path});
  sim.run();
  const ReceiverNetwork& net = *sim.receivers();

  const ReceiverRecords records = read_receiver_records(path);
  ASSERT_EQ(records.positions.size(), net.num_receivers());
  EXPECT_EQ(records.positions, net.positions());
  EXPECT_EQ(records.quantities, net.quantities());
  ASSERT_EQ(records.times.size(), net.num_samples());
  for (std::size_t i = 0; i < records.times.size(); ++i) {
    EXPECT_EQ(records.times[i], net.times()[i]);  // bitwise
    for (std::size_t r = 0; r < net.num_receivers(); ++r)
      for (std::size_t q = 0; q < net.quantities().size(); ++q)
        EXPECT_EQ(records.value(i, r, q), net.value(i, r, q));
  }
  std::remove(path.c_str());
}

TEST(ReceiverNetwork, DefaultQuantitiesAreTheEvolvedOnes) {
  // The programmatic default must match the receivers= config default:
  // evolved quantities only (acoustic: p, vx, vy, vz — no rho/c params).
  Simulation sim = planewave_sim();
  ReceiverNetwork net;
  net.add_receiver({0.5, 0.5, 0.5});
  net.bind(sim.solver());
  EXPECT_EQ(sim.solver().evolved_quantities(), 4);
  EXPECT_EQ(net.quantities(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ReceiverNetwork, EmptyNetworkWithSinkSurvivesRepeatedSampling) {
  // Regression: an empty network's bind used bound_.empty() as its
  // already-bound flag, re-opening the sink on every sample.
  const std::string path = "/tmp/exastp_io_empty.csv";
  Simulation sim = planewave_sim();
  auto network = std::make_shared<ReceiverNetwork>();
  network->add_sink(std::make_unique<CsvReceiverSink>(path));
  sim.add_observer(network);
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(network->num_samples(), 0u);
  std::remove(path.c_str());
}

TEST(ReceiverNetwork, RecordReaderRejectsForeignFiles) {
  const std::string path = "/tmp/exastp_io_bogus.bin";
  std::ofstream(path) << "definitely not a record stream";
  EXPECT_THROW(read_receiver_records(path), std::invalid_argument);
  std::remove(path.c_str());
  EXPECT_THROW(read_receiver_records("/tmp/exastp_io_missing.bin"),
               std::invalid_argument);
}

TEST(VtkSeries, EmitsIntervalSpacedSnapshotsWithAnIndex) {
  const std::string base = "/tmp/exastp_io_series";
  Simulation sim = planewave_sim(
      {"output.series=" + base, "output.interval=0.03", "t_end=0.1"});
  sim.run();

  std::ifstream index(base + ".pvd");
  ASSERT_TRUE(index.good());
  std::stringstream ss;
  ss << index.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("<VTKFile type=\"Collection\""), std::string::npos);

  // t = 0 snapshot, one per 0.03 interval, and the end state: >= 4 files,
  // each present on disk and listed in the index.
  int count = 0;
  for (;; ++count) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "_%04d.vtk", count);
    std::ifstream snap(base + suffix);
    if (!snap.good()) break;
    EXPECT_NE(body.find(std::string("exastp_io_series") + suffix),
              std::string::npos);
    std::string first_line;
    std::getline(snap, first_line);
    EXPECT_EQ(first_line, "# vtk DataFile Version 3.0");
  }
  EXPECT_GE(count, 4);
  EXPECT_LE(count, 6);
  for (int i = 0; i < count; ++i) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "_%04d.vtk", i);
    std::remove((base + suffix).c_str());
  }
  std::remove((base + ".pvd").c_str());
}

/// Unpadded nodal snapshot of every quantity in every cell.
std::vector<double> snapshot(const SolverBase& solver) {
  const AosLayout& layout = solver.layout();
  std::vector<double> values;
  for (int c = 0; c < solver.grid().num_cells(); ++c) {
    const double* qc = solver.cell_dofs(c);
    for (int k3 = 0; k3 < layout.n; ++k3)
      for (int k2 = 0; k2 < layout.n; ++k2)
        for (int k1 = 0; k1 < layout.n; ++k1)
          for (int s = 0; s < layout.m; ++s)
            values.push_back(qc[layout.idx(k3, k2, k1, s)]);
  }
  return values;
}

/// 64 receivers on an 8x8 surface grid over the unit box.
std::string receiver_grid_arg() {
  std::string arg = "receivers=";
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) {
      if (!(i == 0 && j == 0)) arg += ";";
      arg += std::to_string(0.06 + 0.125 * i) + "," +
             std::to_string(0.06 + 0.125 * j) + ",0.5";
    }
  return arg;
}

// Acceptance guard: with 64 receivers attached on the threaded planewave
// workload, the field state stays bitwise-identical to an observer-free
// run — observers only read. Checked per thread count, against the
// observer-free serial reference.
TEST(ObserverInvariance, FieldStateBitwiseIdenticalWithReceivers) {
  const std::vector<std::string> base = {"scenario=planewave", "order=4",
                                         "cells=3x3x3", "t_end=0.1"};
  auto run = [&](const std::vector<std::string>& extra) {
    std::vector<std::string> args = base;
    args.insert(args.end(), extra.begin(), extra.end());
    Simulation sim = Simulation::from_args(args);
    sim.run();
    return sim;
  };
  Simulation bare = run({"threads=1"});
  const std::vector<double> reference = snapshot(bare.solver());
  const std::string receivers = receiver_grid_arg();
  for (int threads : {1, 4}) {
    Simulation observed =
        run({receivers, "threads=" + std::to_string(threads)});
    EXPECT_EQ(observed.receivers()->num_receivers(), 64u);
    const std::vector<double> state = snapshot(observed.solver());
    ASSERT_EQ(state.size(), reference.size());
    for (std::size_t i = 0; i < state.size(); ++i)
      ASSERT_EQ(state[i], reference[i])
          << "threads=" << threads << " node " << i;
    // The traces themselves are thread-count invariant too.
    EXPECT_EQ(observed.receivers()->trace(63, 0),
              run({receivers, "threads=1"}).receivers()->trace(63, 0));
  }
}

// Acceptance guard: < 5% wall-clock overhead for those 64 receivers.
// Interleaved best-of-3 timing to shed scheduler noise; a small absolute
// slack keeps the sub-second workload honest in loaded CI without masking
// a real per-step regression.
TEST(ObserverInvariance, ReceiverOverheadUnderFivePercent) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "wall-clock ratios are not meaningful under TSan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "wall-clock ratios are not meaningful under TSan";
#endif
#endif
  const std::vector<std::string> base = {"scenario=planewave", "order=5",
                                         "cells=4x4x4", "t_end=0.1",
                                         "threads=4"};
  auto time_run = [&](bool with_receivers) {
    std::vector<std::string> args = base;
    if (with_receivers) args.push_back(receiver_grid_arg());
    Simulation sim = Simulation::from_args(args);
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  double bare = 1e300, observed = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    bare = std::min(bare, time_run(false));
    observed = std::min(observed, time_run(true));
  }
  EXPECT_LT(observed, bare * 1.05 + 0.02)
      << "64 receivers cost " << (observed / bare - 1.0) * 100.0 << "%";
}

}  // namespace
}  // namespace exastp
