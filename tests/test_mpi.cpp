// Distributed execution: backend=mpi equivalence against backend=inprocess,
// run under mpirun (see CMakeLists.txt: test_mpi_np2 / test_mpi_np3 /
// test_mpi_np4, `ctest -L mpi`).
//
// Every rank runs this binary. The acceptance contract: for every
// decomposition of the matrix matching the launch size — one shard per
// rank, over-decomposed rank maps (shards_per_rank > 1) and ragged
// groupings (5 shards on 2 or 3 ranks) — the fields after run_until are
// bitwise-identical between `backend=inprocess shards=N` (each rank
// replays the local run, which is deterministic) and `backend=mpi` — and
// the merged receiver/VTK artifacts match the local run's byte for byte.
// The distributed run uses the default dependency scheduler while the
// local replay runs schedule=lockstep, so every case also crosses the
// schedule axis. Tests skip decompositions that do not match the launch
// size, so one binary serves -np 2, 3 and 4.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/common/mpi_runtime.h"
#include "exastp/engine/simulation.h"
#include "exastp/io/receiver_sinks.h"

namespace exastp {
namespace {

/// Decomposition key sets that fit this launch size. The first entry is
/// always the plain one-shard-per-rank split (the artifact tests use it);
/// the rest over-decompose — shards_per_rank=2 and the ragged 5-shard
/// grouping (5 on 2 ranks -> 3|2, 5 on 3 -> 2|2|1).
std::vector<std::vector<std::string>> decompositions_for(int ranks) {
  switch (ranks) {
    case 2:
      return {{"shards=2x1x1"},
              {"shards=5x1x1"},
              {"shards=auto", "shards_per_rank=2"}};
    case 3:
      return {{"shards=3x1x1"},
              {"shards=5x1x1"},
              {"shards=auto", "shards_per_rank=2"}};
    case 4:
      return {{"shards=2x2x1"},
              {"shards=4x1x1"},
              {"shards=auto", "shards_per_rank=2"}};
    case 6:
      return {{"shards=3x2x1"}};
    default:
      return {};
  }
}

std::string label_of(const std::vector<std::string>& keys) {
  std::string label;
  for (const std::string& key : keys)
    label += (label.empty() ? "" : " ") + key;
  return label;
}

Simulation run_with(const std::vector<std::string>& args,
                    const std::vector<std::string>& extra) {
  std::vector<std::string> full = args;
  full.insert(full.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

/// Bitwise comparison of every shard this rank materializes (one under
/// the plain rank map, several under an over-decomposed one) between a
/// distributed run and the locally-replayed in-process reference.
void expect_local_shard_bitwise_equal(const Simulation& mpi,
                                      const Simulation& local,
                                      const std::string& label) {
  ASSERT_EQ(mpi.solver().num_ranks(), MpiRuntime::size()) << label;
  ASSERT_EQ(mpi.solver().num_shards(), local.solver().num_shards()) << label;
  EXPECT_EQ(mpi.solver().time(), local.solver().time()) << label;
  int local_shards = 0;
  for (int s = 0; s < mpi.solver().num_shards(); ++s) {
    if (!mpi.solver().shard_is_local(s)) continue;
    ++local_shards;
    const SolverBase& mine = mpi.solver().shard(s);
    const SolverBase& ref = local.solver().shard(s);
    ASSERT_EQ(mine.grid().num_cells(), ref.grid().num_cells()) << label;
    for (int c = 0; c < mine.grid().num_cells(); ++c) {
      const double* qa = mine.cell_dofs(c);
      const double* qb = ref.cell_dofs(c);
      for (std::size_t i = 0; i < mine.layout().size(); ++i)
        ASSERT_EQ(qa[i], qb[i])
            << label << ": rank " << MpiRuntime::rank() << " shard " << s
            << " cell " << c << " slot " << i
            << " diverged from the in-process run";
    }
  }
  EXPECT_GE(local_shards, 1) << label;
}

/// The acceptance matrix body: every launch-compatible decomposition must
/// be bitwise-identical between the two backends. The distributed run
/// keeps the default dependency scheduler; the local replay pins
/// schedule=lockstep, so backend and schedule cross in one comparison.
void expect_mpi_invariant(const std::vector<std::string>& args) {
  const auto decompositions = decompositions_for(MpiRuntime::size());
  if (decompositions.empty())
    GTEST_SKIP() << "no matrix decomposition for " << MpiRuntime::size()
                 << " ranks";
  for (const std::vector<std::string>& keys : decompositions) {
    std::vector<std::string> mpi_keys = keys;
    mpi_keys.push_back("backend=mpi");
    std::vector<std::string> local_keys = keys;
    local_keys.push_back("backend=inprocess");
    local_keys.push_back("schedule=lockstep");
    // A local replay of an over-decomposed auto split materializes
    // shards_per_rank x size shards; tell the resolver how many ranks'
    // worth to build. shards=auto + shards_per_rank=N resolves locally to
    // N shards, so pin the total explicitly instead.
    Simulation mpi = run_with(args, mpi_keys);
    std::vector<std::string> replay_keys = local_keys;
    for (std::string& key : replay_keys)
      if (key == "shards=auto")
        key = "shards=" + std::to_string(mpi.solver().num_shards());
    // Drop a now-redundant shards_per_rank on the local replay — locally
    // it would demand total == 1 * N.
    std::vector<std::string> final_keys;
    for (const std::string& key : replay_keys)
      if (key.rfind("shards_per_rank=", 0) != 0) final_keys.push_back(key);
    Simulation local = run_with(args, final_keys);
    expect_local_shard_bitwise_equal(mpi, local, label_of(keys));
    if (local.has_exact_solution()) {
      // The distributed L2 sums per shard then per rank; same value up to
      // the changed floating-point association.
      const double mpi_l2 = mpi.l2_error();
      const double local_l2 = local.l2_error();
      EXPECT_NEAR(mpi_l2, local_l2, 1e-12 * (1.0 + std::abs(local_l2)))
          << label_of(keys);
    }
  }
}

TEST(MpiEquivalence, AderAcousticPlanewave) {
  expect_mpi_invariant({"scenario=planewave", "pde=acoustic", "stepper=ader",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, RkAcousticPlanewave) {
  expect_mpi_invariant({"scenario=planewave", "pde=acoustic", "stepper=rk4",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, AderMaxwellGaussian) {
  expect_mpi_invariant({"scenario=gaussian", "pde=maxwell", "stepper=ader",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, RkMaxwellGaussian) {
  expect_mpi_invariant({"scenario=gaussian", "pde=maxwell", "stepper=rk4",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, AderOutflowWallPeriodicMix) {
  expect_mpi_invariant({"scenario=planewave", "order=3", "cells=5x4x3",
                        "bc=outflow,wall,periodic", "t_end=0.08",
                        "threads=1"});
}

TEST(MpiEquivalence, AderLoh1PointSourceThreaded) {
  // Point sources route to the owning rank; threads=2 exercises the
  // MPI_THREAD_FUNNELED claim (cell loops threaded, MPI on the driver).
  expect_mpi_invariant(
      {"scenario=loh1", "stepper=ader", "order=3", "t_end=0.3", "threads=2"});
}

TEST(MpiRankMismatch, FailsWithAClearMessage) {
  // Inconsistent topology requests must fail loudly — on every rank,
  // before any communication (no hang). An explicit shards= that
  // contradicts shards_per_rank= is refused by the engine's consistency
  // check ...
  const std::string shards =
      std::to_string(MpiRuntime::size() + 1) + "x1x1";
  try {
    Simulation::from_args({"scenario=planewave", "order=3", "cells=16x4x4",
                           "t_end=0.05", "shards=" + shards,
                           "shards_per_rank=1", "backend=mpi"});
    FAIL() << "contradictory shards=/shards_per_rank= must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shards_per_rank"),
              std::string::npos)
        << e.what();
  }
  // ... and fewer shards than ranks cannot give every rank work.
  if (MpiRuntime::size() > 2) {
    try {
      Simulation::from_args({"scenario=planewave", "order=3", "cells=16x4x4",
                             "t_end=0.05", "shards=2x1x1", "backend=mpi"});
      FAIL() << "fewer shards than ranks must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("at least one shard per rank"),
                std::string::npos)
          << e.what();
    }
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(MpiArtifacts, ReceiverStreamsMergeToTheLocalRunsFiles) {
  const int ranks = MpiRuntime::size();
  if (decompositions_for(ranks).empty())
    GTEST_SKIP() << "no matrix decomposition for " << ranks << " ranks";
  const std::vector<std::string> shards = decompositions_for(ranks).front();
  const std::string tag = "/tmp/exastp_mpi_recv_" + std::to_string(ranks);
  std::vector<std::string> args = {
      "scenario=planewave", "order=4",  "cells=4x4x4",
      "t_end=0.1",          "threads=1",
      "receivers=0.2,0.5,0.5;0.8,0.5,0.5;1.0,1.0,1.0"};
  args.insert(args.end(), shards.begin(), shards.end());

  // The collective distributed run first (all ranks), then the local
  // reference on rank 0 alone.
  Simulation mpi = run_with(
      args, {"backend=mpi",
             "output.receivers_bin=" + tag + "_mpi.bin",
             "output.receivers_csv=" + tag + "_mpi.csv"});
  (void)mpi;
  if (MpiRuntime::rank() != 0) return;

  run_with(args, {"backend=inprocess",
                  "output.receivers_bin=" + tag + "_local.bin",
                  "output.receivers_csv=" + tag + "_local.csv"});

  const ReceiverRecords merged = read_receiver_records(tag + "_mpi.bin");
  const ReceiverRecords reference = read_receiver_records(tag + "_local.bin");
  ASSERT_EQ(merged.positions, reference.positions);
  ASSERT_EQ(merged.quantities, reference.quantities);
  ASSERT_EQ(merged.times, reference.times);
  ASSERT_EQ(merged.data.size(), reference.data.size());
  for (std::size_t i = 0; i < merged.data.size(); ++i)
    ASSERT_EQ(merged.data[i], reference.data[i]) << "slot " << i;

  // The merged CSV is byte-identical to a local streaming run's.
  EXPECT_EQ(slurp(tag + "_mpi.csv"), slurp(tag + "_local.csv"));
}

TEST(MpiArtifacts, VtkPiecesAndIndexMatchTheLocalRun) {
  const int ranks = MpiRuntime::size();
  if (decompositions_for(ranks).empty())
    GTEST_SKIP() << "no matrix decomposition for " << ranks << " ranks";
  const std::vector<std::string> shards = decompositions_for(ranks).front();
  const std::string tag = "/tmp/exastp_mpi_vtk_" + std::to_string(ranks);
  std::vector<std::string> args = {"scenario=planewave", "order=3",
                                   "cells=4x4x2", "t_end=0.06",
                                   "threads=1",
                                   "output.interval=0.03"};
  args.insert(args.end(), shards.begin(), shards.end());

  Simulation mpi = run_with(args, {"backend=mpi",
                                   "output.series=" + tag + "_mpi"});
  // Simulation::run barriers, so every rank's pieces are on disk here.
  if (MpiRuntime::rank() != 0) return;

  run_with(args, {"backend=inprocess",
                  "output.series=" + tag + "_local"});

  // Same piece files (every shard, every snapshot) and the same index —
  // modulo the base-name difference.
  const std::string mpi_index = slurp(tag + "_mpi.pvd");
  std::string local_index = slurp(tag + "_local.pvd");
  std::string expected = mpi_index;
  for (std::string::size_type at = 0;
       (at = expected.find("_mpi_", at)) != std::string::npos;)
    expected.replace(at, 5, "_local_");
  EXPECT_EQ(expected, local_index);

  // Both runs take identical lockstep steps, so they emit the same
  // snapshot set; compare every piece the local run produced.
  int snapshots = 0;
  for (int snapshot = 0;; ++snapshot) {
    char probe[24];
    std::snprintf(probe, sizeof(probe), "_%04d_p00.vtk", snapshot);
    if (!std::ifstream(tag + "_local" + probe).good()) break;
    ++snapshots;
    for (int p = 0; p < mpi.solver().num_shards(); ++p) {
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), "_%04d_p%02d.vtk", snapshot, p);
      EXPECT_EQ(slurp(tag + "_mpi" + suffix), slurp(tag + "_local" + suffix))
          << suffix;
    }
  }
  EXPECT_GE(snapshots, 2);
}

TEST(MpiSummary, ReportsBackendAndRank) {
  if (decompositions_for(MpiRuntime::size()).empty())
    GTEST_SKIP() << "no matrix decomposition";
  // The first matrix entry is always a literal one-shard-per-rank
  // "shards=AxBxC", so the summary echoes it verbatim.
  const std::vector<std::string> shards =
      decompositions_for(MpiRuntime::size()).front();
  std::vector<std::string> args = {"scenario=planewave", "order=3",
                                   "cells=5x4x3", "threads=1",
                                   "backend=mpi"};
  args.insert(args.end(), shards.begin(), shards.end());
  Simulation sim = Simulation::from_args(args);
  const std::string summary = sim.summary();
  EXPECT_NE(summary.find("backend=mpi rank=" +
                         std::to_string(MpiRuntime::rank()) + "/" +
                         std::to_string(MpiRuntime::size())),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find(shards.front()), std::string::npos) << summary;
}

TEST(MpiSummary, ReportsShardGroupingWhenOverDecomposed) {
  // shards_per_rank=2 gives every rank a two-shard group; the summary
  // surfaces the grouping and the exchange schedule next to the rank.
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=8x4x3", "threads=1",
       "shards=auto", "shards_per_rank=2", "backend=mpi"});
  EXPECT_EQ(sim.solver().num_shards(), 2 * MpiRuntime::size());
  const std::string summary = sim.summary();
  EXPECT_NE(summary.find("shards/rank=2"), std::string::npos) << summary;
  EXPECT_NE(summary.find("schedule=deps"), std::string::npos) << summary;
}

}  // namespace
}  // namespace exastp

int main(int argc, char** argv) {
  exastp::MpiRuntime::init(&argc, &argv);
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  exastp::MpiRuntime::finalize();
  return result;
}
