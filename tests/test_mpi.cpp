// Distributed execution: backend=mpi equivalence against backend=inprocess,
// run under mpirun (see CMakeLists.txt: test_mpi_np2 / test_mpi_np4,
// `ctest -L mpi`).
//
// Every rank runs this binary. The acceptance contract: for every
// decomposition of the PR-4 matrix matching the launch size, the fields
// after run_until are bitwise-identical between `backend=inprocess
// shards=N` (each rank replays the local run, which is deterministic) and
// `backend=mpi` with N ranks — and the merged receiver/VTK artifacts match
// the local run's byte for byte. Tests skip decompositions that do not
// match the launch size, so one binary serves -np 2 and -np 4.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/common/mpi_runtime.h"
#include "exastp/engine/simulation.h"
#include "exastp/io/receiver_sinks.h"

namespace exastp {
namespace {

/// Decompositions of the PR-4 test matrix that fit this launch size.
std::vector<std::string> decompositions_for(int ranks) {
  switch (ranks) {
    case 2:
      return {"2x1x1"};
    case 4:
      return {"2x2x1", "4x1x1"};
    case 6:
      return {"3x2x1"};
    default:
      return {};
  }
}

Simulation run_with(const std::vector<std::string>& args,
                    const std::vector<std::string>& extra) {
  std::vector<std::string> full = args;
  full.insert(full.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

/// Bitwise comparison of this rank's shard between a distributed run and
/// the locally-replayed in-process reference.
void expect_local_shard_bitwise_equal(const Simulation& mpi,
                                      const Simulation& local,
                                      const std::string& label) {
  const int rank = MpiRuntime::rank();
  ASSERT_EQ(mpi.solver().num_ranks(), MpiRuntime::size()) << label;
  ASSERT_TRUE(mpi.solver().shard_is_local(rank)) << label;
  const SolverBase& mine = mpi.solver().shard(rank);
  const SolverBase& ref = local.solver().shard(rank);
  ASSERT_EQ(mine.grid().num_cells(), ref.grid().num_cells()) << label;
  EXPECT_EQ(mpi.solver().time(), local.solver().time()) << label;
  for (int c = 0; c < mine.grid().num_cells(); ++c) {
    const double* qa = mine.cell_dofs(c);
    const double* qb = ref.cell_dofs(c);
    for (std::size_t i = 0; i < mine.layout().size(); ++i)
      ASSERT_EQ(qa[i], qb[i])
          << label << ": rank " << rank << " cell " << c << " slot " << i
          << " diverged from the in-process run";
  }
}

/// The acceptance matrix body: every launch-compatible decomposition must
/// be bitwise-identical between the two backends.
void expect_mpi_invariant(const std::vector<std::string>& args) {
  const std::vector<std::string> decompositions =
      decompositions_for(MpiRuntime::size());
  if (decompositions.empty())
    GTEST_SKIP() << "no matrix decomposition for " << MpiRuntime::size()
                 << " ranks";
  for (const std::string& shards : decompositions) {
    Simulation mpi =
        run_with(args, {"shards=" + shards, "backend=mpi"});
    Simulation local =
        run_with(args, {"shards=" + shards, "backend=inprocess"});
    expect_local_shard_bitwise_equal(mpi, local, "shards=" + shards);
    if (local.has_exact_solution()) {
      // The distributed L2 sums per shard then per rank; same value up to
      // the changed floating-point association.
      const double mpi_l2 = mpi.l2_error();
      const double local_l2 = local.l2_error();
      EXPECT_NEAR(mpi_l2, local_l2, 1e-12 * (1.0 + std::abs(local_l2)))
          << "shards=" << shards;
    }
  }
}

TEST(MpiEquivalence, AderAcousticPlanewave) {
  expect_mpi_invariant({"scenario=planewave", "pde=acoustic", "stepper=ader",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, RkAcousticPlanewave) {
  expect_mpi_invariant({"scenario=planewave", "pde=acoustic", "stepper=rk4",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, AderMaxwellGaussian) {
  expect_mpi_invariant({"scenario=gaussian", "pde=maxwell", "stepper=ader",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, RkMaxwellGaussian) {
  expect_mpi_invariant({"scenario=gaussian", "pde=maxwell", "stepper=rk4",
                        "order=3", "cells=5x4x3", "t_end=0.08", "threads=1"});
}

TEST(MpiEquivalence, AderOutflowWallPeriodicMix) {
  expect_mpi_invariant({"scenario=planewave", "order=3", "cells=5x4x3",
                        "bc=outflow,wall,periodic", "t_end=0.08",
                        "threads=1"});
}

TEST(MpiEquivalence, AderLoh1PointSourceThreaded) {
  // Point sources route to the owning rank; threads=2 exercises the
  // MPI_THREAD_FUNNELED claim (cell loops threaded, MPI on the driver).
  expect_mpi_invariant(
      {"scenario=loh1", "stepper=ader", "order=3", "t_end=0.3", "threads=2"});
}

TEST(MpiRankMismatch, FailsWithAClearMessage) {
  // A decomposition whose shard count cannot match the launch must fail
  // loudly — on every rank, before any communication (no hang).
  const std::string shards =
      std::to_string(MpiRuntime::size() + 1) + "x1x1";
  try {
    Simulation::from_args({"scenario=planewave", "order=3", "cells=16x4x4",
                           "t_end=0.05", "shards=" + shards, "backend=mpi"});
    FAIL() << "mismatched rank/shard counts must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("one rank per shard"),
              std::string::npos)
        << e.what();
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(MpiArtifacts, ReceiverStreamsMergeToTheLocalRunsFiles) {
  const int ranks = MpiRuntime::size();
  if (decompositions_for(ranks).empty())
    GTEST_SKIP() << "no matrix decomposition for " << ranks << " ranks";
  const std::string shards = decompositions_for(ranks).front();
  const std::string tag = "/tmp/exastp_mpi_recv_" + std::to_string(ranks);
  const std::vector<std::string> args = {
      "scenario=planewave", "order=4",  "cells=4x4x4",
      "t_end=0.1",          "threads=1",
      "receivers=0.2,0.5,0.5;0.8,0.5,0.5;1.0,1.0,1.0"};

  // The collective distributed run first (all ranks), then the local
  // reference on rank 0 alone.
  Simulation mpi = run_with(
      args, {"shards=" + shards, "backend=mpi",
             "output.receivers_bin=" + tag + "_mpi.bin",
             "output.receivers_csv=" + tag + "_mpi.csv"});
  (void)mpi;
  if (MpiRuntime::rank() != 0) return;

  run_with(args, {"shards=" + shards, "backend=inprocess",
                  "output.receivers_bin=" + tag + "_local.bin",
                  "output.receivers_csv=" + tag + "_local.csv"});

  const ReceiverRecords merged = read_receiver_records(tag + "_mpi.bin");
  const ReceiverRecords reference = read_receiver_records(tag + "_local.bin");
  ASSERT_EQ(merged.positions, reference.positions);
  ASSERT_EQ(merged.quantities, reference.quantities);
  ASSERT_EQ(merged.times, reference.times);
  ASSERT_EQ(merged.data.size(), reference.data.size());
  for (std::size_t i = 0; i < merged.data.size(); ++i)
    ASSERT_EQ(merged.data[i], reference.data[i]) << "slot " << i;

  // The merged CSV is byte-identical to a local streaming run's.
  EXPECT_EQ(slurp(tag + "_mpi.csv"), slurp(tag + "_local.csv"));
}

TEST(MpiArtifacts, VtkPiecesAndIndexMatchTheLocalRun) {
  const int ranks = MpiRuntime::size();
  if (decompositions_for(ranks).empty())
    GTEST_SKIP() << "no matrix decomposition for " << ranks << " ranks";
  const std::string shards = decompositions_for(ranks).front();
  const std::string tag = "/tmp/exastp_mpi_vtk_" + std::to_string(ranks);
  const std::vector<std::string> args = {"scenario=planewave", "order=3",
                                         "cells=4x4x2", "t_end=0.06",
                                         "threads=1",
                                         "output.interval=0.03"};

  Simulation mpi = run_with(args, {"shards=" + shards, "backend=mpi",
                                   "output.series=" + tag + "_mpi"});
  // Simulation::run barriers, so every rank's pieces are on disk here.
  if (MpiRuntime::rank() != 0) return;

  run_with(args, {"shards=" + shards, "backend=inprocess",
                  "output.series=" + tag + "_local"});

  // Same piece files (every shard, every snapshot) and the same index —
  // modulo the base-name difference.
  const std::string mpi_index = slurp(tag + "_mpi.pvd");
  std::string local_index = slurp(tag + "_local.pvd");
  std::string expected = mpi_index;
  for (std::string::size_type at = 0;
       (at = expected.find("_mpi_", at)) != std::string::npos;)
    expected.replace(at, 5, "_local_");
  EXPECT_EQ(expected, local_index);

  // Both runs take identical lockstep steps, so they emit the same
  // snapshot set; compare every piece the local run produced.
  int snapshots = 0;
  for (int snapshot = 0;; ++snapshot) {
    char probe[24];
    std::snprintf(probe, sizeof(probe), "_%04d_p00.vtk", snapshot);
    if (!std::ifstream(tag + "_local" + probe).good()) break;
    ++snapshots;
    for (int p = 0; p < mpi.solver().num_shards(); ++p) {
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), "_%04d_p%02d.vtk", snapshot, p);
      EXPECT_EQ(slurp(tag + "_mpi" + suffix), slurp(tag + "_local" + suffix))
          << suffix;
    }
  }
  EXPECT_GE(snapshots, 2);
}

TEST(MpiSummary, ReportsBackendAndRank) {
  if (decompositions_for(MpiRuntime::size()).empty())
    GTEST_SKIP() << "no matrix decomposition";
  const std::string shards = decompositions_for(MpiRuntime::size()).front();
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=5x4x3", "threads=1",
       "shards=" + shards, "backend=mpi"});
  const std::string summary = sim.summary();
  EXPECT_NE(summary.find("backend=mpi rank=" +
                         std::to_string(MpiRuntime::rank()) + "/" +
                         std::to_string(MpiRuntime::size())),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("shards=" + shards), std::string::npos) << summary;
}

}  // namespace
}  // namespace exastp

int main(int argc, char** argv) {
  exastp::MpiRuntime::init(&argc, &argv);
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  exastp::MpiRuntime::finalize();
  return result;
}
