// Deterministic reproduction tests for the paper's Fig. 9 claims, asserted
// on the dynamic FLOP-classification counters of real kernel runs (no
// timing involved, so these are stable under CI load):
//
//   * Generic: most FLOPs scalar, small auto-vectorized share.
//   * LoG / SplitCK: > 80% packed, ~10% scalar tail from the pointwise user
//     functions.
//   * AoSoA SplitCK: scalar share down to a few percent (paper: 2-4%).
//   * AVX2 builds pack at 256 bits, AVX-512 builds at 512.
#include <gtest/gtest.h>

#include "exastp/kernels/registry.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/perf/instr_mix.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

InstrMix run_and_classify(StpVariant variant, int order, Isa isa) {
  CurvilinearElasticPde pde;
  StpKernel kernel = make_stp_kernel(pde, variant, order, isa);
  const AosLayout& aos = kernel.layout();
  AlignedVector q(aos.size(), 0.0), qavg(aos.size()), f0(aos.size()),
      f1(aos.size()), f2(aos.size());
  for (int k3 = 0; k3 < order; ++k3)
    for (int k2 = 0; k2 < order; ++k2)
      for (int k1 = 0; k1 < order; ++k1) {
        double* node = q.data() + aos.idx(k3, k2, k1, 0);
        for (int s = 0; s < 9; ++s) node[s] = 0.01 * (k1 + k2 + k3 + s);
        node[CurvilinearElasticPde::kRho] = 2.7;
        node[CurvilinearElasticPde::kCp] = 6.0;
        node[CurvilinearElasticPde::kCs] = 3.4;
        for (int r = 0; r < 3; ++r)
          node[CurvilinearElasticPde::kMetric + 3 * r + r] = 1.0;
      }
  StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};
  FlopSection section;
  kernel.run(q.data(), 1e-3, {4.0, 4.0, 4.0}, nullptr, out);
  return instruction_mix(section.delta());
}

class MixOrderP : public ::testing::TestWithParam<int> {};

TEST_P(MixOrderP, GenericIsScalarDominated) {
  InstrMix mix = run_and_classify(StpVariant::kGeneric, GetParam(),
                                  Isa::kScalar);
  EXPECT_GT(mix.scalar(), 70.0);
  EXPECT_GT(mix.p128(), 0.0) << "some auto-vectorized share expected";
  EXPECT_EQ(mix.p512(), 0.0);
}

TEST_P(MixOrderP, LogIsMostlyPackedWithScalarTail) {
  if (!host_supports(Isa::kAvx512)) GTEST_SKIP();
  InstrMix mix = run_and_classify(StpVariant::kLog, GetParam(), Isa::kAvx512);
  EXPECT_GT(mix.packed(), 80.0);
  EXPECT_GT(mix.scalar(), 2.0) << "pointwise user functions stay scalar";
  EXPECT_LT(mix.scalar(), 20.0);
  EXPECT_GT(mix.p512(), 75.0);
}

TEST_P(MixOrderP, SplitCkIsMostlyPackedWithScalarTail) {
  if (!host_supports(Isa::kAvx512)) GTEST_SKIP();
  InstrMix mix =
      run_and_classify(StpVariant::kSplitCk, GetParam(), Isa::kAvx512);
  EXPECT_GT(mix.packed(), 80.0);
  EXPECT_GT(mix.scalar(), 2.0);
  EXPECT_LT(mix.scalar(), 20.0);
}

TEST_P(MixOrderP, AosoaRemovesTheScalarTail) {
  if (!host_supports(Isa::kAvx512)) GTEST_SKIP();
  InstrMix aosoa =
      run_and_classify(StpVariant::kAosoaSplitCk, GetParam(), Isa::kAvx512);
  InstrMix splitck =
      run_and_classify(StpVariant::kSplitCk, GetParam(), Isa::kAvx512);
  EXPECT_LT(aosoa.scalar(), 4.0) << "paper: 2-4% scalar left";
  EXPECT_LT(aosoa.scalar(), splitck.scalar());
  EXPECT_GT(aosoa.p512(), 95.0);
}

TEST_P(MixOrderP, Avx2PathPacksAt256Bits) {
  if (!host_supports(Isa::kAvx2)) GTEST_SKIP();
  InstrMix mix = run_and_classify(StpVariant::kLog, GetParam(), Isa::kAvx2);
  EXPECT_GT(mix.p256(), 75.0);
  EXPECT_EQ(mix.p512(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Orders, MixOrderP, ::testing::Values(4, 6, 8, 11));

TEST(MixShapes, ScalarTailShrinksWithOrderForAosVariants) {
  // The user-function share is O(N^3) against O(N^4) GEMM work, so the
  // scalar tail decreases with order (visible in Fig. 9 left to right).
  if (!host_supports(Isa::kAvx512)) GTEST_SKIP();
  const double tail4 =
      run_and_classify(StpVariant::kSplitCk, 4, Isa::kAvx512).scalar();
  const double tail11 =
      run_and_classify(StpVariant::kSplitCk, 11, Isa::kAvx512).scalar();
  EXPECT_LT(tail11, tail4);
}

}  // namespace
}  // namespace exastp
