// Tests for src/quadrature: node/weight correctness of both families.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "exastp/quadrature/quadrature.h"

namespace exastp {
namespace {

double integrate_monomial(const QuadratureRule& rule, int power) {
  double sum = 0.0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i)
    sum += rule.weights[i] * std::pow(rule.nodes[i], power);
  return sum;
}

class GaussLegendreP : public ::testing::TestWithParam<int> {};

TEST_P(GaussLegendreP, WeightsSumToOne) {
  auto rule = make_quadrature(GetParam(), NodeFamily::kGaussLegendre);
  const double sum =
      std::accumulate(rule.weights.begin(), rule.weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST_P(GaussLegendreP, NodesAscendInOpenInterval) {
  auto rule = make_quadrature(GetParam(), NodeFamily::kGaussLegendre);
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    EXPECT_GT(rule.nodes[i], 0.0);
    EXPECT_LT(rule.nodes[i], 1.0);
    if (i > 0) {
      EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
    }
  }
}

TEST_P(GaussLegendreP, NodesSymmetricAboutHalf) {
  auto rule = make_quadrature(GetParam(), NodeFamily::kGaussLegendre);
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(rule.nodes[i] + rule.nodes[n - 1 - i], 1.0, 1e-14);
    EXPECT_NEAR(rule.weights[i], rule.weights[n - 1 - i], 1e-14);
  }
}

TEST_P(GaussLegendreP, ExactUpToDegree2nMinus1) {
  const int n = GetParam();
  auto rule = make_quadrature(n, NodeFamily::kGaussLegendre);
  for (int p = 0; p <= 2 * n - 1; ++p) {
    // int_0^1 x^p dx = 1/(p+1)
    EXPECT_NEAR(integrate_monomial(rule, p), 1.0 / (p + 1), 1e-13)
        << "degree " << p;
  }
}

TEST_P(GaussLegendreP, NotExactAtDegree2n) {
  const int n = GetParam();
  auto rule = make_quadrature(n, NodeFamily::kGaussLegendre);
  // Gauss quadrature has a strictly positive error for x^{2n} (the error
  // functional is a positive multiple of the 2n-th derivative).
  EXPECT_GT(std::abs(integrate_monomial(rule, 2 * n) - 1.0 / (2 * n + 1)),
            1e-15);
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreP, ::testing::Range(1, 13));

class GaussLobattoP : public ::testing::TestWithParam<int> {};

TEST_P(GaussLobattoP, IncludesEndpoints) {
  auto rule = make_quadrature(GetParam(), NodeFamily::kGaussLobatto);
  EXPECT_DOUBLE_EQ(rule.nodes.front(), 0.0);
  EXPECT_DOUBLE_EQ(rule.nodes.back(), 1.0);
}

TEST_P(GaussLobattoP, WeightsSumToOne) {
  auto rule = make_quadrature(GetParam(), NodeFamily::kGaussLobatto);
  const double sum =
      std::accumulate(rule.weights.begin(), rule.weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST_P(GaussLobattoP, ExactUpToDegree2nMinus3) {
  const int n = GetParam();
  auto rule = make_quadrature(n, NodeFamily::kGaussLobatto);
  for (int p = 0; p <= 2 * n - 3; ++p) {
    EXPECT_NEAR(integrate_monomial(rule, p), 1.0 / (p + 1), 1e-13)
        << "degree " << p;
  }
}

TEST_P(GaussLobattoP, NodesSymmetricAboutHalf) {
  auto rule = make_quadrature(GetParam(), NodeFamily::kGaussLobatto);
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(rule.nodes[i] + rule.nodes[n - 1 - i], 1.0, 1e-13);
    EXPECT_NEAR(rule.weights[i], rule.weights[n - 1 - i], 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLobattoP, ::testing::Range(2, 13));

TEST(QuadratureKnownValues, TwoPointGaussLegendre) {
  auto rule = make_quadrature(2, NodeFamily::kGaussLegendre);
  const double x = 0.5 - 0.5 / std::sqrt(3.0);
  EXPECT_NEAR(rule.nodes[0], x, 1e-15);
  EXPECT_NEAR(rule.weights[0], 0.5, 1e-15);
}

TEST(QuadratureKnownValues, ThreePointGaussLegendre) {
  auto rule = make_quadrature(3, NodeFamily::kGaussLegendre);
  EXPECT_NEAR(rule.nodes[1], 0.5, 1e-15);
  EXPECT_NEAR(rule.weights[1], 4.0 / 9.0, 1e-15);
  EXPECT_NEAR(rule.nodes[0], 0.5 - 0.5 * std::sqrt(3.0 / 5.0), 1e-15);
  EXPECT_NEAR(rule.weights[0], 5.0 / 18.0, 1e-15);
}

TEST(QuadratureKnownValues, ThreePointLobattoIsSimpson) {
  auto rule = make_quadrature(3, NodeFamily::kGaussLobatto);
  EXPECT_NEAR(rule.nodes[1], 0.5, 1e-15);
  EXPECT_NEAR(rule.weights[0], 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(rule.weights[1], 4.0 / 6.0, 1e-15);
}

TEST(QuadratureErrors, RejectsInvalidCounts) {
  EXPECT_THROW(make_quadrature(0, NodeFamily::kGaussLegendre),
               std::invalid_argument);
  EXPECT_THROW(make_quadrature(1, NodeFamily::kGaussLobatto),
               std::invalid_argument);
}

TEST(LegendreEval, MatchesClosedForms) {
  for (double x : {-0.9, -0.3, 0.0, 0.4, 0.8}) {
    double p, dp;
    legendre_eval(2, x, &p, &dp);
    EXPECT_NEAR(p, 0.5 * (3 * x * x - 1), 1e-15);
    EXPECT_NEAR(dp, 3 * x, 1e-15);
    legendre_eval(3, x, &p, &dp);
    EXPECT_NEAR(p, 0.5 * (5 * x * x * x - 3 * x), 1e-15);
    EXPECT_NEAR(dp, 0.5 * (15 * x * x - 3), 1e-14);
  }
}

TEST(LegendreEval, EndpointDerivatives) {
  for (int n : {1, 2, 3, 4, 5, 8}) {
    double p, dp;
    legendre_eval(n, 1.0, &p, &dp);
    EXPECT_NEAR(p, 1.0, 1e-15);
    EXPECT_NEAR(dp, 0.5 * n * (n + 1), 1e-12);
    legendre_eval(n, -1.0, &p, &dp);
    EXPECT_NEAR(p, n % 2 == 0 ? 1.0 : -1.0, 1e-15);
    EXPECT_NEAR(dp, (n % 2 == 1 ? 1.0 : -1.0) * 0.5 * n * (n + 1), 1e-12);
  }
}

}  // namespace
}  // namespace exastp
