// Tests for the Maxwell PDE system: curl structure, plane-wave propagation
// through the full solver, divergence-free preservation, PEC reflection and
// energy behaviour — the engine's second application domain.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/pde/maxwell.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/energy.h"
#include "exastp/solver/norms.h"

namespace exastp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Maxwell, LeviCivitaSymbol) {
  EXPECT_EQ(MaxwellPde::levi(0, 1, 2), 1.0);
  EXPECT_EQ(MaxwellPde::levi(1, 2, 0), 1.0);
  EXPECT_EQ(MaxwellPde::levi(2, 0, 1), 1.0);
  EXPECT_EQ(MaxwellPde::levi(0, 2, 1), -1.0);
  EXPECT_EQ(MaxwellPde::levi(2, 1, 0), -1.0);
  EXPECT_EQ(MaxwellPde::levi(0, 0, 1), 0.0);
  EXPECT_EQ(MaxwellPde::levi(1, 1, 1), 0.0);
}

TEST(Maxwell, FluxImplementsTheCurl) {
  // Check one concrete component: dEx/dt = (1/eps)(dHz/dy - dHy/dz), so
  // F_y(Ex) = Hz/eps and F_z(Ex) = -Hy/eps.
  MaxwellPde pde;
  double q[MaxwellPde::kQuants] = {0, 0, 0, 0.5, -0.25, 2.0, 4.0, 0.25};
  double f[MaxwellPde::kQuants];
  pde.flux(q, 1, f);  // y-direction
  EXPECT_NEAR(f[MaxwellPde::kEx], q[MaxwellPde::kHz] / q[MaxwellPde::kEps],
              1e-14);
  pde.flux(q, 2, f);  // z-direction
  EXPECT_NEAR(f[MaxwellPde::kEx], -q[MaxwellPde::kHy] / q[MaxwellPde::kEps],
              1e-14);
  // And the magnetic counterpart: F_y(Hx) = -Ez/mu.
  q[MaxwellPde::kEz] = 0.7;
  pde.flux(q, 1, f);
  EXPECT_NEAR(f[MaxwellPde::kHx], -q[MaxwellPde::kEz] / q[MaxwellPde::kMu],
              1e-14);
}

TEST(Maxwell, WaveSpeedIsOneOverSqrtEpsMu) {
  MaxwellPde pde;
  double q[MaxwellPde::kQuants] = {};
  q[MaxwellPde::kEps] = 4.0;
  q[MaxwellPde::kMu] = 0.25;
  EXPECT_NEAR(pde.max_wave_speed(q, 0), 1.0, 1e-14);
  q[MaxwellPde::kEps] = 1.0;
  q[MaxwellPde::kMu] = 1.0;
  EXPECT_NEAR(pde.max_wave_speed(q, 1), 1.0, 1e-14);
}

TEST(Maxwell, PecWallFlipsTangentialEAndNormalH) {
  MaxwellPde pde;
  double q[MaxwellPde::kQuants] = {1, 2, 3, 4, 5, 6, 1, 1};
  double g[MaxwellPde::kQuants];
  pde.wall_reflect(q, 0, g);  // x-normal wall
  EXPECT_EQ(g[MaxwellPde::kEx], 1.0);   // normal E unchanged
  EXPECT_EQ(g[MaxwellPde::kEy], -2.0);  // tangential E flipped
  EXPECT_EQ(g[MaxwellPde::kEz], -3.0);
  EXPECT_EQ(g[MaxwellPde::kHx], -4.0);  // normal H flipped
  EXPECT_EQ(g[MaxwellPde::kHy], 5.0);   // tangential H unchanged
  EXPECT_EQ(g[MaxwellPde::kHz], 6.0);
}

AderDgSolver make_maxwell_solver(StpVariant variant, int order, int cells_x,
                                 std::array<BoundaryKind, 3> bc = {
                                     BoundaryKind::kPeriodic,
                                     BoundaryKind::kPeriodic,
                                     BoundaryKind::kPeriodic}) {
  MaxwellPde pde;
  GridSpec grid;
  grid.cells = {cells_x, 1, 1};
  grid.boundary = bc;
  auto runtime = std::make_shared<PdeAdapter<MaxwellPde>>(pde);
  return AderDgSolver(
      runtime, make_stp_kernel(pde, variant, order, host_best_isa()), grid);
}

void em_plane_wave_ic(const std::array<double, 3>& x, double* q) {
  // Ey = f(x), Hz = sqrt(eps/mu) f(x) travels in +x at c = 1.
  const double f = std::sin(2.0 * kPi * x[0]);
  for (int s = 0; s < MaxwellPde::kVars; ++s) q[s] = 0.0;
  q[MaxwellPde::kEy] = f;
  q[MaxwellPde::kHz] = f;  // eps = mu = 1
  q[MaxwellPde::kEps] = 1.0;
  q[MaxwellPde::kMu] = 1.0;
}

class MaxwellVariantP : public ::testing::TestWithParam<StpVariant> {};

TEST_P(MaxwellVariantP, PlaneWavePropagatesAtLightSpeed) {
  auto solver = make_maxwell_solver(GetParam(), 5, 6);
  solver.set_initial_condition(em_plane_wave_ic);
  solver.run_until(0.1);
  const double err = l2_error(
      solver, MaxwellPde::kEy,
      [](const std::array<double, 3>& x, double t) {
        return std::sin(2.0 * kPi * (x[0] - t));
      });
  EXPECT_LT(err, 1e-4) << variant_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, MaxwellVariantP,
                         ::testing::Values(StpVariant::kGeneric,
                                           StpVariant::kLog,
                                           StpVariant::kSplitCk,
                                           StpVariant::kAosoaSplitCk,
                                           StpVariant::kSoaUfSplitCk),
                         [](const auto& info) {
                           return variant_name(info.param);
                         });

TEST(MaxwellSolver, EnergyIsNonIncreasingOnPeriodicMesh) {
  auto solver = make_maxwell_solver(StpVariant::kSplitCk, 4, 4);
  solver.set_initial_condition(em_plane_wave_ic);
  const double e0 = maxwell_energy(solver);
  double prev = e0;
  for (int i = 0; i < 5; ++i) {
    solver.run_until(solver.time() + 0.02);
    const double e = maxwell_energy(solver);
    EXPECT_LE(e, prev * (1.0 + 1e-12)) << "Rusanov DG must not gain energy";
    prev = e;
  }
  EXPECT_GT(prev, 0.9 * e0) << "order-4 scheme should keep most energy";
}

TEST(MaxwellSolver, PecBoxTrapsTheWave) {
  auto solver = make_maxwell_solver(
      StpVariant::kSplitCk, 4, 4,
      {BoundaryKind::kWall, BoundaryKind::kWall, BoundaryKind::kWall});
  solver.set_initial_condition(
      [](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < MaxwellPde::kVars; ++s) q[s] = 0.0;
        // A standing-mode-like pulse with tangential E vanishing at the
        // x-walls (Ey ~ sin(pi x)).
        q[MaxwellPde::kEy] = std::sin(kPi * x[0]);
        q[MaxwellPde::kEps] = 1.0;
        q[MaxwellPde::kMu] = 1.0;
      });
  const double e0 = maxwell_energy(solver);
  solver.run_until(0.5);
  const double e1 = maxwell_energy(solver);
  EXPECT_LE(e1, e0 * (1.0 + 1e-10));
  EXPECT_GT(e1, 0.5 * e0) << "PEC box must retain most of the energy";
}

TEST(MaxwellEnergy, MatchesHandComputedValue) {
  auto solver = make_maxwell_solver(StpVariant::kGeneric, 4, 2);
  solver.set_initial_condition(em_plane_wave_ic);
  // integral over [0,1]^3 of (sin^2 + sin^2)/2 = 1/2; the 4-point rule on
  // two cells integrates sin^2 only approximately.
  EXPECT_NEAR(maxwell_energy(solver), 0.5, 1e-3);
}

}  // namespace
}  // namespace exastp
