// Tests for src/perf/cachesim: LRU behaviour, capacity/conflict misses,
// hierarchy walking, strided access, and the stall model's monotonicity.
#include <gtest/gtest.h>

#include "exastp/perf/cachesim.h"

namespace exastp {
namespace {

TEST(CacheLevel, HitsAfterInstall) {
  CacheLevel level({1024, 2, 64});  // 8 sets x 2 ways
  EXPECT_FALSE(level.access_line(0));
  EXPECT_TRUE(level.access_line(0));
  EXPECT_TRUE(level.access_line(0));
}

TEST(CacheLevel, LruEvictsOldest) {
  CacheLevel level({1024, 2, 64});  // 8 sets, lines with equal set index
  // Lines 0, 8, 16 all map to set 0 (line % 8).
  EXPECT_FALSE(level.access_line(0));
  EXPECT_FALSE(level.access_line(8));
  EXPECT_TRUE(level.access_line(0));   // refresh 0 -> 8 becomes LRU
  EXPECT_FALSE(level.access_line(16));  // evicts 8
  EXPECT_TRUE(level.access_line(0));
  EXPECT_FALSE(level.access_line(8));  // 8 was evicted
}

TEST(CacheLevel, FullyAssociativeBehaviour) {
  CacheLevel level({256, 4, 64});  // one set, four ways
  for (std::uint64_t l = 0; l < 4; ++l) EXPECT_FALSE(level.access_line(l));
  for (std::uint64_t l = 0; l < 4; ++l) EXPECT_TRUE(level.access_line(l));
  EXPECT_FALSE(level.access_line(99));  // evicts line 0 (LRU)
  EXPECT_FALSE(level.access_line(0));
}

TEST(CacheSim, WorkingSetWithinL1ProducesNoSteadyStateMisses) {
  CacheSim sim = CacheSim::skylake_sp();
  constexpr std::size_t kBytes = 16 * 1024;  // half of L1
  sim.access(0, kBytes);  // cold pass
  sim.reset_stats();
  for (int rep = 0; rep < 4; ++rep) sim.access(0, kBytes);
  EXPECT_EQ(sim.stats().misses[0], 0u);
  EXPECT_EQ(sim.stats().misses[1], 0u);
  EXPECT_EQ(sim.stats().misses[2], 0u);
  EXPECT_EQ(sim.stats().accesses, 4u * kBytes / 64);
}

TEST(CacheSim, WorkingSetBeyondL2SpillsToL3) {
  CacheSim sim = CacheSim::skylake_sp();
  constexpr std::size_t kBytes = 1200 * 1024;  // > 1 MiB L2, < L3 slice sum
  sim.access(0, kBytes);
  sim.reset_stats();
  sim.access(0, kBytes);  // streaming re-walk: everything misses L1
  const auto& s = sim.stats();
  EXPECT_GT(s.misses[0], 0u);
  EXPECT_GT(s.misses[1], 0u) << "must spill out of L2";
}

TEST(CacheSim, WorkingSetBeyondEverythingHitsDram) {
  CacheSim sim = CacheSim::skylake_sp();
  constexpr std::size_t kBytes = 8 * 1024 * 1024;
  sim.access(0, kBytes);
  sim.reset_stats();
  sim.access(0, kBytes);
  EXPECT_GT(sim.stats().misses[2], 0u);
}

TEST(CacheSim, StridedTouchesOneLinePerRow) {
  CacheSim sim({4096, 4, 64}, {65536, 8, 64}, {1 << 20, 8, 64});
  sim.access_strided(0, 10, 8, 4096);  // 8-byte rows, 4 KiB apart
  EXPECT_EQ(sim.stats().accesses, 10u);
}

TEST(CacheSim, AccessSpanningLinesCountsEachLine) {
  CacheSim sim = CacheSim::skylake_sp();
  sim.access(60, 8);  // straddles a line boundary
  EXPECT_EQ(sim.stats().accesses, 2u);
  sim.reset_stats();
  sim.access(64, 64);
  EXPECT_EQ(sim.stats().accesses, 1u);
  sim.reset_stats();
  sim.access(0, 0);
  EXPECT_EQ(sim.stats().accesses, 0u);
}

TEST(CacheSim, ResetDropsContents) {
  CacheSim sim = CacheSim::skylake_sp();
  sim.access(0, 4096);
  sim.reset();
  sim.access(0, 4096);
  EXPECT_EQ(sim.stats().misses[0], 4096u / 64);
}

TEST(StallModel, MoreMissesMeanMoreStall) {
  StallModel model;
  std::array<std::uint64_t, 4> flops{0, 0, 0, 1000000};
  CacheStats light, heavy;
  light.misses = {100, 10, 0};
  heavy.misses = {10000, 5000, 1000};
  EXPECT_LT(model.stall_fraction(light, flops),
            model.stall_fraction(heavy, flops));
  EXPECT_GE(model.stall_fraction(light, flops), 0.0);
  EXPECT_LE(model.stall_fraction(heavy, flops), 1.0);
}

TEST(StallModel, FasterComputeRaisesStallShare) {
  // The same cache behaviour with faster (wider-packed) compute leaves a
  // larger fraction of slots memory-bound — the paper's observation that
  // vectorization increases the stress on memory (Sec. VI-B).
  StallModel model;
  CacheStats stats;
  stats.misses = {50000, 20000, 100};
  std::array<std::uint64_t, 4> scalar_flops{10000000, 0, 0, 0};
  std::array<std::uint64_t, 4> avx512_flops{0, 0, 0, 10000000};
  EXPECT_LT(model.stall_fraction(stats, scalar_flops),
            model.stall_fraction(stats, avx512_flops));
}

TEST(StallModel, NoWorkNoStall) {
  StallModel model;
  EXPECT_EQ(model.stall_fraction({}, {0, 0, 0, 0}), 0.0);
}

TEST(CacheConfig, RejectsDegenerateGeometry) {
  EXPECT_THROW(CacheLevel({0, 1, 64}), std::invalid_argument);
  EXPECT_THROW(CacheLevel({1024, 1, 63}), std::invalid_argument);
  EXPECT_THROW(CacheSim({1024, 2, 64}, {4096, 2, 32}, {8192, 2, 64}),
               std::invalid_argument);
}

}  // namespace
}  // namespace exastp
